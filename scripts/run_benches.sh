#!/usr/bin/env bash
#===- scripts/run_benches.sh - Populate the perf trajectory ---------------===#
#
# Runs every benchmark binary in --json mode and splices the per-bench
# documents into machine-readable suite files at the repository root:
#
#   BENCH_observability.json
#     {"schema": "eel-bench/1", "suite": "observability",
#      "benches": [<one object per bench, see bench/BenchUtil.h>]}
#   BENCH_ir.json
#     {"schema": "eel-bench/1", "suite": "ir", "benches": [...]}
#       (the arena/SoA IR and zero-copy-writer benches)
#   BENCH_serve.json
#     {"schema": "eel-bench/1", "suite": "serve", "benches": [...]}
#       (the eel-serve edit-service latency/throughput/caching bench)
#
# Usage: scripts/run_benches.sh [build-dir]   (default: build)
#
# google-benchmark microbenchmarks are throttled with a small
# --benchmark_min_time so the suite finishes quickly; the headline tables
# each bench computes after RunSpecifiedBenchmarks (the numbers that land
# in the JSON) are unaffected by that knob.
#===------------------------------------------------------------------------===#

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
BENCH_DIR="$BUILD_DIR/bench"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

OBSERVABILITY_BENCHES=(
  bench_table1
  bench_indirect
  bench_cfg_stats
  bench_sharing
  bench_machdesc
  bench_active_memory
  bench_overhead
  bench_ablation
  bench_parallel
  bench_load
)

IR_BENCHES=(
  bench_ir
)

SERVE_BENCHES=(
  bench_serve
)

for B in "${OBSERVABILITY_BENCHES[@]}" "${IR_BENCHES[@]}" \
         "${SERVE_BENCHES[@]}"; do
  if [ ! -x "$BENCH_DIR/$B" ]; then
    echo "error: $BENCH_DIR/$B not built (cmake --build \"$BUILD_DIR\" -j)" >&2
    exit 1
  fi
done

for B in "${OBSERVABILITY_BENCHES[@]}" "${IR_BENCHES[@]}" \
         "${SERVE_BENCHES[@]}"; do
  echo "== $B"
  "$BENCH_DIR/$B" --json="$TMP_DIR/$B.json" \
    --benchmark_min_time=0.05 > "$TMP_DIR/$B.log"
done

# Splice the single-line per-bench documents into one suite envelope.
write_suite() {
  local SUITE="$1" OUT="$2"
  shift 2
  {
    printf '{"schema": "eel-bench/1", "suite": "%s", "benches": [' "$SUITE"
    local FIRST=1
    for B in "$@"; do
      [ "$FIRST" -eq 1 ] || printf ', '
      FIRST=0
      tr -d '\n' < "$TMP_DIR/$B.json"
    done
    printf ']}\n'
  } > "$OUT"

  # A malformed splice must fail loudly, not get committed.
  if [ -x "$BUILD_DIR/tools/json-check" ]; then
    "$BUILD_DIR/tools/json-check" --require-key benches "$OUT"
  fi
  echo "wrote $OUT"
}

write_suite observability "$REPO_ROOT/BENCH_observability.json" \
  "${OBSERVABILITY_BENCHES[@]}"
write_suite ir "$REPO_ROOT/BENCH_ir.json" "${IR_BENCHES[@]}"
write_suite serve "$REPO_ROOT/BENCH_serve.json" "${SERVE_BENCHES[@]}"

# Finish with the live control-plane round-trip: daemon + eel-stat over a
# real unix socket, every output mode validated.
"$REPO_ROOT/scripts/scrape_smoke.sh" "$BUILD_DIR"
