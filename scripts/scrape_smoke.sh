#!/usr/bin/env bash
#===- scripts/scrape_smoke.sh - Live eel-serve scrape round-trip ----------===#
#
# Boots a real eel-serve daemon on a scratch unix socket, then drives the
# ELSt control plane through eel-stat end to end:
#
#   1. `eel-stat --once --json`       -> strict eel-report/1, json-check clean
#   2. `eel-stat --once --prometheus` -> text exposition with serve_* series
#   3. `eel-stat --once` (human view) -> renders the one-screen snapshot
#
# The daemon runs with --max-requests 3 so the third scrape exhausts its
# budget and it exits on its own; structured logging goes to a JSONL file
# that must come back non-empty. Wired into the `bench-smoke` build target
# and scripts/run_benches.sh so the wire path is exercised by CI, not just
# the in-process tests.
#
# Usage: scripts/scrape_smoke.sh [build-dir]   (default: build)
#===------------------------------------------------------------------------===#

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
SERVE="$BUILD_DIR/tools/eel-serve"
STAT="$BUILD_DIR/tools/eel-stat"
CHECK="$BUILD_DIR/tools/json-check"

for BIN in "$SERVE" "$STAT" "$CHECK"; do
  if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (cmake --build \"$BUILD_DIR\" -j)" >&2
    exit 1
  fi
done

TMP_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$TMP_DIR"
}
trap cleanup EXIT

SOCK="$TMP_DIR/serve.sock"
LOG="$TMP_DIR/serve.jsonl"

"$SERVE" --socket "$SOCK" --max-requests 3 \
  --log-level info --log-file "$LOG" &
SERVE_PID=$!

# The socket appears once the daemon is listening.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
if [ ! -S "$SOCK" ]; then
  echo "error: eel-serve never opened $SOCK" >&2
  exit 1
fi

echo "== scrape 1: JSON snapshot"
"$STAT" --socket "$SOCK" --json --out "$TMP_DIR/status.json"
"$CHECK" --require-key summary "$TMP_DIR/status.json"

echo "== scrape 2: Prometheus exposition"
"$STAT" --socket "$SOCK" --prometheus --out "$TMP_DIR/status.prom"
grep -q '^serve_requests ' "$TMP_DIR/status.prom"
grep -q '^# TYPE serve_requests counter' "$TMP_DIR/status.prom"

echo "== scrape 3: human one-screen view"
"$STAT" --socket "$SOCK" > "$TMP_DIR/status.txt"
grep -q 'requests' "$TMP_DIR/status.txt"

# Scrape 3 exhausted --max-requests; the daemon shuts down cleanly.
wait "$SERVE_PID"
SERVE_PID=""

if [ ! -s "$LOG" ]; then
  echo "error: daemon log $LOG is empty" >&2
  exit 1
fi

echo "scrape smoke ok: 3 scrapes answered, JSON valid, daemon exited cleanly"
