//===- bench/bench_machdesc.cpp - §4 machine-description economics ------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces §4's code-size comparison and §5's speed claim:
///
///   "the SPARC description is 145 non-comment, non-blank lines and the
///    mostly machine-independent annotated C++ file is 504 lines. The
///    handwritten equivalent is 2,268 lines (spawn produces a file 6,178
///    lines long). ... a spawn description of the MIPS R2000 architecture
///    is 128 lines"
///
///   "These measurements used the hand-written machine specific code, even
///    though the spawn-generated code ran at the same speed."
///
/// Rows: description lines vs handwritten-backend lines vs generated-file
/// lines, per target; benchmarks compare handwritten and spawn-derived
/// decode+classify+reads/writes throughput.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "isa/Descriptions.h"
#include "spawn/Codegen.h"
#include "spawn/SpawnTarget.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace eel;
using namespace eelbench;

namespace {

std::vector<MachWord> sampleWords(TargetArch Arch, unsigned Count) {
  // Realistic mix: words from a generated program plus random words.
  std::vector<MachWord> Words;
  SxfFile File = generateWorkload(Arch, suiteMember(false, 77, 32));
  const SxfSegment *Text = File.segment(SegKind::Text);
  for (size_t Off = 0; Off + 4 <= Text->Bytes.size() && Words.size() < Count;
       Off += 4)
    Words.push_back(*File.readWord(Text->VAddr + Off));
  Rng R(5);
  while (Words.size() < Count)
    Words.push_back(static_cast<MachWord>(R.next()));
  return Words;
}

uint64_t analyzeAll(const TargetInfo &T, const std::vector<MachWord> &Words) {
  uint64_t Sum = 0;
  for (MachWord W : Words) {
    Sum += static_cast<uint64_t>(T.classify(W));
    Sum += T.reads(W).mask();
    Sum += T.writes(W).mask();
    Sum += static_cast<uint64_t>(T.hasDelaySlot(W));
  }
  return Sum;
}

} // namespace

static void BM_HandwrittenAnalysis(benchmark::State &State) {
  std::vector<MachWord> Words = sampleWords(TargetArch::Srisc, 20000);
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeAll(sriscTarget(), Words));
}
BENCHMARK(BM_HandwrittenAnalysis)->Unit(benchmark::kMillisecond);

static void BM_SpawnAnalysis(benchmark::State &State) {
  std::vector<MachWord> Words = sampleWords(TargetArch::Srisc, 20000);
  const TargetInfo &T = spawn::spawnSriscTarget();
  analyzeAll(T, Words); // warm the per-word summary cache, as spawn's
                        // generated code would be specialized up front
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeAll(T, Words));
}
BENCHMARK(BM_SpawnAnalysis)->Unit(benchmark::kMillisecond);

static void BM_SpawnParseDescription(benchmark::State &State) {
  for (auto _ : State) {
    auto Desc = spawn::parseMachineDescription(sriscDescription());
    benchmark::DoNotOptimize(Desc);
  }
}
BENCHMARK(BM_SpawnParseDescription)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_machdesc", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("§4: machine-description economics");
  unsigned SriscDesc = countCodeLines(sriscDescription());
  unsigned MriscDesc = countCodeLines(mriscDescription());
  unsigned SriscHand = sourceLines("src/isa/Srisc.cpp") +
                       sourceLines("src/isa/SriscEncoding.h");
  unsigned MriscHand = sourceLines("src/isa/Mrisc.cpp") +
                       sourceLines("src/isa/MriscEncoding.h");
  unsigned SriscGen = countCodeLines(
      spawn::generateCppSource(spawn::spawnSriscTarget().desc()));
  unsigned MriscGen = countCodeLines(
      spawn::generateCppSource(spawn::spawnMriscTarget().desc()));
  std::printf("%-8s %14s %16s %14s\n", "target", "description",
              "handwritten", "generated");
  std::printf("%-8s %11u ln %13u ln %11u ln\n", "srisc", SriscDesc,
              SriscHand, SriscGen);
  std::printf("%-8s %11u ln %13u ln %11u ln\n", "mrisc", MriscDesc,
              MriscHand, MriscGen);
  Sink.metric("description_lines_srisc", SriscDesc, "lines");
  Sink.metric("handwritten_lines_srisc", SriscHand, "lines");
  Sink.metric("generated_lines_srisc", SriscGen, "lines");
  Sink.metric("description_lines_mrisc", MriscDesc, "lines");
  Sink.metric("handwritten_lines_mrisc", MriscHand, "lines");
  Sink.metric("generated_lines_mrisc", MriscGen, "lines");
  std::printf("\npaper: SPARC 145-line description vs 2,268 handwritten "
              "vs 6,178 generated;\nMIPS description 128 lines. Expected "
              "shape: description << handwritten < generated.\n");
  std::printf("\n§5 speed claim: compare BM_HandwrittenAnalysis vs "
              "BM_SpawnAnalysis above\n(spawn-generated analysis should be "
              "the same order of magnitude).\n");
  return 0;
}
