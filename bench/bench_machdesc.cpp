//===- bench/bench_machdesc.cpp - §4 machine-description economics ------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces §4's code-size comparison and §5's speed claim:
///
///   "the SPARC description is 145 non-comment, non-blank lines and the
///    mostly machine-independent annotated C++ file is 504 lines. The
///    handwritten equivalent is 2,268 lines (spawn produces a file 6,178
///    lines long). ... a spawn description of the MIPS R2000 architecture
///    is 128 lines"
///
///   "These measurements used the hand-written machine specific code, even
///    though the spawn-generated code ran at the same speed."
///
/// Rows: description lines vs handwritten-backend lines vs generated-file
/// lines, per target; benchmarks compare handwritten and spawn-derived
/// decode+classify+reads/writes throughput.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "isa/Descriptions.h"
#include "spawn/Codegen.h"
#include "spawn/SpawnTarget.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace eel;
using namespace eelbench;

namespace {

std::vector<MachWord> sampleWords(TargetArch Arch, unsigned Count) {
  // Realistic mix: words from a generated program plus random words.
  std::vector<MachWord> Words;
  SxfFile File = generateWorkload(Arch, suiteMember(false, 77, 32));
  const SxfSegment *Text = File.segment(SegKind::Text);
  for (size_t Off = 0; Off + 4 <= Text->Bytes.size() && Words.size() < Count;
       Off += 4)
    Words.push_back(*File.readWord(Text->VAddr + Off));
  Rng R(5);
  while (Words.size() < Count)
    Words.push_back(static_cast<MachWord>(R.next()));
  return Words;
}

uint64_t analyzeAll(const TargetInfo &T, const std::vector<MachWord> &Words) {
  uint64_t Sum = 0;
  for (MachWord W : Words) {
    Sum += static_cast<uint64_t>(T.classify(W));
    Sum += T.reads(W).mask();
    Sum += T.writes(W).mask();
    Sum += static_cast<uint64_t>(T.hasDelaySlot(W));
  }
  return Sum;
}

} // namespace

static void BM_HandwrittenAnalysis(benchmark::State &State) {
  std::vector<MachWord> Words = sampleWords(TargetArch::Srisc, 20000);
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeAll(sriscTarget(), Words));
}
BENCHMARK(BM_HandwrittenAnalysis)->Unit(benchmark::kMillisecond);

static void BM_SpawnAnalysis(benchmark::State &State) {
  std::vector<MachWord> Words = sampleWords(TargetArch::Srisc, 20000);
  const TargetInfo &T = spawn::spawnSriscTarget();
  analyzeAll(T, Words); // warm the per-word summary cache, as spawn's
                        // generated code would be specialized up front
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeAll(T, Words));
}
BENCHMARK(BM_SpawnAnalysis)->Unit(benchmark::kMillisecond);

static void BM_SpawnParseDescription(benchmark::State &State) {
  for (auto _ : State) {
    auto Desc = spawn::parseMachineDescription(sriscDescription());
    benchmark::DoNotOptimize(Desc);
  }
}
BENCHMARK(BM_SpawnParseDescription)->Unit(benchmark::kMillisecond);

static void BM_DecodeTable(benchmark::State &State) {
  TargetArch Arch = static_cast<TargetArch>(State.range(0));
  std::vector<MachWord> Words = sampleWords(Arch, 20000);
  const spawn::MachineDesc &Desc = spawn::spawnTargetFor(Arch).desc();
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (MachWord W : Words)
      Sum += static_cast<uint64_t>(Desc.decode(W) + 1);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          Words.size() * sizeof(MachWord));
}
BENCHMARK(BM_DecodeTable)->Arg(0)->Arg(1)->Arg(2);

static void BM_DecodeLinear(benchmark::State &State) {
  TargetArch Arch = static_cast<TargetArch>(State.range(0));
  std::vector<MachWord> Words = sampleWords(Arch, 20000);
  const spawn::MachineDesc &Desc = spawn::spawnTargetFor(Arch).desc();
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (MachWord W : Words)
      Sum += static_cast<uint64_t>(Desc.decodeLinear(W) + 1);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          Words.size() * sizeof(MachWord));
}
BENCHMARK(BM_DecodeLinear)->Arg(0)->Arg(1)->Arg(2);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_machdesc", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("§4: machine-description economics");
  std::printf("%-8s %14s %16s %14s\n", "target", "description",
              "handwritten", "generated");
  struct SourceNames {
    const char *Arch;
    const char *Desc;
    const char *Cpp;
    const char *Header;
  };
  const SourceNames Sources[] = {
      {"srisc", sriscDescription(), "src/isa/Srisc.cpp",
       "src/isa/SriscEncoding.h"},
      {"mrisc", mriscDescription(), "src/isa/Mrisc.cpp",
       "src/isa/MriscEncoding.h"},
      {"arisc", ariscDescription(), "src/isa/Arisc.cpp",
       "src/isa/AriscEncoding.h"},
  };
  for (unsigned I = 0; I < 3; ++I) {
    const SourceNames &S = Sources[I];
    unsigned DescLines = countCodeLines(S.Desc);
    unsigned HandLines = sourceLines(S.Cpp) + sourceLines(S.Header);
    unsigned GenLines = countCodeLines(spawn::generateCppSource(
        spawn::spawnTargetFor(static_cast<TargetArch>(I)).desc()));
    std::printf("%-8s %11u ln %13u ln %11u ln\n", S.Arch, DescLines,
                HandLines, GenLines);
    Sink.metric(std::string("description_lines_") + S.Arch, DescLines,
                "lines");
    Sink.metric(std::string("handwritten_lines_") + S.Arch, HandLines,
                "lines");
    Sink.metric(std::string("generated_lines_") + S.Arch, GenLines, "lines");
  }
  std::printf("\npaper: SPARC 145-line description vs 2,268 handwritten "
              "vs 6,178 generated;\nMIPS description 128 lines. Expected "
              "shape: description << handwritten < generated.\n");
  std::printf("\n§5 speed claim: compare BM_HandwrittenAnalysis vs "
              "BM_SpawnAnalysis above\n(spawn-generated analysis should be "
              "the same order of magnitude).\n");

  // Decode throughput: the compiled decode table vs the bucketed linear
  // scan it replaced, with a byte-identity check — the table must agree
  // with the linear decoder on every sampled word before its speed counts.
  printHeader("table-driven decode vs linear scan");
  std::printf("%-8s %14s %14s %10s\n", "target", "table MB/s",
              "linear MB/s", "speedup");
  unsigned WordCount = Sink.smoke() ? 20000 : 200000;
  unsigned Reps = Sink.smoke() ? 2 : 25;
  for (TargetArch Arch : AllTargetArches) {
    const spawn::MachineDesc &Desc = spawn::spawnTargetFor(Arch).desc();
    std::vector<MachWord> Words = sampleWords(Arch, WordCount);
    unsigned Mismatches = 0;
    for (MachWord W : Words)
      if (Desc.decode(W) != Desc.decodeLinear(W))
        ++Mismatches;
    if (Mismatches) {
      std::printf("%-8s DECODE MISMATCH on %u/%zu words\n",
                  targetFor(Arch).name(), Mismatches, Words.size());
      return 1;
    }
    auto Throughput = [&](bool Table) {
      uint64_t Sink2 = 0;
      auto Start = std::chrono::steady_clock::now();
      for (unsigned R = 0; R < Reps; ++R)
        for (MachWord W : Words)
          Sink2 += static_cast<uint64_t>(
              (Table ? Desc.decode(W) : Desc.decodeLinear(W)) + 1);
      auto End = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(Sink2);
      double Seconds = std::chrono::duration<double>(End - Start).count();
      double Bytes = double(Reps) * Words.size() * sizeof(MachWord);
      return Seconds > 0 ? Bytes / Seconds / 1e6 : 0.0;
    };
    double TableMBs = Throughput(true);
    double LinearMBs = Throughput(false);
    std::printf("%-8s %11.1f    %11.1f    %7.2fx\n", targetFor(Arch).name(),
                TableMBs, LinearMBs,
                LinearMBs > 0 ? TableMBs / LinearMBs : 0.0);
    Sink.metric(std::string("decode_table_mbs_") + targetFor(Arch).name(),
                TableMBs, "MB/s");
    Sink.metric(std::string("decode_linear_mbs_") + targetFor(Arch).name(),
                LinearMBs, "MB/s");
  }
  return 0;
}
