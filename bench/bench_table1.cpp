//===- bench/bench_table1.cpp - Table 1: qpt vs qpt2 ---------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1 of the paper: the cost of building a tool on EEL's
/// abstractions versus the old ad-hoc way. Both profilers instrument the
/// same spim-sized generated program; we report
///
///   * instrumentation run time (the paper's 4.4s vs 19.0s / 8.4s rows —
///     qpt2 is expected to be a single-digit factor slower),
///   * objects allocated (the paper's 84,655 vs 317,494),
///   * basic blocks found (the paper's 15,441 vs 26,912, the difference
///     being EEL's delay-slot, entry/exit, and call-surrogate blocks),
///   * tool source size (the paper's 14,500 lines of C vs 6,276 of C++ —
///     inverted here in EEL's favour because the ad-hoc tool's full
///     machinery lives in the EEL libraries instead).
///
/// The paper's -O2/-ND rows vary the *compiler* flags of the tool binary,
/// which a single benchmark binary cannot reproduce; EXPERIMENTS.md records
/// this substitution.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "support/Stats.h"
#include "tools/AdhocQpt.h"
#include "tools/Qpt.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace eel;
using namespace eelbench;

namespace {

/// One spim-sized program (the paper instruments spim: 320,536 bytes).
SxfFile spimLike() {
  WorkloadOptions Opts = suiteMember(false, 42, /*Routines=*/64);
  Opts.SegmentsPerRoutine = 8;
  return generateWorkload(TargetArch::Srisc, Opts);
}

uint64_t statDelta(const char *Name, uint64_t Before) {
  return StatRegistry::instance().read(Name) - Before;
}

} // namespace

static void BM_AdhocQpt(benchmark::State &State) {
  SxfFile File = spimLike();
  uint64_t Blocks = 0;
  for (auto _ : State) {
    Expected<AdhocResult> Result = adhocInstrument(File);
    benchmark::DoNotOptimize(Result);
    Blocks = Result.value().BlocksFound;
  }
  State.counters["blocks"] = static_cast<double>(Blocks);
}
BENCHMARK(BM_AdhocQpt)->Unit(benchmark::kMillisecond);

static void BM_Qpt2(benchmark::State &State) {
  SxfFile File = spimLike();
  uint64_t Blocks = 0;
  for (auto _ : State) {
    Executable Exec((SxfFile(File)));
    Qpt2Profiler Profiler(Exec);
    Profiler.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    benchmark::DoNotOptimize(Edited);
    Blocks = StatRegistry::instance().read("eel.cfg.blocks");
  }
  State.counters["counters"] = 0;
  (void)Blocks;
}
BENCHMARK(BM_Qpt2)->Unit(benchmark::kMillisecond);

static void printTable1(eelbench::JsonSink &Sink) {
  printHeader("Table 1: qpt (ad hoc) vs qpt2 (EEL-based)");
  SxfFile File = spimLike();
  const SxfSegment *Text = File.segment(SegKind::Text);
  std::printf("workload: %zu bytes of text, %zu routines' worth of code\n",
              Text->Bytes.size(), static_cast<size_t>(64));

  // --- qpt (ad hoc) ----------------------------------------------------------
  auto T0 = std::chrono::steady_clock::now();
  Expected<AdhocResult> Adhoc = adhocInstrument(File);
  auto T1 = std::chrono::steady_clock::now();
  double AdhocMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  // The ad-hoc tool allocates flat arrays: approximate object count is its
  // block and counter tables.
  uint64_t AdhocObjects = Adhoc.value().BlocksFound * 2;

  // --- qpt2 (EEL) --------------------------------------------------------------
  StatRegistry::instance().resetAll();
  uint64_t InstBefore = 0, BlockBefore = 0, EdgeBefore = 0;
  auto T2 = std::chrono::steady_clock::now();
  Executable Exec((SxfFile(File)));
  Qpt2Profiler Profiler(Exec);
  Profiler.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  auto T3 = std::chrono::steady_clock::now();
  double EelMs = std::chrono::duration<double, std::milli>(T3 - T2).count();
  uint64_t EelInstObjects = statDelta("eel.inst.allocated", InstBefore);
  uint64_t EelBlocks = statDelta("eel.cfg.blocks", BlockBefore);
  uint64_t EelEdges = statDelta("eel.cfg.edges", EdgeBefore);
  uint64_t EelObjects = EelInstObjects + EelBlocks + EelEdges +
                        Profiler.counters().size();

  unsigned AdhocLines = sourceLines("src/tools/AdhocQpt.cpp") +
                        sourceLines("src/tools/AdhocQpt.h");
  unsigned EelToolLines =
      sourceLines("src/tools/Qpt.cpp") + sourceLines("src/tools/Qpt.h");
  unsigned EelLibLines = 0;
  const char *CoreFiles[] = {
      "src/core/Executable.cpp", "src/core/SymbolRefine.cpp",
      "src/core/CfgBuild.cpp",   "src/core/Cfg.cpp",
      "src/core/Instruction.cpp", "src/core/Slice.cpp",
      "src/core/Liveness.cpp",   "src/core/RegAlloc.cpp",
      "src/core/Layout.cpp",     "src/core/Translate.cpp",
      "src/core/OutputWriter.cpp"};
  for (const char *F : CoreFiles)
    EelLibLines += sourceLines(F);

  std::printf("%-22s %14s %14s %14s %14s\n", "tool version", "time (ms)",
              "objects", "blocks", "tool LoC");
  std::printf("%-22s %14.2f %14llu %14u %14u\n", "qpt   (ad hoc)", AdhocMs,
              static_cast<unsigned long long>(AdhocObjects),
              Adhoc.value().BlocksFound, AdhocLines);
  std::printf("%-22s %14.2f %14llu %14llu %14u\n", "qpt2  (EEL)", EelMs,
              static_cast<unsigned long long>(EelObjects),
              static_cast<unsigned long long>(EelBlocks), EelToolLines);
  std::printf("\nqpt2/qpt time ratio: %.2fx (paper: 4.3x unoptimized, "
              "2.4x at -O2)\n",
              EelMs / AdhocMs);
  std::printf("qpt2/qpt object ratio: %.2fx (paper: 317,494 / 84,655 = "
              "3.75x)\n",
              static_cast<double>(EelObjects) /
                  static_cast<double>(AdhocObjects));
  std::printf("qpt2/qpt block ratio: %.2fx (paper: 26,912 / 15,441 = "
              "1.74x)\n",
              static_cast<double>(EelBlocks) /
                  static_cast<double>(Adhoc.value().BlocksFound));
  std::printf("EEL library behind qpt2: %u lines (tool itself: %u; the "
              "paper's qpt2 was 6,276 lines because EEL was linked in "
              "separately)\n",
              EelLibLines, EelToolLines);
  Sink.metric("qpt_adhoc_time", AdhocMs, "ms");
  Sink.metric("qpt2_eel_time", EelMs, "ms");
  Sink.metric("qpt2_time_ratio", EelMs / AdhocMs, "x");
  Sink.metric("qpt2_object_ratio",
              static_cast<double>(EelObjects) /
                  static_cast<double>(AdhocObjects),
              "x");
  Sink.metric("qpt2_block_ratio",
              static_cast<double>(EelBlocks) /
                  static_cast<double>(Adhoc.value().BlocksFound),
              "x");
  Sink.metric("eel_library_lines", EelLibLines, "lines");
  (void)Edited;
}

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_table1", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable1(Sink);
  return 0;
}
