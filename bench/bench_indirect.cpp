//===- bench/bench_indirect.cpp - §3.3 indirect-jump analyzability -----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the §3.3 measurement of unanalyzable indirect jumps in
/// SPEC92:
///
///   "On SunOS 4.1.3 using gcc ... EEL found no unanalyzable indirect
///    jumps among the 1,325 indirect jumps (and 1,027,148 instructions in
///    11,975 routines). On Solaris 2.4 using the SunPro compilers ... 138
///    unanalyzable indirect jumps among the 1,244 ... All 138 resulted
///    from optimizing a call in a return statement by popping the current
///    stack frame and jumping to the callee."
///
/// Our gcc-style suite contains only dispatch-table and literal indirect
/// jumps (expected: 0 unanalyzable); the sunpro-style suite adds
/// frame-popping tail calls through function-pointer cells (expected:
/// every unanalyzable jump is classified as that idiom). Slicing
/// throughput is measured as well.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "core/Slice.h"

#include <benchmark/benchmark.h>

using namespace eel;
using namespace eelbench;

namespace {

struct SuiteStats {
  uint64_t Instructions = 0;
  unsigned Routines = 0;
  unsigned IndirectJumps = 0;
  unsigned DispatchTables = 0;
  unsigned Literals = 0;
  unsigned Cells = 0;
  unsigned Unanalyzable = 0;
  unsigned TailCallIdiom = 0;
};

SuiteStats analyzeSuite(bool Sunpro, unsigned Programs) {
  SuiteStats Stats;
  for (const SxfFile &File :
       makeSuite(TargetArch::Srisc, Sunpro, Programs)) {
    Executable Exec((SxfFile(File)));
    Exec.readContents();
    Stats.Instructions +=
        Exec.image().segment(SegKind::Text)->Bytes.size() / 4;
    for (const auto &R : Exec.routines()) {
      if (R->isData())
        continue;
      ++Stats.Routines;
      Cfg *G = R->controlFlowGraph();
      for (const IndirectSite &Site : G->indirectSites()) {
        if (Site.IsCall)
          continue;
        ++Stats.IndirectJumps;
        switch (Site.Resolution.K) {
        case IndirectResolution::Kind::DispatchTable:
          ++Stats.DispatchTables;
          break;
        case IndirectResolution::Kind::Literal:
          ++Stats.Literals;
          break;
        case IndirectResolution::Kind::CellPointer:
          ++Stats.Cells;
          ++Stats.Unanalyzable; // not a static target: counts against us
          if (Site.Resolution.TailCallIdiom)
            ++Stats.TailCallIdiom;
          break;
        case IndirectResolution::Kind::Unanalyzable:
          ++Stats.Unanalyzable;
          if (Site.Resolution.TailCallIdiom)
            ++Stats.TailCallIdiom;
          break;
        }
      }
      R->deleteControlFlowGraph();
    }
  }
  return Stats;
}

void printRow(const char *Name, const SuiteStats &S) {
  std::printf("%-28s %10llu %8u %8u %8u %8u %8u %8u\n", Name,
              static_cast<unsigned long long>(S.Instructions), S.Routines,
              S.IndirectJumps, S.DispatchTables + S.Literals, S.Unanalyzable,
              S.TailCallIdiom, S.Cells);
}

} // namespace

static void BM_ResolveIndirectJumps(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 7, 32));
  for (auto _ : State) {
    Executable Exec((SxfFile(File)));
    Exec.readContents();
    unsigned Resolved = 0;
    for (const auto &R : Exec.routines()) {
      if (R->isData())
        continue;
      Resolved += R->controlFlowGraph()->indirectSites().size();
    }
    benchmark::DoNotOptimize(Resolved);
  }
}
BENCHMARK(BM_ResolveIndirectJumps)->Unit(benchmark::kMillisecond);

static void BM_BackwardSlice(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 9, 32));
  Executable Exec(std::move(File));
  Exec.readContents();
  // Collect the indirect sites once; time re-slicing them.
  std::vector<std::pair<Routine *, Addr>> Sites;
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    for (const IndirectSite &Site : R->controlFlowGraph()->indirectSites())
      Sites.push_back({R.get(), Site.JumpAddr});
  }
  for (auto _ : State) {
    for (auto &[R, JumpAddr] : Sites) {
      IndirectResolution Res = resolveIndirect(Exec, *R, JumpAddr);
      benchmark::DoNotOptimize(Res);
    }
  }
  State.counters["sites"] = static_cast<double>(Sites.size());
}
BENCHMARK(BM_BackwardSlice)->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_indirect", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("§3.3: indirect-jump analyzability (SPEC92 stand-in suites)");
  std::printf("%-28s %10s %8s %8s %8s %8s %8s %8s\n", "suite", "insts",
              "routines", "ijumps", "analyzd", "unanlyz", "tailcall",
              "cells");
  SuiteStats Gcc = analyzeSuite(false, 12);
  printRow("gcc-style (SunOS 4.1.3)", Gcc);
  SuiteStats Sunpro = analyzeSuite(true, 12);
  printRow("sunpro-style (Solaris 2.4)", Sunpro);
  Sink.metric("gcc_indirect_jumps", Gcc.IndirectJumps, "count");
  Sink.metric("gcc_unanalyzable", Gcc.Unanalyzable, "count");
  Sink.metric("sunpro_indirect_jumps", Sunpro.IndirectJumps, "count");
  Sink.metric("sunpro_unanalyzable", Sunpro.Unanalyzable, "count");
  Sink.metric("sunpro_tail_call_idiom", Sunpro.TailCallIdiom, "count");
  std::printf("\npaper: gcc-style had 0/1,325 unanalyzable; sunpro-style "
              "138/1,244, all from\nthe frame-popping tail-call idiom. "
              "Expected shape: gcc row unanalyzable == 0,\nsunpro row "
              "unanalyzable > 0 with tailcall == unanalyzable.\n");
  return 0;
}
