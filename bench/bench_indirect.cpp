//===- bench/bench_indirect.cpp - §3.3 indirect-jump analyzability -----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the §3.3 measurement of unanalyzable indirect jumps in
/// SPEC92:
///
///   "On SunOS 4.1.3 using gcc ... EEL found no unanalyzable indirect
///    jumps among the 1,325 indirect jumps (and 1,027,148 instructions in
///    11,975 routines). On Solaris 2.4 using the SunPro compilers ... 138
///    unanalyzable indirect jumps among the 1,244 ... All 138 resulted
///    from optimizing a call in a return statement by popping the current
///    stack frame and jumping to the callee."
///
/// Our gcc-style suite contains only dispatch-table and literal indirect
/// jumps (expected: 0 unanalyzable); the sunpro-style suite adds
/// frame-popping tail calls through function-pointer cells (expected:
/// every unanalyzable jump is classified as that idiom). Slicing
/// throughput is measured as well.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "core/Slice.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

using namespace eel;
using namespace eelbench;

namespace {

struct SuiteStats {
  uint64_t Instructions = 0;
  uint64_t TextBytes = 0;
  unsigned Routines = 0;
  unsigned IndirectJumps = 0;
  unsigned DispatchTables = 0;
  unsigned Literals = 0;
  unsigned Cells = 0;
  unsigned Unanalyzable = 0;
  unsigned TailCallIdiom = 0;
  unsigned Recovered = 0; ///< Resolved only via eel-infer's cell facts.
};

SuiteStats analyzeSuite(bool Sunpro, unsigned Programs,
                        bool Stripped = false) {
  SuiteStats Stats;
  for (const SxfFile &File :
       makeSuite(TargetArch::Srisc, Sunpro, Programs)) {
    SxfFile Image(File);
    if (Stripped)
      Image.Symbols.clear();
    Executable Exec(std::move(Image));
    Exec.readContents();
    Stats.TextBytes += Exec.image().segment(SegKind::Text)->Bytes.size();
    Stats.Instructions +=
        Exec.image().segment(SegKind::Text)->Bytes.size() / 4;
    for (const auto &R : Exec.routines()) {
      if (R->isData())
        continue;
      ++Stats.Routines;
      Cfg *G = R->controlFlowGraph();
      for (const IndirectSite &Site : G->indirectSites()) {
        if (Site.IsCall)
          continue;
        ++Stats.IndirectJumps;
        switch (Site.Resolution.K) {
        case IndirectResolution::Kind::DispatchTable:
          ++Stats.DispatchTables;
          if (Site.Resolution.Inferred)
            ++Stats.Recovered;
          break;
        case IndirectResolution::Kind::Literal:
          ++Stats.Literals;
          if (Site.Resolution.Inferred)
            ++Stats.Recovered;
          break;
        case IndirectResolution::Kind::CellPointer:
          ++Stats.Cells;
          ++Stats.Unanalyzable; // not a static target: counts against us
          if (Site.Resolution.TailCallIdiom)
            ++Stats.TailCallIdiom;
          break;
        case IndirectResolution::Kind::Unanalyzable:
          ++Stats.Unanalyzable;
          if (Site.Resolution.TailCallIdiom)
            ++Stats.TailCallIdiom;
          break;
        }
      }
      R->deleteControlFlowGraph();
    }
  }
  return Stats;
}

void printRow(const char *Name, const SuiteStats &S) {
  std::printf("%-28s %10llu %8u %8u %8u %8u %8u %8u\n", Name,
              static_cast<unsigned long long>(S.Instructions), S.Routines,
              S.IndirectJumps, S.DispatchTables + S.Literals, S.Unanalyzable,
              S.TailCallIdiom, S.Cells);
}

} // namespace

static void BM_ResolveIndirectJumps(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 7, 32));
  for (auto _ : State) {
    Executable Exec((SxfFile(File)));
    Exec.readContents();
    unsigned Resolved = 0;
    for (const auto &R : Exec.routines()) {
      if (R->isData())
        continue;
      Resolved += R->controlFlowGraph()->indirectSites().size();
    }
    benchmark::DoNotOptimize(Resolved);
  }
}
BENCHMARK(BM_ResolveIndirectJumps)->Unit(benchmark::kMillisecond);

static void BM_BackwardSlice(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 9, 32));
  Executable Exec(std::move(File));
  Exec.readContents();
  // Collect the indirect sites once; time re-slicing them.
  std::vector<std::pair<Routine *, Addr>> Sites;
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    for (const IndirectSite &Site : R->controlFlowGraph()->indirectSites())
      Sites.push_back({R.get(), Site.JumpAddr});
  }
  for (auto _ : State) {
    for (auto &[R, JumpAddr] : Sites) {
      IndirectResolution Res = resolveIndirect(Exec, *R, JumpAddr);
      benchmark::DoNotOptimize(Res);
    }
  }
  State.counters["sites"] = static_cast<double>(Sites.size());
}
BENCHMARK(BM_BackwardSlice)->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_indirect", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("§3.3: indirect-jump analyzability (SPEC92 stand-in suites)");
  std::printf("%-28s %10s %8s %8s %8s %8s %8s %8s\n", "suite", "insts",
              "routines", "ijumps", "analyzd", "unanlyz", "tailcall",
              "cells");
  SuiteStats Gcc = analyzeSuite(false, 12);
  printRow("gcc-style (SunOS 4.1.3)", Gcc);
  SuiteStats Sunpro = analyzeSuite(true, 12);
  printRow("sunpro-style (Solaris 2.4)", Sunpro);

  // The sunpro suite's unanalyzable count is deterministic (fixed seeds,
  // fixed program shapes): 96, every one the frame-popping tail-call
  // idiom. Slice.h cites this number; keep the three in lockstep.
  constexpr unsigned SunproUnanalyzable = 96;
  if (Sunpro.Unanalyzable != SunproUnanalyzable ||
      Sunpro.TailCallIdiom != SunproUnanalyzable) {
    std::fprintf(stderr,
                 "FAIL: sunpro suite expected %u unanalyzable tail-call "
                 "jumps, measured %u (tailcall %u)\n",
                 SunproUnanalyzable, Sunpro.Unanalyzable,
                 Sunpro.TailCallIdiom);
    return 1;
  }

  // Stripped frontier: the same sunpro suite with symbol tables removed
  // goes down the eel-infer path. Constant-cell facts turn the previously
  // unanalyzable cell tail calls into inferred literals.
  uint64_t InferUsBefore = StatRegistry::instance().read("time.infer_us");
  SuiteStats Stripped = analyzeSuite(true, 12, /*Stripped=*/true);
  uint64_t InferUs =
      StatRegistry::instance().read("time.infer_us") - InferUsBefore;
  printRow("sunpro-style, stripped", Stripped);
  std::printf("%-28s recovered %u of %u previously-unanalyzable jumps "
              "(%.1f%%), inference %.2f MB/s\n",
              "", Stripped.Recovered, SunproUnanalyzable,
              100.0 * Stripped.Recovered / SunproUnanalyzable,
              InferUs ? static_cast<double>(Stripped.TextBytes) / InferUs
                      : 0.0);

  Sink.metric("gcc_indirect_jumps", Gcc.IndirectJumps, "count");
  Sink.metric("gcc_unanalyzable", Gcc.Unanalyzable, "count");
  Sink.metric("sunpro_indirect_jumps", Sunpro.IndirectJumps, "count");
  Sink.metric("sunpro_unanalyzable", Sunpro.Unanalyzable, "count");
  Sink.metric("sunpro_tail_call_idiom", Sunpro.TailCallIdiom, "count");
  Sink.metric("stripped_indirect_jumps", Stripped.IndirectJumps, "count");
  Sink.metric("stripped_recovered", Stripped.Recovered, "count");
  Sink.metric("stripped_unanalyzable", Stripped.Unanalyzable, "count");
  Sink.metric("stripped_recovered_pct",
              100.0 * Stripped.Recovered / SunproUnanalyzable, "percent");
  if (InferUs)
    Sink.metric("infer_mb_per_s",
                static_cast<double>(Stripped.TextBytes) / InferUs, "MB/s");

  // Acceptance gate: static recovery of at least half the tail-call jumps.
  if (Stripped.Recovered * 2 < SunproUnanalyzable) {
    std::fprintf(stderr,
                 "FAIL: stripped suite recovered %u of %u unanalyzable "
                 "jumps (< 50%%)\n",
                 Stripped.Recovered, SunproUnanalyzable);
    return 1;
  }

  std::printf("\npaper: gcc-style had 0/1,325 unanalyzable; sunpro-style "
              "138/1,244, all from\nthe frame-popping tail-call idiom. "
              "Expected shape: gcc row unanalyzable == 0,\nsunpro row "
              "unanalyzable > 0 with tailcall == unanalyzable; stripping "
              "the suite\nmust not cost more than half the recovered "
              "jumps (eel-infer).\n");
  return 0;
}
