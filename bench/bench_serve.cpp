//===- bench/bench_serve.cpp - Edit-service throughput and caching ------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures eel-serve's EditService: cold-vs-warm request latency (the
/// content-addressed analysis cache's payoff), byte identity of warm hits
/// against the cold pipeline, and sustained edits/sec with p50/p99 latency
/// under 1/4/8 concurrent clients (quantiles via the same deterministic
/// log-bucket interpolation the scrape snapshot reports). The asserted
/// gate: a warm cache hit — resetEdits + instrument + layout + write —
/// must beat the cold path — deserialize + analyze + everything — by
/// >= 3x, with identical bytes. Two observability sections ride along:
/// ELSt scrape latency while 8 clients saturate the edit path (every
/// scrape must answer Ok with a parseable snapshot), and the warm-path
/// cost of debug-level structured logging to a file sink.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "serve/Protocol.h"
#include "serve/Serve.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/Metrics.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace eel;
using namespace eelbench;

namespace {

ServeRequest makeRequest(const std::vector<uint8_t> &ImageBytes,
                         const std::string &Tool) {
  ServeRequest Req;
  Req.ToolSpec = Tool;
  Req.Threads = 1; // Deterministic single-thread pipeline per request.
  Req.ImageBytes = ImageBytes;
  return Req;
}

double requestMillis(EditService &Service, const ServeRequest &Req,
                     ServeResponse *Out = nullptr) {
  auto Start = std::chrono::steady_clock::now();
  ServeResponse Resp = Service.handle(Req);
  auto End = std::chrono::steady_clock::now();
  if (Resp.Status != ServeStatus::Ok) {
    std::fprintf(stderr, "FAIL: request not Ok: %s\n",
                 Resp.EnvelopeJson.c_str());
    std::exit(1);
  }
  if (Out)
    *Out = std::move(Resp);
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

/// Latency quantile in ms from a histogram of microsecond samples — the
/// same deterministic log-bucket interpolation handleStatus serves, so
/// bench numbers and live scrapes are directly comparable.
double quantileMs(const AtomicHistogram &H, double Q) {
  return H.snapshot("latency_us").quantile(Q) / 1000.0;
}

std::vector<std::vector<uint8_t>> serializeSuite(unsigned Count,
                                                 unsigned Routines) {
  std::vector<std::vector<uint8_t>> Images;
  for (const SxfFile &File :
       makeSuite(TargetArch::Srisc, false, Count, Routines))
    Images.push_back(File.serialize());
  return Images;
}

} // namespace

static void BM_ServeCold(benchmark::State &State) {
  std::vector<uint8_t> Image = serializeSuite(1, 12)[0];
  ServeLimits Limits;
  Limits.CacheCapacity = 0; // Every request cold.
  EditService Service(Limits);
  ServeRequest Req = makeRequest(Image, "null");
  for (auto _ : State)
    benchmark::DoNotOptimize(Service.handle(Req));
}
BENCHMARK(BM_ServeCold)->Unit(benchmark::kMillisecond);

static void BM_ServeWarm(benchmark::State &State) {
  std::vector<uint8_t> Image = serializeSuite(1, 12)[0];
  EditService Service(ServeLimits{});
  ServeRequest Req = makeRequest(Image, "null");
  Service.handle(Req); // Prime.
  for (auto _ : State)
    benchmark::DoNotOptimize(Service.handle(Req));
}
BENCHMARK(BM_ServeWarm)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_serve", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const bool SmokeMode = Sink.smoke();
  const unsigned Routines = SmokeMode ? 8 : 32;
  const unsigned SuiteCount = SmokeMode ? 2 : 4;
  const unsigned Reps = SmokeMode ? 2 : 8;

  // --- Cold vs warm latency, byte identity --------------------------------
  printHeader("eel-serve: cold vs warm request latency (tool=null)");
  std::vector<std::vector<uint8_t>> Images =
      serializeSuite(SuiteCount, Routines);

  // Cold baseline: caching disabled, so every request pays full analysis.
  ServeLimits ColdLimits;
  ColdLimits.CacheCapacity = 0;
  EditService ColdService(ColdLimits);
  std::vector<std::vector<uint8_t>> ColdOutputs;
  double ColdTotal = 0.0;
  unsigned ColdRuns = 0;
  for (const std::vector<uint8_t> &Image : Images) {
    ServeRequest Req = makeRequest(Image, "null");
    ServeResponse Resp;
    requestMillis(ColdService, Req, &Resp); // Warm-up (flyweight pools).
    for (unsigned R = 0; R < Reps; ++R) {
      ColdTotal += requestMillis(ColdService, Req, &Resp);
      ++ColdRuns;
    }
    ColdOutputs.push_back(std::move(Resp.EditedImage));
  }
  double ColdMean = ColdTotal / ColdRuns;

  // Warm path: prime once per image, then every request is a cache hit.
  EditService WarmService(ServeLimits{});
  double WarmTotal = 0.0;
  unsigned WarmRuns = 0;
  bool Identical = true;
  for (size_t I = 0; I < Images.size(); ++I) {
    ServeRequest Req = makeRequest(Images[I], "null");
    ServeResponse Resp;
    requestMillis(WarmService, Req, &Resp); // Prime (cold fill).
    for (unsigned R = 0; R < Reps; ++R) {
      WarmTotal += requestMillis(WarmService, Req, &Resp);
      ++WarmRuns;
      Identical &= Resp.EditedImage == ColdOutputs[I];
    }
  }
  double WarmMean = WarmTotal / WarmRuns;
  AnalysisCache::Stats WarmStats = WarmService.cacheStats();
  double Speedup = WarmMean > 0.0 ? ColdMean / WarmMean : 0.0;

  std::printf("cold mean:   %9.2f ms   (cache disabled)\n", ColdMean);
  std::printf("warm mean:   %9.2f ms   (%llu hits / %llu misses)\n", WarmMean,
              static_cast<unsigned long long>(WarmStats.Hits),
              static_cast<unsigned long long>(WarmStats.Misses));
  std::printf("speedup:     %8.2fx\n", Speedup);
  std::printf("warm hits byte-identical to cold pipeline: %s\n",
              Identical ? "yes" : "NO (bug!)");
  Sink.metric("cold_mean_ms", ColdMean, "ms");
  Sink.metric("warm_mean_ms", WarmMean, "ms");
  Sink.metric("warm_speedup", Speedup, "x");
  Sink.metric("warm_identical", Identical ? 1 : 0, "bool");
  if (!Identical) {
    std::fprintf(stderr,
                 "FAIL: warm cache hit produced different bytes than the "
                 "cold pipeline\n");
    return 1;
  }
  if (!SmokeMode && Speedup < 3.0) {
    std::fprintf(stderr, "FAIL: warm-cache speedup %.2fx < 3x\n", Speedup);
    return 1;
  }

  // --- Sustained throughput under concurrent clients ----------------------
  // A scraper thread hammers the ELSt control plane for the whole run:
  // every reply must be Ok and parse as an eel-report/1 snapshot even
  // while the edit path is saturated (handleStatus never takes the
  // metrics lock or an admission slot).
  printHeader("eel-serve: sustained edits/sec under concurrent clients");
  std::printf("%-9s %11s %10s %10s %9s %9s %11s\n", "clients", "edits/sec",
              "p50 ms", "p99 ms", "hit rate", "scrapes", "scr p99 us");
  const unsigned PerClient = SmokeMode ? 3 : 24;
  bool ScrapesClean = true;
  for (unsigned Clients : {1u, 4u, 8u}) {
    ServeLimits Limits;
    Limits.MaxInFlight = 0; // Throughput run: measure, don't shed.
    Limits.CacheCapacity = 16;
    EditService Service(Limits);
    // Prime the cache so steady-state traffic is warm.
    for (const std::vector<uint8_t> &Image : Images)
      requestMillis(Service, makeRequest(Image, "null"));
    AnalysisCache::Stats Before = Service.cacheStats();

    AtomicHistogram LatHist, ScrapeHist;
    std::atomic<uint64_t> Edits{0};
    std::atomic<uint64_t> ScrapeBad{0};
    std::atomic<bool> Done{false};
    std::thread Scraper([&] {
      std::vector<uint8_t> Frame = encodeStatusRequest(StatusRequest{});
      while (!Done.load(std::memory_order_acquire)) {
        auto T0 = std::chrono::steady_clock::now();
        std::vector<uint8_t> Reply = Service.handleFrame(Frame);
        auto T1 = std::chrono::steady_clock::now();
        ScrapeHist.record(static_cast<uint64_t>(
            std::chrono::duration<double, std::micro>(T1 - T0).count()));
        Expected<StatusResponse> Resp = decodeStatusResponse(Reply);
        if (Resp.hasError() || Resp.value().Status != ServeStatus::Ok ||
            parseJson(Resp.value().Body).hasError())
          ScrapeBad.fetch_add(1, std::memory_order_relaxed);
      }
    });

    auto Start = std::chrono::steady_clock::now();
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        for (unsigned R = 0; R < PerClient; ++R) {
          const std::vector<uint8_t> &Image =
              Images[(C + R) % Images.size()];
          ServeRequest Req = makeRequest(Image, "null");
          double Ms = requestMillis(Service, Req);
          LatHist.record(static_cast<uint64_t>(Ms * 1000.0));
          Edits.fetch_add(1, std::memory_order_relaxed);
        }
      });
    for (std::thread &T : Threads)
      T.join();
    auto End = std::chrono::steady_clock::now();
    Done.store(true, std::memory_order_release);
    Scraper.join();
    double WallSec = std::chrono::duration<double>(End - Start).count();

    double EditsPerSec = WallSec > 0.0 ? Edits.load() / WallSec : 0.0;
    double P50 = quantileMs(LatHist, 0.50);
    double P99 = quantileMs(LatHist, 0.99);
    HistogramSnapshot ScrapeSnap = ScrapeHist.snapshot("scrape_us");
    AnalysisCache::Stats After = Service.cacheStats();
    uint64_t DeltaHits = After.Hits - Before.Hits;
    uint64_t DeltaTotal =
        (After.Hits + After.Misses) - (Before.Hits + Before.Misses);
    double HitRate = DeltaTotal ? 100.0 * DeltaHits / DeltaTotal : 0.0;
    std::printf("%-9u %11.1f %10.2f %10.2f %8.1f%% %9llu %11.0f\n", Clients,
                EditsPerSec, P50, P99, HitRate,
                static_cast<unsigned long long>(ScrapeSnap.Count),
                ScrapeSnap.quantile(0.99));
    if (ScrapeBad.load() != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu scrapes under %u-client load were not valid "
                   "Ok snapshots\n",
                   static_cast<unsigned long long>(ScrapeBad.load()), Clients);
      ScrapesClean = false;
    }
    std::string Tag = "c" + std::to_string(Clients);
    Sink.metric("edits_per_sec_" + Tag, EditsPerSec, "1/s");
    Sink.metric("p50_" + Tag, P50, "ms");
    Sink.metric("p99_" + Tag, P99, "ms");
    Sink.metric("hit_rate_" + Tag, HitRate, "%");
    Sink.metric("scrapes_" + Tag, static_cast<double>(ScrapeSnap.Count),
                "count");
    Sink.metric("scrape_p50_us_" + Tag, ScrapeSnap.quantile(0.50), "us");
    Sink.metric("scrape_p99_us_" + Tag, ScrapeSnap.quantile(0.99), "us");
  }
  std::printf("concurrent identical submissions may miss (claimed entries),\n"
              "so hit rate under concurrency is < 100%% by design.\n");
  if (!ScrapesClean)
    return 1;

  // --- Structured logging on the warm path --------------------------------
  // Debug-level logging to a file sink, versus the shipping default (Off):
  // the per-request delta is the real cost of running a daemon chatty.
  printHeader("eel-serve: debug logging cost on the warm path");
  {
    EditService Service(ServeLimits{});
    ServeRequest Req = makeRequest(Images[0], "null");
    requestMillis(Service, Req); // Prime (cold fill).
    const unsigned LogReps = SmokeMode ? 4 : 64;
    // Minimum-of-N: interference only ever inflates a rep.
    auto bestWarmMs = [&] {
      double Best = 1e18;
      for (unsigned R = 0; R < LogReps; ++R)
        Best = std::min(Best, requestMillis(Service, Req));
      return Best;
    };
    double OffMs = bestWarmMs();
    std::string LogPath =
        "/tmp/eel_bench_serve_log." + std::to_string(::getpid()) + ".jsonl";
    Logger::instance().setPath(LogPath);
    logSetLevel(LogLevel::Debug);
    double DebugMs = bestWarmMs();
    logSetLevel(LogLevel::Off);
    Logger::instance().flushAll();
    Logger::instance().useStderr();
    std::remove(LogPath.c_str());
    double LogOverheadPct = OffMs > 0.0 ? (DebugMs / OffMs - 1.0) * 100.0 : 0.0;
    std::printf("warm request, log off:   %8.3f ms\n", OffMs);
    std::printf("warm request, debug log: %8.3f ms\n", DebugMs);
    std::printf("debug logging adds:      %8.2f%%\n", LogOverheadPct);
    Sink.metric("log_off_warm_ms", OffMs, "ms");
    Sink.metric("log_debug_warm_ms", DebugMs, "ms");
    Sink.metric("log_debug_overhead_pct", LogOverheadPct, "percent");
  }

  // --- Instrumenting tools through the cache ------------------------------
  // The same image under qpt:all, warm vs cold: identity must hold with
  // real instrumentation too, not just the null re-layout.
  printHeader("eel-serve: qpt:all warm identity");
  ServeRequest QReq = makeRequest(Images[0], "qpt:all");
  ServeResponse QCold, QWarm;
  {
    ServeLimits L;
    L.CacheCapacity = 0;
    EditService S(L);
    requestMillis(S, QReq, &QCold);
  }
  {
    EditService S(ServeLimits{});
    requestMillis(S, QReq, &QWarm); // Prime.
    requestMillis(S, QReq, &QWarm); // Hit.
  }
  bool QIdentical = QWarm.EditedImage == QCold.EditedImage;
  std::printf("qpt:all warm hit vs cold: %s\n",
              QIdentical ? "byte-identical" : "MISMATCH (bug!)");
  Sink.metric("qpt_warm_identical", QIdentical ? 1 : 0, "bool");
  if (!QIdentical) {
    std::fprintf(stderr, "FAIL: qpt:all warm hit diverged from cold run\n");
    return 1;
  }
  if (!SmokeMode)
    std::printf("gate: warm speedup %.2fx >= 3x, all hits byte-identical "
                "— PASS\n",
                Speedup);
  return 0;
}
