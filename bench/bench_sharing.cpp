//===- bench/bench_sharing.cpp - §3.4 flyweight instruction sharing -----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the §3.4 claim: "EEL allocates only one instruction to
/// represent all instances of a particular machine instruction. Typically,
/// this optimization reduces the number of allocated EEL instructions by a
/// factor of four." We decode entire suites through an InstructionPool and
/// report requested/allocated ratios, plus decode throughput with and
/// without the pool.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Instruction.h"

#include <benchmark/benchmark.h>

using namespace eel;
using namespace eelbench;

static void BM_PooledDecode(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 5, 48));
  const SxfSegment *Text = File.segment(SegKind::Text);
  for (auto _ : State) {
    InstructionPool Pool(sriscTarget());
    uint64_t Sum = 0;
    for (size_t Off = 0; Off + 4 <= Text->Bytes.size(); Off += 4)
      Sum += static_cast<uint64_t>(
          Pool.get(*File.readWord(Text->VAddr + Off))->kind());
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_PooledDecode)->Unit(benchmark::kMillisecond);

static void BM_UnpooledDecode(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 5, 48));
  const SxfSegment *Text = File.segment(SegKind::Text);
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (size_t Off = 0; Off + 4 <= Text->Bytes.size(); Off += 4) {
      auto Inst =
          makeInstruction(sriscTarget(), *File.readWord(Text->VAddr + Off));
      Sum += static_cast<uint64_t>(Inst->kind());
    }
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_UnpooledDecode)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_sharing", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("§3.4: one instruction object per distinct machine word");
  std::printf("%-10s %12s %12s %8s\n", "target", "requested", "allocated",
              "ratio");
  for (TargetArch Arch : AllTargetArches) {
    InstructionPool Pool(targetFor(Arch));
    for (const SxfFile &File : makeSuite(Arch, false, 10, 32)) {
      const SxfSegment *Text = File.segment(SegKind::Text);
      for (size_t Off = 0; Off + 4 <= Text->Bytes.size(); Off += 4)
        Pool.get(*File.readWord(Text->VAddr + Off));
    }
    const char *ArchName = Arch == TargetArch::Srisc   ? "srisc"
                           : Arch == TargetArch::Mrisc ? "mrisc"
                                                       : "arisc";
    double Ratio = static_cast<double>(Pool.requested()) /
                   static_cast<double>(Pool.allocated());
    std::printf("%-10s %12llu %12llu %7.2fx\n", ArchName,
                static_cast<unsigned long long>(Pool.requested()),
                static_cast<unsigned long long>(Pool.allocated()), Ratio);
    Sink.metric(std::string("flyweight_ratio_") + ArchName, Ratio, "x");
    Sink.metric(std::string("instructions_allocated_") + ArchName,
                static_cast<double>(Pool.allocated()), "count");
  }
  std::printf("\npaper: the flyweight cuts allocations ~4x\n");
  return 0;
}
