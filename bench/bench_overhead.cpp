//===- bench/bench_overhead.cpp - Profiling/editing run-time overheads ---------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time overheads of the editing mechanisms themselves:
///
///  * qpt2 edge/block profiling slowdown (the original qpt's domain [4]);
///  * §3.5 register scavenging: how often snippets got free registers vs
///    needed spill wrapping or condition-code saves;
///  * the cost of run-time address translation on tail-call-heavy
///    (sunpro-style) programs — the §3.3 fallback in action;
///  * sandboxing (SFI) overhead, the paper's first application class;
///  * the observability tax: EEL_TRACE_SCOPE compiled in but disabled
///    must cost under 1% of the edit path (asserted — this bench exits
///    nonzero on regression);
///  * the logging tax: EEL_LOG compiled in but level-gated off must cost
///    under 0.1% of a warm serve request (asserted the same way).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "serve/Serve.h"
#include "support/Log.h"
#include "support/Trace.h"
#include "tools/Qpt.h"
#include "tools/Sandbox.h"
#include "tools/WindTunnel.h"
#include "tools/Optimizer.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include <unistd.h>

using namespace eel;
using namespace eelbench;

static void BM_RunInstrumented(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
  Executable Exec((SxfFile(File)));
  Qpt2Profiler Profiler(Exec);
  Profiler.instrument();
  SxfFile Edited = Exec.writeEditedExecutable().takeValue();
  for (auto _ : State) {
    RunResult R = runToCompletion(Edited);
    benchmark::DoNotOptimize(R.Instructions);
  }
}
BENCHMARK(BM_RunInstrumented)->Unit(benchmark::kMillisecond);

/// The edit-and-write path with the Options::Verify gate off (Arg 0) and
/// on (Arg 1): the gate runs the verifier's re-analysis-free profile
/// (passes 1-4), and must stay a small fraction of the path it guards.
static void BM_EditAndWrite(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
  for (auto _ : State) {
    Executable::Options Opts;
    Opts.Verify = State.range(0) != 0;
    Executable Exec(SxfFile(File), Opts);
    Qpt2Profiler Profiler(Exec);
    Profiler.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    benchmark::DoNotOptimize(Edited.hasValue());
  }
}
BENCHMARK(BM_EditAndWrite)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

namespace {

/// Set from JsonSink::smoke() before the headline tables run: one seed per
/// configuration instead of five, enough to prove the path works.
bool SmokeRun = false;

struct OverheadRow {
  const char *Name;
  double Slowdown;
  uint64_t SnippetInstances;
  uint64_t Spills;
  uint64_t CCSaves;
  uint64_t TranslationSites;
};

OverheadRow measure(const char *Name, TargetArch Arch, bool Sunpro,
                    void (*Instrument)(Executable &),
                    unsigned DeadCodePercent = 0) {
  uint64_t OrigInsts = 0, EditInsts = 0;
  OverheadRow Row{Name, 0, 0, 0, 0, 0};
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    if (SmokeRun && Seed > 1)
      break;
    WorkloadOptions MemberOpts = suiteMember(Sunpro, Seed, 24);
    MemberOpts.DeadCodePercent = DeadCodePercent;
    SxfFile File = generateWorkload(Arch, MemberOpts);
    RunResult Orig = runToCompletion(File);
    Executable Exec((SxfFile(File)));
    Instrument(Exec);
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    if (Edited.hasError())
      continue;
    RunResult After = runToCompletion(Edited.value());
    if (After.Output != Orig.Output)
      std::printf("  WARNING: %s diverged on seed %llu\n", Name,
                  static_cast<unsigned long long>(Seed));
    OrigInsts += Orig.Instructions;
    EditInsts += After.Instructions;
    Row.SnippetInstances += Exec.editStats().SnippetInstances;
    Row.Spills += Exec.editStats().SnippetSpills;
    Row.CCSaves += Exec.editStats().SnippetCCSaves;
    Row.TranslationSites += Exec.editStats().TranslationSites;
  }
  Row.Slowdown =
      static_cast<double>(EditInsts) / static_cast<double>(OrigInsts);
  return Row;
}

void printRow(eelbench::JsonSink &Sink, const OverheadRow &Row) {
  std::printf("%-34s %8.2fx %9llu %7llu %8llu %7llu\n", Row.Name,
              Row.Slowdown,
              static_cast<unsigned long long>(Row.SnippetInstances),
              static_cast<unsigned long long>(Row.Spills),
              static_cast<unsigned long long>(Row.CCSaves),
              static_cast<unsigned long long>(Row.TranslationSites));
  Sink.metric(std::string("slowdown: ") + Row.Name, Row.Slowdown, "x");
  Sink.metric(std::string("spills: ") + Row.Name,
              static_cast<double>(Row.Spills), "count");
}

} // namespace

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_overhead", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const bool Smoke = Sink.smoke();
  SmokeRun = Smoke;

  printHeader("Editing-mechanism run-time overheads");
  std::printf("%-34s %9s %9s %7s %8s %7s\n", "configuration", "slowdown",
              "snippets", "spills", "ccsaves", "xlate");

  printRow(Sink, measure("identity rewrite (srisc)", TargetArch::Srisc, false,
                   [](Executable &) {}));
  printRow(Sink, measure("identity rewrite, tail calls", TargetArch::Srisc, true,
                   [](Executable &) {}));
  printRow(Sink, measure("qpt2 edge+block profile (srisc)", TargetArch::Srisc,
                   false, [](Executable &Exec) {
                     auto *P = new Qpt2Profiler(Exec);
                     P->instrument();
                   }));
  printRow(Sink, measure("qpt2 edge+block profile (mrisc)", TargetArch::Mrisc,
                   false, [](Executable &Exec) {
                     auto *P = new Qpt2Profiler(Exec);
                     P->instrument();
                   }));
  printRow(Sink, measure("qpt2 edge+block profile (arisc)", TargetArch::Arisc,
                   false, [](Executable &Exec) {
                     auto *P = new Qpt2Profiler(Exec);
                     P->instrument();
                   }));
  printRow(Sink, measure("qpt2 profile + translation", TargetArch::Srisc, true,
                   [](Executable &Exec) {
                     auto *P = new Qpt2Profiler(Exec);
                     P->instrument();
                   }));
  printRow(Sink, measure("sandbox store checks (srisc)", TargetArch::Srisc, false,
                   [](Executable &Exec) {
                     auto *S = new Sandboxer(Exec, 0x400000, 0x7FE00000);
                     S->instrument();
                   }));
  printRow(Sink, measure("WWT cycle counter (srisc)", TargetArch::Srisc, false,
                   [](Executable &Exec) {
                     auto *C = new CycleCounter(Exec, /*Quantum=*/1024);
                     C->instrument();
                   }));
  printRow(Sink, measure("dead-code elimination (srisc)", TargetArch::Srisc,
                   false,
                   [](Executable &Exec) {
                     auto *D = new DeadCodeEliminator(Exec);
                     D->run();
                   },
                   /*DeadCodePercent=*/30));

  // The verifier gate's cost relative to the edit-and-write path it
  // guards (acceptance: under 10%).
  printHeader("Options::Verify gate cost on the edit-and-write path");
  {
    SxfFile File =
        generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
    auto editAndWrite = [&File](bool Verify) {
      Executable::Options Opts;
      Opts.Verify = Verify;
      Executable Exec(SxfFile(File), Opts);
      Qpt2Profiler Profiler(Exec);
      Profiler.instrument();
      Expected<SxfFile> Edited = Exec.writeEditedExecutable();
      if (Edited.hasError())
        std::printf("  WARNING: edit failed: %s\n",
                    Edited.error().message().c_str());
    };
    using Clock = std::chrono::steady_clock;
    // Minimum-of-N is the noise-robust estimator here: scheduler
    // interference on a loaded machine only ever inflates a run, so the
    // fastest rep of each configuration is the least-perturbed one.
    const int Reps = Smoke ? 2 : 30;
    auto fastestRep = [&](bool Verify) {
      double Best = 1e9;
      for (int I = 0; I < Reps; ++I) {
        auto T0 = Clock::now();
        editAndWrite(Verify);
        auto T1 = Clock::now();
        double S = std::chrono::duration<double>(T1 - T0).count();
        if (S < Best)
          Best = S;
      }
      return Best;
    };
    editAndWrite(false); // warm up caches before timing either side
    editAndWrite(true);
    double Off = fastestRep(false);
    double On = fastestRep(true);
    std::printf("  edit+write, verify off: %8.3f ms\n", Off * 1e3);
    std::printf("  edit+write, verify on:  %8.3f ms\n", On * 1e3);
    std::printf("  verify gate adds:       %8.2f%%\n",
                (On / Off - 1.0) * 100.0);
    Sink.metric("verify_gate_overhead", (On / Off - 1.0) * 100.0, "percent");
  }

  // Zero-copy emission against the seed byte-push writer it replaced, on
  // the same instrumented edit. The legacy path is retained in tree as
  // the byte-identity oracle (asserted in bench_ir and bench_parallel);
  // here the two are timed against each other with the same min-of-N
  // estimator as the verify gate above.
  printHeader("Zero-copy emission vs legacy byte-push writer");
  {
    SxfFile File =
        generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
    auto editAndWrite = [&File](bool Legacy) {
      Executable::Options Opts;
      Opts.LegacyWriter = Legacy;
      Executable Exec(SxfFile(File), Opts);
      Qpt2Profiler Profiler(Exec);
      Profiler.instrument();
      benchmark::DoNotOptimize(Exec.writeEditedExecutable().hasValue());
    };
    using Clock = std::chrono::steady_clock;
    const int Reps = Smoke ? 2 : 30;
    auto fastestRep = [&](bool Legacy) {
      double Best = 1e9;
      for (int I = 0; I < Reps; ++I) {
        auto T0 = Clock::now();
        editAndWrite(Legacy);
        auto T1 = Clock::now();
        Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
      }
      return Best;
    };
    editAndWrite(false); // warm up before timing either side
    editAndWrite(true);
    double ZeroCopy = fastestRep(false);
    double Legacy = fastestRep(true);
    std::printf("  edit+write, zero-copy:  %8.3f ms\n", ZeroCopy * 1e3);
    std::printf("  edit+write, legacy:     %8.3f ms\n", Legacy * 1e3);
    std::printf("  zero-copy gain:         %8.2fx\n", Legacy / ZeroCopy);
    Sink.metric("zero_copy_edit_ms", ZeroCopy * 1e3, "ms");
    Sink.metric("legacy_edit_ms", Legacy * 1e3, "ms");
    Sink.metric("zero_copy_gain", Legacy / ZeroCopy, "x");
  }

  // Tracing compiled in but disabled must be invisible: a disabled
  // EEL_TRACE_SCOPE is one relaxed atomic load and a branch, paid once
  // per span site the pipeline passes. The bench measures that per-site
  // cost directly, counts the sites one edit actually crosses (by running
  // it once traced), and asserts the product stays under 1% of the
  // untraced edit time.
  printHeader("EEL_TRACE_SCOPE compiled in but disabled (acceptance: <1%)");
  bool TraceOverheadOk = true;
  {
    traceSetEnabled(false);
    using Clock = std::chrono::steady_clock;
    const uint64_t Iters = Smoke ? (1u << 16) : (1u << 21);
    const int LoopReps = Smoke ? 2 : 7;
    // Minimum-of-N again: interference only inflates a rep.
    auto bestLoopNs = [&](bool WithScope) {
      double Best = 1e18;
      for (int Rep = 0; Rep < LoopReps; ++Rep) {
        auto T0 = Clock::now();
        for (uint64_t I = 0; I < Iters; ++I) {
          if (WithScope) {
            EEL_TRACE_SCOPE("bench.noop");
            benchmark::DoNotOptimize(I);
          } else {
            benchmark::DoNotOptimize(I);
          }
        }
        auto T1 = Clock::now();
        Best = std::min(
            Best, std::chrono::duration<double, std::nano>(T1 - T0).count());
      }
      return Best / static_cast<double>(Iters);
    };
    double PerSiteNs = std::max(0.0, bestLoopNs(true) - bestLoopNs(false));

    SxfFile File =
        generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
    auto editOnce = [&File](bool Trace) {
      Executable::Options Opts;
      Opts.Trace = Trace;
      Executable Exec(SxfFile(File), Opts);
      Qpt2Profiler Profiler(Exec);
      Profiler.instrument();
      benchmark::DoNotOptimize(Exec.writeEditedExecutable().hasValue());
    };
    // Count the span sites one edit crosses.
    TraceCollector::instance().reset();
    editOnce(true);
    traceSetEnabled(false);
    uint64_t Sites = TraceCollector::instance().drain().size();
    // Time the same edit with tracing disabled (the shipping default).
    editOnce(false);
    double BestEditNs = 1e18;
    for (int Rep = 0; Rep < (Smoke ? 2 : 10); ++Rep) {
      auto T0 = Clock::now();
      editOnce(false);
      auto T1 = Clock::now();
      BestEditNs = std::min(
          BestEditNs, std::chrono::duration<double, std::nano>(T1 - T0).count());
    }
    double OverheadPct = 100.0 * PerSiteNs * static_cast<double>(Sites) /
                         BestEditNs;
    // A smoke rep is too short for a stable per-site estimate; report it
    // without asserting.
    TraceOverheadOk = Smoke || OverheadPct < 1.0;
    std::printf("  disabled span site:   %8.3f ns\n", PerSiteNs);
    std::printf("  sites per edit:       %8llu\n",
                static_cast<unsigned long long>(Sites));
    std::printf("  edit path (untraced): %8.3f ms\n", BestEditNs / 1e6);
    std::printf("  disabled-tracing tax: %8.4f%%  -> %s\n", OverheadPct,
                TraceOverheadOk ? "under 1%, ok" : "OVER 1% (regression!)");
    Sink.metric("trace_disabled_overhead", OverheadPct, "percent");
    Sink.metric("trace_sites_per_edit", static_cast<double>(Sites), "count");
  }

  // Structured logging compiled in but disabled must be equally invisible:
  // a gated-off EEL_LOG is one relaxed atomic load and a compare, and its
  // field expressions are never evaluated. Same method as the trace tax —
  // per-site cost times the sites one warm serve request crosses (counted
  // by running one request at Trace level), against the warm request time.
  printHeader("EEL_LOG compiled in but disabled (acceptance: <0.1%)");
  bool LogOverheadOk = true;
  {
    logSetLevel(LogLevel::Off);
    using Clock = std::chrono::steady_clock;
    const uint64_t Iters = Smoke ? (1u << 16) : (1u << 21);
    const int LoopReps = Smoke ? 2 : 7;
    auto bestLoopNs = [&](bool WithLog) {
      double Best = 1e18;
      for (int Rep = 0; Rep < LoopReps; ++Rep) {
        auto T0 = Clock::now();
        for (uint64_t I = 0; I < Iters; ++I) {
          if (WithLog) {
            EEL_LOG(LogLevel::Debug, "bench.noop", logNum("i", I));
            benchmark::DoNotOptimize(I);
          } else {
            benchmark::DoNotOptimize(I);
          }
        }
        auto T1 = Clock::now();
        Best = std::min(
            Best, std::chrono::duration<double, std::nano>(T1 - T0).count());
      }
      return Best / static_cast<double>(Iters);
    };
    double PerSiteNs = std::max(0.0, bestLoopNs(true) - bestLoopNs(false));

    // Count the log sites one warm request crosses: run it once with every
    // record admitted, sunk to a scratch file.
    SxfFile File =
        generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
    ServeRequest Req;
    Req.ToolSpec = "null";
    Req.Threads = 1;
    Req.ImageBytes = File.serialize();
    EditService Service(ServeLimits{});
    if (Service.handle(Req).Status != ServeStatus::Ok) {
      std::fprintf(stderr, "FAIL: warm-up serve request failed\n");
      return 1;
    }
    std::string LogPath =
        "/tmp/eel_bench_overhead_log." + std::to_string(::getpid()) + ".jsonl";
    Logger::instance().setPath(LogPath);
    Logger::instance().resetCounts();
    logSetLevel(LogLevel::Trace);
    Service.handle(Req);
    logSetLevel(LogLevel::Off);
    Logger::instance().flushAll();
    uint64_t Sites = Logger::instance().emittedCount();
    Logger::instance().useStderr();
    std::remove(LogPath.c_str());

    // Time the same warm request with logging off (the shipping default).
    double BestReqNs = 1e18;
    for (int Rep = 0; Rep < (Smoke ? 2 : 10); ++Rep) {
      auto T0 = Clock::now();
      Service.handle(Req);
      auto T1 = Clock::now();
      BestReqNs = std::min(
          BestReqNs, std::chrono::duration<double, std::nano>(T1 - T0).count());
    }
    double OverheadPct =
        100.0 * PerSiteNs * static_cast<double>(Sites) / BestReqNs;
    LogOverheadOk = Smoke || OverheadPct < 0.1;
    std::printf("  disabled log site:    %8.3f ns\n", PerSiteNs);
    std::printf("  sites per request:    %8llu\n",
                static_cast<unsigned long long>(Sites));
    std::printf("  warm request:         %8.3f ms\n", BestReqNs / 1e6);
    std::printf("  disabled-logging tax: %8.4f%%  -> %s\n", OverheadPct,
                LogOverheadOk ? "under 0.1%, ok" : "OVER 0.1% (regression!)");
    Sink.metric("log_disabled_overhead", OverheadPct, "percent");
    Sink.metric("log_sites_per_request", static_cast<double>(Sites), "count");
  }

  std::printf("\nshape: identity ~1x; profiling a small-integer factor; "
              "translation adds the\nbinary-search cost only on "
              "translated jumps; scavenging keeps spills rare\n(§3.5: "
              "dead registers usually suffice).\n");
  return TraceOverheadOk && LogOverheadOk ? 0 : 1;
}
