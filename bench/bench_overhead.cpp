//===- bench/bench_overhead.cpp - Profiling/editing run-time overheads ---------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time overheads of the editing mechanisms themselves:
///
///  * qpt2 edge/block profiling slowdown (the original qpt's domain [4]);
///  * §3.5 register scavenging: how often snippets got free registers vs
///    needed spill wrapping or condition-code saves;
///  * the cost of run-time address translation on tail-call-heavy
///    (sunpro-style) programs — the §3.3 fallback in action;
///  * sandboxing (SFI) overhead, the paper's first application class.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "tools/Qpt.h"
#include "tools/Sandbox.h"
#include "tools/WindTunnel.h"
#include "tools/Optimizer.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace eel;
using namespace eelbench;

static void BM_RunInstrumented(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
  Executable Exec((SxfFile(File)));
  Qpt2Profiler Profiler(Exec);
  Profiler.instrument();
  SxfFile Edited = Exec.writeEditedExecutable().takeValue();
  for (auto _ : State) {
    RunResult R = runToCompletion(Edited);
    benchmark::DoNotOptimize(R.Instructions);
  }
}
BENCHMARK(BM_RunInstrumented)->Unit(benchmark::kMillisecond);

/// The edit-and-write path with the Options::Verify gate off (Arg 0) and
/// on (Arg 1): the gate runs the verifier's re-analysis-free profile
/// (passes 1-4), and must stay a small fraction of the path it guards.
static void BM_EditAndWrite(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
  for (auto _ : State) {
    Executable::Options Opts;
    Opts.Verify = State.range(0) != 0;
    Executable Exec(SxfFile(File), Opts);
    Qpt2Profiler Profiler(Exec);
    Profiler.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    benchmark::DoNotOptimize(Edited.hasValue());
  }
}
BENCHMARK(BM_EditAndWrite)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

namespace {

struct OverheadRow {
  const char *Name;
  double Slowdown;
  uint64_t SnippetInstances;
  uint64_t Spills;
  uint64_t CCSaves;
  uint64_t TranslationSites;
};

OverheadRow measure(const char *Name, TargetArch Arch, bool Sunpro,
                    void (*Instrument)(Executable &),
                    unsigned DeadCodePercent = 0) {
  uint64_t OrigInsts = 0, EditInsts = 0;
  OverheadRow Row{Name, 0, 0, 0, 0, 0};
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    WorkloadOptions MemberOpts = suiteMember(Sunpro, Seed, 24);
    MemberOpts.DeadCodePercent = DeadCodePercent;
    SxfFile File = generateWorkload(Arch, MemberOpts);
    RunResult Orig = runToCompletion(File);
    Executable Exec((SxfFile(File)));
    Instrument(Exec);
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    if (Edited.hasError())
      continue;
    RunResult After = runToCompletion(Edited.value());
    if (After.Output != Orig.Output)
      std::printf("  WARNING: %s diverged on seed %llu\n", Name,
                  static_cast<unsigned long long>(Seed));
    OrigInsts += Orig.Instructions;
    EditInsts += After.Instructions;
    Row.SnippetInstances += Exec.editStats().SnippetInstances;
    Row.Spills += Exec.editStats().SnippetSpills;
    Row.CCSaves += Exec.editStats().SnippetCCSaves;
    Row.TranslationSites += Exec.editStats().TranslationSites;
  }
  Row.Slowdown =
      static_cast<double>(EditInsts) / static_cast<double>(OrigInsts);
  return Row;
}

void printRow(const OverheadRow &Row) {
  std::printf("%-34s %8.2fx %9llu %7llu %8llu %7llu\n", Row.Name,
              Row.Slowdown,
              static_cast<unsigned long long>(Row.SnippetInstances),
              static_cast<unsigned long long>(Row.Spills),
              static_cast<unsigned long long>(Row.CCSaves),
              static_cast<unsigned long long>(Row.TranslationSites));
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Editing-mechanism run-time overheads");
  std::printf("%-34s %9s %9s %7s %8s %7s\n", "configuration", "slowdown",
              "snippets", "spills", "ccsaves", "xlate");

  printRow(measure("identity rewrite (srisc)", TargetArch::Srisc, false,
                   [](Executable &) {}));
  printRow(measure("identity rewrite, tail calls", TargetArch::Srisc, true,
                   [](Executable &) {}));
  printRow(measure("qpt2 edge+block profile (srisc)", TargetArch::Srisc,
                   false, [](Executable &Exec) {
                     auto *P = new Qpt2Profiler(Exec);
                     P->instrument();
                   }));
  printRow(measure("qpt2 edge+block profile (mrisc)", TargetArch::Mrisc,
                   false, [](Executable &Exec) {
                     auto *P = new Qpt2Profiler(Exec);
                     P->instrument();
                   }));
  printRow(measure("qpt2 profile + translation", TargetArch::Srisc, true,
                   [](Executable &Exec) {
                     auto *P = new Qpt2Profiler(Exec);
                     P->instrument();
                   }));
  printRow(measure("sandbox store checks (srisc)", TargetArch::Srisc, false,
                   [](Executable &Exec) {
                     auto *S = new Sandboxer(Exec, 0x400000, 0x7FE00000);
                     S->instrument();
                   }));
  printRow(measure("WWT cycle counter (srisc)", TargetArch::Srisc, false,
                   [](Executable &Exec) {
                     auto *C = new CycleCounter(Exec, /*Quantum=*/1024);
                     C->instrument();
                   }));
  printRow(measure("dead-code elimination (srisc)", TargetArch::Srisc,
                   false,
                   [](Executable &Exec) {
                     auto *D = new DeadCodeEliminator(Exec);
                     D->run();
                   },
                   /*DeadCodePercent=*/30));

  // The verifier gate's cost relative to the edit-and-write path it
  // guards (acceptance: under 10%).
  printHeader("Options::Verify gate cost on the edit-and-write path");
  {
    SxfFile File =
        generateWorkload(TargetArch::Srisc, suiteMember(false, 13, 24));
    auto editAndWrite = [&File](bool Verify) {
      Executable::Options Opts;
      Opts.Verify = Verify;
      Executable Exec(SxfFile(File), Opts);
      Qpt2Profiler Profiler(Exec);
      Profiler.instrument();
      Expected<SxfFile> Edited = Exec.writeEditedExecutable();
      if (Edited.hasError())
        std::printf("  WARNING: edit failed: %s\n",
                    Edited.error().message().c_str());
    };
    using Clock = std::chrono::steady_clock;
    // Minimum-of-N is the noise-robust estimator here: scheduler
    // interference on a loaded machine only ever inflates a run, so the
    // fastest rep of each configuration is the least-perturbed one.
    const int Reps = 30;
    auto fastestRep = [&](bool Verify) {
      double Best = 1e9;
      for (int I = 0; I < Reps; ++I) {
        auto T0 = Clock::now();
        editAndWrite(Verify);
        auto T1 = Clock::now();
        double S = std::chrono::duration<double>(T1 - T0).count();
        if (S < Best)
          Best = S;
      }
      return Best;
    };
    editAndWrite(false); // warm up caches before timing either side
    editAndWrite(true);
    double Off = fastestRep(false);
    double On = fastestRep(true);
    std::printf("  edit+write, verify off: %8.3f ms\n", Off * 1e3);
    std::printf("  edit+write, verify on:  %8.3f ms\n", On * 1e3);
    std::printf("  verify gate adds:       %8.2f%%\n",
                (On / Off - 1.0) * 100.0);
  }

  std::printf("\nshape: identity ~1x; profiling a small-integer factor; "
              "translation adds the\nbinary-search cost only on "
              "translated jumps; scavenging keeps spills rare\n(§3.5: "
              "dead registers usually suffice).\n");
  return 0;
}
