//===- bench/bench_ir.cpp - Arena/SoA IR and zero-copy writer ------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the flat structure-of-arrays instruction IR against the shape
/// it replaced, and the zero-copy writer against the seed byte-push path:
///
///   - row walk: a liveness-style backward mask fold over every block.
///     The SoA side does what core/Liveness.cpp does — resolve rowOps()
///     through the interned table into flat mask arrays once per solve,
///     then iterate over contiguous uint64 rows — versus chasing each
///     row's Instruction pointer for reads()/writes() on every fixpoint
///     round, which is what the pointer-linked IR forced. Reported in
///     instructions/second over the iterated fold.
///   - edit+write: the full pipeline with the default zero-copy emission
///     versus Options::LegacyWriter, with an unconditional byte-identity
///     assertion between the two images (the legacy path is kept in tree
///     precisely to be this oracle; a mismatch exits nonzero).
///   - arena/interning statistics: flyweight-pool arena bytes and the
///     interned-operand dedup ratio, showing why rows carry a 32-bit
///     index instead of two 64-bit masks.
///
/// `--smoke` (stripped before benchmark::Initialize, like --json) shrinks
/// the workload and repetition counts to one short iteration for the
/// `bench-smoke` build target.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "core/Routine.h"
#include "support/Arena.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

using namespace eel;
using namespace eelbench;

namespace {

/// Analyzed executable plus its routine CFGs, ready to walk. For the SoA
/// side, the per-graph flat mask arrays are resolved up front — the same
/// one-time prologue core/Liveness.cpp runs before its fixpoint.
struct AnalyzedFile {
  std::unique_ptr<Executable> Exec;
  std::vector<const Cfg *> Graphs;
  std::vector<std::vector<uint64_t>> Reads, Writes; ///< Parallel to Graphs.
};

AnalyzedFile analyze(const SxfFile &File) {
  AnalyzedFile A;
  Expected<std::unique_ptr<Executable>> Opened = Executable::openImage(
      SxfFile(File));
  if (Opened.hasError())
    return A;
  A.Exec = std::move(Opened.value());
  A.Exec->readContents();
  for (const std::unique_ptr<Routine> &R : A.Exec->routines())
    if (const Cfg *G = R->controlFlowGraph())
      A.Graphs.push_back(G);
  for (const Cfg *G : A.Graphs) {
    std::span<const CfgInst> Rows = G->instRows();
    std::span<const uint32_t> Ops = G->rowOps();
    const InternedPairTable *Table = G->operandTable();
    std::vector<uint64_t> Reads(Rows.size()), Writes(Rows.size());
    for (size_t I = 0; I < Rows.size(); ++I) {
      if (Table && Ops[I] != Instruction::NoOpIndex) {
        InternedPairTable::Pair P = Table->get(Ops[I]);
        Reads[I] = P.First;
        Writes[I] = P.Second;
      } else {
        Reads[I] = Rows[I].Inst->reads().mask();
        Writes[I] = Rows[I].Inst->writes().mask();
      }
    }
    A.Reads.push_back(std::move(Reads));
    A.Writes.push_back(std::move(Writes));
  }
  return A;
}

/// The SoA walk: fold the pre-resolved flat mask arrays backwards through
/// every block's row range. No Instruction dereference, no hashing —
/// contiguous uint64 loads, exactly Liveness's inner loop.
uint64_t walkRows(const Cfg &G, const std::vector<uint64_t> &Reads,
                  const std::vector<uint64_t> &Writes, uint64_t &Instrs) {
  uint64_t Mask = 0;
  for (const BasicBlock *B : G.blocks()) {
    const InstrIdx First = B->firstInstr();
    for (InstrIdx I = First + B->size(); I-- > First;) {
      Mask = (Mask & ~Writes[I]) | Reads[I];
      ++Instrs;
    }
  }
  return Mask;
}

/// The pointer-chase walk the SoA layout replaced: same fold, but every
/// row dereferences its Instruction for the register sets.
uint64_t walkPointers(const Cfg &G, uint64_t &Instrs) {
  uint64_t Mask = 0;
  for (const BasicBlock *B : G.blocks()) {
    std::span<const CfgInst> Insts = B->insts();
    for (size_t I = Insts.size(); I-- > 0;) {
      const Instruction *Inst = Insts[I].Inst;
      Mask = (Mask & ~Inst->writes().mask()) | Inst->reads().mask();
      ++Instrs;
    }
  }
  return Mask;
}

/// \p Walk is called per (file, graph index) and folds one graph.
template <typename WalkFn>
double walkInstrsPerSec(const std::vector<AnalyzedFile> &Suite, WalkFn Walk,
                        unsigned Reps) {
  uint64_t Instrs = 0;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned R = 0; R < Reps; ++R)
    for (const AnalyzedFile &A : Suite)
      for (size_t GI = 0; GI < A.Graphs.size(); ++GI)
        benchmark::DoNotOptimize(Walk(A, GI, Instrs));
  auto End = std::chrono::steady_clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();
  return Secs > 0.0 ? static_cast<double>(Instrs) / Secs : 0.0;
}

uint64_t rowWalkOne(const AnalyzedFile &A, size_t GI, uint64_t &Instrs) {
  return walkRows(*A.Graphs[GI], A.Reads[GI], A.Writes[GI], Instrs);
}

uint64_t ptrWalkOne(const AnalyzedFile &A, size_t GI, uint64_t &Instrs) {
  return walkPointers(*A.Graphs[GI], Instrs);
}

/// One full edit+write pass; returns the serialized edited image.
std::vector<uint8_t> editPipeline(const SxfFile &File, bool Legacy,
                                  unsigned Threads) {
  Executable::Options Opts;
  Opts.Threads = Threads;
  Opts.LegacyWriter = Legacy;
  Executable Exec(SxfFile(File), Opts);
  Exec.readContents();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError())
    return {};
  return Edited.value().serialize();
}

double suiteMillis(const std::vector<SxfFile> &Suite, bool Legacy,
                   unsigned Threads) {
  auto Start = std::chrono::steady_clock::now();
  for (const SxfFile &File : Suite)
    benchmark::DoNotOptimize(editPipeline(File, Legacy, Threads));
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace

static void BM_RowWalk(benchmark::State &State) {
  AnalyzedFile A =
      analyze(generateWorkload(TargetArch::Srisc, suiteMember(false, 11)));
  uint64_t Instrs = 0;
  for (auto _ : State)
    for (size_t GI = 0; GI < A.Graphs.size(); ++GI)
      benchmark::DoNotOptimize(rowWalkOne(A, GI, Instrs));
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_RowWalk);

static void BM_PointerWalk(benchmark::State &State) {
  AnalyzedFile A =
      analyze(generateWorkload(TargetArch::Srisc, suiteMember(false, 11)));
  uint64_t Instrs = 0;
  for (auto _ : State)
    for (const Cfg *G : A.Graphs)
      benchmark::DoNotOptimize(walkPointers(*G, Instrs));
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_PointerWalk);

static void BM_EditWriteZeroCopy(benchmark::State &State) {
  SxfFile File = generateWorkload(TargetArch::Srisc, suiteMember(true, 7));
  for (auto _ : State)
    benchmark::DoNotOptimize(editPipeline(File, /*Legacy=*/false, 1));
}
BENCHMARK(BM_EditWriteZeroCopy)->Unit(benchmark::kMillisecond);

static void BM_EditWriteLegacy(benchmark::State &State) {
  SxfFile File = generateWorkload(TargetArch::Srisc, suiteMember(true, 7));
  for (auto _ : State)
    benchmark::DoNotOptimize(editPipeline(File, /*Legacy=*/true, 1));
}
BENCHMARK(BM_EditWriteLegacy)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_ir", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const bool SmokeMode = Sink.smoke();
  const unsigned SuiteCount = SmokeMode ? 1 : 3;
  const unsigned Routines = SmokeMode ? 8 : 24;
  const unsigned WalkReps = SmokeMode ? 2 : 20;
  const unsigned TimedPasses = SmokeMode ? 1 : 5;

  printHeader("IR walk throughput (SoA rows vs pointer chase)");

  std::vector<SxfFile> Files = makeSuite(TargetArch::Srisc, false, SuiteCount,
                                         Routines);
  for (SxfFile &F : makeSuite(TargetArch::Srisc, true, SuiteCount, Routines))
    Files.push_back(std::move(F));

  std::vector<AnalyzedFile> Suite;
  for (const SxfFile &File : Files)
    Suite.push_back(analyze(File));

  // Warm-up (decode-index population), then measure each walk.
  uint64_t Warm = 0;
  for (const AnalyzedFile &A : Suite)
    for (size_t GI = 0; GI < A.Graphs.size(); ++GI) {
      benchmark::DoNotOptimize(rowWalkOne(A, GI, Warm));
      benchmark::DoNotOptimize(ptrWalkOne(A, GI, Warm));
    }

  double RowIps = walkInstrsPerSec(Suite, rowWalkOne, WalkReps);
  double PtrIps = walkInstrsPerSec(Suite, ptrWalkOne, WalkReps);
  double WalkSpeedup = PtrIps > 0.0 ? RowIps / PtrIps : 0.0;
  std::printf("%-24s %15s\n", "walk", "instrs/sec");
  std::printf("%-24s %15.3e\n", "SoA rows + interned ops", RowIps);
  std::printf("%-24s %15.3e\n", "pointer chase", PtrIps);
  std::printf("%-24s %14.2fx\n", "row-walk speedup", WalkSpeedup);
  Sink.metric("soa_walk_ips", RowIps, "instrs/s");
  Sink.metric("ptr_walk_ips", PtrIps, "instrs/s");
  Sink.metric("walk_speedup", WalkSpeedup, "x");

  printHeader("Edit+write: zero-copy emission vs legacy byte-push");

  // Byte identity first — the legacy writer exists to be this oracle.
  bool Identical = true;
  for (const SxfFile &File : Files)
    Identical &= editPipeline(File, /*Legacy=*/false, 1) ==
                 editPipeline(File, /*Legacy=*/true, 1);
  std::printf("zero-copy vs legacy images: %s\n",
              Identical ? "byte-identical" : "MISMATCH (bug!)");
  Sink.metric("writer_identical", Identical ? 1 : 0, "bool");

  double ZeroMs = 1e300, LegacyMs = 1e300;
  for (unsigned P = 0; P < TimedPasses; ++P) {
    ZeroMs = std::min(ZeroMs, suiteMillis(Files, /*Legacy=*/false, 1));
    LegacyMs = std::min(LegacyMs, suiteMillis(Files, /*Legacy=*/true, 1));
  }
  double WriterSpeedup = ZeroMs > 0.0 ? LegacyMs / ZeroMs : 0.0;
  std::printf("%-24s %12s\n", "writer", "suite ms");
  std::printf("%-24s %12.1f\n", "zero-copy", ZeroMs);
  std::printf("%-24s %12.1f\n", "legacy byte-push", LegacyMs);
  std::printf("%-24s %11.2fx\n", "writer speedup", WriterSpeedup);
  Sink.metric("zero_copy_suite_ms", ZeroMs, "ms");
  Sink.metric("legacy_suite_ms", LegacyMs, "ms");
  Sink.metric("writer_speedup", WriterSpeedup, "x");

  printHeader("Arena and interned-operand statistics");

  uint64_t Requested = 0, PoolArenaBytes = 0, OpPairs = 0, RowCount = 0;
  for (const AnalyzedFile &A : Suite) {
    InstructionPool &Pool = A.Exec->pool();
    Requested += Pool.requested();
    PoolArenaBytes += Pool.arenaBytes();
    OpPairs += Pool.operands().size();
    for (const Cfg *G : A.Graphs)
      RowCount += G->instRows().size();
  }
  double DedupRatio =
      OpPairs > 0 ? static_cast<double>(RowCount) / static_cast<double>(OpPairs)
                  : 0.0;
  std::printf("CFG rows:                 %llu\n",
              static_cast<unsigned long long>(RowCount));
  std::printf("distinct operand pairs:   %llu  (%.1f rows/pair)\n",
              static_cast<unsigned long long>(OpPairs), DedupRatio);
  std::printf("pool decode requests:     %llu\n",
              static_cast<unsigned long long>(Requested));
  std::printf("pool arena bytes:         %llu\n",
              static_cast<unsigned long long>(PoolArenaBytes));
  Sink.metric("cfg_rows", static_cast<double>(RowCount), "rows");
  Sink.metric("operand_pairs", static_cast<double>(OpPairs), "pairs");
  Sink.metric("operand_dedup_ratio", DedupRatio, "rows/pair");
  Sink.metric("pool_arena_bytes", static_cast<double>(PoolArenaBytes),
              "bytes");

  if (!Identical) {
    std::fprintf(stderr,
                 "FAIL: zero-copy writer diverged from the legacy oracle\n");
    return 1;
  }
  std::printf("\nrows resolve operands by 32-bit interned index; the legacy\n"
              "writer stays in tree as the byte-identity oracle above.\n");
  return 0;
}
