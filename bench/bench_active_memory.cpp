//===- bench/bench_active_memory.cpp - §1/§5 Active Memory slowdown -----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Active Memory result the paper leads with: inserting
/// cache-miss tests before memory references "dramatically lowered the
/// cost of cache simulation — to a 2-7x slowdown". We instrument the
/// workload suite with the inline direct-mapped cache test, run original
/// and edited programs in the simulator, and report the instruction-count
/// slowdown per cache configuration, along with miss ratios and the CC
/// save/restore statistics behind the §5 Blizzard-S liveness optimization.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "tools/ActiveMem.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace eel;
using namespace eelbench;

static void BM_InstrumentActiveMem(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 11, 32));
  for (auto _ : State) {
    Executable Exec((SxfFile(File)));
    ActiveMemory AM(Exec);
    AM.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    benchmark::DoNotOptimize(Edited);
  }
}
BENCHMARK(BM_InstrumentActiveMem)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_active_memory", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Active Memory: inline cache simulation slowdown");
  std::printf("%-8s %6s %6s %12s %12s %9s %9s %7s %8s\n", "target", "lines",
              "lnsz", "orig insts", "edit insts", "slowdown", "accesses",
              "misses", "ccsaves");
  struct Config {
    unsigned Lines, LineBytes;
  };
  for (TargetArch Arch : AllTargetArches) {
    for (Config C : {Config{16, 8}, Config{64, 16}, Config{256, 32}}) {
      uint64_t OrigInsts = 0, EditInsts = 0, Accesses = 0, Misses = 0;
      unsigned CCSaves = 0;
      for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
        SxfFile File = generateWorkload(Arch, suiteMember(false, Seed, 24));
        RunResult Orig = runToCompletion(File);
        Executable Exec((SxfFile(File)));
        CacheConfig Cache;
        Cache.Lines = C.Lines;
        Cache.LineBytes = C.LineBytes;
        ActiveMemory AM(Exec, Cache);
        AM.instrument();
        Expected<SxfFile> Edited = Exec.writeEditedExecutable();
        if (Edited.hasError()) {
          std::printf("  instrumentation failed: %s\n",
                      Edited.error().message().c_str());
          continue;
        }
        Machine M(Edited.value());
        RunResult After = M.run();
        if (After.Output != Orig.Output)
          std::printf("  WARNING: behaviour diverged (seed %llu)\n",
                      static_cast<unsigned long long>(Seed));
        OrigInsts += Orig.Instructions;
        EditInsts += After.Instructions;
        Accesses += AM.accesses(M.memory());
        Misses += AM.misses(M.memory());
        CCSaves += Exec.editStats().SnippetCCSaves;
      }
      const char *ArchName = Arch == TargetArch::Srisc   ? "srisc"
                           : Arch == TargetArch::Mrisc ? "mrisc"
                                                       : "arisc";
      double Slowdown =
          static_cast<double>(EditInsts) / static_cast<double>(OrigInsts);
      std::printf("%-8s %6u %6u %12llu %12llu %8.2fx %9llu %7llu %8u\n",
                  ArchName, C.Lines, C.LineBytes,
                  static_cast<unsigned long long>(OrigInsts),
                  static_cast<unsigned long long>(EditInsts), Slowdown,
                  static_cast<unsigned long long>(Accesses),
                  static_cast<unsigned long long>(Misses), CCSaves);
      Sink.metric("slowdown_" + std::string(ArchName) + "_l" +
                      std::to_string(C.Lines),
                  Slowdown, "x");
    }
  }
  std::printf("\npaper: Active Memory runs cache simulation at a 2-7x "
              "slowdown. MRISC needs no\nCC saves (compare-and-branch), "
              "SRISC saves CC only where liveness demands —\nthe Blizzard-S "
              "optimization of §5.\n");
  return 0;
}
