//===- bench/BenchUtil.h - Shared benchmark utilities -----------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: the standard workload suites
/// standing in for SPEC92 (a "gcc-style" suite with plain dispatch tables
/// and a "sunpro-style" suite with frame-popping tail calls through
/// function-pointer cells), repository-relative source access for the
/// line-count comparisons, and table printing.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_BENCH_BENCHUTIL_H
#define EEL_BENCH_BENCHUTIL_H

#include "support/FileIO.h"
#include "workload/Generator.h"

#include <cstdio>
#include <string>
#include <vector>

namespace eelbench {

/// Options for one member of a SPEC-like suite.
inline eel::WorkloadOptions suiteMember(bool SunproStyle, uint64_t Seed,
                                        unsigned Routines = 24) {
  eel::WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.Routines = Routines;
  Opts.SegmentsPerRoutine = 6;
  Opts.SwitchPercent = 35;
  Opts.TailCallPercent = SunproStyle ? 35 : 0;
  return Opts;
}

/// The paper's SPEC92 stand-in: \p Count programs of one compiler style.
inline std::vector<eel::SxfFile> makeSuite(eel::TargetArch Arch,
                                           bool SunproStyle, unsigned Count,
                                           unsigned Routines = 24) {
  std::vector<eel::SxfFile> Suite;
  for (unsigned I = 0; I < Count; ++I)
    Suite.push_back(eel::generateWorkload(
        Arch, suiteMember(SunproStyle, 1000 + I, Routines)));
  return Suite;
}

/// Repository root derived from this header's compile-time path.
inline std::string repoRoot() {
  std::string Path = __FILE__;            // .../bench/BenchUtil.h
  size_t Slash = Path.rfind('/');          // strip file
  Slash = Path.rfind('/', Slash - 1);      // strip bench/
  return Path.substr(0, Slash);
}

/// Non-comment, non-blank lines of a repository source file; 0 if missing.
inline unsigned sourceLines(const std::string &RelPath) {
  eel::Expected<std::vector<uint8_t>> Bytes =
      eel::readFileBytes(repoRoot() + "/" + RelPath);
  if (Bytes.hasError())
    return 0;
  return eel::countCodeLines(
      std::string(Bytes.value().begin(), Bytes.value().end()));
}

inline void printHeader(const char *Title) {
  std::printf("\n==== %s ====\n", Title);
}

} // namespace eelbench

#endif // EEL_BENCH_BENCHUTIL_H
