//===- bench/BenchUtil.h - Shared benchmark utilities -----------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: the standard workload suites
/// standing in for SPEC92 (a "gcc-style" suite with plain dispatch tables
/// and a "sunpro-style" suite with frame-popping tail calls through
/// function-pointer cells), repository-relative source access for the
/// line-count comparisons, and table printing.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_BENCH_BENCHUTIL_H
#define EEL_BENCH_BENCHUTIL_H

#include "support/FileIO.h"
#include "support/Json.h"
#include "workload/Generator.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace eelbench {

/// Options for one member of a SPEC-like suite.
inline eel::WorkloadOptions suiteMember(bool SunproStyle, uint64_t Seed,
                                        unsigned Routines = 24) {
  eel::WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.Routines = Routines;
  Opts.SegmentsPerRoutine = 6;
  Opts.SwitchPercent = 35;
  Opts.TailCallPercent = SunproStyle ? 35 : 0;
  return Opts;
}

/// The paper's SPEC92 stand-in: \p Count programs of one compiler style.
inline std::vector<eel::SxfFile> makeSuite(eel::TargetArch Arch,
                                           bool SunproStyle, unsigned Count,
                                           unsigned Routines = 24) {
  std::vector<eel::SxfFile> Suite;
  for (unsigned I = 0; I < Count; ++I)
    Suite.push_back(eel::generateWorkload(
        Arch, suiteMember(SunproStyle, 1000 + I, Routines)));
  return Suite;
}

/// Repository root derived from this header's compile-time path.
inline std::string repoRoot() {
  std::string Path = __FILE__;            // .../bench/BenchUtil.h
  size_t Slash = Path.rfind('/');          // strip file
  Slash = Path.rfind('/', Slash - 1);      // strip bench/
  return Path.substr(0, Slash);
}

/// Non-comment, non-blank lines of a repository source file; 0 if missing.
inline unsigned sourceLines(const std::string &RelPath) {
  eel::Expected<std::vector<uint8_t>> Bytes =
      eel::readFileBytes(repoRoot() + "/" + RelPath);
  if (Bytes.hasError())
    return 0;
  return eel::countCodeLines(
      std::string(Bytes.value().begin(), Bytes.value().end()));
}

inline void printHeader(const char *Title) {
  std::printf("\n==== %s ====\n", Title);
}

/// Machine-readable benchmark results. Construct one per bench binary
/// BEFORE benchmark::Initialize — the constructor strips `--json=FILE`
/// and `--smoke` from argv (google-benchmark aborts on flags it does not
/// recognize). Each headline number a bench prints is also handed to
/// metric(); when --json was given, the destructor writes them as one
/// JSON document
///
///   {"schema": "eel-bench/1", "bench": NAME,
///    "metrics": [{"name": ..., "value": ..., "unit": ...}, ...]}
///
/// scripts/run_benches.sh runs every bench this way and splices the
/// per-bench documents into BENCH_observability.json / BENCH_ir.json.
/// The `bench-smoke` build target passes --smoke; benches that do heavy
/// headline work shrink workloads and repetition counts when smoke() is
/// set (and skip throughput assertions — a smoke rep proves the bench
/// runs and emits valid JSON, not that the host is fast).
class JsonSink {
public:
  JsonSink(const char *BenchName, int *Argc, char **Argv) : Bench(BenchName) {
    int Kept = 1;
    for (int I = 1; I < *Argc; ++I) {
      if (!std::strncmp(Argv[I], "--json=", 7))
        Path = Argv[I] + 7;
      else if (!std::strcmp(Argv[I], "--smoke"))
        Smoke = true;
      else
        Argv[Kept++] = Argv[I];
    }
    *Argc = Kept;
  }

  JsonSink(const JsonSink &) = delete;
  JsonSink &operator=(const JsonSink &) = delete;

  bool enabled() const { return !Path.empty(); }
  bool smoke() const { return Smoke; }

  void metric(const std::string &Name, double Value, const char *Unit = "") {
    Rows.push_back({Name, Value, Unit});
  }

  ~JsonSink() {
    if (Path.empty())
      return;
    eel::JsonWriter S(/*Indent=*/false);
    S.beginObject();
    S.key("schema");
    S.value("eel-bench/1");
    S.key("bench");
    S.value(Bench);
    S.key("metrics");
    S.beginArray();
    for (const Row &R : Rows) {
      S.beginObject();
      S.key("name");
      S.value(R.Name);
      S.key("value");
      S.valueRaw(formatNumber(R.Value));
      S.key("unit");
      S.value(R.Unit);
      S.endObject();
    }
    S.endArray();
    S.endObject();
    std::string Text = S.take();
    Text.push_back('\n');
    eel::Expected<bool> Wrote = eel::writeFileBytes(
        Path, std::vector<uint8_t>(Text.begin(), Text.end()));
    if (Wrote.hasError())
      std::fprintf(stderr, "warning: --json=%s: %s\n", Path.c_str(),
                   Wrote.error().describe().c_str());
  }

private:
  struct Row {
    std::string Name;
    double Value;
    std::string Unit;
  };

  /// Counters print exactly; measurements keep 9 significant digits
  /// (JsonWriter's default %.6g would round large instruction counts).
  static std::string formatNumber(double V) {
    char Buf[64];
    if (std::nearbyint(V) == V && std::fabs(V) < 9.007199254740992e15)
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    else
      std::snprintf(Buf, sizeof(Buf), "%.9g", V);
    return Buf;
  }

  std::string Bench;
  std::string Path;
  bool Smoke = false;
  std::vector<Row> Rows;
};

} // namespace eelbench

#endif // EEL_BENCH_BENCHUTIL_H
