//===- bench/bench_parallel.cpp - Parallel pipeline scaling -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the parallel editing pipeline: full-pipeline wall time
/// (readContents + writeEditedExecutable) at 1/2/4/8 worker threads over the
/// largest workload suite, with a byte-identity check of every edited image
/// against the Threads = 1 reference. Speedup beyond 1.0x requires real
/// cores; on a single-core host the table instead demonstrates that the
/// parallel machinery's overhead is small and its output is exact.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

using namespace eel;
using namespace eelbench;

namespace {

/// One full pipeline pass; returns the serialized edited image.
std::vector<uint8_t> editPipeline(const SxfFile &File, unsigned Threads) {
  Executable::Options Opts;
  Opts.Threads = Threads;
  Executable Exec(SxfFile(File), Opts);
  Exec.readContents();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError())
    return {};
  return Edited.value().serialize();
}

double suiteMillis(const std::vector<SxfFile> &Suite, unsigned Threads) {
  auto Start = std::chrono::steady_clock::now();
  for (const SxfFile &File : Suite)
    benchmark::DoNotOptimize(editPipeline(File, Threads));
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace

static void BM_PipelineSerial(benchmark::State &State) {
  SxfFile File = generateWorkload(TargetArch::Srisc, suiteMember(true, 7, 32));
  for (auto _ : State)
    benchmark::DoNotOptimize(editPipeline(File, 1));
}
BENCHMARK(BM_PipelineSerial)->Unit(benchmark::kMillisecond);

static void BM_PipelineParallel(benchmark::State &State) {
  SxfFile File = generateWorkload(TargetArch::Srisc, suiteMember(true, 7, 32));
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(editPipeline(File, Threads));
}
BENCHMARK(BM_PipelineParallel)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_parallel", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Parallel pipeline scaling (readContents + writeEditedExecutable)");
  std::printf("host hardware concurrency: %u\n",
              std::thread::hardware_concurrency());

  // The largest suite: both compiler styles, big routine counts.
  std::vector<SxfFile> Suite = makeSuite(TargetArch::Srisc, false, 3, 32);
  for (SxfFile &F : makeSuite(TargetArch::Srisc, true, 3, 32))
    Suite.push_back(std::move(F));

  // Reference images from the serial oracle.
  std::vector<std::vector<uint8_t>> Reference;
  for (const SxfFile &File : Suite)
    Reference.push_back(editPipeline(File, 1));

  std::printf("%-10s %12s %9s %11s\n", "threads", "suite ms", "speedup",
              "identical");
  double Base = 0.0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    // Warm-up pass (pool growth, flyweight-pool population), then measure.
    suiteMillis(Suite, Threads);
    double Millis = suiteMillis(Suite, Threads);
    if (Threads == 1)
      Base = Millis;
    bool Identical = true;
    for (size_t I = 0; I < Suite.size(); ++I)
      Identical &= editPipeline(Suite[I], Threads) == Reference[I];
    std::printf("%-10u %12.1f %8.2fx %11s\n", Threads, Millis, Base / Millis,
                Identical ? "yes" : "NO (bug!)");
    Sink.metric("suite_time_t" + std::to_string(Threads), Millis, "ms");
    Sink.metric("speedup_t" + std::to_string(Threads), Base / Millis, "x");
    Sink.metric("identical_t" + std::to_string(Threads), Identical ? 1 : 0,
                "bool");
  }
  std::printf("output is bit-identical at every thread count; speedup tracks\n"
              "physical cores (a 1-core host shows ~1.0x with the same "
              "images).\n");
  return 0;
}
