//===- bench/bench_parallel.cpp - Parallel pipeline scaling -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the parallel editing pipeline: full-pipeline wall time
/// (readContents + writeEditedExecutable) at 1/2/4/8 worker threads over the
/// largest workload suite, with a byte-identity check of every edited image
/// against the Threads = 1 reference. Speedup beyond 1.0x requires real
/// cores; on a single-core host the table instead demonstrates that the
/// parallel machinery's overhead is small and its output is exact.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

using namespace eel;
using namespace eelbench;

namespace {

/// One full pipeline pass; returns the serialized edited image. \p Legacy
/// selects the pre-arena byte-push writer (the pre-PR baseline path).
std::vector<uint8_t> editPipeline(const SxfFile &File, unsigned Threads,
                                  bool Legacy = false) {
  Executable::Options Opts;
  Opts.Threads = Threads;
  Opts.LegacyWriter = Legacy;
  Executable Exec(SxfFile(File), Opts);
  Exec.readContents();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError())
    return {};
  return Edited.value().serialize();
}

double suiteMillis(const std::vector<SxfFile> &Suite, unsigned Threads,
                   bool Legacy = false) {
  auto Start = std::chrono::steady_clock::now();
  for (const SxfFile &File : Suite)
    benchmark::DoNotOptimize(editPipeline(File, Threads, Legacy));
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace

static void BM_PipelineSerial(benchmark::State &State) {
  SxfFile File = generateWorkload(TargetArch::Srisc, suiteMember(true, 7, 32));
  for (auto _ : State)
    benchmark::DoNotOptimize(editPipeline(File, 1));
}
BENCHMARK(BM_PipelineSerial)->Unit(benchmark::kMillisecond);

static void BM_PipelineParallel(benchmark::State &State) {
  SxfFile File = generateWorkload(TargetArch::Srisc, suiteMember(true, 7, 32));
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(editPipeline(File, Threads));
}
BENCHMARK(BM_PipelineParallel)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_parallel", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Parallel pipeline scaling (readContents + writeEditedExecutable)");
  std::printf("host hardware concurrency: %u\n",
              std::thread::hardware_concurrency());

  // The largest suite: both compiler styles, big routine counts.
  const bool SmokeMode = Sink.smoke();
  const unsigned SuiteCount = SmokeMode ? 1 : 3;
  const unsigned Routines = SmokeMode ? 8 : 32;
  std::vector<SxfFile> Suite =
      makeSuite(TargetArch::Srisc, false, SuiteCount, Routines);
  for (SxfFile &F : makeSuite(TargetArch::Srisc, true, SuiteCount, Routines))
    Suite.push_back(std::move(F));

  // Reference images from the serial oracle.
  std::vector<std::vector<uint8_t>> Reference;
  for (const SxfFile &File : Suite)
    Reference.push_back(editPipeline(File, 1));

  std::printf("%-10s %12s %9s %11s\n", "threads", "suite ms", "speedup",
              "identical");
  double Base = 0.0;
  double Time8 = 0.0;
  bool AllIdentical = true;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    // Warm-up pass (pool growth, flyweight-pool population), then measure.
    suiteMillis(Suite, Threads);
    double Millis = suiteMillis(Suite, Threads);
    if (Threads == 1)
      Base = Millis;
    if (Threads == 8)
      Time8 = Millis;
    bool Identical = true;
    for (size_t I = 0; I < Suite.size(); ++I)
      Identical &= editPipeline(Suite[I], Threads) == Reference[I];
    AllIdentical &= Identical;
    std::printf("%-10u %12.1f %8.2fx %11s\n", Threads, Millis, Base / Millis,
                Identical ? "yes" : "NO (bug!)");
    Sink.metric("suite_time_t" + std::to_string(Threads), Millis, "ms");
    Sink.metric("speedup_t" + std::to_string(Threads), Base / Millis, "x");
    Sink.metric("identical_t" + std::to_string(Threads), Identical ? 1 : 0,
                "bool");
  }
  std::printf("output is bit-identical at every thread count; speedup tracks\n"
              "physical cores (a 1-core host shows ~1.0x with the same "
              "images).\n");

  // Zero-copy images must also match the pre-arena legacy writer: the old
  // byte-push path is kept in tree to be exactly this oracle.
  bool LegacyIdentical = true;
  for (size_t I = 0; I < Suite.size(); ++I)
    LegacyIdentical &=
        editPipeline(Suite[I], 1, /*Legacy=*/true) == Reference[I];
  std::printf("zero-copy vs legacy-writer images: %s\n",
              LegacyIdentical ? "byte-identical" : "MISMATCH (bug!)");
  Sink.metric("legacy_identical", LegacyIdentical ? 1 : 0, "bool");
  if (!AllIdentical || !LegacyIdentical) {
    std::fprintf(stderr, "FAIL: edited images diverged from the serial "
                         "reference\n");
    return 1;
  }

  // Asserted throughput gate: the arena IR + zero-copy writer at 8 threads
  // must beat the pre-PR baseline (legacy writer, serial) by >2x. Only
  // meaningful with >=8 real cores — a smaller host still runs the byte-
  // identity checks above but reports the ratio without asserting it.
  printHeader("Edit+write throughput gate (8 threads vs pre-PR serial)");
  double LegacySerial = 1e300;
  double ZeroCopy8 = Time8;
  for (int Rep = 0; Rep < (SmokeMode ? 1 : 3); ++Rep) {
    LegacySerial =
        std::min(LegacySerial, suiteMillis(Suite, 1, /*Legacy=*/true));
    ZeroCopy8 = std::min(ZeroCopy8, suiteMillis(Suite, 8));
  }
  double Gain = ZeroCopy8 > 0.0 ? LegacySerial / ZeroCopy8 : 0.0;
  std::printf("legacy serial:      %10.1f ms\n", LegacySerial);
  std::printf("zero-copy, 8 thr:   %10.1f ms\n", ZeroCopy8);
  std::printf("edit+write gain:    %9.2fx\n", Gain);
  Sink.metric("legacy_serial_ms", LegacySerial, "ms");
  Sink.metric("zero_copy_t8_ms", ZeroCopy8, "ms");
  Sink.metric("edit_write_gain", Gain, "x");
  if (!SmokeMode && std::thread::hardware_concurrency() >= 8) {
    if (Gain < 2.0) {
      std::fprintf(stderr,
                   "FAIL: edit+write gain %.2fx < 2x at 8 threads\n", Gain);
      return 1;
    }
    std::printf("gate: %.2fx >= 2x — PASS\n", Gain);
  } else {
    std::printf("gate: skipped (%s); byte identity asserted above.\n",
                SmokeMode ? "--smoke" : "host has <8 hardware threads");
  }
  return 0;
}
