//===- bench/bench_cfg_stats.cpp - §3.3/§5 CFG structure statistics ----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the CFG-shape numbers scattered through the paper:
///
///  * Figure 3's normalization, demonstrated on an annulled branch;
///  * "although 15-20% of edges and blocks are uneditable, it is usually
///    easy to find an alternative location to edit" (§3.3);
///  * the §5 footnote: qpt2's CFGs held 26,912 blocks vs the old code's
///    15,441, the extra being 12,774 delay-slot blocks, 920 CFG entry/exit
///    blocks, and 1,942 call-surrogate blocks;
///  * delay-slot fold-back at layout (§3.3.1).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "asmkit/Assembler.h"
#include "core/Executable.h"

#include <benchmark/benchmark.h>

using namespace eel;
using namespace eelbench;

static void BM_BuildCfgs(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 3, 32));
  for (auto _ : State) {
    Executable Exec((SxfFile(File)));
    Exec.readContents();
    unsigned Blocks = 0;
    for (const auto &R : Exec.routines())
      if (!R->isData())
        Blocks += R->controlFlowGraph()->blocks().size();
    benchmark::DoNotOptimize(Blocks);
  }
}
BENCHMARK(BM_BuildCfgs)->Unit(benchmark::kMillisecond);

static void printFigure3() {
  printHeader("Figure 3: CFG normalization of an annulled delay slot");
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  bne,a .L1
  add %l1, %l2, %l1
  mov 0, %o3
.L1:
  sys 0
  ret
  nop
)"));
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  const TargetInfo &T = Exec.target();
  for (const auto &B : G->blocks()) {
    const char *Kind = "";
    switch (B->kind()) {
    case BlockKind::Normal: Kind = "normal"; break;
    case BlockKind::DelaySlot: Kind = "delay-slot"; break;
    case BlockKind::CallSurrogate: Kind = "call-surrogate"; break;
    case BlockKind::Entry: Kind = "entry"; break;
    case BlockKind::Exit: Kind = "exit"; break;
    }
    std::printf("block %u (%s)%s:\n", B->id(), Kind,
                B->editable() ? "" : " [uneditable]");
    for (const CfgInst &CI : B->insts())
      std::printf("    %05x: %s\n", CI.OrigAddr,
                  CI.Inst->disassemble(CI.OrigAddr).c_str());
    for (const Edge *E : B->succ())
      std::printf("    -> block %u%s\n", E->dst()->id(),
                  E->editable() ? "" : " [uneditable]");
  }
  (void)T;
  std::printf("the `add` appears only on the taken path, as in Figure 3\n");
}

static void printBlockComposition(eelbench::JsonSink &Sink) {
  printHeader("§5 footnote: block composition and §3.3 uneditable fraction");
  for (TargetArch Arch : AllTargetArches) {
    Cfg::Stats Total;
    unsigned Folded = 0, Materialized = 0;
    for (const SxfFile &File : makeSuite(Arch, false, 8)) {
      Executable Exec((SxfFile(File)));
      Exec.readContents();
      for (const auto &R : Exec.routines()) {
        if (R->isData())
          continue;
        Cfg::Stats S = R->controlFlowGraph()->stats();
        Total.NormalBlocks += S.NormalBlocks;
        Total.DelaySlotBlocks += S.DelaySlotBlocks;
        Total.CallSurrogateBlocks += S.CallSurrogateBlocks;
        Total.EntryExitBlocks += S.EntryExitBlocks;
        Total.UneditableBlocks += S.UneditableBlocks;
        Total.UneditableEdges += S.UneditableEdges;
        Total.TotalEdges += S.TotalEdges;
      }
      Expected<SxfFile> Edited = Exec.writeEditedExecutable();
      if (Edited.hasValue()) {
        Folded += Exec.editStats().DelaySlotsFolded;
        Materialized += Exec.editStats().DelaySlotsMaterialized;
      }
    }
    unsigned AllBlocks = Total.NormalBlocks + Total.DelaySlotBlocks +
                         Total.CallSurrogateBlocks + Total.EntryExitBlocks;
    std::printf("\n[%s suite]\n",
                Arch == TargetArch::Srisc   ? "SRISC"
                : Arch == TargetArch::Mrisc ? "MRISC"
                                            : "ARISC");
    std::printf("  blocks: %u total = %u normal + %u delay-slot + %u "
                "call-surrogate + %u entry/exit\n",
                AllBlocks, Total.NormalBlocks, Total.DelaySlotBlocks,
                Total.CallSurrogateBlocks, Total.EntryExitBlocks);
    std::printf("  (paper: 26,912 total with 12,774 delay-slot, 1,942 "
                "surrogate, 920 entry/exit)\n");
    std::printf("  EEL/leader-only block ratio: %.2fx (paper: 26,912 / "
                "15,441 = 1.74x)\n",
                static_cast<double>(AllBlocks) /
                    static_cast<double>(Total.NormalBlocks));
    std::printf("  uneditable blocks: %.1f%%  uneditable edges: %.1f%% "
                "(paper: 15-20%%)\n",
                100.0 * Total.UneditableBlocks / AllBlocks,
                100.0 * Total.UneditableEdges / Total.TotalEdges);
    std::printf("  unedited layouts: %u delay slots folded back, %u "
                "materialized\n",
                Folded, Materialized);
    const char *ArchName = Arch == TargetArch::Srisc   ? "srisc"
                           : Arch == TargetArch::Mrisc ? "mrisc"
                                                       : "arisc";
    Sink.metric(std::string("blocks_total_") + ArchName, AllBlocks, "count");
    Sink.metric(std::string("block_ratio_") + ArchName,
                static_cast<double>(AllBlocks) /
                    static_cast<double>(Total.NormalBlocks),
                "x");
    Sink.metric(std::string("uneditable_edges_pct_") + ArchName,
                100.0 * Total.UneditableEdges / Total.TotalEdges, "percent");
    Sink.metric(std::string("delay_slots_folded_") + ArchName, Folded,
                "count");
  }
}

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_cfg_stats", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printFigure3();
  printBlockComposition(Sink);
  return 0;
}
