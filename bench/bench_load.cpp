//===- bench/bench_load.cpp - SXF load-path validation overhead ----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the hardened SXF load path: deserialize throughput (which now
/// includes full structural validation on every record), serialize
/// throughput, and — the number the hardening work is accountable to — the
/// share of load time spent in whole-image validation, measured by running
/// SxfFile::validate() standalone against the full load an editing tool
/// performs (SxfFile::readFromFile: open + read + decode + validate, page
/// cache warm). The closing table asserts the share stays under 2%. The
/// pure in-memory decode is also reported so the validation cost stays
/// visible even against the cheapest possible baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>

using namespace eel;
using namespace eelbench;

namespace {

std::vector<uint8_t> bigImage() {
  // The largest suite member plus an edited pass, so the image carries
  // translator code, dispatch tables, and a full symbol table.
  SxfFile File = generateWorkload(TargetArch::Srisc, suiteMember(true, 7, 48));
  Executable::Options Opts;
  Opts.Threads = 1;
  Executable Exec(std::move(File), Opts);
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  return Edited.hasValue() ? Edited.value().serialize()
                           : SxfFile().serialize();
}

double millisOf(unsigned Iters, const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Iters; ++I)
    Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace

static void BM_Deserialize(benchmark::State &State) {
  std::vector<uint8_t> Bytes = bigImage();
  for (auto _ : State) {
    Expected<SxfFile> File = SxfFile::deserialize(Bytes);
    benchmark::DoNotOptimize(File.hasValue());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Bytes.size()));
}
BENCHMARK(BM_Deserialize)->Unit(benchmark::kMicrosecond);

static void BM_Serialize(benchmark::State &State) {
  SxfFile File =
      SxfFile::deserialize(bigImage()).takeValue();
  for (auto _ : State)
    benchmark::DoNotOptimize(File.serialize().size());
}
BENCHMARK(BM_Serialize)->Unit(benchmark::kMicrosecond);

static void BM_ValidateOnly(benchmark::State &State) {
  SxfFile File = SxfFile::deserialize(bigImage()).takeValue();
  for (auto _ : State) {
    Expected<bool> Valid = File.validate();
    benchmark::DoNotOptimize(Valid.hasValue());
  }
}
BENCHMARK(BM_ValidateOnly)->Unit(benchmark::kMicrosecond);

static void BM_RejectHostileCount(benchmark::State &State) {
  // A hostile count must be rejected in O(1), not O(claimed records).
  std::vector<uint8_t> Bytes = bigImage();
  Bytes.resize(16);
  for (int I = 12; I < 16; ++I)
    Bytes[I] = 0xFF; // segment count 0xFFFFFFFF in a 16-byte file
  for (auto _ : State) {
    Expected<SxfFile> File = SxfFile::deserialize(Bytes);
    benchmark::DoNotOptimize(File.hasError());
  }
}
BENCHMARK(BM_RejectHostileCount)->Unit(benchmark::kNanosecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_load", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Load-path validation overhead");
  std::vector<uint8_t> Bytes = bigImage();
  SxfFile File = SxfFile::deserialize(Bytes).takeValue();
  std::printf("image: %zu bytes, %zu segments, %zu symbols, %zu relocs\n",
              Bytes.size(), File.Segments.size(), File.Symbols.size(),
              File.Relocs.size());

  // The load path a tool exercises through Executable::open: open the
  // file, read it, decode it, validate it. Stage the image in the build
  // tree so the page cache is warm and the run leaves nothing behind.
  const char *Path = "bench_load.tmp.sxf";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
  }

  const unsigned Iters = 2000;
  // Warm-up, then measure file load and decode against validate alone.
  millisOf(Iters / 4, [&] { SxfFile::readFromFile(Path); });
  double LoadMs = millisOf(Iters, [&] {
    benchmark::DoNotOptimize(SxfFile::readFromFile(Path).hasValue());
  });
  double DecodeMs = millisOf(Iters, [&] {
    benchmark::DoNotOptimize(SxfFile::deserialize(Bytes).hasValue());
  });
  double ValidateMs = millisOf(Iters, [&] {
    benchmark::DoNotOptimize(File.validate().hasValue());
  });
  std::remove(Path);
  double SharePct = LoadMs > 0 ? 100.0 * ValidateMs / LoadMs : 0.0;
  double DecodeSharePct = DecodeMs > 0 ? 100.0 * ValidateMs / DecodeMs : 0.0;
  double MBps = (static_cast<double>(Bytes.size()) * Iters / 1e6) /
                (LoadMs / 1e3);

  std::printf("%-34s %10.3f ms  (%.0f MB/s)\n",
              "load from file incl. validation", LoadMs / Iters, MBps);
  std::printf("%-34s %10.3f ms\n", "in-memory decode incl. validation",
              DecodeMs / Iters);
  std::printf("%-34s %10.4f ms\n", "whole-image validation alone",
              ValidateMs / Iters);
  std::printf("%-34s %9.2f %%  (%.2f %% of bare in-memory decode)\n",
              "validation share of load", SharePct, DecodeSharePct);
  std::printf("validation overhead on the load path under 2%%: %s\n",
              SharePct < 2.0 ? "yes" : "NO (regression!)");
  Sink.metric("load_time", LoadMs / Iters, "ms");
  Sink.metric("decode_time", DecodeMs / Iters, "ms");
  Sink.metric("validate_time", ValidateMs / Iters, "ms");
  Sink.metric("validate_share_of_load", SharePct, "percent");
  Sink.metric("load_throughput", MBps, "MB/s");
  return 0;
}
