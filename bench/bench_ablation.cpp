//===- bench/bench_ablation.cpp - Design-choice ablations ---------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation studies for the two design claims the paper argues
/// qualitatively:
///
///  * "Fortunately, EEL's slicing makes run-time translation a rare
///    occurrence" (§3.3) — disable slicing so every indirect jump goes
///    through the run-time translator, and measure the translation-site
///    count and slowdown that slicing avoids.
///
///  * "if left unreversed, duplicated delay slot instructions increase a
///    program's size and execution time, so EEL folds instructions back
///    into unedited delay slots" (§3.3) — disable fold-back and measure
///    the code-size and instruction-count growth it prevents.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Executable.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace eel;
using namespace eelbench;

namespace {

struct AblationResult {
  uint64_t Instructions = 0;
  uint64_t TextBytes = 0;
  unsigned TranslationSites = 0;
  unsigned Folded = 0;
  unsigned Materialized = 0;
  bool Diverged = false;
};

AblationResult editAndRun(const SxfFile &File, Executable::Options Opts,
                          const std::string &ExpectOutput) {
  AblationResult Result;
  Executable Exec(SxfFile(File), Opts);
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError()) {
    Result.Diverged = true;
    return Result;
  }
  RunResult R = runToCompletion(Edited.value());
  Result.Diverged = R.Output != ExpectOutput;
  Result.Instructions = R.Instructions;
  Result.TextBytes = Edited.value().segment(SegKind::Text)->Bytes.size();
  Result.TranslationSites = Exec.editStats().TranslationSites;
  Result.Folded = Exec.editStats().DelaySlotsFolded;
  Result.Materialized = Exec.editStats().DelaySlotsMaterialized;
  return Result;
}

} // namespace

static void BM_EditWithSlicing(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 17, 24));
  for (auto _ : State) {
    Executable Exec((SxfFile(File)));
    benchmark::DoNotOptimize(Exec.writeEditedExecutable());
  }
}
BENCHMARK(BM_EditWithSlicing)->Unit(benchmark::kMillisecond);

static void BM_EditWithoutSlicing(benchmark::State &State) {
  SxfFile File =
      generateWorkload(TargetArch::Srisc, suiteMember(false, 17, 24));
  Executable::Options Opts;
  Opts.DisableSlicing = true;
  for (auto _ : State) {
    Executable Exec(SxfFile(File), Opts);
    benchmark::DoNotOptimize(Exec.writeEditedExecutable());
  }
}
BENCHMARK(BM_EditWithoutSlicing)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  eelbench::JsonSink Sink("bench_ablation", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Ablation 1 (§3.3): slicing vs forced run-time translation");
  std::printf("%-26s %10s %10s %9s %9s\n", "configuration", "insts",
              "text B", "xlate", "vs base");
  {
    uint64_t BaseInsts = 0, BaseBytes = 0, AblInsts = 0, AblBytes = 0;
    unsigned BaseSites = 0, AblSites = 0;
    bool Diverged = false;
    for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
      SxfFile File =
          generateWorkload(TargetArch::Srisc, suiteMember(false, Seed, 24));
      std::string Expect = runToCompletion(File).Output;
      AblationResult Base =
          editAndRun(File, Executable::Options(), Expect);
      Executable::Options NoSlice;
      NoSlice.DisableSlicing = true;
      AblationResult Abl = editAndRun(File, NoSlice, Expect);
      Diverged |= Base.Diverged || Abl.Diverged;
      BaseInsts += Base.Instructions;
      BaseBytes += Base.TextBytes;
      BaseSites += Base.TranslationSites;
      AblInsts += Abl.Instructions;
      AblBytes += Abl.TextBytes;
      AblSites += Abl.TranslationSites;
    }
    std::printf("%-26s %10llu %10llu %9u %9s\n", "with slicing",
                static_cast<unsigned long long>(BaseInsts),
                static_cast<unsigned long long>(BaseBytes), BaseSites, "1.00x");
    std::printf("%-26s %10llu %10llu %9u %8.2fx\n", "slicing disabled",
                static_cast<unsigned long long>(AblInsts),
                static_cast<unsigned long long>(AblBytes), AblSites,
                static_cast<double>(AblInsts) /
                    static_cast<double>(BaseInsts));
    std::printf("correctness preserved either way: %s\n",
                Diverged ? "NO (bug!)" : "yes");
    std::printf("slicing removed %u of %u potential translation sites "
                "(paper: translation\nbecomes \"a rare occurrence\"; the "
                "safety net alone still keeps programs correct).\n",
                AblSites - BaseSites, AblSites);
    Sink.metric("no_slicing_insts_ratio",
                static_cast<double>(AblInsts) /
                    static_cast<double>(BaseInsts),
                "x");
    Sink.metric("slicing_sites_removed", AblSites - BaseSites, "count");
  }

  printHeader("Ablation 2 (§3.3.1): delay-slot fold-back");
  std::printf("%-26s %10s %10s %9s %9s\n", "configuration", "insts",
              "text B", "folded", "matrlzd");
  {
    uint64_t BaseInsts = 0, BaseBytes = 0, AblInsts = 0, AblBytes = 0;
    unsigned BaseFold = 0, AblMat = 0;
    bool Diverged = false;
    for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
      SxfFile File =
          generateWorkload(TargetArch::Srisc, suiteMember(false, Seed, 24));
      std::string Expect = runToCompletion(File).Output;
      AblationResult Base =
          editAndRun(File, Executable::Options(), Expect);
      Executable::Options NoFold;
      NoFold.DisableDelayFolding = true;
      AblationResult Abl = editAndRun(File, NoFold, Expect);
      Diverged |= Base.Diverged || Abl.Diverged;
      BaseInsts += Base.Instructions;
      BaseBytes += Base.TextBytes;
      BaseFold += Base.Folded;
      AblInsts += Abl.Instructions;
      AblBytes += Abl.TextBytes;
      AblMat += Abl.Materialized;
    }
    std::printf("%-26s %10llu %10llu %9u %9u\n", "fold-back on",
                static_cast<unsigned long long>(BaseInsts),
                static_cast<unsigned long long>(BaseBytes), BaseFold, 0u);
    std::printf("%-26s %10llu %10llu %9u %9u\n", "fold-back off",
                static_cast<unsigned long long>(AblInsts),
                static_cast<unsigned long long>(AblBytes), 0u, AblMat);
    std::printf("correctness preserved either way: %s\n",
                Diverged ? "NO (bug!)" : "yes");
    std::printf("fold-back avoids %.1f%% code growth and %.1f%% more "
                "executed instructions\n(the §3.3 size/time cost of "
                "unreversed duplication).\n",
                100.0 * (static_cast<double>(AblBytes) / BaseBytes - 1.0),
                100.0 * (static_cast<double>(AblInsts) / BaseInsts - 1.0));
    Sink.metric("foldback_text_growth_avoided",
                100.0 * (static_cast<double>(AblBytes) / BaseBytes - 1.0),
                "percent");
    Sink.metric("foldback_insts_growth_avoided",
                100.0 * (static_cast<double>(AblInsts) / BaseInsts - 1.0),
                "percent");
  }
  return 0;
}
