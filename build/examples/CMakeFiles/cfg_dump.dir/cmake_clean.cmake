file(REMOVE_RECURSE
  "CMakeFiles/cfg_dump.dir/cfg_dump.cpp.o"
  "CMakeFiles/cfg_dump.dir/cfg_dump.cpp.o.d"
  "cfg_dump"
  "cfg_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
