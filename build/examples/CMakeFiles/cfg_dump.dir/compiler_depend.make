# Empty compiler generated dependencies file for cfg_dump.
# This may be replaced when dependencies are built.
