# Empty compiler generated dependencies file for sandbox_demo.
# This may be replaced when dependencies are built.
