file(REMOVE_RECURSE
  "CMakeFiles/sandbox_demo.dir/sandbox_demo.cpp.o"
  "CMakeFiles/sandbox_demo.dir/sandbox_demo.cpp.o.d"
  "sandbox_demo"
  "sandbox_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
