
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cfg_stats.cpp" "bench/CMakeFiles/bench_cfg_stats.dir/bench_cfg_stats.cpp.o" "gcc" "bench/CMakeFiles/bench_cfg_stats.dir/bench_cfg_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/eel_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/eel_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spawn/CMakeFiles/eel_spawn.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/eel_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/eel_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/sxf/CMakeFiles/eel_sxf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/eel_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
