# Empty dependencies file for bench_cfg_stats.
# This may be replaced when dependencies are built.
