file(REMOVE_RECURSE
  "CMakeFiles/bench_cfg_stats.dir/bench_cfg_stats.cpp.o"
  "CMakeFiles/bench_cfg_stats.dir/bench_cfg_stats.cpp.o.d"
  "bench_cfg_stats"
  "bench_cfg_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cfg_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
