file(REMOVE_RECURSE
  "CMakeFiles/bench_machdesc.dir/bench_machdesc.cpp.o"
  "CMakeFiles/bench_machdesc.dir/bench_machdesc.cpp.o.d"
  "bench_machdesc"
  "bench_machdesc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machdesc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
