# Empty dependencies file for bench_machdesc.
# This may be replaced when dependencies are built.
