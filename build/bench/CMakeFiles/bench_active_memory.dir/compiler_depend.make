# Empty compiler generated dependencies file for bench_active_memory.
# This may be replaced when dependencies are built.
