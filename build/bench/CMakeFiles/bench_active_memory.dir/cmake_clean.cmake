file(REMOVE_RECURSE
  "CMakeFiles/bench_active_memory.dir/bench_active_memory.cpp.o"
  "CMakeFiles/bench_active_memory.dir/bench_active_memory.cpp.o.d"
  "bench_active_memory"
  "bench_active_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
