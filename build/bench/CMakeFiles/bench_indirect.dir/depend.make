# Empty dependencies file for bench_indirect.
# This may be replaced when dependencies are built.
