file(REMOVE_RECURSE
  "CMakeFiles/bench_indirect.dir/bench_indirect.cpp.o"
  "CMakeFiles/bench_indirect.dir/bench_indirect.cpp.o.d"
  "bench_indirect"
  "bench_indirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
