# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/sxf_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/spawn_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/edit_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/layout_edge_test[1]_include.cmake")
