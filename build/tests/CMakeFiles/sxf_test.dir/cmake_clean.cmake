file(REMOVE_RECURSE
  "CMakeFiles/sxf_test.dir/SxfTest.cpp.o"
  "CMakeFiles/sxf_test.dir/SxfTest.cpp.o.d"
  "sxf_test"
  "sxf_test.pdb"
  "sxf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
