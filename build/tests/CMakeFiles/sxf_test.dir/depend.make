# Empty dependencies file for sxf_test.
# This may be replaced when dependencies are built.
