# Empty compiler generated dependencies file for layout_edge_test.
# This may be replaced when dependencies are built.
