file(REMOVE_RECURSE
  "CMakeFiles/layout_edge_test.dir/LayoutEdgeTest.cpp.o"
  "CMakeFiles/layout_edge_test.dir/LayoutEdgeTest.cpp.o.d"
  "layout_edge_test"
  "layout_edge_test.pdb"
  "layout_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
