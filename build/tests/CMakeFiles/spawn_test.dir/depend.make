# Empty dependencies file for spawn_test.
# This may be replaced when dependencies are built.
