file(REMOVE_RECURSE
  "CMakeFiles/spawn_test.dir/SpawnTest.cpp.o"
  "CMakeFiles/spawn_test.dir/SpawnTest.cpp.o.d"
  "spawn_test"
  "spawn_test.pdb"
  "spawn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
