
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/Descriptions.cpp" "src/isa/CMakeFiles/eel_isa.dir/Descriptions.cpp.o" "gcc" "src/isa/CMakeFiles/eel_isa.dir/Descriptions.cpp.o.d"
  "/root/repo/src/isa/Mrisc.cpp" "src/isa/CMakeFiles/eel_isa.dir/Mrisc.cpp.o" "gcc" "src/isa/CMakeFiles/eel_isa.dir/Mrisc.cpp.o.d"
  "/root/repo/src/isa/Srisc.cpp" "src/isa/CMakeFiles/eel_isa.dir/Srisc.cpp.o" "gcc" "src/isa/CMakeFiles/eel_isa.dir/Srisc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/eel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
