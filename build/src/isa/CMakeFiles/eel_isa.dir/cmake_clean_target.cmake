file(REMOVE_RECURSE
  "libeel_isa.a"
)
