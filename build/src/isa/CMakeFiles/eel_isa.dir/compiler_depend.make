# Empty compiler generated dependencies file for eel_isa.
# This may be replaced when dependencies are built.
