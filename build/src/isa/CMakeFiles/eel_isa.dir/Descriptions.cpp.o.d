src/isa/CMakeFiles/eel_isa.dir/Descriptions.cpp.o: \
 /root/repo/src/isa/Descriptions.cpp /usr/include/stdc-predef.h \
 /root/repo/src/isa/Descriptions.h
