file(REMOVE_RECURSE
  "CMakeFiles/eel_isa.dir/Descriptions.cpp.o"
  "CMakeFiles/eel_isa.dir/Descriptions.cpp.o.d"
  "CMakeFiles/eel_isa.dir/Mrisc.cpp.o"
  "CMakeFiles/eel_isa.dir/Mrisc.cpp.o.d"
  "CMakeFiles/eel_isa.dir/Srisc.cpp.o"
  "CMakeFiles/eel_isa.dir/Srisc.cpp.o.d"
  "libeel_isa.a"
  "libeel_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
