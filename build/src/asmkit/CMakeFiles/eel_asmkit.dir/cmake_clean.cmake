file(REMOVE_RECURSE
  "CMakeFiles/eel_asmkit.dir/Assembler.cpp.o"
  "CMakeFiles/eel_asmkit.dir/Assembler.cpp.o.d"
  "CMakeFiles/eel_asmkit.dir/MriscAsm.cpp.o"
  "CMakeFiles/eel_asmkit.dir/MriscAsm.cpp.o.d"
  "CMakeFiles/eel_asmkit.dir/SriscAsm.cpp.o"
  "CMakeFiles/eel_asmkit.dir/SriscAsm.cpp.o.d"
  "libeel_asmkit.a"
  "libeel_asmkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_asmkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
