file(REMOVE_RECURSE
  "libeel_asmkit.a"
)
