# Empty dependencies file for eel_asmkit.
# This may be replaced when dependencies are built.
