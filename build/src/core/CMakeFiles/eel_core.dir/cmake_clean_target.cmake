file(REMOVE_RECURSE
  "libeel_core.a"
)
