# Empty dependencies file for eel_core.
# This may be replaced when dependencies are built.
