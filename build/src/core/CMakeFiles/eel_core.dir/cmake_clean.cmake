file(REMOVE_RECURSE
  "CMakeFiles/eel_core.dir/CallGraph.cpp.o"
  "CMakeFiles/eel_core.dir/CallGraph.cpp.o.d"
  "CMakeFiles/eel_core.dir/Cfg.cpp.o"
  "CMakeFiles/eel_core.dir/Cfg.cpp.o.d"
  "CMakeFiles/eel_core.dir/CfgBuild.cpp.o"
  "CMakeFiles/eel_core.dir/CfgBuild.cpp.o.d"
  "CMakeFiles/eel_core.dir/Dominators.cpp.o"
  "CMakeFiles/eel_core.dir/Dominators.cpp.o.d"
  "CMakeFiles/eel_core.dir/Executable.cpp.o"
  "CMakeFiles/eel_core.dir/Executable.cpp.o.d"
  "CMakeFiles/eel_core.dir/Instruction.cpp.o"
  "CMakeFiles/eel_core.dir/Instruction.cpp.o.d"
  "CMakeFiles/eel_core.dir/Layout.cpp.o"
  "CMakeFiles/eel_core.dir/Layout.cpp.o.d"
  "CMakeFiles/eel_core.dir/Liveness.cpp.o"
  "CMakeFiles/eel_core.dir/Liveness.cpp.o.d"
  "CMakeFiles/eel_core.dir/OutputWriter.cpp.o"
  "CMakeFiles/eel_core.dir/OutputWriter.cpp.o.d"
  "CMakeFiles/eel_core.dir/RegAlloc.cpp.o"
  "CMakeFiles/eel_core.dir/RegAlloc.cpp.o.d"
  "CMakeFiles/eel_core.dir/Routine.cpp.o"
  "CMakeFiles/eel_core.dir/Routine.cpp.o.d"
  "CMakeFiles/eel_core.dir/Slice.cpp.o"
  "CMakeFiles/eel_core.dir/Slice.cpp.o.d"
  "CMakeFiles/eel_core.dir/Snippet.cpp.o"
  "CMakeFiles/eel_core.dir/Snippet.cpp.o.d"
  "CMakeFiles/eel_core.dir/SymbolRefine.cpp.o"
  "CMakeFiles/eel_core.dir/SymbolRefine.cpp.o.d"
  "CMakeFiles/eel_core.dir/Translate.cpp.o"
  "CMakeFiles/eel_core.dir/Translate.cpp.o.d"
  "libeel_core.a"
  "libeel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
