
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CallGraph.cpp" "src/core/CMakeFiles/eel_core.dir/CallGraph.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/CallGraph.cpp.o.d"
  "/root/repo/src/core/Cfg.cpp" "src/core/CMakeFiles/eel_core.dir/Cfg.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Cfg.cpp.o.d"
  "/root/repo/src/core/CfgBuild.cpp" "src/core/CMakeFiles/eel_core.dir/CfgBuild.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/CfgBuild.cpp.o.d"
  "/root/repo/src/core/Dominators.cpp" "src/core/CMakeFiles/eel_core.dir/Dominators.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Dominators.cpp.o.d"
  "/root/repo/src/core/Executable.cpp" "src/core/CMakeFiles/eel_core.dir/Executable.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Executable.cpp.o.d"
  "/root/repo/src/core/Instruction.cpp" "src/core/CMakeFiles/eel_core.dir/Instruction.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Instruction.cpp.o.d"
  "/root/repo/src/core/Layout.cpp" "src/core/CMakeFiles/eel_core.dir/Layout.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Layout.cpp.o.d"
  "/root/repo/src/core/Liveness.cpp" "src/core/CMakeFiles/eel_core.dir/Liveness.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Liveness.cpp.o.d"
  "/root/repo/src/core/OutputWriter.cpp" "src/core/CMakeFiles/eel_core.dir/OutputWriter.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/OutputWriter.cpp.o.d"
  "/root/repo/src/core/RegAlloc.cpp" "src/core/CMakeFiles/eel_core.dir/RegAlloc.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/RegAlloc.cpp.o.d"
  "/root/repo/src/core/Routine.cpp" "src/core/CMakeFiles/eel_core.dir/Routine.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Routine.cpp.o.d"
  "/root/repo/src/core/Slice.cpp" "src/core/CMakeFiles/eel_core.dir/Slice.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Slice.cpp.o.d"
  "/root/repo/src/core/Snippet.cpp" "src/core/CMakeFiles/eel_core.dir/Snippet.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Snippet.cpp.o.d"
  "/root/repo/src/core/SymbolRefine.cpp" "src/core/CMakeFiles/eel_core.dir/SymbolRefine.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/SymbolRefine.cpp.o.d"
  "/root/repo/src/core/Translate.cpp" "src/core/CMakeFiles/eel_core.dir/Translate.cpp.o" "gcc" "src/core/CMakeFiles/eel_core.dir/Translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmkit/CMakeFiles/eel_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/sxf/CMakeFiles/eel_sxf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/eel_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
