file(REMOVE_RECURSE
  "libeel_sxf.a"
)
