file(REMOVE_RECURSE
  "CMakeFiles/eel_sxf.dir/Sxf.cpp.o"
  "CMakeFiles/eel_sxf.dir/Sxf.cpp.o.d"
  "libeel_sxf.a"
  "libeel_sxf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_sxf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
