# Empty dependencies file for eel_sxf.
# This may be replaced when dependencies are built.
