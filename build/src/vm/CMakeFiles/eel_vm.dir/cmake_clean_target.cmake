file(REMOVE_RECURSE
  "libeel_vm.a"
)
