file(REMOVE_RECURSE
  "CMakeFiles/eel_vm.dir/Machine.cpp.o"
  "CMakeFiles/eel_vm.dir/Machine.cpp.o.d"
  "libeel_vm.a"
  "libeel_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
