# Empty compiler generated dependencies file for eel_vm.
# This may be replaced when dependencies are built.
