file(REMOVE_RECURSE
  "libeel_support.a"
)
