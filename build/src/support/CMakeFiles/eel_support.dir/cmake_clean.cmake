file(REMOVE_RECURSE
  "CMakeFiles/eel_support.dir/FileIO.cpp.o"
  "CMakeFiles/eel_support.dir/FileIO.cpp.o.d"
  "CMakeFiles/eel_support.dir/Stats.cpp.o"
  "CMakeFiles/eel_support.dir/Stats.cpp.o.d"
  "libeel_support.a"
  "libeel_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
