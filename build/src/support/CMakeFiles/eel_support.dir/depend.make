# Empty dependencies file for eel_support.
# This may be replaced when dependencies are built.
