file(REMOVE_RECURSE
  "CMakeFiles/eel_tools.dir/ActiveMem.cpp.o"
  "CMakeFiles/eel_tools.dir/ActiveMem.cpp.o.d"
  "CMakeFiles/eel_tools.dir/AdhocQpt.cpp.o"
  "CMakeFiles/eel_tools.dir/AdhocQpt.cpp.o.d"
  "CMakeFiles/eel_tools.dir/Optimizer.cpp.o"
  "CMakeFiles/eel_tools.dir/Optimizer.cpp.o.d"
  "CMakeFiles/eel_tools.dir/Qpt.cpp.o"
  "CMakeFiles/eel_tools.dir/Qpt.cpp.o.d"
  "CMakeFiles/eel_tools.dir/RegFree.cpp.o"
  "CMakeFiles/eel_tools.dir/RegFree.cpp.o.d"
  "CMakeFiles/eel_tools.dir/Sandbox.cpp.o"
  "CMakeFiles/eel_tools.dir/Sandbox.cpp.o.d"
  "CMakeFiles/eel_tools.dir/Tracer.cpp.o"
  "CMakeFiles/eel_tools.dir/Tracer.cpp.o.d"
  "CMakeFiles/eel_tools.dir/WindTunnel.cpp.o"
  "CMakeFiles/eel_tools.dir/WindTunnel.cpp.o.d"
  "libeel_tools.a"
  "libeel_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
