
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/ActiveMem.cpp" "src/tools/CMakeFiles/eel_tools.dir/ActiveMem.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/ActiveMem.cpp.o.d"
  "/root/repo/src/tools/AdhocQpt.cpp" "src/tools/CMakeFiles/eel_tools.dir/AdhocQpt.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/AdhocQpt.cpp.o.d"
  "/root/repo/src/tools/Optimizer.cpp" "src/tools/CMakeFiles/eel_tools.dir/Optimizer.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/Optimizer.cpp.o.d"
  "/root/repo/src/tools/Qpt.cpp" "src/tools/CMakeFiles/eel_tools.dir/Qpt.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/Qpt.cpp.o.d"
  "/root/repo/src/tools/RegFree.cpp" "src/tools/CMakeFiles/eel_tools.dir/RegFree.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/RegFree.cpp.o.d"
  "/root/repo/src/tools/Sandbox.cpp" "src/tools/CMakeFiles/eel_tools.dir/Sandbox.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/Sandbox.cpp.o.d"
  "/root/repo/src/tools/Tracer.cpp" "src/tools/CMakeFiles/eel_tools.dir/Tracer.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/Tracer.cpp.o.d"
  "/root/repo/src/tools/WindTunnel.cpp" "src/tools/CMakeFiles/eel_tools.dir/WindTunnel.cpp.o" "gcc" "src/tools/CMakeFiles/eel_tools.dir/WindTunnel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/eel_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/eel_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/sxf/CMakeFiles/eel_sxf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/eel_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
