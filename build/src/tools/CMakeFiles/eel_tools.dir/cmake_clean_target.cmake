file(REMOVE_RECURSE
  "libeel_tools.a"
)
