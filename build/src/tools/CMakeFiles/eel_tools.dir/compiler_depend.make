# Empty compiler generated dependencies file for eel_tools.
# This may be replaced when dependencies are built.
