
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/Generator.cpp" "src/workload/CMakeFiles/eel_workload.dir/Generator.cpp.o" "gcc" "src/workload/CMakeFiles/eel_workload.dir/Generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmkit/CMakeFiles/eel_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/sxf/CMakeFiles/eel_sxf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/eel_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
