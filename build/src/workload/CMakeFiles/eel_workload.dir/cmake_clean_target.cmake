file(REMOVE_RECURSE
  "libeel_workload.a"
)
