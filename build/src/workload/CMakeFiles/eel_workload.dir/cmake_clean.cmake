file(REMOVE_RECURSE
  "CMakeFiles/eel_workload.dir/Generator.cpp.o"
  "CMakeFiles/eel_workload.dir/Generator.cpp.o.d"
  "libeel_workload.a"
  "libeel_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
