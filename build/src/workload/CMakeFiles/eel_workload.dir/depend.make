# Empty dependencies file for eel_workload.
# This may be replaced when dependencies are built.
