file(REMOVE_RECURSE
  "libeel_spawn.a"
)
