
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spawn/Analysis.cpp" "src/spawn/CMakeFiles/eel_spawn.dir/Analysis.cpp.o" "gcc" "src/spawn/CMakeFiles/eel_spawn.dir/Analysis.cpp.o.d"
  "/root/repo/src/spawn/Codegen.cpp" "src/spawn/CMakeFiles/eel_spawn.dir/Codegen.cpp.o" "gcc" "src/spawn/CMakeFiles/eel_spawn.dir/Codegen.cpp.o.d"
  "/root/repo/src/spawn/DescParser.cpp" "src/spawn/CMakeFiles/eel_spawn.dir/DescParser.cpp.o" "gcc" "src/spawn/CMakeFiles/eel_spawn.dir/DescParser.cpp.o.d"
  "/root/repo/src/spawn/Eval.cpp" "src/spawn/CMakeFiles/eel_spawn.dir/Eval.cpp.o" "gcc" "src/spawn/CMakeFiles/eel_spawn.dir/Eval.cpp.o.d"
  "/root/repo/src/spawn/Lexer.cpp" "src/spawn/CMakeFiles/eel_spawn.dir/Lexer.cpp.o" "gcc" "src/spawn/CMakeFiles/eel_spawn.dir/Lexer.cpp.o.d"
  "/root/repo/src/spawn/Rtl.cpp" "src/spawn/CMakeFiles/eel_spawn.dir/Rtl.cpp.o" "gcc" "src/spawn/CMakeFiles/eel_spawn.dir/Rtl.cpp.o.d"
  "/root/repo/src/spawn/SpawnTarget.cpp" "src/spawn/CMakeFiles/eel_spawn.dir/SpawnTarget.cpp.o" "gcc" "src/spawn/CMakeFiles/eel_spawn.dir/SpawnTarget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/eel_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/eel_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eel_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sxf/CMakeFiles/eel_sxf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
