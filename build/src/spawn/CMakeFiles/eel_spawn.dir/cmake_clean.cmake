file(REMOVE_RECURSE
  "CMakeFiles/eel_spawn.dir/Analysis.cpp.o"
  "CMakeFiles/eel_spawn.dir/Analysis.cpp.o.d"
  "CMakeFiles/eel_spawn.dir/Codegen.cpp.o"
  "CMakeFiles/eel_spawn.dir/Codegen.cpp.o.d"
  "CMakeFiles/eel_spawn.dir/DescParser.cpp.o"
  "CMakeFiles/eel_spawn.dir/DescParser.cpp.o.d"
  "CMakeFiles/eel_spawn.dir/Eval.cpp.o"
  "CMakeFiles/eel_spawn.dir/Eval.cpp.o.d"
  "CMakeFiles/eel_spawn.dir/Lexer.cpp.o"
  "CMakeFiles/eel_spawn.dir/Lexer.cpp.o.d"
  "CMakeFiles/eel_spawn.dir/Rtl.cpp.o"
  "CMakeFiles/eel_spawn.dir/Rtl.cpp.o.d"
  "CMakeFiles/eel_spawn.dir/SpawnTarget.cpp.o"
  "CMakeFiles/eel_spawn.dir/SpawnTarget.cpp.o.d"
  "libeel_spawn.a"
  "libeel_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eel_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
