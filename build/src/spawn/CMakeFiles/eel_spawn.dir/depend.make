# Empty dependencies file for eel_spawn.
# This may be replaced when dependencies are built.
