//===- examples/trace_demo.cpp - qpt-style memory tracing ---------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program-observation application (§1): record every memory
/// reference's effective address by editing the executable, then verify
/// the recorded trace against the simulator's own memory hook — the trace
/// an edited program collects about itself is exactly the trace an
/// omniscient observer sees.
///
//===----------------------------------------------------------------------===//

#include "tools/Tracer.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace eel;

int main() {
  WorkloadOptions Options;
  Options.Seed = 33;
  Options.Routines = 10;
  SxfFile File = generateWorkload(TargetArch::Srisc, Options);

  // Omniscient ground truth from the simulator.
  Machine Original(File);
  std::vector<Addr> GroundTruth;
  Original.OnMemory = [&](Addr, Addr EffAddr, unsigned, bool) {
    GroundTruth.push_back(EffAddr);
  };
  RunResult OriginalResult = Original.run();

  // Self-observation by editing. Options::Verify gates the output on the
  // static verifier: writeEditedExecutable fails if any check errors.
  Executable::Options ExecOptions;
  ExecOptions.Verify = true;
  Executable Exec(std::move(File), ExecOptions);
  MemoryTracer Tracer(Exec, /*CapacityEntries=*/1u << 16);
  Tracer.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError()) {
    std::fprintf(stderr, "error: %s\n", Edited.error().message().c_str());
    return 1;
  }
  Machine Instrumented(Edited.value());
  RunResult InstrumentedResult = Instrumented.run();
  if (InstrumentedResult.Output != OriginalResult.Output) {
    std::fprintf(stderr, "error: instrumented program diverged!\n");
    return 1;
  }

  std::vector<Addr> Trace = Tracer.readTrace(Instrumented.memory());
  std::printf("instrumented %u memory references; recorded %zu addresses\n",
              Tracer.sitesInstrumented(), Trace.size());
  std::printf("first references of the run:\n");
  for (size_t I = 0; I < Trace.size() && I < 12; ++I)
    std::printf("  [%2zu] 0x%08x%s\n", I, Trace[I],
                Trace[I] >= 0x7F000000 ? "  (stack)" : "  (data)");

  if (Trace == GroundTruth) {
    std::printf("\ntrace matches the simulator's ground truth exactly "
                "(%zu references).\n",
                GroundTruth.size());
    return 0;
  }
  std::fprintf(stderr, "error: trace diverged from ground truth!\n");
  return 1;
}
