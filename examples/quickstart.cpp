//===- examples/quickstart.cpp - Figure 1: a branch-counting tool ------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1, as a runnable program: a branch-counting tool in
/// one page of EEL code. It opens an executable (a generated SPEC-ish
/// program, or an SXF file given on the command line), walks every
/// routine's CFG, adds a counter-increment snippet along each outgoing
/// edge of blocks with more than one successor, writes the edited
/// executable, runs both versions in the simulator, and prints the hottest
/// edges — demonstrating that the edited program behaves identically while
/// measuring itself.
///
/// Usage: quickstart [program.sxf]
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "analysis/Verifier.h"
#include "core/Executable.h"
#include "support/Stats.h"
#include "tools/Qpt.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <algorithm>
#include <cstdio>

using namespace eel;

int main(int argc, char **argv) {
  // Open the executable (the paper: `new executable(argv[1])` +
  // read_contents), or generate a workload when none is given.
  SxfFile File;
  if (argc > 1) {
    Expected<SxfFile> Loaded = SxfFile::readFromFile(argv[1]);
    if (Loaded.hasError()) {
      std::fprintf(stderr, "error: %s\n", Loaded.error().message().c_str());
      return 1;
    }
    File = Loaded.takeValue();
  } else {
    WorkloadOptions Options;
    Options.Seed = 2026;
    Options.Routines = 12;
    File = generateWorkload(TargetArch::Srisc, Options);
    std::printf("no input given: generated a %zu-byte SRISC program\n",
                File.segment(SegKind::Text)->Bytes.size());
  }

  RunResult Original = runToCompletion(File);
  std::printf("original: exit=%d, %llu instructions, output \"%s\"\n",
              Original.ExitCode,
              static_cast<unsigned long long>(Original.Instructions),
              Original.Output.c_str());

  // Instrument: FOREACH_ROUTINE { FOREACH_BB { if (1 < succ size)
  // FOREACH_EDGE e->add_code_along(incr_count(num)); } }  (Figure 1).
  // Tracing on, so the run-report summary below has a phase tree.
  Executable::Options ExecOptions;
  ExecOptions.Trace = true;
  Executable Exec(std::move(File), ExecOptions);
  Qpt2Profiler::Options ProfilerOptions;
  ProfilerOptions.CountBlocks = false;
  Qpt2Profiler Profiler(Exec, ProfilerOptions);
  Profiler.instrument();
  std::printf("instrumented %u routines (%u skipped), %zu edge counters\n",
              Profiler.routinesInstrumented(), Profiler.routinesSkipped(),
              Profiler.counters().size());

  // exec->write_edited_executable(...).
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError()) {
    std::fprintf(stderr, "error: %s\n", Edited.error().message().c_str());
    return 1;
  }

  // Lint the edit before trusting it: the static verifier re-disassembles
  // the output and checks it against the edited CFGs (see eel-lint for the
  // standalone version of this check).
  DiagnosticReport Verified = verifyEdit(Exec, Edited.value());
  std::printf("verifier: %u checks run, %u error(s)\n", Verified.checksRun(),
              Verified.errorCount());
  if (Verified.hasErrors()) {
    std::fprintf(stderr, "%s", Verified.renderText().c_str());
    return 1;
  }

  Machine Instrumented(Edited.value());
  RunResult After = Instrumented.run();
  std::printf("edited:   exit=%d, %llu instructions, output \"%s\"\n",
              After.ExitCode,
              static_cast<unsigned long long>(After.Instructions),
              After.Output.c_str());
  if (After.Output != Original.Output || After.ExitCode != Original.ExitCode) {
    std::fprintf(stderr, "error: edited program diverged!\n");
    return 1;
  }

  // Report the ten hottest edges.
  std::vector<uint64_t> Counts = Profiler.readCounts(Instrumented.memory());
  std::vector<size_t> Order(Counts.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(),
            [&](size_t A, size_t B) { return Counts[A] > Counts[B]; });
  std::printf("\nhottest edges:\n");
  std::printf("%-12s %-10s %-10s %-10s %10s\n", "routine", "branch",
              "edge", "dest", "count");
  for (size_t I = 0; I < Order.size() && I < 10; ++I) {
    const Qpt2Profiler::CounterInfo &Info =
        Profiler.counters()[Order[I]];
    const char *Kind = "";
    switch (Info.Edge) {
    case EdgeKind::Taken: Kind = "taken"; break;
    case EdgeKind::NotTaken: Kind = "not-taken"; break;
    case EdgeKind::SwitchCase: Kind = "case"; break;
    default: Kind = "other"; break;
    }
    std::printf("%-12s 0x%-8x %-10s 0x%-8x %10llu\n", Info.Routine.c_str(),
                Info.TermAddr, Kind, Info.DestAnchor,
                static_cast<unsigned long long>(Counts[Order[I]]));
  }
  // One-screen run-report summary: the same data eel-report emits as JSON
  // (phase tree from the drained spans, key counters, histogram medians).
  traceSetEnabled(false);
  std::printf("\nrun report:\n");
  std::vector<PhaseNode> Phases =
      buildPhaseTree(TraceCollector::instance().drain());
  struct Printer {
    static void print(const std::vector<PhaseNode> &Level, int Depth) {
      for (const PhaseNode &N : Level) {
        std::printf("  %*s%-*s %9.1f us  x%llu\n", 2 * Depth, "",
                    30 - 2 * Depth, N.Name.c_str(), N.TotalNs / 1000.0,
                    static_cast<unsigned long long>(N.Count));
        if (Depth < 2)
          print(N.Children, Depth + 1);
      }
    }
  };
  Printer::print(Phases, 0);
  std::printf("  counters: %llu CFGs built, %llu snippet instances, "
              "%u translation sites\n",
              static_cast<unsigned long long>(
                  StatRegistry::instance().read("eel.cfg.built")),
              static_cast<unsigned long long>(
                  StatRegistry::instance().read("eel.snippet.instances")),
              Exec.editStats().TranslationSites);
  for (const char *Name :
       {"cfg.blocks_per_routine", "layout.words_per_routine"}) {
    HistogramSnapshot H = HistogramRegistry::instance().read(Name);
    if (H.Count)
      std::printf("  %-28s n=%-5llu median<=%llu max=%llu\n", Name,
                  static_cast<unsigned long long>(H.Count),
                  static_cast<unsigned long long>(H.quantileUpperBound(0.5)),
                  static_cast<unsigned long long>(H.Max));
  }
  std::printf("  verifier: %u checks, %u errors\n", Verified.checksRun(),
              Verified.errorCount());

  std::printf("\nbranch-counting tool finished: the edited program measured "
              "itself and behaved\nidentically to the original.\n");
  return 0;
}
