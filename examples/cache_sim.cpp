//===- examples/cache_sim.cpp - Active Memory cache simulation ----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Active Memory application (§1, §5): simulate a memory system by
/// inserting a quick cache test before every load and store instead of
/// post-processing an address trace. This example sweeps cache sizes on a
/// generated workload and prints the miss ratios and the slowdown of the
/// edited program — the paper's "2-7x" headline.
///
/// Usage: cache_sim [seed]
///
//===----------------------------------------------------------------------===//

#include "tools/ActiveMem.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <cstdio>
#include <cstdlib>

using namespace eel;

int main(int argc, char **argv) {
  WorkloadOptions Options;
  Options.Seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 7;
  Options.Routines = 20;
  Options.SegmentsPerRoutine = 7;
  SxfFile File = generateWorkload(TargetArch::Srisc, Options);

  RunResult Original = runToCompletion(File);
  std::printf("workload (seed %llu): %llu instructions, output \"%s\"\n",
              static_cast<unsigned long long>(Options.Seed),
              static_cast<unsigned long long>(Original.Instructions),
              Original.Output.c_str());

  std::printf("\n%8s %8s %10s %10s %8s %9s\n", "lines", "linesz",
              "accesses", "misses", "miss%", "slowdown");
  for (unsigned Lines : {8u, 32u, 128u, 512u}) {
    CacheConfig Config;
    Config.Lines = Lines;
    Config.LineBytes = 16;

    Executable Exec((SxfFile(File)));
    ActiveMemory Simulator(Exec, Config);
    Simulator.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    if (Edited.hasError()) {
      std::fprintf(stderr, "error: %s\n", Edited.error().message().c_str());
      return 1;
    }
    Machine M(Edited.value());
    RunResult After = M.run();
    if (After.Output != Original.Output) {
      std::fprintf(stderr, "error: instrumented program diverged!\n");
      return 1;
    }
    uint64_t Accesses = Simulator.accesses(M.memory());
    uint64_t Misses = Simulator.misses(M.memory());
    std::printf("%8u %8u %10llu %10llu %7.2f%% %8.2fx\n", Lines,
                Config.LineBytes, static_cast<unsigned long long>(Accesses),
                static_cast<unsigned long long>(Misses),
                100.0 * static_cast<double>(Misses) /
                    static_cast<double>(Accesses ? Accesses : 1),
                static_cast<double>(After.Instructions) /
                    static_cast<double>(Original.Instructions));
  }
  std::printf("\nbigger caches miss less; the inline test keeps simulation "
              "within a single-digit\nslowdown, as the paper reports for "
              "Active Memory.\n");
  return 0;
}
