//===- examples/cfg_dump.cpp - Executable analysis browser ---------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small analysis browser over EEL's abstractions: runs symbol-table
/// refinement on an executable, prints the routine map (including hidden
/// routines and data tables discovered by analysis), and dumps one
/// routine's normalized CFG with disassembly, edge structure, editability,
/// dominator-computed loops, and indirect-jump resolutions.
///
/// Usage: cfg_dump [program.sxf [routine]]
///
//===----------------------------------------------------------------------===//

#include "core/CallGraph.h"
#include "core/Dominators.h"
#include "core/Executable.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace eel;

static void dumpRoutine(Routine &R) {
  std::printf("\n--- CFG of %s ---\n", R.name().c_str());
  Cfg *G = R.controlFlowGraph();
  std::printf("complete=%s%s%s\n", G->complete() ? "yes" : "no",
              G->unsupported() ? " UNSUPPORTED: " : "",
              G->unsupported() ? G->unsupportedReason().c_str() : "");
  for (const auto &B : G->blocks()) {
    const char *Kind = "";
    switch (B->kind()) {
    case BlockKind::Normal: Kind = "normal"; break;
    case BlockKind::DelaySlot: Kind = "delay-slot"; break;
    case BlockKind::CallSurrogate: Kind = "call-surrogate"; break;
    case BlockKind::Entry: Kind = "entry"; break;
    case BlockKind::Exit: Kind = "exit"; break;
    }
    std::printf("block %-3u %-14s %s\n", B->id(), Kind,
                B->editable() ? "" : "[uneditable]");
    for (const CfgInst &CI : B->insts())
      std::printf("    %05x: %s\n", CI.OrigAddr,
                  CI.Inst->disassemble(CI.OrigAddr).c_str());
    if (B->kind() == BlockKind::CallSurrogate) {
      if (std::optional<Addr> T = B->callTarget())
        std::printf("    (callee at 0x%x)\n", *T);
      else
        std::printf("    (indirect callee)\n");
    }
    for (const Edge *E : B->succ())
      std::printf("    -> %u%s\n", E->dst()->id(),
                  E->editable() ? "" : " [uneditable]");
  }
  for (const IndirectSite &Site : G->indirectSites()) {
    const char *Kind = "";
    switch (Site.Resolution.K) {
    case IndirectResolution::Kind::DispatchTable: Kind = "dispatch table"; break;
    case IndirectResolution::Kind::Literal: Kind = "literal"; break;
    case IndirectResolution::Kind::CellPointer: Kind = "pointer cell"; break;
    case IndirectResolution::Kind::Unanalyzable: Kind = "UNANALYZABLE"; break;
    }
    std::printf("indirect %s at 0x%x: %s", Site.IsCall ? "call" : "jump",
                Site.JumpAddr, Kind);
    if (Site.Resolution.K == IndirectResolution::Kind::DispatchTable)
      std::printf(" (%u entries at 0x%x%s)", Site.Resolution.EntryCount,
                  Site.Resolution.TableAddr,
                  Site.Resolution.BoundsProven ? ", bounds proven" : "");
    if (Site.Resolution.TailCallIdiom)
      std::printf(" [tail-call idiom]");
    std::printf("\n");
  }
  Dominators Doms(*G);
  std::vector<NaturalLoop> Loops = findNaturalLoops(*G, Doms);
  for (const NaturalLoop &Loop : Loops)
    std::printf("natural loop headed by block %u (%zu blocks)\n",
                Loop.Header->id(), Loop.Blocks.size());
}

int main(int argc, char **argv) {
  SxfFile File;
  if (argc > 1) {
    Expected<SxfFile> Loaded = SxfFile::readFromFile(argv[1]);
    if (Loaded.hasError()) {
      std::fprintf(stderr, "error: %s\n", Loaded.error().message().c_str());
      return 1;
    }
    File = Loaded.takeValue();
  } else {
    WorkloadOptions Options;
    Options.Seed = 5;
    Options.Routines = 6;
    Options.SymbolPathologies = true;
    File = generateWorkload(TargetArch::Srisc, Options);
  }

  Executable Exec(std::move(File));
  Exec.readContents();
  std::printf("routine map after symbol-table refinement:\n");
  std::printf("%-16s %-10s %-10s %7s %8s %6s\n", "name", "start", "end",
              "entries", "hidden", "data");
  for (const auto &R : Exec.routines())
    std::printf("%-16s 0x%-8x 0x%-8x %7zu %8s %6s\n", R->name().c_str(),
                R->startAddr(), R->endAddr(), R->entryPoints().size(),
                R->hidden() ? "yes" : "", R->isData() ? "yes" : "");

  CallGraph CG = CallGraph::build(Exec);
  std::printf("\ncall graph (callees per routine):\n");
  for (const CallGraph::Node &N : CG.nodes()) {
    if (N.Callees.empty())
      continue;
    std::printf("  %-16s ->", N.R->name().c_str());
    for (Routine *Callee : N.Callees)
      std::printf(" %s", Callee->name().c_str());
    std::printf("\n");
  }

  // Dump one routine: the named one, or the first with an indirect jump.
  Routine *Chosen = nullptr;
  if (argc > 2)
    Chosen = Exec.findRoutine(argv[2]);
  if (!Chosen) {
    for (const auto &R : Exec.routines()) {
      if (R->isData())
        continue;
      if (!R->controlFlowGraph()->indirectSites().empty()) {
        Chosen = R.get();
        break;
      }
    }
  }
  if (!Chosen)
    Chosen = Exec.findRoutine("main");
  if (Chosen)
    dumpRoutine(*Chosen);
  return 0;
}
