//===- examples/sandbox_demo.cpp - Software fault isolation --------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sandboxing application (§1, citing Wahbe et al.): guard every store
/// so a protected program cannot write outside its data and stack regions.
/// The demo first sandboxes a well-behaved generated workload (behaviour
/// unchanged), then a misbehaving program that scribbles on a foreign
/// address (caught: it exits with the violation status instead of
/// corrupting memory).
///
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "tools/Sandbox.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace eel;

static int sandboxAndRun(SxfFile File, const char *Label) {
  RunResult Original = runToCompletion(File);
  // Verify-gated: the edited image must pass the static verifier before
  // writeEditedExecutable returns it.
  Executable::Options ExecOptions;
  ExecOptions.Verify = true;
  Executable Exec(std::move(File), ExecOptions);
  Sandboxer SFI(Exec, /*DataRegionBase=*/0x400000,
                /*StackRegionBase=*/0x7FE00000);
  SFI.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError()) {
    std::fprintf(stderr, "error: %s\n", Edited.error().message().c_str());
    return -1;
  }
  RunResult After = runToCompletion(Edited.value());
  std::printf("[%s] %u stores guarded; original exit=%d, sandboxed exit=%d"
              "%s\n",
              Label, SFI.sitesInstrumented(), Original.ExitCode,
              After.ExitCode,
              After.ExitCode == Sandboxer::ViolationExitCode
                  ? "  <- VIOLATION caught"
                  : "");
  return After.ExitCode;
}

int main() {
  // A well-behaved program: all stores hit its own data or stack.
  WorkloadOptions Options;
  Options.Seed = 14;
  Options.Routines = 14;
  sandboxAndRun(generateWorkload(TargetArch::Srisc, Options),
                "well-behaved workload");

  // A misbehaving program: pointer arithmetic gone wrong lands a store in
  // a foreign megabyte. Unsandboxed it "succeeds"; sandboxed it is caught.
  SxfFile Wild = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set buffer, %o1
  set 0x180000, %o2   ! a corrupted index
  add %o1, %o2, %o1   ! ... producing a pointer outside every region
  mov 66, %o3
  st %o3, [%o1 + 0]   ! wild store
  mov 0, %o0
  sys 0
  ret
  nop
.data
.align 4
buffer: .space 64
)");
  int Exit = sandboxAndRun(std::move(Wild), "wild-store program");
  if (Exit != Sandboxer::ViolationExitCode) {
    std::fprintf(stderr, "error: the wild store was not caught!\n");
    return 1;
  }
  std::printf("\nsandboxing works: foreign code can be confined without "
              "hardware support,\nexactly the §1 emulation use case.\n");
  return 0;
}
