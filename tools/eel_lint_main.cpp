//===- tools/eel_lint_main.cpp - Standalone image checker ---------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-lint: runs the static verifier (analysis/Verifier.h) over SXF
/// images from the command line.
///
///   eel-lint [options] image.sxf...
///     --json        emit an "eel-report/1" JSON envelope (the same schema
///                   eel-report and sxf-fuzz --json produce): inputs with
///                   content hashes, diagnostics, counters, histograms
///     --roundtrip   additionally re-edit the image with no changes and run
///                   the full five-pass verification (including layout and
///                   translation validation) on the result
///     --stripped    distrust the symbol table: derive routine boundaries
///                   with the eel-infer fixpoint (analysis/Infer.h) and
///                   report every inferred routine with its confidence as
///                   a note diagnostic; the image is still linted
///     --threads N   worker threads for the per-routine fan-out (0 = auto)
///     --quiet       print nothing on clean images
///
/// Exit status: 0 clean, 1 when any error-severity finding was reported,
/// 2 when an image failed to load at all or the command line is malformed.
///
//===----------------------------------------------------------------------===//

#include "analysis/InferFacts.h"
#include "analysis/Report.h"
#include "analysis/Verifier.h"
#include "core/Executable.h"
#include "support/FileIO.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace eel;

namespace {

struct LintConfig {
  bool Json = false;
  bool Roundtrip = false;
  bool Stripped = false;
  bool Quiet = false;
  unsigned Threads = 0;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--roundtrip] [--stripped] [--threads N] "
               "[--quiet] image.sxf...\n",
               Argv0);
  return 2;
}

/// --stripped: analyze the image with the symbol table distrusted, so
/// eel-infer derives boundaries, and report what it concluded. Inference
/// findings are notes: heuristic conclusions, not defects.
bool reportInference(const std::string &Path, const SxfFile &Image,
                     const LintConfig &Config, DiagnosticReport &Report) {
  Executable::Options EOpts;
  EOpts.NoSymbols = true;
  EOpts.Threads = Config.Threads;
  Expected<std::unique_ptr<Executable>> Exec =
      Executable::openImage(Image, EOpts);
  if (Exec.hasError()) {
    Report.add(VerifyPass::Inference, DiagSeverity::Error, "", -1, 0, false,
               Path + ": " + Exec.error().describe());
    return false;
  }
  Executable &E = *Exec.value();
  E.readContents();
  for (const auto &R : E.routines()) {
    auto C = static_cast<InferConfidence>(
        E.inferredConfidence(R->startAddr()));
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "inferred %s extent of %u bytes, confidence %s",
                  R->isData() ? "data" : "routine", R->sizeBytes(),
                  inferConfidenceName(C));
    Report.add(VerifyPass::Inference, DiagSeverity::Note, R->name(), -1,
               R->startAddr(), true, Buf);
  }
  return true;
}

/// Lints one image; merges findings into \p Report and records the input's
/// provenance in \p Run. Returns false when the image could not even be
/// loaded.
bool lintOne(const std::string &Path, const LintConfig &Config,
             DiagnosticReport &Report, RunReport &Run) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (Bytes.hasError()) {
    Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
               Path + ": " + Bytes.error().describe());
    return false;
  }
  Run.addInput(Path, fnv1a64(Bytes.value().data(), Bytes.value().size()),
               Bytes.value().size());
  Expected<SxfFile> Image = SxfFile::deserialize(Bytes.value());
  if (Image.hasError()) {
    Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
               Path + ": " + Image.error().describe());
    return false;
  }
  if (Config.Stripped && !reportInference(Path, Image.value(), Config, Report))
    return false;

  VerifyOptions Opts;
  Opts.Threads = Config.Threads;
  if (Config.Stripped) {
    // Lint what --stripped actually trusts: the image minus its symbols.
    SxfFile NoSyms(Image.value());
    NoSyms.Symbols.clear();
    Report.append(lintImage(NoSyms, Opts));
  } else {
    Report.append(lintImage(Image.value(), Opts));
  }

  if (Config.Roundtrip) {
    // An identity edit exercises the whole pipeline: the verify gate plus
    // an explicit verifyEdit give the full five passes over the output.
    Executable::Options EOpts;
    EOpts.Threads = Config.Threads ? Config.Threads : 0;
    Expected<std::unique_ptr<Executable>> Exec =
        Executable::openImage(Image.value(), EOpts);
    if (Exec.hasError()) {
      Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0,
                 false, Path + ": " + Exec.error().describe());
      return false;
    }
    Expected<SxfFile> Edited = Exec.value()->writeEditedExecutable();
    if (Edited.hasError()) {
      Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0,
                 false,
                 Path + ": roundtrip edit failed: " +
                     Edited.error().describe());
      return false;
    }
    VerifyOptions EditOpts;
    EditOpts.Threads = Config.Threads;
    Report.append(verifyEdit(*Exec.value(), Edited.value(), EditOpts));
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  LintConfig Config;
  std::vector<std::string> Paths;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!std::strcmp(Arg, "--json")) {
      Config.Json = true;
    } else if (!std::strcmp(Arg, "--roundtrip")) {
      Config.Roundtrip = true;
    } else if (!std::strcmp(Arg, "--stripped")) {
      Config.Stripped = true;
    } else if (!std::strcmp(Arg, "--quiet")) {
      Config.Quiet = true;
    } else if (!std::strcmp(Arg, "--threads")) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Config.Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty())
    return usage(argv[0]);

  DiagnosticReport Report;
  RunReport Run("eel-lint");
  Run.addOption("roundtrip", Config.Roundtrip);
  Run.addOption("stripped", Config.Stripped);
  Run.addOption("threads", uint64_t(Config.Threads));
  bool AllLoaded = true;
  for (const std::string &Path : Paths)
    AllLoaded &= lintOne(Path, Config, Report, Run);

  if (Config.Json) {
    Run.captureDiagnostics(Report);
    Run.captureMetrics();
    std::printf("%s\n", Run.renderJson().c_str());
  } else if (!Report.empty()) {
    std::printf("%s", Report.renderText().c_str());
  }
  if (!Config.Quiet && !Config.Json)
    std::printf("%u finding(s), %u error(s), %u check(s) run\n",
                static_cast<unsigned>(Report.diagnostics().size()),
                Report.errorCount(), Report.checksRun());

  if (!AllLoaded)
    return 2;
  return Report.hasErrors() ? 1 : 0;
}
