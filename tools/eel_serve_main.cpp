//===- tools/eel_serve_main.cpp - The edit-service daemon -----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-serve: the edit pipeline as a long-lived daemon. Clients connect
/// over a local (AF_UNIX) stream socket and exchange length-prefixed
/// frames — `u32 length | payload`, payloads as defined in
/// serve/Protocol.h — one request frame in, one response frame out, any
/// number of requests per connection. Each connection gets an acceptor
/// thread; the actual pipeline work is batched onto the service's bounded
/// ThreadPool with admission control (serve/Serve.h).
///
///   eel-serve --socket PATH [options]       run the daemon
///   eel-serve --once REQ RESP [options]     serve one request from file
///                                           REQ, write the response
///                                           frame to file RESP, exit
///     --cache N            analysis cache capacity in entries (16)
///     --max-inflight N     admitted-but-unanswered bound (8; 0 = off)
///     --max-image-bytes N  request image size bound (64 MiB; 0 = off)
///     --workers N          dispatch pool workers (0 = small default)
///     --max-requests N     exit after answering N requests (0 = forever;
///                          the tests' shutdown handle)
///     --log-level LVL      trace|debug|info|warn|error|off (off); JSONL
///                          structured records (support/Log.h)
///     --log-file PATH      append log records to PATH instead of stderr
///     --slow-ms N          capture trace exemplars for requests slower
///                          than N milliseconds (0 = off)
///     --exemplars N        worst-N slow-request exemplars retained (4)
///
/// Both entry points route frames through EditService::handleFrame, so a
/// control-plane ELSt scrape works over the socket and in --once mode
/// alike. Status frames count toward --max-requests (the scrape smoke
/// script relies on that for clean shutdown).
///
/// Exit status: 0 on clean shutdown, 2 on usage or socket errors. In
/// --once mode, 0 even when the response carries a rejection — the
/// envelope is the answer; only failure to produce one is an error.
///
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"
#include "support/FileIO.h"
#include "support/Log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace eel;

namespace {

struct ServeConfig {
  std::string SocketPath;
  std::string OncePath;
  std::string OnceOutPath;
  std::string LogFile;
  LogLevel Log = LogLevel::Off;
  ServeLimits Limits;
  uint64_t MaxRequests = 0;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --once REQ RESP) [--cache N] "
               "[--max-inflight N] [--max-image-bytes N] [--workers N] "
               "[--max-requests N] [--log-level LVL] [--log-file PATH] "
               "[--slow-ms N] [--exemplars N]\n",
               Argv0);
  return 2;
}

/// Reads exactly \p N bytes; false on EOF or error.
bool readFull(int Fd, uint8_t *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R <= 0)
      return false;
    Got += static_cast<size_t>(R);
  }
  return true;
}

bool writeFull(int Fd, const uint8_t *Buf, size_t N) {
  size_t Put = 0;
  while (Put < N) {
    ssize_t W = ::write(Fd, Buf + Put, N - Put);
    if (W <= 0)
      return false;
    Put += static_cast<size_t>(W);
  }
  return true;
}

/// Frame cap for the transport itself: the admission layer re-checks the
/// image size, but a hostile frame length must not size an allocation
/// bigger than the service could ever accept.
constexpr uint32_t MaxFrameBytes = 256u << 20;

/// Reads one `u32 length | payload` frame; false on EOF/oversize.
bool readFrame(int Fd, std::vector<uint8_t> &Payload) {
  uint8_t Hdr[4];
  if (!readFull(Fd, Hdr, 4))
    return false;
  uint32_t Len = static_cast<uint32_t>(Hdr[0]) |
                 (static_cast<uint32_t>(Hdr[1]) << 8) |
                 (static_cast<uint32_t>(Hdr[2]) << 16) |
                 (static_cast<uint32_t>(Hdr[3]) << 24);
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || readFull(Fd, Payload.data(), Len);
}

bool writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  uint8_t Hdr[4] = {static_cast<uint8_t>(Len), static_cast<uint8_t>(Len >> 8),
                    static_cast<uint8_t>(Len >> 16),
                    static_cast<uint8_t>(Len >> 24)};
  if (!writeFull(Fd, Hdr, 4))
    return false;
  return Payload.empty() || writeFull(Fd, Payload.data(), Payload.size());
}

/// One request from a file, one response frame to a file; no socket.
/// Routed through handleFrame, so the file may hold an edit request or a
/// control-plane status frame.
int runOnce(const ServeConfig &Config) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Config.OncePath);
  if (Bytes.hasError()) {
    std::fprintf(stderr, "error: %s\n", Bytes.error().describe().c_str());
    return 2;
  }
  EditService Service(Config.Limits);
  Expected<bool> Wrote =
      writeFileBytes(Config.OnceOutPath, Service.handleFrame(Bytes.value()));
  Logger::instance().flushAll();
  if (Wrote.hasError()) {
    std::fprintf(stderr, "error: %s\n", Wrote.error().describe().c_str());
    return 2;
  }
  return 0;
}

int runDaemon(const ServeConfig &Config) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("eel-serve: socket");
    return 2;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    ::close(Listen);
    return 2;
  }
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Config.SocketPath.c_str());
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::perror("eel-serve: bind");
    ::close(Listen);
    return 2;
  }
  if (::listen(Listen, 64) < 0) {
    std::perror("eel-serve: listen");
    ::close(Listen);
    return 2;
  }

  EditService Service(Config.Limits);
  std::atomic<uint64_t> Answered{0};
  std::atomic<bool> Quit{false};
  std::vector<std::thread> Connections;
  EEL_LOG(LogLevel::Info, "daemon.listening",
          logStr("socket", Config.SocketPath),
          logNum("max_requests", Config.MaxRequests));

  while (!Quit.load(std::memory_order_acquire)) {
    int Conn = ::accept(Listen, nullptr, nullptr);
    if (Conn < 0)
      break;
    Connections.emplace_back([&Service, &Answered, &Quit, &Config, Conn,
                              Listen] {
      EEL_LOG(LogLevel::Debug, "daemon.connection_open", logNum("fd", Conn));
      std::vector<uint8_t> Payload;
      while (readFrame(Conn, Payload)) {
        // handleFrame answers edit and status frames alike; status frames
        // count toward --max-requests so a scrape-only session can still
        // drive a bounded daemon to clean shutdown.
        if (!writeFrame(Conn, Service.handleFrame(Payload)))
          break;
        uint64_t Total = Answered.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (Config.MaxRequests && Total >= Config.MaxRequests) {
          EEL_LOG(LogLevel::Info, "daemon.request_budget_reached",
                  logNum("answered", Total));
          Quit.store(true, std::memory_order_release);
          // Unblock the blocked accept() so the daemon can exit.
          ::shutdown(Listen, SHUT_RDWR);
          break;
        }
      }
      EEL_LOG(LogLevel::Debug, "daemon.connection_close", logNum("fd", Conn));
      Logger::instance().flushAll();
      ::close(Conn);
    });
  }
  for (std::thread &T : Connections)
    T.join();
  ::close(Listen);
  ::unlink(Config.SocketPath.c_str());
  EEL_LOG(LogLevel::Info, "daemon.shutdown",
          logNum("answered", Answered.load(std::memory_order_relaxed)));
  Logger::instance().flushAll();
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  ServeConfig Config;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto NeedValue = [&](const char *&Out) {
      if (I + 1 >= argc)
        return false;
      Out = argv[++I];
      return true;
    };
    const char *Value = nullptr;
    if (!std::strcmp(Arg, "--socket") && NeedValue(Value)) {
      Config.SocketPath = Value;
    } else if (!std::strcmp(Arg, "--once")) {
      const char *Out = nullptr;
      if (!NeedValue(Value) || !NeedValue(Out))
        return usage(argv[0]);
      Config.OncePath = Value;
      Config.OnceOutPath = Out;
    } else if (!std::strcmp(Arg, "--cache") && NeedValue(Value)) {
      Config.Limits.CacheCapacity = static_cast<size_t>(std::atoll(Value));
    } else if (!std::strcmp(Arg, "--max-inflight") && NeedValue(Value)) {
      Config.Limits.MaxInFlight = static_cast<unsigned>(std::atoi(Value));
    } else if (!std::strcmp(Arg, "--max-image-bytes") && NeedValue(Value)) {
      Config.Limits.MaxImageBytes = static_cast<uint64_t>(std::atoll(Value));
    } else if (!std::strcmp(Arg, "--workers") && NeedValue(Value)) {
      Config.Limits.DispatchWorkers = static_cast<unsigned>(std::atoi(Value));
    } else if (!std::strcmp(Arg, "--max-requests") && NeedValue(Value)) {
      Config.MaxRequests = static_cast<uint64_t>(std::atoll(Value));
    } else if (!std::strcmp(Arg, "--log-level") && NeedValue(Value)) {
      if (!parseLogLevel(Value, Config.Log)) {
        std::fprintf(stderr, "error: unknown log level '%s'\n", Value);
        return 2;
      }
    } else if (!std::strcmp(Arg, "--log-file") && NeedValue(Value)) {
      Config.LogFile = Value;
    } else if (!std::strcmp(Arg, "--slow-ms") && NeedValue(Value)) {
      Config.Limits.SlowRequestUs =
          static_cast<uint64_t>(std::atoll(Value)) * 1000;
    } else if (!std::strcmp(Arg, "--exemplars") && NeedValue(Value)) {
      Config.Limits.ExemplarCapacity = static_cast<size_t>(std::atoll(Value));
    } else {
      return usage(argv[0]);
    }
  }
  if (Config.Log != LogLevel::Off)
    logSetLevel(Config.Log);
  if (!Config.LogFile.empty() && !Logger::instance().setPath(Config.LogFile)) {
    std::fprintf(stderr, "error: cannot open log file '%s'\n",
                 Config.LogFile.c_str());
    return 2;
  }
  if (!Config.OncePath.empty())
    return runOnce(Config);
  if (Config.SocketPath.empty())
    return usage(argv[0]);
  return runDaemon(Config);
}
