//===- tools/sxf_fuzz_main.cpp - SXF loader fault-injection CLI ----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the deterministic SXF fault-injection harness.
///
///   sxf-fuzz [--json] [--seed N] [--mutants N] [--image FILE]...
///
/// --json emits the same "eel-report/1" envelope eel-report and eel-lint
/// produce, with the harness tallies under "summary" and contract
/// violations as image-load diagnostics.
///
/// Without --image, the corpus is generated: one workload per target
/// architecture (plus a symbol-pathology variant and an edited image), the
/// same corpus tests/FuzzTest.cpp uses. With --image, the named files are
/// loaded through Executable-style error reporting — a malformed file
/// prints its structured error (code, offset, field) and is skipped, which
/// doubles as a demonstration of the Expected-based load path: no input,
/// however hostile, aborts this tool.
///
/// Exit status: 0 when every mutant honored the loader contract, 1
/// otherwise (or when no corpus image was usable).
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "core/Executable.h"
#include "support/FileIO.h"
#include "support/Json.h"
#include "tools/SxfFuzz.h"
#include "workload/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace eel;

static std::vector<std::vector<uint8_t>> generatedCorpus() {
  std::vector<std::vector<uint8_t>> Corpus;
  for (TargetArch Arch : AllTargetArches) {
    WorkloadOptions WOpts;
    WOpts.Seed = 7;
    WOpts.Routines = 8;
    Corpus.push_back(generateWorkload(Arch, WOpts).serialize());
  }
  {
    WorkloadOptions WOpts;
    WOpts.Seed = 9;
    WOpts.Routines = 8;
    WOpts.SymbolPathologies = true;
    SxfFile Image = generateWorkload(TargetArch::Srisc, WOpts);
    Corpus.push_back(Image.serialize());
    // An edited image exercises translator/table records in the corpus.
    Executable::Options EOpts;
    EOpts.Threads = 1;
    Executable Exec(std::move(Image), EOpts);
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    if (Edited.hasValue())
      Corpus.push_back(Edited.value().serialize());
  }
  return Corpus;
}

int main(int Argc, char **Argv) {
  FuzzOptions Options;
  Options.MutantsPerImage = 2500;
  bool Json = false;
  std::vector<std::string> ImagePaths;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--json")) {
      Json = true;
    } else if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc) {
      Options.Seed = std::strtoull(Argv[++I], nullptr, 0);
    } else if (!std::strcmp(Argv[I], "--mutants") && I + 1 < Argc) {
      Options.MutantsPerImage =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 0));
    } else if (!std::strcmp(Argv[I], "--image") && I + 1 < Argc) {
      ImagePaths.push_back(Argv[++I]);
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--json] [--seed N] [--mutants N] [--image FILE]...\n",
          Argv[0]);
      return 1;
    }
  }

  std::vector<std::vector<uint8_t>> Corpus;
  std::vector<std::string> CorpusNames;
  if (ImagePaths.empty()) {
    Corpus = generatedCorpus();
    for (size_t I = 0; I < Corpus.size(); ++I)
      CorpusNames.push_back("<generated corpus " + std::to_string(I) + ">");
  } else {
    for (const std::string &Path : ImagePaths) {
      // Validate through the same front door tools use; report structured
      // errors instead of dying.
      Expected<std::unique_ptr<Executable>> Exec = Executable::open(Path);
      if (Exec.hasError()) {
        std::fprintf(stderr, "skipping %s: %s\n", Path.c_str(),
                     Exec.error().describe().c_str());
        continue;
      }
      Corpus.push_back(Exec.value()->image().serialize());
      CorpusNames.push_back(Path);
    }
  }
  if (Corpus.empty()) {
    std::fprintf(stderr, "no usable corpus images\n");
    return 1;
  }

  FuzzReport Report = runFaultInjection(Corpus, Options);

  if (Json) {
    RunReport Run("sxf-fuzz");
    for (size_t I = 0; I < Corpus.size(); ++I)
      Run.addInput(CorpusNames[I], fnv1a64(Corpus[I].data(), Corpus[I].size()),
                   Corpus[I].size());
    Run.addOption("seed", Options.Seed);
    Run.addOption("mutants_per_image", uint64_t(Options.MutantsPerImage));
    DiagnosticReport Diags;
    Diags.noteChecks(Report.Total);
    for (const FuzzFailure &F : Report.Failures)
      Diags.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
                "image " + std::to_string(F.ImageIndex) + " mutant " +
                    std::to_string(F.MutantIndex) + ": " + F.What);
    Run.captureDiagnostics(Diags);
    Run.captureMetrics();
    JsonWriter S(/*Indent=*/false);
    S.beginObject();
    S.key("mutants");
    S.value(uint64_t(Report.Total));
    S.key("round_tripped");
    S.value(uint64_t(Report.RoundTripped));
    S.key("verified");
    S.value(uint64_t(Report.Verified));
    S.key("rejected");
    S.value(uint64_t(Report.Rejected));
    S.key("error_histogram");
    S.beginObject();
    for (const auto &[Name, Count] : Report.ErrorHistogram) {
      S.key(Name);
      S.value(uint64_t(Count));
    }
    S.endObject();
    S.endObject();
    Run.setSummaryJson(S.take());
    std::printf("%s\n", Run.renderJson().c_str());
    return Report.clean() ? 0 : 1;
  }

  std::printf("sxf-fuzz: seed=%llu images=%zu mutants=%u\n",
              static_cast<unsigned long long>(Options.Seed), Corpus.size(),
              Report.Total);
  std::printf("  round-tripped identically: %u\n", Report.RoundTripped);
  std::printf("  passed the structural verifier: %u\n", Report.Verified);
  std::printf("  rejected with structured error: %u\n", Report.Rejected);
  for (const auto &[Name, Count] : Report.ErrorHistogram)
    std::printf("    %-20s %u\n", Name.c_str(), Count);
  if (!Report.clean()) {
    std::printf("  CONTRACT VIOLATIONS: %zu\n", Report.Failures.size());
    for (const FuzzFailure &F : Report.Failures)
      std::printf("    image %zu mutant %u: %s\n", F.ImageIndex,
                  F.MutantIndex, F.What.c_str());
    return 1;
  }
  std::printf("  loader contract held for every mutant\n");
  return 0;
}
