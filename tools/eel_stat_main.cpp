//===- tools/eel_stat_main.cpp - eel-serve scrape client ------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-stat: the operator's view of a running eel-serve daemon. Connects
/// to the daemon's local socket, sends one control-plane ELSt frame per
/// poll (serve/Protocol.h), and renders the snapshot — it never performs
/// an edit and never consumes an in-flight slot, so it works against a
/// saturated daemon.
///
///   eel-stat --socket PATH [options]
///     --json           print the raw eel-report/1 JSON snapshot
///     --prometheus     print the raw Prometheus text exposition
///     --exemplars N    include up to N slow-request exemplars (0 = all;
///                      implies the JSON snapshot carries them)
///     --watch SECS     repeat every SECS seconds, printing the cumulative
///                      view plus per-interval deltas, until the daemon
///                      goes away
///     --out FILE       write the snapshot body to FILE instead of stdout
///
/// The default (no format flag) is a human one-screen summary parsed out
/// of the JSON snapshot. Exit status: 0 on success, 1 when the daemon
/// answers but the snapshot is an error or fails to parse, 2 on usage or
/// connection errors.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace eel;

namespace {

struct StatConfig {
  std::string SocketPath;
  std::string OutPath;
  StatusFormat Format = StatusFormat::Json;
  bool Raw = false; ///< --json/--prometheus: print the body verbatim.
  bool WantExemplars = false;
  uint32_t MaxExemplars = 0;
  unsigned WatchSecs = 0;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--json | --prometheus] "
               "[--exemplars N] [--watch SECS] [--out FILE]\n",
               Argv0);
  return 2;
}

bool readFull(int Fd, uint8_t *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R <= 0)
      return false;
    Got += static_cast<size_t>(R);
  }
  return true;
}

bool writeFull(int Fd, const uint8_t *Buf, size_t N) {
  size_t Put = 0;
  while (Put < N) {
    ssize_t W = ::write(Fd, Buf + Put, N - Put);
    if (W <= 0)
      return false;
    Put += static_cast<size_t>(W);
  }
  return true;
}

/// Snapshot bodies are text; anything bigger than this is not a status
/// response from a daemon we know.
constexpr uint32_t MaxFrameBytes = 64u << 20;

bool readFrame(int Fd, std::vector<uint8_t> &Payload) {
  uint8_t Hdr[4];
  if (!readFull(Fd, Hdr, 4))
    return false;
  uint32_t Len = static_cast<uint32_t>(Hdr[0]) |
                 (static_cast<uint32_t>(Hdr[1]) << 8) |
                 (static_cast<uint32_t>(Hdr[2]) << 16) |
                 (static_cast<uint32_t>(Hdr[3]) << 24);
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || readFull(Fd, Payload.data(), Len);
}

bool writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  uint8_t Hdr[4] = {static_cast<uint8_t>(Len), static_cast<uint8_t>(Len >> 8),
                    static_cast<uint8_t>(Len >> 16),
                    static_cast<uint8_t>(Len >> 24)};
  if (!writeFull(Fd, Hdr, 4))
    return false;
  return Payload.empty() || writeFull(Fd, Payload.data(), Payload.size());
}

/// One scrape over a fresh connection. Returns 0/1/2 like the tool's exit
/// status; on 0 the decoded response is in \p Resp.
int scrapeOnce(const StatConfig &Config, StatusResponse &Resp) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("eel-stat: socket");
    return 2;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    ::close(Fd);
    return 2;
  }
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "error: cannot connect to '%s': %s\n",
                 Config.SocketPath.c_str(), std::strerror(errno));
    ::close(Fd);
    return 2;
  }

  StatusRequest Req;
  Req.Format = Config.Format;
  Req.WantExemplars = Config.WantExemplars;
  Req.MaxExemplars = Config.MaxExemplars;
  std::vector<uint8_t> Payload;
  if (!writeFrame(Fd, encodeStatusRequest(Req)) || !readFrame(Fd, Payload)) {
    std::fprintf(stderr, "error: daemon closed the connection mid-scrape\n");
    ::close(Fd);
    return 2;
  }
  ::close(Fd);

  Expected<StatusResponse> Decoded = decodeStatusResponse(Payload);
  if (Decoded.hasError()) {
    std::fprintf(stderr, "error: bad status response: %s\n",
                 Decoded.error().describe().c_str());
    return 1;
  }
  Resp = std::move(Decoded.value());
  if (Resp.Status != ServeStatus::Ok) {
    std::fprintf(stderr, "error: daemon answered with an error envelope:\n%s\n",
                 Resp.Body.c_str());
    return 1;
  }
  return 0;
}

uint64_t numField(const JsonValue *Obj, const char *Key) {
  if (!Obj)
    return 0;
  const JsonValue *V = Obj->find(Key);
  return V ? static_cast<uint64_t>(V->asNumber()) : 0;
}

const JsonValue *histByName(const JsonValue *Hists, const char *Name) {
  if (!Hists || !Hists->isArray())
    return nullptr;
  for (const JsonValue &H : Hists->Arr) {
    const JsonValue *N = H.find("name");
    if (N && N->Str == Name)
      return &H;
  }
  return nullptr;
}

/// The cumulative counters a --watch delta is computed over.
struct Sample {
  uint64_t Requests = 0;
  uint64_t Ok = 0;
  uint64_t Rejected = 0;
  uint64_t Errors = 0;
  bool Valid = false;
};

/// Renders the one-screen human view from the parsed snapshot's summary.
/// Returns the cumulative sample for delta computation.
Sample renderHuman(const JsonValue &Summary, const StatConfig &Config,
                   const Sample &Prev) {
  const JsonValue *Counters = Summary.find("counters");
  const JsonValue *CacheV = Summary.find("cache");
  const JsonValue *PoolV = Summary.find("pool");
  const JsonValue *SlowV = Summary.find("slow");
  const JsonValue *Hists = Summary.find("histograms");

  Sample Now;
  Now.Requests = numField(Counters, "requests");
  Now.Ok = numField(Counters, "ok");
  Now.Rejected = numField(Counters, "rejected");
  Now.Errors = numField(Counters, "errors");
  Now.Valid = true;

  double UpSecs = numField(&Summary, "uptime_ms") / 1000.0;
  std::printf("eel-serve @ %s — up %.1f s\n", Config.SocketPath.c_str(),
              UpSecs);
  std::printf("requests  %llu total: %llu ok, %llu rejected, %llu errors; "
              "%llu in flight, %llu scrapes\n",
              (unsigned long long)Now.Requests, (unsigned long long)Now.Ok,
              (unsigned long long)Now.Rejected, (unsigned long long)Now.Errors,
              (unsigned long long)numField(&Summary, "in_flight"),
              (unsigned long long)numField(Counters, "status_requests"));
  if (Prev.Valid && Config.WatchSecs)
    std::printf("   +%llu requests (+%llu ok, +%llu rejected, +%llu errors) "
                "in the last %u s\n",
                (unsigned long long)(Now.Requests - Prev.Requests),
                (unsigned long long)(Now.Ok - Prev.Ok),
                (unsigned long long)(Now.Rejected - Prev.Rejected),
                (unsigned long long)(Now.Errors - Prev.Errors),
                Config.WatchSecs);
  if (CacheV) {
    const JsonValue *Rate = CacheV->find("hit_rate_pct");
    std::printf("cache     %llu entries, %llu bytes, %.1f%% hit "
                "(%llu hits / %llu misses / %llu evictions)\n",
                (unsigned long long)numField(CacheV, "entries"),
                (unsigned long long)numField(CacheV, "bytes"),
                Rate ? Rate->asNumber() : 0.0,
                (unsigned long long)numField(CacheV, "hits"),
                (unsigned long long)numField(CacheV, "misses"),
                (unsigned long long)numField(CacheV, "evictions"));
  }
  if (PoolV)
    std::printf("pool      %llu workers, %llu pending (queue capacity %llu)\n",
                (unsigned long long)numField(PoolV, "workers"),
                (unsigned long long)numField(PoolV, "pending"),
                (unsigned long long)numField(PoolV, "queue_capacity"));
  if (const JsonValue *Lat = histByName(Hists, "serve.latency_us"))
    std::printf("latency   p50 %.0f us, p99 %.0f us over %llu ok requests "
                "(min %llu, max %llu)\n",
                numField(Lat, "p50") ? Lat->find("p50")->asNumber() : 0.0,
                numField(Lat, "p99") ? Lat->find("p99")->asNumber() : 0.0,
                (unsigned long long)numField(Lat, "count"),
                (unsigned long long)numField(Lat, "min"),
                (unsigned long long)numField(Lat, "max"));
  if (const JsonValue *Scrape = histByName(Hists, "serve.scrape_us"))
    std::printf("scrape    p99 %.0f us over %llu scrapes\n",
                numField(Scrape, "p99") ? Scrape->find("p99")->asNumber()
                                        : 0.0,
                (unsigned long long)numField(Scrape, "count"));
  if (SlowV) {
    uint64_t Threshold = numField(SlowV, "threshold_us");
    if (Threshold)
      std::printf("slow      threshold %llu us, %llu captured (ring of %llu)\n",
                  (unsigned long long)Threshold,
                  (unsigned long long)numField(SlowV, "captured"),
                  (unsigned long long)numField(SlowV, "capacity"));
    else
      std::printf("slow      capture off (--slow-ms 0)\n");
    const JsonValue *Ex = SlowV->find("exemplars");
    if (Ex && Ex->isArray())
      for (const JsonValue &E : Ex->Arr)
        std::printf("  exemplar request_id=%llu latency=%llu us tool=%s%s\n",
                    (unsigned long long)numField(&E, "request_id"),
                    (unsigned long long)numField(&E, "latency_us"),
                    E.find("tool") ? E.find("tool")->Str.c_str() : "?",
                    E.find("cache_hit") && E.find("cache_hit")->B
                        ? " (cache hit)"
                        : "");
  }
  return Now;
}

int writeOut(const StatConfig &Config, const std::string &Body) {
  if (Config.OutPath.empty()) {
    std::fputs(Body.c_str(), stdout);
    if (!Body.empty() && Body.back() != '\n')
      std::fputc('\n', stdout);
    return 0;
  }
  FILE *F = std::fopen(Config.OutPath.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Config.OutPath.c_str());
    return 2;
  }
  std::fwrite(Body.data(), 1, Body.size(), F);
  std::fclose(F);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  StatConfig Config;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto NeedValue = [&](const char *&Out) {
      if (I + 1 >= argc)
        return false;
      Out = argv[++I];
      return true;
    };
    const char *Value = nullptr;
    if (!std::strcmp(Arg, "--socket") && NeedValue(Value)) {
      Config.SocketPath = Value;
    } else if (!std::strcmp(Arg, "--json")) {
      Config.Format = StatusFormat::Json;
      Config.Raw = true;
    } else if (!std::strcmp(Arg, "--prometheus")) {
      Config.Format = StatusFormat::Prometheus;
      Config.Raw = true;
    } else if (!std::strcmp(Arg, "--exemplars") && NeedValue(Value)) {
      Config.WantExemplars = true;
      Config.MaxExemplars = static_cast<uint32_t>(std::atoll(Value));
    } else if (!std::strcmp(Arg, "--watch") && NeedValue(Value)) {
      Config.WatchSecs = static_cast<unsigned>(std::atoi(Value));
      if (Config.WatchSecs == 0)
        return usage(argv[0]);
    } else if (!std::strcmp(Arg, "--out") && NeedValue(Value)) {
      Config.OutPath = Value;
    } else {
      return usage(argv[0]);
    }
  }
  if (Config.SocketPath.empty())
    return usage(argv[0]);
  if (Config.Raw && Config.Format == StatusFormat::Prometheus &&
      Config.WantExemplars) {
    std::fprintf(stderr, "error: --exemplars requires the JSON snapshot\n");
    return 2;
  }

  Sample Prev;
  while (true) {
    StatusResponse Resp;
    if (int Rc = scrapeOnce(Config, Resp)) {
      // Under --watch the daemon going away is the normal end of the
      // session, not a failure of the last good scrape.
      return Config.WatchSecs && Prev.Valid ? 0 : Rc;
    }
    if (Config.Raw) {
      if (int Rc = writeOut(Config, Resp.Body))
        return Rc;
      Prev.Valid = true;
    } else {
      Expected<JsonValue> Doc = parseJson(Resp.Body);
      if (Doc.hasError()) {
        std::fprintf(stderr, "error: snapshot does not parse: %s\n",
                     Doc.error().describe().c_str());
        return 1;
      }
      const JsonValue *Summary = Doc.value().find("summary");
      if (!Summary) {
        std::fprintf(stderr, "error: snapshot has no summary\n");
        return 1;
      }
      Prev = renderHuman(*Summary, Config, Prev);
    }
    if (!Config.WatchSecs)
      return 0;
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(Config.WatchSecs));
  }
}
