//===- tools/eel_report_main.cpp - Pipeline run reports -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-report: runs the full edit pipeline over an SXF image with tracing
/// enabled and emits a provenance-carrying run report — input image hash,
/// options, phase-timing tree, counter/histogram tables, and the full
/// five-pass verifier findings — as one "eel-report/1" JSON document.
///
///   eel-report [options] [image.sxf]
///     --out FILE        write the report there instead of stdout
///     --trace FILE      also export the span timeline as Chrome
///                       trace-event JSON (loadable in Perfetto)
///     --prometheus FILE also export counters/histograms in the
///                       Prometheus text exposition format
///     --threads N       worker threads (0 = auto)
///     --no-verify       skip the five-pass verification of the output
///     With no image argument, a deterministic generated workload is used:
///     --arch srisc|mrisc|arisc  --seed N  --routines N  shape it.
///
/// Exit status: 0 on success (even with verifier findings — the report
/// carries them), 1 when verification found errors, 2 on load/usage
/// failures.
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "analysis/Verifier.h"
#include "core/Executable.h"
#include "support/FileIO.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "workload/Generator.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace eel;

namespace {

struct ReportConfig {
  std::string ImagePath;
  std::string OutPath;
  std::string TracePath;
  std::string PrometheusPath;
  unsigned Threads = 0;
  bool Verify = true;
  TargetArch Arch = TargetArch::Srisc;
  uint64_t Seed = 1;
  unsigned Routines = 24;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--out FILE] [--trace FILE] [--prometheus FILE] "
               "[--threads N] [--no-verify] [--arch srisc|mrisc|arisc] [--seed N] "
               "[--routines N] [image.sxf]\n",
               Argv0);
  return 2;
}

bool writeOrPrint(const std::string &Path, const std::string &Text) {
  if (Path.empty()) {
    std::printf("%s\n", Text.c_str());
    return true;
  }
  Expected<bool> Wrote = writeFileBytes(
      Path, std::vector<uint8_t>(Text.begin(), Text.end()));
  if (Wrote.hasError()) {
    std::fprintf(stderr, "error: %s\n", Wrote.error().describe().c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ReportConfig Config;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto NeedValue = [&](const char *&Out) {
      if (I + 1 >= argc)
        return false;
      Out = argv[++I];
      return true;
    };
    const char *Value = nullptr;
    if (!std::strcmp(Arg, "--out") && NeedValue(Value)) {
      Config.OutPath = Value;
    } else if (!std::strcmp(Arg, "--trace") && NeedValue(Value)) {
      Config.TracePath = Value;
    } else if (!std::strcmp(Arg, "--prometheus") && NeedValue(Value)) {
      Config.PrometheusPath = Value;
    } else if (!std::strcmp(Arg, "--threads") && NeedValue(Value)) {
      Config.Threads = static_cast<unsigned>(std::atoi(Value));
    } else if (!std::strcmp(Arg, "--no-verify")) {
      Config.Verify = false;
    } else if (!std::strcmp(Arg, "--arch") && NeedValue(Value)) {
      if (!std::strcmp(Value, "srisc"))
        Config.Arch = TargetArch::Srisc;
      else if (!std::strcmp(Value, "mrisc"))
        Config.Arch = TargetArch::Mrisc;
      else if (!std::strcmp(Value, "arisc"))
        Config.Arch = TargetArch::Arisc;
      else
        return usage(argv[0]);
    } else if (!std::strcmp(Arg, "--seed") && NeedValue(Value)) {
      Config.Seed = static_cast<uint64_t>(std::atoll(Value));
    } else if (!std::strcmp(Arg, "--routines") && NeedValue(Value)) {
      Config.Routines = static_cast<unsigned>(std::atoi(Value));
    } else if (Arg[0] == '-') {
      return usage(argv[0]);
    } else if (Config.ImagePath.empty()) {
      Config.ImagePath = Arg;
    } else {
      return usage(argv[0]);
    }
  }

  // --- Acquire the input image ---------------------------------------------
  SxfFile Image;
  std::string InputName;
  if (!Config.ImagePath.empty()) {
    Expected<SxfFile> Loaded = SxfFile::readFromFile(Config.ImagePath);
    if (Loaded.hasError()) {
      std::fprintf(stderr, "error: %s\n", Loaded.error().describe().c_str());
      return 2;
    }
    Image = Loaded.takeValue();
    InputName = Config.ImagePath;
  } else {
    WorkloadOptions WOpts;
    WOpts.Seed = Config.Seed;
    WOpts.Routines = Config.Routines;
    WOpts.SwitchPercent = 35;
    WOpts.TailCallPercent = 10;
    WOpts.SymbolPathologies = true;
    Image = generateWorkload(Config.Arch, WOpts);
    InputName = "<generated seed=" + std::to_string(Config.Seed) +
                " routines=" + std::to_string(Config.Routines) + ">";
  }
  std::vector<uint8_t> ImageBytes = Image.serialize();
  uint64_t ImageHash = fnv1a64(ImageBytes.data(), ImageBytes.size());

  // --- Run the pipeline traced ------------------------------------------------
  // Fresh registries so the report covers exactly this run.
  StatRegistry::instance().resetAll();
  HistogramRegistry::instance().resetAll();
  TraceCollector::instance().reset();

  Executable::Options EOpts;
  EOpts.Threads = Config.Threads;
  EOpts.Trace = true;
  Expected<std::unique_ptr<Executable>> Opened =
      Executable::openImage(std::move(Image), EOpts);
  if (Opened.hasError()) {
    std::fprintf(stderr, "error: %s\n", Opened.error().describe().c_str());
    return 2;
  }
  Executable &Exec = *Opened.value();
  Expected<bool> Read = Exec.readContents();
  if (Read.hasError()) {
    std::fprintf(stderr, "error: %s\n", Read.error().describe().c_str());
    return 2;
  }
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError()) {
    std::fprintf(stderr, "error: edit failed: %s\n",
                 Edited.error().describe().c_str());
    return 2;
  }

  DiagnosticReport Findings;
  if (Config.Verify) {
    VerifyOptions VOpts; // default: all five passes
    VOpts.Threads = Config.Threads;
    Findings = verifyEdit(Exec, Edited.value(), VOpts);
  }
  traceSetEnabled(false);

  // --- Assemble the report -----------------------------------------------------
  RunReport Report("eel-report");
  Report.addInput(InputName, ImageHash, ImageBytes.size());
  // Full provenance: image content hash + what edited it and how. The
  // eel-report pipeline applies no tool edits, so the tool digest is the
  // digest of the empty spec.
  Report.setProvenance(ImageHash, fnv1a64(std::string_view("")),
                       optionsDigest(EOpts));
  Report.addOption("threads", uint64_t(Config.Threads));
  Report.addOption("effective_threads", uint64_t(Exec.effectiveThreads()));
  Report.addOption("verify", Config.Verify);
  Report.addOption("rewrite_data_pointers", EOpts.RewriteDataPointers);
  Report.addOption("runtime_translation", EOpts.EnableRuntimeTranslation);
  Report.captureMetrics();
  std::vector<TraceEvent> Spans = TraceCollector::instance().drain();
  Report.capturePhases(Spans);
  Report.captureDiagnostics(Findings);
  {
    const Executable::EditStats &ES = Exec.editStats();
    JsonWriter S(/*Indent=*/false);
    S.beginObject();
    S.key("routines_edited");
    S.value(uint64_t(ES.RoutinesEdited));
    S.key("routines_verbatim");
    S.value(uint64_t(ES.RoutinesVerbatim));
    S.key("translation_sites");
    S.value(uint64_t(ES.TranslationSites));
    S.key("delay_slots_folded");
    S.value(uint64_t(ES.DelaySlotsFolded));
    S.key("spans_recorded");
    S.value(uint64_t(Spans.size()));
    S.endObject();
    Report.setSummaryJson(S.take());
  }

  if (!writeOrPrint(Config.OutPath, Report.renderJson()))
    return 2;
  if (!Config.TracePath.empty() &&
      !writeOrPrint(Config.TracePath, renderChromeTrace(Spans)))
    return 2;
  if (!Config.PrometheusPath.empty() &&
      !writeOrPrint(Config.PrometheusPath,
                    metricsPrometheus(StatRegistry::instance().snapshot(),
                                      HistogramRegistry::instance().snapshot())))
    return 2;
  return Findings.hasErrors() ? 1 : 0;
}
