//===- tools/json_check_main.cpp - JSON document validator ---------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// json-check: validates that each argument file (or stdin with no
/// arguments) is one well-formed JSON document, using the strict parser in
/// support/Json.h. Backs the `make reports` target, so malformed output
/// from quickstart/eel-report fails the build without any external JSON
/// dependency.
///
///   json-check [--require-key KEY] file.json...
///
/// --require-key additionally demands a top-level object member named KEY
/// in every file (e.g. --require-key schema for eel-report documents).
///
/// Exit status: 0 when every document parses (and has the required key),
/// 1 otherwise.
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace eel;

static bool checkOne(const std::string &Name, const std::string &Text,
                     const std::string &RequiredKey) {
  Expected<JsonValue> Parsed = parseJson(Text);
  if (Parsed.hasError()) {
    std::fprintf(stderr, "json-check: %s: %s\n", Name.c_str(),
                 Parsed.error().describe().c_str());
    return false;
  }
  if (!RequiredKey.empty() && !Parsed.value().find(RequiredKey)) {
    std::fprintf(stderr,
                 "json-check: %s: missing required top-level key \"%s\"\n",
                 Name.c_str(), RequiredKey.c_str());
    return false;
  }
  return true;
}

int main(int argc, char **argv) {
  std::string RequiredKey;
  std::vector<std::string> Paths;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--require-key") && I + 1 < argc) {
      RequiredKey = argv[++I];
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "usage: %s [--require-key KEY] file.json...\n",
                   argv[0]);
      return 1;
    } else {
      Paths.push_back(argv[I]);
    }
  }

  bool AllGood = true;
  if (Paths.empty()) {
    std::string Text;
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), stdin)) > 0)
      Text.append(Buf, N);
    AllGood = checkOne("<stdin>", Text, RequiredKey);
  }
  for (const std::string &Path : Paths) {
    Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
    if (Bytes.hasError()) {
      std::fprintf(stderr, "json-check: %s\n",
                   Bytes.error().describe().c_str());
      AllGood = false;
      continue;
    }
    AllGood &= checkOne(
        Path, std::string(Bytes.value().begin(), Bytes.value().end()),
        RequiredKey);
  }
  return AllGood ? 0 : 1;
}
