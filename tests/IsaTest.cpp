//===- tests/IsaTest.cpp - Handwritten target backend tests ---------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "isa/MriscEncoding.h"
#include "isa/SriscEncoding.h"
#include "isa/Target.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace eel;

// --- SRISC -------------------------------------------------------------------

TEST(SriscEncode, FieldRoundTrip) {
  using namespace srisc;
  MachWord W = encodeArithImm(Op3Add, 17, 3, -42);
  EXPECT_EQ(fieldOp(W), uint32_t(OpArith));
  EXPECT_EQ(fieldRd(W), 17u);
  EXPECT_EQ(fieldOp3(W), uint32_t(Op3Add));
  EXPECT_EQ(fieldRs1(W), 3u);
  EXPECT_EQ(fieldI(W), 1u);
  EXPECT_EQ(fieldSimm13(W), -42);

  W = encodeBicc(true, CondNE, -100);
  EXPECT_EQ(fieldAnnul(W), 1u);
  EXPECT_EQ(fieldCond(W), uint32_t(CondNE));
  EXPECT_EQ(fieldDisp22(W), -100);
}

TEST(SriscTarget, Classification) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  EXPECT_EQ(T.classify(encodeArithReg(Op3Add, 1, 2, 3)),
            InstCategory::Computation);
  EXPECT_EQ(T.classify(encodeSethi(5, 123)), InstCategory::Computation);
  EXPECT_EQ(T.classify(encodeBicc(false, CondNE, 4)),
            InstCategory::BranchDirect);
  EXPECT_EQ(T.classify(encodeBicc(false, CondA, 4)), InstCategory::JumpDirect);
  EXPECT_EQ(T.classify(encodeBicc(false, CondN, 4)),
            InstCategory::Computation);
  EXPECT_EQ(T.classify(encodeBicc(true, CondN, 4)), InstCategory::JumpDirect);
  EXPECT_EQ(T.classify(encodeCall(16)), InstCategory::CallDirect);
  EXPECT_EQ(T.classify(encodeJmplImm(0, 15, 8)), InstCategory::IndirectJump);
  EXPECT_EQ(T.classify(encodeSys(1)), InstCategory::System);
  EXPECT_EQ(T.classify(encodeMemImm(Op3Ld, 1, 14, 4)), InstCategory::Load);
  EXPECT_EQ(T.classify(encodeMemImm(Op3St, 1, 14, 4)), InstCategory::Store);
  EXPECT_EQ(T.classify(0), InstCategory::Invalid);
  EXPECT_EQ(T.classify(0xFFFFFFFFu), InstCategory::Invalid);
}

TEST(SriscTarget, ReadsWrites) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  // add %o1, %o2, %o3: reads {9, 10}, writes {11}.
  MachWord Add = encodeArithReg(Op3Add, 11, 9, 10);
  EXPECT_EQ(T.reads(Add), (RegSet{9, 10}));
  EXPECT_EQ(T.writes(Add), (RegSet{11}));
  // subcc also writes CC.
  MachWord SubCC = encodeArithImm(Op3SubCC, 0, 9, 5);
  EXPECT_EQ(T.reads(SubCC), (RegSet{9}));
  EXPECT_EQ(T.writes(SubCC), (RegSet{RegIdCC}));
  // Conditional branches read CC; ba does not.
  EXPECT_EQ(T.reads(encodeBicc(false, CondNE, 1)), (RegSet{RegIdCC}));
  EXPECT_EQ(T.reads(encodeBicc(false, CondA, 1)), RegSet{});
  // call writes the link register.
  EXPECT_EQ(T.writes(encodeCall(4)), (RegSet{15}));
  // Stores read the data register; the hard zero never appears.
  MachWord St = encodeMemImm(Op3St, 7, 14, -8);
  EXPECT_EQ(T.reads(St), (RegSet{7, 14}));
  EXPECT_EQ(T.writes(St), RegSet{});
  MachWord LdZero = encodeMemReg(Op3Ld, 0, 0, 0);
  EXPECT_EQ(T.reads(LdZero), RegSet{});
  EXPECT_EQ(T.writes(LdZero), RegSet{});
  // Traps use the convention registers.
  EXPECT_EQ(T.reads(encodeSys(1)), (RegSet{8, 9, 10}));
  EXPECT_EQ(T.writes(encodeSys(1)), (RegSet{8}));
}

TEST(SriscTarget, DelayAndAnnul) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  EXPECT_EQ(T.delayBehavior(encodeBicc(false, CondNE, 1)),
            DelayBehavior::Always);
  EXPECT_EQ(T.delayBehavior(encodeBicc(true, CondNE, 1)),
            DelayBehavior::AnnulUntaken);
  EXPECT_EQ(T.delayBehavior(encodeBicc(true, CondA, 1)),
            DelayBehavior::AnnulAlways);
  EXPECT_EQ(T.delayBehavior(encodeBicc(false, CondA, 1)),
            DelayBehavior::Always);
  EXPECT_EQ(T.delayBehavior(encodeCall(1)), DelayBehavior::Always);
  EXPECT_EQ(T.delayBehavior(encodeJmplImm(0, 15, 8)), DelayBehavior::Always);
  EXPECT_EQ(T.delayBehavior(encodeArithReg(Op3Add, 1, 2, 3)),
            DelayBehavior::None);
  EXPECT_TRUE(T.isConditional(encodeBicc(false, CondNE, 1)));
  EXPECT_FALSE(T.isConditional(encodeBicc(false, CondA, 1)));
}

TEST(SriscTarget, DirectTargets) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  Addr PC = 0x10000;
  EXPECT_EQ(T.directTarget(encodeBicc(false, CondNE, 5), PC),
            std::optional<Addr>(PC + 20));
  EXPECT_EQ(T.directTarget(encodeBicc(false, CondNE, -5), PC),
            std::optional<Addr>(PC - 20));
  EXPECT_EQ(T.directTarget(encodeCall(100), PC),
            std::optional<Addr>(PC + 400));
  EXPECT_EQ(T.directTarget(encodeBicc(true, CondN, 0), PC),
            std::optional<Addr>(PC + 8));
  EXPECT_EQ(T.directTarget(encodeArithReg(Op3Add, 1, 2, 3), PC),
            std::nullopt);
}

TEST(SriscTarget, RetargetDirect) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  MachWord Br = encodeBicc(false, CondG, 5);
  std::optional<MachWord> New = T.retargetDirect(Br, 0x20000, 0x20040);
  ASSERT_TRUE(New.has_value());
  EXPECT_EQ(T.directTarget(*New, 0x20000), std::optional<Addr>(0x20040));
  EXPECT_EQ(T.classify(*New), InstCategory::BranchDirect);
  // Out-of-range displacement is rejected.
  EXPECT_FALSE(T.retargetDirect(Br, 0, 0x4000000).has_value());
}

TEST(SriscTarget, IndirectAndMemShapes) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  auto Ind = T.indirectTarget(encodeJmplImm(15, 9, 4));
  ASSERT_TRUE(Ind.has_value());
  EXPECT_EQ(Ind->BaseReg, 9u);
  EXPECT_EQ(Ind->Offset, 4);
  EXPECT_FALSE(Ind->HasIndex);
  EXPECT_EQ(Ind->LinkReg, 15u);

  auto M = T.memOp(encodeMemImm(Op3Ldsh, 5, 14, -2));
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->IsLoad);
  EXPECT_EQ(M->Width, 2u);
  EXPECT_TRUE(M->SignExtendLoad);
  EXPECT_EQ(M->AddrBase, 14u);
  EXPECT_EQ(M->Offset, -2);
  EXPECT_EQ(M->DataReg, 5u);
}

TEST(SriscTarget, DataOps) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  DataOp Op = T.dataOp(encodeSethi(3, 0x123));
  EXPECT_EQ(Op.Kind, DataOpKind::LoadImmHi);
  EXPECT_EQ(Op.Rd, 3u);
  EXPECT_EQ(Op.Imm, int32_t(0x123 << 10));

  Op = T.dataOp(encodeArithImm(Op3Sll, 4, 5, 2));
  EXPECT_EQ(Op.Kind, DataOpKind::Sll);
  EXPECT_TRUE(Op.HasImm);
  EXPECT_EQ(Op.Imm, 2);
  EXPECT_FALSE(Op.SetsCC);

  Op = T.dataOp(encodeArithImm(Op3SubCC, 0, 5, 7));
  EXPECT_EQ(Op.Kind, DataOpKind::Sub);
  EXPECT_TRUE(Op.SetsCC);

  EXPECT_EQ(T.dataOp(encodeJmplImm(0, 15, 8)).Kind, DataOpKind::None);
  EXPECT_EQ(T.dataOp(encodeMemImm(Op3Ld, 1, 2, 0)).Kind, DataOpKind::None);
}

TEST(SriscTarget, RewriteRegisters) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  auto Swap12 = [](unsigned R) -> unsigned {
    return R == 1 ? 2 : R == 2 ? 1 : R;
  };
  MachWord Add = encodeArithReg(Op3Add, 1, 2, 3);
  auto New = T.rewriteRegisters(Add, Swap12);
  ASSERT_TRUE(New.has_value());
  EXPECT_EQ(fieldRd(*New), 2u);
  EXPECT_EQ(fieldRs1(*New), 1u);
  EXPECT_EQ(fieldRs2(*New), 3u);
  // A call's implicit link register cannot be renamed.
  auto MoveLink = [](unsigned R) -> unsigned { return R == 15 ? 16 : R; };
  EXPECT_FALSE(T.rewriteRegisters(encodeCall(4), MoveLink).has_value());
  EXPECT_TRUE(T.rewriteRegisters(encodeCall(4), Swap12).has_value());
}

TEST(SriscTarget, CodegenHelpers) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  std::vector<MachWord> Out;
  T.emitLoadConst(9, 0x123456, Out);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(T.classify(Out[0]), InstCategory::Computation);
  Out.clear();
  T.emitLoadConst(9, 100, Out); // fits simm13: single instruction
  EXPECT_EQ(Out.size(), 1u);
  Out.clear();
  EXPECT_TRUE(T.emitJump(0x10000, 0x10100, Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(T.directTarget(Out[0], 0x10000), std::optional<Addr>(0x10100));
  EXPECT_EQ(Out[1], T.nopWord());
}

TEST(SriscCond, EvalMatrix) {
  using namespace srisc;
  // subcc 3, 5: N=1 V=0 C=1(borrow) Z=0.
  uint32_t CC = ccForSub(3, 5);
  EXPECT_TRUE(evalCond(CondL, CC));   // 3 < 5 signed
  EXPECT_TRUE(evalCond(CondLE, CC));
  EXPECT_FALSE(evalCond(CondG, CC));
  EXPECT_FALSE(evalCond(CondGE, CC));
  EXPECT_TRUE(evalCond(CondCS, CC));  // 3 < 5 unsigned
  EXPECT_TRUE(evalCond(CondNE, CC));
  // subcc 5, 5: Z=1.
  CC = ccForSub(5, 5);
  EXPECT_TRUE(evalCond(CondE, CC));
  EXPECT_TRUE(evalCond(CondLE, CC));
  EXPECT_TRUE(evalCond(CondGE, CC));
  EXPECT_FALSE(evalCond(CondL, CC));
  // Signed overflow: INT_MAX - (-1).
  CC = ccForSub(0x7FFFFFFFu, 0xFFFFFFFFu);
  EXPECT_TRUE(evalCond(CondVS, CC));
  EXPECT_TRUE(evalCond(CondG, CC)); // INT_MAX > -1
  // Always/never.
  EXPECT_TRUE(evalCond(CondA, 0));
  EXPECT_FALSE(evalCond(CondN, 0xF));
}

// --- MRISC -------------------------------------------------------------------

TEST(MriscTarget, Classification) {
  using namespace mrisc;
  const TargetInfo &T = mriscTarget();
  EXPECT_EQ(T.classify(encodeRType(1, 2, 3, 0, FnAdd)),
            InstCategory::Computation);
  EXPECT_EQ(T.classify(encodeRType(31, 0, 0, 0, FnJr)),
            InstCategory::IndirectJump);
  EXPECT_EQ(T.classify(encodeRType(8, 0, 31, 0, FnJalr)),
            InstCategory::IndirectJump);
  EXPECT_EQ(T.classify(encodeRType(0, 0, 0, 0, FnSyscall)),
            InstCategory::System);
  EXPECT_EQ(T.classify(encodeJType(OpJ, 0x100)), InstCategory::JumpDirect);
  EXPECT_EQ(T.classify(encodeJType(OpJal, 0x100)), InstCategory::CallDirect);
  EXPECT_EQ(T.classify(encodeIType(OpBeq, 1, 2, 4)),
            InstCategory::BranchDirect);
  EXPECT_EQ(T.classify(encodeIType(OpLw, 29, 8, 4)), InstCategory::Load);
  EXPECT_EQ(T.classify(encodeIType(OpSw, 29, 8, 4)), InstCategory::Store);
  // nop (all zeros) is sll r0, r0, 0: a valid computation, as on MIPS.
  EXPECT_EQ(T.classify(0), InstCategory::Computation);
  // R-type with a junk funct is invalid.
  EXPECT_EQ(T.classify(encodeRType(0, 0, 0, 0, 0x3F)), InstCategory::Invalid);
  // blez with rt != 0 is invalid.
  EXPECT_EQ(T.classify(encodeIType(OpBlez, 3, 1, 4)), InstCategory::Invalid);
}

TEST(MriscTarget, ReadsWrites) {
  using namespace mrisc;
  const TargetInfo &T = mriscTarget();
  MachWord Add = encodeRType(9, 10, 11, 0, FnAdd);
  EXPECT_EQ(T.reads(Add), (RegSet{9, 10}));
  EXPECT_EQ(T.writes(Add), (RegSet{11}));
  MachWord Jal = encodeJType(OpJal, 0x400);
  EXPECT_EQ(T.writes(Jal), (RegSet{31}));
  MachWord Sw = encodeIType(OpSw, 29, 8, 16);
  EXPECT_EQ(T.reads(Sw), (RegSet{29, 8}));
  EXPECT_EQ(T.writes(Sw), RegSet{});
  MachWord Syscall = encodeRType(0, 0, 0, 0, FnSyscall);
  EXPECT_EQ(T.reads(Syscall), (RegSet{2, 4, 5, 6}));
  EXPECT_EQ(T.writes(Syscall), (RegSet{2}));
}

TEST(MriscTarget, BranchTargetsRelativeToDelaySlot) {
  using namespace mrisc;
  const TargetInfo &T = mriscTarget();
  Addr PC = 0x10000;
  MachWord Beq = encodeIType(OpBeq, 1, 2, 4);
  EXPECT_EQ(T.directTarget(Beq, PC), std::optional<Addr>(PC + 4 + 16));
  MachWord J = encodeJType(OpJ, 0x5000 >> 2);
  EXPECT_EQ(T.directTarget(J, PC), std::optional<Addr>(0x5000));
  auto Re = T.retargetDirect(Beq, 0x20000, 0x20010);
  ASSERT_TRUE(Re.has_value());
  EXPECT_EQ(T.directTarget(*Re, 0x20000), std::optional<Addr>(0x20010));
  auto ReJ = T.retargetDirect(J, 0x20000, 0x300000);
  ASSERT_TRUE(ReJ.has_value());
  EXPECT_EQ(T.directTarget(*ReJ, 0x20000), std::optional<Addr>(0x300000));
}

TEST(MriscTarget, NoAnnulment) {
  using namespace mrisc;
  const TargetInfo &T = mriscTarget();
  EXPECT_EQ(T.delayBehavior(encodeIType(OpBeq, 1, 2, 4)),
            DelayBehavior::Always);
  EXPECT_EQ(T.delayBehavior(encodeJType(OpJ, 4)), DelayBehavior::Always);
  EXPECT_EQ(T.delayBehavior(encodeRType(31, 0, 0, 0, FnJr)),
            DelayBehavior::Always);
  EXPECT_FALSE(T.hasConditionCodes());
}

TEST(MriscTarget, DataOps) {
  using namespace mrisc;
  const TargetInfo &T = mriscTarget();
  DataOp Op = T.dataOp(encodeIType(OpLui, 0, 5, 0x1234));
  EXPECT_EQ(Op.Kind, DataOpKind::LoadImmHi);
  EXPECT_EQ(Op.Imm, int32_t(0x12340000));
  Op = T.dataOp(encodeIType(OpAddi, 3, 4, 0xFFFC)); // addi $4, $3, -4
  EXPECT_EQ(Op.Kind, DataOpKind::Add);
  EXPECT_EQ(Op.Rd, 4u);
  EXPECT_EQ(Op.Rs1, 3u);
  EXPECT_TRUE(Op.HasImm);
  EXPECT_EQ(Op.Imm, -4);
  Op = T.dataOp(encodeRType(0, 7, 8, 2, FnSll)); // sll $8, $7, 2
  EXPECT_EQ(Op.Kind, DataOpKind::Sll);
  EXPECT_EQ(Op.Rs1, 7u);
  EXPECT_EQ(Op.Imm, 2);
}

// --- Cross-target disassembly smoke test --------------------------------------

TEST(Disassemble, ProducesText) {
  using namespace srisc;
  const TargetInfo &S = sriscTarget();
  EXPECT_EQ(S.disassemble(nop(), 0), "nop");
  EXPECT_EQ(S.disassemble(encodeArithReg(Op3Add, 11, 9, 10), 0),
            "add %o1, %o2, %o3");
  EXPECT_EQ(S.disassemble(encodeJmplImm(0, 15, 8), 0), "jmpl %o7+8, %g0");
  const TargetInfo &M = mriscTarget();
  EXPECT_EQ(M.disassemble(0, 0), "nop");
  EXPECT_EQ(M.disassemble(mrisc::encodeRType(9, 10, 11, 0, mrisc::FnAdd), 0),
            "add $t3, $t1, $t2");
}

// --- Property sweep: decode totality ------------------------------------------

/// Every 32-bit word must classify without crashing, and reads/writes must
/// never contain the hard-zero register.
TEST(TargetProperty, DecodeTotality) {
  Rng R(99);
  for (TargetArch Arch : AllTargetArches) {
    const TargetInfo &T = targetFor(Arch);
    for (int I = 0; I < 20000; ++I) {
      MachWord W = static_cast<MachWord>(R.next());
      InstCategory Cat = T.classify(W);
      RegSet Reads = T.reads(W);
      RegSet Writes = T.writes(W);
      EXPECT_FALSE(Reads.contains(0));
      EXPECT_FALSE(Writes.contains(0));
      if (Cat == InstCategory::IndirectJump) {
        EXPECT_TRUE(T.indirectTarget(W).has_value());
      }
      if (Cat == InstCategory::Load || Cat == InstCategory::Store) {
        EXPECT_TRUE(T.memOp(W).has_value());
      }
      T.disassemble(W, 0x10000); // must not crash
    }
  }
}
