//===- tests/AriscCoreTest.cpp - delay-slot-free core regressions -----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for the SPARC-isms the ARISC port flushed out of the
/// machine-independent core. ARISC has no delay slots, so every site that
/// silently assumed "a transfer occupies eight bytes" or "a delay-slot
/// block hangs off every transfer edge" is pinned here, one test per fixed
/// site:
///
///  * CfgBuild — branch fallthrough and call continuation at A+4, taken
///    edges direct to their destination, dispatch case edges hanging off
///    the jump block itself, and no DelaySlot blocks anywhere;
///  * SymbolRefine — stripped-binary reachability past a call at A+4;
///  * Layout — edited branches/calls/returns re-emitted without slot
///    words, checked end-to-end by behaviour;
///  * Translate — the $t14/$at run-time translation protocol;
///  * VerifyPasses — the flipped invariant: a delay-slot block on a
///    delay-slot-free machine is now the *error*.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "asmkit/Assembler.h"
#include "core/Executable.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace eel;

namespace {

Executable makeExec(const std::string &Source) {
  return Executable(assembleOrDie(TargetArch::Arisc, Source));
}

unsigned countBlocks(const Cfg *G, BlockKind K) {
  unsigned N = 0;
  for (const auto &B : G->blocks())
    if (B->kind() == K)
      ++N;
  return N;
}

/// No block in any routine of \p Exec may be a DelaySlot block: the
/// machine has no delay slots, so growing one is a builder bug.
void expectNoDelayBlocks(Executable &Exec) {
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (!G)
      continue;
    EXPECT_EQ(countBlocks(G, BlockKind::DelaySlot), 0u)
        << "routine " << R->name() << " grew a delay-slot block";
  }
}

} // namespace

// --- CfgBuild: fallthrough/continuation at A+4, direct edges -----------------

// Regression for CfgBuild::discover/connectBlock assuming the branch
// fallthrough starts at A+8 (past a delay slot that does not exist here).
TEST(AriscCfg, BranchFallthroughAtNextWord) {
  Executable Exec = makeExec(R"(
.text
main:
  li $a0, 1
  beq $a0, $zero, .Ldone
  addi $a0, $a0, 1
.Ldone:
  sys 0
  ret
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_TRUE(G->complete());
  expectNoDelayBlocks(Exec);

  Addr BranchAddr = Exec.textBase() + 4;
  BasicBlock *BranchBlock = G->blockAt(Exec.textBase());
  ASSERT_NE(BranchBlock, nullptr);
  ASSERT_EQ(BranchBlock->succ().size(), 2u);
  const Edge *Taken = nullptr, *NotTaken = nullptr;
  for (const Edge *E : BranchBlock->succ()) {
    if (E->kind() == EdgeKind::Taken)
      Taken = E;
    if (E->kind() == EdgeKind::NotTaken)
      NotTaken = E;
  }
  ASSERT_NE(Taken, nullptr);
  ASSERT_NE(NotTaken, nullptr);
  // The taken edge lands on the destination block directly.
  EXPECT_EQ(Taken->dst()->kind(), BlockKind::Normal);
  EXPECT_EQ(Taken->dst()->anchor(), BranchAddr + 8); // .Ldone
  // The fallthrough begins at the very next word, not at A+8.
  EXPECT_EQ(NotTaken->dst()->kind(), BlockKind::Normal);
  EXPECT_EQ(NotTaken->dst()->anchor(), BranchAddr + 4);
}

// Regression for the call path: the surrogate hangs directly off the call
// block and the continuation starts at A+4.
TEST(AriscCfg, CallSurrogateDirect) {
  Executable Exec = makeExec(R"(
.text
main:
  bsr f
  li $a0, 0
  sys 0
  ret
f:
  ret
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_TRUE(G->complete());
  expectNoDelayBlocks(Exec);
  EXPECT_EQ(countBlocks(G, BlockKind::CallSurrogate), 1u);

  BasicBlock *CallBlock = G->blockAt(Exec.textBase());
  ASSERT_NE(CallBlock, nullptr);
  ASSERT_EQ(CallBlock->succ().size(), 1u);
  const Edge *ToSurrogate = CallBlock->succ()[0];
  ASSERT_EQ(ToSurrogate->dst()->kind(), BlockKind::CallSurrogate);
  EXPECT_TRUE(ToSurrogate->dst()->empty());
  Routine *F = Exec.findRoutine("f");
  EXPECT_EQ(ToSurrogate->dst()->callTarget(),
            std::optional<Addr>(F->startAddr()));
  // The continuation block is the instruction after the call, not A+8.
  ASSERT_EQ(ToSurrogate->dst()->succ().size(), 1u);
  EXPECT_EQ(ToSurrogate->dst()->succ()[0]->dst()->anchor(),
            Exec.textBase() + 4);
}

// Regression for the indirect-jump path: case edges hang off the jump
// block itself (on delay-slot machines they transit a shared delay block),
// and the CfgWellFormed arity rule accepts that shape.
TEST(AriscCfg, DispatchCaseEdgesOffJumpBlock) {
  Executable Exec = makeExec(R"(
.text
main:
  li $a0, 1
  andi $t0, $a0, 3
  cmplti $at, $t0, 4
  beq $at, $zero, .Ldef
  slli $t1, $t0, 2
  ldih $t2, %hi(table)
  ori $t2, $t2, %lo(table)
  add $t2, $t2, $t1
  ldw $t3, 0($t2)
  jmp ($t3)
.Lc0:
  li $a0, 10
  sys 0
.Lc1:
  li $a0, 20
  sys 0
.Lc2:
  li $a0, 30
  sys 0
.Lc3:
  li $a0, 40
  sys 0
.Ldef:
  li $a0, 99
  sys 0
  ret
.data
.align 4
table: .word .Lc0, .Lc1, .Lc2, .Lc3
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_TRUE(G->complete());
  expectNoDelayBlocks(Exec);
  ASSERT_EQ(G->indirectSites().size(), 1u);
  const IndirectSite &Site = G->indirectSites()[0];
  EXPECT_EQ(Site.Resolution.K, IndirectResolution::Kind::DispatchTable);
  EXPECT_EQ(Site.Resolution.EntryCount, 4u);
  EXPECT_TRUE(Site.Resolution.BoundsProven);

  BasicBlock *JumpBlock = Site.Block;
  ASSERT_NE(JumpBlock, nullptr);
  ASSERT_EQ(JumpBlock->succ().size(), 4u);
  for (const Edge *E : JumpBlock->succ()) {
    EXPECT_EQ(E->kind(), EdgeKind::SwitchCase);
    EXPECT_NE(E->dst()->kind(), BlockKind::DelaySlot);
  }
}

// --- SymbolRefine: stripped-binary scan past a call at A+4 -------------------

// Regression for scanReachable() skipping A+8 past every call: on ARISC
// that would treat the word after the continuation as the resume point and
// misplace the routine boundary in a stripped binary.
TEST(AriscRefine, StrippedCallContinuation) {
  SxfFile File = assembleOrDie(TargetArch::Arisc, R"(
.text
main:
  bsr f
  li $a0, 0
  sys 0
  ret
f:
  ret
)");
  File.strip();
  Executable Exec((SxfFile(File)));
  Exec.readContents();
  ASSERT_EQ(Exec.routines().size(), 2u);
  // main is exactly four words: bsr, li, sys, ret.
  EXPECT_EQ(Exec.routines()[0]->endAddr(),
            Exec.routines()[0]->startAddr() + 16);
  EXPECT_EQ(Exec.routines()[1]->startAddr(),
            Exec.routines()[0]->endAddr());
}

// --- Layout: no slot words in re-emitted transfers ---------------------------

// Regression for lowerBranch/lowerCall/lowerReturn emitting origWordAt(A+4)
// after every transfer. Instrument a branch-heavy loop so every block
// moves, then require identical behaviour and an exact dynamic count.
TEST(AriscEdit, EditedLoopBehavesIdentically) {
  Executable Exec = makeExec(R"(
.text
main:
  li $t0, 0
  li $t1, 1
.Lloop:
  add $t0, $t0, $t1
  addi $t1, $t1, 1
  cmplti $at, $t1, 11
  bne $at, $zero, .Lloop
  move $a0, $t0
  sys 0
  ret
.data
.align 4
counter: .word 0
)");
  RunResult Original = runToCompletion(Exec.image());
  ASSERT_EQ(Original.Reason, StopReason::Exited);
  ASSERT_EQ(Original.ExitCode, 55);

  Exec.readContents();
  Addr CounterAddr = Exec.image().findSymbol("counter")->Value;
  const TargetInfo &T = Exec.target();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  BasicBlock *LoopBlock = G->blockAt(Exec.textBase() + 8);
  ASSERT_NE(LoopBlock, nullptr);
  std::vector<MachWord> Body;
  T.emitLoadConst(1, CounterAddr, Body);
  T.emitLoadWord(2, 1, 0, Body);
  T.emitAddImm(2, 2, 1, Body);
  T.emitStoreWord(2, 1, 0, Body);
  G->addCodeBefore(LoopBlock, 0,
                   std::make_shared<CodeSnippet>(Body, RegSet{1, 2}));

  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue())
      << (Edited.hasError() ? Edited.error().describe() : "");
  Machine M(Edited.value());
  RunResult After = M.run();
  EXPECT_EQ(After.Reason, StopReason::Exited);
  EXPECT_EQ(After.ExitCode, 55);
  EXPECT_EQ(M.memory().readWord(CounterAddr), 10u); // loop body ran 10x

  DiagnosticReport Report = verifyEdit(Exec, Edited.value(), {});
  EXPECT_EQ(Report.errorCount(), 0u) << Report.renderText();
}

// --- Translate: the $t14/$at translation protocol ----------------------------

// Regression for emitTranslationSite/translatorAsm: an unanalyzable
// cell-pointer tail call must survive editing via run-time translation —
// the site loads the target into $t14 and jumps through $at without a
// delay word.
TEST(AriscEdit, RunTimeTranslationPreservesTailCall) {
  Executable Exec = makeExec(R"(
.text
main:
  addi $sp, $sp, -32
  stw $ra, 4($sp)
  bsr compute
  ldw $ra, 4($sp)
  addi $sp, $sp, 32
  move $a0, $v0
  sys 0
  ret
compute:
  ldih $t0, %hi(fptr)
  ori $t0, $t0, %lo(fptr)
  ldw $t1, 0($t0)
  jmp ($t1)
target:
  li $v0, 7
  ret
.data
.align 4
fptr: .word target
)");
  RunResult Original = runToCompletion(Exec.image());
  ASSERT_EQ(Original.Reason, StopReason::Exited);
  ASSERT_EQ(Original.ExitCode, 7);

  Exec.readContents();
  Routine *Compute = Exec.findRoutine("compute");
  ASSERT_NE(Compute, nullptr);
  Cfg *G = Compute->controlFlowGraph();
  EXPECT_FALSE(G->complete());
  EXPECT_FALSE(G->unsupported()); // editable via translation
  ASSERT_EQ(G->indirectSites().size(), 1u);
  EXPECT_EQ(G->indirectSites()[0].Resolution.K,
            IndirectResolution::Kind::CellPointer);

  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue())
      << (Edited.hasError() ? Edited.error().describe() : "");
  RunResult After = runToCompletion(Edited.value());
  EXPECT_EQ(After.Reason, StopReason::Exited);
  EXPECT_EQ(After.ExitCode, 7);
}

// --- VerifyPasses: the invariant flips on a delay-slot-free machine ----------

// Regression for checkDelaySlotsIR demanding a delay block after every
// transfer: on ARISC the pass must accept delay-free shapes (and the
// other direction — flagging a grown delay block — is exercised by the
// pass on every CFG above).
TEST(AriscVerify, LintAcceptsDelayFreePrograms) {
  SxfFile Image = assembleOrDie(TargetArch::Arisc, R"(
.text
main:
  li $t0, 3
.Lloop:
  addi $t0, $t0, -1
  blt $zero, $t0, .Lloop
  bsr f
  li $a0, 0
  sys 0
  ret
f:
  ret
)");
  DiagnosticReport Report = lintImage(Image);
  EXPECT_FALSE(Report.hasErrors()) << Report.renderText();
  EXPECT_GT(Report.checksRun(), 0u);
}
