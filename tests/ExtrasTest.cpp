//===- tests/ExtrasTest.cpp - Codegen, translator, regalloc, callgraph ------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deeper unit coverage for modules exercised mostly indirectly elsewhere:
/// the spawn code generator's output is genuinely compilable C++ (checked
/// by invoking the host compiler), the run-time translator assembles on
/// both targets and preserves registers, the snippet register allocator's
/// contract details (forbidden sets, callback ordering, spill symmetry),
/// and call-graph construction over indirect edges.
///
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "core/CallGraph.h"
#include "core/Executable.h"
#include "core/RegAlloc.h"
#include "core/Translate.h"
#include "isa/SriscEncoding.h"
#include "spawn/Codegen.h"
#include "spawn/SpawnTarget.h"
#include "support/FileIO.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace eel;

// --- Spawn-generated C++ is real C++ ---------------------------------------------

namespace {

/// Prelude supplying the runtime helpers the generated code calls, as the
/// real spawn's support library did.
const char *CodegenPrelude = R"(
#include <cstdint>
#include <cstdio>
template <class S> inline void write_reg(S &s, uint32_t r, uint32_t v) {
  if (r) s.R[r % 32] = v;
}
template <class S> inline void do_trap(S &, uint32_t) {}
template <class S> inline uint32_t mem_read8(S &, uint32_t) { return 0; }
template <class S> inline uint32_t mem_read16(S &, uint32_t) { return 0; }
template <class S> inline uint32_t mem_read32(S &, uint32_t) { return 0; }
template <class S> inline uint32_t mem_read8_sx(S &, uint32_t) { return 0; }
template <class S> inline uint32_t mem_read16_sx(S &, uint32_t) { return 0; }
template <class S> inline void mem_write8(S &, uint32_t, uint32_t) {}
template <class S> inline void mem_write16(S &, uint32_t, uint32_t) {}
template <class S> inline void mem_write32(S &, uint32_t, uint32_t) {}
#define DEF_FN(n) \
  inline uint32_t rtl_fn_##n(uint32_t a = 0, uint32_t b = 0) { \
    (void)a; (void)b; return 0; }
DEF_FN(0) DEF_FN(1) DEF_FN(2) DEF_FN(3) DEF_FN(4) DEF_FN(5) DEF_FN(6)
DEF_FN(7) DEF_FN(8) DEF_FN(9) DEF_FN(10) DEF_FN(11) DEF_FN(12) DEF_FN(13)
DEF_FN(14) DEF_FN(15) DEF_FN(16) DEF_FN(17) DEF_FN(18) DEF_FN(19) DEF_FN(20)
DEF_FN(21) DEF_FN(22) DEF_FN(23) DEF_FN(24) DEF_FN(25) DEF_FN(26) DEF_FN(27)
DEF_FN(28) DEF_FN(29) DEF_FN(30) DEF_FN(31) DEF_FN(32) DEF_FN(33) DEF_FN(34)
DEF_FN(35) DEF_FN(36) DEF_FN(37) DEF_FN(38) DEF_FN(39)
)";

bool hostCompilerAvailable() {
  return std::system("c++ --version > /dev/null 2>&1") == 0;
}

} // namespace

TEST(SpawnCodegenCompile, GeneratedSourceCompiles) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler available";
  for (TargetArch Arch : AllTargetArches) {
    std::string Source = CodegenPrelude;
    Source += spawn::generateCppSource(spawn::spawnTargetFor(Arch).desc());
    std::string Path = testing::TempDir() + "/eel_spawn_gen_" +
                       std::to_string(static_cast<int>(Arch)) + ".cpp";
    ASSERT_TRUE(writeFileBytes(Path, std::vector<uint8_t>(Source.begin(),
                                                          Source.end()))
                    .hasValue());
    std::string Cmd =
        "c++ -std=c++17 -fsyntax-only -Wall -Werror=return-type " + Path +
        " 2> " + Path + ".log";
    int Status = std::system(Cmd.c_str());
    EXPECT_EQ(Status, 0) << "generated source failed to compile; see "
                         << Path << ".log";
  }
}

// --- Translator ---------------------------------------------------------------------

TEST(Translator, AssemblesOnBothTargets) {
  for (TargetArch Arch : AllTargetArches) {
    std::string Asm =
        translatorAsm(targetFor(Arch), /*TableAddr=*/0x500000,
                      /*EntryCount=*/17);
    Expected<SxfFile> Assembled =
        assembleProgram(Arch, Asm, AsmOptions{0x40000, 0x7F000000});
    ASSERT_TRUE(Assembled.hasValue()) << Assembled.error().message();
    const SxfSegment *Text = Assembled.value().segment(SegKind::Text);
    EXPECT_GT(Text->Bytes.size(), 20u * 4u);
  }
}

TEST(Translator, SiteRejectsProtocolConflicts) {
  // A delay-slot instruction that uses the protocol registers cannot be
  // relocated into the translation sequence.
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  auto Jump = makeInstruction(T, 0x81C28000u /* jmpl %o2+%g0? */);
  // Build a well-formed jmpl %o2+0, %g0 instead of a magic constant.
  auto JumpInst = makeInstruction(T, [&] {
    std::vector<MachWord> W;
    T.emitIndirectJump(10, W);
    return W[0];
  }());
  const auto *Ind = dyn_cast<IndirectInst>(JumpInst.get());
  ASSERT_NE(Ind, nullptr);
  std::vector<MachWord> Code;
  std::vector<Reloc> Relocs;
  // Delay uses %g1 (protocol register): rejected.
  std::vector<MachWord> Bad;
  T.emitAddImm(1, 1, 4, Bad);
  EXPECT_TRUE(
      emitTranslationSite(T, *Ind, Bad[0], Code, Relocs).hasError());
  // A nop delay is fine and produces the hi/lo translator relocations.
  Code.clear();
  Relocs.clear();
  EXPECT_TRUE(emitTranslationSite(T, *Ind, T.nopWord(), Code, Relocs)
                  .hasValue());
  unsigned HiLo = 0;
  for (const Reloc &R : Relocs)
    if (R.K == Reloc::Kind::TranslatorHi || R.K == Reloc::Kind::TranslatorLo)
      ++HiLo;
  EXPECT_EQ(HiLo, 2u);
  (void)Jump;
}

// --- Register allocator contract -------------------------------------------------------

TEST(RegAllocUnit, ForbiddenRegistersNeverAssigned) {
  const TargetInfo &T = sriscTarget();
  std::vector<MachWord> Body;
  T.emitLoadConst(1, 0x400000, Body);
  RegSet Forbidden;
  for (unsigned Reg = 1; Reg < 16; ++Reg)
    Forbidden.insert(Reg);
  CodeSnippet Snip(Body, RegSet{1}, Forbidden);
  RegSet Live; // everything dead
  Expected<SnippetInstance> Inst = instantiateSnippet(T, Snip, Live);
  ASSERT_TRUE(Inst.hasValue()) << Inst.error().message();
  EXPECT_GE(Inst.value().RegMap[1], 16u);
}

TEST(RegAllocUnit, SpillsWrapSymmetrically) {
  const TargetInfo &T = sriscTarget();
  std::vector<MachWord> Body;
  T.emitLoadConst(1, 0x400000, Body);
  T.emitLoadWord(2, 1, 0, Body);
  CodeSnippet Snip(Body, RegSet{1, 2});
  // Every candidate register live: both placeholders must spill.
  RegSet Live;
  for (unsigned Reg = 1; Reg < 32; ++Reg)
    Live.insert(Reg);
  Expected<SnippetInstance> Inst = instantiateSnippet(T, Snip, Live);
  ASSERT_TRUE(Inst.hasValue()) << Inst.error().message();
  EXPECT_EQ(Inst.value().SpillCount, 2u);
  // Prologue stores + body + epilogue loads.
  EXPECT_EQ(Inst.value().Words.size(), Body.size() + 4);
  EXPECT_EQ(Inst.value().BodyBegin, 2u);
}

TEST(RegAllocUnit, ImpossibleDemandFails) {
  const TargetInfo &T = sriscTarget();
  std::vector<MachWord> Body;
  T.emitLoadConst(1, 0x400000, Body);
  RegSet Forbidden;
  for (unsigned Reg = 1; Reg < 32; ++Reg)
    Forbidden.insert(Reg);
  CodeSnippet Snip(Body, RegSet{1}, Forbidden);
  EXPECT_TRUE(instantiateSnippet(T, Snip, RegSet()).hasError());
}

TEST(RegAllocUnit, CCSaveOnlyWhenLive) {
  const TargetInfo &T = sriscTarget();
  std::vector<MachWord> Body;
  using namespace srisc;
  Body.push_back(encodeArithImm(Op3AddCC, 1, 1, 1));
  auto Make = [&](bool CCLive) {
    CodeSnippet Snip(Body, RegSet{1});
    Snip.setClobbersCC(true);
    RegSet Live;
    if (CCLive)
      Live.insert(RegIdCC);
    return instantiateSnippet(T, Snip, Live);
  };
  Expected<SnippetInstance> Dead = Make(false);
  ASSERT_TRUE(Dead.hasValue());
  EXPECT_FALSE(Dead.value().SavedCC);
  Expected<SnippetInstance> LiveCC = Make(true);
  ASSERT_TRUE(LiveCC.hasValue());
  EXPECT_TRUE(LiveCC.value().SavedCC);
  EXPECT_EQ(LiveCC.value().Words.size(), Dead.value().Words.size() + 2);
}

// --- Call graph over indirect edges --------------------------------------------------------

TEST(CallGraphUnit, IndirectCellEdges) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  add %sp, -96, %sp
  st %o7, [%sp + 4]
  call middle
  nop
  set fptr, %o1
  ld [%o1 + 0], %o2
  jmpl %o2 + 0, %o7
  nop
  ld [%sp + 4], %o7
  add %sp, 96, %sp
  mov 0, %o0
  sys 0
  ret
  nop
middle:
  ret
  nop
leafy:
  ret
  mov 3, %o0
.data
.align 4
fptr: .word leafy
)"));
  CallGraph CG = CallGraph::build(Exec);
  Routine *Main = Exec.findRoutine("main");
  const CallGraph::Node *N = CG.node(Main);
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->DirectCallSites, 1u);
  EXPECT_EQ(N->IndirectCallSites, 1u);
  EXPECT_EQ(N->ResolvedIndirectSites, 1u);
  ASSERT_EQ(N->Callees.size(), 2u);
  EXPECT_EQ(N->Callees[0]->name(), "middle");
  EXPECT_EQ(N->Callees[1]->name(), "leafy");
  // Roots: main only (middle and leafy have callers).
  std::vector<Routine *> Roots = CG.roots();
  ASSERT_EQ(Roots.size(), 1u);
  EXPECT_EQ(Roots[0], Main);
}

// --- Edge parent back-pointer ----------------------------------------------------------------

TEST(CfgApi, EdgeParentAndAddCodeAlong) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  cmp %o0, 0
  be .Lx
  nop
  mov 1, %o1
.Lx:
  sys 0
  ret
  nop
)"));
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  for (const auto &E : G->edges())
    EXPECT_EQ(E->parent(), G);
}

// --- Relocation information (§3.1 footnote / §2 OM comparison) -------------------

TEST(Relocations, AssemblerEmitsThem) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  sethi %hi(cell), %o1
  ld [%o1 + %lo(cell)], %o2
  call main
  nop
  sys 0
  ret
  nop
.data
.align 4
cell: .word main
)");
  unsigned Word32 = 0, Hi = 0, Lo = 0, PcRel = 0;
  for (const SxfReloc &R : File.Relocs) {
    switch (R.Kind) {
    case RelocKind::Word32: ++Word32; break;
    case RelocKind::Hi: ++Hi; break;
    case RelocKind::Lo: ++Lo; break;
    case RelocKind::PcRel: ++PcRel; break;
    }
  }
  EXPECT_EQ(Word32, 1u); // cell: .word main
  EXPECT_EQ(Hi, 1u);
  EXPECT_EQ(Lo, 1u);
  EXPECT_EQ(PcRel, 1u); // call main
  // Round-trips through serialization.
  Expected<SxfFile> Back = SxfFile::deserialize(File.serialize());
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back.value().Relocs.size(), File.Relocs.size());
}

TEST(Relocations, PreciseRewritingAvoidsIntegerCollision) {
  // `decoy` holds a plain integer whose value happens to equal a code
  // address. The heuristic data sweep (the only option for fully linked
  // programs without relocations, as the paper notes) cannot tell it from
  // a function pointer and corrupts it; relocation information rewrites
  // only real pointers. This is exactly the §2 trade-off between EEL and
  // relocation-based systems like OM.
  const char *Source = R"(
.text
main:
  set fptr, %o1
  ld [%o1 + 0], %o2
  jmpl %o2 + 0, %o7      ! a real function pointer: must be rewritten
  nop
  set decoy, %o3
  ld [%o3 + 0], %o0      ! the decoy integer: must NOT be rewritten
  sys 0
  ret
  nop
callee:
  ret
  mov 5, %o0
.data
.align 4
fptr:  .word callee
decoy: .word 65544       ! == 0x10008, a valid instruction address
)";
  SxfFile WithRelocs = assembleOrDie(TargetArch::Srisc, Source);
  ASSERT_FALSE(WithRelocs.Relocs.empty());
  RunResult Original = runToCompletion(WithRelocs);
  EXPECT_EQ(Original.ExitCode, 65544);

  // With relocations: both correct.
  {
    Executable Exec((SxfFile(WithRelocs)));
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue());
    RunResult R = runToCompletion(Edited.value());
    EXPECT_EQ(R.ExitCode, 65544); // decoy preserved
  }

  // Without relocations (the paper's setting): the function pointer is
  // still found by the sweep — and the decoy is, unavoidably, mangled.
  {
    SxfFile Stripped = WithRelocs;
    Stripped.stripRelocations();
    Executable Exec(std::move(Stripped));
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue());
    RunResult R = runToCompletion(Edited.value());
    EXPECT_EQ(R.Reason, StopReason::Exited); // program still runs...
    EXPECT_NE(R.ExitCode, 65544);            // ...but the decoy moved
  }
}

TEST(Relocations, StrippedImagesStillEditCorrectly) {
  // The headline property survives without relocations: generated
  // workloads avoid integer/code-address collisions, so the heuristic
  // sweep suffices, as it did for the paper's SPEC programs.
  WorkloadOptions Opts;
  Opts.Seed = 77;
  Opts.TailCallPercent = 30;
  SxfFile File = generateWorkload(TargetArch::Srisc, Opts);
  RunResult Original = runToCompletion(File);
  File.stripRelocations();
  Executable Exec(std::move(File));
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  RunResult After = runToCompletion(Edited.value());
  EXPECT_EQ(After.Output, Original.Output);
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
}
