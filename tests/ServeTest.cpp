//===- tests/ServeTest.cpp - eel-serve service tests ----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edit service end to end: wire-protocol round-trips and hostile
/// frames, content-addressed cache hit/miss/eviction (including the
/// provenance rule that tool spec and options are part of the key),
/// admission-control rejections with structured envelopes, byte identity
/// of warm hits and of concurrent identical submissions, thread-count
/// determinism through the service, per-request metrics isolation, and
/// the Executable::resetEdits() mechanism that makes analysis reuse
/// sound.
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "core/Executable.h"
#include "serve/Protocol.h"
#include "serve/Serve.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "tools/Qpt.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

using namespace eel;

namespace {

std::vector<uint8_t> makeImage(uint64_t Seed, unsigned Routines = 10,
                               TargetArch Arch = TargetArch::Srisc) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.Routines = Routines;
  Opts.SwitchPercent = 30;
  return generateWorkload(Arch, Opts).serialize();
}

ServeRequest makeRequest(std::vector<uint8_t> Image,
                         const std::string &Tool = "null") {
  ServeRequest Req;
  Req.ToolSpec = Tool;
  Req.Threads = 1;
  Req.ImageBytes = std::move(Image);
  return Req;
}

/// Parses an envelope and returns the named field of its "summary" object.
const JsonValue *summaryField(const JsonValue &Doc, const std::string &Name) {
  const JsonValue *Summary = Doc.find("summary");
  return Summary ? Summary->find(Name) : nullptr;
}

JsonValue parseEnvelope(const ServeResponse &Resp) {
  Expected<JsonValue> Doc = parseJson(Resp.EnvelopeJson);
  EXPECT_TRUE(Doc.hasValue()) << Resp.EnvelopeJson;
  return Doc.hasValue() ? Doc.takeValue() : JsonValue();
}

} // namespace

// --- Protocol ---------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrip) {
  ServeRequest Req;
  Req.ToolSpec = "qpt:edges";
  Req.Threads = 4;
  Req.Verify = true;
  Req.WantMetrics = true;
  Req.ImageBytes = {1, 2, 3, 4, 5};
  Expected<ServeRequest> Back = decodeRequest(encodeRequest(Req));
  ASSERT_TRUE(Back.hasValue()) << Back.error().describe();
  EXPECT_EQ(Back.value().ToolSpec, "qpt:edges");
  EXPECT_EQ(Back.value().Threads, 4u);
  EXPECT_TRUE(Back.value().Verify);
  EXPECT_FALSE(Back.value().LegacyWriter);
  EXPECT_TRUE(Back.value().WantMetrics);
  EXPECT_EQ(Back.value().ImageBytes, Req.ImageBytes);
}

TEST(ServeProtocol, ResponseRoundTrip) {
  ServeResponse Resp;
  Resp.Status = ServeStatus::Rejected;
  Resp.EnvelopeJson = "{\"status\": \"rejected\"}";
  Expected<ServeResponse> Back = decodeResponse(encodeResponse(Resp));
  ASSERT_TRUE(Back.hasValue()) << Back.error().describe();
  EXPECT_EQ(Back.value().Status, ServeStatus::Rejected);
  EXPECT_EQ(Back.value().EnvelopeJson, Resp.EnvelopeJson);
  EXPECT_TRUE(Back.value().EditedImage.empty());
}

TEST(ServeProtocol, HostileFramesGetTaxonomyCodes) {
  ServeRequest Req = makeRequest({1, 2, 3});
  std::vector<uint8_t> Good = encodeRequest(Req);

  // Wrong magic.
  std::vector<uint8_t> BadMagicFrame = Good;
  BadMagicFrame[0] ^= 0xff;
  Expected<ServeRequest> R1 = decodeRequest(BadMagicFrame);
  ASSERT_TRUE(R1.hasError());
  EXPECT_EQ(R1.error().code(), ErrorCode::BadMagic);

  // Unknown version.
  std::vector<uint8_t> BadVersion = Good;
  BadVersion[4] = 99;
  Expected<ServeRequest> R2 = decodeRequest(BadVersion);
  ASSERT_TRUE(R2.hasError());
  EXPECT_EQ(R2.error().code(), ErrorCode::BadHeader);

  // Reserved flag bits.
  std::vector<uint8_t> BadFlags = Good;
  BadFlags[5] = 0x80;
  Expected<ServeRequest> R3 = decodeRequest(BadFlags);
  ASSERT_TRUE(R3.hasError());
  EXPECT_EQ(R3.error().code(), ErrorCode::BadHeader);

  // Truncation at every prefix length must produce Truncated or
  // ImplausibleCount, never a crash or acceptance.
  for (size_t Len = 0; Len < Good.size(); ++Len) {
    std::vector<uint8_t> Prefix(Good.begin(), Good.begin() + Len);
    Expected<ServeRequest> R = decodeRequest(Prefix);
    ASSERT_TRUE(R.hasError()) << "accepted truncated frame of " << Len;
    EXPECT_TRUE(R.error().code() == ErrorCode::Truncated ||
                R.error().code() == ErrorCode::ImplausibleCount)
        << errorCodeName(R.error().code()) << " at len " << Len;
  }

  // Trailing bytes after a well-formed request.
  std::vector<uint8_t> Trailing = Good;
  Trailing.push_back(0);
  Expected<ServeRequest> R4 = decodeRequest(Trailing);
  ASSERT_TRUE(R4.hasError());
  EXPECT_EQ(R4.error().code(), ErrorCode::TrailingBytes);

  // Hostile image length (exceeds remaining payload).
  std::vector<uint8_t> BadLen = Good;
  size_t LenOff = Good.size() - Req.ImageBytes.size() - 4;
  BadLen[LenOff] = 0xff;
  BadLen[LenOff + 1] = 0xff;
  BadLen[LenOff + 2] = 0xff;
  BadLen[LenOff + 3] = 0x7f;
  Expected<ServeRequest> R5 = decodeRequest(BadLen);
  ASSERT_TRUE(R5.hasError());
  EXPECT_EQ(R5.error().code(), ErrorCode::ImplausibleCount);
}

// --- resetEdits: the mechanism that makes analysis reuse sound --------------

TEST(ServeReset, ResetEditsMakesRepeatWritesByteIdentical) {
  WorkloadOptions WOpts;
  WOpts.Seed = 11;
  WOpts.Routines = 8;
  WOpts.SwitchPercent = 30;
  SxfFile Image = generateWorkload(TargetArch::Srisc, WOpts);

  Executable::Options EOpts;
  EOpts.Threads = 1;
  Expected<std::unique_ptr<Executable>> Opened =
      Executable::openImage(std::move(Image), EOpts);
  ASSERT_TRUE(Opened.hasValue());
  Executable &Exec = *Opened.value();
  ASSERT_TRUE(Exec.readContents().hasValue());

  std::vector<uint8_t> First;
  {
    Qpt2Profiler Qpt(Exec);
    Qpt.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue()) << Edited.error().describe();
    First = Edited.value().serialize();
  }
  Exec.resetEdits();
  {
    Qpt2Profiler Qpt(Exec);
    Qpt.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue()) << Edited.error().describe();
    EXPECT_EQ(Edited.value().serialize(), First);
  }
}

// --- Cache ------------------------------------------------------------------

TEST(ServeCache, HitMissEvictionAccounting) {
  ServeLimits Limits;
  Limits.CacheCapacity = 1;
  EditService Service(Limits);
  std::vector<uint8_t> Image1 = makeImage(1);
  std::vector<uint8_t> Image2 = makeImage(2);

  ServeResponse R1 = Service.handle(makeRequest(Image1));
  ASSERT_EQ(R1.Status, ServeStatus::Ok);
  JsonValue D1 = parseEnvelope(R1);
  ASSERT_NE(summaryField(D1, "cache_hit"), nullptr);
  EXPECT_FALSE(summaryField(D1, "cache_hit")->B);

  // Same image, same spec, same options: hit.
  ServeResponse R2 = Service.handle(makeRequest(Image1));
  ASSERT_EQ(R2.Status, ServeStatus::Ok);
  EXPECT_TRUE(summaryField(parseEnvelope(R2), "cache_hit")->B);
  EXPECT_EQ(R2.EditedImage, R1.EditedImage);

  // A different image evicts (capacity 1), then the first misses again.
  ASSERT_EQ(Service.handle(makeRequest(Image2)).Status, ServeStatus::Ok);
  ServeResponse R3 = Service.handle(makeRequest(Image1));
  ASSERT_EQ(R3.Status, ServeStatus::Ok);
  EXPECT_FALSE(summaryField(parseEnvelope(R3), "cache_hit")->B);
  EXPECT_EQ(R3.EditedImage, R1.EditedImage);

  AnalysisCache::Stats S = Service.cacheStats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_GE(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(ServeCache, DifferentToolSpecsMissEachOther) {
  // Satellite 2: the key is provenanceKey(image, tool, options), so the
  // same image under two tools must not share a cache entry — and the
  // outputs prove it (qpt instruments, null does not).
  EditService Service(ServeLimits{});
  std::vector<uint8_t> Image = makeImage(3);

  ServeResponse Null1 = Service.handle(makeRequest(Image, "null"));
  ASSERT_EQ(Null1.Status, ServeStatus::Ok);
  ServeResponse Qpt1 = Service.handle(makeRequest(Image, "qpt:all"));
  ASSERT_EQ(Qpt1.Status, ServeStatus::Ok);
  EXPECT_FALSE(summaryField(parseEnvelope(Qpt1), "cache_hit")->B);
  EXPECT_NE(Qpt1.EditedImage, Null1.EditedImage);

  AnalysisCache::Stats S = Service.cacheStats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Entries, 2u);

  // Each spec then hits its own entry and reproduces its own bytes.
  ServeResponse Null2 = Service.handle(makeRequest(Image, "null"));
  ServeResponse Qpt2 = Service.handle(makeRequest(Image, "qpt:all"));
  EXPECT_TRUE(summaryField(parseEnvelope(Null2), "cache_hit")->B);
  EXPECT_TRUE(summaryField(parseEnvelope(Qpt2), "cache_hit")->B);
  EXPECT_EQ(Null2.EditedImage, Null1.EditedImage);
  EXPECT_EQ(Qpt2.EditedImage, Qpt1.EditedImage);
}

TEST(ServeCache, DifferentOptionsMissEachOther) {
  EditService Service(ServeLimits{});
  std::vector<uint8_t> Image = makeImage(4);
  ServeRequest Plain = makeRequest(Image);
  ServeRequest Verified = makeRequest(Image);
  Verified.Verify = true;

  ASSERT_EQ(Service.handle(Plain).Status, ServeStatus::Ok);
  ServeResponse R = Service.handle(Verified);
  ASSERT_EQ(R.Status, ServeStatus::Ok);
  EXPECT_FALSE(summaryField(parseEnvelope(R), "cache_hit")->B);
  EXPECT_EQ(Service.cacheStats().Hits, 0u);
}

// A request carrying any supported architecture is served: the edited
// image comes back instrumented, verified, and behaving identically, and
// a resubmission hits the cache with the same bytes.
TEST(ServeCrossIsa, EveryArchitectureServed) {
  EditService Service(ServeLimits{});
  for (TargetArch Arch : AllTargetArches) {
    std::vector<uint8_t> Image = makeImage(33, 8, Arch);
    ServeRequest Req = makeRequest(Image, "qpt:edges");
    Req.Verify = true;
    ServeResponse R = Service.handle(Req);
    ASSERT_EQ(R.Status, ServeStatus::Ok)
        << "arch=" << static_cast<int>(Arch) << ": " << R.EnvelopeJson;
    ASSERT_FALSE(R.EditedImage.empty());

    Expected<SxfFile> Orig = SxfFile::deserialize(Image);
    Expected<SxfFile> Edit = SxfFile::deserialize(R.EditedImage);
    ASSERT_TRUE(Orig.hasValue());
    ASSERT_TRUE(Edit.hasValue());
    RunResult Before = runToCompletion(Orig.value());
    RunResult After = runToCompletion(Edit.value());
    EXPECT_EQ(Before.ExitCode, After.ExitCode);
    EXPECT_EQ(Before.Output, After.Output);

    ServeResponse Warm = Service.handle(Req);
    ASSERT_EQ(Warm.Status, ServeStatus::Ok);
    EXPECT_TRUE(summaryField(parseEnvelope(Warm), "cache_hit")->B);
    EXPECT_EQ(Warm.EditedImage, R.EditedImage);
  }
}

// --- Admission control ------------------------------------------------------

TEST(ServeAdmission, OversizedImageRejectedWithStructuredEnvelope) {
  ServeLimits Limits;
  Limits.MaxImageBytes = 64;
  EditService Service(Limits);
  ServeResponse R = Service.handle(makeRequest(makeImage(5)));
  ASSERT_EQ(R.Status, ServeStatus::Rejected);
  EXPECT_TRUE(R.EditedImage.empty());
  JsonValue Doc = parseEnvelope(R);
  ASSERT_NE(summaryField(Doc, "error_code"), nullptr);
  EXPECT_EQ(summaryField(Doc, "error_code")->Str, "image_too_large");
}

TEST(ServeAdmission, UnknownToolSpecRejected) {
  EditService Service(ServeLimits{});
  ServeResponse R = Service.handle(makeRequest(makeImage(5), "qpt:nope"));
  ASSERT_EQ(R.Status, ServeStatus::Rejected);
  EXPECT_EQ(summaryField(parseEnvelope(R), "error_code")->Str,
            "bad_tool_spec");
}

TEST(ServeAdmission, SaturationRejectsWithRetryableCode) {
  ServeLimits Limits;
  Limits.MaxInFlight = 1;
  EditService Service(Limits);
  // A large image keeps the admitted request in flight long enough for
  // the probe below to observe saturation; retry a few times in case the
  // blocker finishes early on a fast machine.
  std::vector<uint8_t> Big = makeImage(6, /*Routines=*/40);
  bool SawRejection = false;
  for (int Attempt = 0; Attempt < 3 && !SawRejection; ++Attempt) {
    std::atomic<bool> Started{false};
    std::thread Blocker([&] {
      Started.store(true, std::memory_order_release);
      ServeResponse R = Service.handle(makeRequest(Big));
      EXPECT_EQ(R.Status, ServeStatus::Ok);
    });
    while (!Started.load(std::memory_order_acquire))
      std::this_thread::yield();
    for (int Probe = 0; Probe < 200 && !SawRejection; ++Probe) {
      ServeResponse R = Service.handle(makeRequest(makeImage(7, 4)));
      if (R.Status == ServeStatus::Rejected) {
        EXPECT_EQ(summaryField(parseEnvelope(R), "error_code")->Str,
                  "server_saturated");
        SawRejection = true;
      }
    }
    Blocker.join();
  }
  EXPECT_TRUE(SawRejection);
}

TEST(ServeAdmission, MalformedPayloadGetsErrorEnvelope) {
  EditService Service(ServeLimits{});
  ServeResponse R = Service.handleEncoded({0xde, 0xad, 0xbe, 0xef});
  ASSERT_EQ(R.Status, ServeStatus::Error);
  EXPECT_EQ(summaryField(parseEnvelope(R), "error_code")->Str, "bad_magic");
}

TEST(ServeAdmission, NonExecutableImageGetsErrorEnvelope) {
  EditService Service(ServeLimits{});
  ServeResponse R = Service.handle(makeRequest({1, 2, 3, 4}));
  ASSERT_EQ(R.Status, ServeStatus::Error);
  JsonValue Doc = parseEnvelope(R);
  ASSERT_NE(summaryField(Doc, "error_code"), nullptr);
  EXPECT_NE(summaryField(Doc, "error_code")->Str, "");
}

// --- Concurrency and determinism --------------------------------------------

TEST(ServeConcurrency, ConcurrentIdenticalSubmissionsAreByteIdentical) {
  EditService Service(ServeLimits{});
  std::vector<uint8_t> Image = makeImage(8, 12);
  constexpr unsigned N = 8;
  std::vector<ServeResponse> Responses(N);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back(
        [&, I] { Responses[I] = Service.handle(makeRequest(Image)); });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned I = 0; I < N; ++I) {
    ASSERT_EQ(Responses[I].Status, ServeStatus::Ok) << "request " << I;
    EXPECT_EQ(Responses[I].EditedImage, Responses[0].EditedImage)
        << "request " << I;
  }
  // Every submission was served (hit or claimed-miss, never dropped).
  AnalysisCache::Stats S = Service.cacheStats();
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(N));
}

TEST(ServeConcurrency, ThreadCountDoesNotChangeOutput) {
  EditService Service(ServeLimits{});
  std::vector<uint8_t> Image = makeImage(9, 12);
  ServeRequest One = makeRequest(Image, "qpt:all");
  One.Threads = 1;
  ServeRequest Eight = makeRequest(Image, "qpt:all");
  Eight.Threads = 8;
  ServeResponse R1 = Service.handle(One);
  ServeResponse R8 = Service.handle(Eight);
  ASSERT_EQ(R1.Status, ServeStatus::Ok);
  ASSERT_EQ(R8.Status, ServeStatus::Ok);
  EXPECT_EQ(R1.EditedImage, R8.EditedImage);
  // Different Threads settings are distinct cache keys (options digest),
  // so neither run reused the other's analysis.
  EXPECT_EQ(Service.cacheStats().Hits, 0u);
}

// --- Per-request metrics isolation ------------------------------------------

TEST(ServeMetrics, BackToBackEnvelopesAreIsolated) {
  // Satellite 3: with caching disabled both requests run the identical
  // cold pipeline, so their envelope counters must match exactly — a
  // second envelope with doubled pipeline counters means the first
  // request's metrics leaked through. Cumulative serve.* counters are
  // exempt and must keep growing.
  ServeLimits Limits;
  Limits.CacheCapacity = 0;
  EditService Service(Limits);
  ServeRequest Req = makeRequest(makeImage(10, 8));
  Req.WantMetrics = true;

  ServeResponse First = Service.handle(Req);
  ServeResponse Second = Service.handle(Req);
  ASSERT_EQ(First.Status, ServeStatus::Ok);
  ASSERT_EQ(Second.Status, ServeStatus::Ok);
  JsonValue D1 = parseEnvelope(First);
  JsonValue D2 = parseEnvelope(Second);

  const JsonValue *C1 = D1.find("counters");
  const JsonValue *C2 = D2.find("counters");
  ASSERT_NE(C1, nullptr);
  ASSERT_NE(C2, nullptr);
  ASSERT_TRUE(C1->isObject());
  unsigned PipelineCountersCompared = 0;
  for (const auto &[Name, Value] : C1->Obj) {
    if (Name.rfind("time.", 0) == 0) // Wall-clock: exempt by contract.
      continue;
    const JsonValue *Other = C2->find(Name);
    ASSERT_NE(Other, nullptr) << Name;
    if (Name.rfind("serve.", 0) == 0) {
      EXPECT_GE(Other->asNumber(), Value.asNumber()) << Name;
      continue;
    }
    EXPECT_EQ(Other->Num, Value.Num) << Name << " leaked between requests";
    ++PipelineCountersCompared;
  }
  EXPECT_GT(PipelineCountersCompared, 0u);

  // serve.requests is cumulative across the two envelopes.
  const JsonValue *Req1 = C1->find("serve.requests");
  const JsonValue *Req2 = C2->find("serve.requests");
  ASSERT_NE(Req1, nullptr);
  ASSERT_NE(Req2, nullptr);
  EXPECT_GT(Req2->asNumber(), Req1->asNumber());
}

TEST(ServeMetrics, EnvelopeCarriesProvenanceAndParses) {
  EditService Service(ServeLimits{});
  std::vector<uint8_t> Image = makeImage(12, 6);
  ServeResponse R = Service.handle(makeRequest(Image, "qpt:edges"));
  ASSERT_EQ(R.Status, ServeStatus::Ok);
  JsonValue Doc = parseEnvelope(R);
  ASSERT_NE(Doc.find("schema"), nullptr);
  EXPECT_EQ(Doc.find("schema")->Str, "eel-report/1");
  const JsonValue *Prov = Doc.find("provenance");
  ASSERT_NE(Prov, nullptr);
  EXPECT_NE(Prov->find("image_fnv1a64"), nullptr);
  EXPECT_NE(Prov->find("tool_digest"), nullptr);
  EXPECT_NE(Prov->find("options_digest"), nullptr);
  EXPECT_NE(Prov->find("combined"), nullptr);

  // The provenance matches what the request's bytes and spec digest to.
  uint64_t ImageHash = fnv1a64(Image.data(), Image.size());
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(ImageHash));
  EXPECT_EQ(Prov->find("image_fnv1a64")->Str, Buf);
}

// --- Wire round-trip through handleEncoded ----------------------------------

TEST(ServeWire, EncodedRequestRoundTripsThroughService) {
  EditService Service(ServeLimits{});
  ServeRequest Req = makeRequest(makeImage(13, 6));
  ServeResponse Direct = Service.handle(Req);
  ASSERT_EQ(Direct.Status, ServeStatus::Ok);

  ServeResponse ViaWire = Service.handleEncoded(encodeRequest(Req));
  ASSERT_EQ(ViaWire.Status, ServeStatus::Ok);
  // Second submission of the same request: a cache hit, byte-identical.
  EXPECT_EQ(ViaWire.EditedImage, Direct.EditedImage);

  Expected<ServeResponse> Decoded =
      decodeResponse(encodeResponse(ViaWire));
  ASSERT_TRUE(Decoded.hasValue());
  EXPECT_EQ(Decoded.value().EditedImage, Direct.EditedImage);
  EXPECT_TRUE(parseJson(Decoded.value().EnvelopeJson).hasValue());
}

// --- Request-id propagation -------------------------------------------------

TEST(ServeRequestId, ClientIdEchoedEverywhere) {
  EditService Service(ServeLimits{});
  ServeRequest Req = makeRequest(makeImage(20, 6));
  Req.RequestId = 0xabcdef12345678ull;
  ServeResponse R = Service.handle(Req);
  ASSERT_EQ(R.Status, ServeStatus::Ok);
  EXPECT_EQ(R.RequestId, Req.RequestId);
  JsonValue Envelope = parseEnvelope(R);
  const JsonValue *Rid = summaryField(Envelope, "request_id");
  ASSERT_NE(Rid, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(Rid->asNumber()), Req.RequestId);

  // The id survives the wire: frame in, frame out.
  Req.RequestId = 77;
  Expected<ServeResponse> Wire =
      decodeResponse(Service.handleFrame(encodeRequest(Req)));
  ASSERT_TRUE(Wire.hasValue());
  EXPECT_EQ(Wire.value().RequestId, 77u);
}

TEST(ServeRequestId, ZeroIdGetsMinted) {
  EditService Service(ServeLimits{});
  ServeRequest Req = makeRequest(makeImage(21, 6));
  ASSERT_EQ(Req.RequestId, 0u);
  ServeResponse R1 = Service.handle(Req);
  ServeResponse R2 = Service.handle(Req);
  ASSERT_EQ(R1.Status, ServeStatus::Ok);
  ASSERT_EQ(R2.Status, ServeStatus::Ok);
  EXPECT_NE(R1.RequestId, 0u);
  EXPECT_NE(R2.RequestId, 0u);
  EXPECT_NE(R1.RequestId, R2.RequestId);
  // Rejections carry the effective id too.
  ServeRequest Bad = makeRequest(makeImage(21, 6), "qpt:nope");
  Bad.RequestId = 99;
  EXPECT_EQ(Service.handle(Bad).RequestId, 99u);
}

// --- Status (scrape) protocol -----------------------------------------------

TEST(ServeStatusProtocol, RoundTrip) {
  StatusRequest Req;
  Req.Format = StatusFormat::Prometheus;
  Req.WantExemplars = true;
  Req.MaxExemplars = 3;
  Expected<StatusRequest> Back = decodeStatusRequest(encodeStatusRequest(Req));
  ASSERT_TRUE(Back.hasValue()) << Back.error().describe();
  EXPECT_EQ(Back.value().Format, StatusFormat::Prometheus);
  EXPECT_TRUE(Back.value().WantExemplars);
  EXPECT_EQ(Back.value().MaxExemplars, 3u);

  StatusResponse Resp;
  Resp.Status = ServeStatus::Ok;
  Resp.Format = StatusFormat::Json;
  Resp.Body = "{\"status\": \"ok\"}";
  Expected<StatusResponse> RBack =
      decodeStatusResponse(encodeStatusResponse(Resp));
  ASSERT_TRUE(RBack.hasValue()) << RBack.error().describe();
  EXPECT_EQ(RBack.value().Status, ServeStatus::Ok);
  EXPECT_EQ(RBack.value().Body, Resp.Body);
}

TEST(ServeStatusProtocol, HostileStatusFramesGetTaxonomyCodes) {
  // The control plane gets the same hostile-input treatment as the edit
  // plane: every malformed byte maps to one taxonomy code.
  std::vector<uint8_t> Good = encodeStatusRequest(StatusRequest{});

  std::vector<uint8_t> BadMagicFrame = Good;
  BadMagicFrame[0] ^= 0xff;
  Expected<StatusRequest> R1 = decodeStatusRequest(BadMagicFrame);
  ASSERT_TRUE(R1.hasError());
  EXPECT_EQ(R1.error().code(), ErrorCode::BadMagic);

  std::vector<uint8_t> BadVersion = Good;
  BadVersion[4] = 99;
  Expected<StatusRequest> R2 = decodeStatusRequest(BadVersion);
  ASSERT_TRUE(R2.hasError());
  EXPECT_EQ(R2.error().code(), ErrorCode::BadHeader);

  std::vector<uint8_t> BadFormat = Good;
  BadFormat[5] = 7; // Outside the StatusFormat enum.
  Expected<StatusRequest> R3 = decodeStatusRequest(BadFormat);
  ASSERT_TRUE(R3.hasError());
  EXPECT_EQ(R3.error().code(), ErrorCode::BadHeader);

  std::vector<uint8_t> BadFlags = Good;
  BadFlags[6] = 0x80; // Reserved flag bits.
  Expected<StatusRequest> R4 = decodeStatusRequest(BadFlags);
  ASSERT_TRUE(R4.hasError());
  EXPECT_EQ(R4.error().code(), ErrorCode::BadHeader);

  for (size_t Len = 0; Len < Good.size(); ++Len) {
    std::vector<uint8_t> Prefix(Good.begin(), Good.begin() + Len);
    Expected<StatusRequest> R = decodeStatusRequest(Prefix);
    ASSERT_TRUE(R.hasError()) << "accepted truncated status frame of " << Len;
    EXPECT_EQ(R.error().code(), ErrorCode::Truncated) << "at len " << Len;
  }

  std::vector<uint8_t> Trailing = Good;
  Trailing.push_back(0);
  Expected<StatusRequest> R5 = decodeStatusRequest(Trailing);
  ASSERT_TRUE(R5.hasError());
  EXPECT_EQ(R5.error().code(), ErrorCode::TrailingBytes);
}

TEST(ServeStatusProtocol, SeededMutationFuzz) {
  // sxf-fuzz discipline for the control plane: mutate valid ELSt frames
  // and require every outcome to be a clean decode or a taxonomy error —
  // and require handleFrame to answer every mutant with a frame that
  // decodes as one of the two response kinds.
  EditService Service(ServeLimits{});
  Rng R(0x5374);
  for (unsigned Iter = 0; Iter < 300; ++Iter) {
    StatusRequest Req;
    Req.Format = R.chance(50) ? StatusFormat::Json : StatusFormat::Prometheus;
    Req.WantExemplars = R.chance(30);
    Req.MaxExemplars = static_cast<uint32_t>(R.below(5));
    std::vector<uint8_t> Frame = encodeStatusRequest(Req);

    unsigned Mutations = 1 + static_cast<unsigned>(R.below(3));
    for (unsigned M = 0; M < Mutations; ++M) {
      switch (R.below(3)) {
      case 0: // Flip a byte.
        if (!Frame.empty())
          Frame[R.below(Frame.size())] ^= static_cast<uint8_t>(R.range(1, 255));
        break;
      case 1: // Truncate.
        if (!Frame.empty())
          Frame.resize(R.below(Frame.size()));
        break;
      default: // Extend with junk.
        Frame.push_back(static_cast<uint8_t>(R.below(256)));
      }
    }

    Expected<StatusRequest> Decoded = decodeStatusRequest(Frame);
    if (Decoded.hasValue()) {
      // Survivors must re-encode to a decodable frame (round-trip sanity).
      EXPECT_TRUE(
          decodeStatusRequest(encodeStatusRequest(Decoded.value())).hasValue());
    } else {
      ErrorCode Code = Decoded.error().code();
      EXPECT_TRUE(Code == ErrorCode::BadMagic || Code == ErrorCode::BadHeader ||
                  Code == ErrorCode::Truncated ||
                  Code == ErrorCode::TrailingBytes ||
                  Code == ErrorCode::ImplausibleCount)
          << errorCodeName(Code);
    }

    std::vector<uint8_t> Answer = Service.handleFrame(Frame);
    EXPECT_TRUE(decodeStatusResponse(Answer).hasValue() ||
                decodeResponse(Answer).hasValue())
        << "handleFrame answered a mutant with an undecodable frame";
  }
}

// --- Live scrape ------------------------------------------------------------

TEST(ServeStatus, SnapshotCarriesLiveCounters) {
  EditService Service(ServeLimits{});
  std::vector<uint8_t> Image = makeImage(22, 6);
  ASSERT_EQ(Service.handle(makeRequest(Image)).Status, ServeStatus::Ok);
  ASSERT_EQ(Service.handle(makeRequest(Image)).Status, ServeStatus::Ok);
  ASSERT_EQ(Service.handle(makeRequest(Image, "qpt:nope")).Status,
            ServeStatus::Rejected);

  StatusResponse Resp = Service.handleStatus(StatusRequest{});
  ASSERT_EQ(Resp.Status, ServeStatus::Ok);
  Expected<JsonValue> Doc = parseJson(Resp.Body);
  ASSERT_TRUE(Doc.hasValue()) << Resp.Body;
  EXPECT_EQ(Doc.value().find("schema")->Str, "eel-report/1");
  const JsonValue *Summary = Doc.value().find("summary");
  ASSERT_NE(Summary, nullptr);
  const JsonValue *Counters = Summary->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->find("requests")->asNumber(), 3.0);
  EXPECT_EQ(Counters->find("ok")->asNumber(), 2.0);
  EXPECT_EQ(Counters->find("rejected")->asNumber(), 1.0);
  const JsonValue *CacheV = Summary->find("cache");
  ASSERT_NE(CacheV, nullptr);
  EXPECT_EQ(CacheV->find("hits")->asNumber(), 1.0);
  EXPECT_EQ(CacheV->find("misses")->asNumber(), 1.0);
  EXPECT_GT(CacheV->find("bytes")->asNumber(), 0.0);
  const JsonValue *Hists = Summary->find("histograms");
  ASSERT_NE(Hists, nullptr);
  ASSERT_TRUE(Hists->isArray());
  bool SawLatency = false;
  for (const JsonValue &H : Hists->Arr)
    if (H.find("name") && H.find("name")->Str == "serve.latency_us") {
      SawLatency = true;
      EXPECT_EQ(H.find("count")->asNumber(), 2.0);
      EXPECT_GT(H.find("p99")->asNumber(), 0.0);
    }
  EXPECT_TRUE(SawLatency);

  // The Prometheus rendering exposes the same counters as text.
  StatusRequest PromReq;
  PromReq.Format = StatusFormat::Prometheus;
  StatusResponse Prom = Service.handleStatus(PromReq);
  ASSERT_EQ(Prom.Status, ServeStatus::Ok);
  EXPECT_NE(Prom.Body.find("serve_requests 3"), std::string::npos)
      << Prom.Body;
  EXPECT_NE(Prom.Body.find("serve_ok 2"), std::string::npos);
  EXPECT_NE(Prom.Body.find("serve_latency_us_count 2"), std::string::npos);
}

TEST(ServeStatus, ScrapeNeverBlocksBehindEdits) {
  // The scrape path must stay answerable while edits are in flight —
  // including WantMetrics edits that hold the metrics-isolation lock
  // exclusively. Workers hammer the service; the main thread scrapes
  // continuously and every scrape must succeed and parse.
  EditService Service(ServeLimits{});
  constexpr unsigned Workers = 4, PerWorker = 6;
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([&, W] {
      std::vector<uint8_t> Image = makeImage(30 + W, 16);
      for (unsigned I = 0; I < PerWorker; ++I) {
        ServeRequest Req = makeRequest(Image, "qpt:all");
        Req.WantMetrics = (I % 2) == 0;
        EXPECT_EQ(Service.handle(Req).Status, ServeStatus::Ok);
      }
    });

  uint64_t Scrapes = 0;
  double MaxInFlight = 0;
  std::thread Closer([&] {
    for (std::thread &T : Threads)
      T.join();
    Done.store(true, std::memory_order_release);
  });
  while (!Done.load(std::memory_order_acquire)) {
    std::vector<uint8_t> Answer =
        Service.handleFrame(encodeStatusRequest(StatusRequest{}));
    Expected<StatusResponse> Resp = decodeStatusResponse(Answer);
    ASSERT_TRUE(Resp.hasValue());
    ASSERT_EQ(Resp.value().Status, ServeStatus::Ok);
    Expected<JsonValue> Doc = parseJson(Resp.value().Body);
    ASSERT_TRUE(Doc.hasValue());
    const JsonValue *Summary = Doc.value().find("summary");
    ASSERT_NE(Summary, nullptr);
    const JsonValue *InFlight = Summary->find("in_flight");
    ASSERT_NE(InFlight, nullptr);
    MaxInFlight = std::max(MaxInFlight, InFlight->asNumber());
    ++Scrapes;
  }
  Closer.join();
  // The scraper kept running the whole time (it is strictly faster than
  // an edit, so many scrapes land per request) and saw the load.
  EXPECT_GE(Scrapes, uint64_t(Workers * PerWorker));
  EXPECT_GT(MaxInFlight, 0.0);

  StatusResponse Final = Service.handleStatus(StatusRequest{});
  Expected<JsonValue> Doc = parseJson(Final.Body);
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_EQ(Doc.value()
                .find("summary")
                ->find("counters")
                ->find("ok")
                ->asNumber(),
            double(Workers * PerWorker));
}

// --- Slow-request exemplars -------------------------------------------------

TEST(ServeSlow, ExemplarCapturedWithRequestId) {
  ServeLimits Limits;
  Limits.SlowRequestUs = 1; // Everything is "slow".
  Limits.ExemplarCapacity = 2;
  EditService Service(Limits);

  for (uint64_t Id : {101u, 102u, 103u}) {
    ServeRequest Req = makeRequest(makeImage(40, 8), "qpt:all");
    Req.RequestId = Id;
    ASSERT_EQ(Service.handle(Req).Status, ServeStatus::Ok);
  }

  std::vector<SlowExemplar> Exs = Service.slowExemplars(0);
  ASSERT_EQ(Exs.size(), 2u) << "ring must cap at ExemplarCapacity";
  EXPECT_GE(Exs[0].LatencyUs, Exs[1].LatencyUs) << "worst first";
  for (const SlowExemplar &Ex : Exs) {
    EXPECT_TRUE(Ex.RequestId == 101 || Ex.RequestId == 102 ||
                Ex.RequestId == 103);
    EXPECT_GT(Ex.LatencyUs, Limits.SlowRequestUs);
    EXPECT_EQ(Ex.ToolSpec, "qpt:all");
    Expected<JsonValue> Trace = parseJson(Ex.TraceJson);
    ASSERT_TRUE(Trace.hasValue());
    const JsonValue *Events = Trace.value().find("traceEvents");
    ASSERT_NE(Events, nullptr);
    ASSERT_TRUE(Events->isArray());
    ASSERT_FALSE(Events->Arr.empty())
        << "a slow request must retain its spans";
    // Every span in the exemplar belongs to this request.
    for (const JsonValue &Ev : Events->Arr) {
      const JsonValue *Args = Ev.find("args");
      ASSERT_NE(Args, nullptr);
      ASSERT_NE(Args->find("request_id"), nullptr);
      EXPECT_EQ(Args->find("request_id")->asNumber(), double(Ex.RequestId));
    }
  }

  // The exemplars are fetchable through the scrape frame.
  StatusRequest Req;
  Req.WantExemplars = true;
  Req.MaxExemplars = 1;
  StatusResponse Resp = Service.handleStatus(Req);
  Expected<JsonValue> Doc = parseJson(Resp.Body);
  ASSERT_TRUE(Doc.hasValue()) << Resp.Body;
  const JsonValue *Slow = Doc.value().find("summary")->find("slow");
  ASSERT_NE(Slow, nullptr);
  EXPECT_EQ(Slow->find("captured")->asNumber(), 3.0);
  const JsonValue *ExArr = Slow->find("exemplars");
  ASSERT_NE(ExArr, nullptr);
  ASSERT_EQ(ExArr->Arr.size(), 1u) << "MaxExemplars caps the reply";
  EXPECT_EQ(ExArr->Arr[0].find("request_id")->asNumber(),
            double(Exs[0].RequestId));
}

TEST(ServeSlow, ThresholdZeroCapturesNothing) {
  EditService Service(ServeLimits{});
  ASSERT_EQ(Service.handle(makeRequest(makeImage(41, 6))).Status,
            ServeStatus::Ok);
  EXPECT_TRUE(Service.slowExemplars(0).empty());
}

// --- Metrics-scope gap regression -------------------------------------------

TEST(ServeMetrics, CumulativeCountersSurviveScopedRequests) {
  // Regression for the PR 10 gap: cache evictions and admission
  // rejections that land *while a WantMetrics request's scope is live*
  // must still be visible in the cumulative registry afterwards. With a
  // capacity-1 cache, back-to-back scoped requests for two images evict
  // each other; a rejection rides along.
  //
  // serve.* counters are process-global and never reset by MetricsScope
  // (that is the property under test), so clear them here to isolate
  // this test from earlier suite activity.
  StatRegistry::instance().resetAll();
  ServeLimits Limits;
  Limits.CacheCapacity = 1;
  EditService Service(Limits);
  std::vector<uint8_t> Image1 = makeImage(50, 6);
  std::vector<uint8_t> Image2 = makeImage(51, 6);

  for (int Round = 0; Round < 2; ++Round)
    for (const std::vector<uint8_t> *Image : {&Image1, &Image2}) {
      ServeRequest Req = makeRequest(*Image);
      Req.WantMetrics = true;
      ASSERT_EQ(Service.handle(Req).Status, ServeStatus::Ok);
    }
  ASSERT_EQ(Service.handle(makeRequest(Image1, "qpt:nope")).Status,
            ServeStatus::Rejected);

  // Read the cumulative registry through a final scoped envelope: serve.*
  // names are exempt from the scope reset, so everything above must still
  // be there.
  ServeRequest Last = makeRequest(Image2);
  Last.WantMetrics = true;
  ServeResponse R = Service.handle(Last);
  ASSERT_EQ(R.Status, ServeStatus::Ok);
  JsonValue Envelope = parseEnvelope(R);
  const JsonValue *Counters = Envelope.find("counters");
  ASSERT_NE(Counters, nullptr);
  const JsonValue *Evictions = Counters->find("serve.cache_evictions");
  ASSERT_NE(Evictions, nullptr) << "evictions never reached the registry";
  EXPECT_GE(Evictions->asNumber(), 3.0);
  const JsonValue *Rejected = Counters->find("serve.rejected");
  ASSERT_NE(Rejected, nullptr);
  EXPECT_GE(Rejected->asNumber(), 1.0);
  const JsonValue *Requests = Counters->find("serve.requests");
  ASSERT_NE(Requests, nullptr);
  EXPECT_EQ(Requests->asNumber(), 6.0);

  // The scrape sees the same history through its own (atomic) path.
  StatusResponse Status = Service.handleStatus(StatusRequest{});
  Expected<JsonValue> Doc = parseJson(Status.Body);
  ASSERT_TRUE(Doc.hasValue());
  const JsonValue *Summary = Doc.value().find("summary");
  EXPECT_EQ(Summary->find("counters")->find("requests")->asNumber(), 6.0);
  EXPECT_GE(Summary->find("cache")->find("evictions")->asNumber(), 3.0);
}
