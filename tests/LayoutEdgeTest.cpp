//===- tests/LayoutEdgeTest.cpp - Layout-engine corner cases ----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Corner cases of edited-routine production (§3.3.1): branches to their
/// own fallthrough, branches into delay slots, conditional branches that
/// leave the routine, edit ordering at one point, deletion of branch
/// targets, multi-entry routines, and assembler/VM failure paths.
///
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "core/Executable.h"
#include "tools/Qpt.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace eel;

namespace {

RunResult editAndRun(Executable &Exec) {
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  EXPECT_TRUE(Edited.hasValue()) << Edited.error().message();
  return runToCompletion(Edited.value());
}

} // namespace

TEST(LayoutEdge, BranchToOwnFallthrough) {
  // Taken and not-taken both land at A+8: two distinct CFG edges to one
  // block.
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  cmp %o0, 0
  be .Lnext
  nop
.Lnext:
  mov 4, %o0
  sys 0
  ret
  nop
)"));
  RunResult Original = runToCompletion(Exec.image());
  Exec.readContents();
  // Instrument both edges.
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  Addr C1 = Exec.appendData(4, 4, "c1"), C2 = Exec.appendData(4, 4, "c2");
  BasicBlock *B = G->blockAt(Exec.textBase());
  ASSERT_NE(B, nullptr);
  ASSERT_EQ(B->succ().size(), 2u);
  B->succ()[0]->addCodeAlong(
      makeCounterIncrementSnippet(Exec.target(), C1));
  B->succ()[1]->addCodeAlong(
      makeCounterIncrementSnippet(Exec.target(), C2));
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  Machine M(Edited.value());
  RunResult After = M.run();
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
  // Exactly one of the two edges was traversed.
  EXPECT_EQ(M.memory().readWord(C1) + M.memory().readWord(C2), 1u);
}

TEST(LayoutEdge, BranchIntoDelaySlotEncoded) {
  // Build the program with a hand-patched branch displacement so a branch
  // genuinely targets a delay-slot word, then verify editing preserves it.
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o4
  ba .Lcheck
  add %o4, 1, %o4
.Lcheck:
  cmp %o4, 3
  bl .Lcheck           ! placeholder target, patched below
  nop
  mov %o4, %o0
  sys 0
  ret
  nop
)");
  // Retarget the `bl` (at +16) to the `add` in the delay slot (at +8).
  const TargetInfo &T = sriscTarget();
  Addr BlAddr = File.segment(SegKind::Text)->VAddr + 16;
  Addr AddAddr = File.segment(SegKind::Text)->VAddr + 8;
  MachWord Bl = *File.readWord(BlAddr);
  std::optional<MachWord> Patched = T.retargetDirect(Bl, BlAddr, AddAddr);
  ASSERT_TRUE(Patched.has_value());
  ASSERT_TRUE(File.writeWord(BlAddr, *Patched));
  // Semantics: o4 increments until 3 (once as delay, twice via the loop:
  // add -> cmp -> bl...).
  RunResult Original = runToCompletion(File);
  EXPECT_EQ(Original.ExitCode, 3);

  Executable Exec(std::move(File));
  RunResult After = editAndRun(Exec);
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
}

TEST(LayoutEdge, ConditionalBranchOutOfRoutine) {
  // A conditional branch whose taken target is another routine's entry
  // (a conditional tail jump): its taken edge leaves the CFG.
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  cmp %o0, 0
  be other
  nop
  mov 1, %o0
  sys 0
  ret
  nop
other:
  mov 9, %o0
  sys 0
  ret
  nop
)"));
  RunResult Original = runToCompletion(Exec.image());
  EXPECT_EQ(Original.ExitCode, 9);
  RunResult After = editAndRun(Exec);
  EXPECT_EQ(After.ExitCode, 9);
}

TEST(LayoutEdge, EditOrderingAtOnePoint) {
  // Two snippets at the same point apply in insertion order: the second
  // one doubles, so (0 + 5) * 2 != (0 * 2) + 5 distinguishes orders.
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  sys 0
  ret
  nop
.data
.align 4
cell: .word 0
)"));
  Exec.readContents();
  Addr Cell = Exec.image().findSymbol("cell")->Value;
  const TargetInfo &T = Exec.target();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  BasicBlock *B = G->blockAt(Exec.textBase());
  ASSERT_NE(B, nullptr);

  auto Add5 = [&] {
    std::vector<MachWord> W;
    T.emitLoadConst(1, Cell, W);
    T.emitLoadWord(2, 1, 0, W);
    T.emitAddImm(2, 2, 5, W);
    T.emitStoreWord(2, 1, 0, W);
    return std::make_shared<CodeSnippet>(W, RegSet{1, 2});
  }();
  auto Double = [&] {
    std::vector<MachWord> W;
    T.emitLoadConst(1, Cell, W);
    T.emitLoadWord(2, 1, 0, W);
    T.emitAddReg(2, 2, 2, W);
    T.emitStoreWord(2, 1, 0, W);
    return std::make_shared<CodeSnippet>(W, RegSet{1, 2});
  }();
  G->addCodeBefore(B, 0, Add5);
  G->addCodeBefore(B, 0, Double);

  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue());
  Machine M(Edited.value());
  M.run();
  EXPECT_EQ(M.memory().readWord(Cell), 10u); // (0+5)*2, not (0*2)+5
}

TEST(LayoutEdge, DeletedJumpTargetFallsThrough) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  ba .Ltgt
  nop
  mov 1, %o0
.Ltgt:
  mov 7, %o0           ! to be deleted: jump should land on the next inst
  add %o0, 2, %o0
  sys 0
  ret
  nop
)"));
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  BasicBlock *Target = G->blockAt(Exec.textBase() + 12);
  ASSERT_NE(Target, nullptr);
  G->deleteInst(Target, 0);
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue());
  // o0 is never set to 7; add sees whatever o0 was (0 at startup) + 2.
  EXPECT_EQ(runToCompletion(Edited.value()).ExitCode, 2);
}

TEST(LayoutEdge, MultiEntryRoutineInstrumented) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  call body_alt        ! enters compute at its second entry
  nop
  mov %o0, %o0
  sys 0
  ret
  nop
compute:
  mov 100, %o0
.hidden
body_alt:
  add %o0, 23, %o0
  ret
  nop
)"));
  RunResult Original = runToCompletion(Exec.image());
  EXPECT_EQ(Original.ExitCode, 23);
  Exec.readContents();
  Routine *Compute = Exec.findRoutine("compute");
  ASSERT_NE(Compute, nullptr);
  ASSERT_EQ(Compute->entryPoints().size(), 2u);
  // Count executions of the second entry's block.
  Addr Counter = Exec.appendData(4, 4, "entry2");
  Cfg *G = Compute->controlFlowGraph();
  BasicBlock *Alt = G->blockAt(Compute->entryPoints()[1]);
  ASSERT_NE(Alt, nullptr);
  G->addCodeBefore(Alt, 0,
                   makeCounterIncrementSnippet(Exec.target(), Counter));
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  Machine M(Edited.value());
  RunResult After = M.run();
  EXPECT_EQ(After.ExitCode, 23);
  EXPECT_EQ(M.memory().readWord(Counter), 1u);
}

TEST(LayoutEdge, MriscInternalJumpsRetargeted) {
  // MRISC `j` is absolute-region: inserting code before it moves both the
  // jump and its target, so the layout must rewrite the index.
  Executable Exec(assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  li $a0, 1
  j .Lover
  nop
  li $a0, 99
.Lover:
  addi $a0, $a0, 2
  li $v0, 0
  syscall
  jr $ra
  nop
)"));
  RunResult Original = runToCompletion(Exec.image());
  EXPECT_EQ(Original.ExitCode, 3);
  Exec.readContents();
  Addr Counter = Exec.appendData(4, 4, "ctr");
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  BasicBlock *B = G->blockAt(Exec.textBase());
  ASSERT_NE(B, nullptr);
  G->addCodeBefore(B, 0,
                   makeCounterIncrementSnippet(Exec.target(), Counter));
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue());
  RunResult After = runToCompletion(Edited.value());
  EXPECT_EQ(After.ExitCode, 3);
}

// --- Assembler error paths (MRISC) -------------------------------------------------

TEST(AsmErrors, MriscDiagnostics) {
  EXPECT_TRUE(
      assembleProgram(TargetArch::Mrisc, "add $t0, $t1\n").hasError());
  EXPECT_TRUE(
      assembleProgram(TargetArch::Mrisc, "addi $t0, $t1, 99999\n")
          .hasError());
  EXPECT_TRUE(
      assembleProgram(TargetArch::Mrisc, "lw $t0, 8[$sp]\n").hasError());
  EXPECT_TRUE(
      assembleProgram(TargetArch::Mrisc, "sll $t0, $t1, 32\n").hasError());
  EXPECT_TRUE(
      assembleProgram(TargetArch::Mrisc, "add $t0, $t1, $zz\n").hasError());
  Expected<SxfFile> R =
      assembleProgram(TargetArch::Mrisc, "nop\nbogus $t0\n");
  ASSERT_TRUE(R.hasError());
  EXPECT_NE(R.error().message().find("line 2"), std::string::npos);
}

// --- VM fault paths --------------------------------------------------------------------

TEST(VmFaults, MisalignedLoadStops) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set 0x400001, %o1
  ld [%o1 + 0], %o2
  sys 0
  ret
  nop
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Reason, StopReason::BadAlignment);
}

TEST(VmFaults, MisalignedPcStops) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set main, %o1
  add %o1, 2, %o1
  jmpl %o1 + 0, %g0
  nop
  ret
  nop
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Reason, StopReason::BadAlignment);
}
