//===- tests/ParallelTest.cpp - Parallel pipeline determinism tests ---------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel editing pipeline's contract is bit-identical output: for any
/// Threads setting, the edited image and the (non-time.*) statistics must
/// equal what the legacy serial path (Threads = 1) produces. These tests run
/// the full pipeline — readContents, deterministic edits, and
/// writeEditedExecutable — at Threads = 1 and Threads = 8 over SRISC and
/// MRISC workloads, including the DisableSlicing / DisableDelayFolding
/// ablations, and compare byte-for-byte. Also unit-tests the thread pool's
/// parallelForEach (exactly-once coverage, nesting).
///
/// Registered under the ctest label `par` so a -DEEL_SANITIZE=thread build
/// can run just these under TSan: `ctest -L par`.
///
//===----------------------------------------------------------------------===//

#include "core/Executable.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace eel;

namespace {

// --- ThreadPool unit tests --------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t N = 1000;
  std::vector<std::atomic<unsigned>> Hits(N);
  parallelForEach(8, N, [&Hits](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, SerialPathRunsInIndexOrder) {
  std::vector<size_t> Order;
  parallelForEach(1, 16, [&Order](size_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), 16u);
  for (size_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPoolTest, NestedFanOutCompletes) {
  // A body that itself calls parallelForEach must not deadlock: blocked
  // callers help execute pool tasks.
  constexpr size_t Outer = 6, Inner = 40;
  std::atomic<unsigned> Total{0};
  parallelForEach(4, Outer, [&Total](size_t) {
    parallelForEach(4, Inner, [&Total](size_t) {
      Total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(Total.load(), Outer * Inner);
}

TEST(ThreadPoolTest, SaturatedSubmitNeverRunsInlineAndTrySubmitRejects) {
  // Regression test for the eel-serve overflow hazard: with the queue
  // saturated, submit() used to be allowed to fall back to running the
  // task inline on the submitter, letting a request handler re-enter the
  // pipeline on its own stack. The contract now is: trySubmit() rejects,
  // and blocking submit() enqueues only — no submitted task may ever
  // execute on the submitting thread (which never helps the pool).
  ThreadPool Pool(2);
  Pool.setQueueCapacity(4);

  std::atomic<bool> Gate{false};
  std::atomic<unsigned> Blocked{0};
  // Park both workers so nothing drains while we saturate the queue.
  for (int I = 0; I < 2; ++I)
    Pool.submit([&Gate, &Blocked] {
      Blocked.fetch_add(1);
      while (!Gate.load(std::memory_order_acquire))
        std::this_thread::yield();
    });
  while (Blocked.load() < 2)
    std::this_thread::yield();

  const std::thread::id Submitter = std::this_thread::get_id();
  std::atomic<bool> RanOnSubmitter{false};
  std::atomic<unsigned> Ran{0};
  auto Work = [&RanOnSubmitter, &Ran, Submitter] {
    if (std::this_thread::get_id() == Submitter)
      RanOnSubmitter.store(true);
    Ran.fetch_add(1);
  };

  unsigned Accepted = 0;
  bool SawRejection = false;
  for (int I = 0; I < 64; ++I) {
    if (Pool.trySubmit(Work))
      ++Accepted;
    else
      SawRejection = true;
  }
  EXPECT_TRUE(SawRejection) << "saturated trySubmit must reject";
  EXPECT_GE(Accepted, 2u); // capacity minus the two parked tasks
  EXPECT_FALSE(RanOnSubmitter.load())
      << "trySubmit executed a task inline on the submitter";

  Gate.store(true, std::memory_order_release);
  while (Ran.load() < Accepted)
    std::this_thread::yield();
  EXPECT_EQ(Ran.load(), Accepted); // every accepted task ran exactly once
  EXPECT_FALSE(RanOnSubmitter.load())
      << "a pool task ran on the submitting thread";
}

TEST(ThreadPoolTest, NestedSubmitFromSaturatedPoolTaskCompletes) {
  // A task already running on the pool must be able to submit past the
  // capacity bound without blocking or running inline: blocking every
  // worker in submit() would leave nobody to drain the queue (the
  // nested-submit deadlock the bounded path must not introduce).
  ThreadPool Pool(2);
  Pool.setQueueCapacity(1);
  std::atomic<unsigned> Done{0};
  constexpr unsigned Outer = 4, Inner = 8;
  for (unsigned I = 0; I < Outer; ++I)
    Pool.submit([&Pool, &Done] {
      for (unsigned J = 0; J < Inner; ++J)
        Pool.submit([&Done] { Done.fetch_add(1); });
    });
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Done.load() < Outer * Inner) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "nested submits deadlocked under saturation";
    std::this_thread::yield();
  }
  EXPECT_EQ(Done.load(), Outer * Inner);
}

TEST(ThreadPoolTest, TrySubmitRejectsOnWorkerlessPool) {
  // With no workers the only way to run a task is inline on the caller —
  // the exact hazard trySubmit exists to avoid — so it must reject.
  ThreadPool Pool(0);
  bool Ran = false;
  EXPECT_FALSE(Pool.trySubmit([&Ran] { Ran = true; }));
  EXPECT_FALSE(Ran);
}

TEST(ThreadPoolTest, ShardedStatsMergeAcrossThreads) {
  StatRegistry &Reg = StatRegistry::instance();
  uint64_t Before = Reg.read("test.parallel_bumps");
  constexpr size_t N = 500;
  parallelForEach(8, N, [](size_t) { bumpStat("test.parallel_bumps"); });
  EXPECT_EQ(Reg.read("test.parallel_bumps"), Before + N);
}

// --- Pipeline determinism ---------------------------------------------------------

/// Everything the pipeline produces that must be schedule-independent.
struct PipelineResult {
  std::vector<uint8_t> Bytes; ///< Serialized edited image.
  Executable::EditStats Stats;
  std::vector<std::pair<std::string, uint64_t>> Counters; ///< Sans time.*.
  SxfFile EditedFile;
  SxfFile OriginalFile;
};

/// Runs the full pipeline at the given thread count: generate, analyze,
/// apply a deterministic edit to every supported routine (a counter bump
/// before its first instruction), and write the edited executable.
PipelineResult runPipeline(TargetArch Arch, const WorkloadOptions &WOpts,
                           Executable::Options EOpts, unsigned Threads) {
  EOpts.Threads = Threads;
  StatRegistry::instance().resetAll();

  PipelineResult Result;
  Result.OriginalFile = generateWorkload(Arch, WOpts);
  Executable Exec(Result.OriginalFile, EOpts);
  Exec.readContents();

  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported() || !G->complete())
      continue;
    BasicBlock *First = nullptr;
    for (const auto &B : G->blocks())
      if (B->kind() == BlockKind::Normal && !B->insts().empty()) {
        First = B;
        break;
      }
    if (!First)
      continue;
    Addr Counter = Exec.appendData(4, 4, "ctr_" + R->name());
    std::vector<MachWord> Body;
    const unsigned RegA = 1, RegB = 2;
    const TargetInfo &T = Exec.target();
    T.emitLoadConst(RegA, Counter, Body);
    T.emitLoadWord(RegB, RegA, 0, Body);
    T.emitAddImm(RegB, RegB, 1, Body);
    T.emitStoreWord(RegB, RegA, 0, Body);
    G->addCodeBefore(First, 0,
                     std::make_shared<CodeSnippet>(Body, RegSet{RegA, RegB}));
  }

  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  EXPECT_FALSE(Edited.hasError())
      << (Edited.hasError() ? Edited.error().message() : "");
  if (Edited.hasError())
    return Result;
  Result.EditedFile = Edited.takeValue();
  Result.Bytes = Result.EditedFile.serialize();
  Result.Stats = Exec.editStats();
  for (auto &Entry : StatRegistry::instance().snapshot())
    if (Entry.first.rfind("time.", 0) != 0) // wall-clock: schedule-dependent
      Result.Counters.push_back(std::move(Entry));
  return Result;
}

void expectIdentical(const PipelineResult &Serial,
                     const PipelineResult &Parallel) {
  EXPECT_EQ(Serial.Bytes, Parallel.Bytes) << "edited images differ";

  const Executable::EditStats &A = Serial.Stats, &B = Parallel.Stats;
  EXPECT_EQ(A.RoutinesEdited, B.RoutinesEdited);
  EXPECT_EQ(A.RoutinesVerbatim, B.RoutinesVerbatim);
  EXPECT_EQ(A.DispatchEntriesRewritten, B.DispatchEntriesRewritten);
  EXPECT_EQ(A.DataPointersRewritten, B.DataPointersRewritten);
  EXPECT_EQ(A.TranslationSites, B.TranslationSites);
  EXPECT_EQ(A.TranslationEntries, B.TranslationEntries);
  EXPECT_EQ(A.DelaySlotsFolded, B.DelaySlotsFolded);
  EXPECT_EQ(A.DelaySlotsMaterialized, B.DelaySlotsMaterialized);
  EXPECT_EQ(A.SnippetInstances, B.SnippetInstances);
  EXPECT_EQ(A.SnippetSpills, B.SnippetSpills);
  EXPECT_EQ(A.SnippetCCSaves, B.SnippetCCSaves);

  EXPECT_EQ(Serial.Counters, Parallel.Counters)
      << "merged stat snapshots differ";
}

WorkloadOptions bigWorkload() {
  WorkloadOptions W;
  W.Seed = 42;
  W.Routines = 24;
  W.SegmentsPerRoutine = 6;
  W.SwitchPercent = 40;
  W.TailCallPercent = 25; // unanalyzable indirect jumps -> translator
  W.SymbolPathologies = true;
  return W;
}

TEST(ParallelDeterminism, SriscMatchesSerial) {
  Executable::Options E;
  PipelineResult Serial = runPipeline(TargetArch::Srisc, bigWorkload(), E, 1);
  PipelineResult Parallel =
      runPipeline(TargetArch::Srisc, bigWorkload(), E, 8);
  expectIdentical(Serial, Parallel);
}

TEST(ParallelDeterminism, MriscMatchesSerial) {
  WorkloadOptions W = bigWorkload();
  W.AnnulledBranches = false; // SRISC-only idiom
  Executable::Options E;
  PipelineResult Serial = runPipeline(TargetArch::Mrisc, W, E, 1);
  PipelineResult Parallel = runPipeline(TargetArch::Mrisc, W, E, 8);
  expectIdentical(Serial, Parallel);
}

TEST(ParallelDeterminism, AriscMatchesSerial) {
  WorkloadOptions W = bigWorkload();
  W.AnnulledBranches = false; // SRISC-only idiom
  Executable::Options E;
  PipelineResult Serial = runPipeline(TargetArch::Arisc, W, E, 1);
  PipelineResult Parallel = runPipeline(TargetArch::Arisc, W, E, 8);
  expectIdentical(Serial, Parallel);
}

TEST(ParallelDeterminism, DisableSlicingAblation) {
  Executable::Options E;
  E.DisableSlicing = true;
  PipelineResult Serial = runPipeline(TargetArch::Srisc, bigWorkload(), E, 1);
  PipelineResult Parallel =
      runPipeline(TargetArch::Srisc, bigWorkload(), E, 8);
  expectIdentical(Serial, Parallel);
}

TEST(ParallelDeterminism, DisableDelayFoldingAblation) {
  Executable::Options E;
  E.DisableDelayFolding = true;
  PipelineResult Serial = runPipeline(TargetArch::Srisc, bigWorkload(), E, 1);
  PipelineResult Parallel =
      runPipeline(TargetArch::Srisc, bigWorkload(), E, 8);
  expectIdentical(Serial, Parallel);
}

TEST(ParallelDeterminism, EditedProgramStillBehaves) {
  // Beyond byte-identity: the parallel-edited image runs like the original.
  Executable::Options E;
  PipelineResult P = runPipeline(TargetArch::Srisc, bigWorkload(), E, 8);
  ASSERT_FALSE(P.Bytes.empty());
  RunResult Original = runToCompletion(P.OriginalFile);
  RunResult Edited = runToCompletion(P.EditedFile);
  EXPECT_EQ(static_cast<int>(Original.Reason),
            static_cast<int>(Edited.Reason));
  EXPECT_EQ(Original.ExitCode, Edited.ExitCode);
  EXPECT_EQ(Original.Output, Edited.Output);
}

} // namespace
