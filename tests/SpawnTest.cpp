//===- tests/SpawnTest.cpp - Machine-description subsystem tests -----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the spawn pipeline: lexer, description parser, per-word
/// analysis, the spawn-derived TargetInfo (checked method-by-method against
/// the handwritten backends over random and structured word samples — the
/// paper's spawn-vs-handwritten validation), and the description-driven
/// interpreter (checked against the handwritten VM on whole programs).
///
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "isa/Descriptions.h"
#include "isa/MriscEncoding.h"
#include "isa/SriscEncoding.h"
#include "spawn/Codegen.h"
#include "spawn/Eval.h"
#include "spawn/Lexer.h"
#include "spawn/SpawnTarget.h"
#include "support/FileIO.h"
#include "support/Rng.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace eel;
using namespace eel::spawn;

// --- Lexer ----------------------------------------------------------------

TEST(SpawnLexer, TokensAndComments) {
  Expected<std::vector<Token>> Tokens = lexDescription(
      "-- comment line\n"
      "pat foo is op=0x2a && rd=[1 2]\n"
      "val f(x) is x := PC + (sx(d) << 2)\n");
  ASSERT_TRUE(Tokens.hasValue());
  const std::vector<Token> &T = Tokens.value();
  EXPECT_EQ(T[0].Text, "pat");
  EXPECT_TRUE(T[0].StartOfLine);
  EXPECT_EQ(T[0].Line, 2u);
  EXPECT_FALSE(T[1].StartOfLine);
  // 0x2a lexes as one number token with value 42.
  bool Found42 = false, FoundAssign = false, FoundShl = false;
  for (const Token &Tok : T) {
    if (Tok.isNumber() && Tok.Value == 42)
      Found42 = true;
    if (Tok.is(":="))
      FoundAssign = true;
    if (Tok.is("<<"))
      FoundShl = true;
  }
  EXPECT_TRUE(Found42);
  EXPECT_TRUE(FoundAssign);
  EXPECT_TRUE(FoundShl);
}

TEST(SpawnLexer, RejectsUnknownCharacters) {
  EXPECT_TRUE(lexDescription("pat foo is op=`2`\n").hasError());
}

// --- Parser ----------------------------------------------------------------

TEST(SpawnParser, ParsesEmbeddedDescriptions) {
  Expected<std::shared_ptr<MachineDesc>> Srisc =
      parseMachineDescription(sriscDescription());
  ASSERT_TRUE(Srisc.hasValue()) << Srisc.error().message();
  const MachineDesc &S = *Srisc.value();
  EXPECT_EQ(S.ArchName, "srisc");
  EXPECT_EQ(S.Fields.size(), 14u);
  // 16 branches + sethi + call + 11 alu + 5 alucc + rdcc + wrcc + jmpl +
  // sys + 8 memory = 46 patterns.
  EXPECT_EQ(S.Patterns.size(), 46u);
  EXPECT_EQ(S.ZeroRegId, 0);

  Expected<std::shared_ptr<MachineDesc>> Mrisc =
      parseMachineDescription(mriscDescription());
  ASSERT_TRUE(Mrisc.hasValue()) << Mrisc.error().message();
  EXPECT_EQ(Mrisc.value()->ArchName, "mrisc");
}

TEST(SpawnParser, DecodeMatchesPatterns) {
  Expected<std::shared_ptr<MachineDesc>> DescE =
      parseMachineDescription(sriscDescription());
  ASSERT_TRUE(DescE.hasValue());
  const MachineDesc &Desc = *DescE.value();
  int Idx = Desc.decode(srisc::encodeArithReg(srisc::Op3Add, 1, 2, 3));
  ASSERT_GE(Idx, 0);
  EXPECT_EQ(Desc.Patterns[Idx].Name, "add");
  Idx = Desc.decode(srisc::encodeBicc(true, srisc::CondNE, 5));
  ASSERT_GE(Idx, 0);
  EXPECT_EQ(Desc.Patterns[Idx].Name, "bne");
  EXPECT_EQ(Desc.decode(0), -1);
  EXPECT_EQ(Desc.decode(0xFFFFFFFFu), -1);
}

TEST(SpawnParser, ErrorsAreDiagnosed) {
  // Unknown field in a pattern.
  EXPECT_TRUE(parseMachineDescription("arch x\nfields f 0:3\n"
                                      "pat a is nofield=1\n"
                                      "sem a is skip\n")
                  .hasError());
  // Overlapping patterns.
  EXPECT_TRUE(parseMachineDescription("arch x\nfields f 0:3, g 4:5\n"
                                      "pat a is f=1\npat b is f=1 && g=2\n"
                                      "sem a is skip\nsem b is skip\n")
                  .hasError());
  // Pattern without semantics.
  EXPECT_TRUE(parseMachineDescription("arch x\nfields f 0:3\n"
                                      "pat a is f=1\n")
                  .hasError());
  // Zip arity mismatch.
  EXPECT_TRUE(parseMachineDescription("arch x\nfields f 0:3\n"
                                      "register int{32} R[4]\n"
                                      "pat [a b] is f=[1 2]\n"
                                      "val m(z) is R[0] := z(R[1], R[2])\n"
                                      "sem [a b] is m @ [add]\n")
                  .hasError());
}

TEST(SpawnParser, SmallCustomDescription) {
  // A miniature ISA exercising the parser paths directly.
  const char *Source = R"(
arch tiny
wordsize 32
fields op 28:31, ra 24:27, rb 20:23, imm 0:19
register int{32} G[16]
zero G[0]
pat inc is op=1
pat jmp is op=2
pat halt is op=3
sem inc is G[ra] := G[rb] + 1
sem jmp is t := PC + (sx(imm) << 2) ; pc := t
sem halt is trap imm
)";
  Expected<std::shared_ptr<MachineDesc>> DescE =
      parseMachineDescription(Source);
  ASSERT_TRUE(DescE.hasValue()) << DescE.error().message();
  const MachineDesc &Desc = *DescE.value();
  MachWord Inc = insertBits(insertBits(insertBits(0, 28, 31, 1), 24, 27, 5),
                            20, 23, 6);
  InstSummary S = analyzeWord(Desc, Inc);
  EXPECT_EQ(S.Category, InstCategory::Computation);
  EXPECT_EQ(S.Reads, (RegSet{6}));
  EXPECT_EQ(S.Writes, (RegSet{5}));
  EXPECT_EQ(S.DOp.Kind, DataOpKind::Add);
  EXPECT_EQ(S.DOp.Rs1, 6u);
  EXPECT_TRUE(S.DOp.HasImm);
  EXPECT_EQ(S.DOp.Imm, 1);

  MachWord Jmp = insertBits(insertBits(0, 28, 31, 2), 0, 19, 6);
  S = analyzeWord(Desc, Jmp);
  EXPECT_EQ(S.Category, InstCategory::JumpDirect);
  EXPECT_TRUE(S.HasDelaySlot);
  ASSERT_TRUE(S.Direct.has_value());
  EXPECT_EQ(S.Direct->evaluate(Desc, Jmp, 0x1000), 0x1000u + 24u);

  MachWord Halt = insertBits(insertBits(0, 28, 31, 3), 0, 19, 7);
  S = analyzeWord(Desc, Halt);
  EXPECT_EQ(S.Category, InstCategory::System);
  EXPECT_EQ(S.TrapNumber, std::optional<unsigned>(7));
}

// --- Spawn-vs-handwritten equivalence ------------------------------------------

namespace {

/// Compares every analytical TargetInfo inquiry on one word.
void expectSameAnalysis(const TargetInfo &Hand, const TargetInfo &Spawn,
                        MachWord W) {
  SCOPED_TRACE(testing::Message()
               << "word=0x" << std::hex << W << " [" << Hand.disassemble(W, 0)
               << "]");
  InstCategory Cat = Hand.classify(W);
  EXPECT_EQ(Cat, Spawn.classify(W));
  EXPECT_EQ(Hand.reads(W).mask(), Spawn.reads(W).mask());
  EXPECT_EQ(Hand.writes(W).mask(), Spawn.writes(W).mask());
  EXPECT_EQ(Hand.hasDelaySlot(W), Spawn.hasDelaySlot(W));
  EXPECT_EQ(Hand.delayBehavior(W), Spawn.delayBehavior(W));
  EXPECT_EQ(Hand.isConditional(W), Spawn.isConditional(W));

  for (Addr PC : {Addr(0x10000), Addr(0x7FFF0000)})
    EXPECT_EQ(Hand.directTarget(W, PC), Spawn.directTarget(W, PC));

  auto HandInd = Hand.indirectTarget(W);
  auto SpawnInd = Spawn.indirectTarget(W);
  EXPECT_EQ(HandInd.has_value(), SpawnInd.has_value());
  if (HandInd && SpawnInd) {
    EXPECT_EQ(HandInd->BaseReg, SpawnInd->BaseReg);
    EXPECT_EQ(HandInd->HasIndex, SpawnInd->HasIndex);
    if (HandInd->HasIndex)
      EXPECT_EQ(HandInd->IndexReg, SpawnInd->IndexReg);
    else
      EXPECT_EQ(HandInd->Offset, SpawnInd->Offset);
    EXPECT_EQ(HandInd->LinkReg, SpawnInd->LinkReg);
  }

  DataOp HandOp = Hand.dataOp(W);
  DataOp SpawnOp = Spawn.dataOp(W);
  EXPECT_EQ(HandOp.Kind, SpawnOp.Kind);
  if (HandOp.Kind != DataOpKind::None) {
    EXPECT_EQ(HandOp.Rd, SpawnOp.Rd);
    EXPECT_EQ(HandOp.HasImm, SpawnOp.HasImm);
    EXPECT_EQ(HandOp.SetsCC, SpawnOp.SetsCC);
    if (HandOp.Kind != DataOpKind::LoadImmHi) {
      EXPECT_EQ(HandOp.Rs1, SpawnOp.Rs1);
      if (HandOp.HasImm)
        EXPECT_EQ(HandOp.Imm, SpawnOp.Imm);
      else
        EXPECT_EQ(HandOp.Rs2, SpawnOp.Rs2);
    } else {
      EXPECT_EQ(HandOp.Imm, SpawnOp.Imm);
    }
  }

  auto HandMem = Hand.memOp(W);
  auto SpawnMem = Spawn.memOp(W);
  EXPECT_EQ(HandMem.has_value(), SpawnMem.has_value());
  if (HandMem && SpawnMem) {
    EXPECT_EQ(HandMem->IsLoad, SpawnMem->IsLoad);
    EXPECT_EQ(HandMem->IsStore, SpawnMem->IsStore);
    EXPECT_EQ(HandMem->Width, SpawnMem->Width);
    EXPECT_EQ(HandMem->SignExtendLoad, SpawnMem->SignExtendLoad);
    EXPECT_EQ(HandMem->AddrBase, SpawnMem->AddrBase);
    EXPECT_EQ(HandMem->HasIndex, SpawnMem->HasIndex);
    if (HandMem->HasIndex)
      EXPECT_EQ(HandMem->AddrIndex, SpawnMem->AddrIndex);
    else
      EXPECT_EQ(HandMem->Offset, SpawnMem->Offset);
    EXPECT_EQ(HandMem->DataReg, SpawnMem->DataReg);
  }

  EXPECT_EQ(Hand.syscallNumber(W), Spawn.syscallNumber(W));

  // Retargeting: nearby aligned targets.
  for (Addr NewTarget : {Addr(0x10080), Addr(0xFF00)}) {
    auto HandRe = Hand.retargetDirect(W, 0x10000, NewTarget);
    auto SpawnRe = Spawn.retargetDirect(W, 0x10000, NewTarget);
    EXPECT_EQ(HandRe, SpawnRe);
  }

  // Register rewriting (only meaningful for valid encodings; the map keeps
  // the hard zero fixed, as any real allocator does).
  if (Cat != InstCategory::Invalid) {
    auto RotateMap = [](unsigned R) -> unsigned {
      if (R == 0 || R >= 32)
        return R;
      return (R % 31) + 1; // permutes 1..31
    };
    EXPECT_EQ(Hand.rewriteRegisters(W, RotateMap),
              Spawn.rewriteRegisters(W, RotateMap));
    auto Identity = [](unsigned R) { return R; };
    EXPECT_EQ(Hand.rewriteRegisters(W, Identity),
              Spawn.rewriteRegisters(W, Identity));
  }
}

} // namespace

TEST(SpawnEquivalence, SriscRandomSweep) {
  const TargetInfo &Hand = sriscTarget();
  const TargetInfo &Spawn = spawnSriscTarget();
  Rng R(2024);
  for (int I = 0; I < 30000; ++I)
    expectSameAnalysis(Hand, Spawn, static_cast<MachWord>(R.next()));
}

TEST(SpawnEquivalence, MriscRandomSweep) {
  const TargetInfo &Hand = mriscTarget();
  const TargetInfo &Spawn = spawnMriscTarget();
  Rng R(2025);
  for (int I = 0; I < 30000; ++I)
    expectSameAnalysis(Hand, Spawn, static_cast<MachWord>(R.next()));
}

TEST(SpawnEquivalence, SriscStructuredSweep) {
  // Random words rarely hit rare-but-valid encodings; enumerate the
  // structured space: every op3, cond, annul bit, i bit.
  const TargetInfo &Hand = sriscTarget();
  const TargetInfo &Spawn = spawnSriscTarget();
  Rng R(7);
  for (uint32_t Op3 = 0; Op3 < 64; ++Op3) {
    for (int I = 0; I < 40; ++I) {
      MachWord W = static_cast<MachWord>(R.next());
      W = insertBits(W, 30, 31, srisc::OpArith);
      W = insertBits(W, 19, 24, Op3);
      expectSameAnalysis(Hand, Spawn, W);
      W = insertBits(W, 30, 31, srisc::OpMem);
      expectSameAnalysis(Hand, Spawn, W);
    }
  }
  for (uint32_t Cond = 0; Cond < 16; ++Cond) {
    for (uint32_t A = 0; A < 2; ++A) {
      for (int I = 0; I < 20; ++I) {
        MachWord W = static_cast<MachWord>(R.next());
        W = insertBits(W, 30, 31, srisc::OpFormat2);
        W = insertBits(W, 22, 24, srisc::Op2Bicc);
        W = insertBits(W, 25, 28, Cond);
        W = insertBits(W, 29, 29, A);
        expectSameAnalysis(Hand, Spawn, W);
      }
    }
  }
}

TEST(SpawnEquivalence, MriscStructuredSweep) {
  const TargetInfo &Hand = mriscTarget();
  const TargetInfo &Spawn = spawnMriscTarget();
  Rng R(8);
  for (uint32_t Op = 0; Op < 64; ++Op) {
    for (int I = 0; I < 60; ++I) {
      MachWord W = static_cast<MachWord>(R.next());
      W = insertBits(W, 26, 31, Op);
      expectSameAnalysis(Hand, Spawn, W);
      if (Op == 0) {
        // R-type: shamt often must be zero for validity.
        expectSameAnalysis(Hand, Spawn, insertBits(W, 6, 10, 0));
        expectSameAnalysis(Hand, Spawn, insertBits(W, 21, 25, 0));
      }
    }
  }
}

// --- Description-driven interpreter ----------------------------------------------

namespace {

/// Runs a program under both interpreters and requires identical behaviour.
void expectSameExecution(TargetArch Arch, const std::string &Source) {
  SxfFile File = assembleOrDie(Arch, Source);
  RunResult Hand = runToCompletion(File);
  const MachineDesc &Desc = spawnTargetFor(Arch).desc();
  RunResult Spawn = runWithDescription(Desc, File);
  EXPECT_EQ(static_cast<int>(Hand.Reason), static_cast<int>(Spawn.Reason));
  EXPECT_EQ(Hand.ExitCode, Spawn.ExitCode);
  EXPECT_EQ(Hand.Instructions, Spawn.Instructions);
  EXPECT_EQ(Hand.Output, Spawn.Output);
}

} // namespace

TEST(SpawnInterp, SriscPrograms) {
  expectSameExecution(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  mov 1, %o1
loop:
  add %o0, %o1, %o0
  add %o1, 1, %o1
  cmp %o1, 50
  ble,a loop
  nop
  smul %o0, 3, %o0
  sdiv %o0, 7, %o0
  srem %o0, 100, %o0
  sys 0
)");
  expectSameExecution(TargetArch::Srisc, R"(
.text
main:
  call f
  mov 11, %o0
  set buf, %o1
  st %o0, [%o1 + 0]
  ldsh [%o1 + 0], %o2
  ldub [%o1 + 0], %o3
  add %o2, %o3, %o0
  ba,a done
  mov 99, %o0
done:
  sys 0
f:
  ret
  add %o0, 100, %o0
.data
.align 4
buf: .word 0
)");
  expectSameExecution(TargetArch::Srisc, R"(
.text
main:
  cmp %g0, 0
  rdcc %l1
  be,a skip
  mov 5, %o0
skip:
  wrcc %l1
  mov 1, %o0
  set msg, %o1
  mov 3, %o2
  sys 1
  mov 0, %o0
  sys 0
.data
msg: .asciz "ab\n"
)");
}

TEST(SpawnInterp, MriscPrograms) {
  expectSameExecution(TargetArch::Mrisc, R"(
.text
main:
  li $t0, 10
  li $a0, 0
loop:
  add $a0, $a0, $t0
  addi $t0, $t0, -1
  bgtz $t0, loop
  nop
  mul $a0, $a0, $a0
  div $a0, $a0, $t1      # divide by zero: defined as 0
  li $v0, 0
  syscall
)");
  expectSameExecution(TargetArch::Mrisc, R"(
.text
main:
  jal f
  li $a0, 4
  la $t0, arr
  sw $v1, 0($t0)
  lh $t1, 0($t0)
  lbu $t2, 0($t0)
  add $a0, $t1, $t2
  slt $t3, $a0, $zero
  xor $a0, $a0, $t3
  li $v0, 0
  syscall
f:
  sll $v1, $a0, 3
  jr $ra
  addi $v1, $v1, 1
.data
.align 4
arr: .word 0
)");
}

TEST(SpawnInterp, RandomArithmeticPrograms) {
  // Property: random straight-line arithmetic behaves identically under
  // both interpreters.
  Rng R(4242);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::string Src = ".text\nmain:\n";
    const char *Ops[] = {"add", "sub", "and", "or",  "xor",
                         "sll", "srl", "sra", "smul"};
    Src += "  mov " + std::to_string(R.range(-100, 100)) + ", %o0\n";
    Src += "  mov " + std::to_string(R.range(-100, 100)) + ", %o1\n";
    for (int I = 0; I < 30; ++I) {
      const char *Op = Ops[R.below(9)];
      unsigned A = 8 + static_cast<unsigned>(R.below(4));
      unsigned B = 8 + static_cast<unsigned>(R.below(4));
      unsigned D = 8 + static_cast<unsigned>(R.below(4));
      Src += "  " + std::string(Op) + " %r" + std::to_string(A) + ", %r" +
             std::to_string(B) + ", %r" + std::to_string(D) + "\n";
    }
    Src += "  and %o0, 255, %o0\n  sys 0\n";
    expectSameExecution(TargetArch::Srisc, Src);
  }
}

// --- Generated source -----------------------------------------------------------

TEST(SpawnCodegen, GeneratesFaithfulSource) {
  const MachineDesc &Desc = spawnSriscTarget().desc();
  std::string Source = generateCppSource(Desc);
  // Every instruction appears as an executor.
  for (const InstPattern &P : Desc.Patterns)
    EXPECT_NE(Source.find("exec_" + P.Name), std::string::npos);
  // Field accessors are emitted.
  EXPECT_NE(Source.find("fld_disp22"), std::string::npos);
  // The generated file dwarfs the description, as in the paper.
  unsigned GeneratedLines = countCodeLines(Source);
  unsigned DescriptionLines = countCodeLines(sriscDescription());
  EXPECT_GT(GeneratedLines, 4 * DescriptionLines);
}

TEST(SpawnRtl, PrinterRendersSemantics) {
  const MachineDesc &Desc = spawnSriscTarget().desc();
  std::vector<std::string> Names = Desc.regFileNames();
  // Find the `call` pattern and render its semantics.
  for (const InstPattern &P : Desc.Patterns) {
    if (P.Name != "call")
      continue;
    const Semantics &Sem = Desc.Sems[P.SemIndex];
    ASSERT_FALSE(Sem.Before.empty());
    ASSERT_FALSE(Sem.After.empty());
    EXPECT_TRUE(Sem.HasDelayMark);
    std::string Before;
    for (const StmtP &S : Sem.Before)
      Before += printStmt(*S, Names) + "\n";
    // call binds the link register to PC and computes the target.
    EXPECT_NE(Before.find("R[15] := PC"), std::string::npos) << Before;
    EXPECT_NE(Before.find("tgt :="), std::string::npos) << Before;
    std::string After;
    for (const StmtP &S : Sem.After)
      After += printStmt(*S, Names) + "\n";
    EXPECT_NE(After.find("pc := tgt"), std::string::npos) << After;
    return;
  }
  FAIL() << "no call pattern";
}

TEST(SpawnRtl, PrinterRendersGuards) {
  const MachineDesc &Desc = spawnSriscTarget().desc();
  std::vector<std::string> Names = Desc.regFileNames();
  for (const InstPattern &P : Desc.Patterns) {
    if (P.Name != "bne")
      continue;
    const Semantics &Sem = Desc.Sems[P.SemIndex];
    std::string Text;
    for (const StmtP &S : Sem.After)
      Text += printStmt(*S, Names) + "\n";
    // Conditional transfer with an annul arm.
    EXPECT_NE(Text.find("cond_ne(CC)"), std::string::npos) << Text;
    EXPECT_NE(Text.find("annul"), std::string::npos) << Text;
    return;
  }
  FAIL() << "no bne pattern";
}
