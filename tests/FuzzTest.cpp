//===- tests/FuzzTest.cpp - Seeded fault injection on the SXF loader -------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic fault-injection acceptance run (ctest label `fuzz`).
/// 10,000 seeded mutants — bit flips, byte splats, truncations, extensions,
/// and targeted field corruptions — derived from workload-generated and
/// edited images. Every mutant must either round-trip byte-identically or
/// be rejected with a structured Error carrying an ErrorCode and a byte
/// offset; nothing may abort, over-allocate, or trip a sanitizer (run
/// under -DEEL_SANITIZE=address,undefined to enforce the latter).
///
/// Determinism guarantee: the mutant stream is a pure function of
/// (corpus, seed), so a failing (image, mutant) pair reproduces exactly —
/// including under sanitizers, whose instrumentation cannot perturb the
/// Rng-driven schedule.
///
//===----------------------------------------------------------------------===//

#include "core/Executable.h"
#include "tools/SxfFuzz.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace eel;

namespace {

std::vector<std::vector<uint8_t>> buildCorpus() {
  std::vector<std::vector<uint8_t>> Corpus;
  for (TargetArch Arch : AllTargetArches) {
    WorkloadOptions WOpts;
    WOpts.Seed = 7;
    WOpts.Routines = 8;
    Corpus.push_back(generateWorkload(Arch, WOpts).serialize());
  }
  // Symbol pathologies stress the symbol-table checks; the edited image
  // contributes translator/table records.
  WorkloadOptions WOpts;
  WOpts.Seed = 9;
  WOpts.Routines = 8;
  WOpts.SymbolPathologies = true;
  SxfFile Image = generateWorkload(TargetArch::Srisc, WOpts);
  Corpus.push_back(Image.serialize());
  Executable::Options EOpts;
  EOpts.Threads = 1;
  Executable Exec(std::move(Image), EOpts);
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasValue())
    Corpus.push_back(Edited.value().serialize());
  return Corpus;
}

void expectClean(const FuzzReport &Report) {
  for (const FuzzFailure &F : Report.Failures)
    ADD_FAILURE() << "image " << F.ImageIndex << " mutant " << F.MutantIndex
                  << ": " << F.What;
  EXPECT_TRUE(Report.clean());
  EXPECT_EQ(Report.RoundTripped + Report.Rejected, Report.Total);
}

} // namespace

// The acceptance-criteria run: 5 corpus images x 2000 mutants = 10,000.
TEST(Fuzz, TenThousandMutantsHonorLoaderContract) {
  FuzzOptions Options;
  Options.Seed = 0xEE1F0DD;
  Options.MutantsPerImage = 2000;
  FuzzReport Report = runFaultInjection(buildCorpus(), Options);
  EXPECT_EQ(Report.Total, 10000u);
  expectClean(Report);
  // A run where (almost) nothing is rejected would mean the mutator is too
  // gentle; one where nothing survives would mean the oracle is vacuous.
  EXPECT_GT(Report.Rejected, 1000u);
  EXPECT_GT(Report.RoundTripped, 0u);
  // The verify gate must actually fire: accepted, analyzable mutants run
  // the structural verifier and none may error (expectClean covers that).
  EXPECT_GT(Report.Verified, 0u);
}

// A different seed must produce a different mutant stream (the harness is
// seeded, not fixed) while the same seed must reproduce exactly.
TEST(Fuzz, SeedDeterminism) {
  std::vector<std::vector<uint8_t>> Corpus = buildCorpus();
  Corpus.resize(1);
  FuzzOptions Options;
  Options.Seed = 42;
  Options.MutantsPerImage = 300;
  FuzzReport A = runFaultInjection(Corpus, Options);
  FuzzReport B = runFaultInjection(Corpus, Options);
  EXPECT_EQ(A.RoundTripped, B.RoundTripped);
  EXPECT_EQ(A.Rejected, B.Rejected);
  EXPECT_EQ(A.ErrorHistogram, B.ErrorHistogram);
  Options.Seed = 43;
  FuzzReport C = runFaultInjection(Corpus, Options);
  EXPECT_TRUE(A.ErrorHistogram != C.ErrorHistogram ||
              A.RoundTripped != C.RoundTripped);
}

// The mutator must exercise a spread of the error taxonomy, not funnel
// every corruption into one catch-all code.
TEST(Fuzz, TaxonomyCoverage) {
  FuzzOptions Options;
  Options.Seed = 0xC0FFEE;
  Options.MutantsPerImage = 2000;
  FuzzReport Report = runFaultInjection(buildCorpus(), Options);
  expectClean(Report);
  EXPECT_GE(Report.ErrorHistogram.size(), 5u)
      << "rejections concentrated in too few ErrorCodes";
}
