//===- tests/VerifierTest.cpp - Static verifier tests -----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static verifier (analysis/Verifier.h) tested in both directions:
///
///  * positive — random workload edits verify cleanly, at 1 and at 8
///    threads with byte-identical reports, and standalone lint accepts
///    every generated image;
///  * negative — for each of the five passes, a hand-injected defect
///    (edge into the middle of a block, flipped annul bit, live-register
///    scavenge, off-by-4 dispatch-table entry, corrupted branch
///    displacement) must be pinpointed by exactly that pass at Error
///    severity. A verifier is only as good as the bugs it provably sees.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "analysis/VerifyInternal.h"
#include "core/Executable.h"
#include "core/Liveness.h"
#include "core/RegAlloc.h"
#include "isa/SriscEncoding.h"
#include "tools/Qpt.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace eel {

/// Befriended by BasicBlock, Edge, and Cfg: the negative tests corrupt
/// otherwise-unreachable invariants through this one access point.
struct VerifierTestAccess {
  /// Re-aims \p E at \p NewDst, keeping succ/pred symmetry intact so only
  /// the semantic target is wrong (the "edge into mid-block" defect).
  static void retarget(Edge *E, BasicBlock *NewDst) {
    E->Dst->removePred(E);
    E->Dst = NewDst;
    NewDst->addPred(E, E->Parent->IR);
  }

  /// Re-aims \p E without fixing the predecessor lists (the asymmetric-
  /// graph defect).
  static void retargetAsymmetric(Edge *E, BasicBlock *NewDst) {
    E->Dst = NewDst;
  }
};

} // namespace eel

using namespace eel;

namespace {

SxfFile makeWorkload(uint64_t Seed, unsigned Routines,
                     unsigned SwitchPercent = 35) {
  WorkloadOptions Options;
  Options.Seed = Seed;
  Options.Routines = Routines;
  Options.SwitchPercent = SwitchPercent;
  return generateWorkload(TargetArch::Srisc, Options);
}

/// Generates, instruments with the qpt profiler, and writes the edited
/// executable; the pair feeds verifyEdit.
struct EditedWorkload {
  std::unique_ptr<Executable> Exec;
  SxfFile Edited;
};

EditedWorkload makeEditedWorkload(uint64_t Seed, bool Instrument = true,
                                  unsigned SwitchPercent = 35) {
  EditedWorkload W;
  Executable::Options Opts;
  Opts.Threads = 1;
  W.Exec = std::make_unique<Executable>(
      makeWorkload(Seed, 10, SwitchPercent), Opts);
  if (Instrument) {
    Qpt2Profiler Profiler(*W.Exec);
    Profiler.instrument();
  } else {
    EXPECT_TRUE(W.Exec->readContents().hasValue());
  }
  Expected<SxfFile> Edited = W.Exec->writeEditedExecutable();
  EXPECT_TRUE(Edited.hasValue())
      << (Edited.hasError() ? Edited.error().describe() : "");
  W.Edited = Edited.takeValue();
  return W;
}

/// True when translation validation would not skip this routine: every
/// reachable head must have an unambiguous mapped position.
bool validatableRoutine(const Cfg &G) {
  std::set<Addr> DelayWords;
  for (const auto &BP : G.blocks())
    if (BP->kind() == BlockKind::DelaySlot)
      for (const CfgInst &CI : BP->insts())
        DelayWords.insert(CI.OrigAddr);
  for (const auto &BP : G.blocks())
    if (BP->kind() == BlockKind::Normal && !BP->empty() &&
        DelayWords.count(BP->anchor()))
      return false;
  return true;
}

std::set<const BasicBlock *> reachableBlocks(const Cfg &G) {
  std::set<const BasicBlock *> Seen;
  std::vector<const BasicBlock *> Queue(G.entryBlocks().begin(),
                                        G.entryBlocks().end());
  while (!Queue.empty()) {
    const BasicBlock *B = Queue.back();
    Queue.pop_back();
    if (!Seen.insert(B).second)
      continue;
    for (const Edge *E : B->succ())
      Queue.push_back(E->dst());
  }
  return Seen;
}

//===----------------------------------------------------------------------===//
// Positive direction
//===----------------------------------------------------------------------===//

// The property test from the acceptance criteria: random workload edits
// verify cleanly, and the report is byte-identical at 1 and 8 threads.
TEST(Verifier, RandomEditsVerifyCleanlyAndDeterministically) {
  for (uint64_t Seed : {11u, 2026u, 77u}) {
    EditedWorkload W = makeEditedWorkload(Seed);
    VerifyOptions One;
    One.Threads = 1;
    DiagnosticReport AtOne = verifyEdit(*W.Exec, W.Edited, One);
    VerifyOptions Eight;
    Eight.Threads = 8;
    DiagnosticReport AtEight = verifyEdit(*W.Exec, W.Edited, Eight);

    EXPECT_EQ(AtOne.errorCount(), 0u)
        << "seed " << Seed << ":\n" << AtOne.renderText();
    EXPECT_GT(AtOne.checksRun(), 100u) << "vacuous verification";
    EXPECT_EQ(AtOne.renderText(), AtEight.renderText())
        << "seed " << Seed << ": thread count changed the report";
    EXPECT_EQ(AtOne.checksRun(), AtEight.checksRun());
  }
}

// Standalone lint accepts every generated image on both architectures.
TEST(Verifier, LintAcceptsGeneratedImages) {
  for (TargetArch Arch : AllTargetArches) {
    WorkloadOptions Options;
    Options.Seed = 5;
    Options.Routines = 8;
    DiagnosticReport Report = lintImage(generateWorkload(Arch, Options));
    EXPECT_FALSE(Report.hasErrors()) << Report.renderText();
    EXPECT_GT(Report.checksRun(), 0u);
  }
}

// The verifier's independent worklist solver must agree with the
// production liveness analysis on unedited code — the baseline that makes
// pass 3 a genuine cross-check rather than a reimplementation echo.
TEST(Verifier, WorklistLivenessAgreesWithProduction) {
  Executable::Options Opts;
  Opts.Threads = 1;
  Executable Exec(makeWorkload(21, 8), Opts);
  ASSERT_TRUE(Exec.readContents().hasValue());
  unsigned Compared = 0;
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (!G || G->unsupported())
      continue;
    Liveness *Prod = R->liveness();
    for (const auto &BP : G->blocks()) {
      if (BP->kind() != BlockKind::Normal || BP->empty())
        continue;
      EXPECT_EQ(Prod->liveBefore(BP, 0),
                auditLiveBefore(*R, BP, 0))
          << "routine " << R->name() << " block " << BP->id();
      if (++Compared >= 64)
        return;
    }
  }
  EXPECT_GT(Compared, 0u);
}

//===----------------------------------------------------------------------===//
// Pass 1: cfg-wellformed
//===----------------------------------------------------------------------===//

// Re-aim a branch's final edge at a block whose head is not the branch
// target: control would enter the middle of a block's address range.
TEST(Verifier, Pass1FlagsEdgeIntoMidBlock) {
  Executable::Options EOpts;
  EOpts.Threads = 1;
  Executable Exec(makeWorkload(3, 8), EOpts);
  ASSERT_TRUE(Exec.readContents().hasValue());

  bool Corrupted = false;
  for (const auto &R : Exec.routines()) {
    if (R->isData() || Corrupted)
      continue;
    Cfg *G = R->controlFlowGraph();
    if (!G || G->unsupported())
      continue;
    for (const auto &BP : G->blocks()) {
      BasicBlock *B = BP;
      const Instruction *Term = B->terminator();
      if (B->kind() != BlockKind::Normal || !Term ||
          Term->kind() != InstKind::Branch)
        continue;
      std::optional<Addr> T =
          Term->directTarget(B->insts().back().OrigAddr);
      if (!T || !R->contains(*T))
        continue;
      // The taken path: B -> (delay) -> target head.
      Edge *Final = nullptr;
      for (Edge *E : B->succ())
        if (E->kind() == EdgeKind::Taken)
          Final = E;
      if (Final && Final->dst()->kind() == BlockKind::DelaySlot)
        for (Edge *E : Final->dst()->succ())
          Final = E;
      if (!Final || Final->dst()->kind() != BlockKind::Normal)
        continue;
      // Any other normal block makes the landing site wrong.
      for (const auto &OP : G->blocks()) {
        if (OP->kind() == BlockKind::Normal && !OP->empty() &&
            OP->anchor() != Final->dst()->anchor()) {
          VerifierTestAccess::retarget(Final, OP);
          Corrupted = true;
          break;
        }
      }
      if (Corrupted)
        break;
    }
  }
  ASSERT_TRUE(Corrupted) << "no corruptible branch found";

  VerifyOptions Opts;
  Opts.CheckDelay = Opts.CheckScavenge = false;
  Opts.Threads = 1;
  DiagnosticReport Report = verifyIR(Exec, Opts);
  EXPECT_TRUE(Report.has(VerifyPass::CfgWellFormed, DiagSeverity::Error))
      << Report.renderText();
}

// Break succ/pred symmetry: forward and backward walks must disagree.
TEST(Verifier, Pass1FlagsAsymmetricEdge) {
  Executable::Options EOpts;
  EOpts.Threads = 1;
  Executable Exec(makeWorkload(3, 8), EOpts);
  ASSERT_TRUE(Exec.readContents().hasValue());

  bool Corrupted = false;
  for (const auto &R : Exec.routines()) {
    if (R->isData() || Corrupted)
      continue;
    Cfg *G = R->controlFlowGraph();
    if (!G || G->unsupported() || G->edges().empty())
      continue;
    for (const auto &EP : G->edges()) {
      Edge *E = EP;
      for (const auto &OP : G->blocks()) {
        if (OP != E->dst() && OP->kind() == BlockKind::Normal) {
          VerifierTestAccess::retargetAsymmetric(E, OP);
          Corrupted = true;
          break;
        }
      }
      if (Corrupted)
        break;
    }
  }
  ASSERT_TRUE(Corrupted);

  VerifyOptions Opts;
  Opts.CheckDelay = Opts.CheckScavenge = false;
  Opts.Threads = 1;
  DiagnosticReport Report = verifyIR(Exec, Opts);
  EXPECT_TRUE(Report.has(VerifyPass::CfgWellFormed, DiagSeverity::Error))
      << Report.renderText();
}

//===----------------------------------------------------------------------===//
// Pass 2: delay-slot
//===----------------------------------------------------------------------===//

// Flip the annul bit of a re-laid-out conditional branch in the emitted
// image: the delay instruction would execute under different conditions
// than in the original program.
TEST(Verifier, Pass2FlagsWrongAnnulBit) {
  EditedWorkload W = makeEditedWorkload(9, /*Instrument=*/false);
  const FlatAddrMap &Map = W.Exec->addrMap();

  bool Corrupted = false;
  for (const auto &R : W.Exec->routines()) {
    if (R->isData() || Corrupted)
      continue;
    Cfg *G = R->controlFlowGraph();
    if (!G || G->unsupported() || verify::isVerbatimRoutine(*W.Exec, *R))
      continue;
    for (const auto &BP : G->blocks()) {
      const Instruction *Term = BP->terminator();
      if (BP->kind() != BlockKind::Normal || !Term ||
          Term->kind() != InstKind::Branch || !Term->isConditional())
        continue;
      Addr A = BP->insts().back().OrigAddr;
      auto MappedA = Map.find(A);
      if (MappedA == Map.end())
        continue;
      std::optional<MachWord> Word = W.Edited.readWord(MappedA->second);
      ASSERT_TRUE(Word.has_value());
      ASSERT_TRUE(W.Edited.writeWord(MappedA->second, *Word ^ (1u << 29)));
      Corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(Corrupted) << "no conditional branch found to corrupt";

  VerifyOptions Opts;
  Opts.Threads = 1;
  DiagnosticReport Report = verifyEdit(*W.Exec, W.Edited, Opts);
  EXPECT_TRUE(Report.has(VerifyPass::DelaySlot, DiagSeverity::Error))
      << Report.renderText();
}

//===----------------------------------------------------------------------===//
// Pass 3: scavenge-audit
//===----------------------------------------------------------------------===//

SnippetPtr makeScratchSnippet(const TargetInfo &T) {
  std::vector<MachWord> Body;
  const unsigned RegA = 1;
  T.emitAddImm(RegA, RegA, 1, Body);
  return std::make_shared<CodeSnippet>(Body, RegSet{RegA});
}

// An understated live set lets the allocator scavenge a live register
// without a spill; the audit's independent truth must catch it.
TEST(Verifier, Pass3FlagsLiveRegisterScavenge) {
  const TargetInfo &T = sriscTarget();
  SnippetPtr Snippet = makeScratchSnippet(T);
  RegSet Understated; // the pipeline (wrongly) claims everything is dead
  RegSet Truth;
  for (unsigned Reg = 1; Reg < T.numRegisters(); ++Reg)
    Truth.insert(Reg);

  DiagnosticReport Report;
  auditScavengeSite(T, *Snippet, Understated, Truth, "f", 0, 0x1000, Report);
  EXPECT_TRUE(Report.has(VerifyPass::ScavengeAudit, DiagSeverity::Error))
      << Report.renderText();

  // Control: with a truthful live set the same site is clean.
  DiagnosticReport Clean;
  auditScavengeSite(T, *Snippet, Understated, Understated, "f", 0, 0x1000,
                    Clean);
  EXPECT_FALSE(Clean.hasErrors()) << Clean.renderText();
  EXPECT_GT(Clean.checksRun(), 0u);
}

// Clobbered-but-live condition codes without save/restore are an error.
TEST(Verifier, Pass3FlagsUnsavedConditionCodes) {
  const TargetInfo &T = sriscTarget();
  SnippetPtr Snippet = makeScratchSnippet(T);
  Snippet->setClobbersCC(true);
  RegSet Understated;
  RegSet Truth{RegIdCC};

  DiagnosticReport Report;
  auditScavengeSite(T, *Snippet, Understated, Truth, "f", 0, 0x1000, Report);
  EXPECT_TRUE(Report.has(VerifyPass::ScavengeAudit, DiagSeverity::Error))
      << Report.renderText();
}

// The RegAlloc negative path: a snippet that forbids spilling gets the
// structured NoDeadRegisters error when every register is live, instead of
// a silent spill.
TEST(Verifier, RequireDeadRegsFailsWithNoDeadRegisters) {
  const TargetInfo &T = sriscTarget();
  SnippetPtr Snippet = makeScratchSnippet(T);
  Snippet->setRequireDeadRegs(true);
  RegSet AllLive;
  for (unsigned Reg = 1; Reg < T.numRegisters(); ++Reg)
    AllLive.insert(Reg);

  Expected<SnippetInstance> Inst = instantiateSnippet(T, *Snippet, AllLive);
  ASSERT_TRUE(Inst.hasError());
  EXPECT_EQ(Inst.error().code(), ErrorCode::NoDeadRegisters);

  // Without the opt-in the same site spills and records what it spilled.
  Snippet->setRequireDeadRegs(false);
  Expected<SnippetInstance> Spilling =
      instantiateSnippet(T, *Snippet, AllLive);
  ASSERT_TRUE(Spilling.hasValue());
  EXPECT_GT(Spilling.value().SpillCount, 0u);
  EXPECT_EQ(Spilling.value().Granted - Spilling.value().Spilled, RegSet());
}

//===----------------------------------------------------------------------===//
// Pass 4: layout-consistency
//===----------------------------------------------------------------------===//

// Shift every dispatch-table entry by 4: control would enter each case one
// instruction late.
TEST(Verifier, Pass4FlagsOffByFourDispatchEntry) {
  EditedWorkload W =
      makeEditedWorkload(13, /*Instrument=*/false, /*SwitchPercent=*/100);

  unsigned Shifted = 0;
  for (const auto &R : W.Exec->routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (!G || G->unsupported())
      continue;
    for (const IndirectSite &Site : G->indirectSites()) {
      if (Site.Resolution.K != IndirectResolution::Kind::DispatchTable)
        continue;
      const SxfSegment *Seg = W.Exec->image().segmentContaining(
          Site.Resolution.TableAddr);
      if (!Seg || Seg->Kind == SegKind::Text)
        continue;
      for (size_t I = 0; I < Site.Resolution.Targets.size(); ++I) {
        Addr EntryAddr =
            Site.Resolution.TableAddr + 4 * static_cast<Addr>(I);
        std::optional<MachWord> Entry = W.Edited.readWord(EntryAddr);
        if (!Entry)
          continue;
        ASSERT_TRUE(W.Edited.writeWord(EntryAddr, *Entry + 4));
        ++Shifted;
      }
    }
  }
  ASSERT_GT(Shifted, 0u) << "workload produced no rewritable dispatch table";

  VerifyOptions Opts;
  Opts.Threads = 1;
  Opts.CheckTranslation = false; // isolate the layout pass
  DiagnosticReport Report = verifyEdit(*W.Exec, W.Edited, Opts);
  EXPECT_TRUE(Report.has(VerifyPass::LayoutConsistency, DiagSeverity::Error))
      << Report.renderText();
}

//===----------------------------------------------------------------------===//
// Pass 5: translation-validation
//===----------------------------------------------------------------------===//

// Bump a relocated branch's displacement by one instruction: the emitted
// image delivers control somewhere the edited CFG never intended.
TEST(Verifier, Pass5FlagsCorruptedBranchDisplacement) {
  EditedWorkload W = makeEditedWorkload(17, /*Instrument=*/false);
  const FlatAddrMap &Map = W.Exec->addrMap();

  bool Corrupted = false;
  for (const auto &R : W.Exec->routines()) {
    if (R->isData() || Corrupted)
      continue;
    Cfg *G = R->controlFlowGraph();
    if (!G || G->unsupported() ||
        verify::isVerbatimRoutine(*W.Exec, *R) || !validatableRoutine(*G))
      continue;
    std::set<const BasicBlock *> Reachable = reachableBlocks(*G);
    for (const auto &BP : G->blocks()) {
      const Instruction *Term = BP->terminator();
      if (BP->kind() != BlockKind::Normal || !Term ||
          Term->kind() != InstKind::Branch || !Reachable.count(BP))
        continue;
      Addr A = BP->insts().back().OrigAddr;
      std::optional<Addr> T = Term->directTarget(A);
      if (!T || !R->contains(*T) || !Map.count(A) || !Map.count(*T))
        continue;
      Addr MappedA = Map.at(A);
      std::optional<MachWord> Word = W.Edited.readWord(MappedA);
      ASSERT_TRUE(Word.has_value());
      MachWord Bad = (*Word & ~0x3FFFFFu) |
                     (static_cast<uint32_t>(srisc::fieldDisp22(*Word) + 1) &
                      0x3FFFFFu);
      ASSERT_TRUE(W.Edited.writeWord(MappedA, Bad));
      Corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(Corrupted) << "no suitable branch found";

  VerifyOptions Opts;
  Opts.Threads = 1;
  DiagnosticReport Report = verifyEdit(*W.Exec, W.Edited, Opts);
  EXPECT_TRUE(
      Report.has(VerifyPass::TranslationValidation, DiagSeverity::Error))
      << Report.renderText();
}

//===----------------------------------------------------------------------===//
// The Options::Verify gate
//===----------------------------------------------------------------------===//

// The opt-in gate runs inside writeEditedExecutable and passes clean edits
// through unchanged.
TEST(Verifier, WriteGatePassesCleanEdit) {
  Executable::Options Opts;
  Opts.Threads = 1;
  Opts.Verify = true;
  Executable Exec(makeWorkload(29, 8), Opts);
  Qpt2Profiler Profiler(Exec);
  Profiler.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  EXPECT_TRUE(Edited.hasValue())
      << (Edited.hasError() ? Edited.error().describe() : "");
}

// verifyEdit before writeEditedExecutable is a diagnosable misuse, not UB.
TEST(Verifier, VerifyEditWithoutWriteReportsImageLoadError) {
  Executable::Options Opts;
  Opts.Threads = 1;
  Executable Exec(makeWorkload(29, 4), Opts);
  ASSERT_TRUE(Exec.readContents().hasValue());
  SxfFile NotWritten = Exec.image();
  DiagnosticReport Report = verifyEdit(Exec, NotWritten);
  EXPECT_TRUE(Report.has(VerifyPass::ImageLoad, DiagSeverity::Error));
}

} // namespace
