//===- tests/CoreTest.cpp - EEL core: analysis tests ------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests EEL's analysis layers: instruction abstraction and flyweight pool,
/// symbol-table refinement (§3.1), CFG construction and delay-slot
/// normalization (§3.3, Figure 3), dominators/loops/liveness, and indirect
/// jump resolution by slicing. Editing end-to-end is covered in EditTest.
///
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "core/Dominators.h"
#include "core/Executable.h"
#include "core/Liveness.h"
#include "core/Slice.h"
#include "isa/SriscEncoding.h"

#include <gtest/gtest.h>

using namespace eel;

namespace {

Executable makeExec(TargetArch Arch, const std::string &Source) {
  return Executable(assembleOrDie(Arch, Source));
}

/// Counts blocks of a kind.
unsigned countBlocks(const Cfg *G, BlockKind K) {
  unsigned N = 0;
  for (const auto &B : G->blocks())
    if (B->kind() == K)
      ++N;
  return N;
}

} // namespace

// --- Instruction abstraction -------------------------------------------------

TEST(InstructionTest, FactoryResolvesJmplOverloads) {
  using namespace srisc;
  const TargetInfo &T = sriscTarget();
  // jmpl with rd = %o7: an indirect call.
  auto ICall = makeInstruction(T, encodeJmplImm(15, 9, 0));
  EXPECT_EQ(ICall->kind(), InstKind::IndirectCall);
  EXPECT_TRUE(isa<IndirectInst>(ICall.get()));
  EXPECT_TRUE(isa<ControlInst>(ICall.get()));
  // jmpl %o7+8, %g0: a return.
  auto Ret = makeInstruction(T, encodeJmplImm(0, 15, 8));
  EXPECT_EQ(Ret->kind(), InstKind::Return);
  // jmpl %o2+0, %g0: a plain indirect jump.
  auto Jump = makeInstruction(T, encodeJmplImm(0, 10, 0));
  EXPECT_EQ(Jump->kind(), InstKind::IndirectJump);
  // Dyn-cast dispatch works across the hierarchy.
  EXPECT_NE(dyn_cast<IndirectJumpInst>(Jump.get()), nullptr);
  EXPECT_EQ(dyn_cast<ReturnInst>(Jump.get()), nullptr);
}

TEST(InstructionTest, FlyweightSharing) {
  using namespace srisc;
  InstructionPool Pool(sriscTarget());
  const Instruction *A = Pool.get(encodeArithReg(Op3Add, 1, 2, 3));
  const Instruction *B = Pool.get(encodeArithReg(Op3Add, 1, 2, 3));
  const Instruction *C = Pool.get(encodeArithReg(Op3Add, 1, 2, 4));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Pool.requested(), 3u);
  EXPECT_EQ(Pool.allocated(), 2u);
}

// --- Symbol refinement (§3.1) ---------------------------------------------------

TEST(SymbolRefine, BasicRoutines) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
.global main
main:
  call helper
  nop
  mov 0, %o0
  sys 0
helper:
  ret
  nop
)");
  Exec.readContents();
  ASSERT_EQ(Exec.routines().size(), 2u);
  EXPECT_EQ(Exec.routines()[0]->name(), "main");
  EXPECT_EQ(Exec.routines()[1]->name(), "helper");
  EXPECT_EQ(Exec.routines()[0]->endAddr(),
            Exec.routines()[1]->startAddr());
  EXPECT_TRUE(Exec.hiddenRoutines().empty());
}

TEST(SymbolRefine, DropsInternalDebugAndTempLabels) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  cmp %o0, 0
  be skip_it
  nop
  mov 1, %o1
skip_it:
  sys 0
.debuglabel dbg_here
.templabel Ltmp42
  ret
  nop
)");
  // `skip_it:` is a plain label the assembler emits with Routine kind (the
  // symbol table cannot be trusted!). It is a branch target from the
  // preceding code, so stage 1 must drop it rather than split the routine;
  // the debug/temp labels are dropped by kind.
  Exec.readContents();
  ASSERT_EQ(Exec.routines().size(), 1u);
  EXPECT_EQ(Exec.routines()[0]->name(), "main");
}

TEST(SymbolRefine, HiddenRoutineDiscovery) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  set fptr, %o1
  ld [%o1 + 0], %o2
  jmpl %o2 + 0, %o7
  nop
  sys 0
  ret
  nop
.hidden
secret:
  mov 5, %o0
  ret
  nop
.data
.align 4
fptr: .word secret
)");
  Exec.readContents();
  std::vector<Routine *> Hidden = Exec.hiddenRoutines();
  ASSERT_EQ(Hidden.size(), 1u);
  Routine *Main = Exec.findRoutine("main");
  ASSERT_NE(Main, nullptr);
  // The hidden routine starts right after main's reachable code.
  EXPECT_EQ(Hidden[0]->startAddr(), Main->endAddr());
  EXPECT_FALSE(Hidden[0]->isData());
}

TEST(SymbolRefine, DataTableWithRoutineSymbol) {
  // A data table in the text segment whose symbol is indistinguishable
  // from a routine's: the classic §3.1 pathology. The words are invalid
  // SRISC encodings, so stage 4 classifies the extent as data.
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  sys 0
  ret
  nop
lookup_table:
.word 0, 0, 0, 0
)");
  Exec.readContents();
  Routine *Table = Exec.findRoutine("lookup_table");
  ASSERT_NE(Table, nullptr);
  EXPECT_TRUE(Table->isData());
  Routine *Main = Exec.findRoutine("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_FALSE(Main->isData());
}

TEST(SymbolRefine, MultipleEntryPoints) {
  // A Fortran-ENTRY-style second entry: another routine calls into the
  // middle of `compute`; stage 3 records the extra entry point.
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  call compute_alt
  nop
  sys 0
  ret
  nop
compute:
  mov 1, %o0
.hidden
compute_alt:
  add %o0, 2, %o0
  ret
  nop
)");
  Exec.readContents();
  Routine *Compute = Exec.findRoutine("compute");
  ASSERT_NE(Compute, nullptr);
  ASSERT_EQ(Compute->entryPoints().size(), 2u);
  EXPECT_EQ(Compute->entryPoints()[1], Compute->startAddr() + 4);
}

TEST(SymbolRefine, StrippedExecutable) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  call f
  nop
  sys 0
  ret
  nop
f:
  ret
  nop
)");
  File.strip();
  Executable Exec((SxfFile(File)));
  Exec.readContents();
  // Stage 2: entry point + call targets seed the routine set.
  ASSERT_EQ(Exec.routines().size(), 2u);
  EXPECT_EQ(Exec.routines()[1]->startAddr(),
            Exec.routines()[0]->endAddr());
}

// --- CFG construction (§3.3) ------------------------------------------------------

TEST(CfgTest, StraightLine) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  mov 1, %o0
  add %o0, 2, %o0
  sys 0
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_TRUE(G->complete());
  // One body block + ret's delay block + entry + exit.
  EXPECT_EQ(countBlocks(G, BlockKind::Normal), 1u);
  EXPECT_EQ(countBlocks(G, BlockKind::DelaySlot), 1u);
  EXPECT_EQ(countBlocks(G, BlockKind::Entry), 1u);
  EXPECT_EQ(countBlocks(G, BlockKind::Exit), 1u);
}

TEST(CfgTest, Figure3AnnulledBranchNormalization) {
  // The paper's Figure 3: an add in the delay slot of an annulled
  // conditional branch appears along only the taken edge.
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  cmp %o0, 0
  bne,a .Ldone
  add %l1, %l2, %l1    ! executes only if taken
  mov 9, %o3
.Ldone:
  sys 0
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  BasicBlock *BranchBlock = G->blockAt(Exec.textBase());
  ASSERT_NE(BranchBlock, nullptr);
  ASSERT_EQ(BranchBlock->succ().size(), 2u);
  const Edge *Taken = nullptr, *NotTaken = nullptr;
  for (const Edge *E : BranchBlock->succ()) {
    if (E->kind() == EdgeKind::Taken)
      Taken = E;
    if (E->kind() == EdgeKind::NotTaken)
      NotTaken = E;
  }
  ASSERT_NE(Taken, nullptr);
  ASSERT_NE(NotTaken, nullptr);
  // Taken edge goes through a delay-slot block holding the add.
  EXPECT_EQ(Taken->dst()->kind(), BlockKind::DelaySlot);
  EXPECT_EQ(Taken->dst()->insts()[0].Inst->dataOp().Kind, DataOpKind::Add);
  // Not-taken edge goes directly to the fallthrough block: the add is NOT
  // on that path.
  EXPECT_EQ(NotTaken->dst()->kind(), BlockKind::Normal);
  EXPECT_EQ(NotTaken->dst()->anchor(), Exec.textBase() + 12);
}

TEST(CfgTest, NonAnnulledBranchDuplicatesDelay) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  cmp %o0, 0
  bne .Ldone
  add %l1, %l2, %l1    ! executes on both paths
  mov 9, %o3
.Ldone:
  sys 0
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  BasicBlock *BranchBlock = G->blockAt(Exec.textBase());
  ASSERT_NE(BranchBlock, nullptr);
  unsigned DelayCopies = 0;
  for (const Edge *E : BranchBlock->succ())
    if (E->dst()->kind() == BlockKind::DelaySlot)
      ++DelayCopies;
  EXPECT_EQ(DelayCopies, 2u); // duplicated along both edges
}

TEST(CfgTest, CallSurrogateChain) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  call f
  mov 1, %o0
  sys 0
  ret
  nop
f:
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_EQ(countBlocks(G, BlockKind::CallSurrogate), 1u);
  BasicBlock *CallBlock = G->blockAt(Exec.textBase());
  ASSERT_NE(CallBlock, nullptr);
  const Edge *ToDelay = CallBlock->succ()[0];
  EXPECT_EQ(ToDelay->dst()->kind(), BlockKind::DelaySlot);
  EXPECT_FALSE(ToDelay->dst()->editable()); // call delay is uneditable
  const Edge *ToSurrogate = ToDelay->dst()->succ()[0];
  ASSERT_EQ(ToSurrogate->dst()->kind(), BlockKind::CallSurrogate);
  EXPECT_TRUE(ToSurrogate->dst()->empty()); // zero-length
  Routine *F = Exec.findRoutine("f");
  EXPECT_EQ(ToSurrogate->dst()->callTarget(),
            std::optional<Addr>(F->startAddr()));
}

TEST(CfgTest, DispatchTableResolved) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  cmp %o1, 2
  bgu .Ldefault
  nop
  sll %o1, 2, %o2
  set table, %o3
  ld [%o3 + %o2], %o4
  jmpl %o4 + 0, %g0
  nop
.Lcase0:
  mov 10, %o0
  sys 0
.Lcase1:
  mov 20, %o0
  sys 0
.Lcase2:
  mov 30, %o0
  sys 0
.Ldefault:
  mov 99, %o0
  sys 0
  ret
  nop
.data
.align 4
table: .word .Lcase0, .Lcase1, .Lcase2
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_TRUE(G->complete());
  ASSERT_EQ(G->indirectSites().size(), 1u);
  const IndirectSite &Site = G->indirectSites()[0];
  EXPECT_EQ(Site.Resolution.K, IndirectResolution::Kind::DispatchTable);
  EXPECT_EQ(Site.Resolution.EntryCount, 3u);
  EXPECT_TRUE(Site.Resolution.BoundsProven);
  EXPECT_EQ(Site.Resolution.Targets.size(), 3u);
}

TEST(CfgTest, UnanalyzableTailCall) {
  // The SunPro idiom: pop the frame, then jump through a pointer loaded
  // from a function-pointer cell — §3.3's unanalyzable case.
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  add %sp, -96, %sp
  set fptr, %o1
  ld [%o1 + 0], %o2
  add %sp, 96, %sp      ! pop frame
  jmpl %o2 + 0, %g0     ! tail call
  nop
target:
  mov 0, %o0
  sys 0
.data
.align 4
fptr: .word target
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_FALSE(G->complete());
  EXPECT_FALSE(G->unsupported()); // still editable via translation
  ASSERT_EQ(G->indirectSites().size(), 1u);
  const IndirectResolution &Res = G->indirectSites()[0].Resolution;
  // The slice finds the cell; it is still not a static target.
  EXPECT_EQ(Res.K, IndirectResolution::Kind::CellPointer);
  Addr FptrAddr = Exec.image().findSymbol("fptr")->Value;
  EXPECT_EQ(Res.CellAddr, FptrAddr);
}

TEST(CfgTest, LiteralIndirectJump) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  set .Lthere, %o2
  jmpl %o2 + 0, %g0
  nop
  mov 1, %o0
  sys 0
.Lthere:
  mov 0, %o0
  sys 0
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_TRUE(G->complete());
  ASSERT_EQ(G->indirectSites().size(), 1u);
  EXPECT_EQ(G->indirectSites()[0].Resolution.K,
            IndirectResolution::Kind::Literal);
}

TEST(CfgTest, UneditableFraction) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  call f
  nop
  cmp %o0, 3
  ble .Lx
  nop
  mov 1, %o1
.Lx:
  sys 0
  ret
  nop
f:
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  Cfg::Stats S = G->stats();
  EXPECT_GT(S.UneditableBlocks, 0u);
  EXPECT_GT(S.UneditableEdges, 0u);
  EXPECT_LT(S.UneditableBlocks, G->blocks().size());
}

TEST(CfgTest, MriscCfg) {
  Executable Exec = makeExec(TargetArch::Mrisc, R"(
.text
main:
  li $t0, 3
.Lloop:
  addi $t0, $t0, -1
  bgtz $t0, .Lloop
  nop
  jal f
  nop
  li $v0, 0
  syscall
  jr $ra
  nop
f:
  jr $ra
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  EXPECT_TRUE(G->complete());
  EXPECT_EQ(countBlocks(G, BlockKind::CallSurrogate), 1u);
  // bgtz is a non-annulled conditional: its delay nop is duplicated.
  unsigned DelayBlocks = countBlocks(G, BlockKind::DelaySlot);
  EXPECT_GE(DelayBlocks, 3u); // 2 branch copies + jal + jr(s)
}

// --- Dominators, loops, liveness ----------------------------------------------------

TEST(AnalysisTest, DominatorsAndLoops) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  mov 10, %o1
.Lloop:
  sub %o1, 1, %o1
  cmp %o1, 0
  bg .Lloop
  nop
  sys 0
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  Dominators Doms(*G);
  BasicBlock *Head = G->blockAt(Exec.textBase());
  BasicBlock *LoopBody = G->blockAt(Exec.textBase() + 4);
  ASSERT_NE(Head, nullptr);
  ASSERT_NE(LoopBody, nullptr);
  EXPECT_TRUE(Doms.dominates(Head, LoopBody));
  EXPECT_FALSE(Doms.dominates(LoopBody, Head));
  EXPECT_TRUE(Doms.dominates(LoopBody, LoopBody));

  std::vector<NaturalLoop> Loops = findNaturalLoops(*G, Doms);
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0].Header, LoopBody);
  EXPECT_GE(Loops[0].Blocks.size(), 2u);
}

TEST(AnalysisTest, LivenessBasics) {
  // %o4/%o5/%o3 are caller-saved and not syscall argument registers, so
  // their liveness is governed purely by the visible code.
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  mov 1, %o4
  mov 2, %o5
  add %o4, %o5, %o3
  mov %o3, %o0
  sys 0
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  Liveness Live(*G);
  BasicBlock *Body = G->blockAt(Exec.textBase());
  ASSERT_NE(Body, nullptr);
  // Before the add: o4 and o5 are live; o3 is not.
  RegSet AtAdd = Live.liveBefore(Body, 2);
  EXPECT_TRUE(AtAdd.contains(12));
  EXPECT_TRUE(AtAdd.contains(13));
  EXPECT_FALSE(AtAdd.contains(11));
  // After the add: o3 live, o4/o5 dead.
  RegSet AfterAdd = Live.liveAfter(Body, 2);
  EXPECT_TRUE(AfterAdd.contains(11));
  EXPECT_FALSE(AfterAdd.contains(12));
  // The syscall reads the conventional argument registers %o0-%o2.
  EXPECT_TRUE(AtAdd.contains(9));
  // Condition codes: dead here (no branch consumes them).
  EXPECT_FALSE(AtAdd.contains(RegIdCC));
}

TEST(AnalysisTest, LivenessCCAndCalls) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  cmp %o1, 5
  call f
  nop
  be .Ly
  nop
  mov 1, %o2
.Ly:
  sys 0
  ret
  nop
f:
  ret
  nop
)");
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  Liveness Live(*G);
  BasicBlock *First = G->blockAt(Exec.textBase());
  ASSERT_NE(First, nullptr);
  // After the cmp (before the call): CC is live — it is read by `be` after
  // the call returns. (SRISC calls preserve CC in this world? No: CC is
  // caller-saved; the branch-after-call reads whatever the callee left, so
  // liveness flows CC through the surrogate only if not clobbered — our
  // conventions mark CC caller-saved, so it is killed at the call.)
  RegSet AfterCmp = Live.liveAfter(First, 0);
  EXPECT_FALSE(AfterCmp.contains(RegIdCC));
}

// --- Backward slicing --------------------------------------------------------------

TEST(SliceTest, ConstantMaterialization) {
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  sethi 0x123, %o1
  or %o1, 0x45, %o1
  jmpl %o1 + 0, %g0
  nop
  ret
  nop
)");
  Exec.readContents();
  Routine *Main = Exec.findRoutine("main");
  Addr JumpAddr = Exec.textBase() + 8;
  SymValue V = backwardSlice(Exec, *Main, JumpAddr, 9);
  EXPECT_EQ(V.K, SymValue::Kind::Const);
  EXPECT_EQ(V.Const, (0x123u << 10) | 0x45u);
}

TEST(SliceTest, StopsAtJoinPoints) {
  // The value of %o1 at the jump depends on the path taken; the slice must
  // give up rather than report a wrong constant.
  Executable Exec = makeExec(TargetArch::Srisc, R"(
.text
main:
  cmp %o0, 0
  be .Lelse
  nop
  set 0x1000, %o1
.Ljoin:
  jmpl %o1 + 0, %g0
  nop
.Lelse:
  set 0x2000, %o1
  ba .Ljoin
  nop
  ret
  nop
)");
  Exec.readContents();
  Routine *Main = Exec.findRoutine("main");
  Addr JoinJump = Exec.textBase() + 24;
  SymValue V = backwardSlice(Exec, *Main, JoinJump, 9);
  // Walking back from the jump crosses the .Ljoin label (a join point)
  // before... actually the set is immediately before the join label, so
  // the definition found is path-dependent. Conservatively Unknown OR the
  // fallthrough path's constant is acceptable only if no join intervenes;
  // .Ljoin IS a join (branch target), so the slice must be Unknown.
  EXPECT_EQ(V.K, SymValue::Kind::Unknown);
}
