//===- tests/EditTest.cpp - EEL core: end-to-end editing tests --------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The editing pipeline verified end-to-end: assemble a program, run it in
/// the VM for ground truth, edit it (snippets before/after instructions,
/// along edges, deletions, high register pressure, dispatch tables,
/// run-time translation), write the edited executable, run it again, and
/// require identical observable behaviour plus correct instrumentation
/// results.
///
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "core/Executable.h"
#include "core/Liveness.h"
#include "isa/SriscEncoding.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace eel;

namespace {

/// A snippet incrementing a 32-bit counter in memory, built from the
/// target's codegen helpers with placeholder registers 1 and 2 — the
/// Figure 5 snippet, machine-independently.
SnippetPtr makeCounterSnippet(const TargetInfo &T, Addr CounterAddr) {
  std::vector<MachWord> Body;
  const unsigned RegA = 1, RegB = 2;
  T.emitLoadConst(RegA, CounterAddr, Body);
  T.emitLoadWord(RegB, RegA, 0, Body);
  T.emitAddImm(RegB, RegB, 1, Body);
  T.emitStoreWord(RegB, RegA, 0, Body);
  return std::make_shared<CodeSnippet>(Body, RegSet{RegA, RegB});
}

struct EditedRun {
  RunResult Original;
  RunResult Edited;
  SxfFile EditedFile;
};

/// Writes the edited executable and runs both versions.
EditedRun runBoth(Executable &Exec) {
  EditedRun R;
  R.Original = runToCompletion(Exec.image());
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  if (Edited.hasError())
    ADD_FAILURE() << "writeEditedExecutable: " << Edited.error().message();
  R.EditedFile = Edited.takeValue();
  R.Edited = runToCompletion(R.EditedFile);
  return R;
}

void expectSameBehavior(const EditedRun &R) {
  EXPECT_EQ(static_cast<int>(R.Original.Reason),
            static_cast<int>(R.Edited.Reason));
  EXPECT_EQ(R.Original.ExitCode, R.Edited.ExitCode);
  EXPECT_EQ(R.Original.Output, R.Edited.Output);
}

/// Reads a counter out of the edited program's final memory.
uint32_t counterAfterRun(const SxfFile &File, Addr CounterAddr,
                         int *ExitCode = nullptr) {
  Machine M(File);
  RunResult R = M.run();
  EXPECT_EQ(R.Reason, StopReason::Exited);
  if (ExitCode)
    *ExitCode = R.ExitCode;
  return M.memory().readWord(CounterAddr);
}

const char *LoopProgram = R"(
.text
main:
  mov 0, %o4
  mov 1, %o5
.Lloop:
  add %o4, %o5, %o4
  add %o5, 1, %o5
  cmp %o5, 10
  ble .Lloop
  nop
  mov %o4, %o0
  sys 0
  ret
  nop
)";

} // namespace

// --- Identity rewrites: no edits, identical behaviour ------------------------------

TEST(IdentityRewrite, LoopProgram) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, LoopProgram));
  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 55);
}

TEST(IdentityRewrite, CallsAndAnnulledBranches) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  call twice
  mov 5, %o0
  cmp %o0, 10
  be,a .Lok
  add %o0, 1, %o0      ! annulled delay: executes only if equal
  mov 0, %o0
.Lok:
  sys 0
  ret
  nop
twice:
  ret
  add %o0, %o0, %o0
)"));
  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 11);
}

TEST(IdentityRewrite, DispatchTable) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set selector, %o5
  ld [%o5 + 0], %o1     ! dynamic selector: the slicer cannot fold it
  cmp %o1, 2
  bgu .Ldefault
  nop
  sll %o1, 2, %o2
  set table, %o3
  ld [%o3 + %o2], %o4
  jmpl %o4 + 0, %g0
  nop
.Lcase0:
  mov 10, %o0
  sys 0
.Lcase1:
  mov 20, %o0
  sys 0
.Lcase2:
  mov 30, %o0
  sys 0
.Ldefault:
  mov 99, %o0
  sys 0
  ret
  nop
.data
.align 4
selector: .word 1
table: .word .Lcase0, .Lcase1, .Lcase2
)"));
  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 20);
  EXPECT_EQ(Exec.editStats().DispatchEntriesRewritten, 3u);
}

TEST(IdentityRewrite, FunctionPointerThroughData) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set fptr, %o1
  ld [%o1 + 0], %o2
  jmpl %o2 + 0, %o7     ! indirect call through a data cell
  nop
  sys 0
  ret
  nop
.hidden
secret:
  ret
  mov 42, %o0
.data
.align 4
fptr: .word secret
)"));
  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 42);
  EXPECT_GE(Exec.editStats().DataPointersRewritten, 1u);
}

TEST(IdentityRewrite, MriscPrograms) {
  Executable Exec(assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  li $t0, 5
  li $a0, 0
.Lloop:
  add $a0, $a0, $t0
  addi $t0, $t0, -1
  bgtz $t0, .Lloop
  nop
  jal f
  nop
  li $v0, 0
  syscall
  jr $ra
  nop
f:
  addi $a0, $a0, 100
  jr $ra
  nop
)"));
  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 115);
}

// --- Snippet insertion ------------------------------------------------------------

TEST(SnippetEdit, CountBeforeInstruction) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, LoopProgram));
  Exec.readContents();
  Addr Counter = Exec.appendData(4, 4, "counter");
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  // Count executions of the loop body's first instruction.
  BasicBlock *LoopHead = G->blockAt(Exec.textBase() + 8);
  ASSERT_NE(LoopHead, nullptr);
  G->addCodeBefore(LoopHead, 0, makeCounterSnippet(Exec.target(), Counter));

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(counterAfterRun(R.EditedFile, Counter), 10u);
}

TEST(SnippetEdit, CountAlongBranchEdges) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, LoopProgram));
  Exec.readContents();
  Addr TakenCounter = Exec.appendData(4, 4, "taken");
  Addr FallCounter = Exec.appendData(4, 4, "fall");
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  // The ble's block: find its taken / not-taken edges.
  BasicBlock *BranchBlock = nullptr;
  for (const auto &B : G->blocks())
    if (B->kind() == BlockKind::Normal && B->terminator() &&
        B->terminator()->kind() == InstKind::Branch)
      BranchBlock = B;
  ASSERT_NE(BranchBlock, nullptr);
  for (Edge *E : BranchBlock->succ()) {
    if (E->kind() == EdgeKind::Taken)
      E->addCodeAlong(makeCounterSnippet(Exec.target(), TakenCounter));
    if (E->kind() == EdgeKind::NotTaken)
      E->addCodeAlong(makeCounterSnippet(Exec.target(), FallCounter));
  }

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  // Loop iterates o5 = 1..10: ble taken 9 times, falls through once.
  EXPECT_EQ(counterAfterRun(R.EditedFile, TakenCounter), 9u);
  EXPECT_EQ(counterAfterRun(R.EditedFile, FallCounter), 1u);
}

TEST(SnippetEdit, CcLivenessSaveRestore) {
  // The snippet sits between the cmp and the branch that consumes the
  // condition codes, and declares it clobbers them: EEL must wrap it with
  // CC save/restore (the Blizzard-S situation from §5).
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 7, %o4
  cmp %o4, 7
  mov 0, %o5          ! insertion point: CC live here
  be .Leq
  nop
  mov 1, %o0
  sys 0
.Leq:
  mov 0, %o0
  sys 0
  ret
  nop
)"));
  Exec.readContents();
  Addr Counter = Exec.appendData(4, 4, "counter");
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  BasicBlock *Body = G->blockAt(Exec.textBase());
  ASSERT_NE(Body, nullptr);
  // A CC-clobbering counting snippet (uses subcc to do its addition).
  std::vector<MachWord> Words;
  const TargetInfo &T = Exec.target();
  T.emitLoadConst(1, Counter, Words);
  T.emitLoadWord(2, 1, 0, Words);
  using namespace srisc;
  Words.push_back(encodeArithImm(Op3AddCC, 2, 2, 1)); // addcc: clobbers CC
  T.emitStoreWord(2, 1, 0, Words);
  auto Snip = std::make_shared<CodeSnippet>(Words, RegSet{1, 2});
  Snip->setClobbersCC(true);
  G->addCodeBefore(Body, 2, Snip);

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 0); // branch outcome preserved
  EXPECT_EQ(counterAfterRun(R.EditedFile, Counter), 1u);
  EXPECT_EQ(Exec.editStats().SnippetCCSaves, 1u);
}

TEST(SnippetEdit, HighRegisterPressureSpills) {
  // Every scavengeable register is live at the insertion point, so the
  // snippet must spill.
  std::string Source = ".text\nmain:\n";
  // Make registers 1..13 and 16..31 live across the insertion point by
  // defining them before and using them after.
  for (unsigned Reg = 1; Reg < 32; ++Reg) {
    if (Reg == 14 || Reg == 15 || Reg == 30)
      continue; // sp, link, fp
    Source += "  mov " + std::to_string(Reg) + ", %r" +
              std::to_string(Reg) + "\n";
  }
  Source += "  mov 0, %o0\n"; // insertion point target
  for (unsigned Reg = 1; Reg < 32; ++Reg) {
    if (Reg == 14 || Reg == 15 || Reg == 30 || Reg == 8)
      continue;
    Source += "  add %o0, %r" + std::to_string(Reg) + ", %o0\n";
  }
  Source += "  sys 0\n  ret\n  nop\n";
  Executable Exec(assembleOrDie(TargetArch::Srisc, Source));
  Exec.readContents();
  Addr Counter = Exec.appendData(4, 4, "counter");
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  BasicBlock *Body = G->blockAt(Exec.textBase());
  ASSERT_NE(Body, nullptr);
  // Find the "mov 0, %o0" instruction index (28 defs before it).
  unsigned InsertAt = 28;
  ASSERT_EQ(Body->insts()[InsertAt].Inst->dataOp().Kind, DataOpKind::Or);
  G->addCodeBefore(Body, InsertAt,
                   makeCounterSnippet(Exec.target(), Counter));

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(counterAfterRun(R.EditedFile, Counter), 1u);
  EXPECT_GT(Exec.editStats().SnippetSpills, 0u);
}

TEST(SnippetEdit, DeleteInstruction) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 5, %o0
  add %o0, 100, %o0   ! to be deleted
  sys 0
  ret
  nop
)"));
  Exec.readContents();
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  BasicBlock *Body = G->blockAt(Exec.textBase());
  ASSERT_NE(Body, nullptr);
  G->deleteInst(Body, 1);
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  RunResult R = runToCompletion(Edited.value());
  EXPECT_EQ(R.ExitCode, 5); // the +100 never happens
}

TEST(SnippetEdit, TaggedSnippetAndCallback) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, LoopProgram));
  Exec.readContents();
  Addr Counter = Exec.appendData(4, 4, "counter");
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  BasicBlock *Body = G->blockAt(Exec.textBase());
  ASSERT_NE(Body, nullptr);

  // Build the snippet with a placeholder constant, then patch the counter
  // address through findInst (the Figure 5 pattern), and observe the
  // callback's final address and register assignment.
  const TargetInfo &T = Exec.target();
  std::vector<MachWord> Words;
  T.emitLoadConst(1, 0x12345678u, Words); // sethi+or pair to patch
  ASSERT_EQ(Words.size(), 2u);
  T.emitLoadWord(2, 1, 0, Words);
  T.emitAddImm(2, 2, 1, Words);
  T.emitStoreWord(2, 1, 0, Words);
  auto Snip = std::make_shared<TaggedCodeSnippet>(Words, RegSet{1, 2});
  {
    using namespace srisc;
    Snip->findInst(0) = encodeSethi(1, Counter >> 10);
    Snip->findInst(1) =
        encodeArithImm(Op3Or, 1, 1, static_cast<int32_t>(Counter & 0x3FF));
  }
  bool CallbackRan = false;
  Addr CallbackAddr = 0;
  Snip->setCallback([&](SnippetInstance &Inst) {
    CallbackRan = true;
    CallbackAddr = Inst.StartAddr;
    // Placeholders were rebound to real registers.
    EXPECT_NE(Inst.RegMap[1], 1u);
  });
  G->addCodeBefore(Body, 0, Snip);

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_TRUE(CallbackRan);
  EXPECT_GE(CallbackAddr, Exec.textBase());
  EXPECT_EQ(counterAfterRun(R.EditedFile, Counter), 1u);
}

// --- Run-time translation -----------------------------------------------------------

TEST(Translation, TaggedPointerJump) {
  // The program obfuscates a code pointer (stores target+4) so neither
  // slicing nor data rewriting can fix it statically; only the run-time
  // translator can keep the edited program working.
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set fptr, %o1
  ld [%o1 + 0], %o2
  sub %o2, 1, %o2      ! strip the tag: a value the slice cannot follow
  jmpl %o2 + 0, %g0
  nop
.Lnever:
  mov 1, %o0
  sys 0
landing:
  mov 77, %o0
  sys 0
  ret
  nop
.data
.align 4
fptr: .word landing + 1
)"));
  Exec.readContents();
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  EXPECT_FALSE(G->complete());

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 77);
  EXPECT_GE(Exec.editStats().TranslationSites, 1u);
  EXPECT_GT(Exec.editStats().TranslationEntries, 0u);
}

TEST(Translation, EditedProgramWithTranslation) {
  // Combine: instrument a program whose control flow needs translation.
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set fptr, %o1
  ld [%o1 + 0], %o2
  sub %o2, 1, %o2
  jmpl %o2 + 0, %g0
  nop
landing:
  mov 3, %o0
  sys 0
  ret
  nop
.data
.align 4
fptr: .word landing + 1
)"));
  Exec.readContents();
  Addr Counter = Exec.appendData(4, 4, "counter");
  // `landing` carries a symbol, so it is its own routine; instrument it.
  Routine *LandingR = Exec.findRoutine("landing");
  ASSERT_NE(LandingR, nullptr);
  Cfg *G = LandingR->controlFlowGraph();
  BasicBlock *Landing = G->blockAt(LandingR->startAddr());
  ASSERT_NE(Landing, nullptr);
  G->addCodeBefore(Landing, 0, makeCounterSnippet(Exec.target(), Counter));

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 3);
  // The indirect jump lands on the instrumented block: counter == 1.
  EXPECT_EQ(counterAfterRun(R.EditedFile, Counter), 1u);
}

TEST(Translation, MriscJumpThroughRegister) {
  Executable Exec(assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  la $t0, fptr
  lw $t1, 0($t0)
  addi $t1, $t1, -1    # strip tag
  jr $t1
  nop
.Lnever:
  li $a0, 1
  li $v0, 0
  syscall
landing:
  li $a0, 9
  li $v0, 0
  syscall
  jr $ra
  nop
.data
.align 4
fptr: .word landing + 1
)"));
  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 9);
}

// --- Edge instrumentation of switch cases ----------------------------------------

TEST(SwitchEdit, CountCaseEdges) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %l0            ! loop index
  mov 0, %l1            ! sum
.Louter:
  and %l0, 3, %o1
  cmp %o1, 3
  bgu .Ldefault
  nop
  sll %o1, 2, %o2
  set table, %o3
  ld [%o3 + %o2], %o4
  jmpl %o4 + 0, %g0
  nop
.Lcase0:
  ba .Lnext
  add %l1, 1, %l1
.Lcase1:
  ba .Lnext
  add %l1, 10, %l1
.Lcase2:
  ba .Lnext
  add %l1, 100, %l1
.Lcase3:
  ba .Lnext
  add %l1, 1000, %l1
.Ldefault:
  add %l1, 0, %l1
.Lnext:
  add %l0, 1, %l0
  cmp %l0, 8
  bl .Louter
  nop
  mov %l1, %o0
  sys 0
  ret
  nop
.data
.align 4
table: .word .Lcase0, .Lcase1, .Lcase2, .Lcase3
)"));
  Exec.readContents();
  Routine *Main = Exec.findRoutine("main");
  Cfg *G = Main->controlFlowGraph();
  ASSERT_EQ(G->indirectSites().size(), 1u);
  const IndirectSite &Site = G->indirectSites()[0];
  ASSERT_EQ(Site.Resolution.K, IndirectResolution::Kind::DispatchTable);
  ASSERT_EQ(Site.Resolution.EntryCount, 4u);

  // Count every case edge.
  std::vector<Addr> Counters;
  const Edge *ToDelay = nullptr;
  for (const Edge *E : Site.Block->succ())
    if (E->kind() == EdgeKind::SwitchCase)
      ToDelay = E;
  ASSERT_NE(ToDelay, nullptr);
  unsigned CaseIndex = 0;
  for (Edge *E : ToDelay->dst()->succ()) {
    Addr C = Exec.appendData(4, 4, "case" + std::to_string(CaseIndex++));
    Counters.push_back(C);
    E->addCodeAlong(makeCounterSnippet(Exec.target(), C));
  }
  ASSERT_EQ(Counters.size(), 4u);

  EditedRun R = runBoth(Exec);
  expectSameBehavior(R);
  EXPECT_EQ(R.Edited.ExitCode, 2222); // 2 * (1 + 10 + 100 + 1000)
  for (Addr C : Counters)
    EXPECT_EQ(counterAfterRun(R.EditedFile, C), 2u);
}

// --- Symbol table of the edited program ---------------------------------------------

TEST(EditedOutput, SymbolsUpdated) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
.global main
main:
  call f
  nop
  sys 0
  ret
  nop
f:
  ret
  mov 1, %o0
.data
obj: .word 7
)"));
  Exec.readContents();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue());
  const SxfFile &Out = Edited.value();
  const SxfSymbol *MainSym = Out.findSymbol("main");
  ASSERT_NE(MainSym, nullptr);
  EXPECT_EQ(MainSym->Value, Exec.editedAddr(Exec.image().Entry));
  EXPECT_EQ(MainSym->Binding, SymBinding::Global);
  const SxfSymbol *FSym = Out.findSymbol("f");
  ASSERT_NE(FSym, nullptr);
  EXPECT_EQ(FSym->Value,
            Exec.editedAddr(Exec.findRoutine("f")->startAddr()));
  // Data symbols keep their addresses.
  const SxfSymbol *Obj = Out.findSymbol("obj");
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->Value, Exec.image().findSymbol("obj")->Value);
  EXPECT_EQ(Out.Entry, Exec.editedAddr(Exec.image().Entry));
}
