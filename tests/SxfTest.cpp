//===- tests/SxfTest.cpp - Executable-format tests -------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sxf/Sxf.h"

#include <gtest/gtest.h>

using namespace eel;

static SxfFile makeSample() {
  SxfFile File;
  File.Arch = TargetArch::Srisc;
  File.Entry = 0x10000;

  SxfSegment Text;
  Text.Kind = SegKind::Text;
  Text.VAddr = 0x10000;
  Text.Bytes = {0x01, 0x02, 0x03, 0x04, 0xAA, 0xBB, 0xCC, 0xDD};
  Text.MemSize = 8;
  File.Segments.push_back(Text);

  SxfSegment Data;
  Data.Kind = SegKind::Data;
  Data.VAddr = 0x400000;
  Data.Bytes = {1, 0, 0, 0};
  Data.MemSize = 4;
  File.Segments.push_back(Data);

  SxfSegment Bss;
  Bss.Kind = SegKind::Bss;
  Bss.VAddr = 0x400010;
  Bss.MemSize = 64;
  File.Segments.push_back(Bss);

  File.Symbols.push_back({"main", 0x10000, 8, SymKind::Routine,
                          SymBinding::Global});
  File.Symbols.push_back({"counter", 0x400000, 4, SymKind::Object,
                          SymBinding::Local});
  File.Symbols.push_back({"Ltmp3", 0x10004, 0, SymKind::Temp,
                          SymBinding::Local});
  return File;
}

TEST(Sxf, SerializeDeserializeRoundTrip) {
  SxfFile File = makeSample();
  std::vector<uint8_t> Bytes = File.serialize();
  Expected<SxfFile> Back = SxfFile::deserialize(Bytes);
  ASSERT_TRUE(Back.hasValue());
  const SxfFile &F = Back.value();
  EXPECT_EQ(F.Arch, TargetArch::Srisc);
  EXPECT_EQ(F.Entry, 0x10000u);
  ASSERT_EQ(F.Segments.size(), 3u);
  EXPECT_EQ(F.Segments[0].Bytes, File.Segments[0].Bytes);
  EXPECT_EQ(F.Segments[2].MemSize, 64u);
  EXPECT_TRUE(F.Segments[2].Bytes.empty());
  ASSERT_EQ(F.Symbols.size(), 3u);
  EXPECT_EQ(F.Symbols[0].Name, "main");
  EXPECT_EQ(F.Symbols[0].Binding, SymBinding::Global);
  EXPECT_EQ(F.Symbols[2].Kind, SymKind::Temp);
}

TEST(Sxf, WordAccess) {
  SxfFile File = makeSample();
  EXPECT_EQ(File.readWord(0x10000), 0x04030201u);
  EXPECT_EQ(File.readWord(0x10004), 0xDDCCBBAAu);
  EXPECT_EQ(File.readWord(0x10008), std::nullopt); // past text bytes
  EXPECT_EQ(File.readWord(0x400010), std::nullopt); // bss has no bytes
  ASSERT_TRUE(File.writeWord(0x10004, 0x11223344));
  EXPECT_EQ(File.readWord(0x10004), 0x11223344u);
  EXPECT_FALSE(File.writeWord(0x999999, 1));
}

TEST(Sxf, SegmentQueries) {
  SxfFile File = makeSample();
  ASSERT_NE(File.segment(SegKind::Text), nullptr);
  EXPECT_EQ(File.segment(SegKind::Text)->VAddr, 0x10000u);
  ASSERT_NE(File.segmentContaining(0x400020), nullptr);
  EXPECT_EQ(File.segmentContaining(0x400020)->Kind, SegKind::Bss);
  EXPECT_EQ(File.segmentContaining(0x999999), nullptr);
}

TEST(Sxf, SymbolLookupAndStrip) {
  SxfFile File = makeSample();
  ASSERT_NE(File.findSymbol("counter"), nullptr);
  EXPECT_EQ(File.findSymbol("counter")->Value, 0x400000u);
  EXPECT_EQ(File.findSymbol("nonesuch"), nullptr);
  File.strip();
  EXPECT_TRUE(File.Symbols.empty());
  // A stripped file still round-trips.
  Expected<SxfFile> Back = SxfFile::deserialize(File.serialize());
  ASSERT_TRUE(Back.hasValue());
  EXPECT_TRUE(Back.value().Symbols.empty());
}

TEST(Sxf, RejectsCorruptInput) {
  EXPECT_TRUE(SxfFile::deserialize({}).hasError());
  EXPECT_TRUE(SxfFile::deserialize({1, 2, 3, 4, 5}).hasError());
  // Truncate a valid image.
  std::vector<uint8_t> Bytes = makeSample().serialize();
  Bytes.resize(Bytes.size() / 2);
  EXPECT_TRUE(SxfFile::deserialize(Bytes).hasError());
  // Corrupt the magic.
  Bytes = makeSample().serialize();
  Bytes[0] ^= 0xFF;
  EXPECT_TRUE(SxfFile::deserialize(Bytes).hasError());
}

TEST(Sxf, FileRoundTrip) {
  std::string Path = testing::TempDir() + "/eel_sxf_test.sxf";
  SxfFile File = makeSample();
  ASSERT_TRUE(File.writeToFile(Path).hasValue());
  Expected<SxfFile> Back = SxfFile::readFromFile(Path);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back.value().serialize(), File.serialize());
}
