//===- tests/SxfTest.cpp - Executable-format tests -------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sxf/Sxf.h"

#include "support/ByteBuffer.h"

#include <gtest/gtest.h>

using namespace eel;

static SxfFile makeSample() {
  SxfFile File;
  File.Arch = TargetArch::Srisc;
  File.Entry = 0x10000;

  SxfSegment Text;
  Text.Kind = SegKind::Text;
  Text.VAddr = 0x10000;
  Text.Bytes = {0x01, 0x02, 0x03, 0x04, 0xAA, 0xBB, 0xCC, 0xDD};
  Text.MemSize = 8;
  File.Segments.push_back(Text);

  SxfSegment Data;
  Data.Kind = SegKind::Data;
  Data.VAddr = 0x400000;
  Data.Bytes = {1, 0, 0, 0};
  Data.MemSize = 4;
  File.Segments.push_back(Data);

  SxfSegment Bss;
  Bss.Kind = SegKind::Bss;
  Bss.VAddr = 0x400010;
  Bss.MemSize = 64;
  File.Segments.push_back(Bss);

  File.Symbols.push_back({"main", 0x10000, 8, SymKind::Routine,
                          SymBinding::Global});
  File.Symbols.push_back({"counter", 0x400000, 4, SymKind::Object,
                          SymBinding::Local});
  File.Symbols.push_back({"Ltmp3", 0x10004, 0, SymKind::Temp,
                          SymBinding::Local});
  return File;
}

TEST(Sxf, SerializeDeserializeRoundTrip) {
  SxfFile File = makeSample();
  std::vector<uint8_t> Bytes = File.serialize();
  Expected<SxfFile> Back = SxfFile::deserialize(Bytes);
  ASSERT_TRUE(Back.hasValue());
  const SxfFile &F = Back.value();
  EXPECT_EQ(F.Arch, TargetArch::Srisc);
  EXPECT_EQ(F.Entry, 0x10000u);
  ASSERT_EQ(F.Segments.size(), 3u);
  EXPECT_EQ(F.Segments[0].Bytes, File.Segments[0].Bytes);
  EXPECT_EQ(F.Segments[2].MemSize, 64u);
  EXPECT_TRUE(F.Segments[2].Bytes.empty());
  ASSERT_EQ(F.Symbols.size(), 3u);
  EXPECT_EQ(F.Symbols[0].Name, "main");
  EXPECT_EQ(F.Symbols[0].Binding, SymBinding::Global);
  EXPECT_EQ(F.Symbols[2].Kind, SymKind::Temp);
}

TEST(Sxf, WordAccess) {
  SxfFile File = makeSample();
  EXPECT_EQ(File.readWord(0x10000), 0x04030201u);
  EXPECT_EQ(File.readWord(0x10004), 0xDDCCBBAAu);
  EXPECT_EQ(File.readWord(0x10008), std::nullopt); // past text bytes
  EXPECT_EQ(File.readWord(0x400010), std::nullopt); // bss has no bytes
  ASSERT_TRUE(File.writeWord(0x10004, 0x11223344));
  EXPECT_EQ(File.readWord(0x10004), 0x11223344u);
  EXPECT_FALSE(File.writeWord(0x999999, 1));
}

TEST(Sxf, SegmentQueries) {
  SxfFile File = makeSample();
  ASSERT_NE(File.segment(SegKind::Text), nullptr);
  EXPECT_EQ(File.segment(SegKind::Text)->VAddr, 0x10000u);
  ASSERT_NE(File.segmentContaining(0x400020), nullptr);
  EXPECT_EQ(File.segmentContaining(0x400020)->Kind, SegKind::Bss);
  EXPECT_EQ(File.segmentContaining(0x999999), nullptr);
}

TEST(Sxf, SymbolLookupAndStrip) {
  SxfFile File = makeSample();
  ASSERT_NE(File.findSymbol("counter"), nullptr);
  EXPECT_EQ(File.findSymbol("counter")->Value, 0x400000u);
  EXPECT_EQ(File.findSymbol("nonesuch"), nullptr);
  File.strip();
  EXPECT_TRUE(File.Symbols.empty());
  // A stripped file still round-trips.
  Expected<SxfFile> Back = SxfFile::deserialize(File.serialize());
  ASSERT_TRUE(Back.hasValue());
  EXPECT_TRUE(Back.value().Symbols.empty());
}

TEST(Sxf, RejectsCorruptInput) {
  EXPECT_TRUE(SxfFile::deserialize({}).hasError());
  EXPECT_TRUE(SxfFile::deserialize({1, 2, 3, 4, 5}).hasError());
  // Truncate a valid image.
  std::vector<uint8_t> Bytes = makeSample().serialize();
  Bytes.resize(Bytes.size() / 2);
  EXPECT_TRUE(SxfFile::deserialize(Bytes).hasError());
  // Corrupt the magic.
  Bytes = makeSample().serialize();
  Bytes[0] ^= 0xFF;
  EXPECT_TRUE(SxfFile::deserialize(Bytes).hasError());
}

// Regression: a tiny file claiming a 0xFFFFFFFF-byte segment must fail with
// a structured error before any allocation is sized by the claim — the old
// reader resized the segment buffer first and could allocate 4 GB from a
// 16-byte input.
TEST(Sxf, HugeSegmentClaimInTinyFile) {
  ByteWriter W;
  W.writeU32(0x31465853); // magic
  W.writeU8(0);           // arch
  W.writeU8(0);
  W.writeU16(0);
  W.writeU32(0x10000);    // entry
  W.writeU32(1);          // one segment...
  W.writeU8(0);           // text
  W.writeU32(0x10000);    // vaddr
  W.writeU32(0xFFFFFFFF); // memsize
  W.writeU32(0xFFFFFFFF); // ...claiming 4 GB of file bytes
  Expected<SxfFile> R = SxfFile::deserialize(W.take());
  ASSERT_TRUE(R.hasError());
  EXPECT_EQ(R.error().code(), ErrorCode::SegmentOverrun);
  EXPECT_TRUE(R.error().hasOffset());

  // The 16-byte prefix (header only, count unreadable) fails cleanly too.
  ByteWriter W16;
  W16.writeU32(0x31465853);
  W16.writeU8(0);
  W16.writeU8(0);
  W16.writeU16(0);
  W16.writeU32(0x10000);
  W16.writeU32(0xFFFFFFFF); // segment count with no bytes behind it
  std::vector<uint8_t> Tiny = W16.take();
  ASSERT_EQ(Tiny.size(), 16u);
  Expected<SxfFile> R16 = SxfFile::deserialize(Tiny);
  ASSERT_TRUE(R16.hasError());
  EXPECT_EQ(R16.error().code(), ErrorCode::ImplausibleCount);
}

// Hostile symbol/relocation counts must be rejected up front, not spun on
// for 4 billion iterations of failing reads.
TEST(Sxf, HugeSymbolAndRelocCounts) {
  SxfFile File = makeSample();
  File.Symbols.clear();
  File.Relocs.clear();
  std::vector<uint8_t> Bytes = File.serialize();
  // nsymbols is the u32 nine bytes from the end (nsymbols + nrelocs,
  // both zero, then... recompute: layout ends with nsymbols, nrelocs).
  size_t NSymOff = Bytes.size() - 8;
  size_t NRelOff = Bytes.size() - 4;
  std::vector<uint8_t> Corrupt = Bytes;
  for (int I = 0; I < 4; ++I)
    Corrupt[NSymOff + I] = 0xFF;
  Expected<SxfFile> R = SxfFile::deserialize(Corrupt);
  ASSERT_TRUE(R.hasError());
  EXPECT_EQ(R.error().code(), ErrorCode::ImplausibleCount);
  Corrupt = Bytes;
  for (int I = 0; I < 4; ++I)
    Corrupt[NRelOff + I] = 0xFF;
  R = SxfFile::deserialize(Corrupt);
  ASSERT_TRUE(R.hasError());
  EXPECT_EQ(R.error().code(), ErrorCode::ImplausibleCount);
}

// Truncation sweep: every strict prefix of a valid image must produce a
// clean structured error — an ErrorCode plus the offset of the offending
// record — and never a crash or an accepted partial image.
TEST(Sxf, TruncationSweep) {
  std::vector<uint8_t> Bytes = makeSample().serialize();
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    Expected<SxfFile> R = SxfFile::deserialize(Prefix);
    ASSERT_TRUE(R.hasError()) << "prefix of length " << Len << " accepted";
    EXPECT_NE(R.error().code(), ErrorCode::Unspecified)
        << "prefix " << Len << " rejected without a code";
    EXPECT_TRUE(R.error().hasOffset())
        << "prefix " << Len << " rejected without an offset";
    EXPECT_LE(R.error().offset(), Len) << "offset past the input";
  }
}

// Kind/binding bytes are validated before the enum cast (UB under UBSan
// otherwise), each with its own code.
TEST(Sxf, RejectsOutOfRangeEnumBytes) {
  SxfFile File = makeSample();
  File.Relocs.push_back({0x400000, 0x10000, RelocKind::Word32});
  std::vector<uint8_t> Bytes = File.serialize();
  // Tail: ... nrelocs(4) site(4) target(4) kind(1)
  std::vector<uint8_t> Corrupt = Bytes;
  Corrupt[Corrupt.size() - 1] = 0xEE; // reloc kind
  Expected<SxfFile> R = SxfFile::deserialize(Corrupt);
  ASSERT_TRUE(R.hasError());
  EXPECT_EQ(R.error().code(), ErrorCode::BadRelocKind);

  // Symbol binding byte: last symbol's binding sits just before nrelocs +
  // reloc record (4 + 9 bytes from the end).
  Corrupt = Bytes;
  Corrupt[Corrupt.size() - 14] = 7; // binding must be 0 or 1
  R = SxfFile::deserialize(Corrupt);
  ASSERT_TRUE(R.hasError());
  EXPECT_EQ(R.error().code(), ErrorCode::BadSymbolKind);

  // Segment kind byte (first segment record starts after the 16-byte
  // header).
  Corrupt = Bytes;
  Corrupt[16] = 9;
  R = SxfFile::deserialize(Corrupt);
  ASSERT_TRUE(R.hasError());
  EXPECT_EQ(R.error().code(), ErrorCode::BadSegmentKind);
}

// Whole-image validation: overlap, wrap, memsize, entry point, symbol and
// relocation ranges, trailing bytes.
TEST(Sxf, StructuralValidation) {
  {
    SxfFile File = makeSample();
    File.Segments[1].VAddr = 0x10004; // data overlaps text
    Expected<SxfFile> R = SxfFile::deserialize(File.serialize());
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::SegmentOverlap);
    EXPECT_TRUE(R.error().hasOffset());
    // validate() reports the same without offsets for in-memory images.
    EXPECT_TRUE(File.validate().hasError());
  }
  {
    SxfFile File = makeSample();
    File.Segments[2].VAddr = 0xFFFFFFF0; // bss wraps 2^32
    File.Segments[2].MemSize = 0x100;
    Expected<SxfFile> R = SxfFile::deserialize(File.serialize());
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::AddressWrap);
  }
  {
    SxfFile File = makeSample();
    File.Segments[0].MemSize = 4; // smaller than its 8 file bytes
    Expected<SxfFile> R = SxfFile::deserialize(File.serialize());
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::BadMemSize);
  }
  {
    SxfFile File = makeSample();
    File.Entry = 0x400000; // in data, not text
    Expected<SxfFile> R = SxfFile::deserialize(File.serialize());
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::BadEntryPoint);
  }
  {
    SxfFile File = makeSample();
    File.Entry = 0x10002; // misaligned
    Expected<SxfFile> R = SxfFile::deserialize(File.serialize());
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::BadEntryPoint);
  }
  {
    SxfFile File = makeSample();
    File.Symbols[0].Value = 0x999999; // outside every segment
    Expected<SxfFile> R = SxfFile::deserialize(File.serialize());
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::SymbolOutOfRange);
  }
  {
    SxfFile File = makeSample();
    File.Relocs.push_back({0x400020, 0x10000, RelocKind::Word32}); // bss site
    Expected<SxfFile> R = SxfFile::deserialize(File.serialize());
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::RelocOutOfRange);
  }
  {
    std::vector<uint8_t> Bytes = makeSample().serialize();
    Bytes.push_back(0); // trailing byte
    Expected<SxfFile> R = SxfFile::deserialize(Bytes);
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::TrailingBytes);
  }
  {
    std::vector<uint8_t> Bytes = makeSample().serialize();
    Bytes[5] = 1; // reserved flags byte
    Expected<SxfFile> R = SxfFile::deserialize(Bytes);
    ASSERT_TRUE(R.hasError());
    EXPECT_EQ(R.error().code(), ErrorCode::BadHeader);
  }
}

// readWord/writeWord near the top of the address space: the old additive
// bounds check (`A + 4 > VAddr + size`) wrapped for A near 2^32 and read
// past the segment buffer.
TEST(Sxf, WordAccessAtAddressSpaceTop) {
  SxfFile File;
  SxfSegment Seg;
  Seg.Kind = SegKind::Data;
  Seg.VAddr = 0xFFFFFFF0;
  Seg.Bytes = {0, 1, 2, 3, 4, 5, 6, 7};
  Seg.MemSize = 8;
  File.Segments.push_back(Seg);
  EXPECT_EQ(File.readWord(0xFFFFFFF0), 0x03020100u);
  EXPECT_EQ(File.readWord(0xFFFFFFF4), 0x07060504u);
  // Only 3 bytes left in the segment — and A + 4 wraps to a small value.
  EXPECT_EQ(File.readWord(0xFFFFFFF5), std::nullopt);
  EXPECT_EQ(File.readWord(0xFFFFFFFE), std::nullopt);
  EXPECT_FALSE(File.writeWord(0xFFFFFFFE, 1));
  EXPECT_FALSE(File.writeWord(0xFFFFFFF6, 1));
  EXPECT_TRUE(File.writeWord(0xFFFFFFF4, 0xAABBCCDD));
  EXPECT_EQ(File.readWord(0xFFFFFFF4), 0xAABBCCDDu);
}

// Errors from file-level entry points carry the path.
TEST(Sxf, FileErrorsCarryPath) {
  Expected<SxfFile> R = SxfFile::readFromFile("/nonexistent/x.sxf");
  ASSERT_TRUE(R.hasError());
  EXPECT_EQ(R.error().code(), ErrorCode::IoError);
  EXPECT_EQ(R.error().file(), "/nonexistent/x.sxf");
  EXPECT_NE(R.error().describe().find("/nonexistent/x.sxf"),
            std::string::npos);
}

TEST(Sxf, FileRoundTrip) {
  std::string Path = testing::TempDir() + "/eel_sxf_test.sxf";
  SxfFile File = makeSample();
  ASSERT_TRUE(File.writeToFile(Path).hasValue());
  Expected<SxfFile> Back = SxfFile::readFromFile(Path);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back.value().serialize(), File.serialize());
}
