//===- tests/WorkloadTest.cpp - Workload generator + editing properties -----===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property suite over generated SPEC-ish programs: generation is
/// deterministic, programs run to a clean exit, symbol pathologies are
/// discovered by refinement, and — the central soundness property — the
/// identity rewrite preserves behaviour exactly across seeds, styles, and
/// both architectures.
///
//===----------------------------------------------------------------------===//

#include "core/CallGraph.h"
#include "core/Executable.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace eel;

namespace {

struct Style {
  const char *Name;
  WorkloadOptions Base;
};

std::vector<Style> styles() {
  WorkloadOptions Gcc;
  Gcc.SwitchPercent = 40;
  Gcc.TailCallPercent = 0;
  WorkloadOptions Sunpro;
  Sunpro.SwitchPercent = 30;
  Sunpro.TailCallPercent = 40;
  WorkloadOptions Pathological;
  Pathological.SymbolPathologies = true;
  Pathological.SwitchPercent = 25;
  return {{"gcc", Gcc}, {"sunpro", Sunpro}, {"pathological", Pathological}};
}

} // namespace

TEST(Workload, Deterministic) {
  WorkloadOptions Opts;
  Opts.Seed = 7;
  EXPECT_EQ(generateWorkloadAsm(TargetArch::Srisc, Opts),
            generateWorkloadAsm(TargetArch::Srisc, Opts));
  Opts.Seed = 8;
  EXPECT_NE(generateWorkloadAsm(TargetArch::Srisc, WorkloadOptions()),
            generateWorkloadAsm(TargetArch::Srisc, Opts));
}

TEST(Workload, RunsToCleanExit) {
  for (TargetArch Arch : AllTargetArches) {
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      WorkloadOptions Opts;
      Opts.Seed = Seed;
      if (Arch == TargetArch::Srisc)
        Opts.TailCallPercent = 30;
      SxfFile File = generateWorkload(Arch, Opts);
      RunResult R = runToCompletion(File);
      EXPECT_EQ(R.Reason, StopReason::Exited)
          << "arch=" << static_cast<int>(Arch) << " seed=" << Seed
          << " fault@0x" << std::hex << R.FaultPC;
      EXPECT_EQ(R.ExitCode, 0);
      EXPECT_FALSE(R.Output.empty());
      EXPECT_EQ(R.Output.back(), '\n');
      EXPECT_GT(R.Instructions, 100u);
    }
  }
}

TEST(Workload, PathologiesAreDiscovered) {
  WorkloadOptions Opts;
  Opts.Seed = 3;
  Opts.SymbolPathologies = true;
  Opts.Routines = 16;
  Executable Exec(generateWorkload(TargetArch::Srisc, Opts));
  Exec.readContents();
  // The text-embedded data table is classified as data.
  Routine *Table = Exec.findRoutine("text_table");
  ASSERT_NE(Table, nullptr);
  EXPECT_TRUE(Table->isData());
  // Debug/temp labels never became routines.
  for (const auto &R : Exec.routines()) {
    EXPECT_EQ(R->name().find("dbg_"), std::string::npos);
    EXPECT_EQ(R->name().find("tmp_"), std::string::npos);
    EXPECT_EQ(R->name().find("skip_"), std::string::npos);
  }
}

TEST(Workload, CallGraphIsAcyclicDag) {
  WorkloadOptions Opts;
  Opts.Seed = 11;
  Executable Exec(generateWorkload(TargetArch::Srisc, Opts));
  CallGraph CG = CallGraph::build(Exec);
  Routine *Main = Exec.findRoutine("main");
  ASSERT_NE(Main, nullptr);
  const CallGraph::Node *MainNode = CG.node(Main);
  ASSERT_NE(MainNode, nullptr);
  EXPECT_GE(MainNode->Callees.size(), 2u);
  EXPECT_TRUE(MainNode->Callers.empty());
  // main reaches a good portion of the program.
  std::vector<Routine *> Order = CG.postorderFrom(Main);
  EXPECT_GE(Order.size(), 4u);
  EXPECT_EQ(Order.back(), Main); // post-order ends at the root
}

/// The central soundness property: re-laying out a program without edits
/// preserves its observable behaviour exactly.
TEST(WorkloadProperty, IdentityRewritePreservesBehavior) {
  for (TargetArch Arch : AllTargetArches) {
    for (const Style &S : styles()) {
      if (Arch == TargetArch::Mrisc && S.Base.SymbolPathologies)
        continue; // text-embedded tables decode as valid words on MRISC
      for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
        WorkloadOptions Opts = S.Base;
        Opts.Seed = Seed;
        SxfFile File = generateWorkload(Arch, Opts);
        RunResult Original = runToCompletion(File);
        ASSERT_EQ(Original.Reason, StopReason::Exited);

        Executable Exec((SxfFile(File)));
        Expected<SxfFile> Edited = Exec.writeEditedExecutable();
        ASSERT_TRUE(Edited.hasValue())
            << "arch=" << static_cast<int>(Arch) << " style=" << S.Name
            << " seed=" << Seed << ": " << Edited.error().message();
        RunResult After = runToCompletion(Edited.value());
        EXPECT_EQ(static_cast<int>(After.Reason),
                  static_cast<int>(Original.Reason))
            << "arch=" << static_cast<int>(Arch) << " style=" << S.Name
            << " seed=" << Seed;
        EXPECT_EQ(After.ExitCode, Original.ExitCode);
        EXPECT_EQ(After.Output, Original.Output)
            << "arch=" << static_cast<int>(Arch) << " style=" << S.Name
            << " seed=" << Seed;
      }
    }
  }
}

TEST(WorkloadProperty, SunproStyleNeedsTranslationOrCells) {
  // Tail-call-heavy programs contain unanalyzable (cell-pointer) indirect
  // jumps, reproducing the §3.3 Solaris observation; the editor keeps them
  // working.
  WorkloadOptions Opts;
  Opts.Seed = 21;
  Opts.TailCallPercent = 70;
  Opts.Routines = 14;
  SxfFile File = generateWorkload(TargetArch::Srisc, Opts);
  RunResult Original = runToCompletion(File);

  Executable Exec((SxfFile(File)));
  Exec.readContents();
  unsigned Unanalyzable = 0, TailCalls = 0;
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    for (const IndirectSite &Site : G->indirectSites()) {
      if (Site.IsCall)
        continue;
      if (Site.Resolution.K == IndirectResolution::Kind::CellPointer ||
          Site.Resolution.K == IndirectResolution::Kind::Unanalyzable) {
        ++Unanalyzable;
        if (Site.Resolution.TailCallIdiom ||
            Site.Resolution.K == IndirectResolution::Kind::CellPointer)
          ++TailCalls;
      }
    }
  }
  EXPECT_GT(Unanalyzable, 0u);

  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  RunResult After = runToCompletion(Edited.value());
  EXPECT_EQ(After.Output, Original.Output);
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
}
