//===- tests/ArenaTest.cpp - Arena/SoA IR and zero-copy writer tests -------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat instruction IR's storage layer and the zero-copy writer built
/// on it:
///
///  * BumpArena growth, alignment, oversized-chunk handling, and reset;
///  * ShardedBumpArena shard independence and aggregate accounting;
///  * InternedPairTable dedup (same pair → same index) and lock-free
///    round-trip, including concurrent intern/get;
///  * InstrIdx/BlockIdx handle round-trips: every block's insts() span is
///    exactly its [firstInstr(), +size()) slice of Cfg::instRows(), and
///    rowOps() resolves to the same masks the Instruction objects carry;
///  * the flyweight pool's dense decode index (getAt agrees with get and
///    returns pointer-identical instructions);
///  * byte identity of the zero-copy writer against Options::LegacyWriter
///    over the workload corpus, and 1-vs-8-thread determinism of the
///    zero-copy path.
///
/// Registered under the ctest label `ir` so a -DEEL_SANITIZE build can run
/// just these: `ctest -L ir`.
///
//===----------------------------------------------------------------------===//

#include "core/Executable.h"
#include "core/Routine.h"
#include "support/Arena.h"
#include "tools/Qpt.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

using namespace eel;

namespace {

// --- BumpArena --------------------------------------------------------------------

TEST(BumpArenaTest, AllocationsDoNotOverlap) {
  BumpArena Arena;
  std::vector<std::pair<uint8_t *, size_t>> Blocks;
  for (size_t Bytes : {1u, 7u, 16u, 64u, 129u, 1000u}) {
    auto *P = static_cast<uint8_t *>(Arena.allocate(Bytes, 8));
    ASSERT_NE(P, nullptr);
    std::memset(P, 0xAB, Bytes);
    Blocks.emplace_back(P, Bytes);
  }
  for (size_t I = 0; I < Blocks.size(); ++I)
    for (size_t J = I + 1; J < Blocks.size(); ++J) {
      uint8_t *A = Blocks[I].first, *B = Blocks[J].first;
      EXPECT_TRUE(A + Blocks[I].second <= B || B + Blocks[J].second <= A)
          << "blocks " << I << " and " << J << " overlap";
    }
}

TEST(BumpArenaTest, RespectsAlignment) {
  BumpArena Arena;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    // Mis-align the cursor first with a 1-byte allocation.
    Arena.allocate(1, 1);
    void *P = Arena.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "alignment " << Align;
  }
}

TEST(BumpArenaTest, GrowsAcrossChunksAndKeepsOldAllocationsValid) {
  BumpArena Arena(/*ChunkBytes=*/256);
  auto *First = Arena.create<uint64_t>(0x1122334455667788ull);
  // Force several new chunks.
  for (int I = 0; I < 64; ++I)
    Arena.allocate(100, 8);
  EXPECT_GT(Arena.chunkCount(), 1u);
  EXPECT_EQ(*First, 0x1122334455667788ull); // first chunk untouched
}

TEST(BumpArenaTest, OversizedRequestGetsDedicatedChunk) {
  BumpArena Arena(/*ChunkBytes=*/128);
  auto *Big = static_cast<uint8_t *>(Arena.allocate(4096, 16));
  ASSERT_NE(Big, nullptr);
  std::memset(Big, 0xCD, 4096);
  EXPECT_GE(Arena.bytesReserved(), 4096u);
}

TEST(BumpArenaTest, ResetReclaimsAndReuses) {
  BumpArena Arena(/*ChunkBytes=*/256);
  for (int I = 0; I < 32; ++I)
    Arena.allocate(64, 8);
  size_t Reserved = Arena.bytesReserved();
  EXPECT_GT(Arena.bytesAllocated(), 0u);
  Arena.reset();
  EXPECT_EQ(Arena.bytesAllocated(), 0u);
  EXPECT_LE(Arena.bytesReserved(), Reserved); // keeps at most the first chunk
  EXPECT_EQ(Arena.chunkCount(), 1u);
  void *P = Arena.allocate(16, 8);
  EXPECT_NE(P, nullptr);
}

TEST(BumpArenaTest, BytesAllocatedTracksPayload) {
  BumpArena Arena;
  EXPECT_EQ(Arena.bytesAllocated(), 0u);
  Arena.allocate(10, 1);
  Arena.allocate(20, 1);
  EXPECT_EQ(Arena.bytesAllocated(), 30u);
}

// --- ShardedBumpArena -------------------------------------------------------------

TEST(ShardedBumpArenaTest, ShardsAllocateIndependently) {
  ShardedBumpArena Arenas(8);
  EXPECT_EQ(Arenas.shardCount(), 8u);
  for (size_t I = 0; I < 8; ++I) {
    ShardedBumpArena::Shard &S = Arenas.shard(I);
    std::lock_guard<std::mutex> Lock(S.M);
    S.Arena.allocate(10 * (I + 1), 8);
  }
  EXPECT_EQ(Arenas.bytesAllocated(), 10u * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

TEST(ShardedBumpArenaTest, ConcurrentAllocationIsSafe) {
  ShardedBumpArena Arenas(16);
  constexpr size_t ThreadCount = 8, PerThread = 500;
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&Arenas, T] {
      for (size_t I = 0; I < PerThread; ++I) {
        ShardedBumpArena::Shard &S = Arenas.shardFor(T * PerThread + I);
        std::lock_guard<std::mutex> Lock(S.M);
        auto *P = static_cast<uint32_t *>(S.Arena.allocate(4, 4));
        *P = static_cast<uint32_t>(I);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Arenas.bytesAllocated(), ThreadCount * PerThread * 4);
}

// --- InternedPairTable ------------------------------------------------------------

TEST(InternedPairTableTest, DedupsAndRoundTrips) {
  InternedPairTable Table;
  uint32_t A = Table.intern(0x1, 0x2);
  uint32_t B = Table.intern(0x3, 0x4);
  uint32_t A2 = Table.intern(0x1, 0x2);
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Table.size(), 2u);
  InternedPairTable::Pair P = Table.get(A);
  EXPECT_EQ(P.First, 0x1u);
  EXPECT_EQ(P.Second, 0x2u);
  P = Table.get(B);
  EXPECT_EQ(P.First, 0x3u);
  EXPECT_EQ(P.Second, 0x4u);
}

TEST(InternedPairTableTest, GrowsAcrossChunks) {
  InternedPairTable Table;
  // More pairs than one 512-entry chunk holds.
  constexpr uint32_t N = 1500;
  std::vector<uint32_t> Indices;
  for (uint32_t I = 0; I < N; ++I)
    Indices.push_back(Table.intern(I, ~uint64_t(I)));
  EXPECT_EQ(Table.size(), N);
  for (uint32_t I = 0; I < N; ++I) {
    InternedPairTable::Pair P = Table.get(Indices[I]);
    EXPECT_EQ(P.First, I);
    EXPECT_EQ(P.Second, ~uint64_t(I));
  }
  // Distinct pairs must get distinct indices.
  EXPECT_EQ(std::set<uint32_t>(Indices.begin(), Indices.end()).size(), N);
}

TEST(InternedPairTableTest, ConcurrentInternAndGet) {
  InternedPairTable Table;
  constexpr size_t ThreadCount = 8;
  constexpr uint32_t Distinct = 200;
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&Table] {
      for (uint32_t I = 0; I < Distinct; ++I) {
        uint32_t Idx = Table.intern(I * 3, I * 7);
        InternedPairTable::Pair P = Table.get(Idx); // lock-free read back
        EXPECT_EQ(P.First, uint64_t(I) * 3);
        EXPECT_EQ(P.Second, uint64_t(I) * 7);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  // Every thread interned the same pair set: dedup must hold across them.
  EXPECT_EQ(Table.size(), Distinct);
}

// --- InstrIdx/BlockIdx handles over real CFGs -------------------------------------

WorkloadOptions corpusMember(uint64_t Seed, bool Sunpro) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.Routines = 12;
  Opts.SegmentsPerRoutine = 5;
  Opts.SwitchPercent = 35;
  Opts.TailCallPercent = Sunpro ? 35 : 0;
  return Opts;
}

TEST(FlatIrTest, BlockSpansTileTheRowArray) {
  SxfFile File = generateWorkload(TargetArch::Srisc, corpusMember(21, false));
  Executable Exec((SxfFile(File)));
  Exec.readContents();
  unsigned GraphsChecked = 0;
  for (const std::unique_ptr<Routine> &R : Exec.routines()) {
    Cfg *G = R->controlFlowGraph();
    if (!G)
      continue;
    ++GraphsChecked;
    std::span<const CfgInst> Rows = G->instRows();
    ASSERT_EQ(Rows.size(), G->rowOps().size());
    for (const BasicBlock *B : G->blocks()) {
      // insts() must be exactly the [firstInstr(), +size()) slice of the
      // parent's row array — the InstrIdx round-trip.
      std::span<const CfgInst> Insts = B->insts();
      ASSERT_LE(B->firstInstr() + B->size(), Rows.size());
      EXPECT_EQ(Insts.data(), Rows.data() + B->firstInstr());
      EXPECT_EQ(Insts.size(), B->size());
    }
  }
  EXPECT_GT(GraphsChecked, 0u);
}

TEST(FlatIrTest, RowOperandsMatchInstructionMasks) {
  SxfFile File = generateWorkload(TargetArch::Srisc, corpusMember(22, true));
  Executable Exec((SxfFile(File)));
  Exec.readContents();
  uint64_t RowsChecked = 0, Interned = 0;
  for (const std::unique_ptr<Routine> &R : Exec.routines()) {
    Cfg *G = R->controlFlowGraph();
    if (!G)
      continue;
    std::span<const CfgInst> Rows = G->instRows();
    std::span<const uint32_t> Ops = G->rowOps();
    const InternedPairTable *Table = G->operandTable();
    ASSERT_NE(Table, nullptr);
    for (size_t I = 0; I < Rows.size(); ++I) {
      ++RowsChecked;
      if (Ops[I] == Instruction::NoOpIndex)
        continue;
      ++Interned;
      InternedPairTable::Pair P = Table->get(Ops[I]);
      EXPECT_EQ(P.First, Rows[I].Inst->reads().mask());
      EXPECT_EQ(P.Second, Rows[I].Inst->writes().mask());
      EXPECT_EQ(Ops[I], Rows[I].Inst->opIndex());
    }
  }
  EXPECT_GT(RowsChecked, 0u);
  EXPECT_GT(Interned, 0u);
}

TEST(FlatIrTest, OperandInterningDedups) {
  SxfFile File = generateWorkload(TargetArch::Srisc, corpusMember(23, false));
  Executable Exec((SxfFile(File)));
  Exec.readContents();
  // Distinct (reads, writes) pairs across all rows must equal the table's
  // entry count for those rows — the table is exactly the dedup set.
  std::set<std::pair<uint64_t, uint64_t>> DistinctPairs;
  std::set<uint32_t> UsedIndices;
  uint64_t Rows = 0;
  for (const std::unique_ptr<Routine> &R : Exec.routines()) {
    Cfg *G = R->controlFlowGraph();
    if (!G)
      continue;
    std::span<const uint32_t> Ops = G->rowOps();
    const InternedPairTable *Table = G->operandTable();
    for (uint32_t Op : Ops) {
      ++Rows;
      if (Op == Instruction::NoOpIndex)
        continue;
      InternedPairTable::Pair P = Table->get(Op);
      DistinctPairs.emplace(P.First, P.Second);
      UsedIndices.insert(Op);
    }
  }
  EXPECT_EQ(DistinctPairs.size(), UsedIndices.size());
  // Interning must actually share: far fewer distinct pairs than rows.
  EXPECT_GT(Rows, 2 * UsedIndices.size());
}

// --- Dense decode index -----------------------------------------------------------

TEST(DecodeIndexTest, GetAtAgreesWithGetAndIsPointerStable) {
  SxfFile File = generateWorkload(TargetArch::Srisc, corpusMember(24, false));
  Executable Exec((SxfFile(File)));
  Exec.readContents();
  InstructionPool &Pool = Exec.pool();
  for (Addr A = Exec.textBase(); A < Exec.textEnd(); A += 4) {
    std::optional<MachWord> W = Exec.fetchWord(A);
    ASSERT_TRUE(W.has_value());
    const Instruction *ByAddr = Pool.getAt(A, *W);
    const Instruction *ByWord = Pool.get(*W);
    EXPECT_EQ(ByAddr, ByWord) << "addr " << std::hex << A;
    // Second probe must return the published pointer, not a new object.
    EXPECT_EQ(Pool.getAt(A, *W), ByAddr);
  }
}

// --- Writer byte identity and determinism -----------------------------------------

std::vector<uint8_t> editedImage(const SxfFile &File, unsigned Threads,
                                 bool Legacy, bool Instrument) {
  Executable::Options Opts;
  Opts.Threads = Threads;
  Opts.LegacyWriter = Legacy;
  Executable Exec(SxfFile(File), Opts);
  Exec.readContents();
  if (Instrument) {
    Qpt2Profiler Profiler(Exec);
    Profiler.instrument();
  }
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  EXPECT_FALSE(Edited.hasError());
  if (Edited.hasError())
    return {};
  return Edited.value().serialize();
}

TEST(ZeroCopyWriterTest, ByteIdenticalToLegacyWriterAcrossCorpus) {
  for (TargetArch Arch : AllTargetArches)
    for (uint64_t Seed : {31u, 32u, 33u})
      for (bool Sunpro : {false, true})
        for (bool Instrument : {false, true}) {
          SxfFile File = generateWorkload(Arch, corpusMember(Seed, Sunpro));
          std::vector<uint8_t> ZeroCopy =
              editedImage(File, 1, /*Legacy=*/false, Instrument);
          std::vector<uint8_t> Legacy =
              editedImage(File, 1, /*Legacy=*/true, Instrument);
          ASSERT_FALSE(ZeroCopy.empty());
          EXPECT_EQ(ZeroCopy, Legacy)
              << "arch " << (Arch == TargetArch::Srisc ? "srisc" : "mrisc")
              << " seed " << Seed << " sunpro " << Sunpro << " instrumented "
              << Instrument;
        }
}

TEST(ZeroCopyWriterTest, ThreadCountDoesNotChangeOutput) {
  for (uint64_t Seed : {41u, 42u}) {
    SxfFile File = generateWorkload(TargetArch::Srisc, corpusMember(Seed, true));
    std::vector<uint8_t> Serial =
        editedImage(File, 1, /*Legacy=*/false, /*Instrument=*/true);
    std::vector<uint8_t> Parallel =
        editedImage(File, 8, /*Legacy=*/false, /*Instrument=*/true);
    ASSERT_FALSE(Serial.empty());
    EXPECT_EQ(Serial, Parallel) << "seed " << Seed;
  }
}

} // namespace
