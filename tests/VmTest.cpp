//===- tests/VmTest.cpp - Simulator tests ----------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace eel;

TEST(VmSrisc, ExitCode) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 42, %o0
  sys 0
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Reason, StopReason::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(VmSrisc, ReturnFromMainExits) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 7, %o0
  ret
  nop
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Reason, StopReason::Exited);
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(VmSrisc, ArithmeticAndLoop) {
  // Sum 1..10 = 55.
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  mov 1, %o1
loop:
  add %o0, %o1, %o0
  add %o1, 1, %o1
  cmp %o1, 10
  ble loop
  nop
  sys 0
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.ExitCode, 55);
}

TEST(VmSrisc, MemoryAndStrings) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 1, %o0
  set msg, %o1
  mov 6, %o2
  sys 1
  set value, %o3
  ld [%o3 + 0], %o0
  sys 0
.data
msg: .asciz "hello\n"
.align 4
value: .word 99
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Output, "hello\n");
  EXPECT_EQ(R.ExitCode, 99);
}

TEST(VmSrisc, DelaySlotExecutesBeforeTransfer) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  ba done
  add %o0, 5, %o0     ! delay slot: executes
  add %o0, 100, %o0   ! skipped
done:
  sys 0
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 5);
}

TEST(VmSrisc, AnnulledBranchTaken) {
  // be,a with the branch taken: delay slot executes.
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  cmp %g0, 0
  be,a done
  add %o0, 5, %o0     ! executes: branch taken
  add %o0, 100, %o0
done:
  sys 0
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 5);
}

TEST(VmSrisc, AnnulledBranchUntakenSquashesDelay) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  cmp %g0, 1
  be,a elsewhere
  add %o0, 5, %o0     ! squashed: annulled, branch untaken
  add %o0, 100, %o0   ! falls through to here
  sys 0
elsewhere:
  mov 77, %o0
  sys 0
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 100);
}

TEST(VmSrisc, BaAnnulAlwaysSquashes) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o0
  ba,a done
  add %o0, 5, %o0     ! squashed: ba,a annuls its delay slot
done:
  sys 0
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 0);
}

TEST(VmSrisc, CallAndReturn) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  call double_it
  mov 21, %o0         ! delay slot sets the argument
  sys 0
double_it:
  ret
  add %o0, %o0, %o0   ! delay slot of ret computes the result
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 42);
}

TEST(VmSrisc, IndirectJumpThroughTable) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  set table, %o1
  ld [%o1 + 4], %o2   ! second entry
  jmpl %o2 + 0, %g0
  nop
case0:
  mov 10, %o0
  sys 0
case1:
  mov 20, %o0
  sys 0
.data
.align 4
table: .word case0, case1
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 20);
}

TEST(VmSrisc, ConditionCodeAccess) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  cmp %g0, 0           ! sets Z
  rdcc %o1
  cmp %g0, 1           ! clears Z
  wrcc %o1             ! restore Z
  be yes
  nop
  mov 0, %o0
  sys 0
yes:
  mov 1, %o0
  sys 0
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 1);
}

TEST(VmSrisc, SbrkAndHooks) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 64, %o0
  sys 2                ! sbrk(64)
  mov %o0, %o3
  mov 7, %o4
  st %o4, [%o3 + 0]
  ld [%o3 + 0], %o0
  sys 0
)");
  Machine M(File);
  unsigned MemOps = 0, Transfers = 0;
  uint64_t Insts = 0;
  M.OnMemory = [&](Addr, Addr, unsigned, bool) { ++MemOps; };
  M.OnTransfer = [&](Addr, Addr, bool) { ++Transfers; };
  M.OnInst = [&](Addr, MachWord) { ++Insts; };
  RunResult R = M.run();
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_EQ(MemOps, 2u);
  EXPECT_EQ(Transfers, 0u);
  EXPECT_EQ(Insts, R.Instructions);
}

TEST(VmSrisc, StepLimitAndBadInstruction) {
  SxfFile Loop = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  ba main
  nop
)");
  RunResult R = runToCompletion(Loop, 1000);
  EXPECT_EQ(R.Reason, StopReason::StepLimit);

  SxfFile Bad = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  nop
.word 0
)");
  R = runToCompletion(Bad);
  EXPECT_EQ(R.Reason, StopReason::BadInstruction);
}

// --- MRISC ---------------------------------------------------------------------

TEST(VmMrisc, ExitAndArithmetic) {
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  li $t0, 6
  li $t1, 7
  mul $a0, $t0, $t1
  li $v0, 0
  syscall
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Reason, StopReason::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(VmMrisc, ReturnFromMainExits) {
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  li $v0, 9
  jr $ra
  nop
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Reason, StopReason::Exited);
  EXPECT_EQ(R.ExitCode, 9);
}

TEST(VmMrisc, LoopAndMemory) {
  // Sum array {3, 5, 9} = 17.
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  la $t0, arr
  li $t1, 3
  li $a0, 0
loop:
  lw $t2, 0($t0)
  add $a0, $a0, $t2
  addi $t0, $t0, 4
  addi $t1, $t1, -1
  bgtz $t1, loop
  nop
  li $v0, 0
  syscall
.data
.align 4
arr: .word 3, 5, 9
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 17);
}

TEST(VmMrisc, DelaySlotSemantics) {
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  li $a0, 0
  j done
  addi $a0, $a0, 5    ! delay slot executes
  addi $a0, $a0, 100  ! skipped
done:
  li $v0, 0
  syscall
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 5);
}

TEST(VmMrisc, CallAndIndirect) {
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  jal triple
  li $a0, 5           ! delay slot: argument
  move $a0, $v1
  li $v0, 0
  syscall
triple:
  add $v1, $a0, $a0
  jr $ra
  add $v1, $v1, $a0   ! delay slot finishes the sum
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 15);
}

TEST(VmMrisc, WriteSyscall) {
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  li $a0, 1
  la $a1, msg
  li $a2, 3
  li $v0, 1
  syscall
  li $a0, 0
  li $v0, 0
  syscall
.data
msg: .asciz "ok\n"
)");
  RunResult R = runToCompletion(File);
  EXPECT_EQ(R.Output, "ok\n");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(VmMrisc, FunctionPointerCall) {
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  la $t0, fptr
  lw $t1, 0($t0)
  jalr $t1
  nop
  move $a0, $v1
  li $v0, 0
  syscall
target:
  li $v1, 33
  jr $ra
  nop
.data
.align 4
fptr: .word target
)");
  EXPECT_EQ(runToCompletion(File).ExitCode, 33);
}
