//===- tests/AsmTest.cpp - Assembler tests ---------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"
#include "isa/MriscEncoding.h"
#include "isa/SriscEncoding.h"

#include <gtest/gtest.h>

using namespace eel;

static MachWord textWord(const SxfFile &File, unsigned Index) {
  const SxfSegment *Text = File.segment(SegKind::Text);
  EXPECT_NE(Text, nullptr);
  return File.readWord(Text->VAddr + 4 * Index).value();
}

TEST(SriscAsm, BasicInstructions) {
  using namespace srisc;
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  add %o1, %o2, %o3
  sub %o1, -12, %o3
  sethi 0x1234, %g1
  nop
  mov 5, %o0
  cmp %o0, 7
  sys 1
  rdcc %l0
  wrcc %l0
  ret
  nop
)");
  EXPECT_EQ(textWord(File, 0), encodeArithReg(Op3Add, 11, 9, 10));
  EXPECT_EQ(textWord(File, 1), encodeArithImm(Op3Sub, 11, 9, -12));
  EXPECT_EQ(textWord(File, 2), encodeSethi(1, 0x1234));
  EXPECT_EQ(textWord(File, 3), nop());
  EXPECT_EQ(textWord(File, 4), encodeArithImm(Op3Or, 8, 0, 5));
  EXPECT_EQ(textWord(File, 5), encodeArithImm(Op3SubCC, 0, 8, 7));
  EXPECT_EQ(textWord(File, 6), encodeSys(1));
  EXPECT_EQ(textWord(File, 7), encodeRdCC(16));
  EXPECT_EQ(textWord(File, 8), encodeWrCC(16));
  EXPECT_EQ(textWord(File, 9), encodeJmplImm(0, 15, 8));
  EXPECT_EQ(File.Entry, File.segment(SegKind::Text)->VAddr);
}

TEST(SriscAsm, BranchesAndCalls) {
  using namespace srisc;
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  ba done
  nop
loop:
  be,a loop
  nop
  call main
  nop
done:
  ret
  nop
)");
  const TargetInfo &T = sriscTarget();
  Addr Base = File.segment(SegKind::Text)->VAddr;
  // ba done: done is at word index 6.
  EXPECT_EQ(T.directTarget(textWord(File, 0), Base),
            std::optional<Addr>(Base + 24));
  // be,a loop at index 2 targets itself.
  MachWord Be = textWord(File, 2);
  EXPECT_EQ(fieldAnnul(Be), 1u);
  EXPECT_EQ(T.directTarget(Be, Base + 8), std::optional<Addr>(Base + 8));
  // call main at index 4.
  EXPECT_EQ(T.directTarget(textWord(File, 4), Base + 16),
            std::optional<Addr>(Base));
}

TEST(SriscAsm, MemoryAndHiLo) {
  using namespace srisc;
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  sethi %hi(counter), %o1
  ld [%o1 + %lo(counter)], %o2
  st %o2, [%o1 + %lo(counter)]
  ld [%sp - 8], %o3
  ld [%o1 + %o4], %o5
  set counter, %g5
.data
.align 4
counter: .word 99
)");
  Addr CounterAddr = File.findSymbol("counter")->Value;
  MachWord Hi = textWord(File, 0);
  MachWord Ld = textWord(File, 1);
  EXPECT_EQ(fieldImm22(Hi) << 10, CounterAddr & ~0x3FFu);
  EXPECT_EQ(static_cast<uint32_t>(fieldSimm13(Ld)), CounterAddr & 0x3FFu);
  // set expands to sethi+or computing the full address.
  MachWord SetHi = textWord(File, 5), SetLo = textWord(File, 6);
  EXPECT_EQ((fieldImm22(SetHi) << 10) | fieldSimm13(SetLo), CounterAddr);
  EXPECT_EQ(File.readWord(CounterAddr), 99u);
}

TEST(SriscAsm, DataDirectivesAndDispatchTable) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  nop
L1:
  nop
L2:
  nop
.data
table: .word L1, L2, main
str:   .asciz "hi\n"
half:  .half 513
byte:  .byte 7
.align 8
big:   .space 16
)");
  Addr Base = File.segment(SegKind::Text)->VAddr;
  Addr Table = File.findSymbol("table")->Value;
  EXPECT_EQ(File.readWord(Table), Base + 4);
  EXPECT_EQ(File.readWord(Table + 4), Base + 8);
  EXPECT_EQ(File.readWord(Table + 8), Base);
  const SxfSegment *Data = File.segment(SegKind::Data);
  Addr Str = File.findSymbol("str")->Value;
  EXPECT_EQ(Data->Bytes[Str - Data->VAddr], 'h');
  EXPECT_EQ(Data->Bytes[Str - Data->VAddr + 2], '\n');
  EXPECT_EQ(Data->Bytes[Str - Data->VAddr + 3], 0);
  Addr Big = File.findSymbol("big")->Value;
  EXPECT_EQ(Big % 8, 0u);
}

TEST(SriscAsm, SymbolKindsAndHidden) {
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
.global main
main:
  nop
.hidden
secret:
  nop
.L_local:
  nop
.debuglabel dbg1
.templabel tmp1
other:
  nop
.data
obj: .word 1
)");
  const SxfSymbol *Main = File.findSymbol("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(Main->Kind, SymKind::Routine);
  EXPECT_EQ(Main->Binding, SymBinding::Global);
  EXPECT_EQ(File.findSymbol("secret"), nullptr);  // hidden
  EXPECT_EQ(File.findSymbol(".L_local"), nullptr); // assembler-local
  ASSERT_NE(File.findSymbol("dbg1"), nullptr);
  EXPECT_EQ(File.findSymbol("dbg1")->Kind, SymKind::Debug);
  ASSERT_NE(File.findSymbol("tmp1"), nullptr);
  EXPECT_EQ(File.findSymbol("tmp1")->Kind, SymKind::Temp);
  ASSERT_NE(File.findSymbol("obj"), nullptr);
  EXPECT_EQ(File.findSymbol("obj")->Kind, SymKind::Object);
}

TEST(SriscAsm, Errors) {
  EXPECT_TRUE(assembleProgram(TargetArch::Srisc, "bogus %o1, %o2\n")
                  .hasError());
  EXPECT_TRUE(assembleProgram(TargetArch::Srisc, "ba nowhere\nnop\n")
                  .hasError());
  EXPECT_TRUE(assembleProgram(TargetArch::Srisc, "add %o1, 99999, %o2\n")
                  .hasError());
  EXPECT_TRUE(
      assembleProgram(TargetArch::Srisc, "x: nop\nx: nop\n").hasError());
  EXPECT_TRUE(
      assembleProgram(TargetArch::Srisc, ".data\nnop\n").hasError());
  // Error messages carry line numbers.
  Expected<SxfFile> R =
      assembleProgram(TargetArch::Srisc, "nop\nbogus\n");
  ASSERT_TRUE(R.hasError());
  EXPECT_NE(R.error().message().find("line 2"), std::string::npos);
}

TEST(MriscAsm, BasicInstructions) {
  using namespace mrisc;
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  add $t0, $t1, $t2
  addi $t0, $t1, -4
  sll $t0, $t1, 3
  sllv $t0, $t1, $t2
  lui $t0, 0x1234
  ori $t0, $t0, 0x5678
  lw $t3, 8($sp)
  sw $t3, 8($sp)
  syscall
  jr $ra
  nop
)");
  EXPECT_EQ(textWord(File, 0), encodeRType(9, 10, 8, 0, FnAdd));
  EXPECT_EQ(textWord(File, 1), encodeIType(OpAddi, 9, 8, 0xFFFC));
  EXPECT_EQ(textWord(File, 2), encodeRType(0, 9, 8, 3, FnSll));
  EXPECT_EQ(textWord(File, 3), encodeRType(10, 9, 8, 0, FnSllv));
  EXPECT_EQ(textWord(File, 4), encodeIType(OpLui, 0, 8, 0x1234));
  EXPECT_EQ(textWord(File, 5), encodeIType(OpOri, 8, 8, 0x5678));
  EXPECT_EQ(textWord(File, 6), encodeIType(OpLw, 29, 11, 8));
  EXPECT_EQ(textWord(File, 7), encodeIType(OpSw, 29, 11, 8));
  EXPECT_EQ(textWord(File, 8), encodeRType(0, 0, 0, 0, FnSyscall));
  EXPECT_EQ(textWord(File, 9), encodeRType(31, 0, 0, 0, FnJr));
}

TEST(MriscAsm, BranchesJumpsPseudos) {
  using namespace mrisc;
  SxfFile File = assembleOrDie(TargetArch::Mrisc, R"(
.text
main:
  beq $t0, $t1, done
  nop
  bne $t0, $zero, main
  nop
  blez $t0, done
  nop
  j done
  nop
  jal main
  nop
  b done
  nop
  move $t5, $t6
  li $v0, 70000
done:
  jr $ra
  nop
)");
  const TargetInfo &T = mriscTarget();
  Addr Base = File.segment(SegKind::Text)->VAddr;
  Addr Done = File.findSymbol("done")->Value;
  EXPECT_EQ(T.directTarget(textWord(File, 0), Base),
            std::optional<Addr>(Done));
  EXPECT_EQ(T.directTarget(textWord(File, 2), Base + 8),
            std::optional<Addr>(Base));
  EXPECT_EQ(T.directTarget(textWord(File, 4), Base + 16),
            std::optional<Addr>(Done));
  EXPECT_EQ(T.directTarget(textWord(File, 6), Base + 24),
            std::optional<Addr>(Done));
  EXPECT_EQ(T.classify(textWord(File, 8)), InstCategory::CallDirect);
  // b expands to beq $zero, $zero.
  EXPECT_EQ(T.classify(textWord(File, 10)), InstCategory::BranchDirect);
  EXPECT_EQ(T.directTarget(textWord(File, 10), Base + 40),
            std::optional<Addr>(Done));
  // li of a value > 16 bits expands to lui+ori.
  EXPECT_EQ(textWord(File, 13), encodeIType(OpLui, 0, 2, 1));
  EXPECT_EQ(textWord(File, 14), encodeIType(OpOri, 2, 2, 70000 & 0xFFFF));
}
