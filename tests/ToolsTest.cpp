//===- tests/ToolsTest.cpp - Tool validation against VM ground truth --------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the §5 applications end-to-end: every tool's measurements are
/// compared against ground truth collected by simulator hooks on the
/// *original* program, and every instrumented program must behave exactly
/// like the original.
///
//===----------------------------------------------------------------------===//

#include "tools/ActiveMem.h"
#include "tools/AdhocQpt.h"
#include "tools/Qpt.h"
#include "tools/Sandbox.h"
#include "tools/Tracer.h"
#include "tools/WindTunnel.h"
#include "tools/Optimizer.h"
#include "tools/RegFree.h"
#include "isa/SriscEncoding.h"
#include "asmkit/Assembler.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <map>

using namespace eel;

namespace {

WorkloadOptions baseOptions(uint64_t Seed) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.Routines = 10;
  Opts.SwitchPercent = 35;
  return Opts;
}

} // namespace

// --- qpt2 -----------------------------------------------------------------------

TEST(Qpt2, EdgeCountsMatchGroundTruth) {
  for (TargetArch Arch : AllTargetArches) {
    for (uint64_t Seed : {1u, 2u, 3u}) {
      SxfFile File = generateWorkload(Arch, baseOptions(Seed));

      // Ground truth: per-(branch, taken) tallies from the original run.
      Machine Original(File);
      std::map<std::pair<Addr, bool>, uint64_t> BranchTally;
      Original.OnTransfer = [&](Addr PC, Addr, bool Taken) {
        BranchTally[{PC, Taken}]++;
      };
      RunResult OrigResult = Original.run();
      ASSERT_EQ(OrigResult.Reason, StopReason::Exited);

      Executable Exec((SxfFile(File)));
      Qpt2Profiler::Options ProfOpts;
      ProfOpts.CountBlocks = false; // edges only in this test
      Qpt2Profiler Profiler(Exec, ProfOpts);
      Profiler.instrument();
      ASSERT_GT(Profiler.counters().size(), 4u);

      Expected<SxfFile> Edited = Exec.writeEditedExecutable();
      ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
      Machine Instrumented(Edited.value());
      RunResult InstResult = Instrumented.run();
      EXPECT_EQ(InstResult.Output, OrigResult.Output);
      EXPECT_EQ(InstResult.ExitCode, OrigResult.ExitCode);

      std::vector<uint64_t> Counts =
          Profiler.readCounts(Instrumented.memory());
      unsigned Checked = 0;
      for (size_t I = 0; I < Counts.size(); ++I) {
        const Qpt2Profiler::CounterInfo &Info = Profiler.counters()[I];
        if (Info.K != Qpt2Profiler::CounterInfo::Kind::Edge)
          continue;
        if (Info.Edge == EdgeKind::Taken) {
          EXPECT_EQ(Counts[I], (BranchTally[{Info.TermAddr, true}]))
              << "taken edge @0x" << std::hex << Info.TermAddr;
          ++Checked;
        } else if (Info.Edge == EdgeKind::NotTaken) {
          EXPECT_EQ(Counts[I], (BranchTally[{Info.TermAddr, false}]))
              << "fall edge @0x" << std::hex << Info.TermAddr;
          ++Checked;
        }
      }
      EXPECT_GT(Checked, 4u);
    }
  }
}

TEST(Qpt2, BlockCountsMatchGroundTruth) {
  SxfFile File = generateWorkload(TargetArch::Srisc, baseOptions(5));
  Machine Original(File);
  std::map<Addr, uint64_t> InstTally;
  Original.OnInst = [&](Addr PC, MachWord) { InstTally[PC]++; };
  RunResult OrigResult = Original.run();
  ASSERT_EQ(OrigResult.Reason, StopReason::Exited);

  Executable Exec((SxfFile(File)));
  Qpt2Profiler::Options ProfOpts;
  ProfOpts.CountEdges = false;
  Qpt2Profiler Profiler(Exec, ProfOpts);
  Profiler.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  Machine Instrumented(Edited.value());
  RunResult InstResult = Instrumented.run();
  EXPECT_EQ(InstResult.Output, OrigResult.Output);

  std::vector<uint64_t> Counts = Profiler.readCounts(Instrumented.memory());
  unsigned Checked = 0, NonZero = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    const Qpt2Profiler::CounterInfo &Info = Profiler.counters()[I];
    ASSERT_EQ(Info.K, Qpt2Profiler::CounterInfo::Kind::Block);
    // A block executes as often as its first instruction.
    EXPECT_EQ(Counts[I], InstTally[Info.BlockAnchor])
        << "block @0x" << std::hex << Info.BlockAnchor;
    ++Checked;
    if (Counts[I])
      ++NonZero;
  }
  EXPECT_GT(Checked, 20u);
  EXPECT_GT(NonZero, 10u);
}

// --- adhoc qpt baseline -------------------------------------------------------------

TEST(AdhocQpt, BehaviorAndCounts) {
  for (uint64_t Seed : {1u, 4u}) {
    SxfFile File = generateWorkload(TargetArch::Srisc, baseOptions(Seed));
    Machine Original(File);
    std::map<Addr, uint64_t> InstTally;
    Original.OnInst = [&](Addr PC, MachWord) { InstTally[PC]++; };
    RunResult OrigResult = Original.run();
    ASSERT_EQ(OrigResult.Reason, StopReason::Exited);

    Expected<AdhocResult> Result = adhocInstrument(File);
    ASSERT_TRUE(Result.hasValue()) << Result.error().message();
    Machine Instrumented(Result.value().Edited);
    RunResult InstResult = Instrumented.run();
    EXPECT_EQ(InstResult.Reason, StopReason::Exited);
    EXPECT_EQ(InstResult.Output, OrigResult.Output);
    EXPECT_EQ(InstResult.ExitCode, OrigResult.ExitCode);

    std::vector<uint64_t> Counts =
        adhocReadCounts(Result.value(), Instrumented.memory());
    for (size_t I = 0; I < Counts.size(); ++I) {
      Addr Block = Result.value().Counters[I].first;
      EXPECT_EQ(Counts[I], InstTally[Block])
          << "adhoc block @0x" << std::hex << Block;
    }
  }
}

TEST(AdhocQpt, RejectsMrisc) {
  SxfFile File = generateWorkload(TargetArch::Mrisc, baseOptions(1));
  EXPECT_TRUE(adhocInstrument(File).hasError());
}

// --- Active Memory ------------------------------------------------------------------

namespace {

/// Reference direct-mapped cache simulation over a recorded address trace.
struct RefCache {
  explicit RefCache(CacheConfig C) : Config(C), Tags(C.Lines, 0xFFFFFFFFu) {}
  void access(Addr A) {
    ++Accesses;
    uint32_t Line = A / Config.LineBytes;
    uint32_t Index = Line & (Config.Lines - 1);
    if (Tags[Index] != Line) {
      ++Misses;
      Tags[Index] = Line;
    }
  }
  CacheConfig Config;
  std::vector<uint32_t> Tags;
  uint64_t Accesses = 0, Misses = 0;
};

} // namespace

TEST(ActiveMem, MatchesReferenceSimulation) {
  for (TargetArch Arch : AllTargetArches) {
    SxfFile File = generateWorkload(Arch, baseOptions(2));
    CacheConfig Config;
    Config.LineBytes = 16;
    Config.Lines = 32;

    // Reference: feed the original run's data addresses through a model.
    Machine Original(File);
    RefCache Reference(Config);
    Original.OnMemory = [&](Addr, Addr EA, unsigned, bool) {
      Reference.access(EA);
    };
    RunResult OrigResult = Original.run();
    ASSERT_EQ(OrigResult.Reason, StopReason::Exited);

    Executable Exec((SxfFile(File)));
    ActiveMemory AM(Exec, Config);
    AM.instrument();
    ASSERT_GT(AM.sitesInstrumented(), 10u);
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();

    Machine Instrumented(Edited.value());
    RunResult InstResult = Instrumented.run();
    EXPECT_EQ(InstResult.Output, OrigResult.Output);
    EXPECT_EQ(InstResult.ExitCode, OrigResult.ExitCode);

    EXPECT_EQ(AM.accesses(Instrumented.memory()), Reference.Accesses);
    EXPECT_EQ(AM.misses(Instrumented.memory()), Reference.Misses);
    EXPECT_GT(Reference.Accesses, 50u);
    EXPECT_GT(Reference.Misses, 0u);

    // The §1/§5 claim: inline tests cost a single-digit slowdown.
    double Slowdown = static_cast<double>(InstResult.Instructions) /
                      static_cast<double>(OrigResult.Instructions);
    EXPECT_GT(Slowdown, 1.0);
    EXPECT_LT(Slowdown, 12.0);
  }
}

// --- Sandbox ---------------------------------------------------------------------------

TEST(Sandbox, AllowsWellBehavedProgram) {
  SxfFile File = generateWorkload(TargetArch::Srisc, baseOptions(3));
  RunResult OrigResult = runToCompletion(File);

  Executable Exec((SxfFile(File)));
  Sandboxer SFI(Exec, /*DataRegionBase=*/0x400000,
                /*StackRegionBase=*/0x7FE00000);
  SFI.instrument();
  ASSERT_GT(SFI.sitesInstrumented(), 5u);
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  RunResult InstResult = runToCompletion(Edited.value());
  EXPECT_EQ(InstResult.Output, OrigResult.Output);
  EXPECT_EQ(InstResult.ExitCode, OrigResult.ExitCode);
}

TEST(Sandbox, CatchesWildStore) {
  for (TargetArch Arch : AllTargetArches) {
    const char *Source = nullptr;
    switch (Arch) {
    case TargetArch::Srisc:
      Source = R"(
.text
main:
  set 0x200000, %o1     ! outside data and stack regions
  mov 7, %o2
  st %o2, [%o1 + 0]
  mov 0, %o0
  sys 0
  ret
  nop
)";
      break;
    case TargetArch::Mrisc:
      Source = R"(
.text
main:
  li $t0, 0x200000
  li $t1, 7
  sw $t1, 0($t0)
  li $a0, 0
  li $v0, 0
  syscall
  jr $ra
  nop
)";
      break;
    case TargetArch::Arisc:
      Source = R"(
.text
main:
  li $t0, 0x200000
  li $t1, 7
  stw $t1, 0($t0)
  li $a0, 0
  sys 0
  ret
)";
      break;
    }
    Executable Exec(assembleOrDie(Arch, Source));
    Sandboxer SFI(Exec, 0x400000, 0x7FE00000);
    SFI.instrument();
    ASSERT_EQ(SFI.sitesInstrumented(), 1u);
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
    RunResult R = runToCompletion(Edited.value());
    EXPECT_EQ(R.Reason, StopReason::Exited);
    EXPECT_EQ(R.ExitCode, Sandboxer::ViolationExitCode);
  }
}

// --- Tracer ---------------------------------------------------------------------------

TEST(Tracer, TraceMatchesGroundTruthExactly) {
  for (TargetArch Arch : AllTargetArches) {
    SxfFile File = generateWorkload(Arch, baseOptions(6));
    Machine Original(File);
    std::vector<Addr> GroundTruth;
    Original.OnMemory = [&](Addr, Addr EA, unsigned, bool) {
      GroundTruth.push_back(EA);
    };
    RunResult OrigResult = Original.run();
    ASSERT_EQ(OrigResult.Reason, StopReason::Exited);
    ASSERT_GT(GroundTruth.size(), 20u);

    Executable Exec((SxfFile(File)));
    MemoryTracer Tracer(Exec, /*CapacityEntries=*/1u << 18);
    Tracer.instrument();
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();

    Machine Instrumented(Edited.value());
    RunResult InstResult = Instrumented.run();
    EXPECT_EQ(InstResult.Output, OrigResult.Output);
    std::vector<Addr> Trace = Tracer.readTrace(Instrumented.memory());
    EXPECT_EQ(Trace, GroundTruth);
  }
}

TEST(Tracer, SaturatesAtCapacity) {
  SxfFile File = generateWorkload(TargetArch::Srisc, baseOptions(7));
  Executable Exec((SxfFile(File)));
  MemoryTracer Tracer(Exec, /*CapacityEntries=*/16);
  Tracer.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue());
  Machine Instrumented(Edited.value());
  RunResult R = Instrumented.run();
  EXPECT_EQ(R.Reason, StopReason::Exited); // no buffer overrun crash
  EXPECT_EQ(Tracer.readTrace(Instrumented.memory()).size(), 16u);
}

// --- Wind Tunnel cycle counting (§1) --------------------------------------------------

TEST(WindTunnel, VirtualCyclesExactlyMatchRetiredInstructions) {
  for (TargetArch Arch : AllTargetArches) {
    for (uint64_t Seed : {3u, 8u}) {
      SxfFile File = generateWorkload(Arch, baseOptions(Seed));
      RunResult Original = runToCompletion(File);
      ASSERT_EQ(Original.Reason, StopReason::Exited);

      Executable Exec((SxfFile(File)));
      CycleCounter Counter(Exec, /*Quantum=*/0);
      Counter.instrument();
      Expected<SxfFile> Edited = Exec.writeEditedExecutable();
      ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
      Machine M(Edited.value());
      RunResult After = M.run();
      EXPECT_EQ(After.Output, Original.Output);
      EXPECT_EQ(After.ExitCode, Original.ExitCode);
      // The whole point: the virtual cycle counter equals the simulator's
      // retired-instruction count for the ORIGINAL program, exactly.
      EXPECT_EQ(Counter.cycles(M.memory()), Original.Instructions)
          << "arch=" << static_cast<int>(Arch) << " seed=" << Seed;
    }
  }
}

TEST(WindTunnel, QuantumExpirationsAreExact) {
  SxfFile File = generateWorkload(TargetArch::Srisc, baseOptions(9));
  RunResult Original = runToCompletion(File);
  const uint32_t Quantum = 500;

  Executable Exec((SxfFile(File)));
  CycleCounter Counter(Exec, Quantum);
  Counter.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  Machine M(Edited.value());
  RunResult After = M.run();
  EXPECT_EQ(After.Output, Original.Output);

  uint64_t Cycles = Counter.cycles(M.memory());
  EXPECT_EQ(Cycles, Original.Instructions);
  // Expiration checks run at every block boundary, whose weights are far
  // smaller than the quantum, so the count is exact.
  EXPECT_EQ(Counter.quantumExpirations(M.memory()), Cycles / Quantum);
  EXPECT_GT(Counter.quantumExpirations(M.memory()), 0u);
}

TEST(WindTunnel, AnnulledDelayAccounting) {
  // An annulled branch's delay instruction executes only when taken; the
  // cycle counter must charge it on exactly that path.
  SxfFile File = assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 0, %o4
  mov 3, %o5
.Lloop:
  cmp %o5, 1
  bg,a .Lcont
  add %o4, 1, %o4      ! delay: executes only when the loop continues
.Lcont:
  sub %o5, 1, %o5
  cmp %o5, 0
  bg .Lloop
  nop
  mov %o4, %o0
  sys 0
  ret
  nop
)");
  RunResult Original = runToCompletion(File);
  Executable Exec((SxfFile(File)));
  CycleCounter Counter(Exec);
  Counter.instrument();
  EXPECT_GT(Counter.edgeIncrements(), 0u); // the annulled-taken edge
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  Machine M(Edited.value());
  RunResult After = M.run();
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
  EXPECT_EQ(Counter.cycles(M.memory()), Original.Instructions);
}

// --- Dead-code elimination (the §1 optimization use) ---------------------------------

TEST(Optimizer, RemovesObviouslyDeadComputations) {
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 11, %o3          ! dead: o3 never read
  add %o3, 5, %o4      ! dead once o3's reader dies
  smul %o4, 3, %o5     ! dead: o5 never read
  mov 7, %o0           ! live: the exit status
  cmp %o0, 7           ! dead CC: no branch reads it
  sys 0
  ret
  nop
)"));
  RunResult Original = runToCompletion(Exec.image());
  DeadCodeEliminator DCE(Exec);
  unsigned Removed = DCE.run();
  EXPECT_GE(Removed, 4u);
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  RunResult After = runToCompletion(Edited.value());
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
  EXPECT_EQ(After.ExitCode, 7);
  EXPECT_LT(After.Instructions, Original.Instructions);
}

TEST(Optimizer, PreservesLiveComputationsAndBehavior) {
  for (TargetArch Arch : AllTargetArches) {
    for (uint64_t Seed : {2u, 5u, 9u}) {
      SxfFile File = generateWorkload(Arch, baseOptions(Seed));
      RunResult Original = runToCompletion(File);
      Executable Exec(std::move(File));
      DeadCodeEliminator DCE(Exec);
      DCE.run();
      Expected<SxfFile> Edited = Exec.writeEditedExecutable();
      ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
      RunResult After = runToCompletion(Edited.value());
      EXPECT_EQ(After.Output, Original.Output)
          << "arch=" << static_cast<int>(Arch) << " seed=" << Seed
          << " removed=" << DCE.removed();
      EXPECT_EQ(After.ExitCode, Original.ExitCode);
      EXPECT_LE(After.Instructions, Original.Instructions);
    }
  }
}

// --- Register liberation (the §3.5 footnote's future mechanism) ---------------------

TEST(RegFree, FreesARegisterProgramWide) {
  for (TargetArch Arch : AllTargetArches) {
    SxfFile File = generateWorkload(Arch, baseOptions(4));
    RunResult Original = runToCompletion(File);
    Executable Exec(std::move(File));
    // Free the workload's primary scratch (SRISC %o3 = r11, MRISC $t0 = r8,
    // ARISC $t0 = r2).
    unsigned Reg = Arch == TargetArch::Srisc   ? 11u
                   : Arch == TargetArch::Mrisc ? 8u
                                               : 2u;
    RegFreeResult Freed = freeRegisterEverywhere(Exec, Reg);
    ASSERT_TRUE(Freed.Success)
        << "failed in " << Freed.FailedRoutines.size() << " routine(s)";
    EXPECT_GT(Freed.InstructionsRewritten, 10u);

    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
    RunResult After = runToCompletion(Edited.value());
    EXPECT_EQ(After.Output, Original.Output);
    EXPECT_EQ(After.ExitCode, Original.ExitCode);

    // The freed register no longer appears anywhere in the edited text
    // (no tool code was inserted to use it in this test).
    const TargetInfo &T = Exec.target();
    const SxfSegment *Text = Edited.value().segment(SegKind::Text);
    unsigned Uses = 0;
    for (size_t Off = 0; Off + 4 <= Text->Bytes.size(); Off += 4) {
      MachWord W = *Edited.value().readWord(Text->VAddr + Off);
      if (T.classify(W) == InstCategory::Invalid)
        continue;
      if (T.reads(W).contains(Reg) || T.writes(W).contains(Reg))
        ++Uses;
    }
    EXPECT_EQ(Uses, 0u) << "arch=" << static_cast<int>(Arch);
  }
}

TEST(RegFree, RejectsReservedAndLinkRegisters) {
  SxfFile File = generateWorkload(TargetArch::Srisc, baseOptions(1));
  Executable Exec(std::move(File));
  EXPECT_FALSE(freeRegisterEverywhere(Exec, 0).Success);
  EXPECT_FALSE(freeRegisterEverywhere(Exec, 14).Success); // %sp
  EXPECT_FALSE(freeRegisterEverywhere(Exec, 15).Success); // %o7 (link)
}

TEST(RegFree, ReplaceInstPrimitive) {
  // Direct use of the instruction-modification primitive: turn an add
  // into a subtract in place.
  Executable Exec(assembleOrDie(TargetArch::Srisc, R"(
.text
main:
  mov 10, %o0
  add %o0, 3, %o0
  sys 0
  ret
  nop
)"));
  Exec.readContents();
  Cfg *G = Exec.findRoutine("main")->controlFlowGraph();
  BasicBlock *B = G->blockAt(Exec.textBase());
  ASSERT_NE(B, nullptr);
  using namespace srisc;
  G->replaceInst(B, 1, encodeArithImm(Op3Sub, 8, 8, 3));
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue());
  EXPECT_EQ(runToCompletion(Edited.value()).ExitCode, 7); // 10 - 3
}
