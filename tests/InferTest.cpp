//===- tests/InferTest.cpp - eel-infer heuristic disassembly tests ----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eel-infer fixpoint (analysis/Infer.h) verified end-to-end: stripped
/// workloads go down the inference path of readContents() and must produce
/// (a) bit-identical boundaries and resolutions across thread counts and
/// consecutive runs, (b) recovered resolutions for the cell tail-call and
/// mangled-dispatch idioms that defeat plain slicing, (c) no poisoning
/// from data interleaved into text, and (d) edited executables whose
/// observable behaviour is identical to the original.
///
//===----------------------------------------------------------------------===//

#include "analysis/Infer.h"
#include "core/Executable.h"
#include "core/Slice.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace eel;

namespace {

WorkloadOptions adversarial(uint64_t Seed, TargetArch Arch) {
  WorkloadOptions W;
  W.Seed = Seed;
  W.Routines = 12;
  W.SwitchPercent = 60;
  W.TailCallPercent = 40;
  W.MangledTablePercent = 50;
  W.InterleavedDataPercent = 40;
  W.AnnulledBranches = Arch == TargetArch::Srisc;
  return W;
}

SxfFile strippedCopy(const SxfFile &File) {
  SxfFile Out(File);
  Out.Symbols.clear();
  return Out;
}

/// Everything inference decides, as one comparable string: routine names,
/// extents, confidence, and every indirect site's resolution.
std::string layoutFingerprint(Executable &Exec) {
  std::string FP;
  for (const auto &R : Exec.routines()) {
    FP += R->name() + ":" + std::to_string(R->startAddr()) + "-" +
          std::to_string(R->endAddr()) + (R->isData() ? ":data" : "") +
          ":c" + std::to_string(Exec.inferredConfidence(R->startAddr())) +
          "\n";
    if (R->isData())
      continue;
    for (const IndirectSite &Site : R->controlFlowGraph()->indirectSites()) {
      FP += " @" + std::to_string(Site.JumpAddr) + " k" +
            std::to_string(static_cast<int>(Site.Resolution.K)) +
            (Site.Resolution.Inferred ? " inf" : "");
      for (Addr T : Site.Resolution.Targets)
        FP += " " + std::to_string(T);
      FP += "\n";
    }
    R->deleteControlFlowGraph();
  }
  return FP;
}

std::set<Addr> routineStarts(const SxfFile &File) {
  Executable Exec((SxfFile(File)));
  Exec.readContents();
  std::set<Addr> Starts;
  for (const auto &R : Exec.routines())
    if (!R->isData())
      Starts.insert(R->startAddr());
  return Starts;
}

} // namespace

// --- Determinism -----------------------------------------------------------

TEST(InferDeterminism, ThreadsAndConsecutiveRuns) {
  for (TargetArch Arch : AllTargetArches) {
    SxfFile File = strippedCopy(generateWorkload(Arch, adversarial(1003, Arch)));
    auto Run = [&File](unsigned Threads) {
      Executable::Options O;
      O.Threads = Threads;
      Executable Exec(SxfFile(File), O);
      Exec.readContents();
      EXPECT_TRUE(Exec.inferenceUsed());
      return layoutFingerprint(Exec);
    };
    std::string Serial = Run(1);
    std::string Parallel = Run(8);
    std::string Again = Run(8);
    EXPECT_FALSE(Serial.empty());
    EXPECT_EQ(Serial, Parallel);
    EXPECT_EQ(Parallel, Again);
  }
}

// --- Recovery of slicing-defeating idioms ----------------------------------

TEST(InferRecovery, StrippedCellTailCalls) {
  WorkloadOptions W;
  W.Seed = 1001;
  W.Routines = 24;
  W.SwitchPercent = 0;
  W.TailCallPercent = 100;
  SxfFile File = generateWorkload(TargetArch::Srisc, W);
  std::set<Addr> Starts = routineStarts(File);

  Executable Exec(strippedCopy(File));
  Exec.readContents();
  ASSERT_TRUE(Exec.inferenceUsed());
  unsigned Jumps = 0, Recovered = 0;
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    for (const IndirectSite &Site : R->controlFlowGraph()->indirectSites()) {
      if (Site.IsCall)
        continue;
      ++Jumps;
      if (Site.Resolution.K == IndirectResolution::Kind::Literal &&
          Site.Resolution.Inferred) {
        ++Recovered;
        ASSERT_EQ(Site.Resolution.Targets.size(), 1u);
        // The recovered target must be a real routine start (per the
        // symboled analysis of the same image).
        EXPECT_TRUE(Starts.count(Site.Resolution.Targets[0]))
            << "bogus inferred target " << Site.Resolution.Targets[0];
      }
    }
    R->deleteControlFlowGraph();
  }
  EXPECT_GT(Jumps, 0u);
  EXPECT_EQ(Recovered, Jumps) << "some cell tail calls stayed unanalyzable";
}

TEST(InferRecovery, MangledDispatchTables) {
  for (TargetArch Arch : AllTargetArches) {
    WorkloadOptions W;
    W.Seed = 7;
    W.Routines = 10;
    W.SwitchPercent = 100;
    W.MangledTablePercent = 100;
    W.AnnulledBranches = Arch == TargetArch::Srisc;
    SxfFile File = generateWorkload(Arch, W);

    // With symbols, plain backward slicing sees only an opaque load of the
    // table base: the sites stay unanalyzable.
    unsigned SymboledAnalyzed = 0, SymboledJumps = 0;
    {
      Executable Exec((SxfFile(File)));
      Exec.readContents();
      for (const auto &R : Exec.routines()) {
        if (R->isData())
          continue;
        for (const IndirectSite &Site :
             R->controlFlowGraph()->indirectSites()) {
          if (Site.IsCall)
            continue;
          ++SymboledJumps;
          if (Site.Resolution.K == IndirectResolution::Kind::DispatchTable)
            ++SymboledAnalyzed;
        }
        R->deleteControlFlowGraph();
      }
    }
    EXPECT_GT(SymboledJumps, 0u);
    EXPECT_EQ(SymboledAnalyzed, 0u)
        << "mangled tables should defeat plain slicing";

    // Stripped, the fixpoint's constant-cell oracle folds the base load
    // and the table idiom resolves.
    Executable Exec(strippedCopy(File));
    Exec.readContents();
    unsigned Jumps = 0, Recovered = 0;
    for (const auto &R : Exec.routines()) {
      if (R->isData())
        continue;
      for (const IndirectSite &Site :
           R->controlFlowGraph()->indirectSites()) {
        if (Site.IsCall)
          continue;
        ++Jumps;
        if (Site.Resolution.K == IndirectResolution::Kind::DispatchTable &&
            Site.Resolution.Inferred) {
          ++Recovered;
          EXPECT_GE(Site.Resolution.Targets.size(), 4u);
        }
      }
      R->deleteControlFlowGraph();
    }
    EXPECT_EQ(Jumps, SymboledJumps);
    EXPECT_EQ(Recovered, Jumps)
        << "mangled dispatch tables not recovered on arch "
        << static_cast<int>(Arch);
  }
}

// --- Data-in-text exclusion ------------------------------------------------

TEST(InferExclusion, InterleavedDataDoesNotPoisonCellFacts) {
  for (TargetArch Arch : AllTargetArches) {
    WorkloadOptions W;
    W.Seed = 11;
    W.Routines = 16;
    W.SwitchPercent = 0;
    W.TailCallPercent = 100;
    W.InterleavedDataPercent = 100;
    W.AnnulledBranches = Arch == TargetArch::Srisc;
    Executable Exec(strippedCopy(generateWorkload(Arch, W)));
    Exec.readContents();
    unsigned Jumps = 0, Recovered = 0;
    for (const auto &R : Exec.routines()) {
      if (R->isData())
        continue;
      for (const IndirectSite &Site :
           R->controlFlowGraph()->indirectSites()) {
        if (Site.IsCall)
          continue;
        ++Jumps;
        if (Site.Resolution.K == IndirectResolution::Kind::Literal &&
            Site.Resolution.Inferred)
          ++Recovered;
      }
      R->deleteControlFlowGraph();
    }
    EXPECT_GT(Jumps, 0u);
    EXPECT_EQ(Recovered, Jumps)
        << "junk decodings of interleaved data poisoned cell constancy";
  }
}

// --- Boundary sanity -------------------------------------------------------

TEST(InferBoundaries, InferredStartsAreRealStarts) {
  WorkloadOptions W;
  W.Seed = 5;
  W.Routines = 6; // all called directly from main: every start referenced
  W.SwitchPercent = 50;
  W.TailCallPercent = 40;
  SxfFile File = generateWorkload(TargetArch::Srisc, W);
  std::set<Addr> SymStarts = routineStarts(File);

  Executable Exec(strippedCopy(File));
  Exec.readContents();
  std::set<Addr> InfStarts;
  for (const auto &R : Exec.routines())
    if (!R->isData())
      InfStarts.insert(R->startAddr());
  EXPECT_EQ(InfStarts, SymStarts);
}

TEST(InferBoundaries, ResultInvariants) {
  Executable Exec(strippedCopy(
      generateWorkload(TargetArch::Srisc, adversarial(9, TargetArch::Srisc))));
  InferResult Result = inferLayout(Exec);
  ASSERT_FALSE(Result.Routines.empty());
  EXPECT_GE(Result.Stats.Rounds, 1u);
  EXPECT_LE(Result.Stats.Rounds, 8u);
  for (size_t I = 0; I < Result.Routines.size(); ++I) {
    const InferredRoutine &R = Result.Routines[I];
    EXPECT_LT(R.Lo, R.Hi);
    EXPECT_FALSE(R.Name.empty());
    if (I) {
      EXPECT_EQ(Result.Routines[I - 1].Hi, R.Lo) << "extents must tile text";
    }
  }
  // Running it twice yields identical facts.
  InferResult Again = inferLayout(Exec);
  ASSERT_EQ(Again.Routines.size(), Result.Routines.size());
  for (size_t I = 0; I < Result.Routines.size(); ++I) {
    EXPECT_EQ(Again.Routines[I].Lo, Result.Routines[I].Lo);
    EXPECT_EQ(Again.Routines[I].Hi, Result.Routines[I].Hi);
    EXPECT_EQ(Again.Routines[I].Name, Result.Routines[I].Name);
    EXPECT_EQ(static_cast<int>(Again.Routines[I].Confidence),
              static_cast<int>(Result.Routines[I].Confidence));
  }
  EXPECT_EQ(Again.ConstantCells, Result.ConstantCells);
}

// --- Options ---------------------------------------------------------------

TEST(InferOptions, NoSymbolsForcesInference) {
  WorkloadOptions W;
  W.Seed = 3;
  W.Routines = 6;
  SxfFile File = generateWorkload(TargetArch::Srisc, W);
  {
    Executable Exec((SxfFile(File)));
    Exec.readContents();
    EXPECT_FALSE(Exec.inferenceUsed());
  }
  Executable::Options O;
  O.NoSymbols = true;
  Executable Exec(SxfFile(File), O);
  Exec.readContents();
  EXPECT_TRUE(Exec.inferenceUsed());
  bool SawInferredName = false;
  for (const auto &R : Exec.routines())
    if (R->name() == "entry" || R->name().rfind("proc_", 0) == 0)
      SawInferredName = true;
  EXPECT_TRUE(SawInferredName);
}

// --- Behavioural identity of edited stripped binaries ----------------------

TEST(InferVm, EditedStrippedAdversarialIdentity) {
  for (TargetArch Arch : AllTargetArches) {
    for (uint64_t Seed : {42u, 43u, 44u}) {
      SxfFile File =
          strippedCopy(generateWorkload(Arch, adversarial(Seed, Arch)));
      Executable::Options O;
      O.Verify = true;
      Executable Exec(SxfFile(File), O);
      Exec.readContents();
      ASSERT_TRUE(Exec.inferenceUsed());
      RunResult Original = runToCompletion(File);
      Expected<SxfFile> Edited = Exec.writeEditedExecutable();
      ASSERT_FALSE(Edited.hasError())
          << "writeEditedExecutable: " << Edited.error().message();
      RunResult After = runToCompletion(Edited.value());
      EXPECT_EQ(static_cast<int>(Original.Reason),
                static_cast<int>(After.Reason));
      EXPECT_EQ(Original.ExitCode, After.ExitCode);
      EXPECT_EQ(Original.Output, After.Output);
      EXPECT_EQ(static_cast<int>(Original.Reason),
                static_cast<int>(StopReason::Exited));
    }
  }
}
