//===- tests/TraceTest.cpp - Observability layer tests -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the tracing/metrics/report stack (label: obs):
///
///  * histogram bucketing boundaries and the value-keyed determinism
///    guarantee — counter and histogram snapshots from the same pipeline
///    are bit-identical at 1 and 8 worker threads (time.* excluded, the
///    documented wall-clock exemption);
///  * the span-name multiset is thread-count-deterministic too (pool.*
///    spans excluded — worker occupancy is schedule-dependent by design);
///  * exported Chrome trace JSON and eel-report JSON parse with the strict
///    in-tree parser and are dump/parse round-trip fixpoints;
///  * disabled-mode tracing records nothing and creates no ring buffers;
///  * phase-tree reconstruction from interval containment, including the
///    zero-length-span sequence tiebreak;
///  * Prometheus text exposition shape and malformed-JSON rejection.
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "analysis/Verifier.h"
#include "core/Executable.h"
#include "support/FileIO.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace eel;

namespace {

/// Everything one traced pipeline run leaves behind at its quiescent end.
struct PipelineArtifacts {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<HistogramSnapshot> Histograms;
  std::vector<TraceEvent> Spans;
  unsigned VerifierChecks = 0;
  unsigned VerifierErrors = 0;
};

/// Runs generate -> readContents -> writeEditedExecutable -> verifyEdit
/// with tracing on and \p Threads workers, against fresh registries.
PipelineArtifacts runTracedPipeline(unsigned Threads) {
  StatRegistry::instance().resetAll();
  HistogramRegistry::instance().resetAll();
  TraceCollector::instance().reset();

  WorkloadOptions WOpts;
  WOpts.Seed = 11;
  WOpts.Routines = 16;
  WOpts.SwitchPercent = 35;
  WOpts.TailCallPercent = 10;
  SxfFile File = generateWorkload(TargetArch::Srisc, WOpts);

  Executable::Options EOpts;
  EOpts.Threads = Threads;
  EOpts.Trace = true;
  Executable Exec(std::move(File), EOpts);
  Expected<bool> Read = Exec.readContents();
  EXPECT_FALSE(Read.hasError());
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  EXPECT_FALSE(Edited.hasError());

  PipelineArtifacts Out;
  if (Edited.hasValue()) {
    VerifyOptions VOpts;
    VOpts.Threads = Threads;
    DiagnosticReport Findings = verifyEdit(Exec, Edited.value(), VOpts);
    Out.VerifierChecks = Findings.checksRun();
    Out.VerifierErrors = Findings.errorCount();
  }

  traceSetEnabled(false);
  Out.Counters = StatRegistry::instance().snapshot();
  Out.Histograms = HistogramRegistry::instance().snapshot();
  Out.Spans = TraceCollector::instance().drain();
  return Out;
}

bool isWallClockName(const std::string &Name) {
  return Name.rfind("time.", 0) == 0;
}

bool isScheduleDependentSpan(const std::string &Name) {
  return Name.rfind("pool.", 0) == 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram bucketing
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(histogramBucket(0), 0u);
  EXPECT_EQ(histogramBucket(1), 1u);
  EXPECT_EQ(histogramBucket(2), 2u);
  EXPECT_EQ(histogramBucket(3), 2u);
  EXPECT_EQ(histogramBucket(4), 3u);
  EXPECT_EQ(histogramBucket(7), 3u);
  EXPECT_EQ(histogramBucket(8), 4u);
  EXPECT_EQ(histogramBucket(std::numeric_limits<uint64_t>::max()), 64u);

  EXPECT_EQ(histogramBucketLe(0), 0u);
  EXPECT_EQ(histogramBucketLe(1), 1u);
  EXPECT_EQ(histogramBucketLe(2), 3u);
  EXPECT_EQ(histogramBucketLe(3), 7u);
  EXPECT_EQ(histogramBucketLe(64), std::numeric_limits<uint64_t>::max());

  // Every sample lands in the bucket whose le bound covers it.
  for (uint64_t V : {0ull, 1ull, 2ull, 5ull, 1000ull, 123456789ull}) {
    unsigned B = histogramBucket(V);
    EXPECT_LE(V, histogramBucketLe(B));
    if (B > 0) {
      EXPECT_GT(V, histogramBucketLe(B - 1));
    }
  }
}

TEST(Histogram, RecordAndQuantile) {
  HistogramRegistry::instance().resetAll();
  for (uint64_t V : {1ull, 2ull, 3ull, 100ull})
    bumpHistogram("test.hist.record", V);
  HistogramSnapshot H = HistogramRegistry::instance().read("test.hist.record");
  EXPECT_EQ(H.Count, 4u);
  EXPECT_EQ(H.Sum, 106u);
  EXPECT_EQ(H.Min, 1u);
  EXPECT_EQ(H.Max, 100u);
  // Median sample is 2 or 3, both in bucket [2,3] -> le bound 3.
  EXPECT_EQ(H.quantileUpperBound(0.5), 3u);
  // The top quantile lands in 100's bucket: [64,127] -> le bound 127.
  EXPECT_EQ(H.quantileUpperBound(1.0), 127u);
  // Absent histograms read back empty rather than failing.
  EXPECT_EQ(HistogramRegistry::instance().read("test.hist.absent").Count, 0u);
}

//===----------------------------------------------------------------------===//
// Thread-count determinism
//===----------------------------------------------------------------------===//

TEST(Determinism, SnapshotsIdenticalAcrossThreadCounts) {
  PipelineArtifacts Serial = runTracedPipeline(1);
  PipelineArtifacts Parallel = runTracedPipeline(8);

  // Counters: bit-identical, wall-clock timers excluded.
  auto filterCounters =
      [](const std::vector<std::pair<std::string, uint64_t>> &In) {
        std::vector<std::pair<std::string, uint64_t>> Out;
        for (const auto &C : In)
          if (!isWallClockName(C.first))
            Out.push_back(C);
        return Out;
      };
  EXPECT_EQ(filterCounters(Serial.Counters), filterCounters(Parallel.Counters));

  // Histograms: same set of names, and every field of every snapshot
  // matches, bucket by bucket.
  auto filterHists = [](const std::vector<HistogramSnapshot> &In) {
    std::vector<HistogramSnapshot> Out;
    for (const HistogramSnapshot &H : In)
      if (!isWallClockName(H.Name))
        Out.push_back(H);
    return Out;
  };
  std::vector<HistogramSnapshot> A = filterHists(Serial.Histograms);
  std::vector<HistogramSnapshot> B = filterHists(Parallel.Histograms);
  ASSERT_EQ(A.size(), B.size());
  EXPECT_GE(A.size(), 3u); // the acceptance floor: >= 3 histograms populated
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Count, B[I].Count) << A[I].Name;
    EXPECT_EQ(A[I].Sum, B[I].Sum) << A[I].Name;
    EXPECT_EQ(A[I].Min, B[I].Min) << A[I].Name;
    EXPECT_EQ(A[I].Max, B[I].Max) << A[I].Name;
    for (unsigned J = 0; J < HistogramBuckets; ++J)
      EXPECT_EQ(A[I].Buckets[J], B[I].Buckets[J]) << A[I].Name << " bucket "
                                                  << J;
  }

  // The verifier did the same amount of work either way.
  EXPECT_EQ(Serial.VerifierChecks, Parallel.VerifierChecks);
  EXPECT_EQ(Serial.VerifierErrors, 0u);
  EXPECT_EQ(Parallel.VerifierErrors, 0u);
}

TEST(Determinism, SpanNamesIdenticalAcrossThreadCounts) {
  PipelineArtifacts Serial = runTracedPipeline(1);
  PipelineArtifacts Parallel = runTracedPipeline(8);
  ASSERT_FALSE(Serial.Spans.empty());

  auto names = [](const std::vector<TraceEvent> &Spans) {
    std::multiset<std::string> Out;
    for (const TraceEvent &Ev : Spans)
      if (!isScheduleDependentSpan(Ev.Name))
        Out.insert(Ev.Name);
    return Out;
  };
  EXPECT_EQ(names(Serial.Spans), names(Parallel.Spans));

  // Every span is well-formed: end >= start, and nothing was dropped on a
  // workload this small.
  for (const TraceEvent &Ev : Serial.Spans)
    EXPECT_GE(Ev.EndNs, Ev.StartNs);
  EXPECT_EQ(TraceCollector::instance().droppedCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Export formats
//===----------------------------------------------------------------------===//

TEST(Export, ChromeTraceParsesAndRoundTrips) {
  PipelineArtifacts Run = runTracedPipeline(1);
  ASSERT_FALSE(Run.Spans.empty());
  std::string Text = renderChromeTrace(Run.Spans);

  Expected<JsonValue> Doc = parseJson(Text);
  ASSERT_FALSE(Doc.hasError()) << Doc.error().message();
  ASSERT_TRUE(Doc.value().isObject());
  const JsonValue *Events = Doc.value().find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_EQ(Events->Arr.size(), Run.Spans.size());
  for (const JsonValue &Ev : Events->Arr) {
    ASSERT_TRUE(Ev.isObject());
    EXPECT_NE(Ev.find("name"), nullptr);
    ASSERT_NE(Ev.find("ph"), nullptr);
    EXPECT_EQ(Ev.find("ph")->Str, "X");
    EXPECT_NE(Ev.find("ts"), nullptr);
    EXPECT_NE(Ev.find("dur"), nullptr);
    EXPECT_NE(Ev.find("tid"), nullptr);
  }

  // Canonical dump is a parse/dump fixpoint.
  std::string Dump = dumpJson(Doc.value());
  Expected<JsonValue> Again = parseJson(Dump);
  ASSERT_FALSE(Again.hasError());
  EXPECT_EQ(dumpJson(Again.value()), Dump);
}

TEST(Export, RunReportParsesAndRoundTrips) {
  PipelineArtifacts Run = runTracedPipeline(1);

  RunReport Report("trace-test");
  Report.addInput("<generated>", 0x1234, 99);
  Report.addOption("threads", uint64_t(1));
  Report.captureMetrics();
  Report.capturePhases(Run.Spans);
  std::string Text = Report.renderJson();

  Expected<JsonValue> Doc = parseJson(Text);
  ASSERT_FALSE(Doc.hasError()) << Doc.error().message();
  const JsonValue &Root = Doc.value();
  ASSERT_TRUE(Root.isObject());
  ASSERT_NE(Root.find("schema"), nullptr);
  EXPECT_EQ(Root.find("schema")->Str, "eel-report/1");
  EXPECT_EQ(Root.find("tool")->Str, "trace-test");

  // The phase tree covers both halves of the pipeline at top level.
  const JsonValue *Phases = Root.find("phases");
  ASSERT_NE(Phases, nullptr);
  ASSERT_TRUE(Phases->isArray());
  std::set<std::string> TopLevel;
  for (const JsonValue &P : Phases->Arr)
    TopLevel.insert(P.find("name")->Str);
  EXPECT_TRUE(TopLevel.count("readContents"));
  EXPECT_TRUE(TopLevel.count("writeEditedExecutable"));

  const JsonValue *Hists = Root.find("histograms");
  ASSERT_NE(Hists, nullptr);
  EXPECT_GE(Hists->Arr.size(), 3u);

  std::string Dump = dumpJson(Root);
  Expected<JsonValue> Again = parseJson(Dump);
  ASSERT_FALSE(Again.hasError());
  EXPECT_EQ(dumpJson(Again.value()), Dump);
}

TEST(Export, PrometheusTextFormat) {
  StatRegistry::instance().resetAll();
  HistogramRegistry::instance().resetAll();
  bumpStat("test.prom.counter", 7);
  bumpHistogram("test.prom.hist", 5); // bucket [4,7], le bound 7

  std::string Text =
      metricsPrometheus(StatRegistry::instance().snapshot(),
                        HistogramRegistry::instance().snapshot());
  EXPECT_NE(Text.find("test_prom_counter 7"), std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_bucket{le=\"7\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_sum 5"), std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_count 1"), std::string::npos);
  // Exactly one +Inf series per histogram (the bucket-64 dedup).
  size_t First = Text.find("le=\"+Inf\"");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Text.find("le=\"+Inf\"", First + 1), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Disabled mode
//===----------------------------------------------------------------------===//

TEST(Disabled, RecordsNothingAndCreatesNoRings) {
  traceSetEnabled(false);
  size_t RingsBefore = TraceCollector::instance().bufferCount();
  size_t RecordedBefore = TraceCollector::instance().recordedCount();
  std::string Routine = "some_routine";
  for (int I = 0; I < 10000; ++I) {
    EEL_TRACE_SCOPE("test.disabled", "routine", Routine);
  }
  EXPECT_EQ(TraceCollector::instance().bufferCount(), RingsBefore);
  EXPECT_EQ(TraceCollector::instance().recordedCount(), RecordedBefore);

  // Flipping the gate on makes the very next span land.
  traceSetEnabled(true);
  {
    EEL_TRACE_SCOPE("test.enabled", "routine", Routine);
  }
  traceSetEnabled(false);
#ifndef EEL_TRACE_DISABLED
  EXPECT_EQ(TraceCollector::instance().recordedCount(), RecordedBefore + 1);
#endif
}

//===----------------------------------------------------------------------===//
// Phase-tree reconstruction
//===----------------------------------------------------------------------===//

namespace {
TraceEvent mkSpan(const char *Name, uint64_t Start, uint64_t End, uint32_t Tid,
                  uint64_t Seq) {
  TraceEvent Ev;
  Ev.Name = Name;
  Ev.StartNs = Start;
  Ev.EndNs = End;
  Ev.Tid = Tid;
  Ev.Seq = Seq;
  return Ev;
}
} // namespace

TEST(PhaseTree, NestsByContainmentAndAggregatesByName) {
  // Rings record at completion, so children precede their parent.
  std::vector<TraceEvent> Events;
  Events.push_back(mkSpan("child", 10, 20, 0, 0));
  Events.push_back(mkSpan("child", 30, 40, 0, 1));
  Events.push_back(mkSpan("other", 50, 60, 0, 2));
  Events.push_back(mkSpan("parent", 0, 100, 0, 3));
  Events.push_back(mkSpan("sibling", 200, 230, 0, 4));

  std::vector<PhaseNode> Tree = buildPhaseTree(Events);
  ASSERT_EQ(Tree.size(), 2u); // siblings sorted by name
  EXPECT_EQ(Tree[0].Name, "parent");
  EXPECT_EQ(Tree[0].TotalNs, 100u);
  EXPECT_EQ(Tree[0].Count, 1u);
  EXPECT_EQ(Tree[1].Name, "sibling");

  ASSERT_EQ(Tree[0].Children.size(), 2u);
  EXPECT_EQ(Tree[0].Children[0].Name, "child"); // two spans merged
  EXPECT_EQ(Tree[0].Children[0].Count, 2u);
  EXPECT_EQ(Tree[0].Children[0].TotalNs, 20u);
  EXPECT_EQ(Tree[0].Children[1].Name, "other");
  EXPECT_EQ(Tree[0].Children[1].Count, 1u);
}

TEST(PhaseTree, ZeroLengthSpansNestByCompletionOrder) {
  // Both spans are [5,5]; the parent completed after the child, so its
  // sequence number is higher and it must come out on top.
  std::vector<TraceEvent> Events;
  Events.push_back(mkSpan("inner", 5, 5, 0, 0));
  Events.push_back(mkSpan("outer", 5, 5, 0, 1));
  std::vector<PhaseNode> Tree = buildPhaseTree(Events);
  ASSERT_EQ(Tree.size(), 1u);
  EXPECT_EQ(Tree[0].Name, "outer");
  ASSERT_EQ(Tree[0].Children.size(), 1u);
  EXPECT_EQ(Tree[0].Children[0].Name, "inner");
}

TEST(PhaseTree, ThreadsDoNotNestAcrossEachOther) {
  // Identical intervals on different threads are independent roots.
  std::vector<TraceEvent> Events;
  Events.push_back(mkSpan("a", 0, 100, 0, 0));
  Events.push_back(mkSpan("b", 10, 20, 1, 0));
  std::vector<PhaseNode> Tree = buildPhaseTree(Events);
  ASSERT_EQ(Tree.size(), 2u);
  EXPECT_TRUE(Tree[0].Children.empty());
  EXPECT_TRUE(Tree[1].Children.empty());
}

//===----------------------------------------------------------------------===//
// JSON parser strictness
//===----------------------------------------------------------------------===//

TEST(Json, RejectsMalformedDocuments) {
  for (const char *Bad :
       {"", "{", "[1,2", "{\"a\":1,}", "{} trailing", "nul", "{\"a\" 1}",
        "\"unterminated", "{\"a\":01}", "[1 2]", "{1: 2}"}) {
    EXPECT_TRUE(parseJson(Bad).hasError()) << "accepted: " << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Histogram quantile interpolation
//===----------------------------------------------------------------------===//

TEST(HistogramQuantile, EmptyAndZeroSamples) {
  HistogramSnapshot Empty;
  EXPECT_EQ(Empty.quantile(0.5), 0.0);
  EXPECT_EQ(Empty.quantile(0.99), 0.0);

  HistogramRegistry::instance().resetAll();
  for (int I = 0; I < 5; ++I)
    bumpHistogram("test.q.zeros", 0);
  HistogramSnapshot H = HistogramRegistry::instance().read("test.q.zeros");
  // The zero bucket holds only exact zeros; no interpolation applies.
  EXPECT_EQ(H.quantile(0.5), 0.0);
  EXPECT_EQ(H.quantile(1.0), 0.0);
}

TEST(HistogramQuantile, SingleValueReportsItself) {
  // The min/max clamp makes a degenerate histogram exact: every quantile
  // of 100 identical samples is the sample, not a bucket midpoint.
  HistogramRegistry::instance().resetAll();
  for (int I = 0; I < 100; ++I)
    bumpHistogram("test.q.single", 10);
  HistogramSnapshot H = HistogramRegistry::instance().read("test.q.single");
  for (double Q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_EQ(H.quantile(Q), 10.0) << "q=" << Q;

  // A lone sample near its bucket's low edge clamps to the observed max.
  HistogramRegistry::instance().resetAll();
  bumpHistogram("test.q.lone", 65); // bucket [64,127]
  HistogramSnapshot L = HistogramRegistry::instance().read("test.q.lone");
  EXPECT_EQ(L.quantile(1.0), 65.0);
}

TEST(HistogramQuantile, InterpolatesDeterministically) {
  // 50 samples of 1 (bucket le=1) and 50 of 100 (bucket [64,127]): the
  // 25th percentile sits in the first bucket exactly, the 75th a known
  // fraction into the second.
  HistogramRegistry::instance().resetAll();
  for (int I = 0; I < 50; ++I) {
    bumpHistogram("test.q.two", 1);
    bumpHistogram("test.q.two", 100);
  }
  HistogramSnapshot H = HistogramRegistry::instance().read("test.q.two");
  EXPECT_EQ(H.quantile(0.25), 1.0);
  // Rank 75: 25 of the 50 samples into [64,127] -> 64 + 63 * 0.5 = 95.5.
  EXPECT_DOUBLE_EQ(H.quantile(0.75), 95.5);

  // Monotone in Q, and always inside [Min, Max].
  double Prev = 0.0;
  for (double Q = 0.0; Q <= 1.0; Q += 0.05) {
    double V = H.quantile(Q);
    EXPECT_GE(V, Prev) << "q=" << Q;
    EXPECT_GE(V, static_cast<double>(H.Min));
    EXPECT_LE(V, static_cast<double>(H.Max));
    Prev = V;
  }
}

TEST(HistogramQuantile, AtomicHistogramMatchesRegistry) {
  // AtomicHistogram (the serve scrape path) and the sharded registry are
  // two recorders of the same distribution; their snapshots must agree.
  HistogramRegistry::instance().resetAll();
  AtomicHistogram A;
  for (uint64_t V : {1ull, 2ull, 3ull, 100ull, 250ull, 4096ull}) {
    bumpHistogram("test.q.pair", V);
    A.record(V);
  }
  HistogramSnapshot R = HistogramRegistry::instance().read("test.q.pair");
  HistogramSnapshot S = A.snapshot("test.q.pair");
  EXPECT_EQ(S.Count, R.Count);
  EXPECT_EQ(S.Sum, R.Sum);
  EXPECT_EQ(S.Min, R.Min);
  EXPECT_EQ(S.Max, R.Max);
  for (unsigned I = 0; I < HistogramBuckets; ++I)
    EXPECT_EQ(S.Buckets[I], R.Buckets[I]) << "bucket " << I;
  EXPECT_EQ(S.quantile(0.5), R.quantile(0.5));
  EXPECT_EQ(S.quantile(0.99), R.quantile(0.99));
}

//===----------------------------------------------------------------------===//
// Structured logging
//===----------------------------------------------------------------------===//

namespace {

/// Restores the global logging state however a test exits.
struct LogStateGuard {
  ~LogStateGuard() {
    Logger::instance().flushAll();
    Logger::instance().useStderr();
    Logger::instance().setRateLimit(0);
    Logger::instance().resetCounts();
    logSetLevel(LogLevel::Off);
  }
};

std::vector<std::string> readLogLines(const std::string &Path) {
  Logger::instance().flushAll();
  std::vector<std::string> Lines;
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (!Bytes.hasValue())
    return Lines;
  std::string Text(Bytes.value().begin(), Bytes.value().end());
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    if (Nl > Pos)
      Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

std::string logTestPath(const char *Name) {
  return ::testing::TempDir() + "eel-log-test-" + Name + ".jsonl";
}

} // namespace

TEST(Log, LevelGateFiltersRecords) {
  LogStateGuard Guard;
  std::string Path = logTestPath("gate");
  std::remove(Path.c_str());
  ASSERT_TRUE(Logger::instance().setPath(Path));
  Logger::instance().resetCounts();

  logSetLevel(LogLevel::Warn);
  for (int I = 0; I < 100; ++I)
    EEL_LOG(LogLevel::Debug, "test.below", logNum("i", uint64_t(I)));
  EXPECT_EQ(Logger::instance().emittedCount(), 0u)
      << "records below the threshold must not even be formatted";
  EEL_LOG(LogLevel::Error, "test.above");
  EXPECT_EQ(Logger::instance().emittedCount(), 1u);

  // Off disables everything, including Error.
  logSetLevel(LogLevel::Off);
  EEL_LOG(LogLevel::Error, "test.off");
  EXPECT_EQ(Logger::instance().emittedCount(), 1u);

  std::vector<std::string> Lines = readLogLines(Path);
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("test.above"), std::string::npos);
}

TEST(Log, LinesAreStrictJsonlWithPrelude) {
  LogStateGuard Guard;
  std::string Path = logTestPath("jsonl");
  std::remove(Path.c_str());
  ASSERT_TRUE(Logger::instance().setPath(Path));
  logSetLevel(LogLevel::Info);

  EEL_LOG(LogLevel::Info, "test.fields", logStr("tool", "qpt:all"),
          logNum("latency_us", 1234));
  EEL_LOG(LogLevel::Warn, "test.escape",
          logStr("msg", "quote \" backslash \\ newline \n tab \t"));

  std::vector<std::string> Lines = readLogLines(Path);
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &Line : Lines) {
    Expected<JsonValue> Doc = parseJson(Line);
    ASSERT_TRUE(Doc.hasValue()) << Line;
    ASSERT_TRUE(Doc.value().isObject());
    EXPECT_NE(Doc.value().find("ts_ms"), nullptr);
    EXPECT_NE(Doc.value().find("level"), nullptr);
    EXPECT_NE(Doc.value().find("event"), nullptr);
    EXPECT_NE(Doc.value().find("tid"), nullptr);
  }
  Expected<JsonValue> First = parseJson(Lines[0]);
  EXPECT_EQ(First.value().find("event")->Str, "test.fields");
  EXPECT_EQ(First.value().find("tool")->Str, "qpt:all");
  EXPECT_EQ(First.value().find("latency_us")->asNumber(), 1234.0);
  Expected<JsonValue> Second = parseJson(Lines[1]);
  EXPECT_EQ(Second.value().find("msg")->Str,
            "quote \" backslash \\ newline \n tab \t");
}

TEST(Log, RateLimitCountsAndDisclosesDrops) {
  LogStateGuard Guard;
  std::string Path = logTestPath("rate");
  std::remove(Path.c_str());
  ASSERT_TRUE(Logger::instance().setPath(Path));
  Logger::instance().resetCounts();
  logSetLevel(LogLevel::Info);
  Logger::instance().setRateLimit(2);

  for (int I = 0; I < 10; ++I)
    EEL_LOG(LogLevel::Info, "test.flood", logNum("i", uint64_t(I)));
  // 10 writes against a 2/sec window: at most two windows were touched,
  // so at least 6 were dropped — and the count is monotonic.
  EXPECT_GE(Logger::instance().droppedCount(), 6u);
  EXPECT_LE(Logger::instance().emittedCount(), 4u);

  // The next admitted record (new window) is preceded by an in-stream
  // log.rate_limited disclosure carrying the suppressed count.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  EEL_LOG(LogLevel::Info, "test.after_window");
  std::vector<std::string> Lines = readLogLines(Path);
  bool SawDisclosure = false;
  for (const std::string &Line : Lines) {
    Expected<JsonValue> Doc = parseJson(Line);
    ASSERT_TRUE(Doc.hasValue()) << Line;
    if (Doc.value().find("event")->Str == "log.rate_limited") {
      SawDisclosure = true;
      EXPECT_GE(Doc.value().find("dropped")->asNumber(), 6.0);
    }
  }
  EXPECT_TRUE(SawDisclosure);
}

TEST(Log, RequestIdStampedFromTraceScope) {
  LogStateGuard Guard;
  std::string Path = logTestPath("rid");
  std::remove(Path.c_str());
  ASSERT_TRUE(Logger::instance().setPath(Path));
  logSetLevel(LogLevel::Info);

  EEL_LOG(LogLevel::Info, "test.no_rid");
  {
    TraceRequestScope Scope(0xbeef);
    EEL_LOG(LogLevel::Info, "test.with_rid");
  }
  EEL_LOG(LogLevel::Info, "test.after_scope");

  std::vector<std::string> Lines = readLogLines(Path);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(parseJson(Lines[0]).value().find("request_id"), nullptr);
  JsonValue WithRid = parseJson(Lines[1]).takeValue();
  const JsonValue *Rid = WithRid.find("request_id");
  ASSERT_NE(Rid, nullptr);
  EXPECT_EQ(Rid->asNumber(), double(0xbeef));
  EXPECT_EQ(parseJson(Lines[2]).value().find("request_id"), nullptr);
}

//===----------------------------------------------------------------------===//
// Request-id propagation through spans
//===----------------------------------------------------------------------===//

TEST(RequestId, PropagatesThroughParallelForEach) {
  // A request id set on the submitting thread must reach spans recorded
  // by pool helper threads — that is what makes slow-request exemplars
  // complete for multi-threaded edits.
  TraceCollector::instance().reset();
  traceSetEnabled(true);
  {
    TraceRequestScope Scope(4242);
    parallelForEach(4, 32, [](size_t) {
      EEL_TRACE_SCOPE("test.rid_body");
    });
  }
  traceSetEnabled(false);

  std::vector<TraceEvent> Spans = TraceCollector::instance().drain();
  unsigned Bodies = 0;
  for (const TraceEvent &Ev : Spans)
    if (std::string(Ev.Name) == "test.rid_body") {
      ++Bodies;
      EXPECT_EQ(Ev.RequestId, 4242u) << "span lost its request id";
    }
  EXPECT_EQ(Bodies, 32u);

  // Outside any scope, spans carry no id.
  traceSetEnabled(true);
  {
    EEL_TRACE_SCOPE("test.rid_none");
  }
  traceSetEnabled(false);
  for (const TraceEvent &Ev : TraceCollector::instance().drain())
    if (std::string(Ev.Name) == "test.rid_none") {
      EXPECT_EQ(Ev.RequestId, 0u);
    }
}

TEST(Json, AcceptsAndRoundTripsValidDocuments) {
  for (const char *Good :
       {"{}", "[]", "null", "true", "-1.5e3", "\"s\\u00e9q\"",
        "{\"a\": [1, 2.5, \"x\", null, true], \"b\": {\"c\": []}}"}) {
    Expected<JsonValue> Doc = parseJson(Good);
    ASSERT_FALSE(Doc.hasError()) << Good << ": " << Doc.error().message();
    std::string Dump = dumpJson(Doc.value());
    Expected<JsonValue> Again = parseJson(Dump);
    ASSERT_FALSE(Again.hasError()) << Dump;
    EXPECT_EQ(dumpJson(Again.value()), Dump) << Good;
  }
}
