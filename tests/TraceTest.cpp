//===- tests/TraceTest.cpp - Observability layer tests -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the tracing/metrics/report stack (label: obs):
///
///  * histogram bucketing boundaries and the value-keyed determinism
///    guarantee — counter and histogram snapshots from the same pipeline
///    are bit-identical at 1 and 8 worker threads (time.* excluded, the
///    documented wall-clock exemption);
///  * the span-name multiset is thread-count-deterministic too (pool.*
///    spans excluded — worker occupancy is schedule-dependent by design);
///  * exported Chrome trace JSON and eel-report JSON parse with the strict
///    in-tree parser and are dump/parse round-trip fixpoints;
///  * disabled-mode tracing records nothing and creates no ring buffers;
///  * phase-tree reconstruction from interval containment, including the
///    zero-length-span sequence tiebreak;
///  * Prometheus text exposition shape and malformed-JSON rejection.
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "analysis/Verifier.h"
#include "core/Executable.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <vector>

using namespace eel;

namespace {

/// Everything one traced pipeline run leaves behind at its quiescent end.
struct PipelineArtifacts {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<HistogramSnapshot> Histograms;
  std::vector<TraceEvent> Spans;
  unsigned VerifierChecks = 0;
  unsigned VerifierErrors = 0;
};

/// Runs generate -> readContents -> writeEditedExecutable -> verifyEdit
/// with tracing on and \p Threads workers, against fresh registries.
PipelineArtifacts runTracedPipeline(unsigned Threads) {
  StatRegistry::instance().resetAll();
  HistogramRegistry::instance().resetAll();
  TraceCollector::instance().reset();

  WorkloadOptions WOpts;
  WOpts.Seed = 11;
  WOpts.Routines = 16;
  WOpts.SwitchPercent = 35;
  WOpts.TailCallPercent = 10;
  SxfFile File = generateWorkload(TargetArch::Srisc, WOpts);

  Executable::Options EOpts;
  EOpts.Threads = Threads;
  EOpts.Trace = true;
  Executable Exec(std::move(File), EOpts);
  Expected<bool> Read = Exec.readContents();
  EXPECT_FALSE(Read.hasError());
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  EXPECT_FALSE(Edited.hasError());

  PipelineArtifacts Out;
  if (Edited.hasValue()) {
    VerifyOptions VOpts;
    VOpts.Threads = Threads;
    DiagnosticReport Findings = verifyEdit(Exec, Edited.value(), VOpts);
    Out.VerifierChecks = Findings.checksRun();
    Out.VerifierErrors = Findings.errorCount();
  }

  traceSetEnabled(false);
  Out.Counters = StatRegistry::instance().snapshot();
  Out.Histograms = HistogramRegistry::instance().snapshot();
  Out.Spans = TraceCollector::instance().drain();
  return Out;
}

bool isWallClockName(const std::string &Name) {
  return Name.rfind("time.", 0) == 0;
}

bool isScheduleDependentSpan(const std::string &Name) {
  return Name.rfind("pool.", 0) == 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram bucketing
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(histogramBucket(0), 0u);
  EXPECT_EQ(histogramBucket(1), 1u);
  EXPECT_EQ(histogramBucket(2), 2u);
  EXPECT_EQ(histogramBucket(3), 2u);
  EXPECT_EQ(histogramBucket(4), 3u);
  EXPECT_EQ(histogramBucket(7), 3u);
  EXPECT_EQ(histogramBucket(8), 4u);
  EXPECT_EQ(histogramBucket(std::numeric_limits<uint64_t>::max()), 64u);

  EXPECT_EQ(histogramBucketLe(0), 0u);
  EXPECT_EQ(histogramBucketLe(1), 1u);
  EXPECT_EQ(histogramBucketLe(2), 3u);
  EXPECT_EQ(histogramBucketLe(3), 7u);
  EXPECT_EQ(histogramBucketLe(64), std::numeric_limits<uint64_t>::max());

  // Every sample lands in the bucket whose le bound covers it.
  for (uint64_t V : {0ull, 1ull, 2ull, 5ull, 1000ull, 123456789ull}) {
    unsigned B = histogramBucket(V);
    EXPECT_LE(V, histogramBucketLe(B));
    if (B > 0) {
      EXPECT_GT(V, histogramBucketLe(B - 1));
    }
  }
}

TEST(Histogram, RecordAndQuantile) {
  HistogramRegistry::instance().resetAll();
  for (uint64_t V : {1ull, 2ull, 3ull, 100ull})
    bumpHistogram("test.hist.record", V);
  HistogramSnapshot H = HistogramRegistry::instance().read("test.hist.record");
  EXPECT_EQ(H.Count, 4u);
  EXPECT_EQ(H.Sum, 106u);
  EXPECT_EQ(H.Min, 1u);
  EXPECT_EQ(H.Max, 100u);
  // Median sample is 2 or 3, both in bucket [2,3] -> le bound 3.
  EXPECT_EQ(H.quantileUpperBound(0.5), 3u);
  // The top quantile lands in 100's bucket: [64,127] -> le bound 127.
  EXPECT_EQ(H.quantileUpperBound(1.0), 127u);
  // Absent histograms read back empty rather than failing.
  EXPECT_EQ(HistogramRegistry::instance().read("test.hist.absent").Count, 0u);
}

//===----------------------------------------------------------------------===//
// Thread-count determinism
//===----------------------------------------------------------------------===//

TEST(Determinism, SnapshotsIdenticalAcrossThreadCounts) {
  PipelineArtifacts Serial = runTracedPipeline(1);
  PipelineArtifacts Parallel = runTracedPipeline(8);

  // Counters: bit-identical, wall-clock timers excluded.
  auto filterCounters =
      [](const std::vector<std::pair<std::string, uint64_t>> &In) {
        std::vector<std::pair<std::string, uint64_t>> Out;
        for (const auto &C : In)
          if (!isWallClockName(C.first))
            Out.push_back(C);
        return Out;
      };
  EXPECT_EQ(filterCounters(Serial.Counters), filterCounters(Parallel.Counters));

  // Histograms: same set of names, and every field of every snapshot
  // matches, bucket by bucket.
  auto filterHists = [](const std::vector<HistogramSnapshot> &In) {
    std::vector<HistogramSnapshot> Out;
    for (const HistogramSnapshot &H : In)
      if (!isWallClockName(H.Name))
        Out.push_back(H);
    return Out;
  };
  std::vector<HistogramSnapshot> A = filterHists(Serial.Histograms);
  std::vector<HistogramSnapshot> B = filterHists(Parallel.Histograms);
  ASSERT_EQ(A.size(), B.size());
  EXPECT_GE(A.size(), 3u); // the acceptance floor: >= 3 histograms populated
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Count, B[I].Count) << A[I].Name;
    EXPECT_EQ(A[I].Sum, B[I].Sum) << A[I].Name;
    EXPECT_EQ(A[I].Min, B[I].Min) << A[I].Name;
    EXPECT_EQ(A[I].Max, B[I].Max) << A[I].Name;
    for (unsigned J = 0; J < HistogramBuckets; ++J)
      EXPECT_EQ(A[I].Buckets[J], B[I].Buckets[J]) << A[I].Name << " bucket "
                                                  << J;
  }

  // The verifier did the same amount of work either way.
  EXPECT_EQ(Serial.VerifierChecks, Parallel.VerifierChecks);
  EXPECT_EQ(Serial.VerifierErrors, 0u);
  EXPECT_EQ(Parallel.VerifierErrors, 0u);
}

TEST(Determinism, SpanNamesIdenticalAcrossThreadCounts) {
  PipelineArtifacts Serial = runTracedPipeline(1);
  PipelineArtifacts Parallel = runTracedPipeline(8);
  ASSERT_FALSE(Serial.Spans.empty());

  auto names = [](const std::vector<TraceEvent> &Spans) {
    std::multiset<std::string> Out;
    for (const TraceEvent &Ev : Spans)
      if (!isScheduleDependentSpan(Ev.Name))
        Out.insert(Ev.Name);
    return Out;
  };
  EXPECT_EQ(names(Serial.Spans), names(Parallel.Spans));

  // Every span is well-formed: end >= start, and nothing was dropped on a
  // workload this small.
  for (const TraceEvent &Ev : Serial.Spans)
    EXPECT_GE(Ev.EndNs, Ev.StartNs);
  EXPECT_EQ(TraceCollector::instance().droppedCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Export formats
//===----------------------------------------------------------------------===//

TEST(Export, ChromeTraceParsesAndRoundTrips) {
  PipelineArtifacts Run = runTracedPipeline(1);
  ASSERT_FALSE(Run.Spans.empty());
  std::string Text = renderChromeTrace(Run.Spans);

  Expected<JsonValue> Doc = parseJson(Text);
  ASSERT_FALSE(Doc.hasError()) << Doc.error().message();
  ASSERT_TRUE(Doc.value().isObject());
  const JsonValue *Events = Doc.value().find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_EQ(Events->Arr.size(), Run.Spans.size());
  for (const JsonValue &Ev : Events->Arr) {
    ASSERT_TRUE(Ev.isObject());
    EXPECT_NE(Ev.find("name"), nullptr);
    ASSERT_NE(Ev.find("ph"), nullptr);
    EXPECT_EQ(Ev.find("ph")->Str, "X");
    EXPECT_NE(Ev.find("ts"), nullptr);
    EXPECT_NE(Ev.find("dur"), nullptr);
    EXPECT_NE(Ev.find("tid"), nullptr);
  }

  // Canonical dump is a parse/dump fixpoint.
  std::string Dump = dumpJson(Doc.value());
  Expected<JsonValue> Again = parseJson(Dump);
  ASSERT_FALSE(Again.hasError());
  EXPECT_EQ(dumpJson(Again.value()), Dump);
}

TEST(Export, RunReportParsesAndRoundTrips) {
  PipelineArtifacts Run = runTracedPipeline(1);

  RunReport Report("trace-test");
  Report.addInput("<generated>", 0x1234, 99);
  Report.addOption("threads", uint64_t(1));
  Report.captureMetrics();
  Report.capturePhases(Run.Spans);
  std::string Text = Report.renderJson();

  Expected<JsonValue> Doc = parseJson(Text);
  ASSERT_FALSE(Doc.hasError()) << Doc.error().message();
  const JsonValue &Root = Doc.value();
  ASSERT_TRUE(Root.isObject());
  ASSERT_NE(Root.find("schema"), nullptr);
  EXPECT_EQ(Root.find("schema")->Str, "eel-report/1");
  EXPECT_EQ(Root.find("tool")->Str, "trace-test");

  // The phase tree covers both halves of the pipeline at top level.
  const JsonValue *Phases = Root.find("phases");
  ASSERT_NE(Phases, nullptr);
  ASSERT_TRUE(Phases->isArray());
  std::set<std::string> TopLevel;
  for (const JsonValue &P : Phases->Arr)
    TopLevel.insert(P.find("name")->Str);
  EXPECT_TRUE(TopLevel.count("readContents"));
  EXPECT_TRUE(TopLevel.count("writeEditedExecutable"));

  const JsonValue *Hists = Root.find("histograms");
  ASSERT_NE(Hists, nullptr);
  EXPECT_GE(Hists->Arr.size(), 3u);

  std::string Dump = dumpJson(Root);
  Expected<JsonValue> Again = parseJson(Dump);
  ASSERT_FALSE(Again.hasError());
  EXPECT_EQ(dumpJson(Again.value()), Dump);
}

TEST(Export, PrometheusTextFormat) {
  StatRegistry::instance().resetAll();
  HistogramRegistry::instance().resetAll();
  bumpStat("test.prom.counter", 7);
  bumpHistogram("test.prom.hist", 5); // bucket [4,7], le bound 7

  std::string Text =
      metricsPrometheus(StatRegistry::instance().snapshot(),
                        HistogramRegistry::instance().snapshot());
  EXPECT_NE(Text.find("test_prom_counter 7"), std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_bucket{le=\"7\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_sum 5"), std::string::npos);
  EXPECT_NE(Text.find("test_prom_hist_count 1"), std::string::npos);
  // Exactly one +Inf series per histogram (the bucket-64 dedup).
  size_t First = Text.find("le=\"+Inf\"");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Text.find("le=\"+Inf\"", First + 1), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Disabled mode
//===----------------------------------------------------------------------===//

TEST(Disabled, RecordsNothingAndCreatesNoRings) {
  traceSetEnabled(false);
  size_t RingsBefore = TraceCollector::instance().bufferCount();
  size_t RecordedBefore = TraceCollector::instance().recordedCount();
  std::string Routine = "some_routine";
  for (int I = 0; I < 10000; ++I) {
    EEL_TRACE_SCOPE("test.disabled", "routine", Routine);
  }
  EXPECT_EQ(TraceCollector::instance().bufferCount(), RingsBefore);
  EXPECT_EQ(TraceCollector::instance().recordedCount(), RecordedBefore);

  // Flipping the gate on makes the very next span land.
  traceSetEnabled(true);
  {
    EEL_TRACE_SCOPE("test.enabled", "routine", Routine);
  }
  traceSetEnabled(false);
#ifndef EEL_TRACE_DISABLED
  EXPECT_EQ(TraceCollector::instance().recordedCount(), RecordedBefore + 1);
#endif
}

//===----------------------------------------------------------------------===//
// Phase-tree reconstruction
//===----------------------------------------------------------------------===//

namespace {
TraceEvent mkSpan(const char *Name, uint64_t Start, uint64_t End, uint32_t Tid,
                  uint64_t Seq) {
  TraceEvent Ev;
  Ev.Name = Name;
  Ev.StartNs = Start;
  Ev.EndNs = End;
  Ev.Tid = Tid;
  Ev.Seq = Seq;
  return Ev;
}
} // namespace

TEST(PhaseTree, NestsByContainmentAndAggregatesByName) {
  // Rings record at completion, so children precede their parent.
  std::vector<TraceEvent> Events;
  Events.push_back(mkSpan("child", 10, 20, 0, 0));
  Events.push_back(mkSpan("child", 30, 40, 0, 1));
  Events.push_back(mkSpan("other", 50, 60, 0, 2));
  Events.push_back(mkSpan("parent", 0, 100, 0, 3));
  Events.push_back(mkSpan("sibling", 200, 230, 0, 4));

  std::vector<PhaseNode> Tree = buildPhaseTree(Events);
  ASSERT_EQ(Tree.size(), 2u); // siblings sorted by name
  EXPECT_EQ(Tree[0].Name, "parent");
  EXPECT_EQ(Tree[0].TotalNs, 100u);
  EXPECT_EQ(Tree[0].Count, 1u);
  EXPECT_EQ(Tree[1].Name, "sibling");

  ASSERT_EQ(Tree[0].Children.size(), 2u);
  EXPECT_EQ(Tree[0].Children[0].Name, "child"); // two spans merged
  EXPECT_EQ(Tree[0].Children[0].Count, 2u);
  EXPECT_EQ(Tree[0].Children[0].TotalNs, 20u);
  EXPECT_EQ(Tree[0].Children[1].Name, "other");
  EXPECT_EQ(Tree[0].Children[1].Count, 1u);
}

TEST(PhaseTree, ZeroLengthSpansNestByCompletionOrder) {
  // Both spans are [5,5]; the parent completed after the child, so its
  // sequence number is higher and it must come out on top.
  std::vector<TraceEvent> Events;
  Events.push_back(mkSpan("inner", 5, 5, 0, 0));
  Events.push_back(mkSpan("outer", 5, 5, 0, 1));
  std::vector<PhaseNode> Tree = buildPhaseTree(Events);
  ASSERT_EQ(Tree.size(), 1u);
  EXPECT_EQ(Tree[0].Name, "outer");
  ASSERT_EQ(Tree[0].Children.size(), 1u);
  EXPECT_EQ(Tree[0].Children[0].Name, "inner");
}

TEST(PhaseTree, ThreadsDoNotNestAcrossEachOther) {
  // Identical intervals on different threads are independent roots.
  std::vector<TraceEvent> Events;
  Events.push_back(mkSpan("a", 0, 100, 0, 0));
  Events.push_back(mkSpan("b", 10, 20, 1, 0));
  std::vector<PhaseNode> Tree = buildPhaseTree(Events);
  ASSERT_EQ(Tree.size(), 2u);
  EXPECT_TRUE(Tree[0].Children.empty());
  EXPECT_TRUE(Tree[1].Children.empty());
}

//===----------------------------------------------------------------------===//
// JSON parser strictness
//===----------------------------------------------------------------------===//

TEST(Json, RejectsMalformedDocuments) {
  for (const char *Bad :
       {"", "{", "[1,2", "{\"a\":1,}", "{} trailing", "nul", "{\"a\" 1}",
        "\"unterminated", "{\"a\":01}", "[1 2]", "{1: 2}"}) {
    EXPECT_TRUE(parseJson(Bad).hasError()) << "accepted: " << Bad;
  }
}

TEST(Json, AcceptsAndRoundTripsValidDocuments) {
  for (const char *Good :
       {"{}", "[]", "null", "true", "-1.5e3", "\"s\\u00e9q\"",
        "{\"a\": [1, 2.5, \"x\", null, true], \"b\": {\"c\": []}}"}) {
    Expected<JsonValue> Doc = parseJson(Good);
    ASSERT_FALSE(Doc.hasError()) << Good << ": " << Doc.error().message();
    std::string Dump = dumpJson(Doc.value());
    Expected<JsonValue> Again = parseJson(Dump);
    ASSERT_FALSE(Again.hasError()) << Dump;
    EXPECT_EQ(dumpJson(Again.value()), Dump) << Good;
  }
}
