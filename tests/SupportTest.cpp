//===- tests/SupportTest.cpp - Support-library unit tests -----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/BitOps.h"
#include "support/ByteBuffer.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/FileIO.h"
#include "support/RegSet.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace eel;

TEST(BitOps, ExtractInsertRoundTrip) {
  uint32_t W = 0xDEADBEEF;
  EXPECT_EQ(extractBits(W, 0, 31), W);
  EXPECT_EQ(extractBits(W, 0, 3), 0xFu);
  EXPECT_EQ(extractBits(W, 28, 31), 0xDu);
  EXPECT_EQ(extractBits(W, 8, 15), 0xBEu);
  uint32_t V = insertBits(W, 8, 15, 0x42);
  EXPECT_EQ(extractBits(V, 8, 15), 0x42u);
  EXPECT_EQ(extractBits(V, 0, 7), extractBits(W, 0, 7));
  EXPECT_EQ(extractBits(V, 16, 31), extractBits(W, 16, 31));
}

TEST(BitOps, InsertMasksExcessBits) {
  EXPECT_EQ(insertBits(0, 0, 3, 0xFF), 0xFu);
}

TEST(BitOps, SignExtend) {
  EXPECT_EQ(signExtend(0xFFF, 12), -1);
  EXPECT_EQ(signExtend(0x7FF, 12), 0x7FF);
  EXPECT_EQ(signExtend(0x800, 12), -2048);
  EXPECT_EQ(signExtend(0, 1), 0);
  EXPECT_EQ(signExtend(1, 1), -1);
  EXPECT_EQ(signExtend(0x80000000u, 32), INT32_MIN);
}

TEST(BitOps, FitsSignedUnsigned) {
  EXPECT_TRUE(fitsSigned(-4096, 13));
  EXPECT_TRUE(fitsSigned(4095, 13));
  EXPECT_FALSE(fitsSigned(4096, 13));
  EXPECT_FALSE(fitsSigned(-4097, 13));
  EXPECT_TRUE(fitsUnsigned(8191, 13));
  EXPECT_FALSE(fitsUnsigned(8192, 13));
}

TEST(RegSet, BasicOperations) {
  RegSet S{1, 5, 31};
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.contains(5));
  EXPECT_FALSE(S.contains(4));
  S.remove(5);
  EXPECT_FALSE(S.contains(5));
  S.insert(RegIdCC);
  EXPECT_TRUE(S.contains(RegIdCC));
  EXPECT_EQ(S.first(), 1u);
}

TEST(RegSet, SetAlgebra) {
  RegSet A{1, 2, 3};
  RegSet B{3, 4};
  EXPECT_EQ((A | B).size(), 4u);
  EXPECT_EQ((A & B).size(), 1u);
  EXPECT_TRUE((A & B).contains(3));
  EXPECT_EQ((A - B), (RegSet{1, 2}));
}

TEST(RegSet, IterationInOrder) {
  RegSet S{9, 2, 17};
  std::vector<unsigned> Ids;
  for (unsigned Id : S)
    Ids.push_back(Id);
  EXPECT_EQ(Ids, (std::vector<unsigned>{2, 9, 17}));
}

TEST(Casting, KindBasedDispatch) {
  struct Base {
    enum Kind { KA, KB } K;
    explicit Base(Kind K) : K(K) {}
  };
  struct A : Base {
    A() : Base(KA) {}
    static bool classof(const Base *B) { return B->K == KA; }
  };
  struct B : Base {
    B() : Base(KB) {}
    static bool classof(const Base *Bp) { return Bp->K == KB; }
  };
  A ValueA;
  Base *P = &ValueA;
  EXPECT_TRUE(isa<A>(P));
  EXPECT_FALSE(isa<B>(P));
  EXPECT_EQ(dyn_cast<A>(P), &ValueA);
  EXPECT_EQ(dyn_cast<B>(P), nullptr);
  EXPECT_EQ(dyn_cast_or_null<A>(static_cast<Base *>(nullptr)), nullptr);
  bool Either = isa<A, B>(P);
  EXPECT_TRUE(Either);
}

TEST(Expected, ValueAndError) {
  Expected<int> Good(42);
  ASSERT_TRUE(Good.hasValue());
  EXPECT_EQ(Good.value(), 42);
  Expected<int> Bad{Error("something broke")};
  ASSERT_TRUE(Bad.hasError());
  EXPECT_EQ(Bad.error().message(), "something broke");
  EXPECT_EQ(Bad.error().code(), ErrorCode::Unspecified);
  EXPECT_FALSE(Bad.error().hasOffset());
}

TEST(ErrorTaxonomy, StructuredContext) {
  Error E = Error(ErrorCode::SegmentOverrun, "segment overruns file")
                .atOffset(0x21)
                .inField("segment[1].nbytes")
                .inFile("a.sxf");
  EXPECT_EQ(E.code(), ErrorCode::SegmentOverrun);
  ASSERT_TRUE(E.hasOffset());
  EXPECT_EQ(E.offset(), 0x21u);
  EXPECT_EQ(E.field(), "segment[1].nbytes");
  EXPECT_EQ(E.file(), "a.sxf");
  // message() stays the bare message; describe() renders everything.
  EXPECT_EQ(E.message(), "segment overruns file");
  EXPECT_EQ(E.describe(),
            "a.sxf: offset 0x21: segment[1].nbytes: segment overruns file "
            "[segment_overrun]");
  // Every code has a distinct stable name.
  EXPECT_STREQ(errorCodeName(ErrorCode::BadMagic), "bad_magic");
  EXPECT_STREQ(errorCodeName(ErrorCode::TrailingBytes), "trailing_bytes");
}

// The reader's bounds checks are in subtraction form; hostile lengths near
// the top of the integer range must fail cleanly rather than wrap the
// additive check and read out of bounds.
TEST(ByteBuffer, HostileLengthsFailCleanly) {
  std::vector<uint8_t> Small = {1, 2, 3, 4};
  {
    ByteReader R(Small);
    uint8_t Out[4];
    // volatile keeps the compiler from constant-folding the hostile count
    // into the inlined memcpy and warning about the (rejected) copy size.
    volatile size_t Hostile = SIZE_MAX - 2;
    EXPECT_FALSE(R.readBytes(Out, Hostile)); // Pos + Count wraps
    EXPECT_TRUE(R.failed());
  }
  {
    // A string whose length claims nearly 4 GB in a 12-byte buffer.
    ByteWriter W;
    W.writeU32(0xFFFFFFFF);
    W.writeU32(0);
    W.writeU32(0);
    ByteReader R(W.bytes());
    EXPECT_EQ(R.readString(), "");
    EXPECT_TRUE(R.failed());
  }
  {
    ByteReader R(Small);
    EXPECT_EQ(R.pos(), 0u);
    R.readU16();
    EXPECT_EQ(R.pos(), 2u);
    EXPECT_EQ(R.remaining(), 2u);
  }
}

TEST(ByteBuffer, RoundTrip) {
  ByteWriter W;
  W.writeU8(0xAB);
  W.writeU16(0x1234);
  W.writeU32(0xDEADBEEF);
  W.writeString("hello");
  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU16(), 0x1234);
  EXPECT_EQ(R.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.readString(), "hello");
  EXPECT_FALSE(R.failed());
  R.readU32(); // past the end
  EXPECT_TRUE(R.failed());
}

TEST(ByteBuffer, PatchU32) {
  ByteWriter W;
  W.writeU32(0);
  W.writeU8(7);
  W.patchU32(0, 0xCAFEBABE);
  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU32(), 0xCAFEBABEu);
}

TEST(Rng, DeterministicAndBounded) {
  Rng A(12345), B(12345);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = C.below(17);
    EXPECT_LT(V, 17u);
    int64_t R = C.range(-5, 5);
    EXPECT_GE(R, -5);
    EXPECT_LE(R, 5);
  }
}

TEST(CountCodeLines, SkipsCommentsAndBlanks) {
  std::string Text = "// comment\n"
                     "\n"
                     "int x;\n"
                     "  ! asm comment\n"
                     "  -- desc comment\n"
                     "# hash comment\n"
                     "real line\n";
  EXPECT_EQ(countCodeLines(Text), 2u);
}

TEST(Stats, RegistryCounts) {
  StatRegistry::instance().resetAll();
  bumpStat("test.counter");
  bumpStat("test.counter", 4);
  EXPECT_EQ(StatRegistry::instance().read("test.counter"), 5u);
  EXPECT_EQ(StatRegistry::instance().read("test.missing"), 0u);
  StatRegistry::instance().resetAll();
  EXPECT_EQ(StatRegistry::instance().read("test.counter"), 0u);
}

TEST(FileIO, RoundTrip) {
  std::string Path = testing::TempDir() + "/eel_fileio_test.bin";
  std::vector<uint8_t> Bytes = {1, 2, 3, 0, 255};
  ASSERT_TRUE(writeFileBytes(Path, Bytes).hasValue());
  Expected<std::vector<uint8_t>> Read = readFileBytes(Path);
  ASSERT_TRUE(Read.hasValue());
  EXPECT_EQ(Read.value(), Bytes);
  EXPECT_TRUE(readFileBytes(Path + ".missing").hasError());
}
