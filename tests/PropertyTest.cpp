//===- tests/PropertyTest.cpp - Parameterized property sweeps ----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized (TEST_P) property suites sweeping (architecture × seed ×
/// workload style) over the invariants that make executable editing sound:
///
///  * P1 identity: re-laying out a program preserves behaviour exactly;
///  * P2 instrumentation transparency: a fully profiled program behaves
///    identically and its counters sum consistently;
///  * P3 dual-interpreter agreement: handwritten VM and description-driven
///    (spawn RTL) interpreter agree on whole programs;
///  * P4 scavenging soundness: registers the allocator hands to snippets
///    are genuinely dead (verified behaviourally by clobbering them);
///  * P5 ablation safety: disabling slicing or fold-back never changes
///    behaviour, only cost;
///  * P6 analysis totality: every generated routine's analyses run and
///    agree on basic invariants (edge symmetry, dominator reflexivity,
///    liveness at block boundaries).
///
//===----------------------------------------------------------------------===//

#include "core/Dominators.h"
#include "core/Executable.h"
#include "core/Liveness.h"
#include "spawn/Eval.h"
#include "spawn/SpawnTarget.h"
#include "tools/Qpt.h"
#include "vm/Machine.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace eel;

namespace {

struct SweepParam {
  TargetArch Arch;
  uint64_t Seed;
  unsigned TailCallPercent;
  bool Pathologies;
};

std::string paramName(const testing::TestParamInfo<SweepParam> &Info) {
  const SweepParam &P = Info.param;
  std::string Name = P.Arch == TargetArch::Srisc   ? "srisc"
                     : P.Arch == TargetArch::Mrisc ? "mrisc"
                                                   : "arisc";
  Name += "_seed" + std::to_string(P.Seed);
  if (P.TailCallPercent)
    Name += "_tail";
  if (P.Pathologies)
    Name += "_path";
  return Name;
}

std::vector<SweepParam> sweepParams() {
  std::vector<SweepParam> Params;
  for (TargetArch Arch : AllTargetArches) {
    for (uint64_t Seed : {101u, 102u, 103u, 104u, 105u, 106u}) {
      Params.push_back({Arch, Seed, 0, false});
      Params.push_back({Arch, Seed, 40, false});
    }
  }
  // Symbol pathologies only make sense on SRISC (text-embedded data decodes
  // as valid words on MRISC).
  for (uint64_t Seed : {201u, 202u, 203u})
    Params.push_back({TargetArch::Srisc, Seed, 20, true});
  return Params;
}

SxfFile makeProgram(const SweepParam &P) {
  WorkloadOptions Opts;
  Opts.Seed = P.Seed;
  Opts.Routines = 12;
  Opts.SwitchPercent = 35;
  Opts.TailCallPercent = P.TailCallPercent;
  Opts.SymbolPathologies = P.Pathologies;
  return generateWorkload(P.Arch, Opts);
}

class EditingSweep : public testing::TestWithParam<SweepParam> {};

} // namespace

// --- P1: identity --------------------------------------------------------------

TEST_P(EditingSweep, IdentityRewrite) {
  SxfFile File = makeProgram(GetParam());
  RunResult Original = runToCompletion(File);
  ASSERT_EQ(Original.Reason, StopReason::Exited);
  Executable Exec(std::move(File));
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  RunResult After = runToCompletion(Edited.value());
  EXPECT_EQ(After.Output, Original.Output);
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
}

// --- P2: instrumentation transparency -----------------------------------------------

TEST_P(EditingSweep, ProfiledProgramTransparent) {
  SxfFile File = makeProgram(GetParam());
  RunResult Original = runToCompletion(File);
  Executable Exec(std::move(File));
  Qpt2Profiler Profiler(Exec);
  Profiler.instrument();
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  Machine M(Edited.value());
  RunResult After = M.run();
  EXPECT_EQ(After.Output, Original.Output);
  EXPECT_EQ(After.ExitCode, Original.ExitCode);

  // Consistency: for every instrumented branch, taken + not-taken edge
  // counts must equal the branch block's execution count.
  std::vector<uint64_t> Counts = Profiler.readCounts(M.memory());
  std::map<Addr, uint64_t> BlockCount;
  std::map<Addr, uint64_t> EdgeSum;
  std::map<Addr, bool> HasBothEdges;
  for (size_t I = 0; I < Counts.size(); ++I) {
    const Qpt2Profiler::CounterInfo &Info = Profiler.counters()[I];
    if (Info.K == Qpt2Profiler::CounterInfo::Kind::Block)
      BlockCount[Info.BlockAnchor] = Counts[I];
    else if (Info.Edge == EdgeKind::Taken || Info.Edge == EdgeKind::NotTaken) {
      EdgeSum[Info.BlockAnchor] += Counts[I];
      HasBothEdges[Info.BlockAnchor] = true;
    }
  }
  unsigned Checked = 0;
  for (const auto &[Anchor, Sum] : EdgeSum) {
    if (!HasBothEdges[Anchor] || !BlockCount.count(Anchor))
      continue;
    EXPECT_EQ(Sum, BlockCount[Anchor])
        << "edge counts do not sum to block count @0x" << std::hex << Anchor;
    ++Checked;
  }
  EXPECT_GT(Checked, 0u);
}

// --- P3: dual-interpreter agreement ---------------------------------------------------

TEST_P(EditingSweep, SpawnInterpreterAgrees) {
  SxfFile File = makeProgram(GetParam());
  RunResult Hand = runToCompletion(File);
  RunResult Spawn = spawn::runWithDescription(
      spawn::spawnTargetFor(GetParam().Arch).desc(), File);
  EXPECT_EQ(static_cast<int>(Hand.Reason), static_cast<int>(Spawn.Reason));
  EXPECT_EQ(Hand.ExitCode, Spawn.ExitCode);
  EXPECT_EQ(Hand.Output, Spawn.Output);
  EXPECT_EQ(Hand.Instructions, Spawn.Instructions);
}

// --- P5: ablation safety ---------------------------------------------------------------

TEST_P(EditingSweep, AblationsPreserveBehavior) {
  SxfFile File = makeProgram(GetParam());
  RunResult Original = runToCompletion(File);
  for (int Which = 0; Which < 2; ++Which) {
    Executable::Options Opts;
    if (Which == 0)
      Opts.DisableSlicing = true;
    else
      Opts.DisableDelayFolding = true;
    Executable Exec(SxfFile(File), Opts);
    Expected<SxfFile> Edited = Exec.writeEditedExecutable();
    ASSERT_TRUE(Edited.hasValue())
        << "ablation " << Which << ": " << Edited.error().message();
    RunResult After = runToCompletion(Edited.value());
    EXPECT_EQ(After.Output, Original.Output) << "ablation " << Which;
    EXPECT_EQ(After.ExitCode, Original.ExitCode) << "ablation " << Which;
  }
}

// --- P6: analysis totality and invariants -------------------------------------------------

TEST_P(EditingSweep, AnalysisInvariants) {
  SxfFile File = makeProgram(GetParam());
  Executable Exec(std::move(File));
  Exec.readContents();
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    // Edge symmetry: every successor edge appears in its destination's
    // predecessor list.
    for (const auto &B : G->blocks()) {
      for (const Edge *E : B->succ()) {
        EXPECT_EQ(E->src(), B);
        bool Found = false;
        for (const Edge *P : E->dst()->pred())
          if (P == E)
            Found = true;
        EXPECT_TRUE(Found);
      }
    }
    if (G->unsupported())
      continue;
    Dominators Doms(*G);
    Liveness Live(*G);
    for (const auto &B : G->blocks()) {
      if (Doms.reachable(B)) {
        EXPECT_TRUE(Doms.dominates(B, B));
      }
      // Liveness boundary agreement: liveBefore(0) == liveIn for blocks
      // with instructions.
      if (!B->empty() && B->kind() != BlockKind::CallSurrogate) {
        EXPECT_EQ(Live.liveBefore(B, 0), Live.liveIn(B));
      }
      // Entry blocks of the routine never consider reserved scratch
      // (hard zero) live.
      EXPECT_FALSE(Live.liveIn(B).contains(0));
    }
    R->deleteControlFlowGraph();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EditingSweep,
                         testing::ValuesIn(sweepParams()), paramName);

// --- P4: scavenging soundness (its own fixture; SRISC) ---------------------------------

namespace {

class ScavengeSweep : public testing::TestWithParam<uint64_t> {};

/// A snippet that CLOBBERS its scavenged registers with a poison value and
/// never restores them. If the registers EEL hands out are genuinely dead,
/// the program still behaves identically.
SnippetPtr makePoisonSnippet(const TargetInfo &T) {
  std::vector<MachWord> Body;
  T.emitLoadConst(1, 0xDEAD0001u, Body);
  T.emitLoadConst(2, 0xDEAD0002u, Body);
  T.emitLoadConst(3, 0xDEAD0003u, Body);
  return std::make_shared<CodeSnippet>(std::move(Body), RegSet{1, 2, 3});
}

} // namespace

TEST_P(ScavengeSweep, ScavengedRegistersAreDead) {
  WorkloadOptions Opts;
  Opts.Seed = GetParam();
  Opts.Routines = 10;
  SxfFile File = generateWorkload(TargetArch::Srisc, Opts);
  RunResult Original = runToCompletion(File);
  Executable Exec(std::move(File));
  Exec.readContents();
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported())
      continue;
    for (const auto &B : G->blocks()) {
      if (B->kind() != BlockKind::Normal || !B->editable())
        continue;
      G->addCodeBefore(B, 0, makePoisonSnippet(Exec.target()));
    }
  }
  Expected<SxfFile> Edited = Exec.writeEditedExecutable();
  ASSERT_TRUE(Edited.hasValue()) << Edited.error().message();
  RunResult After = runToCompletion(Edited.value());
  EXPECT_EQ(After.Output, Original.Output);
  EXPECT_EQ(After.ExitCode, Original.ExitCode);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScavengeSweep,
                         testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

//===----------------------------------------------------------------------===//
// P7 — writer/reader inverse: for randomized *valid* images (random segment
// layouts, symbol tables, and relocation sets), serialize() ∘ deserialize()
// is the identity, deserialize() accepts, and validate() agrees. This is
// the positive half of the loader contract; the fault-injection harness
// (tests/FuzzTest.cpp) checks the negative half.
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

namespace {

SxfFile randomValidImage(uint64_t Seed) {
  Rng G(Seed);
  SxfFile File;
  File.Arch = G.chance(50) ? TargetArch::Srisc : TargetArch::Mrisc;

  Addr Next = 0x1000 + static_cast<Addr>(G.below(256)) * 16;
  unsigned NumSegs = 1 + static_cast<unsigned>(G.below(4));
  for (unsigned I = 0; I < NumSegs; ++I) {
    SxfSegment Seg;
    Seg.Kind = I == 0 ? SegKind::Text
                      : static_cast<SegKind>(G.below(3));
    Seg.VAddr = Next;
    if (Seg.Kind == SegKind::Bss) {
      Seg.MemSize = 4 + static_cast<uint32_t>(G.below(64)) * 4;
    } else {
      unsigned Words = 1 + static_cast<unsigned>(G.below(64));
      for (unsigned W = 0; W < Words * 4; ++W)
        Seg.Bytes.push_back(static_cast<uint8_t>(G.below(256)));
      Seg.MemSize = static_cast<uint32_t>(Seg.Bytes.size()) +
                    static_cast<uint32_t>(G.below(8)) * 4;
    }
    Next = Seg.VAddr + Seg.MemSize + 4 + static_cast<Addr>(G.below(64)) * 4;
    File.Segments.push_back(std::move(Seg));
  }

  const SxfSegment &Text = File.Segments[0];
  File.Entry =
      Text.VAddr + 4 * static_cast<Addr>(G.below(Text.Bytes.size() / 4));

  unsigned NumSyms = static_cast<unsigned>(G.below(12));
  for (unsigned I = 0; I < NumSyms; ++I) {
    SxfSymbol Sym;
    unsigned Len = static_cast<unsigned>(G.below(12));
    for (unsigned C = 0; C < Len; ++C)
      Sym.Name.push_back(static_cast<char>('a' + G.below(26)));
    const SxfSegment &Seg = File.Segments[G.below(File.Segments.size())];
    Sym.Value = Seg.VAddr + static_cast<Addr>(G.below(Seg.MemSize + 1));
    Sym.Size = static_cast<uint32_t>(G.below(16)) * 4;
    Sym.Kind = static_cast<SymKind>(G.below(5));
    Sym.Binding = static_cast<SymBinding>(G.below(2));
    File.Symbols.push_back(std::move(Sym));
  }

  unsigned NumRelocs = static_cast<unsigned>(G.below(8));
  for (unsigned I = 0; I < NumRelocs; ++I) {
    SxfReloc Reloc;
    // Site: a patchable word in a file-backed segment.
    const SxfSegment *Seg = nullptr;
    for (unsigned Tries = 0; Tries < 8 && !Seg; ++Tries) {
      const SxfSegment &Cand =
          File.Segments[G.below(File.Segments.size())];
      if (Cand.Bytes.size() >= 4)
        Seg = &Cand;
    }
    if (!Seg)
      Seg = &File.Segments[0];
    Reloc.Site =
        Seg->VAddr + 4 * static_cast<Addr>(G.below(Seg->Bytes.size() / 4));
    const SxfSegment &TargetSeg =
        File.Segments[G.below(File.Segments.size())];
    Reloc.Target =
        TargetSeg.VAddr + static_cast<Addr>(G.below(TargetSeg.MemSize + 1));
    Reloc.Kind = static_cast<RelocKind>(G.below(4));
    File.Relocs.push_back(Reloc);
  }
  return File;
}

} // namespace

TEST(RoundTripProperty, WriterReaderInverseOnRandomImages) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    SxfFile File = randomValidImage(Seed);
    ASSERT_TRUE(File.validate().hasValue())
        << "seed " << Seed << ": " << File.validate().error().describe();
    std::vector<uint8_t> Bytes = File.serialize();
    Expected<SxfFile> Back = SxfFile::deserialize(Bytes);
    ASSERT_TRUE(Back.hasValue())
        << "seed " << Seed << ": " << Back.error().describe();
    EXPECT_EQ(Back.value().serialize(), Bytes) << "seed " << Seed;
    const SxfFile &B = Back.value();
    EXPECT_EQ(B.Arch, File.Arch);
    EXPECT_EQ(B.Entry, File.Entry);
    ASSERT_EQ(B.Segments.size(), File.Segments.size());
    for (size_t I = 0; I < B.Segments.size(); ++I) {
      EXPECT_EQ(B.Segments[I].Kind, File.Segments[I].Kind);
      EXPECT_EQ(B.Segments[I].VAddr, File.Segments[I].VAddr);
      EXPECT_EQ(B.Segments[I].MemSize, File.Segments[I].MemSize);
      EXPECT_EQ(B.Segments[I].Bytes, File.Segments[I].Bytes);
    }
    ASSERT_EQ(B.Symbols.size(), File.Symbols.size());
    for (size_t I = 0; I < B.Symbols.size(); ++I) {
      EXPECT_EQ(B.Symbols[I].Name, File.Symbols[I].Name);
      EXPECT_EQ(B.Symbols[I].Value, File.Symbols[I].Value);
      EXPECT_EQ(B.Symbols[I].Kind, File.Symbols[I].Kind);
      EXPECT_EQ(B.Symbols[I].Binding, File.Symbols[I].Binding);
    }
    ASSERT_EQ(B.Relocs.size(), File.Relocs.size());
  }
}
