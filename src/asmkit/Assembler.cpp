//===- asmkit/Assembler.cpp - Two-pass assembler --------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "asmkit/Assembler.h"

#include "asmkit/TargetAsm.h"
#include "support/Error.h"

#include <cassert>
#include <cctype>
#include <map>
#include <set>

using namespace eel;
using namespace eel::asmkit;

namespace {

enum class Section : uint8_t { Text, Data, Bss };

struct PendingFixup {
  Section Sec = Section::Text;
  uint32_t Offset = 0; ///< Byte offset within the section buffer.
  Fixup Fix;
  unsigned Line = 0;
};

struct ExtraSymbol {
  std::string Name;
  Addr Value = 0;
  SymKind Kind = SymKind::Label;
};

/// Assembler state for one translation run.
class Driver {
public:
  Driver(TargetArch Arch, const AsmOptions &Options)
      : Parser(instParserFor(Arch)), Arch(Arch), Options(Options) {}

  Expected<SxfFile> run(const std::string &Source);

private:
  Expected<bool> processLine(std::string Line);
  Expected<bool> processDirective(const std::vector<std::string> &Tokens,
                                  const std::string &Line);
  Expected<bool> defineLabel(const std::string &Name);
  Expected<bool> emitInstruction(const std::vector<std::string> &Tokens);
  Expected<int64_t> parseNumber(const std::string &Token) const;

  void emitByte(uint8_t B) {
    currentBuffer().push_back(B);
  }
  void emitWordLE(uint32_t W) {
    for (unsigned I = 0; I < 4; ++I)
      emitByte(static_cast<uint8_t>(W >> (8 * I)));
  }

  std::vector<uint8_t> &currentBuffer() {
    assert(Current != Section::Bss && "bss has no file contents");
    return Current == Section::Text ? Text : Data;
  }
  uint32_t currentOffset() const {
    switch (Current) {
    case Section::Text:
      return static_cast<uint32_t>(Text.size());
    case Section::Data:
      return static_cast<uint32_t>(Data.size());
    case Section::Bss:
      return BssSize;
    }
    return 0;
  }

  Error lineError(const std::string &Message) const {
    return Error("line " + std::to_string(LineNo) + ": " + Message);
  }

  Addr sectionBase(Section Sec) const {
    switch (Sec) {
    case Section::Text:
      return Options.TextBase;
    case Section::Data:
      return Options.DataBase;
    case Section::Bss:
      return BssBase;
    }
    return 0;
  }

  const InstParser &Parser;
  TargetArch Arch;
  AsmOptions Options;

  Section Current = Section::Text;
  std::vector<uint8_t> Text;
  std::vector<uint8_t> Data;
  uint32_t BssSize = 0;
  Addr BssBase = 0;

  // Label name -> (section, offset).
  std::map<std::string, std::pair<Section, uint32_t>> Labels;
  std::vector<std::string> LabelOrder;
  std::set<std::string> Globals;
  std::vector<PendingFixup> Fixups;
  std::vector<SxfReloc> EmittedRelocs;
  std::vector<std::pair<ExtraSymbol, Section>> Extras;
  std::string EntryName;
  bool NextLabelHidden = false;
  std::set<std::string> HiddenLabels;
  unsigned LineNo = 0;
};

} // namespace

/// Splits an instruction/operand line into tokens. Identifiers keep their
/// leading sigils (%, $, .) so register and symbol spellings survive intact;
/// punctuation characters become single-character tokens.
static std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  size_t I = 0;
  auto IsIdent = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '$' || C == '%';
  };
  while (I < Line.size()) {
    char C = Line[I];
    if (C == ' ' || C == '\t') {
      ++I;
      continue;
    }
    if (IsIdent(C)) {
      size_t Start = I;
      while (I < Line.size() && IsIdent(Line[I]))
        ++I;
      Tokens.push_back(Line.substr(Start, I - Start));
      continue;
    }
    // 0x-prefixed numbers are matched by the identifier rule above; other
    // digits too. Everything else is punctuation.
    Tokens.push_back(std::string(1, C));
    ++I;
  }
  return Tokens;
}

Expected<int64_t> Driver::parseNumber(const std::string &Token) const {
  if (Token.empty())
    return lineError("expected a number");
  size_t Pos = 0;
  bool Neg = false;
  if (Token[0] == '-') {
    Neg = true;
    Pos = 1;
  }
  if (Pos >= Token.size() ||
      !std::isdigit(static_cast<unsigned char>(Token[Pos])))
    return lineError("expected a number, found '" + Token + "'");
  int64_t Value = 0;
  if (Token.compare(Pos, 2, "0x") == 0 || Token.compare(Pos, 2, "0X") == 0) {
    for (size_t I = Pos + 2; I < Token.size(); ++I) {
      char C = static_cast<char>(
          std::tolower(static_cast<unsigned char>(Token[I])));
      int Digit;
      if (C >= '0' && C <= '9')
        Digit = C - '0';
      else if (C >= 'a' && C <= 'f')
        Digit = C - 'a' + 10;
      else
        return lineError("bad hexadecimal digit in '" + Token + "'");
      Value = Value * 16 + Digit;
    }
  } else {
    for (size_t I = Pos; I < Token.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(Token[I])))
        return lineError("bad digit in '" + Token + "'");
      Value = Value * 10 + (Token[I] - '0');
    }
  }
  return Neg ? -Value : Value;
}

Expected<bool> Driver::defineLabel(const std::string &Name) {
  if (Labels.count(Name))
    return lineError("label '" + Name + "' is already defined");
  Labels[Name] = {Current, currentOffset()};
  LabelOrder.push_back(Name);
  if (NextLabelHidden) {
    HiddenLabels.insert(Name);
    NextLabelHidden = false;
  }
  return true;
}

Expected<bool>
Driver::processDirective(const std::vector<std::string> &Tokens,
                         const std::string &Line) {
  const std::string &D = Tokens[0];
  if (D == ".text") {
    Current = Section::Text;
    return true;
  }
  if (D == ".data") {
    Current = Section::Data;
    return true;
  }
  if (D == ".bss") {
    Current = Section::Bss;
    return true;
  }
  if (D == ".global") {
    if (Tokens.size() < 2)
      return lineError(".global needs a name");
    Globals.insert(Tokens[1]);
    return true;
  }
  if (D == ".hidden") {
    NextLabelHidden = true;
    return true;
  }
  if (D == ".entry") {
    if (Tokens.size() < 2)
      return lineError(".entry needs a name");
    EntryName = Tokens[1];
    return true;
  }
  if (D == ".word" || D == ".half" || D == ".byte") {
    if (Current == Section::Bss)
      return lineError("initialized data in .bss");
    unsigned Width = D == ".word" ? 4 : D == ".half" ? 2 : 1;
    // Operands: expr (, expr)* with expr = NUM | SYM | SYM + NUM.
    size_t I = 1;
    while (I < Tokens.size()) {
      int64_t Value = 0;
      bool IsSym = !Tokens[I].empty() &&
                   !std::isdigit(static_cast<unsigned char>(Tokens[I][0])) &&
                   Tokens[I] != "-";
      if (IsSym) {
        std::string Sym = Tokens[I++];
        int64_t Addend = 0;
        if (I + 1 < Tokens.size() && (Tokens[I] == "+" || Tokens[I] == "-")) {
          bool Neg = Tokens[I] == "-";
          Expected<int64_t> N = parseNumber(Tokens[I + 1]);
          if (N.hasError())
            return N.error();
          Addend = Neg ? -N.value() : N.value();
          I += 2;
        }
        if (Width != 4)
          return lineError("symbol reference requires .word");
        PendingFixup PF;
        PF.Sec = Current;
        PF.Offset = currentOffset();
        PF.Fix.Kind = FixupKind::DataWord;
        PF.Fix.Symbol = Sym;
        PF.Fix.Addend = Addend;
        PF.Line = LineNo;
        Fixups.push_back(PF);
        emitWordLE(0);
      } else {
        bool Neg = false;
        if (Tokens[I] == "-") {
          Neg = true;
          ++I;
          if (I >= Tokens.size())
            return lineError("dangling '-'");
        }
        Expected<int64_t> N = parseNumber(Tokens[I++]);
        if (N.hasError())
          return N.error();
        Value = Neg ? -N.value() : N.value();
        for (unsigned B = 0; B < Width; ++B)
          emitByte(static_cast<uint8_t>(static_cast<uint64_t>(Value) >>
                                        (8 * B)));
      }
      if (I < Tokens.size()) {
        if (Tokens[I] != ",")
          return lineError("expected ',' in data list");
        ++I;
      }
    }
    return true;
  }
  if (D == ".asciz" || D == ".ascii") {
    if (Current == Section::Bss)
      return lineError("initialized data in .bss");
    size_t Quote = Line.find('"');
    size_t End = Line.rfind('"');
    if (Quote == std::string::npos || End <= Quote)
      return lineError(D + " needs a quoted string");
    for (size_t I = Quote + 1; I < End; ++I) {
      char C = Line[I];
      if (C == '\\' && I + 1 < End) {
        ++I;
        switch (Line[I]) {
        case 'n':
          C = '\n';
          break;
        case 't':
          C = '\t';
          break;
        case '0':
          C = '\0';
          break;
        case '\\':
          C = '\\';
          break;
        case '"':
          C = '"';
          break;
        default:
          return lineError("unknown escape in string");
        }
      }
      emitByte(static_cast<uint8_t>(C));
    }
    if (D == ".asciz")
      emitByte(0);
    return true;
  }
  if (D == ".space") {
    if (Tokens.size() < 2)
      return lineError(".space needs a size");
    Expected<int64_t> N = parseNumber(Tokens[1]);
    if (N.hasError())
      return N.error();
    if (Current == Section::Bss)
      BssSize += static_cast<uint32_t>(N.value());
    else
      for (int64_t I = 0; I < N.value(); ++I)
        emitByte(0);
    return true;
  }
  if (D == ".align") {
    if (Tokens.size() < 2)
      return lineError(".align needs a boundary");
    Expected<int64_t> N = parseNumber(Tokens[1]);
    if (N.hasError())
      return N.error();
    uint32_t Boundary = static_cast<uint32_t>(N.value());
    if (Boundary == 0 || (Boundary & (Boundary - 1)))
      return lineError(".align boundary must be a power of two");
    if (Current == Section::Bss) {
      while (BssSize % Boundary)
        ++BssSize;
    } else {
      while (currentOffset() % Boundary)
        emitByte(0);
    }
    return true;
  }
  if (D == ".label" || D == ".debuglabel" || D == ".templabel") {
    if (Tokens.size() < 2)
      return lineError(D + " needs a name");
    ExtraSymbol Sym;
    Sym.Name = Tokens[1];
    Sym.Value = currentOffset();
    Sym.Kind = D == ".label"        ? SymKind::Label
               : D == ".debuglabel" ? SymKind::Debug
                                    : SymKind::Temp;
    Extras.push_back({Sym, Current});
    return true;
  }
  return lineError("unknown directive '" + D + "'");
}

Expected<bool> Driver::emitInstruction(const std::vector<std::string> &Tokens) {
  if (Current != Section::Text)
    return lineError("instructions must be in .text");
  if (currentOffset() % 4 != 0)
    return lineError("instruction at unaligned offset (missing .align 4?)");
  std::vector<AsmInst> Insts;
  Expected<bool> Result = Parser.parse(Tokens, Insts);
  if (Result.hasError())
    return lineError(Result.error().message());
  for (const AsmInst &Inst : Insts) {
    if (Inst.Fix.Kind != FixupKind::None) {
      PendingFixup PF;
      PF.Sec = Section::Text;
      PF.Offset = currentOffset();
      PF.Fix = Inst.Fix;
      PF.Line = LineNo;
      Fixups.push_back(PF);
    }
    emitWordLE(Inst.Word);
  }
  return true;
}

Expected<bool> Driver::processLine(std::string Line) {
  // Strip comments, respecting string literals.
  bool InString = false;
  for (size_t I = 0; I < Line.size(); ++I) {
    char C = Line[I];
    if (C == '"' && (I == 0 || Line[I - 1] != '\\'))
      InString = !InString;
    else if ((C == '!' || C == '#') && !InString) {
      Line.resize(I);
      break;
    }
  }

  // Peel leading labels of the form "name:".
  for (;;) {
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos)
      return true;
    size_t Colon = Line.find(':', First);
    if (Colon == std::string::npos)
      break;
    // Only treat it as a label if everything before ':' is one identifier.
    std::string Head = Line.substr(First, Colon - First);
    bool IsLabel = !Head.empty();
    for (char C : Head)
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' &&
          C != '.' && C != '$')
        IsLabel = false;
    if (!IsLabel)
      break;
    Expected<bool> R = defineLabel(Head);
    if (R.hasError())
      return R;
    Line = Line.substr(Colon + 1);
  }

  std::vector<std::string> Tokens = tokenize(Line);
  if (Tokens.empty())
    return true;
  if (Tokens[0][0] == '.' && Tokens[0] != "." && Tokens[0].size() > 1 &&
      !std::isdigit(static_cast<unsigned char>(Tokens[0][1])))
    return processDirective(Tokens, Line);
  return emitInstruction(Tokens);
}

Expected<SxfFile> Driver::run(const std::string &Source) {
  size_t Pos = 0;
  LineNo = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    ++LineNo;
    Expected<bool> R = processLine(Source.substr(Pos, End - Pos));
    if (R.hasError())
      return R.error();
    Pos = End + 1;
  }

  // Place bss after data, 16-byte aligned.
  BssBase = Options.DataBase + static_cast<Addr>((Data.size() + 15) & ~15u);

  auto Resolve = [&](const std::string &Sym,
                     int64_t Addend) -> Expected<int64_t> {
    if (Sym.empty())
      return Addend;
    auto It = Labels.find(Sym);
    if (It == Labels.end())
      return Error("undefined symbol '" + Sym + "'");
    return static_cast<int64_t>(sectionBase(It->second.first)) +
           It->second.second + Addend;
  };

  const TargetInfo &Target = Parser.target();
  for (const PendingFixup &PF : Fixups) {
    Expected<int64_t> TargetValue = Resolve(PF.Fix.Symbol, PF.Fix.Addend);
    if (TargetValue.hasError())
      return Error("line " + std::to_string(PF.Line) + ": " +
                   TargetValue.error().message());
    uint32_t Value = static_cast<uint32_t>(TargetValue.value());
    if (!PF.Fix.Symbol.empty()) {
      SxfReloc Reloc;
      Reloc.Site = sectionBase(PF.Sec) + PF.Offset;
      Reloc.Target = Value;
      switch (PF.Fix.Kind) {
      case FixupKind::PcRelative:
        Reloc.Kind = RelocKind::PcRel;
        break;
      case FixupKind::ImmHi:
        Reloc.Kind = RelocKind::Hi;
        break;
      case FixupKind::ImmLo:
        Reloc.Kind = RelocKind::Lo;
        break;
      default:
        Reloc.Kind = RelocKind::Word32;
        break;
      }
      EmittedRelocs.push_back(Reloc);
    }
    std::vector<uint8_t> &Buf = PF.Sec == Section::Text ? Text : Data;
    uint32_t Old = static_cast<uint32_t>(Buf[PF.Offset]) |
                   (static_cast<uint32_t>(Buf[PF.Offset + 1]) << 8) |
                   (static_cast<uint32_t>(Buf[PF.Offset + 2]) << 16) |
                   (static_cast<uint32_t>(Buf[PF.Offset + 3]) << 24);
    uint32_t New = Old;
    switch (PF.Fix.Kind) {
    case FixupKind::None:
      break;
    case FixupKind::PcRelative: {
      Addr PC = sectionBase(PF.Sec) + PF.Offset;
      std::optional<MachWord> Retargeted =
          Target.retargetDirect(Old, PC, Value);
      if (!Retargeted)
        return Error("line " + std::to_string(PF.Line) +
                     ": branch target out of range");
      New = *Retargeted;
      break;
    }
    case FixupKind::ImmHi:
      New = Parser.applyImmHi(Old, Value);
      break;
    case FixupKind::ImmLo:
      New = Parser.applyImmLo(Old, Value);
      break;
    case FixupKind::DataWord:
      New = Value;
      break;
    }
    for (unsigned I = 0; I < 4; ++I)
      Buf[PF.Offset + I] = static_cast<uint8_t>(New >> (8 * I));
  }

  SxfFile File;
  File.Arch = Arch;
  File.Relocs = std::move(EmittedRelocs);

  SxfSegment TextSeg;
  TextSeg.Kind = SegKind::Text;
  TextSeg.VAddr = Options.TextBase;
  TextSeg.Bytes = std::move(Text);
  TextSeg.MemSize = static_cast<uint32_t>(TextSeg.Bytes.size());
  File.Segments.push_back(std::move(TextSeg));

  SxfSegment DataSeg;
  DataSeg.Kind = SegKind::Data;
  DataSeg.VAddr = Options.DataBase;
  DataSeg.Bytes = std::move(Data);
  DataSeg.MemSize = static_cast<uint32_t>(DataSeg.Bytes.size());
  File.Segments.push_back(std::move(DataSeg));

  if (BssSize > 0) {
    SxfSegment BssSeg;
    BssSeg.Kind = SegKind::Bss;
    BssSeg.VAddr = BssBase;
    BssSeg.MemSize = BssSize;
    File.Segments.push_back(std::move(BssSeg));
  }

  // Emit symbols in definition order.
  for (const std::string &Name : LabelOrder) {
    if (Name.compare(0, 2, ".L") == 0)
      continue; // assembler-local
    if (HiddenLabels.count(Name))
      continue; // deliberately omitted (hidden routine)
    const auto &[Sec, Off] = Labels[Name];
    SxfSymbol Sym;
    Sym.Name = Name;
    Sym.Value = sectionBase(Sec) + Off;
    Sym.Kind = Sec == Section::Text ? SymKind::Routine : SymKind::Object;
    Sym.Binding =
        Globals.count(Name) ? SymBinding::Global : SymBinding::Local;
    File.Symbols.push_back(std::move(Sym));
  }
  for (const auto &[Extra, Sec] : Extras) {
    SxfSymbol Sym;
    Sym.Name = Extra.Name;
    Sym.Value = sectionBase(Sec) + Extra.Value;
    Sym.Kind = Extra.Kind;
    Sym.Binding = SymBinding::Local;
    File.Symbols.push_back(std::move(Sym));
  }

  if (!EntryName.empty()) {
    Expected<int64_t> E = Resolve(EntryName, 0);
    if (E.hasError())
      return Error(".entry: " + E.error().message());
    File.Entry = static_cast<Addr>(E.value());
  } else if (Labels.count("main")) {
    File.Entry = sectionBase(Labels["main"].first) + Labels["main"].second;
  } else {
    File.Entry = Options.TextBase;
  }
  return File;
}

Expected<SxfFile> eel::assembleProgram(TargetArch Arch,
                                       const std::string &Source,
                                       const AsmOptions &Options) {
  Driver D(Arch, Options);
  return D.run(Source);
}

SxfFile eel::assembleOrDie(TargetArch Arch, const std::string &Source,
                           const AsmOptions &Options) {
  return assembleProgram(Arch, Source, Options).takeValue();
}
