//===- asmkit/SriscAsm.cpp - SRISC assembly syntax ------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPARC-flavoured assembly syntax for SRISC:
///
///   add %o1, %o2, %o3        and the other three-operand ALU forms
///   add %o1, -4, %o3         reg-or-imm second operand
///   sethi %hi(sym), %o1      / sethi 0x3f, %o1 (raw imm22 field)
///   or %o1, %lo(sym), %o1
///   be,a L1 / ba done / call foo
///   jmpl %o7+8, %g0 / jmp %o1 / ret
///   ld [%o1+4], %o2 / ld [%o1+%o3], %o2 / st %o2, [%o1+%lo(sym)]
///   sys 1 / rdcc %o1 / wrcc %o1
///   pseudos: nop, mov, cmp, set, b
///
//===----------------------------------------------------------------------===//

#include "asmkit/TargetAsm.h"
#include "isa/SriscEncoding.h"

#include <cctype>
#include <map>

using namespace eel;
using namespace eel::asmkit;
using namespace eel::srisc;

InstParser::~InstParser() = default;

namespace {

/// Token cursor over one instruction line.
class Cursor {
public:
  explicit Cursor(const std::vector<std::string> &Tokens) : Tokens(Tokens) {}

  bool atEnd() const { return Index >= Tokens.size(); }
  const std::string &peek() const {
    static const std::string Empty;
    return atEnd() ? Empty : Tokens[Index];
  }
  std::string next() {
    std::string T = peek();
    ++Index;
    return T;
  }
  bool eat(const std::string &T) {
    if (peek() != T)
      return false;
    ++Index;
    return true;
  }

private:
  const std::vector<std::string> &Tokens;
  size_t Index = 1; // Tokens[0] is the mnemonic.
};

struct Operand2 {
  bool IsReg = false;
  unsigned Reg = 0;
  int32_t Imm = 0;
  Fixup Fix; ///< ImmLo fixup when the immediate is %lo(sym).
};

} // namespace

static Expected<unsigned> parseReg(const std::string &T) {
  if (T.size() < 3 || T[0] != '%')
    return Error("expected a register, found '" + T + "'");
  if (T == "%sp")
    return unsigned(RegSP);
  if (T == "%fp")
    return unsigned(RegFP);
  char Group = T[1];
  unsigned Base;
  switch (Group) {
  case 'g':
    Base = 0;
    break;
  case 'o':
    Base = 8;
    break;
  case 'l':
    Base = 16;
    break;
  case 'i':
    Base = 24;
    break;
  case 'r': {
    unsigned N = 0;
    for (size_t I = 2; I < T.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(T[I])))
        return Error("bad register '" + T + "'");
      N = N * 10 + (T[I] - '0');
    }
    if (N >= 32)
      return Error("register number out of range in '" + T + "'");
    return N;
  }
  default:
    return Error("bad register '" + T + "'");
  }
  if (T.size() != 3 || !std::isdigit(static_cast<unsigned char>(T[2])))
    return Error("bad register '" + T + "'");
  unsigned N = static_cast<unsigned>(T[2] - '0');
  if (N >= 8)
    return Error("register number out of range in '" + T + "'");
  return Base + N;
}

static bool looksLikeReg(const std::string &T) {
  return T.size() >= 2 && T[0] == '%';
}

static Expected<int64_t> parseImm(Cursor &C) {
  bool Neg = C.eat("-");
  std::string T = C.next();
  if (T.empty() || !std::isdigit(static_cast<unsigned char>(T[0])))
    return Error("expected an immediate, found '" + T + "'");
  int64_t Value = 0;
  if (T.size() > 2 && (T[1] == 'x' || T[1] == 'X')) {
    for (size_t I = 2; I < T.size(); ++I) {
      char Ch = static_cast<char>(std::tolower(static_cast<unsigned char>(T[I])));
      int D = Ch <= '9' ? Ch - '0' : Ch - 'a' + 10;
      if (D < 0 || D > 15 || (Ch > '9' && Ch < 'a'))
        return Error("bad hex immediate '" + T + "'");
      Value = Value * 16 + D;
    }
  } else {
    for (char Ch : T) {
      if (!std::isdigit(static_cast<unsigned char>(Ch)))
        return Error("bad immediate '" + T + "'");
      Value = Value * 10 + (Ch - '0');
    }
  }
  return Neg ? -Value : Value;
}

/// Parses `%hi ( sym [+/- n] )` or `%lo ( ... )`; returns the fixup.
static Expected<Fixup> parseHiLo(Cursor &C, bool IsHi) {
  Fixup Fix;
  Fix.Kind = IsHi ? FixupKind::ImmHi : FixupKind::ImmLo;
  if (!C.eat("("))
    return Error("expected '(' after %hi/%lo");
  std::string Sym = C.next();
  if (Sym.empty())
    return Error("expected a symbol in %hi/%lo");
  if (!Sym.empty() && std::isdigit(static_cast<unsigned char>(Sym[0]))) {
    // %hi(constant): encode the constant directly through the fixup path.
    Cursor Sub = C; // unused; constants re-parsed below
    (void)Sub;
    int64_t Value = 0;
    if (Sym.size() > 2 && (Sym[1] == 'x' || Sym[1] == 'X')) {
      for (size_t I = 2; I < Sym.size(); ++I) {
        char Ch =
            static_cast<char>(std::tolower(static_cast<unsigned char>(Sym[I])));
        Value = Value * 16 + (Ch <= '9' ? Ch - '0' : Ch - 'a' + 10);
      }
    } else {
      for (char Ch : Sym)
        Value = Value * 10 + (Ch - '0');
    }
    Fix.Addend = Value;
  } else {
    Fix.Symbol = Sym;
    if (C.peek() == "+" || C.peek() == "-") {
      bool Neg = C.next() == "-";
      Expected<int64_t> N = parseImm(C);
      if (N.hasError())
        return N.error();
      Fix.Addend = Neg ? -N.value() : N.value();
    }
  }
  if (!C.eat(")"))
    return Error("expected ')' after %hi/%lo");
  return Fix;
}

/// Parses a reg-or-imm second operand (also accepting %lo(sym)).
static Expected<Operand2> parseOperand2(Cursor &C) {
  Operand2 Op;
  if (C.peek() == "%lo") {
    C.next();
    Expected<Fixup> Fix = parseHiLo(C, /*IsHi=*/false);
    if (Fix.hasError())
      return Fix.error();
    Op.Fix = Fix.value();
    return Op;
  }
  if (looksLikeReg(C.peek())) {
    Expected<unsigned> Reg = parseReg(C.next());
    if (Reg.hasError())
      return Reg.error();
    Op.IsReg = true;
    Op.Reg = Reg.value();
    return Op;
  }
  Expected<int64_t> Imm = parseImm(C);
  if (Imm.hasError())
    return Imm.error();
  if (!fitsSigned(Imm.value(), 13))
    return Error("immediate does not fit in 13 bits");
  Op.Imm = static_cast<int32_t>(Imm.value());
  return Op;
}

/// Parses a `[base]`, `[base+imm]`, `[base-imm]`, `[base+reg]`, or
/// `[base+%lo(sym)]` memory address.
static Expected<Operand2> parseMemAddr(Cursor &C, unsigned &BaseOut) {
  if (!C.eat("["))
    return Error("expected '[' to open a memory address");
  Expected<unsigned> Base = parseReg(C.next());
  if (Base.hasError())
    return Base.error();
  BaseOut = Base.value();
  Operand2 Op; // defaults to immediate 0
  if (C.eat("+")) {
    Expected<Operand2> Parsed = parseOperand2(C);
    if (Parsed.hasError())
      return Parsed.error();
    Op = Parsed.value();
  } else if (C.peek() == "-") {
    Expected<Operand2> Parsed = parseOperand2(C); // consumes the '-'
    if (Parsed.hasError())
      return Parsed.error();
    Op = Parsed.value();
  }
  if (!C.eat("]"))
    return Error("expected ']' to close a memory address");
  return Op;
}

namespace {

/// SRISC mnemonic table and encoder.
class SriscAsm : public InstParser {
public:
  Expected<bool> parse(const std::vector<std::string> &Tokens,
                       std::vector<AsmInst> &Out) const override;

  MachWord applyImmHi(MachWord Word, uint32_t Value) const override {
    return insertBits(Word, 0, 21, Value >> 10);
  }
  MachWord applyImmLo(MachWord Word, uint32_t Value) const override {
    return insertBits(Word, 0, 12, Value & 0x3FF);
  }
  const TargetInfo &target() const override { return sriscTarget(); }
};

} // namespace

static const std::map<std::string, uint32_t> &arithOps() {
  static const std::map<std::string, uint32_t> Ops = {
      {"add", Op3Add},     {"and", Op3And},     {"or", Op3Or},
      {"xor", Op3Xor},     {"sub", Op3Sub},     {"sll", Op3Sll},
      {"srl", Op3Srl},     {"sra", Op3Sra},     {"smul", Op3Smul},
      {"sdiv", Op3Sdiv},   {"srem", Op3Srem},   {"addcc", Op3AddCC},
      {"andcc", Op3AndCC}, {"orcc", Op3OrCC},   {"xorcc", Op3XorCC},
      {"subcc", Op3SubCC}};
  return Ops;
}

static const std::map<std::string, Cond> &branchOps() {
  static const std::map<std::string, Cond> Ops = {
      {"bn", CondN},     {"be", CondE},     {"ble", CondLE},
      {"bl", CondL},     {"bleu", CondLEU}, {"bcs", CondCS},
      {"bneg", CondNEG}, {"bvs", CondVS},   {"ba", CondA},
      {"bne", CondNE},   {"bg", CondG},     {"bge", CondGE},
      {"bgu", CondGU},   {"bcc", CondCC},   {"bpos", CondPOS},
      {"bvc", CondVC}};
  return Ops;
}

static const std::map<std::string, uint32_t> &memOps() {
  static const std::map<std::string, uint32_t> Ops = {
      {"ld", Op3Ld},     {"ldub", Op3Ldub}, {"lduh", Op3Lduh},
      {"ldsb", Op3Ldsb}, {"ldsh", Op3Ldsh}, {"st", Op3St},
      {"stb", Op3Stb},   {"sth", Op3Sth}};
  return Ops;
}

/// Builds the ALU/memory word for a parsed reg-or-imm operand, attaching
/// the %lo fixup when present.
static AsmInst makeFormat3(bool IsMem, uint32_t Op3, unsigned Rd, unsigned Rs1,
                           const Operand2 &Op) {
  AsmInst Inst;
  if (Op.IsReg)
    Inst.Word = IsMem ? encodeMemReg(Op3, Rd, Rs1, Op.Reg)
                      : encodeArithReg(Op3, Rd, Rs1, Op.Reg);
  else
    Inst.Word = IsMem ? encodeMemImm(Op3, Rd, Rs1, Op.Imm)
                      : encodeArithImm(Op3, Rd, Rs1, Op.Imm);
  Inst.Fix = Op.Fix;
  return Inst;
}

Expected<bool> SriscAsm::parse(const std::vector<std::string> &Tokens,
                               std::vector<AsmInst> &Out) const {
  const std::string &Mnemonic = Tokens[0];
  Cursor C(Tokens);

  // --- ALU three-operand forms ------------------------------------------
  if (auto It = arithOps().find(Mnemonic); It != arithOps().end()) {
    Expected<unsigned> Rs1 = parseReg(C.next());
    if (Rs1.hasError())
      return Rs1.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<Operand2> Op = parseOperand2(C);
    if (Op.hasError())
      return Op.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    Out.push_back(makeFormat3(false, It->second, Rd.value(), Rs1.value(),
                              Op.value()));
    return true;
  }

  // --- Memory -------------------------------------------------------------
  if (auto It = memOps().find(Mnemonic); It != memOps().end()) {
    bool IsStore = It->second >= Op3St;
    unsigned Base = 0, DataReg = 0;
    Operand2 Op;
    if (IsStore) {
      Expected<unsigned> Rd = parseReg(C.next());
      if (Rd.hasError())
        return Rd.error();
      DataReg = Rd.value();
      if (!C.eat(","))
        return Error("expected ','");
      Expected<Operand2> Parsed = parseMemAddr(C, Base);
      if (Parsed.hasError())
        return Parsed.error();
      Op = Parsed.value();
    } else {
      Expected<Operand2> Parsed = parseMemAddr(C, Base);
      if (Parsed.hasError())
        return Parsed.error();
      Op = Parsed.value();
      if (!C.eat(","))
        return Error("expected ','");
      Expected<unsigned> Rd = parseReg(C.next());
      if (Rd.hasError())
        return Rd.error();
      DataReg = Rd.value();
    }
    Out.push_back(makeFormat3(true, It->second, DataReg, Base, Op));
    return true;
  }

  // --- Branches -------------------------------------------------------------
  if (auto It = branchOps().find(Mnemonic); It != branchOps().end()) {
    bool Annul = false;
    if (C.eat(",")) {
      if (!C.eat("a"))
        return Error("expected 'a' after ',' in branch");
      Annul = true;
    }
    AsmInst Inst;
    Inst.Word = encodeBicc(Annul, It->second, 0);
    std::string TargetTok = C.peek();
    if (!TargetTok.empty() &&
        !std::isdigit(static_cast<unsigned char>(TargetTok[0])) &&
        TargetTok != "-") {
      Inst.Fix.Kind = FixupKind::PcRelative;
      Inst.Fix.Symbol = C.next();
    } else {
      Expected<int64_t> Target = parseImm(C);
      if (Target.hasError())
        return Target.error();
      Inst.Fix.Kind = FixupKind::PcRelative;
      Inst.Fix.Addend = Target.value();
    }
    Out.push_back(Inst);
    return true;
  }

  // --- Everything else -------------------------------------------------------
  if (Mnemonic == "b") {
    std::vector<std::string> Rewritten = Tokens;
    Rewritten[0] = "ba";
    return parse(Rewritten, Out);
  }

  if (Mnemonic == "call") {
    AsmInst Inst;
    Inst.Word = encodeCall(0);
    std::string TargetTok = C.peek();
    if (TargetTok.empty())
      return Error("call needs a target");
    Inst.Fix.Kind = FixupKind::PcRelative;
    if (!std::isdigit(static_cast<unsigned char>(TargetTok[0])))
      Inst.Fix.Symbol = C.next();
    else {
      Expected<int64_t> Target = parseImm(C);
      if (Target.hasError())
        return Target.error();
      Inst.Fix.Addend = Target.value();
    }
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "jmpl" || Mnemonic == "jmp") {
    Expected<unsigned> Rs1 = parseReg(C.next());
    if (Rs1.hasError())
      return Rs1.error();
    Operand2 Op;
    if (C.eat("+")) {
      Expected<Operand2> Parsed = parseOperand2(C);
      if (Parsed.hasError())
        return Parsed.error();
      Op = Parsed.value();
    } else if (C.peek() == "-") {
      Expected<Operand2> Parsed = parseOperand2(C);
      if (Parsed.hasError())
        return Parsed.error();
      Op = Parsed.value();
    }
    unsigned Rd = 0;
    if (Mnemonic == "jmpl") {
      if (!C.eat(","))
        return Error("expected ',' before link register");
      Expected<unsigned> Link = parseReg(C.next());
      if (Link.hasError())
        return Link.error();
      Rd = Link.value();
    }
    AsmInst Inst;
    if (Op.IsReg)
      Inst.Word = encodeJmplReg(Rd, Rs1.value(), Op.Reg);
    else
      Inst.Word = encodeJmplImm(Rd, Rs1.value(), Op.Imm);
    Inst.Fix = Op.Fix;
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "ret") {
    AsmInst Inst;
    Inst.Word = encodeJmplImm(RegZero, RegLink, 8);
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "sethi") {
    AsmInst Inst;
    if (C.peek() == "%hi") {
      C.next();
      Expected<Fixup> Fix = parseHiLo(C, /*IsHi=*/true);
      if (Fix.hasError())
        return Fix.error();
      Inst.Fix = Fix.value();
      Inst.Word = encodeSethi(0, 0);
    } else {
      Expected<int64_t> Imm = parseImm(C);
      if (Imm.hasError())
        return Imm.error();
      if (!fitsUnsigned(static_cast<uint64_t>(Imm.value()), 22))
        return Error("sethi immediate does not fit in 22 bits");
      Inst.Word = encodeSethi(0, static_cast<uint32_t>(Imm.value()));
    }
    if (!C.eat(","))
      return Error("expected ','");
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    Inst.Word = insertBits(Inst.Word, 25, 29, Rd.value());
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "sys") {
    Expected<int64_t> Num = parseImm(C);
    if (Num.hasError())
      return Num.error();
    AsmInst Inst;
    Inst.Word = encodeSys(static_cast<unsigned>(Num.value()));
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "rdcc" || Mnemonic == "wrcc") {
    Expected<unsigned> Reg = parseReg(C.next());
    if (Reg.hasError())
      return Reg.error();
    AsmInst Inst;
    Inst.Word = Mnemonic == "rdcc" ? encodeRdCC(Reg.value())
                                   : encodeWrCC(Reg.value());
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "nop") {
    AsmInst Inst;
    Inst.Word = nop();
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "mov") {
    // mov reg|imm, rd  ->  or %g0, op2, rd
    Expected<Operand2> Op = parseOperand2(C);
    if (Op.hasError())
      return Op.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    Out.push_back(makeFormat3(false, Op3Or, Rd.value(), RegZero, Op.value()));
    return true;
  }

  if (Mnemonic == "cmp") {
    // cmp a, b  ->  subcc a, b, %g0
    Expected<unsigned> Rs1 = parseReg(C.next());
    if (Rs1.hasError())
      return Rs1.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<Operand2> Op = parseOperand2(C);
    if (Op.hasError())
      return Op.error();
    Out.push_back(
        makeFormat3(false, Op3SubCC, RegZero, Rs1.value(), Op.value()));
    return true;
  }

  if (Mnemonic == "set") {
    // set sym|imm, rd  ->  sethi %hi(x), rd ; or rd, %lo(x), rd
    // Always expands to two words so code layout is predictable.
    std::string ValueTok = C.peek();
    if (ValueTok.empty())
      return Error("set needs a value");
    if (!C.eat(","))
      C.next(); // consume the value token; ',' checked below
    if (!C.eat(","))
      return Error("expected ','");
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    AsmInst Hi, Lo;
    Hi.Word = encodeSethi(Rd.value(), 0);
    Lo.Word = encodeArithImm(Op3Or, Rd.value(), Rd.value(), 0);
    if (!std::isdigit(static_cast<unsigned char>(ValueTok[0]))) {
      Hi.Fix.Kind = FixupKind::ImmHi;
      Hi.Fix.Symbol = ValueTok;
      Lo.Fix.Kind = FixupKind::ImmLo;
      Lo.Fix.Symbol = ValueTok;
    } else {
      // Constant: compute directly.
      int64_t Value = 0;
      if (ValueTok.size() > 2 && (ValueTok[1] == 'x' || ValueTok[1] == 'X')) {
        for (size_t I = 2; I < ValueTok.size(); ++I) {
          char Ch = static_cast<char>(
              std::tolower(static_cast<unsigned char>(ValueTok[I])));
          Value = Value * 16 + (Ch <= '9' ? Ch - '0' : Ch - 'a' + 10);
        }
      } else {
        for (char Ch : ValueTok)
          Value = Value * 10 + (Ch - '0');
      }
      Hi.Word = encodeSethi(Rd.value(), static_cast<uint32_t>(Value) >> 10);
      Lo.Word = encodeArithImm(Op3Or, Rd.value(), Rd.value(),
                               static_cast<int32_t>(Value & 0x3FF));
    }
    Out.push_back(Hi);
    Out.push_back(Lo);
    return true;
  }

  return Error("unknown mnemonic '" + Mnemonic + "'");
}

const InstParser &eel::asmkit::sriscInstParser() {
  static SriscAsm Parser;
  return Parser;
}
