//===- asmkit/AriscAsm.cpp - ARISC assembly syntax ------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alpha-flavoured assembly syntax for ARISC:
///
///   add $t0, $t1, $t2 / addi $t0, $t1, -4 / slli $t0, $t1, 3
///   ldih $t0, %hi(sym) / ori $t0, $t0, %lo(sym)
///   ldw $t0, 8($sp) / stw $t0, %lo(sym)($t1)
///   beq $t0, $t1, L1 / blt $t0, $t1, L2 / br done / bsr foo
///   jmp ($t0) / jmp $ra, ($t0) / sys 1
///   pseudos: nop, move, li, la, b, ret
///
/// No delay slots: the word after a transfer executes only if the transfer
/// falls through, so none of the pseudos pad with nops.
///
//===----------------------------------------------------------------------===//

#include "asmkit/TargetAsm.h"
#include "isa/AriscEncoding.h"

#include <cctype>
#include <map>

using namespace eel;
using namespace eel::asmkit;
using namespace eel::arisc;

namespace {

/// Token cursor over one instruction line (Tokens[0] is the mnemonic).
class Cursor {
public:
  explicit Cursor(const std::vector<std::string> &Tokens) : Tokens(Tokens) {}

  bool atEnd() const { return Index >= Tokens.size(); }
  const std::string &peek() const {
    static const std::string Empty;
    return atEnd() ? Empty : Tokens[Index];
  }
  std::string next() {
    std::string T = peek();
    ++Index;
    return T;
  }
  bool eat(const std::string &T) {
    if (peek() != T)
      return false;
    ++Index;
    return true;
  }

private:
  const std::vector<std::string> &Tokens;
  size_t Index = 1;
};

/// Immediate operand: a constant or a %hi/%lo symbol reference.
struct ImmOperand {
  int64_t Value = 0;
  Fixup Fix;
};

} // namespace

static Expected<unsigned> parseReg(const std::string &T) {
  static const std::map<std::string, unsigned> Named = {
      {"$zero", 0}, {"$v0", 1},   {"$t0", 2},   {"$t1", 3},   {"$t2", 4},
      {"$t3", 5},   {"$t4", 6},   {"$t5", 7},   {"$t6", 8},   {"$t7", 9},
      {"$s0", 10},  {"$s1", 11},  {"$s2", 12},  {"$s3", 13},  {"$s4", 14},
      {"$fp", 15},  {"$a0", 16},  {"$a1", 17},  {"$a2", 18},  {"$a3", 19},
      {"$t8", 20},  {"$t9", 21},  {"$t10", 22}, {"$t11", 23}, {"$t12", 24},
      {"$t13", 25}, {"$ra", 26},  {"$t14", 27}, {"$at", 28},  {"$gp", 29},
      {"$sp", 30},  {"$s5", 31}};
  if (auto It = Named.find(T); It != Named.end())
    return It->second;
  if (T.size() >= 2 && T[0] == '$' &&
      std::isdigit(static_cast<unsigned char>(T[1]))) {
    unsigned N = 0;
    for (size_t I = 1; I < T.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(T[I])))
        return Error("bad register '" + T + "'");
      N = N * 10 + (T[I] - '0');
    }
    if (N >= 32)
      return Error("register number out of range in '" + T + "'");
    return N;
  }
  return Error("expected a register, found '" + T + "'");
}

static Expected<int64_t> parseNumberToken(const std::string &T) {
  if (T.empty() || !std::isdigit(static_cast<unsigned char>(T[0])))
    return Error("expected a number, found '" + T + "'");
  int64_t Value = 0;
  if (T.size() > 2 && (T[1] == 'x' || T[1] == 'X')) {
    for (size_t I = 2; I < T.size(); ++I) {
      char Ch = static_cast<char>(std::tolower(static_cast<unsigned char>(T[I])));
      if (!std::isxdigit(static_cast<unsigned char>(Ch)))
        return Error("bad hex number '" + T + "'");
      Value = Value * 16 + (Ch <= '9' ? Ch - '0' : Ch - 'a' + 10);
    }
  } else {
    for (char Ch : T) {
      if (!std::isdigit(static_cast<unsigned char>(Ch)))
        return Error("bad number '" + T + "'");
      Value = Value * 10 + (Ch - '0');
    }
  }
  return Value;
}

/// Parses an immediate: NUM, -NUM, %hi(sym[+n]), or %lo(sym[+n]).
static Expected<ImmOperand> parseImmOperand(Cursor &C) {
  ImmOperand Op;
  if (C.peek() == "%hi" || C.peek() == "%lo") {
    bool IsHi = C.next() == "%hi";
    Op.Fix.Kind = IsHi ? FixupKind::ImmHi : FixupKind::ImmLo;
    if (!C.eat("("))
      return Error("expected '(' after %hi/%lo");
    std::string Sym = C.next();
    if (Sym.empty())
      return Error("expected a symbol in %hi/%lo");
    Op.Fix.Symbol = Sym;
    if (C.peek() == "+" || C.peek() == "-") {
      bool Neg = C.next() == "-";
      Expected<int64_t> N = parseNumberToken(C.next());
      if (N.hasError())
        return N.error();
      Op.Fix.Addend = Neg ? -N.value() : N.value();
    }
    if (!C.eat(")"))
      return Error("expected ')' after %hi/%lo");
    return Op;
  }
  bool Neg = C.eat("-");
  Expected<int64_t> N = parseNumberToken(C.next());
  if (N.hasError())
    return N.error();
  Op.Value = Neg ? -N.value() : N.value();
  return Op;
}

namespace {

/// ARISC mnemonic table and encoder.
class AriscAsm : public InstParser {
public:
  Expected<bool> parse(const std::vector<std::string> &Tokens,
                       std::vector<AsmInst> &Out) const override;

  MachWord applyImmHi(MachWord Word, uint32_t Value) const override {
    return insertBits(Word, 0, 15, Value >> 16);
  }
  MachWord applyImmLo(MachWord Word, uint32_t Value) const override {
    return insertBits(Word, 0, 15, Value & 0xFFFF);
  }
  const TargetInfo &target() const override { return ariscTarget(); }
};

} // namespace

Expected<bool> AriscAsm::parse(const std::vector<std::string> &Tokens,
                               std::vector<AsmInst> &Out) const {
  const std::string &Mnemonic = Tokens[0];
  Cursor C(Tokens);

  static const std::map<std::string, uint32_t> Operate = {
      {"add", FnAdd}, {"sub", FnSub}, {"and", FnAnd},   {"or", FnOr},
      {"xor", FnXor}, {"sll", FnSll}, {"srl", FnSrl},   {"sra", FnSra},
      {"mul", FnMul}, {"div", FnDiv}, {"rem", FnRem},   {"cmplt", FnCmplt}};
  static const std::map<std::string, uint32_t> IAluSigned = {
      {"addi", OpAddi}, {"cmplti", OpCmplti}};
  static const std::map<std::string, uint32_t> IAluUnsigned = {
      {"andi", OpAndi}, {"ori", OpOri}, {"xori", OpXori}};
  static const std::map<std::string, uint32_t> IShift = {
      {"slli", OpSlli}, {"srli", OpSrli}, {"srai", OpSrai}};
  static const std::map<std::string, uint32_t> Mem = {
      {"ldw", OpLdw}, {"ldb", OpLdb}, {"ldbu", OpLdbu}, {"ldh", OpLdh},
      {"ldhu", OpLdhu}, {"stw", OpStw}, {"stb", OpStb}, {"sth", OpSth}};
  static const std::map<std::string, uint32_t> CondBranch = {
      {"beq", OpBeq}, {"bne", OpBne}, {"blt", OpBlt}, {"ble", OpBle}};

  auto ParseRegAfterComma = [&](unsigned &Reg) -> Expected<bool> {
    if (!C.eat(","))
      return Error("expected ','");
    Expected<unsigned> R = parseReg(C.next());
    if (R.hasError())
      return R.error();
    Reg = R.value();
    return true;
  };

  // A PC-relative target: a numeric addend or a symbol.
  auto ParseTarget = [&](AsmInst &Inst) -> Expected<bool> {
    std::string TargetTok = C.next();
    if (TargetTok.empty())
      return Error("transfer needs a target");
    Inst.Fix.Kind = FixupKind::PcRelative;
    if (std::isdigit(static_cast<unsigned char>(TargetTok[0]))) {
      Expected<int64_t> N = parseNumberToken(TargetTok);
      if (N.hasError())
        return N.error();
      Inst.Fix.Addend = N.value();
    } else {
      Inst.Fix.Symbol = TargetTok;
    }
    return true;
  };

  if (auto It = Operate.find(Mnemonic); It != Operate.end()) {
    // op $rc, $ra, $rb
    Expected<unsigned> Rc = parseReg(C.next());
    if (Rc.hasError())
      return Rc.error();
    unsigned Ra = 0, Rb = 0;
    Expected<bool> A = ParseRegAfterComma(Ra);
    if (A.hasError())
      return A.error();
    Expected<bool> B = ParseRegAfterComma(Rb);
    if (B.hasError())
      return B.error();
    Out.push_back({encodeOperate(Ra, Rb, Rc.value(), It->second), {}});
    return true;
  }

  if (auto It = IAluSigned.find(Mnemonic); It != IAluSigned.end()) {
    // op $rb, $ra, imm (dest first, as written).
    Expected<unsigned> Rb = parseReg(C.next());
    if (Rb.hasError())
      return Rb.error();
    unsigned Ra = 0;
    Expected<bool> A = ParseRegAfterComma(Ra);
    if (A.hasError())
      return A.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<ImmOperand> Imm = parseImmOperand(C);
    if (Imm.hasError())
      return Imm.error();
    if (Imm.value().Fix.Kind == FixupKind::None &&
        !fitsSigned(Imm.value().Value, 16))
      return Error("immediate does not fit in 16 bits");
    AsmInst Inst;
    Inst.Word = encodeIType(It->second, Ra, Rb.value(),
                            static_cast<uint32_t>(Imm.value().Value) & 0xFFFF);
    Inst.Fix = Imm.value().Fix;
    Out.push_back(Inst);
    return true;
  }

  if (auto It = IAluUnsigned.find(Mnemonic); It != IAluUnsigned.end()) {
    Expected<unsigned> Rb = parseReg(C.next());
    if (Rb.hasError())
      return Rb.error();
    unsigned Ra = 0;
    Expected<bool> A = ParseRegAfterComma(Ra);
    if (A.hasError())
      return A.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<ImmOperand> Imm = parseImmOperand(C);
    if (Imm.hasError())
      return Imm.error();
    if (Imm.value().Fix.Kind == FixupKind::None &&
        !fitsUnsigned(static_cast<uint64_t>(Imm.value().Value), 16))
      return Error("immediate does not fit in 16 bits");
    AsmInst Inst;
    Inst.Word = encodeIType(It->second, Ra, Rb.value(),
                            static_cast<uint32_t>(Imm.value().Value) & 0xFFFF);
    Inst.Fix = Imm.value().Fix;
    Out.push_back(Inst);
    return true;
  }

  if (auto It = IShift.find(Mnemonic); It != IShift.end()) {
    Expected<unsigned> Rb = parseReg(C.next());
    if (Rb.hasError())
      return Rb.error();
    unsigned Ra = 0;
    Expected<bool> A = ParseRegAfterComma(Ra);
    if (A.hasError())
      return A.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<int64_t> Shamt = parseNumberToken(C.next());
    if (Shamt.hasError())
      return Shamt.error();
    if (Shamt.value() < 0 || Shamt.value() > 31)
      return Error("shift amount out of range");
    Out.push_back({encodeIType(It->second, Ra, Rb.value(),
                               static_cast<uint32_t>(Shamt.value())),
                   {}});
    return true;
  }

  if (Mnemonic == "ldih") {
    Expected<unsigned> Rb = parseReg(C.next());
    if (Rb.hasError())
      return Rb.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<ImmOperand> Imm = parseImmOperand(C);
    if (Imm.hasError())
      return Imm.error();
    AsmInst Inst;
    Inst.Word = encodeIType(OpLdih, 0, Rb.value(),
                            static_cast<uint32_t>(Imm.value().Value) & 0xFFFF);
    Inst.Fix = Imm.value().Fix;
    Out.push_back(Inst);
    return true;
  }

  if (auto It = Mem.find(Mnemonic); It != Mem.end()) {
    // op $ra, off($rb)  with off = NUM | %lo(sym) | empty.
    Expected<unsigned> Ra = parseReg(C.next());
    if (Ra.hasError())
      return Ra.error();
    if (!C.eat(","))
      return Error("expected ','");
    ImmOperand Off;
    if (C.peek() != "(") {
      Expected<ImmOperand> Parsed = parseImmOperand(C);
      if (Parsed.hasError())
        return Parsed.error();
      Off = Parsed.value();
    }
    if (!C.eat("("))
      return Error("expected '(' in memory operand");
    Expected<unsigned> Rb = parseReg(C.next());
    if (Rb.hasError())
      return Rb.error();
    if (!C.eat(")"))
      return Error("expected ')' in memory operand");
    if (Off.Fix.Kind == FixupKind::None && !fitsSigned(Off.Value, 16))
      return Error("memory offset does not fit in 16 bits");
    AsmInst Inst;
    Inst.Word = encodeIType(It->second, Ra.value(), Rb.value(),
                            static_cast<uint32_t>(Off.Value) & 0xFFFF);
    Inst.Fix = Off.Fix;
    Out.push_back(Inst);
    return true;
  }

  if (auto It = CondBranch.find(Mnemonic); It != CondBranch.end()) {
    // op $ra, $rb, target
    Expected<unsigned> Ra = parseReg(C.next());
    if (Ra.hasError())
      return Ra.error();
    unsigned Rb = 0;
    Expected<bool> B = ParseRegAfterComma(Rb);
    if (B.hasError())
      return B.error();
    if (!C.eat(","))
      return Error("expected ','");
    AsmInst Inst;
    Inst.Word = encodeBranch(It->second, Ra.value(), Rb, 0);
    Expected<bool> T = ParseTarget(Inst);
    if (T.hasError())
      return T.error();
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "br" || Mnemonic == "bsr" || Mnemonic == "b") {
    AsmInst Inst;
    Inst.Word = encodeBrType(Mnemonic == "bsr" ? OpBsr : OpBr, 0);
    Expected<bool> T = ParseTarget(Inst);
    if (T.hasError())
      return T.error();
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "jmp") {
    // jmp ($rb)  or  jmp $ra, ($rb); bare registers also accepted.
    unsigned Link = 0;
    bool Paren = C.eat("(");
    Expected<unsigned> First = parseReg(C.next());
    if (First.hasError())
      return First.error();
    unsigned Base = First.value();
    if (Paren) {
      if (!C.eat(")"))
        return Error("expected ')' in jmp operand");
    } else if (C.eat(",")) {
      Link = First.value();
      Paren = C.eat("(");
      Expected<unsigned> Second = parseReg(C.next());
      if (Second.hasError())
        return Second.error();
      Base = Second.value();
      if (Paren && !C.eat(")"))
        return Error("expected ')' in jmp operand");
    }
    Out.push_back({encodeJmp(Link, Base), {}});
    return true;
  }

  if (Mnemonic == "ret") {
    Out.push_back({encodeJmp(0, RegRA), {}});
    return true;
  }

  if (Mnemonic == "sys") {
    Expected<int64_t> Num = parseNumberToken(C.next());
    if (Num.hasError())
      return Num.error();
    if (Num.value() < 0 || !fitsUnsigned(static_cast<uint64_t>(Num.value()), 16))
      return Error("syscall number out of range");
    Out.push_back({encodeSys(static_cast<unsigned>(Num.value())), {}});
    return true;
  }

  if (Mnemonic == "nop") {
    Out.push_back({nop(), {}});
    return true;
  }

  if (Mnemonic == "move") {
    Expected<unsigned> Rc = parseReg(C.next());
    if (Rc.hasError())
      return Rc.error();
    unsigned Ra = 0;
    Expected<bool> A = ParseRegAfterComma(Ra);
    if (A.hasError())
      return A.error();
    Out.push_back({encodeOperate(Ra, 0, Rc.value(), FnOr), {}});
    return true;
  }

  if (Mnemonic == "li") {
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    if (!C.eat(","))
      return Error("expected ','");
    bool Neg = C.eat("-");
    Expected<int64_t> N = parseNumberToken(C.next());
    if (N.hasError())
      return N.error();
    int64_t Value = Neg ? -N.value() : N.value();
    uint32_t U = static_cast<uint32_t>(Value);
    if (U <= 0xFFFFu) {
      Out.push_back({encodeIType(OpOri, 0, Rd.value(), U), {}});
    } else if (fitsSigned(Value, 16)) {
      Out.push_back({encodeIType(OpAddi, 0, Rd.value(), U & 0xFFFF), {}});
    } else {
      Out.push_back({encodeIType(OpLdih, 0, Rd.value(), U >> 16), {}});
      if (U & 0xFFFF)
        Out.push_back(
            {encodeIType(OpOri, Rd.value(), Rd.value(), U & 0xFFFF), {}});
    }
    return true;
  }

  if (Mnemonic == "la") {
    // la $rd, sym  ->  ldih %hi + ori %lo (always two words).
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    if (!C.eat(","))
      return Error("expected ','");
    std::string Sym = C.next();
    if (Sym.empty())
      return Error("la needs a symbol");
    AsmInst Hi, Lo;
    Hi.Word = encodeIType(OpLdih, 0, Rd.value(), 0);
    Hi.Fix.Kind = FixupKind::ImmHi;
    Hi.Fix.Symbol = Sym;
    Lo.Word = encodeIType(OpOri, Rd.value(), Rd.value(), 0);
    Lo.Fix.Kind = FixupKind::ImmLo;
    Lo.Fix.Symbol = Sym;
    Out.push_back(Hi);
    Out.push_back(Lo);
    return true;
  }

  return Error("unknown mnemonic '" + Mnemonic + "'");
}

const InstParser &eel::asmkit::ariscInstParser() {
  static AriscAsm Parser;
  return Parser;
}
