//===- asmkit/Assembler.h - Two-pass assembler ------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass assembler producing fully linked SXF executables. It stands in
/// for the compiler/assembler/linker toolchain that produced the paper's
/// SPEC92 binaries; the workload generators in src/workload emit assembly
/// that this assembles.
///
/// Directives:
///   .text / .data / .bss        select the current section
///   .global NAME                mark NAME's symbol global
///   .hidden                     suppress the symbol for the next label
///                               (creates the paper's "hidden routines")
///   .entry NAME                 set the program entry point
///   .word E (, E)*              32-bit data; E = NUM | SYM | SYM+NUM
///   .half / .byte               16-/8-bit data
///   .asciz "s" / .ascii "s"     string data
///   .space N                    N zero bytes
///   .align N                    pad to an N-byte boundary
///   .label NAME / .debuglabel NAME / .templabel NAME
///                               emit an extra symbol of that kind at the
///                               current location (symbol-table pathologies
///                               for the §3.1 refinement analysis)
///
/// Labels `NAME:` define symbols: kind Routine in .text, Object elsewhere.
/// Labels beginning with ".L" are assembler-local and never emitted.
/// Comments start with `!` or `#`.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ASMKIT_ASSEMBLER_H
#define EEL_ASMKIT_ASSEMBLER_H

#include "sxf/Sxf.h"
#include "support/Error.h"

#include <string>

namespace eel {

struct AsmOptions {
  Addr TextBase = 0x10000;
  Addr DataBase = 0x400000;
};

/// Assembles \p Source for \p Arch into an executable image.
Expected<SxfFile> assembleProgram(TargetArch Arch, const std::string &Source,
                                  const AsmOptions &Options = AsmOptions());

/// Assembles, aborting with the error message on failure. For tests and
/// generated (known-good) workloads.
SxfFile assembleOrDie(TargetArch Arch, const std::string &Source,
                      const AsmOptions &Options = AsmOptions());

} // namespace eel

#endif // EEL_ASMKIT_ASSEMBLER_H
