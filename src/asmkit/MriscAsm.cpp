//===- asmkit/MriscAsm.cpp - MRISC assembly syntax ------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIPS-flavoured assembly syntax for MRISC:
///
///   add $t0, $t1, $t2 / addi $t0, $t1, -4 / sll $t0, $t1, 3
///   lui $t0, %hi(sym) / ori $t0, $t0, %lo(sym)
///   lw $t0, 8($sp) / sw $t0, %lo(sym)($t1)
///   beq $t0, $t1, L1 / blez $t0, L2 / j done / jal foo / jr $ra
///   jalr $t0 / jalr $t1, $t0 / syscall
///   pseudos: nop, move, li, la, b
///
//===----------------------------------------------------------------------===//

#include "asmkit/TargetAsm.h"
#include "isa/MriscEncoding.h"

#include <cctype>
#include <map>

using namespace eel;
using namespace eel::asmkit;
using namespace eel::mrisc;

namespace {

/// Token cursor over one instruction line (Tokens[0] is the mnemonic).
class Cursor {
public:
  explicit Cursor(const std::vector<std::string> &Tokens) : Tokens(Tokens) {}

  bool atEnd() const { return Index >= Tokens.size(); }
  const std::string &peek() const {
    static const std::string Empty;
    return atEnd() ? Empty : Tokens[Index];
  }
  std::string next() {
    std::string T = peek();
    ++Index;
    return T;
  }
  bool eat(const std::string &T) {
    if (peek() != T)
      return false;
    ++Index;
    return true;
  }

private:
  const std::vector<std::string> &Tokens;
  size_t Index = 1;
};

/// Immediate operand: a constant or a %hi/%lo symbol reference.
struct ImmOperand {
  int64_t Value = 0;
  Fixup Fix;
};

} // namespace

static Expected<unsigned> parseReg(const std::string &T) {
  static const std::map<std::string, unsigned> Named = {
      {"$zero", 0}, {"$at", 1},  {"$v0", 2},  {"$v1", 3},  {"$a0", 4},
      {"$a1", 5},   {"$a2", 6},  {"$a3", 7},  {"$t0", 8},  {"$t1", 9},
      {"$t2", 10},  {"$t3", 11}, {"$t4", 12}, {"$t5", 13}, {"$t6", 14},
      {"$t7", 15},  {"$s0", 16}, {"$s1", 17}, {"$s2", 18}, {"$s3", 19},
      {"$s4", 20},  {"$s5", 21}, {"$s6", 22}, {"$s7", 23}, {"$t8", 24},
      {"$t9", 25},  {"$k0", 26}, {"$k1", 27}, {"$gp", 28}, {"$sp", 29},
      {"$fp", 30},  {"$ra", 31}};
  if (auto It = Named.find(T); It != Named.end())
    return It->second;
  if (T.size() >= 2 && T[0] == '$' &&
      std::isdigit(static_cast<unsigned char>(T[1]))) {
    unsigned N = 0;
    for (size_t I = 1; I < T.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(T[I])))
        return Error("bad register '" + T + "'");
      N = N * 10 + (T[I] - '0');
    }
    if (N >= 32)
      return Error("register number out of range in '" + T + "'");
    return N;
  }
  return Error("expected a register, found '" + T + "'");
}

static Expected<int64_t> parseNumberToken(const std::string &T) {
  if (T.empty() || !std::isdigit(static_cast<unsigned char>(T[0])))
    return Error("expected a number, found '" + T + "'");
  int64_t Value = 0;
  if (T.size() > 2 && (T[1] == 'x' || T[1] == 'X')) {
    for (size_t I = 2; I < T.size(); ++I) {
      char Ch = static_cast<char>(std::tolower(static_cast<unsigned char>(T[I])));
      if (!std::isxdigit(static_cast<unsigned char>(Ch)))
        return Error("bad hex number '" + T + "'");
      Value = Value * 16 + (Ch <= '9' ? Ch - '0' : Ch - 'a' + 10);
    }
  } else {
    for (char Ch : T) {
      if (!std::isdigit(static_cast<unsigned char>(Ch)))
        return Error("bad number '" + T + "'");
      Value = Value * 10 + (Ch - '0');
    }
  }
  return Value;
}

/// Parses an immediate: NUM, -NUM, %hi(sym[+n]), or %lo(sym[+n]).
static Expected<ImmOperand> parseImmOperand(Cursor &C) {
  ImmOperand Op;
  if (C.peek() == "%hi" || C.peek() == "%lo") {
    bool IsHi = C.next() == "%hi";
    Op.Fix.Kind = IsHi ? FixupKind::ImmHi : FixupKind::ImmLo;
    if (!C.eat("("))
      return Error("expected '(' after %hi/%lo");
    std::string Sym = C.next();
    if (Sym.empty())
      return Error("expected a symbol in %hi/%lo");
    Op.Fix.Symbol = Sym;
    if (C.peek() == "+" || C.peek() == "-") {
      bool Neg = C.next() == "-";
      Expected<int64_t> N = parseNumberToken(C.next());
      if (N.hasError())
        return N.error();
      Op.Fix.Addend = Neg ? -N.value() : N.value();
    }
    if (!C.eat(")"))
      return Error("expected ')' after %hi/%lo");
    return Op;
  }
  bool Neg = C.eat("-");
  Expected<int64_t> N = parseNumberToken(C.next());
  if (N.hasError())
    return N.error();
  Op.Value = Neg ? -N.value() : N.value();
  return Op;
}

namespace {

/// MRISC mnemonic table and encoder.
class MriscAsm : public InstParser {
public:
  Expected<bool> parse(const std::vector<std::string> &Tokens,
                       std::vector<AsmInst> &Out) const override;

  MachWord applyImmHi(MachWord Word, uint32_t Value) const override {
    return insertBits(Word, 0, 15, Value >> 16);
  }
  MachWord applyImmLo(MachWord Word, uint32_t Value) const override {
    return insertBits(Word, 0, 15, Value & 0xFFFF);
  }
  const TargetInfo &target() const override { return mriscTarget(); }
};

} // namespace

Expected<bool> MriscAsm::parse(const std::vector<std::string> &Tokens,
                               std::vector<AsmInst> &Out) const {
  const std::string &Mnemonic = Tokens[0];
  Cursor C(Tokens);

  static const std::map<std::string, uint32_t> RThree = {
      {"add", FnAdd}, {"sub", FnSub}, {"and", FnAnd},
      {"or", FnOr},   {"xor", FnXor}, {"slt", FnSlt},
      {"mul", FnMul}, {"div", FnDiv}, {"rem", FnRem}};
  static const std::map<std::string, uint32_t> RShiftVar = {
      {"sllv", FnSllv}, {"srlv", FnSrlv}, {"srav", FnSrav}};
  static const std::map<std::string, uint32_t> RShiftImm = {
      {"sll", FnSll}, {"srl", FnSrl}, {"sra", FnSra}};
  static const std::map<std::string, uint32_t> IAlu = {{"addi", OpAddi},
                                                       {"slti", OpSlti},
                                                       {"andi", OpAndi},
                                                       {"ori", OpOri},
                                                       {"xori", OpXori}};
  static const std::map<std::string, uint32_t> Mem = {
      {"lb", OpLb}, {"lh", OpLh}, {"lw", OpLw}, {"lbu", OpLbu},
      {"lhu", OpLhu}, {"sb", OpSb}, {"sh", OpSh}, {"sw", OpSw}};

  auto ParseRegAfterComma = [&](unsigned &Reg) -> Expected<bool> {
    if (!C.eat(","))
      return Error("expected ','");
    Expected<unsigned> R = parseReg(C.next());
    if (R.hasError())
      return R.error();
    Reg = R.value();
    return true;
  };

  if (auto It = RThree.find(Mnemonic); It != RThree.end()) {
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    unsigned Rs = 0, Rt = 0;
    Expected<bool> A = ParseRegAfterComma(Rs);
    if (A.hasError())
      return A.error();
    Expected<bool> B = ParseRegAfterComma(Rt);
    if (B.hasError())
      return B.error();
    Out.push_back({encodeRType(Rs, Rt, Rd.value(), 0, It->second), {}});
    return true;
  }

  if (auto It = RShiftVar.find(Mnemonic); It != RShiftVar.end()) {
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    unsigned Rt = 0, Rs = 0;
    Expected<bool> A = ParseRegAfterComma(Rt);
    if (A.hasError())
      return A.error();
    Expected<bool> B = ParseRegAfterComma(Rs);
    if (B.hasError())
      return B.error();
    Out.push_back({encodeRType(Rs, Rt, Rd.value(), 0, It->second), {}});
    return true;
  }

  if (auto It = RShiftImm.find(Mnemonic); It != RShiftImm.end()) {
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    unsigned Rt = 0;
    Expected<bool> A = ParseRegAfterComma(Rt);
    if (A.hasError())
      return A.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<int64_t> Shamt = parseNumberToken(C.next());
    if (Shamt.hasError())
      return Shamt.error();
    if (Shamt.value() < 0 || Shamt.value() > 31)
      return Error("shift amount out of range");
    Out.push_back({encodeRType(0, Rt, Rd.value(),
                               static_cast<unsigned>(Shamt.value()),
                               It->second),
                   {}});
    return true;
  }

  if (auto It = IAlu.find(Mnemonic); It != IAlu.end()) {
    Expected<unsigned> Rt = parseReg(C.next());
    if (Rt.hasError())
      return Rt.error();
    unsigned Rs = 0;
    Expected<bool> A = ParseRegAfterComma(Rs);
    if (A.hasError())
      return A.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<ImmOperand> Imm = parseImmOperand(C);
    if (Imm.hasError())
      return Imm.error();
    bool Unsigned = Mnemonic == "andi" || Mnemonic == "ori" ||
                    Mnemonic == "xori";
    if (Imm.value().Fix.Kind == FixupKind::None) {
      if (Unsigned ? !fitsUnsigned(static_cast<uint64_t>(Imm.value().Value), 16)
                   : !fitsSigned(Imm.value().Value, 16))
        return Error("immediate does not fit in 16 bits");
    }
    AsmInst Inst;
    Inst.Word = encodeIType(It->second, Rs, Rt.value(),
                            static_cast<uint32_t>(Imm.value().Value) & 0xFFFF);
    Inst.Fix = Imm.value().Fix;
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "lui") {
    Expected<unsigned> Rt = parseReg(C.next());
    if (Rt.hasError())
      return Rt.error();
    if (!C.eat(","))
      return Error("expected ','");
    Expected<ImmOperand> Imm = parseImmOperand(C);
    if (Imm.hasError())
      return Imm.error();
    AsmInst Inst;
    Inst.Word = encodeIType(OpLui, 0, Rt.value(),
                            static_cast<uint32_t>(Imm.value().Value) & 0xFFFF);
    Inst.Fix = Imm.value().Fix;
    Out.push_back(Inst);
    return true;
  }

  if (auto It = Mem.find(Mnemonic); It != Mem.end()) {
    // op $rt, off($rs)  with off = NUM | %lo(sym) | empty.
    Expected<unsigned> Rt = parseReg(C.next());
    if (Rt.hasError())
      return Rt.error();
    if (!C.eat(","))
      return Error("expected ','");
    ImmOperand Off;
    if (C.peek() != "(") {
      Expected<ImmOperand> Parsed = parseImmOperand(C);
      if (Parsed.hasError())
        return Parsed.error();
      Off = Parsed.value();
    }
    if (!C.eat("("))
      return Error("expected '(' in memory operand");
    Expected<unsigned> Rs = parseReg(C.next());
    if (Rs.hasError())
      return Rs.error();
    if (!C.eat(")"))
      return Error("expected ')' in memory operand");
    if (Off.Fix.Kind == FixupKind::None && !fitsSigned(Off.Value, 16))
      return Error("memory offset does not fit in 16 bits");
    AsmInst Inst;
    Inst.Word = encodeIType(It->second, Rs.value(), Rt.value(),
                            static_cast<uint32_t>(Off.Value) & 0xFFFF);
    Inst.Fix = Off.Fix;
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "beq" || Mnemonic == "bne" || Mnemonic == "b") {
    unsigned Rs = 0, Rt = 0;
    uint32_t Op = OpBeq;
    if (Mnemonic != "b") {
      Op = Mnemonic == "beq" ? OpBeq : OpBne;
      Expected<unsigned> A = parseReg(C.next());
      if (A.hasError())
        return A.error();
      Rs = A.value();
      Expected<bool> B = ParseRegAfterComma(Rt);
      if (B.hasError())
        return B.error();
      if (!C.eat(","))
        return Error("expected ','");
    }
    AsmInst Inst;
    Inst.Word = encodeIType(Op, Rs, Rt, 0);
    std::string TargetTok = C.next();
    if (TargetTok.empty())
      return Error("branch needs a target");
    Inst.Fix.Kind = FixupKind::PcRelative;
    if (std::isdigit(static_cast<unsigned char>(TargetTok[0]))) {
      Expected<int64_t> N = parseNumberToken(TargetTok);
      if (N.hasError())
        return N.error();
      Inst.Fix.Addend = N.value();
    } else {
      Inst.Fix.Symbol = TargetTok;
    }
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "blez" || Mnemonic == "bgtz") {
    Expected<unsigned> Rs = parseReg(C.next());
    if (Rs.hasError())
      return Rs.error();
    if (!C.eat(","))
      return Error("expected ','");
    AsmInst Inst;
    Inst.Word = encodeIType(Mnemonic == "blez" ? OpBlez : OpBgtz, Rs.value(),
                            0, 0);
    std::string TargetTok = C.next();
    Inst.Fix.Kind = FixupKind::PcRelative;
    if (!TargetTok.empty() &&
        std::isdigit(static_cast<unsigned char>(TargetTok[0]))) {
      Expected<int64_t> N = parseNumberToken(TargetTok);
      if (N.hasError())
        return N.error();
      Inst.Fix.Addend = N.value();
    } else {
      Inst.Fix.Symbol = TargetTok;
    }
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "j" || Mnemonic == "jal") {
    AsmInst Inst;
    Inst.Word = encodeJType(Mnemonic == "j" ? OpJ : OpJal, 0);
    std::string TargetTok = C.next();
    if (TargetTok.empty())
      return Error("jump needs a target");
    Inst.Fix.Kind = FixupKind::PcRelative;
    if (std::isdigit(static_cast<unsigned char>(TargetTok[0]))) {
      Expected<int64_t> N = parseNumberToken(TargetTok);
      if (N.hasError())
        return N.error();
      Inst.Fix.Addend = N.value();
    } else {
      Inst.Fix.Symbol = TargetTok;
    }
    Out.push_back(Inst);
    return true;
  }

  if (Mnemonic == "jr") {
    Expected<unsigned> Rs = parseReg(C.next());
    if (Rs.hasError())
      return Rs.error();
    Out.push_back({encodeRType(Rs.value(), 0, 0, 0, FnJr), {}});
    return true;
  }

  if (Mnemonic == "jalr") {
    Expected<unsigned> First = parseReg(C.next());
    if (First.hasError())
      return First.error();
    unsigned Rd = RegRA, Rs = First.value();
    if (C.eat(",")) {
      Expected<unsigned> Second = parseReg(C.next());
      if (Second.hasError())
        return Second.error();
      Rd = First.value();
      Rs = Second.value();
    }
    Out.push_back({encodeRType(Rs, 0, Rd, 0, FnJalr), {}});
    return true;
  }

  if (Mnemonic == "syscall") {
    Out.push_back({encodeRType(0, 0, 0, 0, FnSyscall), {}});
    return true;
  }

  if (Mnemonic == "nop") {
    Out.push_back({nop(), {}});
    return true;
  }

  if (Mnemonic == "move") {
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    unsigned Rs = 0;
    Expected<bool> A = ParseRegAfterComma(Rs);
    if (A.hasError())
      return A.error();
    Out.push_back({encodeRType(Rs, 0, Rd.value(), 0, FnOr), {}});
    return true;
  }

  if (Mnemonic == "li") {
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    if (!C.eat(","))
      return Error("expected ','");
    bool Neg = C.eat("-");
    Expected<int64_t> N = parseNumberToken(C.next());
    if (N.hasError())
      return N.error();
    int64_t Value = Neg ? -N.value() : N.value();
    uint32_t U = static_cast<uint32_t>(Value);
    if (U <= 0xFFFFu) {
      Out.push_back({encodeIType(OpOri, 0, Rd.value(), U), {}});
    } else if (fitsSigned(Value, 16)) {
      Out.push_back({encodeIType(OpAddi, 0, Rd.value(), U & 0xFFFF), {}});
    } else {
      Out.push_back({encodeIType(OpLui, 0, Rd.value(), U >> 16), {}});
      if (U & 0xFFFF)
        Out.push_back(
            {encodeIType(OpOri, Rd.value(), Rd.value(), U & 0xFFFF), {}});
    }
    return true;
  }

  if (Mnemonic == "la") {
    // la $rd, sym  ->  lui %hi + ori %lo (always two words).
    Expected<unsigned> Rd = parseReg(C.next());
    if (Rd.hasError())
      return Rd.error();
    if (!C.eat(","))
      return Error("expected ','");
    std::string Sym = C.next();
    if (Sym.empty())
      return Error("la needs a symbol");
    AsmInst Hi, Lo;
    Hi.Word = encodeIType(OpLui, 0, Rd.value(), 0);
    Hi.Fix.Kind = FixupKind::ImmHi;
    Hi.Fix.Symbol = Sym;
    Lo.Word = encodeIType(OpOri, Rd.value(), Rd.value(), 0);
    Lo.Fix.Kind = FixupKind::ImmLo;
    Lo.Fix.Symbol = Sym;
    Out.push_back(Hi);
    Out.push_back(Lo);
    return true;
  }

  return Error("unknown mnemonic '" + Mnemonic + "'");
}

const InstParser &eel::asmkit::mriscInstParser() {
  static MriscAsm Parser;
  return Parser;
}

const InstParser &eel::asmkit::instParserFor(TargetArch Arch) {
  switch (Arch) {
  case TargetArch::Srisc:
    return sriscInstParser();
  case TargetArch::Mrisc:
    return mriscInstParser();
  }
  unreachable("unknown target architecture");
}
