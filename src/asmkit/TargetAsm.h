//===- asmkit/TargetAsm.h - Per-target assembly syntax ---------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target-specific half of the assembler: mnemonic parsing and fixup
/// application. The section/label/directive machinery is shared and lives in
/// Assembler.cpp; each target contributes an InstParser that turns one
/// tokenized instruction line into machine words plus pending fixups.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ASMKIT_TARGETASM_H
#define EEL_ASMKIT_TARGETASM_H

#include "isa/Target.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eel {
namespace asmkit {

/// How a not-yet-resolved symbol reference patches an emitted word.
enum class FixupKind : uint8_t {
  None,
  PcRelative, ///< Branch/call displacement; applied via retargetDirect.
  ImmHi,      ///< %hi(sym): SRISC sethi imm22, MRISC lui imm16.
  ImmLo,      ///< %lo(sym): SRISC simm13 low 10 bits, MRISC ori imm16.
  DataWord,   ///< Absolute 32-bit word (dispatch tables, pointers).
};

struct Fixup {
  FixupKind Kind = FixupKind::None;
  std::string Symbol;
  int64_t Addend = 0;
};

/// One emitted instruction word plus its pending fixup (if any).
struct AsmInst {
  MachWord Word = 0;
  Fixup Fix;
};

/// An operand immediate that may reference a symbol: value = Sym + Addend,
/// with Sym empty for plain constants. `Part` selects %hi/%lo splitting.
struct SymExpr {
  enum class Part : uint8_t { Full, Hi, Lo };
  std::string Sym;
  int64_t Addend = 0;
  Part Which = Part::Full;
};

/// Target-specific mnemonic table and encoder.
class InstParser {
public:
  virtual ~InstParser();

  /// Parses one instruction from \p Tokens (mnemonic first). On success,
  /// appends one or more words to \p Out (pseudo-instructions may expand).
  /// Returns an error naming the problem for the driver to attribute to a
  /// source line.
  virtual Expected<bool> parse(const std::vector<std::string> &Tokens,
                               std::vector<AsmInst> &Out) const = 0;

  /// Applies a resolved %hi/%lo fixup value to \p Word.
  virtual MachWord applyImmHi(MachWord Word, uint32_t Value) const = 0;
  virtual MachWord applyImmLo(MachWord Word, uint32_t Value) const = 0;

  virtual const TargetInfo &target() const = 0;
};

/// Instruction-syntax parser for each target.
const InstParser &sriscInstParser();
const InstParser &mriscInstParser();
const InstParser &ariscInstParser();
const InstParser &instParserFor(TargetArch Arch);

} // namespace asmkit
} // namespace eel

#endif // EEL_ASMKIT_TARGETASM_H
