//===- serve/Serve.cpp - Long-lived edit service --------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "analysis/Report.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "sxf/Sxf.h"
#include "tools/Qpt.h"
#include "tools/Tracer.h"

#include <chrono>
#include <condition_variable>
#include <thread>

using namespace eel;

// --- AnalysisCache ----------------------------------------------------------

std::unique_ptr<Executable> AnalysisCache::claim(uint64_t Key) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  std::unique_ptr<Executable> Exec = std::move(It->second->second);
  Lru.erase(It->second);
  Index.erase(It);
  return Exec;
}

void AnalysisCache::insert(uint64_t Key, std::unique_ptr<Executable> Exec) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // A concurrent cold run of the same request beat us here; the newer
    // executable replaces it (both are just-analyzed, either is fine).
    Lru.erase(It->second);
    Index.erase(It);
  }
  Lru.emplace_front(Key, std::move(Exec));
  Index[Key] = Lru.begin();
  while (Lru.size() > Capacity) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Evictions;
  }
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> G(M);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Entries = Lru.size();
  return S;
}

// --- Tool specs -------------------------------------------------------------

Expected<ServeTool> eel::parseToolSpec(const std::string &Spec) {
  if (Spec == "null")
    return ServeTool::Null;
  if (Spec == "qpt:blocks")
    return ServeTool::QptBlocks;
  if (Spec == "qpt:edges")
    return ServeTool::QptEdges;
  if (Spec == "qpt:all")
    return ServeTool::QptAll;
  if (Spec == "tracer")
    return ServeTool::Tracer;
  return Error(ErrorCode::BadToolSpec,
               "unknown tool spec '" + Spec +
                   "' (expected null, qpt:blocks, qpt:edges, qpt:all, "
                   "or tracer)")
      .inField("tool_spec");
}

// --- Envelopes --------------------------------------------------------------

namespace {

/// Renders the minimal eel-report/1 envelope for a request that never ran
/// the pipeline: the taxonomy code and message under "summary".
std::string failureEnvelope(const char *Status, const Error &E) {
  RunReport Report("eel-serve");
  JsonWriter S(/*Indent=*/false);
  S.beginObject();
  S.key("status");
  S.value(Status);
  S.key("error_code");
  S.value(errorCodeName(E.code()));
  S.key("error");
  S.value(E.describe());
  S.endObject();
  Report.setSummaryJson(S.take());
  return Report.renderJson();
}

/// Trace capacity for "tracer" requests: fixed so identical requests
/// produce identical images whatever served them.
constexpr uint32_t ServeTracerCapacity = 4096;

} // namespace

// --- EditService ------------------------------------------------------------

EditService::EditService(ServeLimits LimitsIn)
    : Limits(LimitsIn), Cache(LimitsIn.CacheCapacity),
      Pool(LimitsIn.DispatchWorkers
               ? LimitsIn.DispatchWorkers
               : std::max(2u, std::min(4u,
                                       std::thread::hardware_concurrency()))) {
}

EditService::~EditService() = default;

ServeResponse EditService::reject(ErrorCode Code, const std::string &Message) {
  bumpStat("serve.rejected");
  ServeResponse Resp;
  Resp.Status = ServeStatus::Rejected;
  Resp.EnvelopeJson = failureEnvelope("rejected", Error(Code, Message));
  return Resp;
}

ServeResponse EditService::errorResponse(const Error &E) {
  bumpStat("serve.errors");
  ServeResponse Resp;
  Resp.Status = ServeStatus::Error;
  Resp.EnvelopeJson = failureEnvelope("error", E);
  return Resp;
}

ServeResponse EditService::handleEncoded(const std::vector<uint8_t> &Payload) {
  Expected<ServeRequest> Req = decodeRequest(Payload);
  if (Req.hasError()) {
    bumpStat("serve.requests");
    return errorResponse(Req.error());
  }
  return handle(Req.value());
}

ServeResponse EditService::handle(const ServeRequest &Req) {
  bumpStat("serve.requests");

  // Admission: image size first (checked before any decode so a hostile
  // length never sizes an allocation), then the tool spec, then load.
  if (Limits.MaxImageBytes && Req.ImageBytes.size() > Limits.MaxImageBytes)
    return reject(ErrorCode::ImageTooLarge,
                  "request image is " + std::to_string(Req.ImageBytes.size()) +
                      " bytes; the service accepts at most " +
                      std::to_string(Limits.MaxImageBytes));
  Expected<ServeTool> Tool = parseToolSpec(Req.ToolSpec);
  if (Tool.hasError())
    return reject(ErrorCode::BadToolSpec, Tool.error().describe());
  unsigned Prior = InFlight.fetch_add(1, std::memory_order_acq_rel);
  if (Limits.MaxInFlight && Prior >= Limits.MaxInFlight) {
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    return reject(ErrorCode::ServerSaturated,
                  "service already has " + std::to_string(Prior) +
                      " requests in flight (limit " +
                      std::to_string(Limits.MaxInFlight) + "); retry");
  }

  // Dispatch onto the pool. trySubmit never runs the request inline on
  // this (acceptor) thread: a saturated queue is a structured rejection,
  // not a stack-recursive pipeline run.
  struct Waiter {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    ServeResponse Resp;
  };
  auto W = std::make_shared<Waiter>();
  ServeTool ToolV = Tool.value();
  bool Accepted = Pool.trySubmit([this, &Req, ToolV, W] {
    ServeResponse R = process(Req, ToolV);
    std::lock_guard<std::mutex> G(W->M);
    W->Resp = std::move(R);
    W->Done = true;
    W->CV.notify_one();
  });
  if (!Accepted) {
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    return reject(ErrorCode::ServerSaturated,
                  "dispatch queue is saturated; retry");
  }
  std::unique_lock<std::mutex> G(W->M);
  W->CV.wait(G, [&] { return W->Done; });
  InFlight.fetch_sub(1, std::memory_order_acq_rel);
  return std::move(W->Resp);
}

ServeResponse EditService::process(const ServeRequest &Req, ServeTool Tool) {
  if (Req.WantMetrics) {
    // Isolated run: exclusive so the scope's registry reset sees no
    // concurrent recorders, and the envelope's metrics cover exactly
    // this request.
    std::unique_lock<std::shared_mutex> G(MetricsM);
    MetricsScope Scope("serve.", /*EnableTrace=*/true);
    return runPipeline(Req, Tool, /*CaptureMetrics=*/true);
  }
  std::shared_lock<std::shared_mutex> G(MetricsM);
  return runPipeline(Req, Tool, /*CaptureMetrics=*/false);
}

ServeResponse EditService::runPipeline(const ServeRequest &Req, ServeTool Tool,
                                       bool CaptureMetrics) {
  auto Start = std::chrono::steady_clock::now();

  Executable::Options EOpts;
  EOpts.Threads = Req.Threads;
  EOpts.Verify = Req.Verify;
  EOpts.LegacyWriter = Req.LegacyWriter;
  // Never through Options::Trace: the constructor's gate flip is one-way
  // (single-shot semantics); the per-request gate is MetricsScope's.
  EOpts.Trace = false;

  uint64_t ImageHash = fnv1a64(Req.ImageBytes.data(), Req.ImageBytes.size());
  uint64_t ToolDigest = fnv1a64(std::string_view(Req.ToolSpec));
  uint64_t OptsDigest = optionsDigest(EOpts);
  uint64_t Key = provenanceKey(ImageHash, ToolDigest, OptsDigest);

  std::unique_ptr<Executable> Exec = Cache.claim(Key);
  bool CacheHit = Exec != nullptr;
  bumpStat(CacheHit ? "serve.cache_hits" : "serve.cache_misses");
  if (CacheHit) {
    Exec->resetEdits();
  } else {
    Expected<SxfFile> Image = SxfFile::deserialize(Req.ImageBytes);
    if (Image.hasError())
      return errorResponse(Image.error());
    Expected<std::unique_ptr<Executable>> Opened =
        Executable::openImage(std::move(Image.value()), EOpts);
    if (Opened.hasError())
      return errorResponse(Opened.error());
    Exec = std::move(Opened.value());
    Expected<bool> Read = Exec->readContents();
    if (Read.hasError())
      return errorResponse(Read.error());
  }

  // Instrument. Tool objects stay alive through the write below.
  std::unique_ptr<Qpt2Profiler> Qpt;
  std::unique_ptr<MemoryTracer> Tracer;
  switch (Tool) {
  case ServeTool::Null:
    break;
  case ServeTool::QptBlocks:
  case ServeTool::QptEdges:
  case ServeTool::QptAll: {
    Qpt2Profiler::Options QOpts;
    QOpts.CountBlocks = Tool != ServeTool::QptEdges;
    QOpts.CountEdges = Tool != ServeTool::QptBlocks;
    Qpt = std::make_unique<Qpt2Profiler>(*Exec, QOpts);
    Qpt->instrument();
    break;
  }
  case ServeTool::Tracer:
    Tracer = std::make_unique<MemoryTracer>(*Exec, ServeTracerCapacity);
    Tracer->instrument();
    break;
  }

  Expected<SxfFile> Edited = Exec->writeEditedExecutable();
  if (Edited.hasError()) {
    // The executable's edit state is suspect after a failed write; drop
    // it rather than reinsert.
    return errorResponse(Edited.error());
  }

  ServeResponse Resp;
  Resp.Status = ServeStatus::Ok;
  Resp.EditedImage = Edited.value().serialize();
  Executable::EditStats ES = Exec->editStats();
  Cache.insert(Key, std::move(Exec));

  uint64_t LatencyUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  bumpStat("serve.ok");
  bumpHistogram("serve.latency_us", LatencyUs);

  RunReport Report("eel-serve");
  Report.addInput("<request>", ImageHash, Req.ImageBytes.size());
  Report.setProvenance(ImageHash, ToolDigest, OptsDigest);
  Report.addOption("tool", Req.ToolSpec);
  Report.addOption("threads", uint64_t(Req.Threads));
  Report.addOption("verify", Req.Verify);
  Report.addOption("legacy_writer", Req.LegacyWriter);
  Report.addOption("metrics", Req.WantMetrics);
  if (CaptureMetrics) {
    Report.captureMetrics();
    Report.capturePhases(TraceCollector::instance().drain());
  }
  AnalysisCache::Stats CS = Cache.stats();
  JsonWriter S(/*Indent=*/false);
  S.beginObject();
  S.key("status");
  S.value("ok");
  S.key("cache_hit");
  S.value(CacheHit);
  S.key("latency_us");
  S.value(LatencyUs);
  S.key("edited_image_bytes");
  S.value(uint64_t(Resp.EditedImage.size()));
  S.key("routines_edited");
  S.value(uint64_t(ES.RoutinesEdited));
  S.key("routines_verbatim");
  S.value(uint64_t(ES.RoutinesVerbatim));
  S.key("translation_sites");
  S.value(uint64_t(ES.TranslationSites));
  S.key("snippet_instances");
  S.value(uint64_t(ES.SnippetInstances));
  S.key("cache");
  S.beginObject();
  S.key("hits");
  S.value(CS.Hits);
  S.key("misses");
  S.value(CS.Misses);
  S.key("evictions");
  S.value(CS.Evictions);
  S.key("entries");
  S.value(CS.Entries);
  S.endObject();
  S.endObject();
  Report.setSummaryJson(S.take());
  Resp.EnvelopeJson = Report.renderJson();
  return Resp;
}
