//===- serve/Serve.cpp - Long-lived edit service --------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "analysis/Report.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "sxf/Sxf.h"
#include "tools/Qpt.h"
#include "tools/Tracer.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>

using namespace eel;

namespace {

uint64_t elapsedUs(std::chrono::steady_clock::time_point Since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Since)
          .count());
}

uint64_t unixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

} // namespace

// --- AnalysisCache ----------------------------------------------------------

std::unique_ptr<Executable> AnalysisCache::claim(uint64_t Key) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  std::unique_ptr<Executable> Exec = std::move(It->second->Exec);
  CurrentBytes -= It->second->ImageBytes;
  Lru.erase(It->second);
  Index.erase(It);
  return Exec;
}

void AnalysisCache::insert(uint64_t Key, std::unique_ptr<Executable> Exec,
                           uint64_t ImageBytes) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // A concurrent cold run of the same request beat us here; the newer
    // executable replaces it (both are just-analyzed, either is fine).
    CurrentBytes -= It->second->ImageBytes;
    Lru.erase(It->second);
    Index.erase(It);
  }
  Lru.push_front(Entry{Key, std::move(Exec), ImageBytes});
  Index[Key] = Lru.begin();
  CurrentBytes += ImageBytes;
  while (Lru.size() > Capacity) {
    EEL_LOG(LogLevel::Info, "serve.cache_evict",
            logNum("key", Lru.back().Key),
            logNum("image_bytes", Lru.back().ImageBytes));
    // Cumulative by contract: "serve." names are exempt from MetricsScope
    // resets, so evictions during scoped requests still land (the PR 10
    // metrics-scope gap fix — callers hold the service's metrics lock).
    bumpStat("serve.cache_evictions");
    CurrentBytes -= Lru.back().ImageBytes;
    Index.erase(Lru.back().Key);
    Lru.pop_back();
    ++Evictions;
  }
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> G(M);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Entries = Lru.size();
  S.Bytes = CurrentBytes;
  return S;
}

// --- Tool specs -------------------------------------------------------------

Expected<ServeTool> eel::parseToolSpec(const std::string &Spec) {
  if (Spec == "null")
    return ServeTool::Null;
  if (Spec == "qpt:blocks")
    return ServeTool::QptBlocks;
  if (Spec == "qpt:edges")
    return ServeTool::QptEdges;
  if (Spec == "qpt:all")
    return ServeTool::QptAll;
  if (Spec == "tracer")
    return ServeTool::Tracer;
  return Error(ErrorCode::BadToolSpec,
               "unknown tool spec '" + Spec +
                   "' (expected null, qpt:blocks, qpt:edges, qpt:all, "
                   "or tracer)")
      .inField("tool_spec");
}

// --- Envelopes --------------------------------------------------------------

namespace {

/// Renders the minimal eel-report/1 envelope for a request that never ran
/// the pipeline: the taxonomy code and message under "summary".
std::string failureEnvelope(const char *Status, const Error &E, uint64_t Rid,
                            const char *ToolName = "eel-serve") {
  RunReport Report(ToolName);
  JsonWriter S(/*Indent=*/false);
  S.beginObject();
  S.key("status");
  S.value(Status);
  S.key("request_id");
  S.value(Rid);
  S.key("error_code");
  S.value(errorCodeName(E.code()));
  S.key("error");
  S.value(E.describe());
  S.endObject();
  Report.setSummaryJson(S.take());
  return Report.renderJson();
}

/// Trace capacity for "tracer" requests: fixed so identical requests
/// produce identical images whatever served them.
constexpr uint32_t ServeTracerCapacity = 4096;

} // namespace

// --- EditService ------------------------------------------------------------

EditService::EditService(ServeLimits LimitsIn)
    : Limits(LimitsIn), Cache(LimitsIn.CacheCapacity),
      Pool(LimitsIn.DispatchWorkers
               ? LimitsIn.DispatchWorkers
               : std::max(2u, std::min(4u,
                                       std::thread::hardware_concurrency()))),
      StartedAt(std::chrono::steady_clock::now()) {
  // Exemplar capture needs spans: turn the process-wide trace gate on for
  // the service's lifetime. One-way (never off in the destructor) under
  // the same rule as Executable::Options::Trace — another service or test
  // may still be relying on it.
  if (Limits.SlowRequestUs)
    traceSetEnabled(true);
  EEL_LOG(LogLevel::Info, "serve.start",
          logNum("max_inflight", Limits.MaxInFlight),
          logNum("cache_capacity", Limits.CacheCapacity),
          logNum("slow_request_us", Limits.SlowRequestUs));
}

EditService::~EditService() = default;

ServeResponse EditService::reject(ErrorCode Code, const std::string &Message,
                                  uint64_t Rid) {
  {
    // Shared lock: a concurrent MetricsScope reset iterating the registry
    // shards must exclude this insert (the metrics-scope gap fix). The
    // "serve." prefix exemption is what keeps the value cumulative.
    std::shared_lock<std::shared_mutex> G(MetricsM);
    bumpStat("serve.rejected");
  }
  Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
  EEL_LOG(LogLevel::Warn, "serve.rejected",
          logStr("error_code", errorCodeName(Code)),
          logStr("message", Message));
  ServeResponse Resp;
  Resp.Status = ServeStatus::Rejected;
  Resp.RequestId = Rid;
  Resp.EnvelopeJson = failureEnvelope("rejected", Error(Code, Message), Rid);
  return Resp;
}

ServeResponse EditService::errorResponse(const Error &E, uint64_t Rid) {
  // No lock here: pipeline callers already hold MetricsM (shared or
  // exclusive) and the decode path in handleEncoded takes it explicitly.
  bumpStat("serve.errors");
  Counters.Errors.fetch_add(1, std::memory_order_relaxed);
  EEL_LOG(LogLevel::Error, "serve.error",
          logStr("error_code", errorCodeName(E.code())),
          logStr("message", E.describe()));
  ServeResponse Resp;
  Resp.Status = ServeStatus::Error;
  Resp.RequestId = Rid;
  Resp.EnvelopeJson = failureEnvelope("error", E, Rid);
  return Resp;
}

ServeResponse EditService::handleEncoded(const std::vector<uint8_t> &Payload) {
  Expected<ServeRequest> Req = decodeRequest(Payload);
  if (Req.hasError()) {
    Counters.Requests.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> G(MetricsM);
    bumpStat("serve.requests");
    return errorResponse(Req.error(), /*Rid=*/0);
  }
  return handle(Req.value());
}

std::vector<uint8_t>
EditService::handleFrame(const std::vector<uint8_t> &Payload) {
  if (classifyFrame(Payload) == FrameKind::StatusRequest) {
    Expected<StatusRequest> Req = decodeStatusRequest(Payload);
    if (Req.hasError()) {
      Counters.StatusRequests.fetch_add(1, std::memory_order_relaxed);
      EEL_LOG(LogLevel::Warn, "serve.scrape_error",
              logStr("error_code", errorCodeName(Req.error().code())),
              logStr("message", Req.error().describe()));
      StatusResponse Resp;
      Resp.Status = ServeStatus::Error;
      Resp.Format = StatusFormat::Json;
      Resp.Body = failureEnvelope("error", Req.error(), /*Rid=*/0,
                                  "eel-serve-status");
      return encodeStatusResponse(Resp);
    }
    return encodeStatusResponse(handleStatus(Req.value()));
  }
  // Everything else — edit requests and garbage alike — goes through the
  // edit decoder, whose taxonomy covers unknown magics.
  return encodeResponse(handleEncoded(Payload));
}

ServeResponse EditService::handle(const ServeRequest &Req) {
  // Effective correlation id: client-supplied, or minted so every request
  // is traceable even when the client doesn't care.
  uint64_t Rid = Req.RequestId
                     ? Req.RequestId
                     : NextMintedId.fetch_add(1, std::memory_order_relaxed);
  TraceRequestScope RidScope(Rid);
  Counters.Requests.fetch_add(1, std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> G(MetricsM);
    bumpStat("serve.requests");
  }
  EEL_LOG(LogLevel::Debug, "serve.request", logStr("tool", Req.ToolSpec),
          logNum("image_bytes", Req.ImageBytes.size()),
          logNum("threads", Req.Threads));

  // Admission: image size first (checked before any decode so a hostile
  // length never sizes an allocation), then the tool spec, then load.
  if (Limits.MaxImageBytes && Req.ImageBytes.size() > Limits.MaxImageBytes)
    return reject(ErrorCode::ImageTooLarge,
                  "request image is " + std::to_string(Req.ImageBytes.size()) +
                      " bytes; the service accepts at most " +
                      std::to_string(Limits.MaxImageBytes),
                  Rid);
  Expected<ServeTool> Tool = parseToolSpec(Req.ToolSpec);
  if (Tool.hasError())
    return reject(ErrorCode::BadToolSpec, Tool.error().describe(), Rid);
  unsigned Prior = InFlight.fetch_add(1, std::memory_order_acq_rel);
  if (Limits.MaxInFlight && Prior >= Limits.MaxInFlight) {
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    return reject(ErrorCode::ServerSaturated,
                  "service already has " + std::to_string(Prior) +
                      " requests in flight (limit " +
                      std::to_string(Limits.MaxInFlight) + "); retry",
                  Rid);
  }

  // Dispatch onto the pool. trySubmit never runs the request inline on
  // this (acceptor) thread: a saturated queue is a structured rejection,
  // not a stack-recursive pipeline run.
  struct Waiter {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    ServeResponse Resp;
  };
  auto W = std::make_shared<Waiter>();
  ServeTool ToolV = Tool.value();
  bool Accepted = Pool.trySubmit([this, &Req, ToolV, W, Rid] {
    ServeResponse R = process(Req, ToolV, Rid);
    std::lock_guard<std::mutex> G(W->M);
    W->Resp = std::move(R);
    W->Done = true;
    W->CV.notify_one();
  });
  if (!Accepted) {
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    return reject(ErrorCode::ServerSaturated,
                  "dispatch queue is saturated; retry", Rid);
  }
  std::unique_lock<std::mutex> G(W->M);
  W->CV.wait(G, [&] { return W->Done; });
  InFlight.fetch_sub(1, std::memory_order_acq_rel);
  return std::move(W->Resp);
}

ServeResponse EditService::process(const ServeRequest &Req, ServeTool Tool,
                                   uint64_t Rid) {
  // The pool worker executing this request adopts its id; spans and log
  // records from here down (and from parallelForEach helpers, which
  // propagate the submitter's id) all correlate.
  TraceRequestScope RidScope(Rid);
  if (Req.WantMetrics) {
    // Isolated run: exclusive so the scope's registry reset sees no
    // concurrent recorders, and the envelope's metrics cover exactly
    // this request.
    std::unique_lock<std::shared_mutex> G(MetricsM);
    MetricsScope Scope("serve.", /*EnableTrace=*/true);
    return runPipeline(Req, Tool, /*CaptureMetrics=*/true, Rid);
  }
  std::shared_lock<std::shared_mutex> G(MetricsM);
  return runPipeline(Req, Tool, /*CaptureMetrics=*/false, Rid);
}

ServeResponse EditService::runPipeline(const ServeRequest &Req, ServeTool Tool,
                                       bool CaptureMetrics, uint64_t Rid) {
  auto Start = std::chrono::steady_clock::now();

  Executable::Options EOpts;
  EOpts.Threads = Req.Threads;
  EOpts.Verify = Req.Verify;
  EOpts.LegacyWriter = Req.LegacyWriter;
  // Never through Options::Trace: the constructor's gate flip is one-way
  // (single-shot semantics); the per-request gate is MetricsScope's.
  EOpts.Trace = false;

  uint64_t ImageHash = fnv1a64(Req.ImageBytes.data(), Req.ImageBytes.size());
  uint64_t ToolDigest = fnv1a64(std::string_view(Req.ToolSpec));
  uint64_t OptsDigest = optionsDigest(EOpts);
  uint64_t Key = provenanceKey(ImageHash, ToolDigest, OptsDigest);

  auto AnalyzeStart = std::chrono::steady_clock::now();
  std::unique_ptr<Executable> Exec = Cache.claim(Key);
  bool CacheHit = Exec != nullptr;
  bumpStat(CacheHit ? "serve.cache_hits" : "serve.cache_misses");
  (CacheHit ? Counters.CacheHits : Counters.CacheMisses)
      .fetch_add(1, std::memory_order_relaxed);
  EEL_LOG(LogLevel::Debug, "serve.cache",
          logStr("result", CacheHit ? "hit" : "miss"), logNum("key", Key));
  if (CacheHit) {
    Exec->resetEdits();
  } else {
    Expected<SxfFile> Image = SxfFile::deserialize(Req.ImageBytes);
    if (Image.hasError())
      return errorResponse(Image.error(), Rid);
    Expected<std::unique_ptr<Executable>> Opened =
        Executable::openImage(std::move(Image.value()), EOpts);
    if (Opened.hasError())
      return errorResponse(Opened.error(), Rid);
    Exec = std::move(Opened.value());
    Expected<bool> Read = Exec->readContents();
    if (Read.hasError())
      return errorResponse(Read.error(), Rid);
  }
  AnalyzeHist.record(elapsedUs(AnalyzeStart));

  // Instrument. Tool objects stay alive through the write below.
  auto InstrumentStart = std::chrono::steady_clock::now();
  std::unique_ptr<Qpt2Profiler> Qpt;
  std::unique_ptr<MemoryTracer> Tracer;
  switch (Tool) {
  case ServeTool::Null:
    break;
  case ServeTool::QptBlocks:
  case ServeTool::QptEdges:
  case ServeTool::QptAll: {
    Qpt2Profiler::Options QOpts;
    QOpts.CountBlocks = Tool != ServeTool::QptEdges;
    QOpts.CountEdges = Tool != ServeTool::QptBlocks;
    Qpt = std::make_unique<Qpt2Profiler>(*Exec, QOpts);
    Qpt->instrument();
    break;
  }
  case ServeTool::Tracer:
    Tracer = std::make_unique<MemoryTracer>(*Exec, ServeTracerCapacity);
    Tracer->instrument();
    break;
  }
  InstrumentHist.record(elapsedUs(InstrumentStart));

  auto WriteStart = std::chrono::steady_clock::now();
  Expected<SxfFile> Edited = Exec->writeEditedExecutable();
  if (Edited.hasError()) {
    // The executable's edit state is suspect after a failed write; drop
    // it rather than reinsert.
    return errorResponse(Edited.error(), Rid);
  }

  ServeResponse Resp;
  Resp.Status = ServeStatus::Ok;
  Resp.RequestId = Rid;
  Resp.EditedImage = Edited.value().serialize();
  WriteHist.record(elapsedUs(WriteStart));
  Executable::EditStats ES = Exec->editStats();
  Cache.insert(Key, std::move(Exec), Req.ImageBytes.size());

  uint64_t LatencyUs = elapsedUs(Start);
  bumpStat("serve.ok");
  bumpHistogram("serve.latency_us", LatencyUs);
  Counters.Ok.fetch_add(1, std::memory_order_relaxed);
  LatencyHist.record(LatencyUs);
  EEL_LOG(LogLevel::Info, "serve.ok", logStr("tool", Req.ToolSpec),
          logNum("latency_us", LatencyUs),
          logNum("cache_hit", CacheHit ? 1 : 0),
          logNum("edited_image_bytes", Resp.EditedImage.size()));
  maybeCaptureSlow(Rid, LatencyUs, Req.ToolSpec, ImageHash, CacheHit);

  RunReport Report("eel-serve");
  Report.addInput("<request>", ImageHash, Req.ImageBytes.size());
  Report.setProvenance(ImageHash, ToolDigest, OptsDigest);
  Report.addOption("tool", Req.ToolSpec);
  Report.addOption("threads", uint64_t(Req.Threads));
  Report.addOption("verify", Req.Verify);
  Report.addOption("legacy_writer", Req.LegacyWriter);
  Report.addOption("metrics", Req.WantMetrics);
  if (CaptureMetrics) {
    Report.captureMetrics();
    Report.capturePhases(TraceCollector::instance().drain());
  }
  AnalysisCache::Stats CS = Cache.stats();
  JsonWriter S(/*Indent=*/false);
  S.beginObject();
  S.key("status");
  S.value("ok");
  S.key("request_id");
  S.value(Rid);
  S.key("cache_hit");
  S.value(CacheHit);
  S.key("latency_us");
  S.value(LatencyUs);
  S.key("edited_image_bytes");
  S.value(uint64_t(Resp.EditedImage.size()));
  S.key("routines_edited");
  S.value(uint64_t(ES.RoutinesEdited));
  S.key("routines_verbatim");
  S.value(uint64_t(ES.RoutinesVerbatim));
  S.key("translation_sites");
  S.value(uint64_t(ES.TranslationSites));
  S.key("snippet_instances");
  S.value(uint64_t(ES.SnippetInstances));
  S.key("cache");
  S.beginObject();
  S.key("hits");
  S.value(CS.Hits);
  S.key("misses");
  S.value(CS.Misses);
  S.key("evictions");
  S.value(CS.Evictions);
  S.key("entries");
  S.value(CS.Entries);
  S.key("bytes");
  S.value(CS.Bytes);
  S.endObject();
  S.endObject();
  Report.setSummaryJson(S.take());
  Resp.EnvelopeJson = Report.renderJson();
  return Resp;
}

// --- Slow-request exemplars -------------------------------------------------

void EditService::maybeCaptureSlow(uint64_t Rid, uint64_t LatencyUs,
                                   const std::string &ToolSpec,
                                   uint64_t ImageHash, bool CacheHit) {
  if (!Limits.SlowRequestUs || LatencyUs <= Limits.SlowRequestUs ||
      Limits.ExemplarCapacity == 0)
    return;
  // Drain is safe mid-load (per-ring locks); keep only this request's
  // spans. Other requests' spans stay in the rings untouched.
  std::vector<TraceEvent> Mine;
  for (TraceEvent &Ev : TraceCollector::instance().drain())
    if (Ev.RequestId == Rid)
      Mine.push_back(std::move(Ev));

  SlowExemplar Ex;
  Ex.RequestId = Rid;
  Ex.LatencyUs = LatencyUs;
  Ex.ToolSpec = ToolSpec;
  Ex.ImageHash = ImageHash;
  Ex.CacheHit = CacheHit;
  Ex.CapturedUnixMs = unixMillisNow();
  Ex.TraceJson = renderChromeTrace(Mine);

  Counters.SlowCaptured.fetch_add(1, std::memory_order_relaxed);
  EEL_LOG(LogLevel::Warn, "serve.slow", logStr("tool", ToolSpec),
          logNum("latency_us", LatencyUs),
          logNum("threshold_us", Limits.SlowRequestUs),
          logNum("spans", Mine.size()));

  std::lock_guard<std::mutex> G(ExemplarM);
  // Worst-N ring: insert in descending-latency order, drop from the tail.
  auto Pos = std::find_if(Exemplars.begin(), Exemplars.end(),
                          [&](const SlowExemplar &Other) {
                            return Other.LatencyUs < Ex.LatencyUs;
                          });
  Exemplars.insert(Pos, std::move(Ex));
  if (Exemplars.size() > Limits.ExemplarCapacity)
    Exemplars.resize(Limits.ExemplarCapacity);
}

std::vector<SlowExemplar> EditService::slowExemplars(size_t MaxN) const {
  std::lock_guard<std::mutex> G(ExemplarM);
  std::vector<SlowExemplar> Out = Exemplars;
  if (MaxN && Out.size() > MaxN)
    Out.resize(MaxN);
  return Out;
}

// --- Control-plane scrape ---------------------------------------------------

StatusResponse EditService::handleStatus(const StatusRequest &Req) {
  auto Start = std::chrono::steady_clock::now();
  Counters.StatusRequests.fetch_add(1, std::memory_order_relaxed);
  StatusResponse Resp;
  Resp.Status = ServeStatus::Ok;
  Resp.Format = Req.Format;
  Resp.Body = Req.Format == StatusFormat::Prometheus ? statusPrometheus()
                                                     : statusJson(Req);
  ScrapeHist.record(elapsedUs(Start));
  EEL_LOG(LogLevel::Debug, "serve.scrape",
          logStr("format", Req.Format == StatusFormat::Prometheus
                               ? "prometheus"
                               : "json"));
  // Observing the daemon also drains buffered log records: a scrape is
  // exactly when an operator wants the stream current.
  Logger::instance().flushAll();
  return Resp;
}

std::string EditService::statusPrometheus() {
  AnalysisCache::Stats CS = Cache.stats();
  uint64_t UptimeMs = elapsedUs(StartedAt) / 1000;
  std::vector<std::pair<std::string, uint64_t>> Cnts = {
      {"serve.requests", Counters.Requests.load(std::memory_order_relaxed)},
      {"serve.ok", Counters.Ok.load(std::memory_order_relaxed)},
      {"serve.rejected", Counters.Rejected.load(std::memory_order_relaxed)},
      {"serve.errors", Counters.Errors.load(std::memory_order_relaxed)},
      {"serve.cache_hits", CS.Hits},
      {"serve.cache_misses", CS.Misses},
      {"serve.cache_evictions", CS.Evictions},
      {"serve.cache_entries", CS.Entries},
      {"serve.cache_bytes", CS.Bytes},
      {"serve.status_requests",
       Counters.StatusRequests.load(std::memory_order_relaxed)},
      {"serve.slow_captured",
       Counters.SlowCaptured.load(std::memory_order_relaxed)},
      {"serve.in_flight", InFlight.load(std::memory_order_relaxed)},
      {"serve.pool_workers", Pool.workerCount()},
      {"serve.pool_pending", Pool.pendingTasks()},
      {"serve.uptime_ms", UptimeMs},
  };
  std::vector<HistogramSnapshot> Hists = {
      LatencyHist.snapshot("serve.latency_us"),
      AnalyzeHist.snapshot("serve.phase.analyze_us"),
      InstrumentHist.snapshot("serve.phase.instrument_us"),
      WriteHist.snapshot("serve.phase.write_us"),
      ScrapeHist.snapshot("serve.scrape_us"),
  };
  return metricsPrometheus(Cnts, Hists);
}

std::string EditService::statusJson(const StatusRequest &Req) {
  AnalysisCache::Stats CS = Cache.stats();
  std::vector<HistogramSnapshot> Hists = {
      LatencyHist.snapshot("serve.latency_us"),
      AnalyzeHist.snapshot("serve.phase.analyze_us"),
      InstrumentHist.snapshot("serve.phase.instrument_us"),
      WriteHist.snapshot("serve.phase.write_us"),
      ScrapeHist.snapshot("serve.scrape_us"),
  };

  RunReport Report("eel-serve-status");
  JsonWriter S(/*Indent=*/false);
  S.beginObject();
  S.key("status");
  S.value("ok");
  S.key("uptime_ms");
  S.value(elapsedUs(StartedAt) / 1000);
  S.key("in_flight");
  S.value(uint64_t(InFlight.load(std::memory_order_relaxed)));
  S.key("counters");
  S.beginObject();
  S.key("requests");
  S.value(Counters.Requests.load(std::memory_order_relaxed));
  S.key("ok");
  S.value(Counters.Ok.load(std::memory_order_relaxed));
  S.key("rejected");
  S.value(Counters.Rejected.load(std::memory_order_relaxed));
  S.key("errors");
  S.value(Counters.Errors.load(std::memory_order_relaxed));
  S.key("status_requests");
  S.value(Counters.StatusRequests.load(std::memory_order_relaxed));
  S.key("slow_captured");
  S.value(Counters.SlowCaptured.load(std::memory_order_relaxed));
  S.endObject();
  S.key("cache");
  S.beginObject();
  S.key("entries");
  S.value(CS.Entries);
  S.key("bytes");
  S.value(CS.Bytes);
  S.key("hits");
  S.value(CS.Hits);
  S.key("misses");
  S.value(CS.Misses);
  S.key("evictions");
  S.value(CS.Evictions);
  S.key("hit_rate_pct");
  S.value(CS.Hits + CS.Misses
              ? 100.0 * static_cast<double>(CS.Hits) /
                    static_cast<double>(CS.Hits + CS.Misses)
              : 0.0);
  S.endObject();
  S.key("pool");
  S.beginObject();
  S.key("workers");
  S.value(uint64_t(Pool.workerCount()));
  S.key("pending");
  S.value(uint64_t(Pool.pendingTasks()));
  S.key("queue_capacity");
  S.value(uint64_t(Pool.queueCapacity()));
  S.endObject();
  S.key("slow");
  S.beginObject();
  S.key("threshold_us");
  S.value(Limits.SlowRequestUs);
  S.key("capacity");
  S.value(uint64_t(Limits.SlowRequestUs ? Limits.ExemplarCapacity : 0));
  S.key("captured");
  S.value(Counters.SlowCaptured.load(std::memory_order_relaxed));
  if (Req.WantExemplars) {
    S.key("exemplars");
    S.beginArray();
    for (const SlowExemplar &Ex : slowExemplars(Req.MaxExemplars)) {
      S.beginObject();
      S.key("request_id");
      S.value(Ex.RequestId);
      S.key("latency_us");
      S.value(Ex.LatencyUs);
      S.key("tool");
      S.value(Ex.ToolSpec);
      S.key("image_fnv1a64");
      S.valueHex(Ex.ImageHash);
      S.key("cache_hit");
      S.value(Ex.CacheHit);
      S.key("captured_unix_ms");
      S.value(Ex.CapturedUnixMs);
      S.key("trace");
      S.valueRaw(Ex.TraceJson);
      S.endObject();
    }
    S.endArray();
  }
  S.endObject();
  S.key("histograms");
  S.valueRaw(metricsJson(Hists));
  S.endObject();
  Report.setSummaryJson(S.take());
  return Report.renderJson();
}
