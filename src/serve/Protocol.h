//===- serve/Protocol.h - eel-serve wire protocol --------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eel-serve request/response encoding: a minimal length-prefixed
/// binary protocol usable over any byte stream (the daemon's local socket,
/// or files in --once mode). One stream frame is
///
///   u32 payload_length | payload
///
/// and this header defines the payloads. All scalars are little-endian
/// (ByteBuffer.h). A request payload is
///
///   u32 magic "ELRq" | u8 version | u8 flags | u32 threads
///   | string tool_spec | u32 image_length | image bytes (an SXF file)
///
/// and a response payload is
///
///   u32 magic "ELRs" | u8 version | u8 status
///   | string envelope (an eel-report/1 JSON document)
///   | u32 image_length | edited image bytes (empty unless status == Ok)
///
/// Decoding treats input as hostile exactly like the SXF loader: every
/// length is checked in subtraction form before any allocation sized from
/// it, enum bytes are range-checked, and each rejection maps to one
/// ErrorCode from the PR 2 taxonomy (BadMagic, BadHeader, Truncated,
/// ImplausibleCount, TrailingBytes).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SERVE_PROTOCOL_H
#define EEL_SERVE_PROTOCOL_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eel {

constexpr uint32_t ServeRequestMagic = 0x71524c45u;  // "ELRq" little-endian
constexpr uint32_t ServeResponseMagic = 0x73524c45u; // "ELRs"
constexpr uint8_t ServeProtocolVersion = 1;

/// Request flag bits (the `flags` byte).
enum : uint8_t {
  ServeFlagVerify = 1u << 0,       ///< Run the verifier gate on the write.
  ServeFlagLegacyWriter = 1u << 1, ///< Use the byte-push reference writer.
  ServeFlagMetrics = 1u << 2,      ///< Per-request counters/histograms and
                                   ///< a phase tree in the envelope (the
                                   ///< request runs isolated; see Serve.h).
};

/// One edit request: which tool to run, how, and over what image.
struct ServeRequest {
  std::string ToolSpec;            ///< e.g. "qpt:edges", "tracer", "null".
  uint32_t Threads = 1;            ///< Executable::Options::Threads.
  bool Verify = false;
  bool LegacyWriter = false;
  bool WantMetrics = false;
  std::vector<uint8_t> ImageBytes; ///< Serialized SXF input image.
};

/// Response status byte.
enum class ServeStatus : uint8_t {
  Ok = 0,       ///< Edit succeeded; the edited image follows the envelope.
  Rejected = 1, ///< Admission control refused the request (retryable).
  Error = 2,    ///< The request was admitted but the pipeline failed.
};

struct ServeResponse {
  ServeStatus Status = ServeStatus::Ok;
  std::string EnvelopeJson;             ///< eel-report/1 document.
  std::vector<uint8_t> EditedImage;     ///< Empty unless Status == Ok.
};

/// Encodes \p Req as one payload (no outer length prefix; transports add
/// their own frame).
std::vector<uint8_t> encodeRequest(const ServeRequest &Req);

/// Decodes a request payload. Hostile-input strict: structured error on
/// any malformed byte, trailing bytes included.
Expected<ServeRequest> decodeRequest(const std::vector<uint8_t> &Payload);

std::vector<uint8_t> encodeResponse(const ServeResponse &Resp);
Expected<ServeResponse> decodeResponse(const std::vector<uint8_t> &Payload);

} // namespace eel

#endif // EEL_SERVE_PROTOCOL_H
