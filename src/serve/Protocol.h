//===- serve/Protocol.h - eel-serve wire protocol --------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eel-serve request/response encoding: a minimal length-prefixed
/// binary protocol usable over any byte stream (the daemon's local socket,
/// or files in --once mode). One stream frame is
///
///   u32 payload_length | payload
///
/// and this header defines the payloads. All scalars are little-endian
/// (ByteBuffer.h). An edit request payload is (version 2)
///
///   u32 magic "ELRq" | u8 version | u8 flags | u64 request_id
///   | u32 threads | string tool_spec | u32 image_length
///   | image bytes (an SXF file)
///
/// and an edit response payload is
///
///   u32 magic "ELRs" | u8 version | u8 status | u64 request_id
///   | string envelope (an eel-report/1 JSON document)
///   | u32 image_length | edited image bytes (empty unless status == Ok)
///
/// request_id correlates one request across everything the daemon emits:
/// spans, log records, the response envelope, and slow-request exemplars.
/// A client may supply its own id; 0 asks the daemon to mint one, and the
/// response always echoes the effective id.
///
/// Version 2 also adds a control-plane frame pair that observes a live
/// daemon without performing an edit. A status (scrape) request is
///
///   u32 magic "ELSt" | u8 version | u8 format | u8 flags
///   | u32 max_exemplars
///
/// where format selects the snapshot rendering (0 = eel-report/1 JSON,
/// 1 = Prometheus text) and flag bit 0 asks for slow-request exemplars
/// (JSON format only). The status response is
///
///   u32 magic "ELSr" | u8 version | u8 status | u8 format
///   | string body
///
/// Decoding treats input as hostile exactly like the SXF loader: every
/// length is checked in subtraction form before any allocation sized from
/// it, enum bytes are range-checked, and each rejection maps to one
/// ErrorCode from the PR 2 taxonomy (BadMagic, BadHeader, Truncated,
/// ImplausibleCount, TrailingBytes). Status frames get the same treatment
/// as edit frames — the control plane is just as exposed as the data
/// plane.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SERVE_PROTOCOL_H
#define EEL_SERVE_PROTOCOL_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eel {

constexpr uint32_t ServeRequestMagic = 0x71524c45u;  // "ELRq" little-endian
constexpr uint32_t ServeResponseMagic = 0x73524c45u; // "ELRs"
constexpr uint32_t StatusRequestMagic = 0x74534c45u;  // "ELSt"
constexpr uint32_t StatusResponseMagic = 0x72534c45u; // "ELSr"
/// Version 2: request_id on edit frames, plus the ELSt/ELSr status pair.
constexpr uint8_t ServeProtocolVersion = 2;

/// Request flag bits (the `flags` byte).
enum : uint8_t {
  ServeFlagVerify = 1u << 0,       ///< Run the verifier gate on the write.
  ServeFlagLegacyWriter = 1u << 1, ///< Use the byte-push reference writer.
  ServeFlagMetrics = 1u << 2,      ///< Per-request counters/histograms and
                                   ///< a phase tree in the envelope (the
                                   ///< request runs isolated; see Serve.h).
};

/// One edit request: which tool to run, how, and over what image.
struct ServeRequest {
  std::string ToolSpec;            ///< e.g. "qpt:edges", "tracer", "null".
  uint32_t Threads = 1;            ///< Executable::Options::Threads.
  bool Verify = false;
  bool LegacyWriter = false;
  bool WantMetrics = false;
  /// Client-chosen correlation id; 0 asks the daemon to mint one. The
  /// effective id is echoed in the response frame and envelope and stamped
  /// on every span and log record the request produces.
  uint64_t RequestId = 0;
  std::vector<uint8_t> ImageBytes; ///< Serialized SXF input image.
};

/// Response status byte.
enum class ServeStatus : uint8_t {
  Ok = 0,       ///< Edit succeeded; the edited image follows the envelope.
  Rejected = 1, ///< Admission control refused the request (retryable).
  Error = 2,    ///< The request was admitted but the pipeline failed.
};

struct ServeResponse {
  ServeStatus Status = ServeStatus::Ok;
  uint64_t RequestId = 0;               ///< Effective correlation id echo.
  std::string EnvelopeJson;             ///< eel-report/1 document.
  std::vector<uint8_t> EditedImage;     ///< Empty unless Status == Ok.
};

/// Snapshot rendering selected by a status request's `format` byte.
enum class StatusFormat : uint8_t {
  Json = 0,       ///< eel-report/1 envelope (tool "eel-serve-status").
  Prometheus = 1, ///< Text exposition format.
};

/// Status request flag bits.
enum : uint8_t {
  StatusFlagExemplars = 1u << 0, ///< Include slow-request exemplars (JSON).
};

/// One control-plane scrape: observe, never edit. Served outside admission
/// control so saturation stays observable.
struct StatusRequest {
  StatusFormat Format = StatusFormat::Json;
  bool WantExemplars = false;
  uint32_t MaxExemplars = 0; ///< Cap on exemplars returned; 0 = all retained.
};

struct StatusResponse {
  ServeStatus Status = ServeStatus::Ok;
  StatusFormat Format = StatusFormat::Json;
  /// JSON: an eel-report/1 document; Prometheus: text exposition. On
  /// Status != Ok this is an eel-report/1 failure envelope either way.
  std::string Body;
};

/// What kind of payload a frame holds, by magic. Unknown magics go to the
/// edit decoder, whose BadMagic taxonomy error covers them.
enum class FrameKind : uint8_t {
  EditRequest,
  StatusRequest,
  Unknown,
};

/// Peeks the leading magic (never fails; short frames are Unknown).
FrameKind classifyFrame(const std::vector<uint8_t> &Payload);

/// Encodes \p Req as one payload (no outer length prefix; transports add
/// their own frame).
std::vector<uint8_t> encodeRequest(const ServeRequest &Req);

/// Decodes a request payload. Hostile-input strict: structured error on
/// any malformed byte, trailing bytes included.
Expected<ServeRequest> decodeRequest(const std::vector<uint8_t> &Payload);

std::vector<uint8_t> encodeResponse(const ServeResponse &Resp);
Expected<ServeResponse> decodeResponse(const std::vector<uint8_t> &Payload);

std::vector<uint8_t> encodeStatusRequest(const StatusRequest &Req);
Expected<StatusRequest>
decodeStatusRequest(const std::vector<uint8_t> &Payload);

std::vector<uint8_t> encodeStatusResponse(const StatusResponse &Resp);
Expected<StatusResponse>
decodeStatusResponse(const std::vector<uint8_t> &Payload);

} // namespace eel

#endif // EEL_SERVE_PROTOCOL_H
