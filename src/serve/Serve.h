//===- serve/Serve.h - Long-lived edit service ------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-serve: the edit pipeline as a long-lived service instead of a
/// one-shot tool. A daemon (tools/eel_serve_main.cpp) or an in-process
/// client hands EditService a stream of ServeRequests — an SXF image plus
/// a tool spec — and gets back an eel-report/1 JSON envelope and the
/// edited image.
///
/// The service fixes the three single-shot-lifetime assumptions the
/// one-shot tools never exercised:
///
///  * Analysis is cached, content-addressed. The expensive work —
///    routine discovery, CFG construction, liveness, slicing — depends
///    only on (image bytes, options), and edits are a batch the graphs
///    apply at write time, so a re-submitted image can reuse a fully
///    analyzed Executable via Executable::resetEdits() and pay only for
///    instrument + layout + write. The cache key is provenanceKey(image
///    hash, tool digest, options digest) — never the image hash alone
///    (analysis/Report.h explains why).
///
///  * Admission control bounds the damage of a flood: too many in-flight
///    requests, an oversized image, or an unknown tool spec produce a
///    structured rejection (ErrorCode in the envelope), and dispatch uses
///    ThreadPool::trySubmit so a saturated pool rejects instead of
///    running requests inline on the acceptor thread.
///
///  * Metrics are scoped per request. A request with WantMetrics runs
///    isolated (exclusive lock + support/Metrics.h MetricsScope), so its
///    envelope's counters, histograms, and phase tree cover exactly that
///    request; cumulative `serve.*` counters are exempt from the scope
///    reset and keep accumulating for the life of the service.
///
/// PR 10 adds the operational layer. Every request carries a 64-bit
/// RequestId (client-supplied or daemon-minted) stamped on its spans, log
/// records, envelope, and response frame. The service mirrors its
/// cumulative counters into plain atomics and records latency/per-phase
/// durations into AtomicHistograms, so an ELSt status frame
/// (handleFrame/handleStatus) can snapshot a live, saturated daemon
/// without touching the metrics-isolation lock, the sharded registries,
/// or admission control — scrapes never block behind an edit and never
/// consume an in-flight slot. Requests slower than
/// ServeLimits::SlowRequestUs drain their spans into a bounded
/// worst-N exemplar ring (Chrome trace JSON keyed by RequestId),
/// fetchable through the same status frame.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SERVE_SERVE_H
#define EEL_SERVE_SERVE_H

#include "core/Executable.h"
#include "serve/Protocol.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace eel {

/// Service configuration and admission limits.
struct ServeLimits {
  /// Requests admitted but not yet answered; one more is rejected with
  /// ServerSaturated. 0 disables the bound.
  unsigned MaxInFlight = 8;
  /// Largest request image accepted, in bytes (pre-decode, so a hostile
  /// length can't size an allocation). 0 disables the bound.
  uint64_t MaxImageBytes = 64u << 20;
  /// Analyzed-Executable cache capacity, in entries. 0 disables caching
  /// entirely (every request runs cold) — the bench's cold baseline.
  size_t CacheCapacity = 16;
  /// Worker threads of the dispatch pool requests run on. 0 picks a small
  /// default from hardware concurrency.
  unsigned DispatchWorkers = 0;
  /// Latency threshold for slow-request exemplar capture, in microseconds.
  /// A request slower than this drains its trace spans into the exemplar
  /// ring. 0 disables capture (and leaves the trace gate alone); nonzero
  /// turns the process-wide trace gate on for the service's lifetime.
  uint64_t SlowRequestUs = 0;
  /// Worst-N exemplars retained (by latency). Ignored when SlowRequestUs
  /// is 0.
  size_t ExemplarCapacity = 4;
};

/// Content-addressed LRU cache of analyzed Executables.
///
/// Entries are claimed, not borrowed: a hit removes the entry and hands
/// the caller exclusive ownership, because an Executable is single-writer
/// state (edits, the address map). After the edit+write finishes the
/// caller reinserts it as most-recently-used. A second identical request
/// arriving while the first holds the entry simply misses and runs cold —
/// no blocking, and both insert (the duplicate replaces, it never forks
/// the entry).
class AnalysisCache {
public:
  explicit AnalysisCache(size_t Capacity) : Capacity(Capacity) {}

  /// Removes and returns the entry for \p Key, or null on miss.
  std::unique_ptr<Executable> claim(uint64_t Key);

  /// Inserts \p Exec as most-recently-used under \p Key, replacing any
  /// existing entry and evicting from the LRU end beyond capacity. With
  /// capacity 0 the executable is simply dropped. \p ImageBytes is the
  /// source image size the entry stands for, feeding the bytes gauge.
  void insert(uint64_t Key, std::unique_ptr<Executable> Exec,
              uint64_t ImageBytes);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0;
    /// Sum of the source-image sizes of resident entries: an operational
    /// gauge of cache footprint (the analyzed form is larger, but scales
    /// with the image).
    uint64_t Bytes = 0;
  };
  Stats stats() const;

private:
  struct Entry {
    uint64_t Key;
    std::unique_ptr<Executable> Exec;
    uint64_t ImageBytes;
  };
  using LruList = std::list<Entry>;

  mutable std::mutex M;
  size_t Capacity;
  LruList Lru; ///< Front = most recently used.
  std::unordered_map<uint64_t, LruList::iterator> Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t CurrentBytes = 0;
};

/// Tool specs a request may name.
enum class ServeTool : uint8_t {
  Null,      ///< "null": analyze + re-lay-out + write, no instrumentation.
  QptBlocks, ///< "qpt:blocks": block-count profiling only.
  QptEdges,  ///< "qpt:edges": edge-count profiling only.
  QptAll,    ///< "qpt:all": blocks + edges.
  Tracer,    ///< "tracer": memory-reference tracing.
};

/// Parses a request's tool spec; BadToolSpec on anything unknown.
Expected<ServeTool> parseToolSpec(const std::string &Spec);

/// One retained slow-request exemplar: everything needed to answer "why
/// was that request slow" after the fact.
struct SlowExemplar {
  uint64_t RequestId = 0;
  uint64_t LatencyUs = 0;
  std::string ToolSpec;
  uint64_t ImageHash = 0;
  bool CacheHit = false;
  uint64_t CapturedUnixMs = 0; ///< Wall clock, for operator correlation.
  /// Chrome trace-event JSON of the request's spans (renderChromeTrace
  /// over the drained collector filtered by RequestId).
  std::string TraceJson;
};

/// The edit service: admission control, dispatch onto a bounded
/// ThreadPool, content-addressed analysis reuse, per-request envelopes.
/// handle() is safe to call from many threads concurrently (the daemon
/// calls it from per-connection acceptor threads).
class EditService {
public:
  explicit EditService(ServeLimits Limits);
  ~EditService();

  EditService(const EditService &) = delete;
  EditService &operator=(const EditService &) = delete;

  /// Admits, runs, and answers one request. Never blocks indefinitely on
  /// saturation: over-limit requests come back ServeStatus::Rejected with
  /// the ErrorCode in the envelope's summary.
  ServeResponse handle(const ServeRequest &Req);

  /// decodeRequest + handle; malformed payloads come back
  /// ServeStatus::Error with the decode taxonomy code in the envelope.
  ServeResponse handleEncoded(const std::vector<uint8_t> &Payload);

  /// Transport entry point: classifies \p Payload by magic and routes it
  /// to the edit path (handleEncoded) or the status path (handleStatus),
  /// returning the matching encoded response frame. Every input, however
  /// hostile, gets a decodable answer.
  std::vector<uint8_t> handleFrame(const std::vector<uint8_t> &Payload);

  /// Answers one control-plane scrape. Lock-light by construction: reads
  /// the atomic counter mirror, AtomicHistograms, cache stats, and pool
  /// gauges — never MetricsM, never admission control — so a scrape
  /// returns promptly even while a WantMetrics edit holds the registries
  /// exclusively or the daemon is saturated.
  StatusResponse handleStatus(const StatusRequest &Req);

  /// Snapshot of the retained slow-request exemplars, worst first.
  /// \p MaxN caps the result; 0 means all.
  std::vector<SlowExemplar> slowExemplars(size_t MaxN) const;

  const ServeLimits &limits() const { return Limits; }
  AnalysisCache::Stats cacheStats() const { return Cache.stats(); }

private:
  /// Cumulative counters mirrored into plain atomics so the scrape path
  /// reads them without the sharded StatRegistry's quiescence contract.
  /// The registry keeps its serve.* names too (envelope counters and
  /// MetricsScope exemption are registry features); these are the
  /// always-consistent operational view.
  struct ServiceCounters {
    std::atomic<uint64_t> Requests{0};
    std::atomic<uint64_t> Ok{0};
    std::atomic<uint64_t> Rejected{0};
    std::atomic<uint64_t> Errors{0};
    std::atomic<uint64_t> CacheHits{0};
    std::atomic<uint64_t> CacheMisses{0};
    std::atomic<uint64_t> StatusRequests{0};
    std::atomic<uint64_t> SlowCaptured{0};
  };

  ServeResponse process(const ServeRequest &Req, ServeTool Tool,
                        uint64_t Rid);
  ServeResponse runPipeline(const ServeRequest &Req, ServeTool Tool,
                            bool CaptureMetrics, uint64_t Rid);
  ServeResponse reject(ErrorCode Code, const std::string &Message,
                       uint64_t Rid);
  ServeResponse errorResponse(const Error &E, uint64_t Rid);
  /// Captures a slow request's spans into the exemplar ring (worst-N by
  /// latency, guarded by ExemplarM).
  void maybeCaptureSlow(uint64_t Rid, uint64_t LatencyUs,
                        const std::string &ToolSpec, uint64_t ImageHash,
                        bool CacheHit);
  /// Renders the JSON status snapshot (an eel-report/1 envelope).
  std::string statusJson(const StatusRequest &Req);
  /// Renders the Prometheus text snapshot.
  std::string statusPrometheus();

  ServeLimits Limits;
  AnalysisCache Cache;
  ThreadPool Pool;
  std::atomic<unsigned> InFlight{0};
  /// Metrics-isolation lock: WantMetrics requests hold it exclusively
  /// (their MetricsScope resets the registries, which tolerates no
  /// concurrent recorders), all other requests hold it shared — including
  /// the admission-path serve.* counter bumps, which would otherwise race
  /// the scope's registry reset (the PR 10 metrics-scope gap fix).
  std::shared_mutex MetricsM;

  ServiceCounters Counters;
  AtomicHistogram LatencyHist;    ///< serve.latency_us (Ok requests).
  AtomicHistogram AnalyzeHist;    ///< serve.phase.analyze_us.
  AtomicHistogram InstrumentHist; ///< serve.phase.instrument_us.
  AtomicHistogram WriteHist;      ///< serve.phase.write_us.
  AtomicHistogram ScrapeHist;     ///< serve.scrape_us (status requests).
  std::chrono::steady_clock::time_point StartedAt;
  std::atomic<uint64_t> NextMintedId{1};

  mutable std::mutex ExemplarM;
  std::vector<SlowExemplar> Exemplars; ///< Sorted worst (slowest) first.
};

} // namespace eel

#endif // EEL_SERVE_SERVE_H
