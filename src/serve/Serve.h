//===- serve/Serve.h - Long-lived edit service ------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-serve: the edit pipeline as a long-lived service instead of a
/// one-shot tool. A daemon (tools/eel_serve_main.cpp) or an in-process
/// client hands EditService a stream of ServeRequests — an SXF image plus
/// a tool spec — and gets back an eel-report/1 JSON envelope and the
/// edited image.
///
/// The service fixes the three single-shot-lifetime assumptions the
/// one-shot tools never exercised:
///
///  * Analysis is cached, content-addressed. The expensive work —
///    routine discovery, CFG construction, liveness, slicing — depends
///    only on (image bytes, options), and edits are a batch the graphs
///    apply at write time, so a re-submitted image can reuse a fully
///    analyzed Executable via Executable::resetEdits() and pay only for
///    instrument + layout + write. The cache key is provenanceKey(image
///    hash, tool digest, options digest) — never the image hash alone
///    (analysis/Report.h explains why).
///
///  * Admission control bounds the damage of a flood: too many in-flight
///    requests, an oversized image, or an unknown tool spec produce a
///    structured rejection (ErrorCode in the envelope), and dispatch uses
///    ThreadPool::trySubmit so a saturated pool rejects instead of
///    running requests inline on the acceptor thread.
///
///  * Metrics are scoped per request. A request with WantMetrics runs
///    isolated (exclusive lock + support/Metrics.h MetricsScope), so its
///    envelope's counters, histograms, and phase tree cover exactly that
///    request; cumulative `serve.*` counters are exempt from the scope
///    reset and keep accumulating for the life of the service.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SERVE_SERVE_H
#define EEL_SERVE_SERVE_H

#include "core/Executable.h"
#include "serve/Protocol.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace eel {

/// Service configuration and admission limits.
struct ServeLimits {
  /// Requests admitted but not yet answered; one more is rejected with
  /// ServerSaturated. 0 disables the bound.
  unsigned MaxInFlight = 8;
  /// Largest request image accepted, in bytes (pre-decode, so a hostile
  /// length can't size an allocation). 0 disables the bound.
  uint64_t MaxImageBytes = 64u << 20;
  /// Analyzed-Executable cache capacity, in entries. 0 disables caching
  /// entirely (every request runs cold) — the bench's cold baseline.
  size_t CacheCapacity = 16;
  /// Worker threads of the dispatch pool requests run on. 0 picks a small
  /// default from hardware concurrency.
  unsigned DispatchWorkers = 0;
};

/// Content-addressed LRU cache of analyzed Executables.
///
/// Entries are claimed, not borrowed: a hit removes the entry and hands
/// the caller exclusive ownership, because an Executable is single-writer
/// state (edits, the address map). After the edit+write finishes the
/// caller reinserts it as most-recently-used. A second identical request
/// arriving while the first holds the entry simply misses and runs cold —
/// no blocking, and both insert (the duplicate replaces, it never forks
/// the entry).
class AnalysisCache {
public:
  explicit AnalysisCache(size_t Capacity) : Capacity(Capacity) {}

  /// Removes and returns the entry for \p Key, or null on miss.
  std::unique_ptr<Executable> claim(uint64_t Key);

  /// Inserts \p Exec as most-recently-used under \p Key, replacing any
  /// existing entry and evicting from the LRU end beyond capacity. With
  /// capacity 0 the executable is simply dropped.
  void insert(uint64_t Key, std::unique_ptr<Executable> Exec);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0;
  };
  Stats stats() const;

private:
  using LruList = std::list<std::pair<uint64_t, std::unique_ptr<Executable>>>;

  mutable std::mutex M;
  size_t Capacity;
  LruList Lru; ///< Front = most recently used.
  std::unordered_map<uint64_t, LruList::iterator> Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

/// Tool specs a request may name.
enum class ServeTool : uint8_t {
  Null,      ///< "null": analyze + re-lay-out + write, no instrumentation.
  QptBlocks, ///< "qpt:blocks": block-count profiling only.
  QptEdges,  ///< "qpt:edges": edge-count profiling only.
  QptAll,    ///< "qpt:all": blocks + edges.
  Tracer,    ///< "tracer": memory-reference tracing.
};

/// Parses a request's tool spec; BadToolSpec on anything unknown.
Expected<ServeTool> parseToolSpec(const std::string &Spec);

/// The edit service: admission control, dispatch onto a bounded
/// ThreadPool, content-addressed analysis reuse, per-request envelopes.
/// handle() is safe to call from many threads concurrently (the daemon
/// calls it from per-connection acceptor threads).
class EditService {
public:
  explicit EditService(ServeLimits Limits);
  ~EditService();

  EditService(const EditService &) = delete;
  EditService &operator=(const EditService &) = delete;

  /// Admits, runs, and answers one request. Never blocks indefinitely on
  /// saturation: over-limit requests come back ServeStatus::Rejected with
  /// the ErrorCode in the envelope's summary.
  ServeResponse handle(const ServeRequest &Req);

  /// decodeRequest + handle; malformed payloads come back
  /// ServeStatus::Error with the decode taxonomy code in the envelope.
  ServeResponse handleEncoded(const std::vector<uint8_t> &Payload);

  const ServeLimits &limits() const { return Limits; }
  AnalysisCache::Stats cacheStats() const { return Cache.stats(); }

private:
  ServeResponse process(const ServeRequest &Req, ServeTool Tool);
  ServeResponse runPipeline(const ServeRequest &Req, ServeTool Tool,
                            bool CaptureMetrics);
  ServeResponse reject(ErrorCode Code, const std::string &Message);
  ServeResponse errorResponse(const Error &E);

  ServeLimits Limits;
  AnalysisCache Cache;
  ThreadPool Pool;
  std::atomic<unsigned> InFlight{0};
  /// Metrics-isolation lock: WantMetrics requests hold it exclusively
  /// (their MetricsScope resets the registries, which tolerates no
  /// concurrent recorders), all other requests hold it shared.
  std::shared_mutex MetricsM;
};

} // namespace eel

#endif // EEL_SERVE_SERVE_H
