//===- serve/Protocol.cpp - eel-serve wire protocol ----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "support/ByteBuffer.h"

using namespace eel;

std::vector<uint8_t> eel::encodeRequest(const ServeRequest &Req) {
  ByteWriter W;
  W.writeU32(ServeRequestMagic);
  W.writeU8(ServeProtocolVersion);
  uint8_t Flags = 0;
  if (Req.Verify)
    Flags |= ServeFlagVerify;
  if (Req.LegacyWriter)
    Flags |= ServeFlagLegacyWriter;
  if (Req.WantMetrics)
    Flags |= ServeFlagMetrics;
  W.writeU8(Flags);
  W.writeU64(Req.RequestId);
  W.writeU32(Req.Threads);
  W.writeString(Req.ToolSpec);
  W.writeU32(static_cast<uint32_t>(Req.ImageBytes.size()));
  if (!Req.ImageBytes.empty())
    W.writeBytes(Req.ImageBytes.data(), Req.ImageBytes.size());
  return W.take();
}

Expected<ServeRequest> eel::decodeRequest(const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload);
  ServeRequest Req;
  uint32_t Magic = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "request ends inside the header")
        .atOffset(R.pos());
  if (Magic != ServeRequestMagic)
    return Error(ErrorCode::BadMagic, "not an eel-serve request frame")
        .atOffset(0)
        .inField("magic");
  uint8_t Version = R.readU8();
  if (!R.failed() && Version != ServeProtocolVersion)
    return Error(ErrorCode::BadHeader, "unsupported protocol version " +
                                           std::to_string(Version))
        .atOffset(4)
        .inField("version");
  uint8_t Flags = R.readU8();
  if (!R.failed() &&
      (Flags & ~(ServeFlagVerify | ServeFlagLegacyWriter | ServeFlagMetrics)))
    return Error(ErrorCode::BadHeader, "reserved flag bits set")
        .atOffset(5)
        .inField("flags");
  Req.Verify = (Flags & ServeFlagVerify) != 0;
  Req.LegacyWriter = (Flags & ServeFlagLegacyWriter) != 0;
  Req.WantMetrics = (Flags & ServeFlagMetrics) != 0;
  Req.RequestId = R.readU64();
  Req.Threads = R.readU32();
  Req.ToolSpec = R.readString();
  uint32_t ImageLen = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "request ends inside a field")
        .atOffset(R.pos());
  // Subtraction form: a hostile length must fail the check, not wrap the
  // sum (ByteBuffer.h rule).
  if (ImageLen > R.remaining())
    return Error(ErrorCode::ImplausibleCount,
                 "image length exceeds remaining payload bytes")
        .atOffset(R.pos())
        .inField("image_length");
  Req.ImageBytes.resize(ImageLen);
  R.readBytes(Req.ImageBytes.data(), ImageLen);
  if (R.failed())
    return Error(ErrorCode::Truncated, "request ends inside the image")
        .atOffset(R.pos());
  if (R.remaining() != 0)
    return Error(ErrorCode::TrailingBytes,
                 "well-formed request followed by unconsumed bytes")
        .atOffset(R.pos());
  return Req;
}

std::vector<uint8_t> eel::encodeResponse(const ServeResponse &Resp) {
  ByteWriter W;
  W.writeU32(ServeResponseMagic);
  W.writeU8(ServeProtocolVersion);
  W.writeU8(static_cast<uint8_t>(Resp.Status));
  W.writeU64(Resp.RequestId);
  W.writeString(Resp.EnvelopeJson);
  W.writeU32(static_cast<uint32_t>(Resp.EditedImage.size()));
  if (!Resp.EditedImage.empty())
    W.writeBytes(Resp.EditedImage.data(), Resp.EditedImage.size());
  return W.take();
}

Expected<ServeResponse>
eel::decodeResponse(const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload);
  ServeResponse Resp;
  uint32_t Magic = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "response ends inside the header")
        .atOffset(R.pos());
  if (Magic != ServeResponseMagic)
    return Error(ErrorCode::BadMagic, "not an eel-serve response frame")
        .atOffset(0)
        .inField("magic");
  uint8_t Version = R.readU8();
  if (!R.failed() && Version != ServeProtocolVersion)
    return Error(ErrorCode::BadHeader, "unsupported protocol version " +
                                           std::to_string(Version))
        .atOffset(4)
        .inField("version");
  uint8_t Status = R.readU8();
  if (!R.failed() && Status > static_cast<uint8_t>(ServeStatus::Error))
    return Error(ErrorCode::BadHeader, "status byte outside the enum")
        .atOffset(5)
        .inField("status");
  Resp.Status = static_cast<ServeStatus>(Status);
  Resp.RequestId = R.readU64();
  Resp.EnvelopeJson = R.readString();
  uint32_t ImageLen = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "response ends inside a field")
        .atOffset(R.pos());
  if (ImageLen > R.remaining())
    return Error(ErrorCode::ImplausibleCount,
                 "image length exceeds remaining payload bytes")
        .atOffset(R.pos())
        .inField("image_length");
  Resp.EditedImage.resize(ImageLen);
  R.readBytes(Resp.EditedImage.data(), ImageLen);
  if (R.failed())
    return Error(ErrorCode::Truncated, "response ends inside the image")
        .atOffset(R.pos());
  if (R.remaining() != 0)
    return Error(ErrorCode::TrailingBytes,
                 "well-formed response followed by unconsumed bytes")
        .atOffset(R.pos());
  return Resp;
}

FrameKind eel::classifyFrame(const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload);
  uint32_t Magic = R.readU32();
  if (R.failed())
    return FrameKind::Unknown;
  if (Magic == ServeRequestMagic)
    return FrameKind::EditRequest;
  if (Magic == StatusRequestMagic)
    return FrameKind::StatusRequest;
  return FrameKind::Unknown;
}

std::vector<uint8_t> eel::encodeStatusRequest(const StatusRequest &Req) {
  ByteWriter W;
  W.writeU32(StatusRequestMagic);
  W.writeU8(ServeProtocolVersion);
  W.writeU8(static_cast<uint8_t>(Req.Format));
  W.writeU8(Req.WantExemplars ? StatusFlagExemplars : 0);
  W.writeU32(Req.MaxExemplars);
  return W.take();
}

Expected<StatusRequest>
eel::decodeStatusRequest(const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload);
  StatusRequest Req;
  uint32_t Magic = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "status request ends inside the header")
        .atOffset(R.pos());
  if (Magic != StatusRequestMagic)
    return Error(ErrorCode::BadMagic, "not an eel-serve status frame")
        .atOffset(0)
        .inField("magic");
  uint8_t Version = R.readU8();
  if (!R.failed() && Version != ServeProtocolVersion)
    return Error(ErrorCode::BadHeader, "unsupported protocol version " +
                                           std::to_string(Version))
        .atOffset(4)
        .inField("version");
  uint8_t Format = R.readU8();
  if (!R.failed() && Format > static_cast<uint8_t>(StatusFormat::Prometheus))
    return Error(ErrorCode::BadHeader, "format byte outside the enum")
        .atOffset(5)
        .inField("format");
  Req.Format = static_cast<StatusFormat>(Format);
  uint8_t Flags = R.readU8();
  if (!R.failed() && (Flags & ~StatusFlagExemplars))
    return Error(ErrorCode::BadHeader, "reserved flag bits set")
        .atOffset(6)
        .inField("flags");
  Req.WantExemplars = (Flags & StatusFlagExemplars) != 0;
  Req.MaxExemplars = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "status request ends inside a field")
        .atOffset(R.pos());
  if (R.remaining() != 0)
    return Error(ErrorCode::TrailingBytes,
                 "well-formed status request followed by unconsumed bytes")
        .atOffset(R.pos());
  return Req;
}

std::vector<uint8_t> eel::encodeStatusResponse(const StatusResponse &Resp) {
  ByteWriter W;
  W.writeU32(StatusResponseMagic);
  W.writeU8(ServeProtocolVersion);
  W.writeU8(static_cast<uint8_t>(Resp.Status));
  W.writeU8(static_cast<uint8_t>(Resp.Format));
  W.writeString(Resp.Body);
  return W.take();
}

Expected<StatusResponse>
eel::decodeStatusResponse(const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload);
  StatusResponse Resp;
  uint32_t Magic = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "status response ends inside the header")
        .atOffset(R.pos());
  if (Magic != StatusResponseMagic)
    return Error(ErrorCode::BadMagic, "not an eel-serve status response frame")
        .atOffset(0)
        .inField("magic");
  uint8_t Version = R.readU8();
  if (!R.failed() && Version != ServeProtocolVersion)
    return Error(ErrorCode::BadHeader, "unsupported protocol version " +
                                           std::to_string(Version))
        .atOffset(4)
        .inField("version");
  uint8_t Status = R.readU8();
  if (!R.failed() && Status > static_cast<uint8_t>(ServeStatus::Error))
    return Error(ErrorCode::BadHeader, "status byte outside the enum")
        .atOffset(5)
        .inField("status");
  Resp.Status = static_cast<ServeStatus>(Status);
  uint8_t Format = R.readU8();
  if (!R.failed() && Format > static_cast<uint8_t>(StatusFormat::Prometheus))
    return Error(ErrorCode::BadHeader, "format byte outside the enum")
        .atOffset(6)
        .inField("format");
  Resp.Format = static_cast<StatusFormat>(Format);
  Resp.Body = R.readString();
  if (R.failed())
    return Error(ErrorCode::Truncated, "status response ends inside a field")
        .atOffset(R.pos());
  if (R.remaining() != 0)
    return Error(ErrorCode::TrailingBytes,
                 "well-formed status response followed by unconsumed bytes")
        .atOffset(R.pos());
  return Resp;
}
