//===- sxf/Sxf.h - Simple eXecutable Format ---------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SXF is this project's executable file format, standing in for the
/// SunOS/Solaris formats (and the GNU bfd library) the paper's EEL reads.
/// An SXF file holds segments (text, data, bss), an entry point, and a
/// symbol table that can exhibit every pathology §3.1 of the paper
/// enumerates: routines hidden by omitted symbols, data tables in the text
/// segment with routine-like symbols, duplicate/temporary/debugging labels,
/// multiple entry points that are not labeled, and full stripping.
/// There is intentionally no relocation information: EEL's defining property
/// is editing fully linked executables by program analysis alone.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SXF_SXF_H
#define EEL_SXF_SXF_H

#include "isa/Target.h"
#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace eel {

enum class SegKind : uint8_t { Text = 0, Data = 1, Bss = 2 };

/// Symbol classification, deliberately as weak as real 1990s symbol tables:
/// `Routine` marks something the compiler *claims* is code — the paper's
/// point is that such claims are unreliable and must be refined by analysis.
enum class SymKind : uint8_t {
  Routine = 0, ///< Claimed routine start (may really be a data table!).
  Object = 1,  ///< Data object.
  Label = 2,   ///< Internal code label (e.g. a loop head).
  Debug = 3,   ///< Debugger bookkeeping label.
  Temp = 4,    ///< Compiler temporary label.
};

enum class SymBinding : uint8_t { Local = 0, Global = 1 };

/// Relocation kinds. The paper's EEL worked without relocations (its
/// defining property); the authors planned to "supplement and verify its
/// analysis with relocation information, when available". SXF can carry
/// them, the assembler emits them, and the editor uses Word32 records for
/// precise code-pointer rewriting — stripRelocations() recovers the
/// paper's fully-linked-no-relocs setting.
enum class RelocKind : uint8_t {
  Word32 = 0, ///< 32-bit absolute address in data or text.
  Hi = 1,     ///< High part of a split immediate (sethi/lui).
  Lo = 2,     ///< Low part of a split immediate (or/ori/offset).
  PcRel = 3,  ///< Branch/call displacement.
};

struct SxfReloc {
  Addr Site = 0;   ///< Address of the patched word.
  Addr Target = 0; ///< The symbol value the site refers to.
  RelocKind Kind = RelocKind::Word32;
};

struct SxfSegment {
  SegKind Kind = SegKind::Text;
  Addr VAddr = 0;
  uint32_t MemSize = 0;            ///< Size in memory (>= Bytes.size()).
  std::vector<uint8_t> Bytes;      ///< File contents (empty for bss).
};

struct SxfSymbol {
  std::string Name;
  Addr Value = 0;
  uint32_t Size = 0; ///< 0 when unknown, as is common in real tables.
  SymKind Kind = SymKind::Routine;
  SymBinding Binding = SymBinding::Local;
};

/// An executable image: segments + symbols + entry point.
class SxfFile {
public:
  TargetArch Arch = TargetArch::Srisc;
  Addr Entry = 0;
  std::vector<SxfSegment> Segments;
  std::vector<SxfSymbol> Symbols;
  std::vector<SxfReloc> Relocs;

  // --- Segment access ----------------------------------------------------

  /// First segment of the given kind, or null.
  const SxfSegment *segment(SegKind Kind) const;
  SxfSegment *segment(SegKind Kind);

  /// Segment containing address \p A (by memory extent), or null.
  const SxfSegment *segmentContaining(Addr A) const;

  /// Reads a little-endian 32-bit word at \p A from file-backed contents.
  /// Returns nullopt outside any segment's file bytes (bss reads as zero).
  std::optional<uint32_t> readWord(Addr A) const;

  /// Writes a little-endian 32-bit word at \p A; returns false if \p A is
  /// not within a file-backed segment.
  bool writeWord(Addr A, uint32_t Value);

  // --- Symbols ------------------------------------------------------------

  const SxfSymbol *findSymbol(const std::string &Name) const;

  /// Removes the entire symbol table (a stripped executable).
  void strip() { Symbols.clear(); }

  /// Removes relocation information (the paper's fully linked setting).
  void stripRelocations() { Relocs.clear(); }

  // --- Validation ---------------------------------------------------------

  /// Whole-image structural checks: segment overlap and address-space
  /// wrap, MemSize covering the file bytes, entry point inside text, and
  /// symbol/relocation range checks. deserialize() runs this on every
  /// decoded image (attaching file offsets to any failure); call it
  /// directly to check an image built in memory. Errors carry an
  /// ErrorCode from the load-time taxonomy (see support/Error.h).
  Expected<bool> validate() const;

  // --- Serialization ------------------------------------------------------

  std::vector<uint8_t> serialize() const;

  /// Decodes and validates \p Bytes. The input is treated as hostile:
  /// counts are checked against remaining bytes before any allocation,
  /// enum bytes are validated before casting, and the reader is strict
  /// enough (reserved fields zero, canonical binding bytes, no trailing
  /// bytes) that serialize() is an exact inverse on every accepted input.
  /// Failures are structured Errors with an ErrorCode and byte offset.
  static Expected<SxfFile> deserialize(const std::vector<uint8_t> &Bytes);

  Expected<bool> writeToFile(const std::string &Path) const;
  static Expected<SxfFile> readFromFile(const std::string &Path);
};

} // namespace eel

#endif // EEL_SXF_SXF_H
