//===- sxf/Sxf.cpp - Simple eXecutable Format -----------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sxf/Sxf.h"

#include "support/ByteBuffer.h"
#include "support/FileIO.h"

using namespace eel;

static const uint32_t SxfMagic = 0x31465853; // "SXF1" little-endian

const SxfSegment *SxfFile::segment(SegKind Kind) const {
  for (const SxfSegment &Seg : Segments)
    if (Seg.Kind == Kind)
      return &Seg;
  return nullptr;
}

SxfSegment *SxfFile::segment(SegKind Kind) {
  for (SxfSegment &Seg : Segments)
    if (Seg.Kind == Kind)
      return &Seg;
  return nullptr;
}

const SxfSegment *SxfFile::segmentContaining(Addr A) const {
  for (const SxfSegment &Seg : Segments)
    if (A >= Seg.VAddr && A < Seg.VAddr + Seg.MemSize)
      return &Seg;
  return nullptr;
}

std::optional<uint32_t> SxfFile::readWord(Addr A) const {
  for (const SxfSegment &Seg : Segments) {
    if (A < Seg.VAddr || A + 4 > Seg.VAddr + Seg.Bytes.size())
      continue;
    size_t Off = A - Seg.VAddr;
    return static_cast<uint32_t>(Seg.Bytes[Off]) |
           (static_cast<uint32_t>(Seg.Bytes[Off + 1]) << 8) |
           (static_cast<uint32_t>(Seg.Bytes[Off + 2]) << 16) |
           (static_cast<uint32_t>(Seg.Bytes[Off + 3]) << 24);
  }
  return std::nullopt;
}

bool SxfFile::writeWord(Addr A, uint32_t Value) {
  for (SxfSegment &Seg : Segments) {
    if (A < Seg.VAddr || A + 4 > Seg.VAddr + Seg.Bytes.size())
      continue;
    size_t Off = A - Seg.VAddr;
    Seg.Bytes[Off] = static_cast<uint8_t>(Value);
    Seg.Bytes[Off + 1] = static_cast<uint8_t>(Value >> 8);
    Seg.Bytes[Off + 2] = static_cast<uint8_t>(Value >> 16);
    Seg.Bytes[Off + 3] = static_cast<uint8_t>(Value >> 24);
    return true;
  }
  return false;
}

const SxfSymbol *SxfFile::findSymbol(const std::string &Name) const {
  for (const SxfSymbol &Sym : Symbols)
    if (Sym.Name == Name)
      return &Sym;
  return nullptr;
}

std::vector<uint8_t> SxfFile::serialize() const {
  ByteWriter W;
  W.writeU32(SxfMagic);
  W.writeU8(static_cast<uint8_t>(Arch));
  W.writeU8(0); // reserved flags
  W.writeU16(0);
  W.writeU32(Entry);
  W.writeU32(static_cast<uint32_t>(Segments.size()));
  for (const SxfSegment &Seg : Segments) {
    W.writeU8(static_cast<uint8_t>(Seg.Kind));
    W.writeU32(Seg.VAddr);
    W.writeU32(Seg.MemSize);
    W.writeU32(static_cast<uint32_t>(Seg.Bytes.size()));
    W.writeBytes(Seg.Bytes.data(), Seg.Bytes.size());
  }
  W.writeU32(static_cast<uint32_t>(Symbols.size()));
  for (const SxfSymbol &Sym : Symbols) {
    W.writeString(Sym.Name);
    W.writeU32(Sym.Value);
    W.writeU32(Sym.Size);
    W.writeU8(static_cast<uint8_t>(Sym.Kind));
    W.writeU8(static_cast<uint8_t>(Sym.Binding));
  }
  W.writeU32(static_cast<uint32_t>(Relocs.size()));
  for (const SxfReloc &R : Relocs) {
    W.writeU32(R.Site);
    W.writeU32(R.Target);
    W.writeU8(static_cast<uint8_t>(R.Kind));
  }
  return W.take();
}

Expected<SxfFile> SxfFile::deserialize(const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes);
  if (R.readU32() != SxfMagic)
    return Error("not an SXF file (bad magic)");
  SxfFile File;
  uint8_t ArchByte = R.readU8();
  if (ArchByte > static_cast<uint8_t>(TargetArch::Mrisc))
    return Error("SXF file names an unknown architecture");
  File.Arch = static_cast<TargetArch>(ArchByte);
  R.readU8();
  R.readU16();
  File.Entry = R.readU32();
  uint32_t NumSegments = R.readU32();
  if (NumSegments > 64)
    return Error("SXF file is corrupt: implausible segment count");
  for (uint32_t I = 0; I < NumSegments; ++I) {
    SxfSegment Seg;
    uint8_t KindByte = R.readU8();
    if (KindByte > static_cast<uint8_t>(SegKind::Bss))
      return Error("SXF file is corrupt: bad segment kind");
    Seg.Kind = static_cast<SegKind>(KindByte);
    Seg.VAddr = R.readU32();
    Seg.MemSize = R.readU32();
    uint32_t NumBytes = R.readU32();
    if (NumBytes > R.remaining())
      return Error("SXF file is corrupt: segment overruns file");
    Seg.Bytes.resize(NumBytes);
    R.readBytes(Seg.Bytes.data(), NumBytes);
    File.Segments.push_back(std::move(Seg));
  }
  uint32_t NumSymbols = R.readU32();
  for (uint32_t I = 0; I < NumSymbols; ++I) {
    SxfSymbol Sym;
    Sym.Name = R.readString();
    Sym.Value = R.readU32();
    Sym.Size = R.readU32();
    uint8_t KindByte = R.readU8();
    if (KindByte > static_cast<uint8_t>(SymKind::Temp))
      return Error("SXF file is corrupt: bad symbol kind");
    Sym.Kind = static_cast<SymKind>(KindByte);
    Sym.Binding = static_cast<SymBinding>(R.readU8() != 0);
    if (R.failed())
      return Error("SXF file is corrupt: truncated symbol table");
    File.Symbols.push_back(std::move(Sym));
  }
  uint32_t NumRelocs = R.readU32();
  for (uint32_t I = 0; I < NumRelocs; ++I) {
    SxfReloc Reloc;
    Reloc.Site = R.readU32();
    Reloc.Target = R.readU32();
    uint8_t KindByte = R.readU8();
    if (KindByte > static_cast<uint8_t>(RelocKind::PcRel))
      return Error("SXF file is corrupt: bad relocation kind");
    Reloc.Kind = static_cast<RelocKind>(KindByte);
    if (R.failed())
      return Error("SXF file is corrupt: truncated relocations");
    File.Relocs.push_back(Reloc);
  }
  if (R.failed())
    return Error("SXF file is corrupt: truncated");
  return File;
}

Expected<bool> SxfFile::writeToFile(const std::string &Path) const {
  return writeFileBytes(Path, serialize());
}

Expected<SxfFile> SxfFile::readFromFile(const std::string &Path) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (Bytes.hasError())
    return Bytes.error();
  return deserialize(Bytes.value());
}
