//===- sxf/Sxf.cpp - Simple eXecutable Format -----------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SXF reader/writer. The reader treats its input as hostile (the same
/// stance §3.1 of the paper takes toward symbol tables): every count is
/// checked against the bytes that could actually back it before any
/// allocation, every bounds check is written in subtraction form so a
/// length near 2^32 cannot wrap past it, every enum byte is validated
/// before the cast, and the decoded image is structurally validated
/// (segment overlap, address-space wrap, entry point, symbol/reloc ranges)
/// before it is returned. A malformed input of any shape yields a
/// structured Error carrying an ErrorCode and the byte offset of the
/// offending record — never an abort, oversized allocation, or UB.
///
/// The reader is also strict: reserved header fields must be zero, the
/// binding byte must be canonical, and trailing bytes are rejected. This
/// makes deserialize/serialize exact inverses on accepted inputs, which is
/// the oracle the fault-injection harness checks.
///
//===----------------------------------------------------------------------===//

#include "sxf/Sxf.h"

#include "support/ByteBuffer.h"
#include "support/FileIO.h"

using namespace eel;

static const uint32_t SxfMagic = 0x31465853; // "SXF1" little-endian

const SxfSegment *SxfFile::segment(SegKind Kind) const {
  for (const SxfSegment &Seg : Segments)
    if (Seg.Kind == Kind)
      return &Seg;
  return nullptr;
}

SxfSegment *SxfFile::segment(SegKind Kind) {
  for (SxfSegment &Seg : Segments)
    if (Seg.Kind == Kind)
      return &Seg;
  return nullptr;
}

const SxfSegment *SxfFile::segmentContaining(Addr A) const {
  for (const SxfSegment &Seg : Segments)
    if (A >= Seg.VAddr && A - Seg.VAddr < Seg.MemSize)
      return &Seg;
  return nullptr;
}

std::optional<uint32_t> SxfFile::readWord(Addr A) const {
  for (const SxfSegment &Seg : Segments) {
    // Subtraction form: `A + 4 > VAddr + size` wraps for A near 2^32 and
    // would index far past the buffer.
    if (A < Seg.VAddr)
      continue;
    size_t Off = A - Seg.VAddr;
    if (Seg.Bytes.size() < 4 || Off > Seg.Bytes.size() - 4)
      continue;
    return static_cast<uint32_t>(Seg.Bytes[Off]) |
           (static_cast<uint32_t>(Seg.Bytes[Off + 1]) << 8) |
           (static_cast<uint32_t>(Seg.Bytes[Off + 2]) << 16) |
           (static_cast<uint32_t>(Seg.Bytes[Off + 3]) << 24);
  }
  return std::nullopt;
}

bool SxfFile::writeWord(Addr A, uint32_t Value) {
  for (SxfSegment &Seg : Segments) {
    if (A < Seg.VAddr)
      continue;
    size_t Off = A - Seg.VAddr;
    if (Seg.Bytes.size() < 4 || Off > Seg.Bytes.size() - 4)
      continue;
    Seg.Bytes[Off] = static_cast<uint8_t>(Value);
    Seg.Bytes[Off + 1] = static_cast<uint8_t>(Value >> 8);
    Seg.Bytes[Off + 2] = static_cast<uint8_t>(Value >> 16);
    Seg.Bytes[Off + 3] = static_cast<uint8_t>(Value >> 24);
    return true;
  }
  return false;
}

const SxfSymbol *SxfFile::findSymbol(const std::string &Name) const {
  for (const SxfSymbol &Sym : Symbols)
    if (Sym.Name == Name)
      return &Sym;
  return nullptr;
}

std::vector<uint8_t> SxfFile::serialize() const {
  ByteWriter W;
  W.writeU32(SxfMagic);
  W.writeU8(static_cast<uint8_t>(Arch));
  W.writeU8(0); // reserved flags
  W.writeU16(0);
  W.writeU32(Entry);
  W.writeU32(static_cast<uint32_t>(Segments.size()));
  for (const SxfSegment &Seg : Segments) {
    W.writeU8(static_cast<uint8_t>(Seg.Kind));
    W.writeU32(Seg.VAddr);
    W.writeU32(Seg.MemSize);
    W.writeU32(static_cast<uint32_t>(Seg.Bytes.size()));
    W.writeBytes(Seg.Bytes.data(), Seg.Bytes.size());
  }
  W.writeU32(static_cast<uint32_t>(Symbols.size()));
  for (const SxfSymbol &Sym : Symbols) {
    W.writeString(Sym.Name);
    W.writeU32(Sym.Value);
    W.writeU32(Sym.Size);
    W.writeU8(static_cast<uint8_t>(Sym.Kind));
    W.writeU8(static_cast<uint8_t>(Sym.Binding));
  }
  W.writeU32(static_cast<uint32_t>(Relocs.size()));
  for (const SxfReloc &R : Relocs) {
    W.writeU32(R.Site);
    W.writeU32(R.Target);
    W.writeU8(static_cast<uint8_t>(R.Kind));
  }
  return W.take();
}

namespace {

/// File offsets of the records in a decoded image, recorded during
/// deserialization so whole-image validation can attach the offending
/// record's offset to its error. Null when validating an in-memory image
/// that never had a file representation.
struct RecordOffsets {
  uint64_t Entry = 0;
  std::vector<uint64_t> Segments;
  std::vector<uint64_t> Symbols;
  std::vector<uint64_t> Relocs;
};

Error withOffset(Error E, const std::vector<uint64_t> *Offsets, size_t Index) {
  if (Offsets && Index < Offsets->size())
    E.atOffset((*Offsets)[Index]);
  return E;
}

/// Whole-image structural checks shared by deserialize() (with offsets) and
/// the public validate() (without). Per-field checks — counts, enum bytes,
/// truncation — happen during decoding; everything here is a property of the
/// decoded image as a whole.
Expected<bool> validateImage(const SxfFile &File, const RecordOffsets *Offs) {
  const uint64_t AddrSpace = 1ull << 32;

  // Segments: MemSize covers the file bytes, extents do not wrap the
  // 32-bit address space, and no two extents intersect. Error-context
  // strings are built only on the failure paths — this code runs on every
  // load and must cost near nothing when the image is fine.
  for (size_t I = 0; I < File.Segments.size(); ++I) {
    const SxfSegment &Seg = File.Segments[I];
    if (Seg.MemSize < Seg.Bytes.size())
      return withOffset(Error(ErrorCode::BadMemSize,
                              "segment memory size is smaller than its file "
                              "contents")
                            .inField("segment[" + std::to_string(I) + "]"),
                        Offs ? &Offs->Segments : nullptr, I);
    if (static_cast<uint64_t>(Seg.VAddr) + Seg.MemSize >= AddrSpace)
      return withOffset(Error(ErrorCode::AddressWrap,
                              "segment extent wraps the address space")
                            .inField("segment[" + std::to_string(I) + "]"),
                        Offs ? &Offs->Segments : nullptr, I);
    for (size_t J = 0; J < I; ++J) {
      const SxfSegment &Other = File.Segments[J];
      uint64_t LoA = Seg.VAddr, HiA = LoA + Seg.MemSize;
      uint64_t LoB = Other.VAddr, HiB = LoB + Other.MemSize;
      if (LoA < HiB && LoB < HiA)
        return withOffset(Error(ErrorCode::SegmentOverlap,
                                "segment overlaps segment[" +
                                    std::to_string(J) + "]")
                              .inField("segment[" + std::to_string(I) + "]"),
                          Offs ? &Offs->Segments : nullptr, I);
    }
  }

  // Entry point: a nonzero entry must be a word-aligned instruction inside
  // a text segment's file-backed bytes; without a text segment the entry
  // must be the 0 sentinel.
  if (File.Entry != 0 || File.segment(SegKind::Text)) {
    bool EntryOk = false;
    if ((File.Entry & 3) == 0) {
      for (const SxfSegment &Seg : File.Segments) {
        if (Seg.Kind != SegKind::Text || File.Entry < Seg.VAddr)
          continue;
        size_t Off = File.Entry - Seg.VAddr;
        if (Seg.Bytes.size() >= 4 && Off <= Seg.Bytes.size() - 4) {
          EntryOk = true;
          break;
        }
      }
    }
    if (File.Entry == 0 && !EntryOk)
      EntryOk = true; // 0 stays a valid "no entry" sentinel
    if (!EntryOk) {
      Error E(ErrorCode::BadEntryPoint,
              "entry point is not an instruction in a text segment");
      E.inField("entry");
      if (Offs)
        E.atOffset(Offs->Entry);
      return E;
    }
  }

  // The per-symbol and per-reloc scans below only need each segment's
  // (VAddr, MemSize, file-byte count); hoist those into a compact local
  // array so the hot loops do not stride through the full SxfSegment
  // records (each carries a byte vector) for every symbol.
  struct Extent {
    Addr VAddr;
    uint32_t MemSize;
    size_t NumBytes;
  };
  Extent Inline[8];
  std::vector<Extent> Spill;
  const size_t NumExtents = File.Segments.size();
  Extent *Extents = Inline;
  if (NumExtents > 8) {
    Spill.resize(NumExtents);
    Extents = Spill.data();
  }
  for (size_t I = 0; I < NumExtents; ++I) {
    const SxfSegment &Seg = File.Segments[I];
    Extents[I] = {Seg.VAddr, Seg.MemSize, Seg.Bytes.size()};
  }

  // Symbols: the value (and the extent it claims via Size) must fall within
  // some segment's memory extent. Extent ends are inclusive — assemblers
  // legitimately emit labels one past the last byte of a section. Symbol
  // tables cluster by segment, so remembering the last hit turns the scan
  // into a single compare for nearly every symbol.
  size_t LastHit = 0;
  for (size_t I = 0; I < File.Symbols.size(); ++I) {
    const SxfSymbol &Sym = File.Symbols[I];
    if (static_cast<uint64_t>(Sym.Value) + Sym.Size >= AddrSpace)
      return withOffset(Error(ErrorCode::AddressWrap,
                              "symbol extent wraps the address space")
                            .inField("symbol[" + std::to_string(I) + "]"),
                        Offs ? &Offs->Symbols : nullptr, I);
    bool InRange = NumExtents == 0;
    if (LastHit < NumExtents) {
      const Extent &Seg = Extents[LastHit];
      InRange = Sym.Value >= Seg.VAddr && Sym.Value - Seg.VAddr <= Seg.MemSize;
    }
    if (!InRange) {
      for (size_t J = 0; J < NumExtents; ++J) {
        const Extent &Seg = Extents[J];
        if (Sym.Value >= Seg.VAddr && Sym.Value - Seg.VAddr <= Seg.MemSize) {
          InRange = true;
          LastHit = J;
          break;
        }
      }
    }
    if (!InRange)
      return withOffset(Error(ErrorCode::SymbolOutOfRange,
                              "symbol value lies outside every segment")
                            .inField("symbol[" + std::to_string(I) + "]"),
                        Offs ? &Offs->Symbols : nullptr, I);
  }

  // Relocations: the site must name a patchable word (4 file-backed bytes
  // within one segment) and the target must fall within some segment's
  // extent (inclusive end, as for symbols).
  for (size_t I = 0; I < File.Relocs.size(); ++I) {
    const SxfReloc &Reloc = File.Relocs[I];
    bool SiteOk = false;
    for (size_t J = 0; J < NumExtents; ++J) {
      const Extent &Seg = Extents[J];
      if (Reloc.Site < Seg.VAddr)
        continue;
      size_t Off = Reloc.Site - Seg.VAddr;
      if (Seg.NumBytes >= 4 && Off <= Seg.NumBytes - 4) {
        SiteOk = true;
        break;
      }
    }
    if (!SiteOk)
      return withOffset(Error(ErrorCode::RelocOutOfRange,
                              "relocation site is not a patchable word")
                            .inField("reloc[" + std::to_string(I) + "]"),
                        Offs ? &Offs->Relocs : nullptr, I);
    bool TargetOk = false;
    for (size_t J = 0; J < NumExtents; ++J) {
      const Extent &Seg = Extents[J];
      if (Reloc.Target >= Seg.VAddr &&
          Reloc.Target - Seg.VAddr <= Seg.MemSize) {
        TargetOk = true;
        break;
      }
    }
    if (!TargetOk)
      return withOffset(Error(ErrorCode::RelocOutOfRange,
                              "relocation target lies outside every segment")
                            .inField("reloc[" + std::to_string(I) + "]"),
                        Offs ? &Offs->Relocs : nullptr, I);
  }

  return true;
}

} // namespace

Expected<bool> SxfFile::validate() const {
  return validateImage(*this, nullptr);
}

Expected<SxfFile> SxfFile::deserialize(const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes);
  uint32_t Magic = R.readU32();
  if (R.failed())
    return Error(ErrorCode::Truncated, "file too small for an SXF header")
        .atOffset(0)
        .inField("magic");
  if (Magic != SxfMagic)
    return Error(ErrorCode::BadMagic, "not an SXF file (bad magic)")
        .atOffset(0)
        .inField("magic");

  SxfFile File;
  uint64_t FieldOff = R.pos();
  uint8_t ArchByte = R.readU8();
  if (ArchByte > static_cast<uint8_t>(TargetArch::Arisc))
    return Error(ErrorCode::BadArch, "unknown architecture")
        .atOffset(FieldOff)
        .inField("arch");
  File.Arch = static_cast<TargetArch>(ArchByte);

  FieldOff = R.pos();
  uint8_t Reserved8 = R.readU8();
  uint16_t Reserved16 = R.readU16();
  if (Reserved8 != 0 || Reserved16 != 0)
    return Error(ErrorCode::BadHeader, "reserved header fields are not zero")
        .atOffset(FieldOff)
        .inField("reserved");

  RecordOffsets Offs;
  Offs.Entry = R.pos();
  File.Entry = R.readU32();

  // --- Segments -----------------------------------------------------------
  FieldOff = R.pos();
  uint32_t NumSegments = R.readU32();
  // A segment record is at least 13 bytes (kind + vaddr + memsize + nbytes),
  // so a count the remaining bytes cannot back is corrupt regardless of the
  // records' contents. Check before any allocation sized by the count.
  if (NumSegments > 64 || NumSegments > R.remaining() / 13)
    return Error(ErrorCode::ImplausibleCount, "implausible segment count")
        .atOffset(FieldOff)
        .inField("nsegments");
  for (uint32_t I = 0; I < NumSegments; ++I) {
    Offs.Segments.push_back(R.pos());
    SxfSegment Seg;
    FieldOff = R.pos();
    uint8_t KindByte = R.readU8();
    if (KindByte > static_cast<uint8_t>(SegKind::Bss))
      return Error(ErrorCode::BadSegmentKind, "bad segment kind")
          .atOffset(FieldOff)
          .inField("segment[" + std::to_string(I) + "].kind");
    Seg.Kind = static_cast<SegKind>(KindByte);
    Seg.VAddr = R.readU32();
    Seg.MemSize = R.readU32();
    FieldOff = R.pos();
    uint32_t NumBytes = R.readU32();
    if (R.failed() || NumBytes > R.remaining())
      return Error(ErrorCode::SegmentOverrun, "segment overruns file")
          .atOffset(FieldOff)
          .inField("segment[" + std::to_string(I) + "].nbytes");
    Seg.Bytes.resize(NumBytes);
    R.readBytes(Seg.Bytes.data(), NumBytes);
    File.Segments.push_back(std::move(Seg));
  }

  // --- Symbols ------------------------------------------------------------
  FieldOff = R.pos();
  uint32_t NumSymbols = R.readU32();
  // Minimum symbol record: 4 (name length) + 4 + 4 + 1 + 1 = 14 bytes.
  if (NumSymbols > R.remaining() / 14)
    return Error(ErrorCode::ImplausibleCount, "implausible symbol count")
        .atOffset(FieldOff)
        .inField("nsymbols");
  for (uint32_t I = 0; I < NumSymbols; ++I) {
    Offs.Symbols.push_back(R.pos());
    SxfSymbol Sym;
    Sym.Name = R.readString();
    Sym.Value = R.readU32();
    Sym.Size = R.readU32();
    FieldOff = R.pos();
    uint8_t KindByte = R.readU8();
    uint8_t BindingByte = R.readU8();
    if (R.failed())
      return Error(ErrorCode::Truncated, "truncated symbol table")
          .atOffset(Offs.Symbols.back())
          .inField("symbol[" + std::to_string(I) + "]");
    if (KindByte > static_cast<uint8_t>(SymKind::Temp) || BindingByte > 1)
      return Error(ErrorCode::BadSymbolKind, "bad symbol kind or binding")
          .atOffset(FieldOff)
          .inField("symbol[" + std::to_string(I) + "].kind");
    Sym.Kind = static_cast<SymKind>(KindByte);
    Sym.Binding = static_cast<SymBinding>(BindingByte);
    File.Symbols.push_back(std::move(Sym));
  }

  // --- Relocations --------------------------------------------------------
  FieldOff = R.pos();
  uint32_t NumRelocs = R.readU32();
  // Minimum relocation record: 4 + 4 + 1 = 9 bytes.
  if (NumRelocs > R.remaining() / 9)
    return Error(ErrorCode::ImplausibleCount, "implausible relocation count")
        .atOffset(FieldOff)
        .inField("nrelocs");
  for (uint32_t I = 0; I < NumRelocs; ++I) {
    Offs.Relocs.push_back(R.pos());
    SxfReloc Reloc;
    Reloc.Site = R.readU32();
    Reloc.Target = R.readU32();
    FieldOff = R.pos();
    uint8_t KindByte = R.readU8();
    if (R.failed())
      return Error(ErrorCode::Truncated, "truncated relocations")
          .atOffset(Offs.Relocs.back())
          .inField("reloc[" + std::to_string(I) + "]");
    if (KindByte > static_cast<uint8_t>(RelocKind::PcRel))
      return Error(ErrorCode::BadRelocKind, "bad relocation kind")
          .atOffset(FieldOff)
          .inField("reloc[" + std::to_string(I) + "].kind");
    Reloc.Kind = static_cast<RelocKind>(KindByte);
    File.Relocs.push_back(Reloc);
  }

  if (R.failed())
    return Error(ErrorCode::Truncated, "truncated file").atOffset(R.pos());
  if (R.remaining() != 0)
    return Error(ErrorCode::TrailingBytes,
                 "trailing bytes after the last record")
        .atOffset(R.pos());

  Expected<bool> Valid = validateImage(File, &Offs);
  if (Valid.hasError())
    return Valid.error();
  return File;
}

Expected<bool> SxfFile::writeToFile(const std::string &Path) const {
  // writeFileBytes already attaches IoError + the path.
  return writeFileBytes(Path, serialize());
}

Expected<SxfFile> SxfFile::readFromFile(const std::string &Path) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (Bytes.hasError())
    return Bytes.error(); // already carries IoError + the path
  Expected<SxfFile> File = deserialize(Bytes.value());
  if (File.hasError())
    return Error(File.error()).inFile(Path);
  return File;
}
