//===- analysis/InferRules.cpp - eel-infer rule implementations ----------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fact-gathering rules of eel-infer (R1–R4, R6). Each rule reads the
/// image (and, for R4/R6, slices within candidate extents) and appends
/// plain records to the InferContext; the fixpoint driver in Infer.cpp
/// decides what the facts mean. Everything here is strictly serial and
/// iterates in address order — determinism by construction.
///
//===----------------------------------------------------------------------===//

#include "analysis/InferInternal.h"

#include "core/Routine.h"
#include "core/Slice.h"

#include <algorithm>

using namespace eel;
using namespace eel::infer;

void infer::scanText(InferContext &Ctx) {
  Executable &Exec = Ctx.Exec;
  const unsigned SP = Exec.target().conventions().StackPointer;
  const unsigned FP = Exec.target().conventions().FramePointer;
  Ctx.Plausible.assign((Ctx.TE - Ctx.TB) / 4, false);

  for (Addr A = Ctx.TB; A + 4 <= Ctx.TE; A += 4) {
    std::optional<MachWord> W = Exec.fetchWord(A);
    if (!W)
      break;
    const Instruction *I = Exec.pool().getAt(A, *W);
    if (isa<InvalidInst>(I)) {
      ++Ctx.Stats.ImplausibleWords;
      continue; // R1: a data-in-text seed, never code
    }
    Ctx.Plausible[(A - Ctx.TB) / 4] = true;
    ++Ctx.Stats.PlausibleWords;

    // R2a: direct call targets.
    if (I->kind() == InstKind::Call) {
      std::optional<Addr> T = I->directTarget(A);
      if (T && *T >= Ctx.TB && *T < Ctx.TE && (*T & 3) == 0)
        Ctx.CallTargets.push_back(*T);
    }

    // R2b: the prologue idiom — a word that grows the stack frame.
    DataOp Op = I->dataOp();
    if (Op.Kind == DataOpKind::Add && Op.Rd == SP && Op.Rs1 == SP &&
        Op.HasImm && Op.Imm < 0)
      Ctx.PrologueSites.push_back(A);

    // R2c: store sites, pre-classified by base register. Stack- and
    // frame-relative stores write locals; they cannot alias a global cell.
    if (const auto *Mem = dyn_cast<MemoryInst>(I)) {
      const MemOp &M = Mem->memOp();
      if (M.IsStore) {
        StoreFact F;
        F.At = A;
        F.Width = M.Width;
        F.StackRelative =
            !M.HasIndex && (M.AddrBase == SP || (FP && M.AddrBase == FP));
        Ctx.Stores.push_back(F);
      }
    }

    // R2d: the indirect-jump sites R6 will slice.
    if (I->kind() == InstKind::IndirectJump)
      Ctx.IndirectJumps.push_back(A);
  }

  // Call targets vote once each, however many call sites agree.
  std::sort(Ctx.CallTargets.begin(), Ctx.CallTargets.end());
  Ctx.CallTargets.erase(
      std::unique(Ctx.CallTargets.begin(), Ctx.CallTargets.end()),
      Ctx.CallTargets.end());
  Ctx.Stats.CallTargets = static_cast<unsigned>(Ctx.CallTargets.size());
  Ctx.Stats.PrologueSites = static_cast<unsigned>(Ctx.PrologueSites.size());
}

void infer::scanDataPointers(InferContext &Ctx) {
  Executable &Exec = Ctx.Exec;
  const SxfFile &Image = Exec.image();

  // A word-aligned value inside any initialized data segment could be a
  // table base (the mangled-dispatch idiom loads its base from memory).
  auto InData = [&Image](uint32_t V) {
    if (V & 3)
      return false;
    for (const SxfSegment &Seg : Image.Segments)
      if (Seg.Kind != SegKind::Text && V >= Seg.VAddr &&
          V < Seg.VAddr + Seg.MemSize)
        return true;
    return false;
  };

  for (const SxfSegment &Seg : Image.Segments) {
    if (Seg.Kind == SegKind::Text || Seg.Bytes.empty())
      continue;
    // First pass over the segment: which words hold aligned text addresses.
    size_t Words = Seg.Bytes.size() / 4;
    std::vector<bool> TextPtr(Words, false);
    for (size_t Idx = 0; Idx < Words; ++Idx) {
      Addr A = Seg.VAddr + static_cast<Addr>(4 * Idx);
      std::optional<uint32_t> W = Exec.fetchWord(A);
      if (W && Exec.isTextAddr(*W) && (*W & 3) == 0)
        TextPtr[Idx] = true;
    }
    // Second pass: emit cell facts. Consecutive runs of two or more text
    // pointers look like a dispatch table — their values are case labels,
    // not routine entries.
    for (size_t Idx = 0; Idx < Words; ++Idx) {
      Addr A = Seg.VAddr + static_cast<Addr>(4 * Idx);
      uint32_t W = *Exec.fetchWord(A);
      CellFact F;
      F.Cell = A;
      F.Value = W;
      if (TextPtr[Idx]) {
        F.PointsToText = true;
        F.InTableRun = (Idx > 0 && TextPtr[Idx - 1]) ||
                       (Idx + 1 < Words && TextPtr[Idx + 1]);
        if (F.InTableRun)
          ++Ctx.Stats.TableRunWords;
        else
          ++Ctx.Stats.CodePointers;
      } else if (InData(W) && W != 0) {
        F.PointsToText = false; // a candidate table-base cell
      } else {
        continue; // plain data, no fact
      }
      Ctx.Cells.push_back(F);
    }
  }
  std::sort(Ctx.Cells.begin(), Ctx.Cells.end(),
            [](const CellFact &A, const CellFact &B) { return A.Cell < B.Cell; });
}

void infer::computeReachable(InferContext &Ctx) {
  Executable &Exec = Ctx.Exec;
  Ctx.Reachable.assign((Ctx.TE - Ctx.TB) / 4, false);
  std::vector<Addr> Worklist;
  for (const auto &[A, F] : Ctx.Entries) {
    (void)F;
    Worklist.push_back(A);
  }
  for (const auto &[A, Res] : Ctx.Sites) {
    (void)A;
    for (Addr T : Res.Targets)
      Worklist.push_back(T);
  }
  auto Mark = [&Ctx](Addr A) {
    size_t Idx = (A - Ctx.TB) / 4;
    bool Seen = Ctx.Reachable[Idx];
    Ctx.Reachable[Idx] = true;
    return Seen;
  };
  while (!Worklist.empty()) {
    Addr A = Worklist.back();
    Worklist.pop_back();
    if (A < Ctx.TB || A + 4 > Ctx.TE || (A & 3) || Mark(A))
      continue;
    std::optional<MachWord> W = Exec.fetchWord(A);
    if (!W)
      continue;
    const Instruction *I = Exec.pool().getAt(A, *W);
    if (isa<InvalidInst>(I))
      continue; // an entry vote landed on data; the scan stops here
    if (!I->isControlTransfer()) {
      Worklist.push_back(A + 4);
      continue;
    }
    if (I->hasDelaySlot() &&
        I->delayBehavior() != DelayBehavior::AnnulAlways && A + 8 <= Ctx.TE)
      Mark(A + 4);
    // Fallthrough/continuation: past the delay slot only when one exists.
    Addr Past = A + (I->hasDelaySlot() ? 8 : 4);
    switch (I->kind()) {
    case InstKind::Branch: {
      std::optional<Addr> T = I->directTarget(A);
      if (T)
        Worklist.push_back(*T);
      Worklist.push_back(Past);
      break;
    }
    case InstKind::Jump: {
      std::optional<Addr> T = I->directTarget(A);
      if (T)
        Worklist.push_back(*T);
      break;
    }
    case InstKind::Call:
    case InstKind::IndirectCall: {
      std::optional<Addr> T = I->directTarget(A);
      if (T)
        Worklist.push_back(*T);
      Worklist.push_back(Past);
      break;
    }
    case InstKind::Return:
    case InstKind::IndirectJump:
      break; // indirect targets arrive via the previous round's Sites
    default:
      Worklist.push_back(A + 4);
      break;
    }
  }
  Ctx.Stats.ReachableWords = 0;
  for (bool B : Ctx.Reachable)
    if (B)
      ++Ctx.Stats.ReachableWords;
}

std::vector<std::pair<Addr, uint32_t>>
infer::computeCellConstancy(InferContext &Ctx,
                            const std::vector<Extent> &Extents) {
  Executable &Exec = Ctx.Exec;

  // Classify every reachable non-stack store under the current partition:
  // slice its base within the extent containing it. One scratch routine
  // per extent. Unreachable stores are data decoded as instructions (or
  // dead bytes) — the data-in-text exclusion drops their facts entirely.
  bool UnknownWordStore = false;
  bool UnknownSubWordStore = false;
  size_t ExtIdx = 0;
  std::unique_ptr<Routine> Scratch;
  Addr ScratchLo = 0;
  for (StoreFact &F : Ctx.Stores) {
    F.AddrKnown = false;
    if (F.StackRelative)
      continue;
    if (!Ctx.Reachable[(F.At - Ctx.TB) / 4])
      continue;
    while (ExtIdx < Extents.size() && Extents[ExtIdx].Hi <= F.At)
      ++ExtIdx;
    if (ExtIdx >= Extents.size() || F.At < Extents[ExtIdx].Lo) {
      UnknownWordStore = true; // a store outside every extent: give up
      continue;
    }
    if (!Scratch || ScratchLo != Extents[ExtIdx].Lo) {
      Scratch = std::make_unique<Routine>(Exec, "infer_scratch",
                                          Extents[ExtIdx].Lo,
                                          Extents[ExtIdx].Hi);
      ScratchLo = Extents[ExtIdx].Lo;
    }
    if (std::optional<Addr> T = storeTargetAddr(Exec, *Scratch, F.At)) {
      F.AddrKnown = true;
      F.Target = *T;
    } else if (F.Width == 4) {
      // A full-width store through an unprovable pointer could write any
      // cell: the rule refuses to call anything constant.
      UnknownWordStore = true;
    } else {
      // Sub-word stores through unprovable pointers are byte I/O in
      // practice (string/number formatting); ignoring them is the one
      // leap of faith, recorded per cell as WeakStores.
      UnknownSubWordStore = true;
    }
  }

  std::vector<std::pair<Addr, uint32_t>> Constant;
  for (CellFact &Cell : Ctx.Cells) {
    Cell.Constant = false;
    Cell.WeakStores = UnknownSubWordStore;
    if (UnknownWordStore)
      continue;
    bool Written = false;
    for (const StoreFact &F : Ctx.Stores)
      if (F.AddrKnown && F.Target + F.Width > Cell.Cell &&
          F.Target < Cell.Cell + 4) {
        Written = true;
        break;
      }
    if (Written)
      continue;
    Cell.Constant = true;
    Constant.emplace_back(Cell.Cell, Cell.Value);
  }
  Ctx.Stats.ConstantCells = static_cast<unsigned>(Constant.size());
  return Constant;
}

void infer::resolveSites(InferContext &Ctx,
                         const std::vector<Extent> &Extents) {
  Executable &Exec = Ctx.Exec;
  Ctx.Sites.clear();
  Ctx.Tables.clear();
  Ctx.ResolutionTargets.clear();

  size_t ExtIdx = 0;
  std::unique_ptr<Routine> Scratch;
  Addr ScratchLo = 0;
  for (Addr A : Ctx.IndirectJumps) {
    while (ExtIdx < Extents.size() && Extents[ExtIdx].Hi <= A)
      ++ExtIdx;
    if (ExtIdx >= Extents.size() || A < Extents[ExtIdx].Lo)
      continue;
    if (!Scratch || ScratchLo != Extents[ExtIdx].Lo) {
      Scratch = std::make_unique<Routine>(Exec, "infer_scratch",
                                          Extents[ExtIdx].Lo,
                                          Extents[ExtIdx].Hi);
      ScratchLo = Extents[ExtIdx].Lo;
    }
    IndirectResolution Res = resolveIndirect(Exec, *Scratch, A);
    TableFact TF;
    TF.Jump = A;
    TF.Evidence = tableEvidence(Exec, *Scratch, A);
    if (TF.Evidence.HasTable)
      Ctx.Tables.push_back(TF);
    if (Res.K == IndirectResolution::Kind::Literal) {
      Addr T = Res.Targets[0];
      if (Exec.isTextAddr(T) && (T & 3) == 0)
        Ctx.ResolutionTargets.insert(T);
    }
    Ctx.Sites.emplace(A, std::move(Res));
  }
}
