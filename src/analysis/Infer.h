//===- analysis/Infer.h - Fixpoint heuristic disassembly ---------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-infer: routine-boundary and dispatch-table inference for stripped
/// (or untrusted-symbol) images, in the spirit of datalog disassembly —
/// cheap byte-level heuristics feeding mutually-recursive rules, iterated
/// to a deterministic fixpoint:
///
///   R1  plausible decoding    every text word either decodes or is a
///                             data-in-text seed;
///   R2  control facts         direct call targets, prologue idioms, store
///                             sites, and indirect-jump sites from the
///                             plausible words;
///   R3  data pointers         aligned data words aimed at text vote for
///                             entries — isolated words strongly (function
///                             pointer cells), words inside consecutive
///                             runs weakly (dispatch-table entries are
///                             internal labels, not routine starts);
///   R4  cell constancy        a pointer cell no store can alias holds its
///                             initial value forever (stack-relative and
///                             provably-elsewhere stores don't alias;
///                             unknown word stores block the rule);
///   R5  entry voting          weighted evidence picks the entry set; the
///                             sorted entries partition the text into
///                             candidate routine extents;
///   R6  indirect resolution   each extent's indirect jumps are sliced
///                             with the constant cells of R4 installed as
///                             an oracle (core/Slice.h folds loads from
///                             them), recovering cell tail calls as
///                             literals and mangled, base-through-memory
///                             dispatch tables; resolved targets feed new
///                             votes back into R5.
///
/// Rules repeat until the entry set and resolutions stop changing. The
/// result seeds Executable::readContents in place of symbol refinement
/// stage 2; stages 3–4 (inter-routine entries, data detection, hidden
/// tails) then run unchanged, so stripped images go down the same
/// pipeline — CFG build, editing, verification — as symboled ones.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ANALYSIS_INFER_H
#define EEL_ANALYSIS_INFER_H

#include "analysis/InferFacts.h"

namespace eel {

class Executable;

struct InferOptions {
  /// Fixpoint iteration cap; the rule set converges in 2–3 rounds on
  /// everything we generate, the cap only bounds adversarial inputs.
  unsigned MaxRounds = 8;
};

/// Everything the fixpoint concluded, in core-consumable form.
struct InferResult {
  std::vector<InferredRoutine> Routines;
  /// Constant cells (sorted by address) for the slicing oracle.
  std::vector<std::pair<Addr, uint32_t>> ConstantCells;
  /// Per-site resolutions, keyed by jump address.
  std::map<Addr, IndirectResolution> Sites;
  InferStats Stats;
};

/// Runs the fixpoint over \p Exec's text and data segments. Pure analysis:
/// reads the image, touches no routine state. Deterministic — serial by
/// design, with every container ordered by address — so two runs (and any
/// thread setting) produce identical results.
InferResult inferLayout(Executable &Exec, const InferOptions &Opts = {});

} // namespace eel

#endif // EEL_ANALYSIS_INFER_H
