//===- analysis/Infer.cpp - eel-infer fixpoint driver --------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixpoint of analysis/Infer.h: iterate entry voting (R5) against the
/// derived facts — call targets, prologues, isolated code pointers, and
/// the targets of resolutions R6 recovered — until the entry set and the
/// per-site resolutions stop changing. The rule scans live in
/// InferRules.cpp; this file owns the voting weights, the round loop, and
/// the confidence model.
///
//===----------------------------------------------------------------------===//

#include "analysis/Infer.h"

#include "analysis/InferInternal.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>

using namespace eel;
using namespace eel::infer;

namespace {

/// R5 voting weights. An address becomes an entry at WinThreshold votes,
/// so one strong rule (a call target, an inferred transfer target) almost
/// suffices, while weak rules (an isolated code pointer, a prologue idiom)
/// must corroborate each other. Dispatch-table words vote zero: case
/// labels are internal, not routine starts.
constexpr unsigned ImageEntryVote = 100;
constexpr unsigned CallTargetVote = 3;
constexpr unsigned ResolutionVote = 3;
constexpr unsigned CodePointerVote = 2;
constexpr unsigned PrologueVote = 2;
constexpr unsigned WinThreshold = 3;

/// One round of R5: rebuild the entry set from the current facts.
void voteEntries(InferContext &Ctx) {
  Ctx.Entries.clear();
  auto Vote = [&Ctx](Addr A, unsigned Weight) -> EntryFact & {
    EntryFact &F = Ctx.Entries[A];
    F.At = A;
    F.Votes += Weight;
    return F;
  };

  // The program entry point and the first text address are always kept —
  // exactly the stage-2 seeds the naive stripped path used, so inference
  // degrades to it when no other rule fires.
  Vote(Ctx.Exec.image().Entry, ImageEntryVote).IsImageEntry = true;
  Vote(Ctx.TB, 1);

  for (Addr T : Ctx.CallTargets)
    if (Ctx.plausibleAt(T))
      Vote(T, CallTargetVote).IsCallTarget = true;
  for (const CellFact &Cell : Ctx.Cells)
    if (Cell.PointsToText && !Cell.InTableRun && Ctx.plausibleAt(Cell.Value))
      Vote(Cell.Value, CodePointerVote).IsCodePointer = true;
  for (Addr T : Ctx.ResolutionTargets)
    if (Ctx.plausibleAt(T))
      Vote(T, ResolutionVote).FromResolution = true;
  // Prologues strengthen an address other evidence already points at (and
  // pair with code pointers); alone they are everywhere a leaf routine
  // saves nothing, so they never reach the threshold by themselves.
  for (Addr A : Ctx.PrologueSites)
    if (Ctx.Entries.count(A))
      Ctx.Entries[A].HasPrologue = true;

  // Keep the winners.
  for (auto It = Ctx.Entries.begin(); It != Ctx.Entries.end();) {
    const EntryFact &F = It->second;
    bool Keep = F.IsImageEntry || F.At == Ctx.TB || F.Votes >= WinThreshold;
    It = Keep ? std::next(It) : Ctx.Entries.erase(It);
  }
}

/// The candidate extents of the current entry set: [entry, next entry)
/// clamped to the text segment.
std::vector<Extent> partition(const InferContext &Ctx) {
  std::vector<Addr> Starts;
  for (const auto &[A, F] : Ctx.Entries) {
    (void)F;
    if (A >= Ctx.TB && A < Ctx.TE && (A & 3) == 0)
      Starts.push_back(A);
  }
  std::sort(Starts.begin(), Starts.end());
  std::vector<Extent> Extents;
  for (size_t I = 0; I < Starts.size(); ++I)
    Extents.push_back(
        {Starts[I], I + 1 < Starts.size() ? Starts[I + 1] : Ctx.TE});
  return Extents;
}

/// Convergence fingerprint: the entry set plus every site's resolution.
std::vector<uint64_t> fingerprint(const InferContext &Ctx) {
  std::vector<uint64_t> FP;
  for (const auto &[A, F] : Ctx.Entries) {
    (void)F;
    FP.push_back(A);
  }
  FP.push_back(~uint64_t(0));
  for (const auto &[A, Res] : Ctx.Sites) {
    FP.push_back(A);
    FP.push_back(static_cast<uint64_t>(Res.K) |
                 (uint64_t(Res.Inferred) << 8) |
                 (uint64_t(Res.TableAddr) << 16));
    for (Addr T : Res.Targets)
      FP.push_back(T);
  }
  return FP;
}

InferConfidence confidenceFor(const EntryFact &F, bool WeakOracle) {
  bool Strong = F.IsCallTarget || F.FromResolution;
  if (F.IsImageEntry)
    return InferConfidence::High;
  if (Strong && F.HasPrologue) {
    // A conclusion reached only through weak-store cell facts never rates
    // High: the byte-store leap of faith caps it.
    if (WeakOracle && !F.IsCallTarget)
      return InferConfidence::Medium;
    return InferConfidence::High;
  }
  if (Strong || (F.IsCodePointer && F.HasPrologue))
    return InferConfidence::Medium;
  return InferConfidence::Low;
}

} // namespace

InferResult eel::inferLayout(Executable &Exec, const InferOptions &Opts) {
  ScopedStatTimer Timer("time.infer_us");
  EEL_TRACE_SCOPE("infer");

  InferContext Ctx(Exec);
  Ctx.TB = Exec.textBase();
  Ctx.TE = Exec.textEnd();
  scanText(Ctx);          // R1 + R2, byte-level, fixed across rounds
  scanDataPointers(Ctx);  // R3, likewise

  std::vector<uint64_t> PrevFP;
  for (unsigned Round = 1; Round <= Opts.MaxRounds; ++Round) {
    Ctx.Stats.Rounds = Round;
    voteEntries(Ctx);                                    // R5
    std::vector<Extent> Extents = partition(Ctx);
    computeReachable(Ctx);   // uses last round's Sites for indirect targets
    Exec.InferredCells = computeCellConstancy(Ctx, Extents); // R4 (oracle)
    resolveSites(Ctx, Extents);                          // R6
    std::vector<uint64_t> FP = fingerprint(Ctx);
    if (FP == PrevFP)
      break;
    PrevFP = std::move(FP);
  }

  bool WeakOracle = false;
  for (const CellFact &Cell : Ctx.Cells)
    if (Cell.Constant && Cell.WeakStores)
      WeakOracle = true;

  InferResult Result;
  Result.ConstantCells = Exec.InferredCells;
  Result.Sites = std::move(Ctx.Sites);
  {
    std::vector<const EntryFact *> Sorted;
    for (const auto &[A, F] : Ctx.Entries) {
      (void)A;
      Sorted.push_back(&F);
    }
    std::sort(Sorted.begin(), Sorted.end(),
              [](const EntryFact *A, const EntryFact *B) {
                return A->At < B->At;
              });
    for (size_t I = 0; I < Sorted.size(); ++I) {
      const EntryFact &F = *Sorted[I];
      InferredRoutine R;
      R.Lo = F.At;
      R.Hi = I + 1 < Sorted.size() ? Sorted[I + 1]->At : Ctx.TE;
      if (F.At == Exec.image().Entry)
        R.Name = "entry";
      else if (F.At == Ctx.TB)
        R.Name = "text_start";
      else
        R.Name = "proc_" + std::to_string(F.At);
      R.Confidence = confidenceFor(F, WeakOracle);
      R.Votes = F.Votes;
      Result.Routines.push_back(std::move(R));
    }
  }

  for (const auto &[A, Res] : Result.Sites) {
    (void)A;
    bool Resolved = Res.K == IndirectResolution::Kind::Literal ||
                    Res.K == IndirectResolution::Kind::DispatchTable;
    if (Resolved) {
      ++Ctx.Stats.ResolvedSites;
      if (Res.Inferred)
        ++Ctx.Stats.InferredResolutions;
    } else {
      ++Ctx.Stats.UnresolvedSites;
    }
  }
  Result.Stats = Ctx.Stats;

  bumpStat("eel.infer.runs");
  bumpStat("eel.infer.rounds", Ctx.Stats.Rounds);
  bumpStat("eel.infer.routines", Result.Routines.size());
  bumpStat("eel.infer.constant_cells", Ctx.Stats.ConstantCells);
  bumpStat("eel.infer.resolved_sites", Ctx.Stats.ResolvedSites);
  bumpStat("eel.infer.inferred_resolutions", Ctx.Stats.InferredResolutions);
  bumpStat("eel.infer.unresolved_sites", Ctx.Stats.UnresolvedSites);
  return Result;
}
