//===- analysis/Verifier.cpp - Static soundness checker -----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/VerifyInternal.h"

#include "core/RegAlloc.h"
#include "core/Routine.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <vector>

using namespace eel;
using namespace eel::verify;

//===----------------------------------------------------------------------===//
// WorklistLiveness
//===----------------------------------------------------------------------===//

WorklistLiveness::WorklistLiveness(const Cfg &G) : Graph(G) {
  const TargetInfo &Target = G.target();
  const TargetConventions &Conv = Target.conventions();
  for (unsigned Reg = 1; Reg < Target.numRegisters(); ++Reg)
    All.insert(Reg);
  if (Target.hasConditionCodes())
    All.insert(RegIdCC);
  ReturnLive = (All - Conv.CallerSaved) | Conv.RetRegs;
  ReturnLive.insert(Conv.StackPointer);
  ReturnLive.insert(Conv.FramePointer);
  ReturnLive.remove(RegIdCC);

  size_t N = G.blocks().size();
  In.assign(N, RegSet());
  Out.assign(N, RegSet());

  // A genuine worklist (FIFO plus membership bits), unlike the production
  // solver's repeated full sweeps: a block is reprocessed only when one of
  // its successors' In sets changed. A vector with a head cursor instead
  // of a deque: one allocation, and total pushes are bounded by the
  // solver's convergence (a few times N in practice).
  std::vector<size_t> Work;
  Work.reserve(2 * N);
  std::vector<bool> Queued(N, true);
  for (size_t I = N; I-- > 0;)
    Work.push_back(I);
  size_t Head = 0;

  while (Head < Work.size()) {
    size_t Index = Work[Head++];
    Queued[Index] = false;
    const BasicBlock *B = G.blocks()[Index];

    RegSet NewOut = outOf(B);
    RegSet NewIn = NewOut;
    if (B->kind() == BlockKind::CallSurrogate) {
      NewIn = transferCall(NewOut);
    } else {
      for (size_t I = B->insts().size(); I-- > 0;) {
        const Instruction *Inst = B->insts()[I].Inst;
        NewIn.remove(Inst->writes());
        NewIn |= Inst->reads();
      }
    }
    if (NewIn == In[Index] && NewOut == Out[Index])
      continue;
    In[Index] = NewIn;
    Out[Index] = NewOut;
    for (const Edge *E : B->pred()) {
      size_t P = E->src()->id();
      if (!Queued[P]) {
        Queued[P] = true;
        Work.push_back(P);
      }
    }
  }
}

RegSet WorklistLiveness::outOf(const BasicBlock *B) const {
  if (B->kind() == BlockKind::Exit)
    return ReturnLive;
  RegSet Live;
  for (const Edge *E : B->succ()) {
    switch (E->kind()) {
    case EdgeKind::ExitReturn:
      Live |= ReturnLive;
      break;
    case EdgeKind::ExitInterJump:
    case EdgeKind::ExitUnresolved:
      Live |= All;
      break;
    default:
      Live |= In[E->dst()->id()];
      break;
    }
  }
  return Live;
}

RegSet WorklistLiveness::transferCall(RegSet LiveOut) const {
  const TargetConventions &Conv = Graph.target().conventions();
  LiveOut.remove(Conv.CallerSaved);
  LiveOut.insert(Conv.ArgRegs);
  LiveOut.insert(Conv.StackPointer);
  return LiveOut;
}

RegSet WorklistLiveness::liveBefore(const BasicBlock *B,
                                    unsigned InstIndex) const {
  RegSet Live = Out[B->id()];
  if (B->kind() == BlockKind::CallSurrogate)
    return transferCall(Live);
  for (size_t I = B->insts().size(); I-- > InstIndex;) {
    const Instruction *Inst = B->insts()[I].Inst;
    Live.remove(Inst->writes());
    Live |= Inst->reads();
  }
  return Live;
}

RegSet WorklistLiveness::liveOnEdge(const Edge *E) const {
  switch (E->kind()) {
  case EdgeKind::ExitReturn:
    return ReturnLive;
  case EdgeKind::ExitInterJump:
  case EdgeKind::ExitUnresolved:
    return All;
  default:
    return In[E->dst()->id()];
  }
}

//===----------------------------------------------------------------------===//
// Exposed audit helpers
//===----------------------------------------------------------------------===//

RegSet eel::auditLiveBefore(Routine &R, const BasicBlock *B,
                            unsigned InstIndex) {
  Cfg *G = R.controlFlowGraph();
  if (!G)
    return RegSet();
  WorklistLiveness Solver(*G);
  return Solver.liveBefore(B, InstIndex);
}

void eel::auditScavengeSite(const TargetInfo &Target,
                            const CodeSnippet &Snippet, const RegSet &LiveUsed,
                            const RegSet &LiveTruth,
                            const std::string &RoutineName, int BlockId,
                            Addr A, DiagnosticReport &Report) {
  // Re-run the allocator's decision procedure exactly as the pipeline does,
  // with the live set the pipeline used, then judge its grants against the
  // independent truth. planScavenge is the same code instantiateSnippet
  // realizes, minus the emission, so the audit stays cheap enough for the
  // writeEditedExecutable() gate.
  Expected<ScavengePlan> Plan = planScavenge(Target, Snippet, LiveUsed);
  Report.noteChecks();
  if (Plan.hasError()) {
    Report.add(VerifyPass::ScavengeAudit, DiagSeverity::Warning, RoutineName,
               BlockId, A, A != 0,
               "snippet allocation could not be re-planned for the audit: " +
                   Plan.error().describe());
    return;
  }
  RegSet Scavenged = Plan.value().GrantedSet - Plan.value().SpilledSet;
  RegSet LiveScavenged = Scavenged & LiveTruth;
  if (!LiveScavenged.empty()) {
    std::string Names;
    for (unsigned Reg : LiveScavenged) {
      if (!Names.empty())
        Names += ", ";
      Names += Target.regName(Reg);
    }
    Report.add(VerifyPass::ScavengeAudit, DiagSeverity::Error, RoutineName,
               BlockId, A, A != 0,
               "register(s) {" + Names +
                   "} were scavenged without a spill but are live at the "
                   "snippet site");
  }
  if (Snippet.clobbersCC() && Target.hasConditionCodes() &&
      LiveTruth.contains(RegIdCC) && !Plan.value().NeedCCSave)
    Report.add(VerifyPass::ScavengeAudit, DiagSeverity::Error, RoutineName,
               BlockId, A, A != 0,
               "snippet clobbers the condition codes, which are live at the "
               "site, without save/restore");
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

namespace {

void runRoutinePasses(RoutineCheckContext &Ctx, const VerifyOptions &Opts) {
  if (Opts.CheckCfg) {
    EEL_TRACE_SCOPE("verify.cfg_wellformed", "routine", Ctx.R.name());
    checkCfgWellFormed(Ctx);
  }
  if (Opts.CheckDelay) {
    EEL_TRACE_SCOPE("verify.delay_slot", "routine", Ctx.R.name());
    checkDelaySlotsIR(Ctx);
    if (Ctx.Edited)
      checkDelaySlotsImage(Ctx);
  }
  if (Opts.CheckScavenge) {
    EEL_TRACE_SCOPE("verify.scavenge_audit", "routine", Ctx.R.name());
    checkScavenging(Ctx);
  }
  if (Opts.CheckLayout && Ctx.Edited) {
    EEL_TRACE_SCOPE("verify.layout_consistency", "routine", Ctx.R.name());
    checkLayoutConsistency(Ctx);
  }
  if (Opts.CheckTranslation && Ctx.EditedExec) {
    EEL_TRACE_SCOPE("verify.translation_validation", "routine", Ctx.R.name());
    checkTranslation(Ctx);
  }
}

/// Fans the per-routine passes out over \p Threads workers and merges the
/// reports in routine-index order, so the result is identical for every
/// thread count.
DiagnosticReport
runOverRoutines(Executable &Exec, unsigned Threads, const VerifyOptions &Opts,
                const SxfFile *Edited, const FlatAddrMap *AddrMap,
                Executable *EditedExec, Addr TranslatorAddr) {
  const auto &Routines = Exec.routines();
  std::vector<DiagnosticReport> Slots(Routines.size());
  parallelForEach(Threads, Routines.size(), [&](size_t Index) {
    Routine &R = *Routines[Index];
    RoutineCheckContext Ctx(Exec, R);
    Ctx.G = R.isData() ? nullptr : R.controlFlowGraph();
    Ctx.Verbatim = isVerbatimRoutine(Exec, R);
    Ctx.Edited = Edited;
    Ctx.AddrMap = AddrMap;
    Ctx.EditedExec = EditedExec;
    Ctx.TranslatorAddr = TranslatorAddr;
    runRoutinePasses(Ctx, Opts);
    Slots[Index] = std::move(Ctx.Report);
  });
  DiagnosticReport Report;
  for (DiagnosticReport &Slot : Slots)
    Report.append(std::move(Slot));
  return Report;
}

unsigned resolveThreads(const Executable &Exec, const VerifyOptions &Opts) {
  return Opts.Threads ? Opts.Threads : Exec.effectiveThreads();
}

} // namespace

DiagnosticReport eel::verifyIR(Executable &Exec, const VerifyOptions &Opts) {
  EEL_TRACE_SCOPE("verifyIR");
  DiagnosticReport Report;
  Expected<bool> Analyzed = Exec.readContents();
  Report.noteChecks();
  if (Analyzed.hasError()) {
    Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
               "image is not analyzable: " + Analyzed.error().describe());
    return Report;
  }
  Report.append(runOverRoutines(Exec, resolveThreads(Exec, Opts), Opts,
                                nullptr, nullptr, nullptr, 0));
  return Report;
}

DiagnosticReport eel::verifyEdit(Executable &Exec, const SxfFile &Edited,
                                 const VerifyOptions &Opts) {
  EEL_TRACE_SCOPE("verifyEdit");
  DiagnosticReport Report;
  Expected<bool> Analyzed = Exec.readContents();
  Report.noteChecks();
  if (Analyzed.hasError()) {
    Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
               "image is not analyzable: " + Analyzed.error().describe());
    return Report;
  }
  const FlatAddrMap &AddrMap = Exec.addrMap();
  if (AddrMap.empty()) {
    Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
               "executable has no address map; verifyEdit must run after "
               "writeEditedExecutable()");
    return Report;
  }

  // The image-level entry check (pass 4): the new entry point must be the
  // edited address of the original one.
  Report.noteChecks();
  auto EntryIt = AddrMap.find(Exec.image().Entry);
  if (EntryIt == AddrMap.end())
    Report.add(VerifyPass::LayoutConsistency, DiagSeverity::Error, "", -1,
               Exec.image().Entry, true,
               "original entry point has no edited address");
  else if (Edited.Entry != EntryIt->second)
    Report.add(VerifyPass::LayoutConsistency, DiagSeverity::Error, "", -1,
               Edited.Entry, true,
               "edited entry point does not equal the edited address of the "
               "original entry point");

  // Translation validation needs the emitted image re-disassembled from
  // scratch. Open it serially (Threads=1): the per-routine fan-out below
  // builds each edited CFG from the worker that needs it, and two workers
  // never share an edited routine because original routines map into
  // disjoint edited extents.
  std::unique_ptr<Executable> EditedExec;
  Addr TranslatorAddr = 0;
  if (Opts.CheckTranslation) {
    Executable::Options ReOpts = Exec.options();
    ReOpts.Threads = 1;
    ReOpts.Verify = false;
    Expected<std::unique_ptr<Executable>> Reopened =
        Executable::openImage(Edited, ReOpts);
    Report.noteChecks();
    if (Reopened.hasError()) {
      Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
                 "edited image does not reload: " +
                     Reopened.error().describe());
    } else {
      EditedExec = Reopened.takeValue();
      Expected<bool> ReAnalyzed = EditedExec->readContents();
      if (ReAnalyzed.hasError()) {
        Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0,
                   false,
                   "edited image is not analyzable: " +
                       ReAnalyzed.error().describe());
        EditedExec.reset();
      } else {
        if (const SxfSymbol *Sym = Edited.findSymbol("__eel_translate"))
          TranslatorAddr = Sym->Value;
        // Pre-build the edited CFGs with one worker per edited routine, so
        // the fan-out below only ever reads cached graphs.
        const auto &EditedRoutines = EditedExec->routines();
        parallelForEach(resolveThreads(Exec, Opts), EditedRoutines.size(),
                        [&](size_t Index) {
                          if (!EditedRoutines[Index]->isData())
                            EditedRoutines[Index]->controlFlowGraph();
                        });
      }
    }
  }

  Report.append(runOverRoutines(Exec, resolveThreads(Exec, Opts), Opts,
                                &Edited, &AddrMap, EditedExec.get(),
                                TranslatorAddr));
  return Report;
}

DiagnosticReport eel::lintImage(const SxfFile &Image,
                                const VerifyOptions &Opts) {
  EEL_TRACE_SCOPE("lintImage");
  DiagnosticReport Report;
  Executable::Options OpenOpts;
  OpenOpts.Threads = Opts.Threads ? Opts.Threads : 1;
  Expected<std::unique_ptr<Executable>> Opened =
      Executable::openImage(Image, OpenOpts);
  Report.noteChecks();
  if (Opened.hasError()) {
    Report.add(VerifyPass::ImageLoad, DiagSeverity::Error, "", -1, 0, false,
               "image does not load: " + Opened.error().describe());
    return Report;
  }
  std::unique_ptr<Executable> Exec = Opened.takeValue();
  // Content-level checks need the producing executable's intent (address
  // map, edits); standalone lint runs the structural IR passes only.
  VerifyOptions LintOpts = Opts;
  LintOpts.CheckScavenge = false;
  LintOpts.CheckLayout = false;
  LintOpts.CheckTranslation = false;
  Report.append(verifyIR(*Exec, LintOpts));
  return Report;
}
