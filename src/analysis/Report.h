//===- analysis/Report.h - Machine-readable run reports ---------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "eel-report/1" JSON envelope: one provenance-carrying document
/// combining input identity (content hash), the options a pipeline ran
/// with, a phase-timing tree reconstructed from drained trace spans,
/// counter and histogram tables, and verifier findings. eel-report emits
/// it for edit pipelines, eel-lint --json and sxf-fuzz --json reuse the
/// same envelope for their diagnostics, so downstream tooling parses one
/// schema regardless of which tool produced the document.
///
/// Phase trees are rebuilt from the flat span list by interval
/// containment: spans from one thread are sorted by (start ascending,
/// duration descending, push-sequence descending) and nested with a stack.
/// The sequence tiebreak matters for zero-length spans — rings record
/// spans at completion, so at equal start and duration a parent has a
/// HIGHER sequence number than its children.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ANALYSIS_REPORT_H
#define EEL_ANALYSIS_REPORT_H

#include "analysis/Diagnostics.h"
#include "core/Executable.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace eel {

/// FNV-1a 64-bit content hash; used for input provenance in run reports.
inline uint64_t fnv1a64(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// FNV-1a over a string (tool specs, canonical option strings).
inline uint64_t fnv1a64(std::string_view S) {
  return fnv1a64(reinterpret_cast<const uint8_t *>(S.data()), S.size());
}

/// Canonical, stable rendering of every Executable::Options field, in
/// declaration order (`rewrite_data_pointers=1;...;trace=0`). Two option
/// sets produce the same string iff they configure identical pipelines —
/// the digestable identity of "how" a run was configured, alongside the
/// image hash's "what".
std::string canonicalOptionsString(const Executable::Options &Opts);

/// Digest of an option set, for provenance records and cache keys.
inline uint64_t optionsDigest(const Executable::Options &Opts) {
  return fnv1a64(canonicalOptionsString(Opts));
}

/// Combined provenance key folding the image content hash, the tool-spec
/// digest, and the options digest — in that fixed order — into one value.
/// An edit-result or analysis cache MUST key on this (not the image hash
/// alone): the image bytes say nothing about which tool edited them or
/// which options shaped analysis and output, and a cache keyed on content
/// alone serves stale results the moment either differs.
inline uint64_t provenanceKey(uint64_t ImageHash, uint64_t ToolDigest,
                              uint64_t OptsDigest) {
  uint64_t Parts[3] = {ImageHash, ToolDigest, OptsDigest};
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint64_t Part : Parts)
    for (unsigned I = 0; I < 8; ++I) {
      H ^= (Part >> (8 * I)) & 0xff;
      H *= 0x100000001b3ull;
    }
  return H;
}

/// One node of the aggregated phase-timing tree. Spans with the same name
/// under the same parent path merge: Count is how many spans merged,
/// TotalNs their summed duration.
struct PhaseNode {
  std::string Name;
  uint64_t TotalNs = 0;
  uint64_t Count = 0;
  std::vector<PhaseNode> Children;
};

/// Reconstructs an aggregated phase tree from flat \p Events (any thread
/// mix). Per-thread nesting is derived from interval containment; the
/// per-name aggregation across threads makes the tree's *shape* and span
/// counts deterministic even though durations are wall-clock.
std::vector<PhaseNode> buildPhaseTree(const std::vector<TraceEvent> &Events);

/// Builder for one "eel-report/1" document.
class RunReport {
public:
  explicit RunReport(std::string Tool) : Tool(std::move(Tool)) {}

  /// Records one input file: path plus FNV-1a hash of its bytes.
  void addInput(const std::string &Path, uint64_t Hash, uint64_t SizeBytes);

  /// Records the run's full provenance: image content hash plus the
  /// tool-spec and options digests, rendered as a "provenance" object with
  /// the combined provenanceKey(). Reports carrying only the image hash
  /// were ambiguous — identical inputs edited by different tools or under
  /// different options hashed the same.
  void setProvenance(uint64_t ImageHash, uint64_t ToolDigest,
                     uint64_t OptsDigest);

  /// Records one option the run was configured with (stringified value).
  void addOption(const std::string &Key, const std::string &Value);
  void addOption(const std::string &Key, uint64_t Value) {
    addOption(Key, std::to_string(Value));
  }
  void addOption(const std::string &Key, bool Value) {
    addOption(Key, Value ? std::string("true") : std::string("false"));
  }

  /// Snapshots the global counter and histogram registries into the
  /// report. Call from a quiescent point after the instrumented work.
  void captureMetrics();

  /// Builds the phase-timing tree from \p Events (typically
  /// TraceCollector::instance().drain()).
  void capturePhases(const std::vector<TraceEvent> &Events);

  /// Copies verifier findings into the report.
  void captureDiagnostics(const DiagnosticReport &Report);

  /// Extra tool-specific summary fields, spliced verbatim under "summary".
  /// \p Json must be a complete JSON value.
  void setSummaryJson(std::string Json) { SummaryJson = std::move(Json); }

  /// Renders the complete envelope:
  ///   {"schema": "eel-report/1", "tool": ..., "inputs": [...],
  ///    "options": {...}, "phases": [...], "counters": {...},
  ///    "histograms": [...], "diagnostics": [...],
  ///    "checks_run": N, "error_count": N, "summary": ...}
  std::string renderJson() const;

private:
  struct Input {
    std::string Path;
    uint64_t Hash;
    uint64_t SizeBytes;
  };

  struct Provenance {
    uint64_t ImageHash = 0;
    uint64_t ToolDigest = 0;
    uint64_t OptsDigest = 0;
    bool Set = false;
  };

  std::string Tool;
  std::vector<Input> Inputs;
  Provenance Prov;
  std::vector<std::pair<std::string, std::string>> Options;
  std::vector<PhaseNode> Phases;
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<HistogramSnapshot> Histograms;
  std::vector<Diagnostic> Diagnostics;
  unsigned ChecksRun = 0;
  uint64_t DroppedSpans = 0;
  bool HasPhases = false;
  std::string SummaryJson;
};

} // namespace eel

#endif // EEL_ANALYSIS_REPORT_H
