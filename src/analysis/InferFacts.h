//===- analysis/InferFacts.h - Facts for heuristic disassembly ---*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fact vocabulary of eel-infer (analysis/Infer.h): plain records the
/// mutually-recursive rules derive from a text segment that has no (or
/// untrusted) symbols, in the style of datalog disassembly. Every container
/// is sorted by address so the fixpoint is deterministic by construction —
/// iteration order never depends on hashing, threads, or allocation.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ANALYSIS_INFERFACTS_H
#define EEL_ANALYSIS_INFERFACTS_H

#include "core/Slice.h"
#include "sxf/Sxf.h"

#include <map>
#include <string>
#include <vector>

namespace eel {

/// How strongly the evidence supports an inferred conclusion. Inference is
/// heuristic: conclusions are backed by the editor's behavioral backstops
/// (precise cell/table rewriting, VM-verified identity), and the
/// confidence tells tools how much independent evidence agreed.
enum class InferConfidence : uint8_t {
  None = 0, ///< Not inferred (symboled analysis).
  Low = 1,  ///< A single weak rule fired (e.g. the text-start fallback).
  Medium = 2, ///< One strong rule, or two weak rules agreeing.
  High = 3, ///< Independent strong rules agree (e.g. called + prologue).
};

inline const char *inferConfidenceName(InferConfidence C) {
  switch (C) {
  case InferConfidence::None:
    return "none";
  case InferConfidence::Low:
    return "low";
  case InferConfidence::Medium:
    return "medium";
  case InferConfidence::High:
    return "high";
  }
  return "unknown";
}

/// One candidate routine entry and the evidence votes behind it.
struct EntryFact {
  Addr At = 0;
  unsigned Votes = 0;        ///< Weighted evidence total (see Infer.cpp).
  bool IsImageEntry = false; ///< The program entry point (always kept).
  bool IsCallTarget = false; ///< Target of a direct call in plausible code.
  bool IsCodePointer = false; ///< An isolated data word points here.
  bool HasPrologue = false;  ///< The word here allocates a stack frame.
  bool FromResolution = false; ///< Target of an inferred indirect transfer.
};

/// A word-aligned data cell whose initial contents look like a pointer
/// (into text, or into a data segment — a possible table base), plus what
/// the store-alias rule concluded about it.
struct CellFact {
  Addr Cell = 0;
  uint32_t Value = 0;
  bool PointsToText = false; ///< Value is an aligned text address.
  bool InTableRun = false;   ///< Part of a consecutive run of text
                             ///  pointers — a dispatch table, not a cell.
  bool Constant = false;     ///< No store in the program can write it.
  /// Constancy was proven only by ignoring sub-word stores through
  /// unprovable pointers (byte I/O buffers); caps confidence at Medium.
  bool WeakStores = false;
};

/// One store instruction's aliasing classification.
struct StoreFact {
  Addr At = 0;
  unsigned Width = 0;
  bool StackRelative = false;   ///< Base register is the stack pointer.
  bool AddrKnown = false;       ///< The slice proved the written address.
  Addr Target = 0;              ///< Written address when AddrKnown.
};

/// Table-idiom evidence at one indirect jump (from core/Slice.h), plus
/// where the jump sits.
struct TableFact {
  Addr Jump = 0;
  TableEvidence Evidence;
};

/// One inferred routine of the final fixpoint.
struct InferredRoutine {
  Addr Lo = 0;
  Addr Hi = 0;
  std::string Name;
  InferConfidence Confidence = InferConfidence::Low;
  unsigned Votes = 0;
};

/// Fixpoint bookkeeping, exported for reports and benches.
struct InferStats {
  unsigned Rounds = 0;          ///< Fixpoint iterations until stable.
  unsigned PlausibleWords = 0;  ///< Text words that decode validly.
  unsigned ImplausibleWords = 0; ///< Text words excluded as data-in-text.
  unsigned ReachableWords = 0;  ///< Words reachable from the entry set.
  unsigned CallTargets = 0;     ///< Distinct direct-call targets.
  unsigned PrologueSites = 0;   ///< Frame-allocating words.
  unsigned CodePointers = 0;    ///< Isolated data words aimed at text.
  unsigned TableRunWords = 0;   ///< Data words inside table-like runs.
  unsigned ConstantCells = 0;   ///< Cells the store-alias rule proved.
  unsigned ResolvedSites = 0;   ///< Indirect sites resolved statically.
  unsigned InferredResolutions = 0; ///< ... of those, only via cell facts.
  unsigned UnresolvedSites = 0; ///< Still unanalyzable after the fixpoint.
};

} // namespace eel

#endif // EEL_ANALYSIS_INFERFACTS_H
