//===- analysis/VerifyPasses.cpp - The verifier's passes ----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five checking passes (see Verifier.h for the catalogue). Each pass
/// works from the public analysis API only — CFGs, liveness, the address
/// map, and raw image words — never from the layout engine's internal
/// bookkeeping, so a pass can only agree with the editor when both
/// independently arrive at the same answer.
///
//===----------------------------------------------------------------------===//

#include "analysis/VerifyInternal.h"

#include "core/RegAlloc.h"
#include "core/Routine.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace eel;
using namespace eel::verify;

namespace {

std::string hex(Addr A) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%x", A);
  return Buf;
}

std::string regList(const TargetInfo &Target, const RegSet &Set) {
  std::string S;
  for (unsigned Reg : Set) {
    if (!S.empty())
      S += ", ";
    S += Target.regName(Reg);
  }
  return S;
}

/// Blocks referenced by any pending edit (directly, or as an endpoint of an
/// edited edge), one bit per dense block id. Image-side word checks skip
/// them: inserted code shifts the mapped position of everything at and
/// around the edit. A flat bitmap (single allocation) instead of a node-
/// based set keeps the per-routine setup cheap enough for the
/// writeEditedExecutable() gate.
class TouchedBlocks {
public:
  explicit TouchedBlocks(const Cfg &G) : Bits(G.blocks().size(), false) {
    for (const Edit &E : G.edits()) {
      if (E.Block)
        Bits[E.Block->id()] = true;
      if (E.E) {
        Bits[E.E->src()->id()] = true;
        Bits[E.E->dst()->id()] = true;
      }
    }
  }
  bool count(const BasicBlock *B) const { return Bits[B->id()]; }

private:
  std::vector<bool> Bits;
};

bool blockOrSuccTouched(const TouchedBlocks &Touched, const BasicBlock *B) {
  if (Touched.count(B))
    return true;
  for (const Edge *E : B->succ())
    if (Touched.count(E->dst()))
      return true;
  return false;
}

const Edge *succOfKind(const BasicBlock *B, EdgeKind K) {
  for (const Edge *E : B->succ())
    if (E->kind() == K)
      return E;
  return nullptr;
}

} // namespace

bool eel::verify::isVerbatimRoutine(Executable &Exec, Routine &R) {
  if (R.isData())
    return true;
  Cfg *G = R.controlFlowGraph();
  if (!G)
    return true;
  return G->unsupported() ||
         (!G->complete() && !Exec.options().EnableRuntimeTranslation);
}

//===----------------------------------------------------------------------===//
// Pass 1: CFG well-formedness
//===----------------------------------------------------------------------===//

void eel::verify::checkCfgWellFormed(RoutineCheckContext &Ctx) {
  Cfg *G = Ctx.G;
  if (!G)
    return; // data routine: no graph to check
  if (G->unsupported())
    return; // intentionally partial; the editor copies it verbatim

  Routine &R = Ctx.R;

  // Edge symmetry: every edge is registered with both endpoints. The lists
  // are what every analysis traverses; an edge missing from one side means
  // forward and backward walks disagree about the graph.
  for (const auto &E : G->edges()) {
    Ctx.check();
    if (!E->src() || !E->dst()) {
      Ctx.Report.add(VerifyPass::CfgWellFormed, DiagSeverity::Error, R.name(),
                     -1, 0, false, "edge with a null endpoint");
      continue;
    }
    const auto &Succ = E->src()->succ();
    const auto &Pred = E->dst()->pred();
    if (std::find(Succ.begin(), Succ.end(), E) == Succ.end())
      Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error,
               static_cast<int>(E->src()->id()), E->src()->anchor(), true,
               "edge not recorded in its source block's successor list");
    if (std::find(Pred.begin(), Pred.end(), E) == Pred.end())
      Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error,
               static_cast<int>(E->dst()->id()), E->dst()->anchor(), true,
               "edge not recorded in its destination block's predecessor "
               "list");
  }

  for (const auto &BP : G->blocks()) {
    const BasicBlock *B = BP;
    const int Id = static_cast<int>(B->id());
    switch (B->kind()) {
    case BlockKind::Normal: {
      Ctx.check();
      if (B->empty()) {
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                 B->anchor(), true, "empty normal block");
        break;
      }
      // Single entry: instructions are contiguous from the anchor, so
      // control entering at the head reaches exactly these instructions and
      // no edge can land mid-block (every edge targets an anchor).
      for (unsigned I = 0; I < B->size(); ++I) {
        Addr Expect = B->anchor() + 4 * I;
        if (B->insts()[I].OrigAddr != Expect)
          Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                   B->insts()[I].OrigAddr, true,
                   "instruction not contiguous with its block head " +
                       hex(B->anchor()));
        if (!R.contains(B->insts()[I].OrigAddr))
          Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                   B->insts()[I].OrigAddr, true,
                   "instruction outside the routine's extent");
      }
      // Only the last instruction may transfer control.
      for (unsigned I = 0; I + 1 < B->size(); ++I)
        if (B->insts()[I].Inst->isControlTransfer())
          Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                   B->insts()[I].OrigAddr, true,
                   "control transfer in the middle of a block");

      // Successor arity per terminator kind.
      const Instruction *Term = B->terminator();
      Addr A = B->insts().back().OrigAddr;
      unsigned NSucc = static_cast<unsigned>(B->succ().size());
      if (!Term) {
        if (NSucc > 1)
          Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id, A,
                   true, "fallthrough block with multiple successors");
        else if (NSucc == 1 &&
                 B->succ()[0]->kind() != EdgeKind::Fallthrough)
          Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id, A,
                   true, "fallthrough block with a non-fallthrough edge");
        else if (NSucc == 0 && G->blockAt(A + 4))
          Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id, A,
                   true, "missing fallthrough edge to block at " +
                             hex(A + 4));
        break;
      }
      unsigned Want = 0;
      const char *Shape = nullptr;
      switch (Term->kind()) {
      case InstKind::Branch:
        Want = 2;
        Shape = "conditional branch";
        break;
      case InstKind::Jump:
      case InstKind::Call:
      case InstKind::IndirectCall:
      case InstKind::Return:
      case InstKind::IndirectJump:
        Want = 1;
        Shape = "one-successor transfer";
        break;
      default:
        break;
      }
      // Dispatch-table jumps fan out *after* the delay block, so the jump
      // block itself still has exactly one outgoing edge — except on a
      // machine without delay slots, where the case edges leave the jump
      // block directly and any arity is legal.
      if (Term->kind() == InstKind::IndirectJump && !Term->hasDelaySlot() &&
          NSucc >= 1 && B->succ()[0]->kind() == EdgeKind::SwitchCase)
        Shape = nullptr;
      if (Shape && NSucc != Want)
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id, A, true,
                 std::string(Shape) + " with " + std::to_string(NSucc) +
                     " successors (expected " + std::to_string(Want) + ")");

      // Edges target block heads: a direct transfer's internal target must
      // be the anchor of the block its path reaches.
      if (Term->kind() == InstKind::Branch || Term->kind() == InstKind::Jump) {
        std::optional<Addr> T = Term->directTarget(A);
        if (T && R.contains(*T)) {
          Ctx.check();
          const BasicBlock *Dst = G->blockAt(*T);
          if (!Dst)
            Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id, A,
                     true,
                     "transfer target " + hex(*T) +
                         " is not the head of any block");
          else {
            // Follow the path (through a delay block, if present) and make
            // sure it lands exactly on that head.
            EdgeKind K = Term->kind() == InstKind::Branch
                             ? EdgeKind::Taken
                             : EdgeKind::UncondJump;
            const Edge *First = succOfKind(B, K);
            const BasicBlock *Reached = First ? First->dst() : nullptr;
            if (Reached && Reached->kind() == BlockKind::DelaySlot) {
              const Edge *Second = succOfKind(Reached, K);
              Reached = Second ? Second->dst() : nullptr;
            }
            if (Reached && Reached->kind() == BlockKind::Normal &&
                Reached->anchor() != *T)
              Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id, A,
                       true,
                       "edge lands at " + hex(Reached->anchor()) +
                           " instead of the transfer target " + hex(*T) +
                           " (edge into the middle of a block)");
          }
        }
      }
      break;
    }
    case BlockKind::DelaySlot: {
      // No dangling delay-slot instructions: a delay block is always a
      // one-instruction bridge spliced into exactly one edge — except after
      // a dispatch-table jump, where the one delay block fans out a
      // SwitchCase edge per distinct case target.
      Ctx.check();
      if (B->size() != 1)
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                 B->anchor(), true,
                 "delay-slot block holds " + std::to_string(B->size()) +
                     " instructions (expected 1)");
      bool Dispatch = B->pred().size() == 1 &&
                      B->pred()[0]->kind() == EdgeKind::SwitchCase;
      if (B->pred().size() != 1 || B->succ().empty() ||
          (B->succ().size() != 1 && !Dispatch))
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                 B->anchor(), true,
                 "dangling delay-slot block (" +
                     std::to_string(B->pred().size()) + " predecessors, " +
                     std::to_string(B->succ().size()) + " successors)");
      break;
    }
    case BlockKind::CallSurrogate:
      Ctx.check();
      if (!B->empty())
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                 B->anchor(), true,
                 "call-surrogate block holds instructions");
      if (B->pred().size() != 1 || B->succ().size() > 1)
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                 B->anchor(), true, "malformed call-surrogate linkage");
      break;
    case BlockKind::Entry:
      Ctx.check();
      if (!B->pred().empty() || B->succ().size() > 1)
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                 B->anchor(), true, "malformed entry pseudo block");
      break;
    case BlockKind::Exit:
      Ctx.check();
      if (!B->succ().empty())
        Ctx.diag(VerifyPass::CfgWellFormed, DiagSeverity::Error, Id,
                 B->anchor(), true, "exit block with successors");
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Pass 2: delay-slot / annul invariants
//===----------------------------------------------------------------------===//

namespace {

/// Expects \p E to lead (directly, or through one DelaySlot block holding
/// the instruction at \p DelayAddr) to a block; reports deviations.
/// Returns the final destination or null.
const BasicBlock *expectDelayPath(RoutineCheckContext &Ctx,
                                  const BasicBlock *B, const Edge *E,
                                  bool WantDelay, Addr DelayAddr,
                                  const char *PathName) {
  const int Id = static_cast<int>(B->id());
  Addr A = DelayAddr - 4;
  if (!E) {
    Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
             std::string("missing ") + PathName + " edge");
    return nullptr;
  }
  const BasicBlock *D = E->dst();
  if (!WantDelay) {
    if (D->kind() == BlockKind::DelaySlot)
      Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
               std::string(PathName) +
                   " path carries a delay-slot instruction that must not "
                   "execute there");
    return D;
  }
  if (D->kind() != BlockKind::DelaySlot) {
    Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
             std::string(PathName) +
                 " path is missing its delay-slot instruction");
    return D;
  }
  if (D->size() != 1 || D->insts()[0].OrigAddr != DelayAddr)
    Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error,
             static_cast<int>(D->id()), D->anchor(), true,
             std::string(PathName) + " delay block does not hold the slot "
                                     "instruction at " +
                 hex(DelayAddr));
  if (D->succ().size() != 1)
    return nullptr;
  return D->succ()[0]->dst();
}

} // namespace

void eel::verify::checkDelaySlotsIR(RoutineCheckContext &Ctx) {
  Cfg *G = Ctx.G;
  if (!G || G->unsupported())
    return;
  Routine &R = Ctx.R;

  for (const auto &BP : G->blocks()) {
    const BasicBlock *B = BP;
    if (B->kind() != BlockKind::Normal || B->empty())
      continue;
    const Instruction *Term = B->terminator();
    if (!Term)
      continue;
    const int Id = static_cast<int>(B->id());
    Addr A = B->insts().back().OrigAddr;
    Addr DelayAddr = A + 4;
    DelayBehavior Delay = Term->delayBehavior();
    bool HasDelay = Term->hasDelaySlot();

    if (HasDelay && Delay != DelayBehavior::AnnulAlways &&
        !R.contains(DelayAddr)) {
      Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
               "delay slot lies outside the routine");
      continue;
    }

    switch (Term->kind()) {
    case InstKind::Branch: {
      Ctx.check();
      if (HasDelay && Delay == DelayBehavior::AnnulAlways) {
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
                 "conditional branch with annul-always delay behavior");
        break;
      }
      // Taken path always executes the delay instruction (Figure 3) — and
      // on a machine without delay slots must not carry one at all.
      const BasicBlock *TakenD =
          expectDelayPath(Ctx, B, succOfKind(B, EdgeKind::Taken),
                          /*WantDelay=*/HasDelay, DelayAddr, "taken");
      (void)TakenD;
      // Not-taken path: executes it only when not annulled.
      bool FallWantsDelay = HasDelay && Delay != DelayBehavior::AnnulUntaken;
      const BasicBlock *FallD =
          expectDelayPath(Ctx, B, succOfKind(B, EdgeKind::NotTaken),
                          FallWantsDelay, DelayAddr, "not-taken");
      Addr FallAddr = A + (HasDelay ? 8 : 4);
      if (FallD && FallD->kind() == BlockKind::Normal &&
          FallD->anchor() != FallAddr)
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
                 "branch fallthrough lands at " + hex(FallD->anchor()) +
                     " instead of " + hex(FallAddr));
      // Duplicated copies must duplicate the same instruction.
      if (HasDelay && Delay == DelayBehavior::Always) {
        const Edge *TE = succOfKind(B, EdgeKind::Taken);
        const Edge *FE = succOfKind(B, EdgeKind::NotTaken);
        if (TE && FE && TE->dst()->kind() == BlockKind::DelaySlot &&
            FE->dst()->kind() == BlockKind::DelaySlot &&
            TE->dst()->size() == 1 && FE->dst()->size() == 1 &&
            TE->dst()->insts()[0].Inst->word() !=
                FE->dst()->insts()[0].Inst->word())
          Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
                   "taken and not-taken copies of the delay instruction "
                   "differ");
      }
      break;
    }
    case InstKind::Jump: {
      Ctx.check();
      expectDelayPath(Ctx, B, succOfKind(B, EdgeKind::UncondJump),
                      HasDelay && Delay != DelayBehavior::AnnulAlways,
                      DelayAddr, "jump");
      break;
    }
    case InstKind::Call:
    case InstKind::IndirectCall: {
      Ctx.check();
      const BasicBlock *After =
          expectDelayPath(Ctx, B, succOfKind(B, EdgeKind::CallFlow),
                          /*WantDelay=*/HasDelay, DelayAddr, "call");
      if (After && After->kind() != BlockKind::CallSurrogate)
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
                 "call delay slot does not lead to a call surrogate");
      break;
    }
    case InstKind::Return: {
      Ctx.check();
      const BasicBlock *After =
          expectDelayPath(Ctx, B, succOfKind(B, EdgeKind::ExitReturn),
                          /*WantDelay=*/HasDelay, DelayAddr, "return");
      if (After && After->kind() != BlockKind::Exit)
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
                 "return delay slot does not lead to the exit block");
      break;
    }
    case InstKind::IndirectJump: {
      Ctx.check();
      if (HasDelay) {
        if (B->succ().size() == 1 &&
            B->succ()[0]->dst()->kind() != BlockKind::DelaySlot)
          Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
                   "indirect jump without its delay-slot block");
      } else {
        for (const Edge *E : B->succ())
          if (E->dst()->kind() == BlockKind::DelaySlot)
            Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id, A, true,
                     "indirect jump on a delay-slot-free machine grew a "
                     "delay-slot block");
      }
      break;
    }
    default:
      break;
    }
  }
}

void eel::verify::checkDelaySlotsImage(RoutineCheckContext &Ctx) {
  Cfg *G = Ctx.G;
  if (!G || G->unsupported() || Ctx.Verbatim || !Ctx.Edited || !Ctx.AddrMap)
    return;
  Executable &Exec = Ctx.Exec;
  const TargetInfo &Target = Exec.target();
  const FlatAddrMap &Map = *Ctx.AddrMap;
  TouchedBlocks Touched(*G);

  for (const auto &BP : G->blocks()) {
    const BasicBlock *B = BP;
    if (B->kind() != BlockKind::Normal || B->empty())
      continue;
    const Instruction *Term = B->terminator();
    if (!Term)
      continue;
    Addr A = B->insts().back().OrigAddr;
    const int Id = static_cast<int>(B->id());
    // Edits at or around the terminator shift its mapped position onto
    // inserted code; those sites are covered by translation validation.
    if (blockOrSuccTouched(Touched, B))
      continue;
    auto MappedA = Map.find(A);
    if (MappedA == Map.end())
      continue;

    if (Term->kind() == InstKind::Branch) {
      Ctx.check();
      std::optional<MachWord> NewW = Ctx.Edited->readWord(MappedA->second);
      if (!NewW)
        continue;
      if (Target.classify(*NewW) != InstCategory::BranchDirect ||
          Target.isConditional(*NewW) != Term->isConditional()) {
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id,
                 MappedA->second, true,
                 "re-laid-out branch changed instruction shape");
        continue;
      }
      if (Target.delayBehavior(*NewW) != Term->delayBehavior()) {
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id,
                 MappedA->second, true,
                 "re-laid-out branch changed its annul behavior");
        continue;
      }
      if (!Term->hasDelaySlot())
        continue; // no slot word to audit on a delay-slot-free machine
      std::optional<MachWord> OrigDelay = Exec.fetchWord(A + 4);
      std::optional<MachWord> Slot =
          Ctx.Edited->readWord(MappedA->second + 4);
      if (!Slot || !OrigDelay)
        continue;
      auto MappedDelay = Map.find(A + 4);
      bool Folded = MappedDelay != Map.end() &&
                    MappedDelay->second == MappedA->second + 4;
      if (Folded) {
        if (*Slot != *OrigDelay)
          Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id,
                   MappedA->second + 4, true,
                   "folded delay slot holds the wrong instruction");
      } else if (*Slot != Target.nopWord()) {
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id,
                 MappedA->second + 4, true,
                 "materialized branch must carry a nop in its delay slot");
      }
    } else if ((Term->kind() == InstKind::Call ||
                Term->kind() == InstKind::Return) &&
               Term->hasDelaySlot()) {
      // Call and return delay slots are uneditable and always emitted
      // verbatim right after the transfer.
      Ctx.check();
      auto MappedDelay = Map.find(A + 4);
      std::optional<MachWord> OrigDelay = Exec.fetchWord(A + 4);
      if (MappedDelay == Map.end() || !OrigDelay)
        continue;
      std::optional<MachWord> Slot = Ctx.Edited->readWord(MappedDelay->second);
      if (Slot && *Slot != *OrigDelay)
        Ctx.diag(VerifyPass::DelaySlot, DiagSeverity::Error, Id,
                 MappedDelay->second, true,
                 "uneditable delay slot was not copied verbatim");
    }
  }
}

//===----------------------------------------------------------------------===//
// Pass 3: scavenging audit
//===----------------------------------------------------------------------===//

void eel::verify::checkScavenging(RoutineCheckContext &Ctx) {
  Cfg *G = Ctx.G;
  if (!G || !G->edited() || G->unsupported())
    return;
  Routine &R = Ctx.R;
  const TargetInfo &Target = Ctx.Exec.target();
  Liveness *Prod = R.liveness();
  WorklistLiveness Ind(*G);

  for (const Edit &E : G->edits()) {
    if (!E.Snippet)
      continue;
    RegSet Used, Truth;
    int Id = -1;
    Addr Site = 0;
    bool HasSite = false;
    switch (E.K) {
    case Edit::Kind::Before:
      Used = Prod->liveBefore(E.Block, E.InstIndex);
      Truth = Ind.liveBefore(E.Block, E.InstIndex);
      Id = static_cast<int>(E.Block->id());
      if (E.InstIndex < E.Block->size()) {
        Site = E.Block->insts()[E.InstIndex].OrigAddr;
        HasSite = true;
      }
      break;
    case Edit::Kind::After:
      Used = Prod->liveAfter(E.Block, E.InstIndex);
      Truth = Ind.liveAfter(E.Block, E.InstIndex);
      Id = static_cast<int>(E.Block->id());
      if (E.InstIndex < E.Block->size()) {
        Site = E.Block->insts()[E.InstIndex].OrigAddr;
        HasSite = true;
      }
      break;
    case Edit::Kind::OnEdge:
      Used = Prod->liveOnEdge(E.E);
      Truth = Ind.liveOnEdge(E.E);
      Id = static_cast<int>(E.E->src()->id());
      Site = E.E->src()->anchor();
      HasSite = true;
      break;
    default:
      continue; // Delete/Replace carry no snippet
    }

    // The production analysis and the independent solver must agree on the
    // full live set, not just on the registers the snippet happened to get.
    Ctx.check();
    if (Used != Truth) {
      RegSet Under = Truth - Used;
      RegSet Over = Used - Truth;
      std::string Msg = "snippet-site liveness mismatch:";
      if (!Under.empty())
        Msg += " production analysis misses live {" +
               regList(Target, Under) + "}";
      if (!Over.empty())
        Msg += (Under.empty() ? " " : ";") + std::string(" production "
               "analysis overstates {") + regList(Target, Over) + "}";
      Ctx.diag(VerifyPass::ScavengeAudit, DiagSeverity::Error, Id, Site,
               HasSite, std::move(Msg));
    }

    // The site-level grant audit only has signal when the live sets
    // diverge: the allocator grants without spill exclusively from
    // Universe - Used, which cannot intersect Truth when Used == Truth.
    // Skipping the tautological case keeps the pass cheap enough for the
    // writeEditedExecutable() gate.
    if (Used != Truth)
      auditScavengeSite(Target, *E.Snippet, Used, Truth, R.name(), Id, Site,
                        Ctx.Report);
    else
      Ctx.check();
  }
}

//===----------------------------------------------------------------------===//
// Pass 4: layout / branch-target consistency
//===----------------------------------------------------------------------===//

namespace {

/// Decodes a stub at \p At in the edited image: skips straight-line edge
/// code until the first direct unconditional transfer and returns its
/// target; nullopt when the stub cannot be followed statically (the caller
/// downgrades to a note) and sets \p Bad on a malformed stub.
std::optional<Addr> followStub(const SxfFile &Edited, const TargetInfo &Target,
                               Addr At, bool &Bad, bool &Opaque) {
  Bad = Opaque = false;
  for (unsigned Step = 0; Step < 128; ++Step, At += 4) {
    std::optional<MachWord> W = Edited.readWord(At);
    if (!W) {
      Bad = true;
      return std::nullopt;
    }
    InstCategory Cat = Target.classify(*W);
    if (Cat == InstCategory::BranchDirect || Cat == InstCategory::JumpDirect) {
      if (Target.isConditional(*W)) {
        Opaque = true; // conditional edge code; cannot follow statically
        return std::nullopt;
      }
      return Target.directTarget(*W, At);
    }
    if (Cat == InstCategory::IndirectJump || Cat == InstCategory::Invalid) {
      Opaque = Cat == InstCategory::IndirectJump;
      Bad = Cat == InstCategory::Invalid;
      return std::nullopt;
    }
  }
  Bad = true;
  return std::nullopt;
}

} // namespace

void eel::verify::checkLayoutConsistency(RoutineCheckContext &Ctx) {
  if (!Ctx.Edited || !Ctx.AddrMap)
    return;
  Routine &R = Ctx.R;
  Executable &Exec = Ctx.Exec;
  const TargetInfo &Target = Exec.target();
  const FlatAddrMap &Map = *Ctx.AddrMap;
  auto Mapped = [&Map](Addr A) -> std::optional<Addr> {
    auto It = Map.find(A);
    if (It == Map.end())
      return std::nullopt;
    return It->second;
  };

  if (Ctx.Verbatim) {
    if (R.isData())
      return;
    // Verbatim copies still patch direct transfers that target another
    // routine's entry point (runVerbatim's contract); check exactly those.
    for (Addr A = R.startAddr(); A + 4 <= R.endAddr(); A += 4) {
      std::optional<MachWord> W = Exec.fetchWord(A);
      if (!W)
        break;
      std::optional<Addr> T = Target.directTarget(*W, A);
      if (!T || R.contains(*T))
        continue;
      Routine *Dest = Exec.routineContaining(*T);
      if (!Dest ||
          std::find(Dest->entryPoints().begin(), Dest->entryPoints().end(),
                    *T) == Dest->entryPoints().end())
        continue;
      std::optional<Addr> NewPC = Mapped(A), NewT = Mapped(*T);
      if (!NewPC || !NewT)
        continue;
      Ctx.check();
      std::optional<MachWord> NewW = Ctx.Edited->readWord(*NewPC);
      std::optional<Addr> Resolved =
          NewW ? Target.directTarget(*NewW, *NewPC) : std::nullopt;
      if (!Resolved || *Resolved != *NewT)
        Ctx.diag(VerifyPass::LayoutConsistency, DiagSeverity::Error, -1,
                 *NewPC, true,
                 "verbatim transfer to entry point " + hex(*T) +
                     " does not resolve to its edited address " + hex(*NewT));
    }
    return;
  }

  Cfg *G = Ctx.G;
  if (!G)
    return;
  TouchedBlocks Touched(*G);

  // (a) Direct calls: the relocated call word must reach the callee's
  // edited entry.
  for (const auto &BP : G->blocks()) {
    const BasicBlock *B = BP;
    if (B->kind() != BlockKind::Normal || B->empty())
      continue;
    const Instruction *Term = B->terminator();
    if (!Term || Term->kind() != InstKind::Call)
      continue;
    if (Touched.count(B))
      continue; // inserted code sits at the call's mapped position
    Addr A = B->insts().back().OrigAddr;
    std::optional<Addr> T = Term->directTarget(A);
    if (!T)
      continue;
    std::optional<Addr> NewPC = Mapped(A), NewT = Mapped(*T);
    if (!NewPC || !NewT)
      continue;
    Ctx.check();
    std::optional<MachWord> NewW = Ctx.Edited->readWord(*NewPC);
    if (!NewW || Target.classify(*NewW) != InstCategory::CallDirect) {
      Ctx.diag(VerifyPass::LayoutConsistency, DiagSeverity::Error,
               static_cast<int>(B->id()), *NewPC, true,
               "edited image does not hold a call at the call's mapped "
               "address");
      continue;
    }
    std::optional<Addr> Resolved = Target.directTarget(*NewW, *NewPC);
    if (!Resolved || *Resolved != *NewT)
      Ctx.diag(VerifyPass::LayoutConsistency, DiagSeverity::Error,
               static_cast<int>(B->id()), *NewPC, true,
               "call to " + hex(*T) + " resolves to " +
                   (Resolved ? hex(*Resolved) : std::string("nothing")) +
                   " instead of the edited entry " + hex(*NewT));
  }

  // (b) sethi/or (lui/ori) pairs that materialize a code address must now
  // materialize the edited address.
  for (const auto &BP : G->blocks()) {
    const BasicBlock *B = BP;
    if (B->kind() != BlockKind::Normal || Touched.count(B))
      continue;
    for (unsigned I = 1; I < B->size(); ++I) {
      DataOp Prev = B->insts()[I - 1].Inst->dataOp();
      DataOp Cur = B->insts()[I].Inst->dataOp();
      if (Prev.Kind != DataOpKind::LoadImmHi)
        continue;
      if ((Cur.Kind != DataOpKind::Or && Cur.Kind != DataOpKind::Add) ||
          !Cur.HasImm || Cur.Rd != Cur.Rs1 || Cur.Rd != Prev.Rd)
        continue;
      uint32_t Value = Cur.Kind == DataOpKind::Or
                           ? (static_cast<uint32_t>(Prev.Imm) |
                              static_cast<uint32_t>(Cur.Imm))
                           : (static_cast<uint32_t>(Prev.Imm) +
                              static_cast<uint32_t>(Cur.Imm));
      if (!Exec.isTextAddr(Value))
        continue;
      std::optional<Addr> NewV = Mapped(Value);
      if (!NewV)
        continue;
      Addr A = B->insts()[I - 1].OrigAddr;
      std::optional<Addr> NewHi = Mapped(A), NewLo = Mapped(A + 4);
      if (!NewHi || !NewLo || *NewLo != *NewHi + 4)
        continue;
      Ctx.check();
      std::optional<MachWord> W1 = Ctx.Edited->readWord(*NewHi);
      std::optional<MachWord> W2 = Ctx.Edited->readWord(*NewLo);
      if (!W1 || !W2)
        continue;
      DataOp D1 = Target.dataOp(*W1), D2 = Target.dataOp(*W2);
      bool Ok = D1.Kind == DataOpKind::LoadImmHi && D2.HasImm &&
                (D2.Kind == DataOpKind::Or || D2.Kind == DataOpKind::Add);
      uint32_t Got = 0;
      if (Ok)
        Got = D2.Kind == DataOpKind::Or
                  ? (static_cast<uint32_t>(D1.Imm) |
                     static_cast<uint32_t>(D2.Imm))
                  : (static_cast<uint32_t>(D1.Imm) +
                     static_cast<uint32_t>(D2.Imm));
      if (!Ok || Got != *NewV)
        Ctx.diag(VerifyPass::LayoutConsistency, DiagSeverity::Error,
                 static_cast<int>(B->id()), *NewHi, true,
                 "materialized code address " + hex(Value) +
                     " was not rewritten to its edited address " +
                     hex(*NewV));
    }
  }

  // (c) Dispatch tables: every rewritten entry must deliver control to the
  // edited address of the original case target.
  for (const IndirectSite &Site : G->indirectSites()) {
    if (Site.Resolution.K != IndirectResolution::Kind::DispatchTable)
      continue;
    const SxfSegment *Seg =
        Exec.image().segmentContaining(Site.Resolution.TableAddr);
    if (!Seg || Seg->Kind == SegKind::Text)
      continue; // tables inside moved text are not rewritable
    for (size_t I = 0; I < Site.Resolution.Targets.size(); ++I) {
      Addr Ti = Site.Resolution.Targets[I];
      std::optional<Addr> Want = Mapped(Ti);
      if (!Want)
        continue;
      Addr EntryAddr = Site.Resolution.TableAddr + 4 * static_cast<Addr>(I);
      std::optional<MachWord> Entry = Ctx.Edited->readWord(EntryAddr);
      Ctx.check();
      if (!Entry) {
        Ctx.diag(VerifyPass::LayoutConsistency, DiagSeverity::Error,
                 static_cast<int>(Site.Block->id()), EntryAddr, true,
                 "dispatch-table entry is not readable in the edited image");
        continue;
      }
      if (*Entry == *Want)
        continue;
      // Not the direct edited address: acceptable only as a stub that
      // jumps there. A value that is the edited address of some *other*
      // instruction is a mis-aimed entry (e.g. off by one slot).
      bool Bad = false, Opaque = false;
      std::optional<Addr> StubDest =
          followStub(*Ctx.Edited, Target, *Entry, Bad, Opaque);
      if (StubDest && *StubDest == *Want)
        continue;
      if (Opaque && !StubDest) {
        Ctx.diag(VerifyPass::LayoutConsistency, DiagSeverity::Note,
                 static_cast<int>(Site.Block->id()), EntryAddr, true,
                 "dispatch stub with data-dependent edge code; target not "
                 "statically checkable");
        continue;
      }
      Ctx.diag(VerifyPass::LayoutConsistency, DiagSeverity::Error,
               static_cast<int>(Site.Block->id()), EntryAddr, true,
               "dispatch-table entry for case target " + hex(Ti) +
                   " holds " + hex(*Entry) + " and does not deliver " +
                   "control to the edited case at " + hex(*Want));
    }
  }
}

//===----------------------------------------------------------------------===//
// Pass 5: translation validation
//===----------------------------------------------------------------------===//

namespace {

/// A point where a quotient-graph walk stops. Both the original and the
/// re-disassembled CFG reduce to sets of these, normalized to edited
/// addresses, which makes the two graphs directly comparable.
struct Marker {
  enum class Kind : uint8_t { Head, External, Return, Unresolved, Unknown };
  Kind K;
  Addr A = 0;

  bool operator<(const Marker &O) const {
    if (K != O.K)
      return K < O.K;
    return A < O.A;
  }
  bool operator==(const Marker &O) const { return K == O.K && A == O.A; }

  std::string describe() const {
    switch (K) {
    case Kind::Head:
      return "block head " + hex(A);
    case Kind::External:
      return "external target " + hex(A);
    case Kind::Return:
      return "return";
    case Kind::Unresolved:
      return "unresolved indirect jump";
    case Kind::Unknown:
      return "unknown";
    }
    return "unknown";
  }
};

using MarkerSet = std::set<Marker>;

bool hasKind(const MarkerSet &S, Marker::Kind K) {
  for (const Marker &M : S)
    if (M.K == K)
      return true;
  return false;
}

std::map<const BasicBlock *, Addr> interJumpTargets(const Cfg &G) {
  std::map<const BasicBlock *, Addr> Out;
  for (const auto &[B, T] : G.interJumps())
    Out.emplace(B, T);
  return Out;
}

/// Successor markers of \p B in the original CFG, in original addresses.
void origSuccMarkers(const Cfg &G,
                     const std::map<const BasicBlock *, Addr> &Jumps,
                     const BasicBlock *B, MarkerSet &Out, unsigned Depth) {
  if (Depth > 8) {
    Out.insert({Marker::Kind::Unknown});
    return;
  }
  for (const Edge *E : B->succ()) {
    const BasicBlock *D = E->dst();
    switch (D->kind()) {
    case BlockKind::Exit: {
      if (E->kind() == EdgeKind::ExitReturn)
        Out.insert({Marker::Kind::Return});
      else if (E->kind() == EdgeKind::ExitUnresolved)
        Out.insert({Marker::Kind::Unresolved});
      else {
        auto It = Jumps.find(E->src());
        if (It == Jumps.end())
          Out.insert({Marker::Kind::Unknown});
        else
          Out.insert({Marker::Kind::External, It->second});
      }
      break;
    }
    case BlockKind::DelaySlot:
    case BlockKind::CallSurrogate:
      origSuccMarkers(G, Jumps, D, Out, Depth + 1);
      break;
    case BlockKind::Normal:
      Out.insert({Marker::Kind::Head, D->anchor()});
      break;
    case BlockKind::Entry:
      break; // cannot be a successor
    }
  }
}

/// Walks the re-disassembled CFG from the edited position of an original
/// block head until every path reaches another mapped head or leaves the
/// routine; collects the markers.
MarkerSet editedWalk(const Cfg &EG,
                     const std::map<const BasicBlock *, Addr> &Jumps,
                     const BasicBlock *StartB, unsigned StartI,
                     const std::set<Addr> &MappedHeads, Addr TranslatorAddr) {
  MarkerSet Out;
  std::set<const BasicBlock *> Entered;
  std::vector<const BasicBlock *> Queue;
  unsigned Steps = 0;
  const unsigned Budget = 4096;

  auto external = [&](const Edge *E) {
    auto It = Jumps.find(E->src());
    if (It == Jumps.end()) {
      Out.insert({Marker::Kind::Unknown});
    } else if (TranslatorAddr && It->second == TranslatorAddr) {
      // Routed through the run-time translator: the static analogue of an
      // unresolved jump.
      Out.insert({Marker::Kind::Unresolved});
    } else {
      Out.insert({Marker::Kind::External, It->second});
    }
  };

  auto follow = [&](const BasicBlock *B) {
    for (const Edge *E : B->succ()) {
      const BasicBlock *D = E->dst();
      if (D->kind() == BlockKind::Exit) {
        if (E->kind() == EdgeKind::ExitReturn)
          Out.insert({Marker::Kind::Return});
        else if (E->kind() == EdgeKind::ExitUnresolved)
          Out.insert({Marker::Kind::Unresolved});
        else
          external(E);
      } else {
        Queue.push_back(D);
      }
    }
  };

  // Scans instruction positions [From, size); true when the path ended at
  // a mapped head. Position From itself is never treated as a head: the
  // walk starts *on* a head and must move past it.
  auto scan = [&](const BasicBlock *B, unsigned From) -> bool {
    if (B->kind() != BlockKind::Normal)
      return false;
    for (unsigned I = From + 1; I < B->size(); ++I) {
      if (++Steps > Budget) {
        Out.insert({Marker::Kind::Unknown});
        return true;
      }
      if (MappedHeads.count(B->insts()[I].OrigAddr)) {
        Out.insert({Marker::Kind::Head, B->insts()[I].OrigAddr});
        return true;
      }
    }
    return false;
  };

  if (!scan(StartB, StartI))
    follow(StartB);
  while (!Queue.empty()) {
    const BasicBlock *B = Queue.back();
    Queue.pop_back();
    if (!Entered.insert(B).second)
      continue;
    if (++Steps > Budget) {
      Out.insert({Marker::Kind::Unknown});
      break;
    }
    if (B->kind() == BlockKind::Normal && !B->empty() &&
        MappedHeads.count(B->anchor())) {
      Out.insert({Marker::Kind::Head, B->anchor()});
      continue;
    }
    if (!scan(B, 0))
      follow(B);
  }
  (void)EG;
  return Out;
}

} // namespace

void eel::verify::checkTranslation(RoutineCheckContext &Ctx) {
  Cfg *G = Ctx.G;
  if (!G || Ctx.Verbatim || G->unsupported() || !Ctx.EditedExec ||
      !Ctx.AddrMap)
    return;
  Routine &R = Ctx.R;
  const FlatAddrMap &Map = *Ctx.AddrMap;

  auto StartMapped = Map.find(R.startAddr());
  if (StartMapped == Map.end()) {
    Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Error, -1,
             R.startAddr(), true, "routine start has no edited address");
    return;
  }
  Routine *ER = Ctx.EditedExec->routineContaining(StartMapped->second);
  if (!ER) {
    Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Error, -1,
             StartMapped->second, true,
             "no routine in the edited image covers the edited start");
    return;
  }
  Cfg *EG = ER->controlFlowGraph();
  if (!EG || EG->unsupported()) {
    Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Note, -1,
             StartMapped->second, true,
             "edited routine could not be re-analyzed" +
                 (EG ? ": " + EG->unsupportedReason() : std::string()));
    return;
  }

  // Blocks proven reachable from an entry point: only those have an
  // edited-image counterpart (speculatively covered code is laid out but
  // reached solely through the run-time translator).
  std::set<const BasicBlock *> Reachable;
  {
    std::vector<const BasicBlock *> Queue(G->entryBlocks().begin(),
                                          G->entryBlocks().end());
    while (!Queue.empty()) {
      const BasicBlock *B = Queue.back();
      Queue.pop_back();
      if (!Reachable.insert(B).second)
        continue;
      for (const Edge *E : B->succ())
        Queue.push_back(E->dst());
    }
  }

  // Original block heads, and the delay words the normalizer duplicated. A
  // head that doubles as a delay word has two mapped positions after fold
  // duplication; its walk anchors are ambiguous, so such routines are
  // skipped rather than mis-reported.
  std::set<Addr> Heads, DelayWords;
  for (const auto &BP : G->blocks()) {
    if (BP->kind() == BlockKind::DelaySlot) {
      for (const CfgInst &CI : BP->insts())
        DelayWords.insert(CI.OrigAddr);
    } else if (BP->kind() == BlockKind::Normal && !BP->empty() &&
               Reachable.count(BP)) {
      Heads.insert(BP->anchor());
    }
  }
  for (Addr H : Heads)
    if (DelayWords.count(H)) {
      Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Note, -1, H,
               true,
               "block head doubles as a delay word; mapped positions are "
               "ambiguous, translation validation skipped");
      return;
    }

  std::set<Addr> MappedHeads;
  for (Addr H : Heads) {
    auto It = Map.find(H);
    if (It == Map.end()) {
      Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Error, -1, H,
               true, "reachable block head has no edited address");
      return;
    }
    MappedHeads.insert(It->second);
  }

  // Index every instruction position of the edited routine's normal blocks.
  std::map<Addr, std::pair<const BasicBlock *, unsigned>> EditedPos;
  for (const auto &BP : EG->blocks()) {
    if (BP->kind() != BlockKind::Normal)
      continue;
    for (unsigned I = 0; I < BP->size(); ++I)
      EditedPos.emplace(BP->insts()[I].OrigAddr,
                        std::make_pair(BP, I));
  }

  std::map<const BasicBlock *, Addr> OrigJumps = interJumpTargets(*G);
  std::map<const BasicBlock *, Addr> EditedJumps = interJumpTargets(*EG);
  // "Isomorphism modulo inserted snippets": snippet code on a block or its
  // edges may legitimately introduce new transfers (guard branches to a
  // violation handler, counter stubs), so extra successors are not errors
  // there — the intended successors must still all be reachable.
  TouchedBlocks Touched(*G);

  for (const auto &BP : G->blocks()) {
    const BasicBlock *B = BP;
    if (B->kind() != BlockKind::Normal || B->empty() || !Reachable.count(B))
      continue;
    bool HasSnippets = blockOrSuccTouched(Touched, B);
    const int Id = static_cast<int>(B->id());
    Addr H = B->anchor();
    Addr MappedH = Map.at(H);
    Ctx.check();

    // Original successor markers, normalized to edited addresses.
    MarkerSet Orig;
    origSuccMarkers(*G, OrigJumps, B, Orig, 0);
    MarkerSet OrigNorm;
    for (const Marker &M : Orig) {
      Marker N = M;
      if (M.K == Marker::Kind::Head || M.K == Marker::Kind::External) {
        auto It = Map.find(M.A);
        if (It == Map.end()) {
          // A transfer whose target has no edited address (e.g. a jump
          // into a data table): the image necessarily resolves it some
          // other way; nothing sound to compare.
          N = {Marker::Kind::Unknown, 0};
        } else {
          N.A = It->second;
        }
      }
      OrigNorm.insert(N);
    }

    auto PosIt = EditedPos.find(MappedH);
    if (PosIt == EditedPos.end()) {
      Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Note, Id,
               MappedH, true,
               "edited position of block head " + hex(H) +
                   " was not recovered as code; successor check skipped");
      continue;
    }
    MarkerSet EditedM =
        editedWalk(*EG, EditedJumps, PosIt->second.first, PosIt->second.second,
                   MappedHeads, Ctx.TranslatorAddr);

    if (hasKind(OrigNorm, Marker::Kind::Unknown) ||
        hasKind(EditedM, Marker::Kind::Unknown))
      continue; // incomparable; already noted where it matters

    bool OrigUnres = hasKind(OrigNorm, Marker::Kind::Unresolved);
    bool EditedUnres = hasKind(EditedM, Marker::Kind::Unresolved);

    // Every concrete place the edited image can deliver control to must be
    // a successor the edited CFG intends.
    for (const Marker &M : EditedM) {
      if (M.K == Marker::Kind::Unresolved)
        continue;
      if (HasSnippets)
        continue; // inserted code adds transfers by design
      if (!OrigNorm.count(M))
        Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Error, Id,
                 MappedH, true,
                 "edited image can transfer control from block head " +
                     hex(H) + " to " + M.describe() +
                     ", which is not a successor in the edited CFG");
    }
    // And every intended successor must be deliverable — unless the
    // re-analysis gave up somewhere along the way.
    for (const Marker &M : OrigNorm) {
      if (M.K == Marker::Kind::Unresolved) {
        if (!EditedUnres)
          Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Warning,
                   Id, MappedH, true,
                   "unresolved jump was not routed through the run-time "
                   "translator");
        continue;
      }
      if (EditedM.count(M))
        continue;
      if (EditedUnres && !OrigUnres) {
        Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Note, Id,
                 MappedH, true,
                 "re-analysis of the edited image could not resolve a jump; "
                 "successor " + M.describe() + " not statically confirmed");
        continue;
      }
      Ctx.diag(VerifyPass::TranslationValidation, DiagSeverity::Error, Id,
               MappedH, true,
               "edited image lost the successor " + M.describe() +
                   " of block head " + hex(H));
    }
  }
}
