//===- analysis/Verifier.h - Static soundness checker ------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// eel-verify: a pass-based static checker over both the in-memory IR and
/// emitted images. EEL's central claim is that editing fully linked code
/// can be made sound; the verifier checks that claim from the outside
/// instead of trusting the pipeline's own bookkeeping:
///
///   1. cfg-wellformed   — structural CFG invariants (single-entry blocks,
///                         edges target block heads, terminator arity, no
///                         dangling delay-slot blocks).
///   2. delay-slot       — delay-slot/annul normalization invariants on the
///                         IR, and annul-bit/slot preservation in emitted
///                         images, for both SRISC and MRISC.
///   3. scavenge-audit   — liveness recomputed from scratch with an
///                         independent worklist solver; every register
///                         RegAlloc handed to a snippet must be provably
///                         dead at that site.
///   4. layout-consistency — every relocated call, materialized sethi/or
///                         pair, dispatch-table entry, and the entry point
///                         in the output image resolve to the edited
///                         address of the intended original target.
///   5. translation-validation — the emitted image is re-disassembled with
///                         a fresh Executable::openImage and its CFGs are
///                         compared, block by block, against the edited
///                         in-memory CFGs (graph isomorphism modulo
///                         inserted snippets, via quotient successor sets
///                         over original block heads).
///
/// Entry points: verifyIR (passes 1–3, IR only), verifyEdit (all five,
/// needs the emitted image and the Executable whose address map produced
/// it), and lintImage (standalone checking of an arbitrary image — used by
/// the eel-lint CLI, the examples' self-checks, and the fuzz harness).
/// Verification over parallel-edited images is deterministic: per-routine
/// findings are merged in routine-index order.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ANALYSIS_VERIFIER_H
#define EEL_ANALYSIS_VERIFIER_H

#include "analysis/Diagnostics.h"
#include "support/RegSet.h"

#include <string>

namespace eel {

class BasicBlock;
class CodeSnippet;
class Executable;
class Routine;
class SxfFile;
class TargetInfo;

struct VerifyOptions {
  bool CheckCfg = true;
  bool CheckDelay = true;
  bool CheckScavenge = true;
  bool CheckLayout = true;
  bool CheckTranslation = true;
  /// Worker threads for the per-routine fan-out; 0 uses the executable's
  /// own effectiveThreads(). Results are identical for all settings.
  unsigned Threads = 0;

  /// The profile the Options::Verify gate in writeEditedExecutable() runs:
  /// every check that needs no re-analysis of the emitted image (passes
  /// 1-4). Translation validation re-disassembles the whole output — a
  /// cost comparable to the edit itself — so it stays an explicit
  /// verifyEdit()/eel-lint step, keeping the gate's overhead a small
  /// fraction of the path it guards.
  static VerifyOptions writeGate() {
    VerifyOptions Opts;
    Opts.CheckTranslation = false;
    return Opts;
  }
};

/// Passes 1–3 over the analyzed in-memory IR of \p Exec. Safe on any
/// loaded image (runs readContents() if needed; analysis failures become
/// image-load diagnostics, never aborts).
DiagnosticReport verifyIR(Executable &Exec, const VerifyOptions &Opts = {});

/// All five passes over an edit: \p Exec must be the executable whose
/// writeEditedExecutable() produced \p Edited (its address map and edited
/// CFGs are the "intent" the image is checked against).
DiagnosticReport verifyEdit(Executable &Exec, const SxfFile &Edited,
                            const VerifyOptions &Opts = {});

/// Standalone lint of an arbitrary image: load, analyze, run the IR-side
/// structural passes. Content-level checks that need editing intent are
/// skipped; findings that depend on analysis strength are warnings, not
/// errors, so lint is safe on images EEL did not produce.
DiagnosticReport lintImage(const SxfFile &Image, const VerifyOptions &Opts = {});

/// Liveness immediately before instruction \p InstIndex of \p B, computed
/// by the verifier's independent worklist solver (not core/Liveness.cpp).
/// Exposed for the scavenging audit's tests.
RegSet auditLiveBefore(Routine &R, const BasicBlock *B, unsigned InstIndex);

/// The site-level scavenging check: re-plans \p Snippet's allocation
/// (planScavenge, the decision procedure instantiateSnippet realizes)
/// against the live set the pipeline used (\p LiveUsed) and reports an
/// error if any register granted to the snippet without a spill is live
/// according to the independently computed truth (\p LiveTruth). Exposed
/// so tests can inject a deliberately understated live set.
void auditScavengeSite(const TargetInfo &Target, const CodeSnippet &Snippet,
                       const RegSet &LiveUsed, const RegSet &LiveTruth,
                       const std::string &RoutineName, int BlockId, Addr A,
                       DiagnosticReport &Report);

} // namespace eel

#endif // EEL_ANALYSIS_VERIFIER_H
