//===- analysis/InferInternal.h - eel-infer rule plumbing --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared state between the fixpoint driver (Infer.cpp) and the rule
/// implementations (InferRules.cpp). Not installed; tools consume
/// analysis/Infer.h only.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ANALYSIS_INFERINTERNAL_H
#define EEL_ANALYSIS_INFERINTERNAL_H

#include "analysis/InferFacts.h"
#include "core/Executable.h"

#include <set>

namespace eel {
namespace infer {

/// A candidate routine extent [Lo, Hi) between two consecutive entries.
struct Extent {
  Addr Lo = 0;
  Addr Hi = 0;
};

/// All facts the rules have derived so far. The byte-level facts (R1–R3)
/// are computed once — they depend only on the image; the aliasing, entry,
/// and resolution facts are recomputed every round of the fixpoint.
struct InferContext {
  Executable &Exec;
  Addr TB = 0; ///< Text segment [TB, TE).
  Addr TE = 0;

  // R1: plausible decoding, one flag per text word.
  std::vector<bool> Plausible;
  // Words reachable from the current entry set plus resolved indirect
  // targets (recomputed per round). Data interleaved into text is never
  // reached, so its junk decodings contribute no aliasing facts.
  std::vector<bool> Reachable;

  // R2: control facts from the plausible words (each sorted by address).
  std::vector<Addr> CallTargets;
  std::vector<Addr> PrologueSites;
  std::vector<Addr> IndirectJumps;
  std::vector<StoreFact> Stores;

  // R3: pointer-looking data cells, sorted by cell address.
  std::vector<CellFact> Cells;

  // R5/R6 per-round state.
  std::map<Addr, EntryFact> Entries;
  std::set<Addr> ResolutionTargets; ///< Literal targets of inferred sites.
  std::map<Addr, IndirectResolution> Sites;
  std::vector<TableFact> Tables;

  InferStats Stats;

  explicit InferContext(Executable &E) : Exec(E) {}

  bool plausibleAt(Addr A) const {
    return A >= TB && A < TE && (A & 3) == 0 && Plausible[(A - TB) / 4];
  }
};

/// R1 + R2: linear scan of the text segment for plausibility, direct call
/// targets, prologue idioms, store sites, and indirect-jump sites.
void scanText(InferContext &Ctx);

/// R3: scan initialized data segments for word-aligned values aimed at
/// text, classifying isolated cells vs. consecutive table-like runs.
void scanDataPointers(InferContext &Ctx);

/// Recomputes Ctx.Reachable by following control flow from the current
/// entries and the targets of the previous round's resolutions. The
/// data-in-text exclusion: only reachable stores feed R4.
void computeReachable(InferContext &Ctx);

/// R4: store-alias classification over the current extent partition;
/// updates CellFact::Constant / WeakStores in place and returns the
/// sorted (cell, value) pairs proved constant.
std::vector<std::pair<Addr, uint32_t>>
computeCellConstancy(InferContext &Ctx, const std::vector<Extent> &Extents);

/// R6: slice every indirect jump inside its extent with the installed
/// oracle; fills Ctx.Sites / Ctx.Tables and the resolution-derived votes.
void resolveSites(InferContext &Ctx, const std::vector<Extent> &Extents);

} // namespace infer
} // namespace eel

#endif // EEL_ANALYSIS_INFERINTERNAL_H
