//===- analysis/VerifyInternal.h - Verifier internals ------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing between Verifier.cpp (entry points, independent
/// liveness solver) and VerifyPasses.cpp (the pass bodies). Not installed;
/// include only from within src/analysis.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ANALYSIS_VERIFYINTERNAL_H
#define EEL_ANALYSIS_VERIFYINTERNAL_H

#include "analysis/Verifier.h"
#include "core/Executable.h"
#include "core/Liveness.h"

namespace eel {
namespace verify {

/// Liveness recomputed from scratch with a worklist algorithm — deliberately
/// a different solver from core/Liveness.cpp's round-robin fixpoint, so the
/// two implementations only agree when both are right. Boundary conventions
/// (return-live set, call transfer, unresolved exits) follow the documented
/// contract in core/Liveness.h.
class WorklistLiveness {
public:
  explicit WorklistLiveness(const Cfg &G);

  RegSet liveBefore(const BasicBlock *B, unsigned InstIndex) const;
  RegSet liveAfter(const BasicBlock *B, unsigned InstIndex) const {
    return liveBefore(B, InstIndex + 1);
  }
  RegSet liveOnEdge(const Edge *E) const;

private:
  RegSet outOf(const BasicBlock *B) const;
  RegSet transferCall(RegSet LiveOut) const;

  const Cfg &Graph;
  RegSet All;
  RegSet ReturnLive;
  std::vector<RegSet> In, Out;
};

/// Everything the per-routine checks need. IR-only runs leave the edited
/// fields null.
struct RoutineCheckContext {
  RoutineCheckContext(Executable &Exec, Routine &R) : Exec(Exec), R(R) {}

  Executable &Exec;
  Routine &R;
  Cfg *G = nullptr; ///< Null for data routines.
  bool Verbatim = false; ///< Routine is copied verbatim by the editor.

  // Edit-side state (verifyEdit only).
  const SxfFile *Edited = nullptr;
  const FlatAddrMap *AddrMap = nullptr;
  Executable *EditedExec = nullptr; ///< Re-opened edited image.
  Addr TranslatorAddr = 0;          ///< 0 when no translator was emitted.

  DiagnosticReport Report;

  void diag(VerifyPass Pass, DiagSeverity Severity, int Block, Addr A,
            bool HasA, std::string Msg) {
    Report.add(Pass, Severity, R.name(), Block, A, HasA, std::move(Msg));
  }
  void check(unsigned N = 1) { Report.noteChecks(N); }
};

/// Pass 1: structural CFG invariants.
void checkCfgWellFormed(RoutineCheckContext &Ctx);

/// Pass 2, IR side: delay-slot/annul normalization invariants.
void checkDelaySlotsIR(RoutineCheckContext &Ctx);

/// Pass 2, image side: annul bits and slot contents in the emitted image.
void checkDelaySlotsImage(RoutineCheckContext &Ctx);

/// Pass 3: scavenging audit over the routine's snippet sites.
void checkScavenging(RoutineCheckContext &Ctx);

/// Pass 4: relocated calls, sethi/or pairs, and dispatch tables in the
/// emitted image resolve to the intended targets' edited addresses.
void checkLayoutConsistency(RoutineCheckContext &Ctx);

/// Pass 5: quotient-graph comparison of the re-disassembled routine
/// against the edited in-memory CFG.
void checkTranslation(RoutineCheckContext &Ctx);

/// The editor's verbatim-copy condition for a routine (mirrors
/// RoutineLayouter::run); content checks needing per-word layout facts are
/// skipped or reduced for verbatim routines.
bool isVerbatimRoutine(Executable &Exec, Routine &R);

} // namespace verify
} // namespace eel

#endif // EEL_ANALYSIS_VERIFYINTERNAL_H
