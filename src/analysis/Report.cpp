//===- analysis/Report.cpp - Machine-readable run reports ----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"

#include "support/Json.h"
#include "support/Stats.h"

#include <algorithm>

using namespace eel;

namespace {

/// Merges one completed span chain into the aggregate tree: walks/creates
/// the node for each name on the path from root.
PhaseNode &nodeFor(std::vector<PhaseNode> &Level, const char *Name) {
  for (PhaseNode &N : Level)
    if (N.Name == Name)
      return N;
  Level.emplace_back();
  Level.back().Name = Name;
  return Level.back();
}

} // namespace

std::vector<PhaseNode>
eel::buildPhaseTree(const std::vector<TraceEvent> &Events) {
  std::vector<PhaseNode> Roots;

  // Group by thread: containment only means nesting within one thread.
  std::map<uint32_t, std::vector<const TraceEvent *>> ByTid;
  for (const TraceEvent &Ev : Events)
    ByTid[Ev.Tid].push_back(&Ev);

  for (auto &[Tid, Spans] : ByTid) {
    (void)Tid;
    // Start ascending; at equal start, longer span first (it encloses);
    // at equal start and duration (zero-length nests), higher sequence
    // first — rings record at completion, so the parent finished later.
    std::sort(Spans.begin(), Spans.end(),
              [](const TraceEvent *A, const TraceEvent *B) {
                if (A->StartNs != B->StartNs)
                  return A->StartNs < B->StartNs;
                uint64_t DA = A->EndNs - A->StartNs;
                uint64_t DB = B->EndNs - B->StartNs;
                if (DA != DB)
                  return DA > DB;
                return A->Seq > B->Seq;
              });

    // Stack of open ancestors; a span nests under the nearest ancestor
    // whose interval contains it.
    std::vector<const TraceEvent *> Stack;
    std::vector<PhaseNode *> NodeStack;
    for (const TraceEvent *Ev : Spans) {
      while (!Stack.empty() &&
             !(Ev->StartNs >= Stack.back()->StartNs &&
               Ev->EndNs <= Stack.back()->EndNs)) {
        Stack.pop_back();
        NodeStack.pop_back();
      }
      std::vector<PhaseNode> &Level =
          NodeStack.empty() ? Roots : NodeStack.back()->Children;
      PhaseNode &N = nodeFor(Level, Ev->Name ? Ev->Name : "?");
      N.TotalNs += Ev->EndNs - Ev->StartNs;
      N.Count += 1;
      Stack.push_back(Ev);
      NodeStack.push_back(&N);
    }
  }

  // Deterministic presentation: sort siblings by name at every level. The
  // timing *within* one thread already aggregated per name, so ordering is
  // pure presentation.
  struct Sorter {
    static void sortLevel(std::vector<PhaseNode> &Level) {
      std::sort(Level.begin(), Level.end(),
                [](const PhaseNode &A, const PhaseNode &B) {
                  return A.Name < B.Name;
                });
      for (PhaseNode &N : Level)
        sortLevel(N.Children);
    }
  };
  Sorter::sortLevel(Roots);
  return Roots;
}

std::string eel::canonicalOptionsString(const Executable::Options &Opts) {
  // Field order is declaration order in Executable::Options; adding a
  // field there without extending this string silently aliases digests,
  // so keep the two in lockstep.
  std::string S;
  auto Flag = [&S](const char *Key, bool V) {
    S += Key;
    S += V ? "=1;" : "=0;";
  };
  Flag("rewrite_data_pointers", Opts.RewriteDataPointers);
  Flag("runtime_translation", Opts.EnableRuntimeTranslation);
  Flag("translate_indirect_calls", Opts.TranslateIndirectCalls);
  Flag("disable_slicing", Opts.DisableSlicing);
  Flag("disable_delay_folding", Opts.DisableDelayFolding);
  S += "threads=" + std::to_string(Opts.Threads) + ";";
  Flag("legacy_writer", Opts.LegacyWriter);
  Flag("verify", Opts.Verify);
  Flag("trace", Opts.Trace);
  Flag("no_symbols", Opts.NoSymbols);
  S += "log_level=" +
       std::to_string(static_cast<unsigned>(Opts.Log)) + ";";
  return S;
}

void RunReport::addInput(const std::string &Path, uint64_t Hash,
                         uint64_t SizeBytes) {
  Inputs.push_back({Path, Hash, SizeBytes});
}

void RunReport::setProvenance(uint64_t ImageHash, uint64_t ToolDigest,
                              uint64_t OptsDigest) {
  Prov = {ImageHash, ToolDigest, OptsDigest, /*Set=*/true};
}

void RunReport::addOption(const std::string &Key, const std::string &Value) {
  Options.emplace_back(Key, Value);
}

void RunReport::captureMetrics() {
  Counters = StatRegistry::instance().snapshot();
  Histograms = HistogramRegistry::instance().snapshot();
}

void RunReport::capturePhases(const std::vector<TraceEvent> &Events) {
  Phases = buildPhaseTree(Events);
  DroppedSpans = TraceCollector::instance().droppedCount();
  HasPhases = true;
}

void RunReport::captureDiagnostics(const DiagnosticReport &Report) {
  for (const Diagnostic &D : Report.diagnostics())
    Diagnostics.push_back(D);
  ChecksRun += Report.checksRun();
}

namespace {

void writePhase(JsonWriter &W, const PhaseNode &N) {
  W.beginObject();
  W.key("name");
  W.value(N.Name);
  W.key("total_us");
  W.value(static_cast<double>(N.TotalNs) / 1000.0);
  W.key("count");
  W.value(N.Count);
  if (!N.Children.empty()) {
    W.key("children");
    W.beginArray();
    for (const PhaseNode &C : N.Children)
      writePhase(W, C);
    W.endArray();
  }
  W.endObject();
}

void writeDiagnostic(JsonWriter &W, const Diagnostic &D) {
  W.beginObject();
  W.key("pass");
  W.value(std::string(verifyPassName(D.Pass)));
  W.key("severity");
  W.value(std::string(diagSeverityName(D.Severity)));
  if (!D.Routine.empty()) {
    W.key("routine");
    W.value(D.Routine);
  }
  if (D.Block >= 0) {
    W.key("block");
    W.value(static_cast<int64_t>(D.Block));
  }
  if (D.HasAddress) {
    W.key("address");
    W.valueHex(D.Address);
  }
  W.key("message");
  W.value(D.Message);
  W.endObject();
}

} // namespace

std::string RunReport::renderJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("eel-report/1");
  W.key("tool");
  W.value(Tool);

  W.key("inputs");
  W.beginArray();
  for (const Input &In : Inputs) {
    W.beginObject();
    W.key("path");
    W.value(In.Path);
    W.key("fnv1a64");
    W.valueHex(In.Hash);
    W.key("size_bytes");
    W.value(In.SizeBytes);
    W.endObject();
  }
  W.endArray();

  if (Prov.Set) {
    W.key("provenance");
    W.beginObject();
    W.key("image_fnv1a64");
    W.valueHex(Prov.ImageHash);
    W.key("tool_digest");
    W.valueHex(Prov.ToolDigest);
    W.key("options_digest");
    W.valueHex(Prov.OptsDigest);
    W.key("combined");
    W.valueHex(provenanceKey(Prov.ImageHash, Prov.ToolDigest, Prov.OptsDigest));
    W.endObject();
  }

  W.key("options");
  W.beginObject();
  for (const auto &[Key, Value] : Options) {
    W.key(Key);
    W.value(Value);
  }
  W.endObject();

  if (HasPhases) {
    W.key("phases");
    W.beginArray();
    for (const PhaseNode &N : Phases)
      writePhase(W, N);
    W.endArray();
    W.key("dropped_spans");
    W.value(DroppedSpans);
  }

  W.key("counters");
  W.beginObject();
  for (const auto &[Name, Value] : Counters) {
    W.key(Name);
    W.value(Value);
  }
  W.endObject();

  W.key("histograms");
  W.valueRaw(metricsJson(Histograms));

  W.key("diagnostics");
  W.beginArray();
  for (const Diagnostic &D : Diagnostics)
    writeDiagnostic(W, D);
  W.endArray();
  W.key("checks_run");
  W.value(static_cast<uint64_t>(ChecksRun));
  W.key("error_count");
  W.value(static_cast<uint64_t>(
      std::count_if(Diagnostics.begin(), Diagnostics.end(),
                    [](const Diagnostic &D) {
                      return D.Severity == DiagSeverity::Error;
                    })));

  if (!SummaryJson.empty()) {
    W.key("summary");
    W.valueRaw(SummaryJson);
  }
  W.endObject();
  return W.take();
}
