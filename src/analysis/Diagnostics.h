//===- analysis/Diagnostics.h - Verifier diagnostics -------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured findings produced by the static verifier (see DESIGN.md
/// "Static verification and translation validation"). Each Diagnostic
/// names the pass that produced it, a severity, and the routine / block /
/// address it pinpoints, in the same machine-readable spirit as the SXF
/// load-path error taxonomy (support/Error.h): callers and tests classify
/// findings without parsing prose. A DiagnosticReport renders either
/// human-readable (one finding per line) or as a JSON array.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ANALYSIS_DIAGNOSTICS_H
#define EEL_ANALYSIS_DIAGNOSTICS_H

#include "isa/Target.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace eel {

/// The verifier's passes. Stable ids: tests assert on them and tools key
/// suppressions off them.
enum class VerifyPass : uint8_t {
  ImageLoad,     ///< The image could not be loaded/analyzed at all.
  CfgWellFormed, ///< Pass 1: structural CFG invariants.
  DelaySlot,     ///< Pass 2: delay-slot/annul normalization and re-layout.
  ScavengeAudit, ///< Pass 3: independently recomputed liveness vs. RegAlloc.
  LayoutConsistency, ///< Pass 4: emitted branches/tables hit intended targets.
  TranslationValidation, ///< Pass 5: re-disassembled CFG matches edited CFG.
  Inference, ///< eel-infer findings: heuristic boundaries and confidence.
};

inline const char *verifyPassName(VerifyPass Pass) {
  switch (Pass) {
  case VerifyPass::ImageLoad:
    return "image-load";
  case VerifyPass::CfgWellFormed:
    return "cfg-wellformed";
  case VerifyPass::DelaySlot:
    return "delay-slot";
  case VerifyPass::ScavengeAudit:
    return "scavenge-audit";
  case VerifyPass::LayoutConsistency:
    return "layout-consistency";
  case VerifyPass::TranslationValidation:
    return "translation-validation";
  case VerifyPass::Inference:
    return "inference";
  }
  return "unknown";
}

enum class DiagSeverity : uint8_t {
  Note,    ///< A check was skipped or could not run; not a defect.
  Warning, ///< Suspicious but tolerated (lint on arbitrary images).
  Error,   ///< A soundness violation; eel-lint exits nonzero on these.
};

inline const char *diagSeverityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

struct Diagnostic {
  VerifyPass Pass = VerifyPass::ImageLoad;
  DiagSeverity Severity = DiagSeverity::Error;
  std::string Routine; ///< Empty for image-level findings.
  int Block = -1;      ///< Block id when the finding is block-scoped.
  Addr Address = 0;    ///< Meaningful only when HasAddress.
  bool HasAddress = false;
  std::string Message;

  /// "error: cfg-wellformed: routine 'f': block 3 @ 0x1040: <message>".
  std::string render() const {
    std::string S = diagSeverityName(Severity);
    S += ": ";
    S += verifyPassName(Pass);
    S += ": ";
    if (!Routine.empty())
      S += "routine '" + Routine + "': ";
    if (Block >= 0)
      S += "block " + std::to_string(Block) + ": ";
    if (HasAddress) {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "@ 0x%x: ", Address);
      S += Buf;
    }
    S += Message;
    return S;
  }
};

/// An ordered collection of diagnostics. Verification over parallel-edited
/// images merges per-routine reports in routine-index order, so the
/// rendered output is deterministic across thread counts.
class DiagnosticReport {
public:
  void add(Diagnostic D) { Diags.push_back(std::move(D)); }

  /// Convenience: append one finding.
  void add(VerifyPass Pass, DiagSeverity Severity, std::string Routine,
           int Block, Addr Address, bool HasAddress, std::string Message) {
    Diagnostic D;
    D.Pass = Pass;
    D.Severity = Severity;
    D.Routine = std::move(Routine);
    D.Block = Block;
    D.Address = Address;
    D.HasAddress = HasAddress;
    D.Message = std::move(Message);
    Diags.push_back(std::move(D));
  }

  void append(DiagnosticReport &&Other) {
    for (Diagnostic &D : Other.Diags)
      Diags.push_back(std::move(D));
    ChecksRun += Other.ChecksRun;
    Other.Diags.clear();
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  unsigned count(DiagSeverity S) const {
    unsigned N = 0;
    for (const Diagnostic &D : Diags)
      if (D.Severity == S)
        ++N;
    return N;
  }
  unsigned errorCount() const { return count(DiagSeverity::Error); }
  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Severity == DiagSeverity::Error)
        return true;
    return false;
  }

  /// True when pass \p Pass reported at least one finding at \p Severity.
  bool has(VerifyPass Pass, DiagSeverity Severity) const {
    for (const Diagnostic &D : Diags)
      if (D.Pass == Pass && D.Severity == Severity)
        return true;
    return false;
  }

  /// Number of individual checks the verifier evaluated (an anti-vacuity
  /// signal: a clean report with zero checks proves nothing).
  unsigned checksRun() const { return ChecksRun; }
  void noteChecks(unsigned N = 1) { ChecksRun += N; }

  /// One finding per line; empty string when clean.
  std::string renderText() const {
    std::string S;
    for (const Diagnostic &D : Diags) {
      S += D.render();
      S += '\n';
    }
    return S;
  }

  /// JSON array of finding objects (stable key order).
  std::string renderJson() const {
    auto Escape = [](const std::string &In) {
      std::string Out;
      for (char C : In) {
        switch (C) {
        case '"':
          Out += "\\\"";
          break;
        case '\\':
          Out += "\\\\";
          break;
        case '\n':
          Out += "\\n";
          break;
        case '\t':
          Out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(C) < 0x20) {
            char Buf[8];
            std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
            Out += Buf;
          } else {
            Out += C;
          }
        }
      }
      return Out;
    };
    std::string S = "[";
    for (size_t I = 0; I < Diags.size(); ++I) {
      const Diagnostic &D = Diags[I];
      if (I)
        S += ",";
      S += "\n  {\"pass\": \"";
      S += verifyPassName(D.Pass);
      S += "\", \"severity\": \"";
      S += diagSeverityName(D.Severity);
      S += "\"";
      if (!D.Routine.empty())
        S += ", \"routine\": \"" + Escape(D.Routine) + "\"";
      if (D.Block >= 0)
        S += ", \"block\": " + std::to_string(D.Block);
      if (D.HasAddress) {
        char Buf[24];
        std::snprintf(Buf, sizeof(Buf), "\"0x%x\"", D.Address);
        S += ", \"address\": ";
        S += Buf;
      }
      S += ", \"message\": \"" + Escape(D.Message) + "\"}";
    }
    S += Diags.empty() ? "]" : "\n]";
    return S;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned ChecksRun = 0;
};

} // namespace eel

#endif // EEL_ANALYSIS_DIAGNOSTICS_H
