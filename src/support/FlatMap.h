//===- support/FlatMap.h - Sorted flat address map -------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted-vector map from 32-bit addresses to 32-bit values, replacing
/// the red-black trees on the writer's hot paths. The original→edited
/// address map is built append-mostly in placement order, sealed once, and
/// then probed millions of times by the parallel relocation-patch phase —
/// a binary search over a contiguous array beats pointer-chasing a
/// std::map node per probe, and iteration (the run-time translation table
/// is this map serialized) is a linear walk.
///
/// seal() reproduces std::map::emplace semantics exactly: entries are kept
/// in key order and, among duplicates of a key, the first appended wins.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_FLATMAP_H
#define EEL_SUPPORT_FLATMAP_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace eel {

/// Map of uint32 key → uint32 value stored as a sorted flat vector.
/// Mirrors the read-side std::map API (find/end/count/empty/iteration)
/// so call sites did not have to change shape.
class FlatAddrMap {
public:
  using value_type = std::pair<uint32_t, uint32_t>;
  using const_iterator = std::vector<value_type>::const_iterator;

  void clear() {
    Entries.clear();
    Sealed = true; // empty is trivially sorted
  }

  /// Appends (\p Key, \p Value); lookups require seal() afterwards.
  void append(uint32_t Key, uint32_t Value) {
    Entries.emplace_back(Key, Value);
    Sealed = false;
  }

  /// Sorts and deduplicates (first append of a key wins, matching
  /// std::map::emplace). Idempotent.
  void seal() {
    if (Sealed)
      return;
    std::stable_sort(
        Entries.begin(), Entries.end(),
        [](const value_type &A, const value_type &B) { return A.first < B.first; });
    Entries.erase(std::unique(Entries.begin(), Entries.end(),
                              [](const value_type &A, const value_type &B) {
                                return A.first == B.first;
                              }),
                  Entries.end());
    Sealed = true;
  }

  const_iterator find(uint32_t Key) const {
    assert(Sealed && "FlatAddrMap::find before seal()");
    auto It = std::lower_bound(
        Entries.begin(), Entries.end(), Key,
        [](const value_type &E, uint32_t K) { return E.first < K; });
    return (It != Entries.end() && It->first == Key) ? It : Entries.end();
  }

  size_t count(uint32_t Key) const { return find(Key) != end() ? 1 : 0; }

  /// Value for \p Key; asserts presence (std::map::at's contract, minus
  /// the throw — absent keys are programming errors on these paths).
  uint32_t at(uint32_t Key) const {
    const_iterator It = find(Key);
    assert(It != end() && "FlatAddrMap::at: key not present");
    return It->second;
  }

  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

private:
  std::vector<value_type> Entries;
  bool Sealed = true;
};

} // namespace eel

#endif // EEL_SUPPORT_FLATMAP_H
