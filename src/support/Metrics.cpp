//===- support/Metrics.cpp - Log-bucketed histogram metrics --------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>

using namespace eel;

uint64_t HistogramSnapshot::quantileUpperBound(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  // Rank of the target sample, 1-based; ceil so q=1 lands on the last one.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I < HistogramBuckets; ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return histogramBucketLe(I);
  }
  return Max;
}

double HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0.0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I < HistogramBuckets; ++I) {
    if (!Buckets[I])
      continue;
    if (Seen + Buckets[I] >= Rank) {
      if (I == 0)
        return 0.0; // the zero bucket holds only exact zeros
      double Lo = static_cast<double>(uint64_t(1) << (I - 1));
      double Hi = static_cast<double>(histogramBucketLe(I));
      double Frac = static_cast<double>(Rank - Seen) /
                    static_cast<double>(Buckets[I]);
      double V = Lo + (Hi - Lo) * Frac;
      // The observed extrema are exact; use them to tighten the estimate
      // (and make single-sample histograms report the sample itself).
      V = std::min(V, static_cast<double>(Max));
      V = std::max(V, static_cast<double>(Min));
      return V;
    }
    Seen += Buckets[I];
  }
  return static_cast<double>(Max);
}

HistogramRegistry &HistogramRegistry::instance() {
  static HistogramRegistry Registry;
  return Registry;
}

HistogramRegistry::Shard &HistogramRegistry::localShard() {
  // StatRegistry::localShard discipline; see that function for rationale.
  thread_local HistogramRegistry *Owner = nullptr;
  thread_local Shard *Local = nullptr;
  if (Owner != this) {
    std::lock_guard<std::mutex> Lock(M);
    Shards.push_back(std::make_unique<Shard>());
    Local = Shards.back().get();
    Owner = this;
  }
  return *Local;
}

void HistogramRegistry::record(const std::string &Name, uint64_t Value) {
  Cell &C = localShard().Cells[Name];
  ++C.Count;
  C.Sum += Value;
  C.Min = std::min(C.Min, Value);
  C.Max = std::max(C.Max, Value);
  ++C.Buckets[histogramBucket(Value)];
}

std::vector<HistogramSnapshot> HistogramRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::map<std::string, HistogramSnapshot> Merged;
  for (const auto &Shard : Shards) {
    for (const auto &[Name, Cell] : Shard->Cells) {
      if (Cell.Count == 0)
        continue;
      HistogramSnapshot &S = Merged[Name];
      S.Name = Name;
      S.Count += Cell.Count;
      S.Sum += Cell.Sum;
      S.Min = std::min(S.Min, Cell.Min);
      S.Max = std::max(S.Max, Cell.Max);
      for (unsigned I = 0; I < HistogramBuckets; ++I)
        S.Buckets[I] += Cell.Buckets[I];
    }
  }
  std::vector<HistogramSnapshot> Out;
  Out.reserve(Merged.size());
  for (auto &[Name, Snap] : Merged)
    Out.push_back(std::move(Snap));
  return Out;
}

HistogramSnapshot HistogramRegistry::read(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  HistogramSnapshot S;
  S.Name = Name;
  for (const auto &Shard : Shards) {
    auto It = Shard->Cells.find(Name);
    if (It == Shard->Cells.end() || It->second.Count == 0)
      continue;
    const Cell &C = It->second;
    S.Count += C.Count;
    S.Sum += C.Sum;
    S.Min = std::min(S.Min, C.Min);
    S.Max = std::max(S.Max, C.Max);
    for (unsigned I = 0; I < HistogramBuckets; ++I)
      S.Buckets[I] += C.Buckets[I];
  }
  return S;
}

void HistogramRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &Shard : Shards)
    for (auto &[Name, C] : Shard->Cells)
      C = Cell{};
}

void HistogramRegistry::resetAllExcept(const std::string &ExemptPrefix) {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &Shard : Shards)
    for (auto &[Name, C] : Shard->Cells)
      if (ExemptPrefix.empty() ||
          Name.compare(0, ExemptPrefix.size(), ExemptPrefix) != 0)
        C = Cell{};
}

MetricsScope::MetricsScope(const std::string &ExemptPrefix, bool EnableTrace)
    : TraceWasEnabled(traceEnabled()) {
  StatRegistry::instance().resetAllExcept(ExemptPrefix);
  HistogramRegistry::instance().resetAllExcept(ExemptPrefix);
  TraceCollector::instance().reset();
  traceSetEnabled(EnableTrace);
}

MetricsScope::~MetricsScope() { traceSetEnabled(TraceWasEnabled); }

std::string eel::metricsJson(const std::vector<HistogramSnapshot> &Snaps) {
  JsonWriter W(/*Indent=*/false);
  W.beginArray();
  for (const HistogramSnapshot &S : Snaps) {
    W.beginObject();
    W.key("name");
    W.value(S.Name);
    W.key("count");
    W.value(S.Count);
    W.key("sum");
    W.value(S.Sum);
    W.key("min");
    W.value(S.Count ? S.Min : 0);
    W.key("max");
    W.value(S.Max);
    W.key("p50_le");
    W.value(S.quantileUpperBound(0.5));
    W.key("p99_le");
    W.value(S.quantileUpperBound(0.99));
    W.key("p50");
    W.value(S.quantile(0.5));
    W.key("p99");
    W.value(S.quantile(0.99));
    W.key("buckets");
    W.beginArray();
    for (unsigned I = 0; I < HistogramBuckets; ++I) {
      if (!S.Buckets[I])
        continue;
      W.beginObject();
      W.key("le");
      W.value(histogramBucketLe(I));
      W.key("count");
      W.value(S.Buckets[I]);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  return W.take();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; EEL names use dots.
std::string promName(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (!(C >= 'a' && C <= 'z') && !(C >= 'A' && C <= 'Z') &&
        !(C >= '0' && C <= '9') && C != '_' && C != ':')
      C = '_';
  if (!Out.empty() && Out[0] >= '0' && Out[0] <= '9')
    Out.insert(Out.begin(), '_');
  return Out;
}

} // namespace

std::string eel::metricsPrometheus(
    const std::vector<std::pair<std::string, uint64_t>> &Counters,
    const std::vector<HistogramSnapshot> &Hists) {
  std::string Out;
  for (const auto &[Name, Value] : Counters) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " counter\n";
    Out += P + " " + std::to_string(Value) + "\n";
  }
  for (const HistogramSnapshot &S : Hists) {
    std::string P = promName(S.Name);
    Out += "# TYPE " + P + " histogram\n";
    // Buckets 0..63 have finite upper bounds; bucket 64 (bit_width 64
    // samples) is subsumed by the mandatory +Inf bucket.
    uint64_t Cumulative = 0;
    for (unsigned I = 0; I < 64; ++I) {
      if (!S.Buckets[I])
        continue;
      Cumulative += S.Buckets[I];
      Out += P + "_bucket{le=\"" + std::to_string(histogramBucketLe(I)) +
             "\"} " + std::to_string(Cumulative) + "\n";
    }
    Out += P + "_bucket{le=\"+Inf\"} " + std::to_string(S.Count) + "\n";
    Out += P + "_sum " + std::to_string(S.Sum) + "\n";
    Out += P + "_count " + std::to_string(S.Count) + "\n";
  }
  return Out;
}
