//===- support/Arena.h - Bump allocation for flat IR -----------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bump allocators backing the flat instruction IR. A BumpArena hands out
/// pointers from large chunks and frees everything at once, so per-routine
/// CFG objects (blocks, edges, adjacency arrays) cost one pointer bump to
/// allocate and nothing to destroy — objects placed in an arena must be
/// trivially destructible, which the flat IR types are by construction.
///
/// ShardedBumpArena splits a process-wide arena into independently locked
/// shards; the instruction flyweight pool keys shards by machine word so
/// decode workers on disjoint words neither contend on a lock nor false-
/// share an allocation cursor.
///
/// InternedPairTable is the append-only dedup table behind the interned
/// operand sets: writers intern under a mutex, readers resolve an index
/// lock-free through acquire-loaded chunk pointers. Entries are immutable
/// and never move once published, so indices stay valid for the table's
/// lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_ARENA_H
#define EEL_SUPPORT_ARENA_H

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace eel {

/// Chunked bump allocator. Not thread-safe; wrap in ShardedBumpArena (or an
/// external lock) for concurrent use.
class BumpArena {
public:
  static constexpr size_t DefaultChunkBytes = 16384;

  explicit BumpArena(size_t ChunkBytes = DefaultChunkBytes)
      : ChunkSize(ChunkBytes ? ChunkBytes : DefaultChunkBytes) {}

  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two).
  void *allocate(size_t Bytes, size_t Align) {
    assert(Align && (Align & (Align - 1)) == 0 && "alignment not a power of 2");
    if (Bytes == 0)
      Bytes = 1;
    if (!Chunks.empty()) {
      Chunk &C = Chunks.back();
      // Align the absolute address, not the chunk offset: the chunk base
      // is only max_align-aligned, so stricter alignments need the base
      // folded in.
      uintptr_t Base = reinterpret_cast<uintptr_t>(C.Mem.get());
      size_t At = ((Base + C.Used + Align - 1) & ~(Align - 1)) - Base;
      if (At + Bytes <= C.Size) {
        C.Used = At + Bytes;
        Allocated += Bytes;
        return C.Mem.get() + At;
      }
    }
    // New chunk; oversized requests get a dedicated chunk so the common
    // chunk size stays cache-friendly.
    size_t NewSize = std::max(ChunkSize, Bytes + Align);
    Chunk C;
    C.Mem.reset(new uint8_t[NewSize]);
    C.Size = NewSize;
    size_t At =
        (reinterpret_cast<uintptr_t>(C.Mem.get()) & (Align - 1))
            ? Align - (reinterpret_cast<uintptr_t>(C.Mem.get()) & (Align - 1))
            : 0;
    C.Used = At + Bytes;
    Allocated += Bytes;
    void *P = C.Mem.get() + At;
    Chunks.push_back(std::move(C));
    return P;
  }

  /// Placement-constructs a T in the arena. T must be trivially
  /// destructible: its destructor is never run.
  template <typename T, typename... Args> T *create(Args &&...A) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(A)...);
  }

  /// Uninitialized array of \p N trivially-destructible Ts.
  template <typename T> T *allocateArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Drops every allocation, keeping the first chunk for reuse.
  void reset() {
    if (Chunks.size() > 1)
      Chunks.erase(Chunks.begin() + 1, Chunks.end());
    if (!Chunks.empty())
      Chunks.front().Used = 0;
    Allocated = 0;
  }

  /// Payload bytes handed out since construction or reset().
  size_t bytesAllocated() const { return Allocated; }

  /// Total chunk capacity currently reserved.
  size_t bytesReserved() const {
    size_t Total = 0;
    for (const Chunk &C : Chunks)
      Total += C.Size;
    return Total;
  }

  size_t chunkCount() const { return Chunks.size(); }

private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> Mem;
    size_t Size = 0;
    size_t Used = 0;
  };

  size_t ChunkSize;
  size_t Allocated = 0;
  std::vector<Chunk> Chunks;
};

/// A bump arena split into independently locked shards. Callers pick a
/// shard by key, lock it, and may keep per-shard side tables (the
/// instruction pool keeps its word→instruction maps here) under the same
/// lock, folding what used to be separate shard containers into the
/// allocator.
class ShardedBumpArena {
public:
  struct Shard {
    explicit Shard(size_t ChunkBytes) : Arena(ChunkBytes) {}
    mutable std::mutex M;
    BumpArena Arena;
  };

  explicit ShardedBumpArena(size_t ShardCountIn,
                            size_t ChunkBytes = BumpArena::DefaultChunkBytes) {
    assert(ShardCountIn && (ShardCountIn & (ShardCountIn - 1)) == 0 &&
           "shard count not a power of 2");
    Shards.reserve(ShardCountIn);
    for (size_t I = 0; I < ShardCountIn; ++I)
      Shards.push_back(std::make_unique<Shard>(ChunkBytes));
  }

  size_t shardCount() const { return Shards.size(); }

  Shard &shard(size_t Index) {
    assert(Index < Shards.size() && "shard index out of range");
    return *Shards[Index];
  }
  const Shard &shard(size_t Index) const { return *Shards[Index]; }

  /// Shard for \p Key: multiplicative hash, since caller keys (machine
  /// words) cluster in their low opcode bits.
  Shard &shardFor(uint64_t Key) {
    return *Shards[(Key * 0x9E3779B97F4A7C15ull >> 32) &
                   (Shards.size() - 1)];
  }

  /// Sum of payload bytes across shards (takes each shard lock briefly).
  size_t bytesAllocated() const {
    size_t Total = 0;
    for (const auto &S : Shards) {
      std::lock_guard<std::mutex> Lock(S->M);
      Total += S->Arena.bytesAllocated();
    }
    return Total;
  }

private:
  std::vector<std::unique_ptr<Shard>> Shards;
};

/// Append-only dedup table of (first, second) 64-bit pairs. intern() takes
/// the table mutex; get() is lock-free and safe concurrently with intern()
/// because chunks are published with release stores and never reallocated.
class InternedPairTable {
public:
  struct Pair {
    uint64_t First = 0;
    uint64_t Second = 0;
  };

  InternedPairTable() = default;
  InternedPairTable(const InternedPairTable &) = delete;
  InternedPairTable &operator=(const InternedPairTable &) = delete;
  ~InternedPairTable() {
    for (auto &C : Chunks)
      delete[] C.load(std::memory_order_relaxed);
  }

  /// Index of (\p First, \p Second), inserting on first sight.
  uint32_t intern(uint64_t First, uint64_t Second) {
    std::lock_guard<std::mutex> Lock(M);
    uint64_t Key = First * 0x9E3779B97F4A7C15ull ^ Second;
    auto [It, Inserted] = Index.try_emplace(Key, 0);
    if (!Inserted) {
      // Verify against the rare 64-bit mixing collision.
      Pair P = get(It->second);
      if (P.First == First && P.Second == Second)
        return It->second;
      // Collision: fall back to a linear probe over all entries.
      uint32_t N = Count.load(std::memory_order_relaxed);
      for (uint32_t I = 0; I < N; ++I) {
        Pair Q = get(I);
        if (Q.First == First && Q.Second == Second)
          return I;
      }
    }
    uint32_t Idx = Count.load(std::memory_order_relaxed);
    assert(Idx < ChunkEntries * MaxChunks && "interned-pair table full");
    size_t ChunkIdx = Idx / ChunkEntries;
    Pair *C = Chunks[ChunkIdx].load(std::memory_order_acquire);
    if (!C) {
      C = new Pair[ChunkEntries];
      Chunks[ChunkIdx].store(C, std::memory_order_release);
    }
    C[Idx % ChunkEntries] = {First, Second};
    Count.store(Idx + 1, std::memory_order_release);
    It->second = Idx;
    return Idx;
  }

  /// Resolves an index returned by intern(). Lock-free.
  Pair get(uint32_t Idx) const {
    assert(Idx < Count.load(std::memory_order_acquire) &&
           "interned-pair index out of range");
    const Pair *C = Chunks[Idx / ChunkEntries].load(std::memory_order_acquire);
    return C[Idx % ChunkEntries];
  }

  /// Number of distinct pairs interned so far.
  uint32_t size() const { return Count.load(std::memory_order_acquire); }

private:
  static constexpr size_t ChunkEntries = 512;
  static constexpr size_t MaxChunks = 4096; ///< 2M distinct pairs.

  std::array<std::atomic<Pair *>, MaxChunks> Chunks{};
  std::atomic<uint32_t> Count{0};
  std::mutex M;
  std::unordered_map<uint64_t, uint32_t> Index;
};

} // namespace eel

#endif // EEL_SUPPORT_ARENA_H
