//===- support/Casting.h - Kind-based isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reimplementation of the LLVM-style isa<>/cast<>/dyn_cast<>
/// templates. Classes opt in by providing a static `classof(const Base *)`
/// predicate, usually implemented with a kind enumerator stored in the base
/// class. This project is compiled without RTTI, so these templates are the
/// only mechanism for down-casting in class hierarchies such as
/// eel::Instruction.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_CASTING_H
#define EEL_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace eel {

/// Returns true if \p Val is an instance of type To (or a subclass of it).
/// \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  if constexpr (std::is_base_of_v<To, From>)
    return true;
  else
    return To::classof(Val);
}

/// Returns true if \p Val is an instance of any of the listed types.
template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked down-cast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Conditional down-cast: returns null if \p Val is not a To.
/// \p Val must be non-null (use dyn_cast_or_null for possibly-null values).
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace eel

#endif // EEL_SUPPORT_CASTING_H
