//===- support/Log.cpp - Structured leveled JSONL logging ----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include "support/Trace.h"

#include <chrono>
#include <cinttypes>
#include <cstring>

using namespace eel;

namespace eel {
namespace log_detail {
std::atomic<uint8_t> Level{static_cast<uint8_t>(LogLevel::Off)};
} // namespace log_detail
} // namespace eel

void eel::logSetLevel(LogLevel L) {
  log_detail::Level.store(static_cast<uint8_t>(L), std::memory_order_relaxed);
}

const char *eel::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Trace:
    return "trace";
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "?";
}

bool eel::parseLogLevel(const std::string &Name, LogLevel &Out) {
  for (LogLevel L : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                     LogLevel::Warn, LogLevel::Error, LogLevel::Off})
    if (Name == logLevelName(L)) {
      Out = L;
      return true;
    }
  return false;
}

namespace {

/// Flush a thread buffer once it holds this much; Warn+ records flush
/// immediately regardless.
constexpr size_t FlushThresholdBytes = 4096;

uint64_t unixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  int N = snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out.append(Buf, static_cast<size_t>(N));
}

/// Strict RFC-8259 string escaping (mirrors JsonWriter): quotes,
/// backslashes, and control characters only.
void appendJsonString(std::string &Out, const char *S, size_t Len) {
  Out += '"';
  for (size_t I = 0; I < Len; ++I) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

void appendRecord(std::string &Out, uint64_t TsMs, uint32_t Tid, LogLevel L,
                  const char *Event, const LogField *Fields,
                  size_t NumFields) {
  Out += "{\"ts_ms\":";
  appendU64(Out, TsMs);
  Out += ",\"level\":\"";
  Out += logLevelName(L);
  Out += "\",\"event\":";
  appendJsonString(Out, Event, strlen(Event));
  Out += ",\"tid\":";
  appendU64(Out, Tid);
  if (uint64_t Rid = traceRequestId()) {
    Out += ",\"request_id\":";
    appendU64(Out, Rid);
  }
  for (size_t I = 0; I < NumFields; ++I) {
    const LogField &F = Fields[I];
    Out += ',';
    appendJsonString(Out, F.Key, strlen(F.Key));
    Out += ':';
    if (F.IsNum)
      appendU64(Out, F.Num);
    else
      appendJsonString(Out, F.Str.data(), F.Str.size());
  }
  Out += "}\n";
}

} // namespace

Logger &Logger::instance() {
  static Logger L;
  return L;
}

Logger::Buffer &Logger::localBuffer() {
  // StatRegistry shard discipline: one buffer per thread, created on first
  // use, owned by the logger for the life of the process so the cached
  // pointer stays valid even after the thread exits.
  thread_local Logger *Owner = nullptr;
  thread_local Buffer *Local = nullptr;
  if (Owner != this) {
    std::lock_guard<std::mutex> Lock(BuffersM);
    Buffers.push_back(std::make_unique<Buffer>());
    Buffers.back()->Tid = static_cast<uint32_t>(Buffers.size() - 1);
    Local = Buffers.back().get();
    Owner = this;
  }
  return *Local;
}

bool Logger::setPath(const std::string &Path) {
  FILE *F = fopen(Path.c_str(), "ab");
  if (!F)
    return false;
  flushAll();
  std::lock_guard<std::mutex> Lock(SinkM);
  if (Sink)
    fclose(Sink);
  Sink = F;
  return true;
}

void Logger::useStderr() {
  flushAll();
  std::lock_guard<std::mutex> Lock(SinkM);
  if (Sink)
    fclose(Sink);
  Sink = nullptr;
}

void Logger::setRateLimit(uint64_t NewMaxPerSec) {
  MaxPerSec.store(NewMaxPerSec, std::memory_order_relaxed);
}

bool Logger::admit(uint64_t NowMs, uint64_t &DrainedDrops) {
  DrainedDrops = 0;
  uint64_t Limit = MaxPerSec.load(std::memory_order_relaxed);
  if (Limit == 0)
    return true;
  // Window accounting is deterministic single-threaded and only
  // approximate across racing writers (a window roll may briefly
  // over-admit); the limiter bounds volume, it is not a precise meter.
  uint64_t Sec = NowMs / 1000;
  uint64_t Cur = WindowSec.load(std::memory_order_relaxed);
  if (Sec != Cur && WindowSec.compare_exchange_strong(
                        Cur, Sec, std::memory_order_relaxed))
    WindowCount.store(0, std::memory_order_relaxed);
  if (WindowCount.fetch_add(1, std::memory_order_relaxed) >= Limit) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    PendingDrops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  DrainedDrops = PendingDrops.exchange(0, std::memory_order_relaxed);
  return true;
}

void Logger::write(LogLevel L, const char *Event, const LogField *Fields,
                   size_t NumFields) {
  uint64_t NowMs = unixMillis();
  uint64_t DrainedDrops = 0;
  if (!admit(NowMs, DrainedDrops))
    return;
  Buffer &B = localBuffer();
  std::lock_guard<std::mutex> Lock(B.M);
  if (DrainedDrops) {
    LogField Disclose = logNum("dropped", DrainedDrops);
    appendRecord(B.Data, NowMs, B.Tid, LogLevel::Warn, "log.rate_limited",
                 &Disclose, 1);
    Emitted.fetch_add(1, std::memory_order_relaxed);
  }
  appendRecord(B.Data, NowMs, B.Tid, L, Event, Fields, NumFields);
  Emitted.fetch_add(1, std::memory_order_relaxed);
  if (L >= LogLevel::Warn || B.Data.size() >= FlushThresholdBytes)
    flushLocked(B);
}

void Logger::flushLocked(Buffer &B) {
  if (B.Data.empty())
    return;
  std::lock_guard<std::mutex> Lock(SinkM);
  FILE *F = Sink ? Sink : stderr;
  fwrite(B.Data.data(), 1, B.Data.size(), F);
  fflush(F);
  B.Data.clear();
}

void Logger::flushAll() {
  std::vector<Buffer *> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(BuffersM);
    Snapshot.reserve(Buffers.size());
    for (const auto &B : Buffers)
      Snapshot.push_back(B.get());
  }
  for (Buffer *B : Snapshot) {
    std::lock_guard<std::mutex> Lock(B->M);
    flushLocked(*B);
  }
}

uint64_t Logger::emittedCount() const {
  return Emitted.load(std::memory_order_relaxed);
}

uint64_t Logger::droppedCount() const {
  return Dropped.load(std::memory_order_relaxed);
}

void Logger::resetCounts() {
  Emitted.store(0, std::memory_order_relaxed);
  Dropped.store(0, std::memory_order_relaxed);
  PendingDrops.store(0, std::memory_order_relaxed);
  WindowSec.store(0, std::memory_order_relaxed);
  WindowCount.store(0, std::memory_order_relaxed);
}
