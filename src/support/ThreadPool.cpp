//===- support/ThreadPool.cpp - Work-stealing thread pool ----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Trace.h"

#include <algorithm>
#include <chrono>

using namespace eel;

namespace {
/// Pool whose task the calling thread is currently executing (workerLoop
/// or a helping caller), or null. Lets submit() recognize internal
/// submissions, which must never block on the queue bound: with every
/// worker parked in submit() nobody would be left to drain the queue.
thread_local const ThreadPool *CurrentTaskPool = nullptr;
} // namespace

ThreadPool::ThreadPool(unsigned WorkerCount) {
  // Fixed capacity so growth never reallocates: workers index into these
  // vectors concurrently with ensureWorkers() appending.
  Workers.reserve(MaxWorkers);
  Threads.reserve(MaxWorkers);
  ensureWorkers(WorkerCount);
}

ThreadPool::~ThreadPool() {
  Stopping.store(true, std::memory_order_release);
  WakeCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool([] {
    unsigned HW = std::thread::hardware_concurrency();
    return HW > 1 ? HW - 1 : 0;
  }());
  return Pool;
}

unsigned ThreadPool::workerCount() const {
  return WorkerCountA.load(std::memory_order_acquire);
}

void ThreadPool::ensureWorkers(unsigned N) {
  N = std::min(N, MaxWorkers);
  if (workerCount() >= N)
    return;
  std::lock_guard<std::mutex> Lock(GrowM);
  while (Workers.size() < N) {
    Workers.push_back(std::make_unique<Worker>());
    size_t Index = Workers.size() - 1;
    // Publish the worker before its thread starts stealing.
    WorkerCountA.store(static_cast<unsigned>(Workers.size()),
                       std::memory_order_release);
    Threads.emplace_back([this, Index] { workerLoop(Index); });
  }
}

void ThreadPool::setQueueCapacity(size_t Cap) {
  QueueCap.store(Cap, std::memory_order_relaxed);
  WakeCV.notify_all(); // submitters blocked on the old bound re-check
}

size_t ThreadPool::queueCapacity() const {
  return QueueCap.load(std::memory_order_relaxed);
}

bool ThreadPool::inPoolTask() const { return CurrentTaskPool == this; }

void ThreadPool::enqueue(std::function<void()> Task, unsigned Count) {
  size_t Slot = NextSubmit.fetch_add(1, std::memory_order_relaxed) % Count;
  {
    std::lock_guard<std::mutex> Lock(Workers[Slot]->M);
    Workers[Slot]->Tasks.push_back(std::move(Task));
  }
  PendingTasks.fetch_add(1, std::memory_order_release);
  WakeCV.notify_one();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Count = workerCount();
  if (Count == 0) {
    // No workers: run on a helping caller via the pending queue of worker
    // 0 once one exists — or, with a permanently empty pool, immediately
    // on the submitter. Degenerates gracefully on one-core machines.
    // (Service deployments requiring the no-inline guarantee must create
    // workers; trySubmit() rejects in this configuration.)
    Task();
    return;
  }
  size_t Cap = queueCapacity();
  if (Cap != 0 && !inPoolTask() &&
      PendingTasks.load(std::memory_order_acquire) >= Cap) {
    // Saturated external submitter: bounded block until workers drain.
    // Never run the task inline (see the header's overflow contract), and
    // never block a pool task's own submissions (deadlock).
    std::unique_lock<std::mutex> Lock(WakeM);
    WakeCV.wait(Lock, [this] {
      size_t C = queueCapacity();
      return C == 0 || Stopping.load(std::memory_order_acquire) ||
             PendingTasks.load(std::memory_order_acquire) < C;
    });
  }
  enqueue(std::move(Task), Count);
}

bool ThreadPool::trySubmit(std::function<void()> Task) {
  unsigned Count = workerCount();
  if (Count == 0)
    return false; // inline execution is exactly what this path must avoid
  size_t Cap = queueCapacity();
  if (Cap != 0 && PendingTasks.load(std::memory_order_acquire) >= Cap)
    return false;
  enqueue(std::move(Task), Count);
  return true;
}

bool ThreadPool::takeTask(size_t SelfIndex, std::function<void()> &Task) {
  unsigned Count = workerCount();
  if (Count == 0)
    return false;
  // Own deque first (LIFO: cache-warm, recently pushed work)...
  if (SelfIndex < Count) {
    Worker &Self = *Workers[SelfIndex];
    std::lock_guard<std::mutex> Lock(Self.M);
    if (!Self.Tasks.empty()) {
      Task = std::move(Self.Tasks.back());
      Self.Tasks.pop_back();
      return true;
    }
  }
  // ...then steal FIFO from the others, starting after ourselves so
  // victims are spread out.
  for (unsigned Offset = 1; Offset <= Count; ++Offset) {
    size_t Victim = (SelfIndex + Offset) % Count;
    Worker &W = *Workers[Victim];
    std::lock_guard<std::mutex> Lock(W.M);
    if (!W.Tasks.empty()) {
      Task = std::move(W.Tasks.front());
      W.Tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(std::function<void()> &Task) {
  // No tracing here: a task's completion signal lives inside Task()
  // (parallelForEach helpers decrement ActiveHelpers there), and the
  // caller treats that as a quiescent point where rings may be
  // drained. Any ring write after Task() would race; occupancy spans
  // are recorded inside the batch lambdas instead, where they close
  // before the completion signal.
  const ThreadPool *Prev = CurrentTaskPool;
  CurrentTaskPool = this;
  Task();
  CurrentTaskPool = Prev;
  PendingTasks.fetch_sub(1, std::memory_order_release);
  WakeCV.notify_all(); // a waiter may be blocked on this completion
}

void ThreadPool::workerLoop(size_t Index) {
  while (!Stopping.load(std::memory_order_acquire)) {
    std::function<void()> Task;
    if (takeTask(Index, Task)) {
      runTask(Task);
      continue;
    }
    std::unique_lock<std::mutex> Lock(WakeM);
    WakeCV.wait_for(Lock, std::chrono::milliseconds(10), [this] {
      return Stopping.load(std::memory_order_acquire) ||
             PendingTasks.load(std::memory_order_acquire) != 0;
    });
  }
}

void ThreadPool::helpUntil(const std::function<bool()> &Done) {
  // Helping callers use an index beyond every worker: they never own a
  // deque, so takeTask always steals.
  const size_t HelperIndex = MaxWorkers;
  while (!Done()) {
    std::function<void()> Task;
    if (takeTask(HelperIndex, Task)) {
      runTask(Task); // untraced for the same reason as workerLoop
      continue;
    }
    std::unique_lock<std::mutex> Lock(WakeM);
    WakeCV.wait_for(Lock, std::chrono::milliseconds(1));
  }
}

void eel::parallelForEach(unsigned Threads, size_t N,
                          const std::function<void(size_t)> &Body) {
  if (Threads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  struct BatchState {
    std::atomic<size_t> NextIndex{0};
    std::atomic<unsigned> ActiveHelpers{0};
  };
  auto State = std::make_shared<BatchState>();

  auto Drain = [State, N, &Body] {
    size_t Index;
    while ((Index = State->NextIndex.fetch_add(
                1, std::memory_order_relaxed)) < N)
      Body(Index);
  };

  ThreadPool &Pool = ThreadPool::shared();
  unsigned Participants =
      static_cast<unsigned>(std::min<size_t>(Threads, N));
  Pool.ensureWorkers(Participants - 1);

  unsigned Helpers = std::min(Participants - 1, Pool.workerCount());
  State->ActiveHelpers.store(Helpers, std::memory_order_release);
  // Helpers inherit the submitter's request id so spans (and log records)
  // from pool workers correlate to the request that fanned out; the scope
  // restores whatever id the worker thread had before this task.
  uint64_t Rid = traceRequestId();
  for (unsigned I = 0; I < Helpers; ++I)
    Pool.submit([State, Drain, I, Rid] {
      TraceRequestScope RequestScope(Rid);
      {
        // Occupancy span: must close (and hit the ring) before the
        // ActiveHelpers decrement that the caller treats as quiescence,
        // or the caller's drain would race the write. "pool." prefix:
        // presence depends on the schedule, so determinism comparisons
        // exclude it.
        EEL_TRACE_SCOPE("pool.worker", "worker", uint64_t(I + 1));
        Drain();
      }
      State->ActiveHelpers.fetch_sub(1, std::memory_order_acq_rel);
    });

  Drain();
  // All indices are claimed; wait for in-flight helpers, running other
  // pool tasks meanwhile (nested fan-outs make progress this way). The
  // acquire load pairs with each helper's fetch_sub, ordering every
  // Body() write before our return.
  Pool.helpUntil([State] {
    return State->ActiveHelpers.load(std::memory_order_acquire) == 0;
  });
}
