//===- support/FileIO.cpp - Whole-file read/write helpers ----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"

#include <cstdio>

using namespace eel;

Expected<std::vector<uint8_t>> eel::readFileBytes(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error(ErrorCode::IoError, "cannot open file for reading")
        .inFile(Path);
  std::vector<uint8_t> Bytes;
  uint8_t Buffer[4096];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Bytes.insert(Bytes.end(), Buffer, Buffer + N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return Error(ErrorCode::IoError, "read error").inFile(Path);
  return Bytes;
}

Expected<bool> eel::writeFileBytes(const std::string &Path,
                                   const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Error(ErrorCode::IoError, "cannot open file for writing")
        .inFile(Path);
  size_t N = Bytes.empty() ? 0 : std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Bad = N != Bytes.size();
  if (std::fclose(F) != 0)
    Bad = true;
  if (Bad)
    return Error(ErrorCode::IoError, "write error").inFile(Path);
  return true;
}

unsigned eel::countCodeLines(const std::string &Text) {
  unsigned Count = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    size_t First = Pos;
    while (First < End && (Text[First] == ' ' || Text[First] == '\t'))
      ++First;
    bool Blank = First == End;
    bool Comment = false;
    if (!Blank) {
      char C0 = Text[First];
      char C1 = First + 1 < End ? Text[First + 1] : '\0';
      Comment = (C0 == '/' && C1 == '/') || C0 == '!' || C0 == '#' ||
                (C0 == '-' && C1 == '-');
    }
    if (!Blank && !Comment)
      ++Count;
    Pos = End + 1;
  }
  return Count;
}
