//===- support/Error.h - Exception-free error handling ---------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight error handling in the style of llvm::Expected/llvm::Error.
/// The project is built without exceptions; fallible operations return
/// Expected<T> (a value or an error message) and infallible-by-contract
/// call sites use takeValue() which asserts success.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_ERROR_H
#define EEL_SUPPORT_ERROR_H

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace eel {

/// A failure description. Errors carry a human-readable message following
/// the style "file.sx: line 3: unknown mnemonic 'foo'".
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Either a value of type T or an Error. The discriminator must be checked
/// with hasValue()/hasError() before access.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Error E) : Storage(std::move(E)) {}

  bool hasValue() const { return std::holds_alternative<T>(Storage); }
  bool hasError() const { return !hasValue(); }
  explicit operator bool() const { return hasValue(); }

  T &value() {
    assert(hasValue() && "Expected<T> has no value");
    return std::get<T>(Storage);
  }
  const T &value() const {
    assert(hasValue() && "Expected<T> has no value");
    return std::get<T>(Storage);
  }

  const Error &error() const {
    assert(hasError() && "Expected<T> has no error");
    return std::get<Error>(Storage);
  }

  /// Moves the value out, aborting with the error message if this holds an
  /// error. For call sites where failure indicates a program bug.
  T takeValue() {
    if (hasError()) {
      std::fprintf(stderr, "fatal error: %s\n", error().message().c_str());
      std::abort();
    }
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Reports a fatal, unrecoverable condition and aborts.
[[noreturn]] inline void reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::abort();
}

/// Marks a point in the code that is unconditionally a bug to reach.
[[noreturn]] inline void unreachable(const char *Message) {
  std::fprintf(stderr, "unreachable executed: %s\n", Message);
  std::abort();
}

} // namespace eel

#endif // EEL_SUPPORT_ERROR_H
