//===- support/Error.h - Exception-free error handling ---------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight error handling in the style of llvm::Expected/llvm::Error.
/// The project is built without exceptions; fallible operations return
/// Expected<T> (a value or an error message) and infallible-by-contract
/// call sites use takeValue() which asserts success.
///
/// Errors optionally carry machine-readable context — an ErrorCode from the
/// load-path taxonomy, the file they arose in, the byte offset of the
/// offending record, and the field being decoded — so callers (and the
/// fault-injection harness) can classify failures without parsing prose.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_ERROR_H
#define EEL_SUPPORT_ERROR_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace eel {

/// Machine-readable failure classification. The Sxf* codes form the
/// load-time validation taxonomy (see DESIGN.md "Load-time validation and
/// error taxonomy"); every rejection of an untrusted input maps to exactly
/// one code, and the fuzz harness asserts that mapping is total.
enum class ErrorCode : uint8_t {
  Unspecified = 0,   ///< Legacy message-only error.
  IoError,           ///< File could not be opened/read/written.
  BadMagic,          ///< Input is not an SXF file at all.
  BadArch,           ///< Architecture byte names no known target.
  BadHeader,         ///< Reserved header fields are not zero.
  Truncated,         ///< Input ends inside a record.
  ImplausibleCount,  ///< A count field exceeds what the input could hold.
  BadSegmentKind,    ///< Segment kind byte outside the SegKind enum.
  SegmentOverrun,    ///< Segment claims more file bytes than remain.
  BadMemSize,        ///< Segment MemSize smaller than its file bytes.
  AddressWrap,       ///< Segment or symbol extent wraps the address space.
  SegmentOverlap,    ///< Two segments' memory extents intersect.
  BadEntryPoint,     ///< Entry point outside the text segment's bytes.
  BadSymbolKind,     ///< Symbol kind/binding byte outside its enum.
  SymbolOutOfRange,  ///< Symbol value outside every segment's extent.
  BadRelocKind,      ///< Relocation kind byte outside the RelocKind enum.
  RelocOutOfRange,   ///< Relocation site not a patchable word.
  TrailingBytes,     ///< Well-formed image followed by unconsumed bytes.
  NoTextSegment,     ///< Image cannot be opened as an executable: no text.
  NoDeadRegisters,   ///< Snippet site has no dead register and spilling is
                     ///< disallowed (CodeSnippet::setRequireDeadRegs).
  SpillExhausted,    ///< Snippet needed more spill slots than the reserved
                     ///< stack scratch area holds.
  ServerSaturated,   ///< eel-serve admission: too many in-flight requests
                     ///< (or the thread pool rejected the work); retry.
  ImageTooLarge,     ///< eel-serve admission: request image exceeds the
                     ///< configured byte limit.
  BadToolSpec,       ///< eel-serve request names no known tool spec.
};

/// Stable lower-case name for an ErrorCode (used in describe() output and
/// by the fuzz harness's outcome histogram).
inline const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Unspecified:
    return "unspecified";
  case ErrorCode::IoError:
    return "io_error";
  case ErrorCode::BadMagic:
    return "bad_magic";
  case ErrorCode::BadArch:
    return "bad_arch";
  case ErrorCode::BadHeader:
    return "bad_header";
  case ErrorCode::Truncated:
    return "truncated";
  case ErrorCode::ImplausibleCount:
    return "implausible_count";
  case ErrorCode::BadSegmentKind:
    return "bad_segment_kind";
  case ErrorCode::SegmentOverrun:
    return "segment_overrun";
  case ErrorCode::BadMemSize:
    return "bad_mem_size";
  case ErrorCode::AddressWrap:
    return "address_wrap";
  case ErrorCode::SegmentOverlap:
    return "segment_overlap";
  case ErrorCode::BadEntryPoint:
    return "bad_entry_point";
  case ErrorCode::BadSymbolKind:
    return "bad_symbol_kind";
  case ErrorCode::SymbolOutOfRange:
    return "symbol_out_of_range";
  case ErrorCode::BadRelocKind:
    return "bad_reloc_kind";
  case ErrorCode::RelocOutOfRange:
    return "reloc_out_of_range";
  case ErrorCode::TrailingBytes:
    return "trailing_bytes";
  case ErrorCode::NoTextSegment:
    return "no_text_segment";
  case ErrorCode::NoDeadRegisters:
    return "no_dead_registers";
  case ErrorCode::SpillExhausted:
    return "spill_exhausted";
  case ErrorCode::ServerSaturated:
    return "server_saturated";
  case ErrorCode::ImageTooLarge:
    return "image_too_large";
  case ErrorCode::BadToolSpec:
    return "bad_tool_spec";
  }
  return "unknown";
}

/// A failure description. Errors carry a human-readable message following
/// the style "file.sx: line 3: unknown mnemonic 'foo'", plus optional
/// structured context (code, file, byte offset, field name).
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {}
  Error(ErrorCode Code, std::string Message)
      : Message(std::move(Message)), Code(Code) {}

  const std::string &message() const { return Message; }
  ErrorCode code() const { return Code; }

  bool hasOffset() const { return OffsetValid; }
  uint64_t offset() const {
    assert(OffsetValid && "Error carries no offset");
    return Offset;
  }
  const std::string &file() const { return File; }
  const std::string &field() const { return Field; }

  /// Fluent context setters, usable on a temporary:
  ///   return Error(ErrorCode::Truncated, "...").atOffset(R.pos());
  Error &&atOffset(uint64_t Off) && {
    Offset = Off;
    OffsetValid = true;
    return std::move(*this);
  }
  Error &&inField(std::string F) && {
    Field = std::move(F);
    return std::move(*this);
  }
  Error &&inFile(std::string F) && {
    File = std::move(F);
    return std::move(*this);
  }
  Error &atOffset(uint64_t Off) & {
    Offset = Off;
    OffsetValid = true;
    return *this;
  }
  Error &inField(std::string F) & {
    Field = std::move(F);
    return *this;
  }
  Error &inFile(std::string F) & {
    File = std::move(F);
    return *this;
  }

  /// Full human-readable rendering with all attached context:
  /// "a.sxf: offset 0x21: segment[1].nbytes: segment overruns file
  /// [segment_overrun]".
  std::string describe() const {
    std::string S;
    if (!File.empty())
      S += File + ": ";
    if (OffsetValid) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "offset 0x%llx: ",
                    static_cast<unsigned long long>(Offset));
      S += Buf;
    }
    if (!Field.empty())
      S += Field + ": ";
    S += Message;
    if (Code != ErrorCode::Unspecified)
      S += std::string(" [") + errorCodeName(Code) + "]";
    return S;
  }

private:
  std::string Message;
  std::string File;
  std::string Field;
  uint64_t Offset = 0;
  ErrorCode Code = ErrorCode::Unspecified;
  bool OffsetValid = false;
};

/// Either a value of type T or an Error. The discriminator must be checked
/// with hasValue()/hasError() before access.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Error E) : Storage(std::move(E)) {}

  bool hasValue() const { return std::holds_alternative<T>(Storage); }
  bool hasError() const { return !hasValue(); }
  explicit operator bool() const { return hasValue(); }

  T &value() {
    assert(hasValue() && "Expected<T> has no value");
    return std::get<T>(Storage);
  }
  const T &value() const {
    assert(hasValue() && "Expected<T> has no value");
    return std::get<T>(Storage);
  }

  const Error &error() const {
    assert(hasError() && "Expected<T> has no error");
    return std::get<Error>(Storage);
  }

  /// Moves the value out, aborting with the error message if this holds an
  /// error. For call sites where failure indicates a program bug.
  T takeValue() {
    if (hasError()) {
      std::fprintf(stderr, "fatal error: %s\n", error().describe().c_str());
      std::abort();
    }
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Reports a fatal, unrecoverable condition and aborts.
[[noreturn]] inline void reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::abort();
}

/// Marks a point in the code that is unconditionally a bug to reach.
[[noreturn]] inline void unreachable(const char *Message) {
  std::fprintf(stderr, "unreachable executed: %s\n", Message);
  std::abort();
}

} // namespace eel

#endif // EEL_SUPPORT_ERROR_H
