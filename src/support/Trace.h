//===- support/Trace.h - Span tracing with per-thread rings ----*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span-based tracing layer for the editing pipeline. Instrumented scopes
/// open a TraceSpan (via EEL_TRACE_SCOPE) that records its name, optional
/// typed arguments, and start/end timestamps into the calling thread's ring
/// buffer when it closes. Rings follow the StatRegistry sharding discipline:
/// one per thread, created on first use, owned by the collector and retained
/// for the life of the process, so the hot path never takes a lock or
/// bounces a cache line between workers. drain() merges the rings at
/// quiescent points (after parallelForEach returns, which synchronizes with
/// every worker's writes).
///
/// Two gates keep the cost out of production runs:
///  - a runtime flag (traceSetEnabled / Executable::Options::Trace); when
///    off, the span constructor is a single relaxed atomic load and the
///    destructor a branch — no clock reads, no allocation, no ring writes;
///  - the EEL_TRACE_DISABLED compile-time macro, which turns every
///    EEL_TRACE_SCOPE into ((void)0).
/// bench_overhead asserts the compiled-in-but-disabled path costs <1% of
/// pipeline time.
///
/// Spans carry nanosecond timestamps from one process-wide steady-clock
/// epoch. renderChromeTrace() exports the drained spans as Chrome
/// trace-event JSON ("X" complete events, microsecond units), directly
/// loadable in Perfetto or chrome://tracing. Parent/child structure is not
/// recorded explicitly; it is reconstructed from interval containment
/// (analysis/Report.h), which is why rings store a per-thread push sequence:
/// completion order breaks ties between zero-length nested spans.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_TRACE_H
#define EEL_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eel {

namespace trace_detail {
extern std::atomic<bool> Enabled;
} // namespace trace_detail

/// True when span recording is on. Relaxed: the flag only toggles at
/// quiescent points (Executable construction, tests), never mid-pipeline.
inline bool traceEnabled() {
  return trace_detail::Enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on or off process-wide. Call only from quiescent
/// points; spans already open keep the enablement they saw at entry.
void traceSetEnabled(bool On);

/// The calling thread's current request id (0 = none). Every span recorded
/// while an id is set carries it, and structured log records stamp it, so
/// one request can be correlated across connection thread, pool workers
/// (parallelForEach propagates the submitter's id into helper bodies), log
/// lines, and exported Chrome traces.
uint64_t traceRequestId();

/// Sets the calling thread's request id. Prefer TraceRequestScope.
void traceSetRequestId(uint64_t Rid);

/// RAII: sets the calling thread's request id for the enclosing scope and
/// restores the previous id on exit (scopes nest).
class TraceRequestScope {
public:
  explicit TraceRequestScope(uint64_t Rid) : Saved(traceRequestId()) {
    traceSetRequestId(Rid);
  }
  ~TraceRequestScope() { traceSetRequestId(Saved); }
  TraceRequestScope(const TraceRequestScope &) = delete;
  TraceRequestScope &operator=(const TraceRequestScope &) = delete;

private:
  uint64_t Saved;
};

/// One completed span. Duration is EndNs - StartNs; both are nanoseconds
/// since the collector's steady-clock epoch, so they compare across
/// threads.
struct TraceEvent {
  const char *Name; ///< Static string; instrumentation passes literals.
  uint64_t StartNs;
  uint64_t EndNs;
  uint32_t Tid; ///< Collector-assigned dense thread id (stable per ring).
  uint64_t Seq; ///< Per-thread push sequence (completion order).
  /// Request the span belongs to (0 = none); stamped from the recording
  /// thread's traceRequestId() at span start.
  uint64_t RequestId = 0;
  /// Up to two typed arguments ("routine" names, counts). Keys are static
  /// literals; a null key means the slot is unused.
  const char *Key0 = nullptr;
  std::string Val0;
  const char *Key1 = nullptr;
  uint64_t Val1 = 0;
};

/// Process-wide span collector: per-thread overwrite-oldest ring buffers
/// merged at quiescent points.
class TraceCollector {
public:
  /// Ring capacity per thread. Power of two; a full edit pipeline over the
  /// bench workloads records a few thousand spans per thread, so 32K keeps
  /// everything with headroom while bounding memory (~2 MiB/thread).
  static constexpr size_t RingCapacity = size_t(1) << 15;

  static TraceCollector &instance();

  /// Records one completed span into the calling thread's ring (lock-free
  /// once the ring exists; overwrites the oldest entry when full).
  void record(TraceEvent Ev);

  /// Merges every ring's contents, ordered by (Tid, Seq). Does not clear
  /// the rings. Safe concurrent with recorders (each ring carries its own
  /// mutex, so live daemons can drain slow-request exemplars and serve
  /// scrapes mid-load); the result is a consistent per-ring snapshot,
  /// though spans completing during the drain may or may not appear.
  std::vector<TraceEvent> drain() const;

  /// Clears ring contents and the dropped-span count. Ring buffers
  /// themselves are never freed — cached thread-local pointers into them
  /// must stay valid for the life of the process (StatRegistry rule).
  void reset();

  /// Number of per-thread rings ever created. With tracing disabled this
  /// must not grow: the hot path allocates nothing.
  size_t bufferCount() const;

  /// Total spans recorded (and retained) across all rings.
  size_t recordedCount() const;

  /// Spans overwritten because a ring wrapped. Exposed so exports can
  /// disclose truncation instead of silently presenting a partial timeline.
  uint64_t droppedCount() const;

  /// Nanoseconds since the collector's epoch (first use of the clock).
  static uint64_t nowNs();

private:
  struct Ring {
    explicit Ring(uint32_t Tid) : Tid(Tid) { Events.resize(RingCapacity); }
    /// Guards Events/Pushed so drain()/reset() are safe concurrent with the
    /// owning thread's record(). The owner is the only writer, so its lock
    /// acquisition is uncontended except during a drain.
    mutable std::mutex RM;
    std::vector<TraceEvent> Events;
    uint64_t Pushed = 0; ///< Total pushes; count retained = min(Pushed, cap).
    uint32_t Tid;
  };

  Ring &localRing();

  mutable std::mutex M; ///< Guards the ring list, not ring contents.
  std::vector<std::unique_ptr<Ring>> Rings;
};

/// RAII span: stamps the start on construction, records into the ring on
/// destruction. All constructors no-op (no clock read) when tracing is
/// runtime-disabled.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name) {
    if (traceEnabled())
      begin(Name);
  }
  /// Span with one string argument (e.g. the routine name). By-reference
  /// so the disabled path copies (and allocates) nothing.
  TraceSpan(const char *Name, const char *K0, const std::string &V0) {
    if (traceEnabled()) {
      begin(Name);
      Ev.Key0 = K0;
      Ev.Val0 = V0;
    }
  }
  /// Span with a string argument and an integer argument.
  TraceSpan(const char *Name, const char *K0, const std::string &V0,
            const char *K1, uint64_t V1) {
    if (traceEnabled()) {
      begin(Name);
      Ev.Key0 = K0;
      Ev.Val0 = V0;
      Ev.Key1 = K1;
      Ev.Val1 = V1;
    }
  }
  /// Span with one integer argument.
  TraceSpan(const char *Name, const char *K1, uint64_t V1) {
    if (traceEnabled()) {
      begin(Name);
      Ev.Key1 = K1;
      Ev.Val1 = V1;
    }
  }

  ~TraceSpan() {
    if (Live)
      end();
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  void begin(const char *Name) {
    Live = true;
    Ev.Name = Name;
    Ev.RequestId = traceRequestId();
    Ev.StartNs = TraceCollector::nowNs();
  }
  void end();

  bool Live = false;
  TraceEvent Ev;
};

/// Renders \p Events as a Chrome trace-event JSON document (the
/// {"traceEvents": [...]} envelope with "X" complete events), loadable in
/// Perfetto. Timestamps convert to microseconds with nanosecond remainders
/// preserved as fractions.
std::string renderChromeTrace(const std::vector<TraceEvent> &Events);

#define EEL_TRACE_CAT2(A, B) A##B
#define EEL_TRACE_CAT(A, B) EEL_TRACE_CAT2(A, B)

/// Opens a span covering the rest of the enclosing scope:
///   EEL_TRACE_SCOPE("cfg_build", "routine", R.name());
/// Compiles out entirely under -DEEL_TRACE_DISABLED.
#ifdef EEL_TRACE_DISABLED
#define EEL_TRACE_SCOPE(...) ((void)0)
#else
#define EEL_TRACE_SCOPE(...)                                                   \
  ::eel::TraceSpan EEL_TRACE_CAT(EelTraceSpan_, __LINE__)(__VA_ARGS__)
#endif

} // namespace eel

#endif // EEL_SUPPORT_TRACE_H
