//===- support/RegSet.h - Dense register-id sets ---------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set of machine register ids represented as a 64-bit mask. Both target
/// architectures in this project have at most 32 integer registers plus a
/// handful of special resources (condition codes, PC), so a single word is
/// sufficient and keeps the data-flow analyses cheap. Register-id numbering
/// is target-defined; by convention id 32 is the condition-code register and
/// id 33 is the program counter.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_REGSET_H
#define EEL_SUPPORT_REGSET_H

#include <cassert>
#include <cstdint>
#include <initializer_list>

namespace eel {

/// Register-id constants shared by all targets in this project.
enum : unsigned {
  RegIdCC = 32, ///< Condition-code register (SRISC only).
  RegIdPC = 33, ///< Program counter pseudo-register.
  MaxRegId = 63
};

/// A value-type set of register ids in [0, 63].
class RegSet {
public:
  RegSet() = default;
  RegSet(std::initializer_list<unsigned> Ids) {
    for (unsigned Id : Ids)
      insert(Id);
  }

  static RegSet fromMask(uint64_t Mask) {
    RegSet S;
    S.Bits = Mask;
    return S;
  }

  bool empty() const { return Bits == 0; }
  unsigned size() const { return static_cast<unsigned>(__builtin_popcountll(Bits)); }
  uint64_t mask() const { return Bits; }

  bool contains(unsigned Id) const {
    assert(Id <= MaxRegId && "register id out of range");
    return (Bits >> Id) & 1u;
  }

  void insert(unsigned Id) {
    assert(Id <= MaxRegId && "register id out of range");
    Bits |= uint64_t(1) << Id;
  }

  void insert(const RegSet &Other) { Bits |= Other.Bits; }

  void remove(unsigned Id) {
    assert(Id <= MaxRegId && "register id out of range");
    Bits &= ~(uint64_t(1) << Id);
  }

  void remove(const RegSet &Other) { Bits &= ~Other.Bits; }

  void clear() { Bits = 0; }

  /// Returns the lowest register id in the set; the set must be non-empty.
  unsigned first() const {
    assert(!empty() && "first() on empty RegSet");
    return static_cast<unsigned>(__builtin_ctzll(Bits));
  }

  RegSet operator|(const RegSet &O) const { return fromMask(Bits | O.Bits); }
  RegSet operator&(const RegSet &O) const { return fromMask(Bits & O.Bits); }
  RegSet operator-(const RegSet &O) const { return fromMask(Bits & ~O.Bits); }
  RegSet &operator|=(const RegSet &O) {
    Bits |= O.Bits;
    return *this;
  }
  RegSet &operator&=(const RegSet &O) {
    Bits &= O.Bits;
    return *this;
  }
  bool operator==(const RegSet &O) const { return Bits == O.Bits; }
  bool operator!=(const RegSet &O) const { return Bits != O.Bits; }

  /// Iterates set register ids in increasing order.
  class iterator {
  public:
    explicit iterator(uint64_t Bits) : Rest(Bits) {}
    unsigned operator*() const {
      return static_cast<unsigned>(__builtin_ctzll(Rest));
    }
    iterator &operator++() {
      Rest &= Rest - 1;
      return *this;
    }
    bool operator!=(const iterator &O) const { return Rest != O.Rest; }

  private:
    uint64_t Rest;
  };

  iterator begin() const { return iterator(Bits); }
  iterator end() const { return iterator(0); }

private:
  uint64_t Bits = 0;
};

} // namespace eel

#endif // EEL_SUPPORT_REGSET_H
