//===- support/ByteBuffer.h - Little-endian serialization ------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-stream writer/reader pair used to serialize SXF executables. All
/// multi-byte quantities are little-endian regardless of host order.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_BYTEBUFFER_H
#define EEL_SUPPORT_BYTEBUFFER_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace eel {

/// Appends little-endian scalars and raw bytes to a growable buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Bytes.push_back(V); }

  void writeU16(uint16_t V) {
    writeU8(static_cast<uint8_t>(V));
    writeU8(static_cast<uint8_t>(V >> 8));
  }

  void writeU32(uint32_t V) {
    writeU16(static_cast<uint16_t>(V));
    writeU16(static_cast<uint16_t>(V >> 16));
  }

  void writeU64(uint64_t V) {
    writeU32(static_cast<uint32_t>(V));
    writeU32(static_cast<uint32_t>(V >> 32));
  }

  void writeBytes(const uint8_t *Data, size_t N) {
    Bytes.insert(Bytes.end(), Data, Data + N);
  }

  void writeString(const std::string &S) {
    writeU32(static_cast<uint32_t>(S.size()));
    writeBytes(reinterpret_cast<const uint8_t *>(S.data()), S.size());
  }

  /// Overwrites a previously written 32-bit slot (for back-patching sizes).
  void patchU32(size_t Offset, uint32_t V) {
    for (unsigned I = 0; I < 4; ++I)
      Bytes[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Consumes little-endian scalars from a byte buffer. Reads past the end
/// are flagged rather than asserting so that a malformed input file produces
/// a recoverable error in the SXF reader. All bounds checks are written in
/// subtraction form (`Len > N - Pos`, with the invariant Pos <= N) — the
/// addition form `Pos + Len > N` silently passes when the sum wraps, which
/// is exactly the case a hostile length field produces.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t N) : Data(Data), N(N) {}
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), N(Bytes.size()) {}

  bool failed() const { return Failed; }
  size_t remaining() const { return N - Pos; }

  /// Current read cursor; the byte offset attached to decode errors.
  size_t pos() const { return Pos; }

  uint8_t readU8() {
    if (Pos >= N) {
      Failed = true;
      return 0;
    }
    return Data[Pos++];
  }

  uint16_t readU16() {
    uint16_t Lo = readU8();
    uint16_t Hi = readU8();
    return static_cast<uint16_t>(Lo | (Hi << 8));
  }

  uint32_t readU32() {
    uint32_t Lo = readU16();
    uint32_t Hi = readU16();
    return Lo | (Hi << 16);
  }

  uint64_t readU64() {
    uint64_t Lo = readU32();
    uint64_t Hi = readU32();
    return Lo | (Hi << 32);
  }

  std::string readString() {
    uint32_t Len = readU32();
    if (Failed || Len > N - Pos) {
      Failed = true;
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }

  bool readBytes(uint8_t *Out, size_t Count) {
    if (Count > N - Pos) {
      Failed = true;
      return false;
    }
    // Count == 0 must not reach memcpy: an empty destination vector hands
    // us a null Out, and memcpy's arguments are declared never-null.
    if (Count != 0) {
      std::memcpy(Out, Data + Pos, Count);
      Pos += Count;
    }
    return true;
  }

private:
  const uint8_t *Data;
  size_t N;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace eel

#endif // EEL_SUPPORT_BYTEBUFFER_H
