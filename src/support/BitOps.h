//===- support/BitOps.h - Bit-field extraction and insertion ---*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-level helpers shared by the instruction encoders/decoders and by the
/// spawn machine-description evaluator. Bit positions follow the convention
/// used in the paper's machine descriptions: bit 0 is the least significant
/// bit and field `lo:hi` covers bits lo through hi inclusive.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_BITOPS_H
#define EEL_SUPPORT_BITOPS_H

#include <cassert>
#include <cstdint>

namespace eel {

/// Extracts bits [Lo, Hi] (inclusive, Lo <= Hi <= 31) of \p Word.
constexpr uint32_t extractBits(uint32_t Word, unsigned Lo, unsigned Hi) {
  assert(Lo <= Hi && Hi < 32 && "malformed bit range");
  uint32_t Width = Hi - Lo + 1;
  uint32_t Mask = Width == 32 ? 0xFFFFFFFFu : ((1u << Width) - 1u);
  return (Word >> Lo) & Mask;
}

/// Returns \p Word with bits [Lo, Hi] replaced by the low bits of \p Value.
constexpr uint32_t insertBits(uint32_t Word, unsigned Lo, unsigned Hi,
                              uint32_t Value) {
  assert(Lo <= Hi && Hi < 32 && "malformed bit range");
  uint32_t Width = Hi - Lo + 1;
  uint32_t Mask = Width == 32 ? 0xFFFFFFFFu : ((1u << Width) - 1u);
  return (Word & ~(Mask << Lo)) | ((Value & Mask) << Lo);
}

/// Sign-extends the low \p Bits bits of \p Value to 32 bits.
constexpr int32_t signExtend(uint32_t Value, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 32 && "malformed width");
  if (Bits == 32)
    return static_cast<int32_t>(Value);
  uint32_t SignBit = 1u << (Bits - 1);
  uint32_t Mask = (1u << Bits) - 1u;
  Value &= Mask;
  return static_cast<int32_t>((Value ^ SignBit) - SignBit);
}

/// Returns true if \p Value fits in a signed field of \p Bits bits.
constexpr bool fitsSigned(int64_t Value, unsigned Bits) {
  assert(Bits >= 1 && Bits < 64 && "malformed width");
  int64_t Min = -(int64_t(1) << (Bits - 1));
  int64_t Max = (int64_t(1) << (Bits - 1)) - 1;
  return Value >= Min && Value <= Max;
}

/// Returns true if \p Value fits in an unsigned field of \p Bits bits.
constexpr bool fitsUnsigned(uint64_t Value, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "malformed width");
  if (Bits == 64)
    return true;
  return Value < (uint64_t(1) << Bits);
}

} // namespace eel

#endif // EEL_SUPPORT_BITOPS_H
