//===- support/Stats.h - Named statistic counters --------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters in the spirit of LLVM's Statistic class.
/// The Table 1 reproduction compares the number of objects the EEL-based
/// profiler allocates against the ad-hoc baseline (the paper reports
/// 317,494 vs 84,655), so allocation-heavy classes bump counters here.
///
/// Sharded for the parallel editing pipeline: each thread accumulates into
/// its own shard, so the hot path (bumpStat from CFG construction, slicing,
/// and layout workers) never takes a lock or bounces a cache line between
/// cores. read() and snapshot() merge the shards; call them only from
/// quiescent points (after parallelForEach returns, which synchronizes
/// with every worker's writes). Because merging sums per-thread deltas,
/// totals are deterministic regardless of thread count or schedule.
///
/// `time.*` counters hold wall-clock phase timings and are exempt from the
/// determinism guarantee — filter them out when comparing snapshots.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_STATS_H
#define EEL_SUPPORT_STATS_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace eel {

/// Process-wide registry of named counters, sharded per thread. Shards are
/// created on a thread's first bump and retained for the life of the
/// process (a worker's contribution survives the worker), so merged totals
/// never lose updates.
class StatRegistry {
public:
  static StatRegistry &instance();

  /// Returns a reference to the calling thread's counter named \p Name,
  /// creating it at zero. The reference is THREAD-LOCAL: it aggregates
  /// only this thread's increments and stays valid for the process's
  /// lifetime, but reading it does not observe other threads' bumps — use
  /// read() for merged totals.
  uint64_t &counter(const std::string &Name);

  /// Merged total of \p Name across all shards; missing counters read as
  /// zero. Call from quiescent points only (no concurrent bumpers).
  uint64_t read(const std::string &Name) const;

  /// Resets every counter in every shard to zero. Call from quiescent
  /// points only.
  void resetAll();

  /// Like resetAll(), but counters whose name starts with \p ExemptPrefix
  /// keep their values. Long-lived processes (eel-serve) reset per-request
  /// pipeline counters between requests while their cumulative service
  /// counters (`serve.*`) keep accumulating. An empty prefix exempts
  /// nothing. Call from quiescent points only.
  void resetAllExcept(const std::string &ExemptPrefix);

  /// Merged snapshot of all counters, sorted by name so the result is
  /// identical whatever thread count produced it. Call from quiescent
  /// points only.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const;

private:
  struct Shard {
    std::unordered_map<std::string, uint64_t> Counters;
  };

  Shard &localShard();

  mutable std::mutex M; ///< Guards the shard list, not the counters.
  std::vector<std::unique_ptr<Shard>> Shards;
};

/// Convenience: increments the named counter by \p Delta (this thread's
/// shard; lock-free once the shard exists).
inline void bumpStat(const std::string &Name, uint64_t Delta = 1) {
  StatRegistry::instance().counter(Name) += Delta;
}

/// Accumulates the enclosing scope's wall-clock duration, in microseconds,
/// into the named counter on destruction. Used for the per-phase pipeline
/// timers (time.cfg_build_us, time.liveness_us, time.layout_us); being
/// wall-clock, these are excluded from determinism comparisons.
class ScopedStatTimer {
public:
  explicit ScopedStatTimer(const char *Name)
      : Name(Name), Start(std::chrono::steady_clock::now()) {}
  ~ScopedStatTimer() {
    auto Elapsed = std::chrono::steady_clock::now() - Start;
    bumpStat(Name, static_cast<uint64_t>(
                       std::chrono::duration_cast<std::chrono::microseconds>(
                           Elapsed)
                           .count()));
  }

  ScopedStatTimer(const ScopedStatTimer &) = delete;
  ScopedStatTimer &operator=(const ScopedStatTimer &) = delete;

private:
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace eel

#endif // EEL_SUPPORT_STATS_H
