//===- support/Stats.h - Named statistic counters --------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters in the spirit of LLVM's Statistic class.
/// The Table 1 reproduction compares the number of objects the EEL-based
/// profiler allocates against the ad-hoc baseline (the paper reports
/// 317,494 vs 84,655), so allocation-heavy classes bump counters here.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_STATS_H
#define EEL_SUPPORT_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace eel {

/// Process-wide registry of named counters. Not thread-safe; the project is
/// single-threaded by design (the original EEL predates threads in tools).
class StatRegistry {
public:
  static StatRegistry &instance();

  /// Returns a reference to the counter named \p Name, creating it at zero.
  uint64_t &counter(const std::string &Name);

  /// Reads a counter without creating it; missing counters read as zero.
  uint64_t read(const std::string &Name) const;

  /// Resets every registered counter to zero.
  void resetAll();

  /// Snapshot of all counters in registration order.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const;

private:
  std::vector<std::pair<std::string, uint64_t>> Counters;
};

/// Convenience: increments the named counter by \p Delta.
inline void bumpStat(const std::string &Name, uint64_t Delta = 1) {
  StatRegistry::instance().counter(Name) += Delta;
}

} // namespace eel

#endif // EEL_SUPPORT_STATS_H
