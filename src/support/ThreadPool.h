//===- support/ThreadPool.h - Work-stealing thread pool --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool and the parallelForEach helper the
/// editing pipeline fans out on. EEL's per-routine analyses — CFG
/// construction with delay-slot normalization, liveness, backward slicing
/// of indirect jumps, and routine layout — are independent across routines,
/// so whole-executable throughput scales with cores once the two pieces of
/// cross-routine state (the instruction flyweight pool and the statistics
/// registry) are sharded.
///
/// Scheduling model: each worker owns a deque; submissions are distributed
/// round-robin; a worker pops its own deque LIFO and steals FIFO from
/// others when empty. Blocking waits (parallelForEach on the calling
/// thread) help execute pool tasks instead of sleeping, so nested
/// fan-outs cannot deadlock even on a single-core pool.
///
/// Determinism contract: parallelForEach runs the body exactly once per
/// index, and its return synchronizes-with every body invocation. Callers
/// that want results identical to the serial path write into per-index
/// slots and merge in index order afterwards; the schedule is the only
/// thing that varies between runs.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_THREADPOOL_H
#define EEL_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eel {

class ThreadPool {
public:
  /// Creates a pool with \p WorkerCount persistent worker threads (0 is
  /// allowed: every task then runs on helping callers).
  explicit ThreadPool(unsigned WorkerCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Process-wide pool, lazily created with hardware_concurrency() - 1
  /// workers. Grows on demand via ensureWorkers().
  static ThreadPool &shared();

  unsigned workerCount() const;

  /// Grows the pool to at least \p N workers (bounded by MaxWorkers).
  /// Lets tests request more threads than the machine has cores, which is
  /// what shakes races out under -fsanitize=thread.
  void ensureWorkers(unsigned N);

  /// Enqueues \p Task on a worker deque (round-robin).
  ///
  /// Overflow contract (the eel-serve fix): when the pending-task count has
  /// reached queueCapacity(), an *external* submitter blocks until workers
  /// drain below capacity — it never runs the task inline on its own stack,
  /// which under a long-lived service would let a request handler re-enter
  /// the pipeline recursively (unbounded stack depth, and a deadlock once
  /// the inlined task itself blocks on pool progress). A submitter that is
  /// currently executing a task *of this pool* is exempt from the bound and
  /// enqueues immediately: blocking it could deadlock the pool against
  /// itself (every worker stuck in submit, nobody draining), so internal
  /// fan-out treats the capacity as a soft bound instead.
  void submit(std::function<void()> Task);

  /// Non-blocking submit: enqueues and returns true, or returns false
  /// without running anything when the queue is saturated (or the pool has
  /// no workers, where the only way to run the task would be inline on the
  /// caller — exactly the re-entrancy hazard this path exists to avoid).
  /// Admission-control callers (eel-serve) turn false into a structured
  /// rejection instead of queueing without bound.
  bool trySubmit(std::function<void()> Task);

  /// Soft bound on queued-but-unstarted tasks; 0 disables the bound.
  /// Concurrent submitters may overshoot by one task each (the check is
  /// optimistic), which is fine for backpressure purposes.
  void setQueueCapacity(size_t Cap);
  size_t queueCapacity() const;

  /// Tasks enqueued but not yet started. Approximate under concurrency;
  /// exported as a pool-occupancy gauge by the eel-serve scrape frame.
  size_t pendingTasks() const {
    return PendingTasks.load(std::memory_order_relaxed);
  }

  /// True when the calling thread is currently executing a task submitted
  /// to THIS pool (worker loop or a helping caller).
  bool inPoolTask() const;

  /// Runs pool tasks on the calling thread until \p Done returns true.
  /// Used by blocking waits so a caller that is itself a pool worker makes
  /// progress instead of deadlocking.
  void helpUntil(const std::function<bool()> &Done);

  static constexpr unsigned MaxWorkers = 64;

  /// Default queueCapacity(): far above what the pipeline's own fan-out
  /// queues, so only service-scale request floods ever hit the bound.
  static constexpr size_t DefaultQueueCapacity = 4096;

private:
  struct Worker {
    std::mutex M;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(size_t Index);
  bool takeTask(size_t SelfIndex, std::function<void()> &Task);
  void enqueue(std::function<void()> Task, unsigned Count);
  void runTask(std::function<void()> &Task);

  mutable std::mutex GrowM; ///< Guards Workers/Threads growth.
  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> WorkerCountA{0};
  std::atomic<size_t> QueueCap{DefaultQueueCapacity};
  std::atomic<size_t> NextSubmit{0};
  std::atomic<size_t> PendingTasks{0};
  std::atomic<bool> Stopping{false};
  std::mutex WakeM;
  std::condition_variable WakeCV;
};

/// Runs Body(0), ..., Body(N-1), fanning out across \p Threads
/// participants (the calling thread included). Threads <= 1 or N <= 1 runs
/// inline in index order — the legacy serial path, kept as the reference
/// oracle. Indices are handed out dynamically (self-balancing), each runs
/// exactly once, and all invocations happen-before the return.
void parallelForEach(unsigned Threads, size_t N,
                     const std::function<void(size_t)> &Body);

} // namespace eel

#endif // EEL_SUPPORT_THREADPOOL_H
