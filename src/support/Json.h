//===- support/Json.h - Minimal JSON writer, parser, validator --*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON toolkit shared by the observability layer: a
/// streaming writer (JsonWriter) used by the trace/metrics exporters and
/// the run-report builder, and a small DOM (JsonValue + parseJson/dumpJson)
/// used by tests and the json-check tool to prove every machine-readable
/// artifact the pipeline emits actually parses. The parser is strict
/// (RFC 8259 grammar, depth-limited, whole-input) so "json-check accepted
/// it" means any real consumer will too; it exists precisely so `make
/// reports` needs no external validator.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_JSON_H
#define EEL_SUPPORT_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace eel {

/// Escapes \p In for inclusion inside a JSON string literal.
inline std::string jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size());
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// A streaming JSON builder. Caller drives structure (beginObject/key/
/// value/endObject); the writer tracks comma placement. No pretty-printing
/// beyond optional two-space indentation, which keeps diffs of committed
/// reports readable.
class JsonWriter {
public:
  explicit JsonWriter(bool Indent = true) : Indent(Indent) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const std::string &K) {
    comma();
    Out += '"';
    Out += jsonEscape(K);
    Out += "\": ";
    PendingKey = true;
  }

  void value(const std::string &V) { raw('"' + jsonEscape(V) + '"'); }
  void value(const char *V) { value(std::string(V)); }
  void value(bool V) { raw(V ? "true" : "false"); }
  void value(uint64_t V) { raw(std::to_string(V)); }
  void value(int64_t V) { raw(std::to_string(V)); }
  void value(int V) { raw(std::to_string(V)); }
  void value(unsigned V) { raw(std::to_string(V)); }
  void value(double V) {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    raw(Buf);
  }
  void valueNull() { raw("null"); }
  /// Hex-formatted integer emitted as a JSON string ("0x1a2b").
  void valueHex(uint64_t V) {
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "\"0x%llx\"",
                  static_cast<unsigned long long>(V));
    raw(Buf);
  }
  /// Splices pre-rendered JSON (e.g. a nested document) as one value.
  void valueRaw(const std::string &Json) { raw(Json); }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void comma() {
    if (!First)
      Out += Indent ? ",\n" : ", ";
    else if (!Stack.empty())
      Out += Indent ? "\n" : "";
    First = false;
    if (Indent && !PendingKey)
      Out.append(2 * Stack.size(), ' ');
  }

  void open(char C) {
    if (!PendingKey)
      comma();
    PendingKey = false;
    Out += C;
    Stack.push_back(C);
    First = true;
  }

  void close(char C) {
    Stack.pop_back();
    if (!First && Indent) {
      Out += '\n';
      Out.append(2 * Stack.size(), ' ');
    }
    Out += C;
    First = false;
  }

  void raw(const std::string &V) {
    if (!PendingKey)
      comma();
    PendingKey = false;
    Out += V;
  }

  std::string Out;
  std::vector<char> Stack;
  bool First = true;
  bool PendingKey = false;
  bool Indent;
};

/// A parsed JSON value. Object member order is preserved so dumping is
/// stable, which lets tests assert round-trip fixpoints.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  std::string Num; ///< Verbatim number text (round-trip-exact).
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, Value] : Obj)
      if (Name == Key)
        return &Value;
    return nullptr;
  }

  double asNumber() const { return Num.empty() ? 0.0 : std::stod(Num); }
};

namespace json_detail {

class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  Expected<JsonValue> run() {
    skipWs();
    Expected<JsonValue> V = parseValue(0);
    if (V.hasError())
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing bytes after JSON document");
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  Error fail(const std::string &Msg) {
    return Error("JSON parse error at byte " + std::to_string(Pos) + ": " +
                 Msg);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Expected<JsonValue> parseValue(unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"')
      return parseString();
    if (C == 't' || C == 'f')
      return parseBool();
    if (C == 'n') {
      if (Text.compare(Pos, 4, "null") != 0)
        return fail("bad literal");
      Pos += 4;
      return JsonValue();
    }
    return parseNumber();
  }

  Expected<JsonValue> parseObject(unsigned Depth) {
    JsonValue V;
    V.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (eat('}'))
      return V;
    while (true) {
      skipWs();
      Expected<JsonValue> Key = parseString();
      if (Key.hasError())
        return Key.error();
      skipWs();
      if (!eat(':'))
        return fail("expected ':' in object");
      skipWs();
      Expected<JsonValue> Member = parseValue(Depth + 1);
      if (Member.hasError())
        return Member;
      V.Obj.emplace_back(Key.value().Str, Member.takeValue());
      skipWs();
      if (eat('}'))
        return V;
      if (!eat(','))
        return fail("expected ',' or '}' in object");
    }
  }

  Expected<JsonValue> parseArray(unsigned Depth) {
    JsonValue V;
    V.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (eat(']'))
      return V;
    while (true) {
      skipWs();
      Expected<JsonValue> Elem = parseValue(Depth + 1);
      if (Elem.hasError())
        return Elem;
      V.Arr.push_back(Elem.takeValue());
      skipWs();
      if (eat(']'))
        return V;
      if (!eat(','))
        return fail("expected ',' or ']' in array");
    }
  }

  Expected<JsonValue> parseString() {
    if (!eat('"'))
      return fail("expected string");
    JsonValue V;
    V.K = JsonValue::Kind::String;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return V;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        V.Str += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        V.Str += E;
        break;
      case 'b':
        V.Str += '\b';
        break;
      case 'f':
        V.Str += '\f';
        break;
      case 'n':
        V.Str += '\n';
        break;
      case 'r':
        V.Str += '\r';
        break;
      case 't':
        V.Str += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode (no surrogate-pair recombination: our own emitters
        // only escape control characters, which fit one unit).
        if (Code < 0x80) {
          V.Str += static_cast<char>(Code);
        } else if (Code < 0x800) {
          V.Str += static_cast<char>(0xC0 | (Code >> 6));
          V.Str += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          V.Str += static_cast<char>(0xE0 | (Code >> 12));
          V.Str += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          V.Str += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Expected<JsonValue> parseBool() {
    JsonValue V;
    V.K = JsonValue::Kind::Bool;
    if (Text.compare(Pos, 4, "true") == 0) {
      V.B = true;
      Pos += 4;
      return V;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      V.B = false;
      Pos += 5;
      return V;
    }
    return fail("bad literal");
  }

  Expected<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (eat('-')) {
    }
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("expected value");
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    if (eat('.')) {
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    JsonValue V;
    V.K = JsonValue::Kind::Number;
    V.Num = Text.substr(Start, Pos - Start);
    return V;
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace json_detail

/// Parses \p Text as one complete JSON document.
inline Expected<JsonValue> parseJson(const std::string &Text) {
  return json_detail::Parser(Text).run();
}

/// Canonical single-line serialization of a parsed value. Number text is
/// emitted verbatim, so dump(parse(dump(x))) == dump(x).
inline std::string dumpJson(const JsonValue &V) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    return "null";
  case JsonValue::Kind::Bool:
    return V.B ? "true" : "false";
  case JsonValue::Kind::Number:
    return V.Num;
  case JsonValue::Kind::String:
    return '"' + jsonEscape(V.Str) + '"';
  case JsonValue::Kind::Array: {
    std::string S = "[";
    for (size_t I = 0; I < V.Arr.size(); ++I) {
      if (I)
        S += ",";
      S += dumpJson(V.Arr[I]);
    }
    return S + "]";
  }
  case JsonValue::Kind::Object: {
    std::string S = "{";
    for (size_t I = 0; I < V.Obj.size(); ++I) {
      if (I)
        S += ",";
      S += '"' + jsonEscape(V.Obj[I].first) + "\":" + dumpJson(V.Obj[I].second);
    }
    return S + "}";
  }
  }
  return "null";
}

} // namespace eel

#endif // EEL_SUPPORT_JSON_H
