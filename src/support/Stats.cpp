//===- support/Stats.cpp - Named statistic counters ----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <map>

using namespace eel;

StatRegistry &StatRegistry::instance() {
  static StatRegistry Registry;
  return Registry;
}

StatRegistry::Shard &StatRegistry::localShard() {
  // One shard per thread, created on first use and owned by the registry
  // so it outlives the thread. The cached pointer makes the common case
  // (bump after the first) lock-free. The owner check keeps a second
  // registry instance (tests) from borrowing another registry's shard.
  thread_local StatRegistry *Owner = nullptr;
  thread_local Shard *Local = nullptr;
  if (Owner != this) {
    std::lock_guard<std::mutex> Lock(M);
    Shards.push_back(std::make_unique<Shard>());
    Local = Shards.back().get();
    Owner = this;
  }
  return *Local;
}

uint64_t &StatRegistry::counter(const std::string &Name) {
  // unordered_map references stay valid across rehashing, so handing the
  // slot out by reference is safe for the thread that owns the shard.
  return localShard().Counters[Name];
}

uint64_t StatRegistry::read(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t Total = 0;
  for (const auto &Shard : Shards) {
    auto It = Shard->Counters.find(Name);
    if (It != Shard->Counters.end())
      Total += It->second;
  }
  return Total;
}

void StatRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &Shard : Shards)
    for (auto &Entry : Shard->Counters)
      Entry.second = 0;
}

void StatRegistry::resetAllExcept(const std::string &ExemptPrefix) {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &Shard : Shards)
    for (auto &Entry : Shard->Counters)
      if (ExemptPrefix.empty() ||
          Entry.first.compare(0, ExemptPrefix.size(), ExemptPrefix) != 0)
        Entry.second = 0;
}

std::vector<std::pair<std::string, uint64_t>> StatRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::map<std::string, uint64_t> Merged;
  for (const auto &Shard : Shards)
    for (const auto &Entry : Shard->Counters)
      Merged[Entry.first] += Entry.second;
  return {Merged.begin(), Merged.end()};
}
