//===- support/Stats.cpp - Named statistic counters ----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

using namespace eel;

StatRegistry &StatRegistry::instance() {
  static StatRegistry Registry;
  return Registry;
}

uint64_t &StatRegistry::counter(const std::string &Name) {
  for (auto &Entry : Counters)
    if (Entry.first == Name)
      return Entry.second;
  Counters.emplace_back(Name, 0);
  return Counters.back().second;
}

uint64_t StatRegistry::read(const std::string &Name) const {
  for (const auto &Entry : Counters)
    if (Entry.first == Name)
      return Entry.second;
  return 0;
}

void StatRegistry::resetAll() {
  for (auto &Entry : Counters)
    Entry.second = 0;
}

std::vector<std::pair<std::string, uint64_t>> StatRegistry::snapshot() const {
  return Counters;
}
