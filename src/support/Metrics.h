//===- support/Metrics.h - Log-bucketed histogram metrics ------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic log-bucketed histograms extending the StatRegistry counter
/// model: per-routine CFG-build latency, block/instruction counts per
/// routine, scavenge spill rates. Sharded per thread exactly like
/// StatRegistry (lock-free hot path, merge at quiescent points).
///
/// Bucketing is power-of-two: value v lands in bucket std::bit_width(v)
/// (v == 0 in bucket 0), i.e. bucket i >= 1 covers [2^(i-1), 2^i). With 64
/// possible widths plus the zero bucket that is 65 buckets — enough for any
/// uint64_t with no configuration. Because the bucket of a sample depends
/// only on its value, and the pipeline records the same per-routine sample
/// set whatever the schedule, merged bucket counts, sums, and min/max are
/// bit-identical across thread counts. The exception is wall-clock-valued
/// histograms (names under time.*), which are exempt just like time.*
/// counters; determinism comparisons filter them out.
///
/// Exporters: metricsJson() (embedded in run reports) and
/// metricsPrometheus() (text exposition format with cumulative
/// `_bucket{le=...}` series) cover machine ingestion on both sides of the
/// fence.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_METRICS_H
#define EEL_SUPPORT_METRICS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace eel {

/// Number of histogram buckets: the zero bucket plus one per possible
/// std::bit_width of a uint64_t sample.
constexpr unsigned HistogramBuckets = 65;

/// Bucket index for sample \p V: 0 for zero, otherwise bit_width(V)
/// (bucket i covers [2^(i-1), 2^i)).
inline unsigned histogramBucket(uint64_t V) {
  return static_cast<unsigned>(std::bit_width(V));
}

/// Inclusive upper bound of bucket \p I (the Prometheus `le` label).
inline uint64_t histogramBucketLe(unsigned I) {
  if (I == 0)
    return 0;
  if (I >= 64)
    return std::numeric_limits<uint64_t>::max();
  return (uint64_t(1) << I) - 1;
}

/// Merged view of one histogram at a quiescent point.
struct HistogramSnapshot {
  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = std::numeric_limits<uint64_t>::max();
  uint64_t Max = 0;
  uint64_t Buckets[HistogramBuckets] = {};

  /// Upper bound of the bucket holding the q-quantile sample (q in [0,1]).
  /// Coarse by construction — log buckets — but deterministic.
  uint64_t quantileUpperBound(double Q) const;

  /// Estimated q-quantile by deterministic log-bucket interpolation:
  /// locate the bucket holding the rank-q sample, interpolate linearly
  /// across that bucket's [2^(i-1), 2^i - 1] span by the rank's position
  /// within the bucket, then clamp to the observed [Min, Max] so
  /// single-bucket and single-sample histograms report exact values.
  /// Monotone in q; returns 0.0 for an empty histogram.
  double quantile(double Q) const;
};

/// A single histogram safe for fully concurrent recording and reading —
/// no shards, no merge points. The live-scrape complement of
/// HistogramRegistry: eel-serve records request latency and per-phase
/// durations here so an ELSt status frame can snapshot them mid-load
/// without the registry's quiescence contract (and without touching the
/// per-request MetricsScope lock). All operations are relaxed; a snapshot
/// taken during a record may be off by the in-flight sample, which is
/// fine for operational gauges.
class AtomicHistogram {
public:
  void record(uint64_t Value) {
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
    Buckets[histogramBucket(Value)].fetch_add(1, std::memory_order_relaxed);
    uint64_t Cur = MinV.load(std::memory_order_relaxed);
    while (Value < Cur &&
           !MinV.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
    Cur = MaxV.load(std::memory_order_relaxed);
    while (Value > Cur &&
           !MaxV.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
  }

  HistogramSnapshot snapshot(std::string Name) const {
    HistogramSnapshot S;
    S.Name = std::move(Name);
    S.Count = Count.load(std::memory_order_relaxed);
    S.Sum = Sum.load(std::memory_order_relaxed);
    S.Min = MinV.load(std::memory_order_relaxed);
    S.Max = MaxV.load(std::memory_order_relaxed);
    for (unsigned I = 0; I < HistogramBuckets; ++I)
      S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
    return S;
  }

private:
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> MinV{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> MaxV{0};
  std::atomic<uint64_t> Buckets[HistogramBuckets] = {};
};

/// Process-wide registry of named histograms, sharded per thread with the
/// StatRegistry discipline: shards are created on a thread's first record
/// and retained for the life of the process.
class HistogramRegistry {
public:
  static HistogramRegistry &instance();

  /// Records \p Value into the calling thread's shard of histogram
  /// \p Name (lock-free once the shard exists).
  void record(const std::string &Name, uint64_t Value);

  /// Merged snapshots of all histograms, sorted by name. Call from
  /// quiescent points only (no concurrent recorders).
  std::vector<HistogramSnapshot> snapshot() const;

  /// Merged snapshot of one histogram; Count == 0 when absent.
  HistogramSnapshot read(const std::string &Name) const;

  /// Zeroes every histogram in every shard. Call from quiescent points
  /// only. Shards themselves are never freed (cached thread-local
  /// pointers must stay valid).
  void resetAll();

  /// Like resetAll(), but histograms whose name starts with
  /// \p ExemptPrefix keep their contents (cumulative service histograms
  /// such as `serve.latency_us`). An empty prefix exempts nothing.
  void resetAllExcept(const std::string &ExemptPrefix);

private:
  struct Cell {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = std::numeric_limits<uint64_t>::max();
    uint64_t Max = 0;
    uint64_t Buckets[HistogramBuckets] = {};
  };
  struct Shard {
    std::unordered_map<std::string, Cell> Cells;
  };

  Shard &localShard();

  mutable std::mutex M; ///< Guards the shard list, not the cells.
  std::vector<std::unique_ptr<Shard>> Shards;
};

/// Convenience mirror of bumpStat() for histograms.
inline void bumpHistogram(const std::string &Name, uint64_t Value) {
  HistogramRegistry::instance().record(Name, Value);
}

/// Per-request metrics scope for long-lived processes (eel-serve).
///
/// The sharded StatRegistry / HistogramRegistry / TraceCollector
/// accumulate for the life of the process — correct for one-shot tools,
/// but in a daemon the second request's envelope would contain the first
/// request's counters, histogram samples, and trace spans. Constructing a
/// MetricsScope at the start of a request resets all three, EXCEPT names
/// under \p ExemptPrefix (cumulative service counters like `serve.*`),
/// so metrics captured inside the scope cover exactly the enclosed work.
///
/// The scope also owns the trace gate for its lifetime: pass
/// \p EnableTrace true to record spans for this request, and destruction
/// restores the gate to its pre-scope state — fixing the single-shot
/// assumption that whoever enabled tracing never needed to turn it off.
///
/// Quiescence contract: construct and destroy only while no other thread
/// is running instrumented pipeline work (eel-serve holds its metrics
/// lock exclusively around isolated requests).
class MetricsScope {
public:
  explicit MetricsScope(const std::string &ExemptPrefix,
                        bool EnableTrace = false);
  ~MetricsScope();

  MetricsScope(const MetricsScope &) = delete;
  MetricsScope &operator=(const MetricsScope &) = delete;

private:
  bool TraceWasEnabled;
};

/// Renders \p Snaps as a JSON array of histogram objects (name, count,
/// sum, min, max, and the non-empty buckets as {le, count} pairs).
std::string metricsJson(const std::vector<HistogramSnapshot> &Snaps);

/// Renders counters and histograms in the Prometheus text exposition
/// format. Metric names have non-alphanumeric characters replaced with
/// underscores; histogram buckets become cumulative `_bucket{le="..."}`
/// series with `_sum` and `_count`.
std::string
metricsPrometheus(const std::vector<std::pair<std::string, uint64_t>> &Counters,
                  const std::vector<HistogramSnapshot> &Hists);

} // namespace eel

#endif // EEL_SUPPORT_METRICS_H
