//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic SplitMix64 generator. All randomized workload generation
/// and property tests seed one of these explicitly so that every experiment
/// in EXPERIMENTS.md is exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_RNG_H
#define EEL_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace eel {

/// SplitMix64: tiny, fast, and high-quality enough for workload synthesis.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Percent/100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace eel

#endif // EEL_SUPPORT_RNG_H
