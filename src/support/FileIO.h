//===- support/FileIO.h - Whole-file read/write helpers --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-oriented whole-file I/O used by the executable-format reader/writer
/// and by tools that persist edited executables.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_FILEIO_H
#define EEL_SUPPORT_FILEIO_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eel {

/// Reads the entire contents of \p Path. Fails with a descriptive error if
/// the file cannot be opened or read.
Expected<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Writes \p Bytes to \p Path, replacing any existing file.
Expected<bool> writeFileBytes(const std::string &Path,
                              const std::vector<uint8_t> &Bytes);

/// Counts non-comment, non-blank lines in \p Text, the metric the paper uses
/// for all code-size comparisons. Lines whose first non-space characters are
/// `//`, `!`, `#`, or `--` count as comments.
unsigned countCodeLines(const std::string &Text);

} // namespace eel

#endif // EEL_SUPPORT_FILEIO_H
