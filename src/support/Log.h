//===- support/Log.h - Structured leveled JSONL logging --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured, leveled logging for long-lived processes (eel-serve). Each
/// record is one JSON object on one line (JSONL): a fixed prelude
/// (`ts_ms`, `level`, `event`, `tid`, and `request_id` when a trace request
/// scope is active) followed by caller-supplied typed fields. Lines are
/// machine-parseable with the strict support/Json.h parser, so log streams
/// can be joined against trace exemplars and scrape snapshots by RequestId.
///
/// The design follows the Trace.h gate discipline:
///  - a process-wide atomic level; `EEL_LOG(...)` compiles to a relaxed
///    load + compare when the level is below threshold — no field
///    construction, no formatting, no allocation. bench_overhead asserts
///    the disabled path costs <0.1% of a warm serve request;
///  - per-thread buffers owned by the logger (StatRegistry sharding rule:
///    created on first use, retained for the life of the process) so hot
///    threads format locally and only take the sink lock on flush. Each
///    buffer carries its own mutex, making flushAll() safe concurrent with
///    writers;
///  - a global rate limit (records per second, window-based). Dropped
///    records are counted and disclosed: the first record admitted in a
///    new window is preceded by a synthetic `log.rate_limited` record
///    carrying the number suppressed, so operators see the gap instead of
///    silently losing it.
///
/// Records at Warn or above flush immediately; lower levels buffer until
/// the thread buffer reaches a threshold or someone calls flushAll()
/// (eel-serve flushes on connection close, scrape, and shutdown).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SUPPORT_LOG_H
#define EEL_SUPPORT_LOG_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eel {

enum class LogLevel : uint8_t {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5, ///< Gate value only; records cannot be emitted at Off.
};

/// Canonical lower-case name ("trace".."error", "off").
const char *logLevelName(LogLevel L);

/// Parses a canonical level name. Returns false (and leaves \p Out alone)
/// on anything else.
bool parseLogLevel(const std::string &Name, LogLevel &Out);

namespace log_detail {
extern std::atomic<uint8_t> Level;
} // namespace log_detail

/// Current process-wide threshold.
inline LogLevel logLevel() {
  return static_cast<LogLevel>(
      log_detail::Level.load(std::memory_order_relaxed));
}

/// True when a record at \p L would be admitted by the level gate. This is
/// the entire disabled-mode cost of EEL_LOG: one relaxed load and a
/// compare.
inline bool logEnabled(LogLevel L) {
  return static_cast<uint8_t>(L) >=
             log_detail::Level.load(std::memory_order_relaxed) &&
         L != LogLevel::Off;
}

/// Sets the process-wide threshold. LogLevel::Off (the default) disables
/// every record.
void logSetLevel(LogLevel L);

/// One typed field in a record. Built by logStr()/logNum(); keys are
/// static literals.
struct LogField {
  const char *Key;
  std::string Str;
  uint64_t Num = 0;
  bool IsNum = false;
};

inline LogField logStr(const char *Key, std::string Val) {
  return LogField{Key, std::move(Val), 0, false};
}
inline LogField logNum(const char *Key, uint64_t Val) {
  return LogField{Key, std::string(), Val, true};
}

/// Process-wide sink: per-thread format buffers flushed to one FILE*.
class Logger {
public:
  static Logger &instance();

  /// Redirects output to \p Path (append mode). Returns false and keeps
  /// the current sink when the file cannot be opened.
  bool setPath(const std::string &Path);

  /// Restores the default stderr sink (flushes buffered records first).
  void useStderr();

  /// Caps admitted records per one-second window; 0 means unlimited.
  /// Suppressed records are counted and disclosed via a synthetic
  /// `log.rate_limited` record when the window rolls over.
  void setRateLimit(uint64_t MaxPerSec);

  /// Formats and buffers one record. Callers go through EEL_LOG so the
  /// level gate runs first; this re-checks nothing.
  void write(LogLevel L, const char *Event, const LogField *Fields,
             size_t NumFields);

  /// Flushes every thread buffer to the sink. Safe concurrent with
  /// writers; each buffer is locked individually.
  void flushAll();

  /// Records admitted (formatted) since process start or resetCounts().
  uint64_t emittedCount() const;
  /// Records suppressed by the rate limiter.
  uint64_t droppedCount() const;
  /// Test hook: zeroes emitted/dropped counters and the limiter window.
  void resetCounts();

private:
  Logger() = default;

  struct Buffer {
    std::mutex M;
    std::string Data;
    uint32_t Tid = 0;
  };

  Buffer &localBuffer();
  void flushLocked(Buffer &B); ///< Caller holds B.M.

  /// Rate limiter: returns false when the record must be dropped. When it
  /// admits the first record of a new window after drops, \p DrainedDrops
  /// receives the suppressed count to disclose.
  bool admit(uint64_t NowMs, uint64_t &DrainedDrops);

  mutable std::mutex BuffersM; ///< Guards the buffer list, not contents.
  std::vector<std::unique_ptr<Buffer>> Buffers;

  std::mutex SinkM;
  FILE *Sink = nullptr; ///< nullptr means stderr.

  std::atomic<uint64_t> Emitted{0};
  std::atomic<uint64_t> Dropped{0};      ///< Monotonic, for droppedCount().
  std::atomic<uint64_t> PendingDrops{0}; ///< Not yet disclosed in-stream.
  std::atomic<uint64_t> MaxPerSec{0};
  std::atomic<uint64_t> WindowSec{0};
  std::atomic<uint64_t> WindowCount{0};
};

namespace log_detail {
/// Builds the field array on the (already level-gated) slow path and hands
/// it to the logger.
template <typename... F>
inline void emit(LogLevel L, const char *Event, F &&...Fields) {
  if constexpr (sizeof...(F) == 0) {
    Logger::instance().write(L, Event, nullptr, 0);
  } else {
    const LogField Arr[] = {std::forward<F>(Fields)...};
    Logger::instance().write(L, Event, Arr, sizeof...(F));
  }
}
} // namespace log_detail

/// Emits one structured record when \p LVL passes the level gate:
///   EEL_LOG(LogLevel::Info, "serve.ok", logNum("latency_us", L));
/// Field expressions are not evaluated when the gate rejects.
#define EEL_LOG(LVL, ...)                                                      \
  do {                                                                         \
    if (::eel::logEnabled(LVL))                                                \
      ::eel::log_detail::emit(LVL, __VA_ARGS__);                               \
  } while (0)

} // namespace eel

#endif // EEL_SUPPORT_LOG_H
