//===- support/Trace.cpp - Span tracing with per-thread rings ------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>

using namespace eel;

namespace eel {
namespace trace_detail {
std::atomic<bool> Enabled{false};
} // namespace trace_detail
} // namespace eel

void eel::traceSetEnabled(bool On) {
  trace_detail::Enabled.store(On, std::memory_order_relaxed);
}

namespace {
thread_local uint64_t CurrentRequestId = 0;
} // namespace

uint64_t eel::traceRequestId() { return CurrentRequestId; }

void eel::traceSetRequestId(uint64_t Rid) { CurrentRequestId = Rid; }

TraceCollector &TraceCollector::instance() {
  static TraceCollector Collector;
  return Collector;
}

uint64_t TraceCollector::nowNs() {
  // One shared epoch so timestamps from different threads land on the same
  // axis. function-local static: initialized on first call, thread-safe.
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

TraceCollector::Ring &TraceCollector::localRing() {
  // Same discipline as StatRegistry::localShard: one ring per thread,
  // created on first record and owned by the collector so it outlives the
  // thread; the cached pointer makes subsequent records lock-free. The
  // owner check keeps a second collector instance (tests) from borrowing
  // another collector's ring.
  thread_local TraceCollector *Owner = nullptr;
  thread_local Ring *Local = nullptr;
  if (Owner != this) {
    std::lock_guard<std::mutex> Lock(M);
    Rings.push_back(std::make_unique<Ring>(static_cast<uint32_t>(Rings.size())));
    Local = Rings.back().get();
    Owner = this;
  }
  return *Local;
}

void TraceCollector::record(TraceEvent Ev) {
  Ring &R = localRing();
  // The ring lock is uncontended except while a drain() snapshots this
  // ring; it is what lets a live daemon export exemplars mid-load.
  std::lock_guard<std::mutex> Lock(R.RM);
  Ev.Tid = R.Tid;
  Ev.Seq = R.Pushed;
  R.Events[R.Pushed % RingCapacity] = std::move(Ev);
  ++R.Pushed;
}

std::vector<TraceEvent> TraceCollector::drain() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<TraceEvent> Out;
  for (const auto &R : Rings) {
    std::lock_guard<std::mutex> RingLock(R->RM);
    uint64_t Kept = std::min<uint64_t>(R->Pushed, RingCapacity);
    Out.reserve(Out.size() + Kept);
    // Oldest retained entry first. When the ring has wrapped, the slot at
    // Pushed % cap is the oldest survivor.
    uint64_t First = R->Pushed - Kept;
    for (uint64_t I = 0; I < Kept; ++I)
      Out.push_back(R->Events[(First + I) % RingCapacity]);
  }
  // Rings are appended in creation order and entries within a ring are
  // already Seq-ordered, but make the contract explicit.
  std::sort(Out.begin(), Out.end(), [](const TraceEvent &A, const TraceEvent &B) {
    return A.Tid != B.Tid ? A.Tid < B.Tid : A.Seq < B.Seq;
  });
  return Out;
}

void TraceCollector::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &R : Rings) {
    std::lock_guard<std::mutex> RingLock(R->RM);
    for (TraceEvent &Ev : R->Events)
      Ev = TraceEvent{};
    R->Pushed = 0;
  }
}

size_t TraceCollector::bufferCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Rings.size();
}

size_t TraceCollector::recordedCount() const {
  std::lock_guard<std::mutex> Lock(M);
  size_t Total = 0;
  for (const auto &R : Rings) {
    std::lock_guard<std::mutex> RingLock(R->RM);
    Total += static_cast<size_t>(std::min<uint64_t>(R->Pushed, RingCapacity));
  }
  return Total;
}

uint64_t TraceCollector::droppedCount() const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t Dropped = 0;
  for (const auto &R : Rings) {
    std::lock_guard<std::mutex> RingLock(R->RM);
    if (R->Pushed > RingCapacity)
      Dropped += R->Pushed - RingCapacity;
  }
  return Dropped;
}

void TraceSpan::end() {
  Ev.EndNs = TraceCollector::nowNs();
  TraceCollector::instance().record(std::move(Ev));
}

std::string eel::renderChromeTrace(const std::vector<TraceEvent> &Events) {
  JsonWriter W(/*Indent=*/false);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const TraceEvent &Ev : Events) {
    W.beginObject();
    W.key("name");
    W.value(std::string(Ev.Name ? Ev.Name : "?"));
    W.key("ph");
    W.value("X");
    W.key("pid");
    W.value(1);
    W.key("tid");
    W.value(static_cast<uint64_t>(Ev.Tid));
    // Trace-event timestamps are microseconds; keep nanosecond precision
    // as a fraction so adjacent short spans stay ordered in the viewer.
    W.key("ts");
    W.value(static_cast<double>(Ev.StartNs) / 1000.0);
    W.key("dur");
    W.value(static_cast<double>(Ev.EndNs - Ev.StartNs) / 1000.0);
    if (Ev.Key0 || Ev.Key1 || Ev.RequestId) {
      W.key("args");
      W.beginObject();
      if (Ev.RequestId) {
        W.key("request_id");
        W.value(Ev.RequestId);
      }
      if (Ev.Key0) {
        W.key(Ev.Key0);
        W.value(Ev.Val0);
      }
      if (Ev.Key1) {
        W.key(Ev.Key1);
        W.value(Ev.Val1);
      }
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.key("displayTimeUnit");
  W.value("ms");
  W.endObject();
  return W.take();
}
