//===- workload/Generator.h - Synthetic workload generation ------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of SPEC-ish programs, standing in for the
/// compiled SPEC92 binaries the paper measures. Programs contain the
/// control-flow and idiom mix the paper's analyses care about: loops,
/// if/else with and without annulled branches, call DAGs, switch statements
/// through dispatch tables, global-array memory traffic, and (in "SunPro
/// style") frame-popping tail calls through function-pointer cells — the
/// idiom behind all 138 unanalyzable indirect jumps in the paper's Solaris
/// measurement. Symbol-table pathologies (§3.1) are optionally included.
///
/// Every program computes a checksum over its routine DAG, prints it in
/// decimal, and exits 0 — so tests compare original vs. edited behaviour by
/// exact output.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_WORKLOAD_GENERATOR_H
#define EEL_WORKLOAD_GENERATOR_H

#include "sxf/Sxf.h"

#include <string>

namespace eel {

struct WorkloadOptions {
  uint64_t Seed = 1;
  unsigned Routines = 12;        ///< Generated routines (besides main).
  unsigned SegmentsPerRoutine = 5; ///< Code segments per routine body.
  /// Percent of routines containing a switch through a dispatch table.
  unsigned SwitchPercent = 35;
  /// "SunPro style": percent of routines ending in a frame-popping tail
  /// call through a function-pointer cell (unanalyzable indirect jump).
  unsigned TailCallPercent = 0;
  /// Use annulled conditional branches (SRISC only).
  bool AnnulledBranches = true;
  /// Percent of dispatch-table switches whose table base is loaded from a
  /// data cell instead of materialized as an immediate ("hand-mangled"
  /// dispatch: defeats plain backward slicing; recoverable only with
  /// eel-infer's constant-cell facts).
  unsigned MangledTablePercent = 0;
  /// Percent of routines followed by a small blob of raw data words
  /// interleaved into the text segment (jump-table padding, literal
  /// pools): never executed, and mostly invalid as instructions, so
  /// heuristic disassembly must exclude it.
  unsigned InterleavedDataPercent = 0;
  /// Percent of segments followed by a dead computation chain (results
  /// written to scratch registers and never read) — material for the
  /// dead-code-elimination tool.
  unsigned DeadCodePercent = 0;
  /// Emit §3.1 symbol-table pathologies: internal labels with symbols,
  /// debug/temp labels, hidden routines, and a data table in text.
  bool SymbolPathologies = false;
  unsigned LoopIterations = 6;
};

/// Generates assembly text for \p Arch.
std::string generateWorkloadAsm(TargetArch Arch,
                                const WorkloadOptions &Options);

/// Generates and assembles (aborts on internal generator errors).
SxfFile generateWorkload(TargetArch Arch, const WorkloadOptions &Options);

} // namespace eel

#endif // EEL_WORKLOAD_GENERATOR_H
